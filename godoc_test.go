package parade_test

// Godoc coverage gate: every package in the module carries a package
// comment, and every exported symbol of the public parade facade
// carries a doc comment. This is the in-repo enforcement behind the CI
// lint step (staticcheck's ST1000 checks package comments too; this
// test keeps the rule honest without network access and extends it to
// the facade's exported symbols).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// modulePackageDirs lists the directories whose packages the gate
// covers: the root facade, every internal package, and every command.
func modulePackageDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return fs.SkipDir
			}
			if hasGoFiles(t, path) {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	return dirs
}

func hasGoFiles(t *testing.T, dir string) bool {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches) > 0
}

// parseDir parses every non-test .go file of dir, comments included.
func parseDir(t *testing.T, dir string) map[string]*ast.File {
	t.Helper()
	fset := token.NewFileSet()
	files := map[string]*ast.File{}
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range matches {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files[path] = f
	}
	return files
}

func TestEveryPackageHasAPackageComment(t *testing.T) {
	for _, dir := range modulePackageDirs(t) {
		files := parseDir(t, dir)
		if len(files) == 0 {
			continue // test-only directory
		}
		documented := false
		for _, f := range files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package in %s has no package comment on any file", dir)
		}
	}
}

func TestFacadeExportsAreDocumented(t *testing.T) {
	files := parseDir(t, ".")
	var undocumented []string
	for path, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue // methods surface through their type's doc
				}
				if d.Doc == nil {
					undocumented = append(undocumented, path+": func "+d.Name.Name)
				}
			case *ast.GenDecl:
				declDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !declDoc && s.Doc == nil {
							undocumented = append(undocumented, path+": type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						// A doc comment on the grouped decl covers the
						// whole const/var block.
						if declDoc || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, name := range s.Names {
							if name.IsExported() {
								undocumented = append(undocumented, path+": "+name.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, sym := range undocumented {
		t.Errorf("exported facade symbol lacks a doc comment: %s", sym)
	}
}
