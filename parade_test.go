package parade_test

import (
	"testing"

	"parade"
)

// The public facade: the quickstart workflow end to end.
func TestFacadeQuickstart(t *testing.T) {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 2, HomeMigration: true}
	var sum float64
	rep, err := parade.Run(cfg, func(m *parade.Thread) {
		a := m.Cluster().AllocF64(1000)
		for i := 0; i < 1000; i++ {
			a.Set(m, i, 1)
		}
		m.Parallel(func(tc *parade.Thread) {
			lo, hi := tc.StaticRange(0, 1000)
			partial := 0.0
			for i := lo; i < hi; i++ {
				partial += a.Get(tc, i)
			}
			total := tc.Reduce("sum", parade.OpSum, partial)
			tc.Master(func() { sum = total })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 1000 {
		t.Fatalf("sum = %v", sum)
	}
	if rep.Time <= 0 {
		t.Fatalf("report time %v", rep.Time)
	}
}

func TestFacadeFabricsAndModes(t *testing.T) {
	if parade.VIA().Name == parade.TCP().Name {
		t.Fatal("fabrics indistinct")
	}
	if parade.Hybrid == parade.SDSM {
		t.Fatal("modes indistinct")
	}
	cfg := parade.Config1T2C(4)
	if cfg.Nodes != 4 || cfg.CPUsPerNode != 2 {
		t.Fatalf("preset = %+v", cfg)
	}
}

func TestFacadeSDSMMode(t *testing.T) {
	cfg := parade.Config{Nodes: 2, Mode: parade.SDSM}
	var v float64
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		s := m.Cluster().ScalarVar("x")
		m.Parallel(func(tc *parade.Thread) {
			tc.Atomic(s, 2)
		})
		m.Parallel(func(tc *parade.Thread) {})
		v = s.Get(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("atomic sum = %v", v)
	}
}
