// Command parade-micro runs the EPCC-style synchronization
// microbenchmarks (paper §6.1) for every directive, under both the
// ParADE hybrid runtime and the conventional KDSM baseline, over a node
// sweep. Figures 6 and 7 are the critical and single rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parade/internal/core"
	"parade/internal/kdsm"
	"parade/internal/microbench"
)

func main() {
	nodesFlag := flag.String("nodes", "1,2,4,8", "comma-separated node counts")
	reps := flag.Int("reps", 100, "repetitions per measurement")
	tpn := flag.Int("tpn", 1, "computational threads per node")
	flag.Parse()

	var nodes []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "parade-micro: bad node count %q\n", s)
			os.Exit(2)
		}
		nodes = append(nodes, n)
	}

	fmt.Printf("Directive overheads in microseconds per execution (%d reps, %d thread(s)/node, cLAN VIA)\n\n",
		*reps, *tpn)
	fmt.Printf("%-10s %-8s", "directive", "system")
	for _, n := range nodes {
		fmt.Printf("%12s", fmt.Sprintf("%d nodes", n))
	}
	fmt.Println()

	for _, name := range microbench.Directives() {
		bench, err := microbench.ByName(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-micro: %v\n", err)
			os.Exit(1)
		}
		for _, sys := range []struct {
			label string
			cfg   func(n int) core.Config
		}{
			{"ParADE", func(n int) core.Config {
				return core.Config{Nodes: n, ThreadsPerNode: *tpn, Mode: core.Hybrid, HomeMigration: true}.WithDefaults()
			}},
			{"KDSM", func(n int) core.Config { return kdsm.Config(n, *tpn, 2) }},
		} {
			fmt.Printf("%-10s %-8s", name, sys.label)
			for _, n := range nodes {
				r, err := bench(sys.cfg(n), *reps)
				if err != nil {
					fmt.Fprintf(os.Stderr, "parade-micro: %s/%s: %v\n", name, sys.label, err)
					os.Exit(1)
				}
				fmt.Printf("%12.3f", r.PerOp.Micros())
			}
			fmt.Println()
		}
	}
}
