// Command parade-serve runs the fleet sweep service: an HTTP daemon that
// accepts JSONL batches of simulation jobs on POST /v1/jobs, executes
// them on a bounded work-stealing pool, deduplicates by canonical config
// fingerprint against an LRU result cache, and exports Prometheus-style
// metrics on GET /metrics. SIGTERM/SIGINT triggers a graceful drain:
// admission stops (new batches get 503), admitted jobs finish, then the
// process exits. With -wal the service is crash-safe: completed results
// are appended to a checksummed, fsynced JSONL log and replayed into
// the cache on startup, so a killed-and-restarted server serves every
// previously completed cell bit-identical without re-executing it.
// See SERVING.md for the full serving surface and failure modes.
//
// With -replay the command instead acts as its own acceptance harness:
// it replays the chaos and crash scenario matrices through the service
// path and exits non-zero if any cell's HTTP result differs from an
// in-process run, if a repeated batch misses the cache, or if a cache
// hit re-executes (probed via /metrics). "-replay self" boots an
// in-process server first; "-replay http://host:port" targets a running
// one.
//
// With -serve-chaos the command runs the service-chaos harness instead:
// a WAL-backed server is killed mid-batch, restarted, and must recover
// every completed cell bit-identical with zero re-executions; injected
// worker panics must surface as typed per-job results (with retry and
// quarantine) while the server keeps serving; and a deadline_ms job
// must come back canceled instead of hanging a worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"parade/internal/fleet"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers  = flag.Int("workers", 2, "worker pool size")
		queue    = flag.Int("queue", 64, "admission queue bound (jobs)")
		cache    = flag.Int("cache", 1024, "result cache capacity (entries)")
		maxBatch = flag.Int("max-batch", 4096, "maximum jobs per request")

		walPath     = flag.String("wal", "", "durable result WAL path: completed results are appended (checksummed, fsynced) and replayed into the cache on startup, so a restart never re-executes a completed cell")
		jobDeadline = flag.Duration("job-deadline", 0, "server-side watchdog per job (0 disables); a job's own deadline_ms can only tighten it")
		maxAttempts = flag.Int("max-attempts", 0, "panic-retry budget per job before its config is quarantined (default 3)")

		serveChaos = flag.Bool("serve-chaos", false, "run the service-chaos harness (kill/restart/panic/deadline) instead of serving; requires -wal")
		chaosCells = flag.Int("chaos-cells", 0, "scenario cells for -serve-chaos (default 24)")
		chaosSeed  = flag.Int64("chaos-seed", 0, "base seed for -serve-chaos (default 1)")

		replay         = flag.String("replay", "", "replay the acceptance matrices through the service path: 'self' boots an in-process server, otherwise a base URL of a running one")
		replayApps     = flag.String("replay-apps", "", "comma-separated app subset for -replay (default: all)")
		replayModes    = flag.String("replay-modes", "", "comma-separated mode subset for -replay (default: hybrid,sdsm)")
		replayProfiles = flag.String("replay-profiles", "", "comma-separated fault-profile subset for -replay ('none' for ideal fabric only)")
		replayCrashes  = flag.String("replay-crashes", "", "comma-separated crash-schedule subset for -replay ('none' for crash-free only)")
		replayNodes    = flag.String("replay-nodes", "", "comma-separated node counts for -replay (default: 4)")
		replayLanes    = flag.String("replay-lanes", "", "comma-separated lane counts for -replay (default: 0)")
		replaySeed     = flag.Int64("replay-seed", 0, "fault-plane seed for -replay (default: 1)")
	)
	flag.Parse()

	opt := fleet.ServerOptions{
		Workers: *workers, Queue: *queue,
		Cache: *cache, MaxBatch: *maxBatch,
		WALPath: *walPath, JobDeadline: *jobDeadline, MaxAttempts: *maxAttempts,
	}

	if *serveChaos {
		if *walPath == "" {
			fmt.Fprintln(os.Stderr, "parade-serve: -serve-chaos requires -wal")
			os.Exit(2)
		}
		sum, err := fleet.RunServeChaos(fleet.ChaosOptions{
			WALPath: *walPath,
			Cells:   *chaosCells,
			Seed:    *chaosSeed,
			Workers: *workers,
			Log:     os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-serve: chaos FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chaos OK: %d cells, %d durable at kill, %d recovered bit-identical with %d re-executions, %d panic isolated, %d quarantined, %d canceled by deadline\n",
			sum.Cells, sum.Durable, sum.Recovered, sum.ReExecutions, sum.Panics, sum.Quarantined, sum.Canceled)
		os.Exit(0)
	}

	if *replay != "" {
		ropt := fleet.ReplayOptions{
			Apps:     splitList(*replayApps),
			Modes:    splitList(*replayModes),
			Profiles: splitOrNone(*replayProfiles),
			Crashes:  splitOrNone(*replayCrashes),
			Nodes:    mustInts(*replayNodes, "-replay-nodes"),
			Lanes:    mustInts(*replayLanes, "-replay-lanes"),
			Seed:     *replaySeed,
			Log:      os.Stderr,
		}
		os.Exit(runReplay(*replay, opt, ropt))
	}

	svc, err := fleet.NewService(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parade-serve: %v\n", err)
		os.Exit(1)
	}
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "parade-serve: %v: draining\n", sig)
		svc.Drain() // stop admission, finish admitted jobs
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		server.Shutdown(ctx)
		close(done)
	}()

	walNote := ""
	if *walPath != "" {
		walNote = fmt.Sprintf(" wal=%s (%d results recovered)", *walPath, svc.Cache().Len())
	}
	fmt.Fprintf(os.Stderr, "parade-serve: listening on %s (workers=%d queue=%d cache=%d%s)\n",
		*addr, *workers, *queue, *cache, walNote)
	if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "parade-serve: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "parade-serve: drained")
}

// runReplay executes the replay harness and returns the process exit
// code. target "self" boots an in-process server on a loopback port.
func runReplay(target string, opt fleet.ServerOptions, ropt fleet.ReplayOptions) int {
	baseURL := target
	if target == "self" {
		svc, err := fleet.NewService(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-serve: %v\n", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-serve: replay listen: %v\n", err)
			return 1
		}
		server := &http.Server{Handler: svc.Handler()}
		go server.Serve(ln)
		defer func() {
			svc.Drain()
			server.Close()
		}()
		baseURL = "http://" + ln.Addr().String()
	}
	sum, err := fleet.Replay(baseURL, ropt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parade-serve: replay FAILED: %v\n", err)
		return 1
	}
	fmt.Printf("replay OK: %d cells identical via service path, %d cache hits on repeat, executions delta %d\n",
		sum.Cells, sum.CacheHits, sum.ExecDelta)
	return 0
}

// splitList parses a comma-separated flag value ("" yields nil).
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitOrNone parses a profile/crash subset flag. The sentinel "none"
// selects only the empty value (ideal fabric / crash-free), since nil
// means "use the replay defaults". Crash schedules contain commas, so
// elements are separated with ';' in these flags.
func splitOrNone(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if s == "none" {
		return []string{""}
	}
	sep := ","
	if strings.Contains(s, ";") {
		sep = ";"
	}
	var out []string
	for _, part := range strings.Split(s, sep) {
		part = strings.TrimSpace(part)
		if part == "none" {
			part = ""
		}
		out = append(out, part)
	}
	return out
}

// mustInts parses a comma-separated int list, exiting on bad input.
func mustInts(s, flagName string) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-serve: %s: bad value %q\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
