// Command parade-run executes one of the paper's applications under a
// chosen cluster configuration and prints the result with the protocol
// counter report.
package main

import (
	"flag"
	"fmt"
	"os"

	"parade/internal/apps"
	"parade/internal/core"
	"parade/internal/hlrc"
	"parade/internal/kdsm"
	"parade/internal/netsim"
)

// printPages renders the hottest-pages table when requested.
func printPages(rep core.Report, n int) {
	if n <= 0 {
		return
	}
	stats := rep.PageReport
	if len(stats) > n {
		stats = stats[:n]
	}
	fmt.Println(hlrc.RenderPageReport(stats))
}

func main() {
	app := flag.String("app", "cg", "application: cg, ep, helmholtz, md")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tpn := flag.Int("tpn", 1, "computational threads per node")
	cpus := flag.Int("cpus", 2, "CPUs per node")
	mode := flag.String("mode", "parade", "runtime mode: parade or kdsm")
	class := flag.String("class", "T", "problem class for cg/ep (T,S,W,A)")
	fabric := flag.String("fabric", "via", "interconnect: via or tcp")
	pages := flag.Int("pages", 0, "print the N hottest shared pages after the run")
	flag.Parse()

	cfg := core.Config{Nodes: *nodes, ThreadsPerNode: *tpn, CPUsPerNode: *cpus,
		Mode: core.Hybrid, HomeMigration: true}
	if *fabric == "tcp" {
		cfg.Fabric = netsim.TCP()
	}
	cfg = cfg.WithDefaults()
	if *mode == "kdsm" {
		cfg = kdsm.FromParade(cfg)
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "parade-run: %v\n", err)
		os.Exit(1)
	}
	switch *app {
	case "cg":
		cl, err := apps.CGClassByName(*class)
		if err != nil {
			fail(err)
		}
		r, err := apps.RunCG(cfg, cl)
		if err != nil {
			fail(err)
		}
		fmt.Printf("CG class %s: zeta=%.12f rnorm=%.3e nz=%d kernel=%v util=%.2f\n",
			cl.Name, r.Zeta, r.RNorm, r.NZ, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "ep":
		cl, err := apps.EPClassByName(*class)
		if err != nil {
			fail(err)
		}
		r, err := apps.RunEP(cfg, cl)
		if err != nil {
			fail(err)
		}
		fmt.Printf("EP class %s: sx=%.6f sy=%.6f accepted=%.0f kernel=%v util=%.2f\n",
			cl.Name, r.Sx, r.Sy, r.Accepted, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "helmholtz":
		r, err := apps.RunHelmholtz(cfg, apps.HelmholtzDefault())
		if err != nil {
			fail(err)
		}
		fmt.Printf("Helmholtz: err=%.3e iters=%d kernel=%v util=%.2f\n",
			r.Error, r.Iterations, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "md":
		r, err := apps.RunMD(cfg, apps.MDDefault())
		if err != nil {
			fail(err)
		}
		fmt.Printf("MD: e0=%.6f efinal=%.6f drift=%.3e kernel=%v util=%.2f\n",
			r.E0, r.EFinal, r.MaxDrift, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	default:
		fail(fmt.Errorf("unknown app %q", *app))
	}
}
