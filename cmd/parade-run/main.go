// Command parade-run executes one of the paper's applications under a
// chosen cluster configuration and prints the result with the protocol
// counter report.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"parade/internal/apps"
	"parade/internal/core"
	"parade/internal/hlrc"
	"parade/internal/kdsm"
	"parade/internal/netsim"
	"parade/internal/obs"
)

// parseCrashPlan parses a -crash spec: comma-separated node@barrier
// events, e.g. "1@2" or "1@1,1@3". Every event restarts — the full
// runtime cannot run on with a removed member (see core.Validate).
func parseCrashPlan(spec string) (*hlrc.CrashPlan, error) {
	plan := &hlrc.CrashPlan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nodeStr, barStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad crash event %q (want node@barrier, e.g. 1@2)", part)
		}
		node, err1 := strconv.Atoi(nodeStr)
		barrier, err2 := strconv.Atoi(barStr)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad crash event %q (want node@barrier, e.g. 1@2)", part)
		}
		plan.Events = append(plan.Events, hlrc.CrashEvent{Node: node, Barrier: barrier, Restart: true})
	}
	if len(plan.Events) == 0 {
		return nil, fmt.Errorf("empty -crash spec")
	}
	return plan, nil
}

// printPages renders the hottest-pages table when requested.
func printPages(rep core.Report, n int) {
	if n <= 0 {
		return
	}
	stats := rep.PageReport
	if len(stats) > n {
		stats = stats[:n]
	}
	fmt.Println(hlrc.RenderPageReport(stats))
}

// openOut opens path for writing ("-" selects stdout) and returns a
// buffered writer plus a finish func that flushes and closes it.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		w := bufio.NewWriter(os.Stdout)
		return w, w.Flush, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	finish := func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return w, finish, nil
}

// newSink builds the trace sink selected by -trace-format.
func newSink(format string, w io.Writer) (obs.Sink, error) {
	switch format {
	case "text":
		return obs.NewTextSink(w), nil
	case "jsonl":
		return obs.NewJSONLSink(w), nil
	case "chrome":
		return obs.NewChromeSink(w), nil
	default:
		return nil, fmt.Errorf("unknown trace format %q (want text, jsonl, or chrome)", format)
	}
}

func main() {
	app := flag.String("app", "cg", "application: cg, ep, helmholtz, md, lockmix, quad, taskdep")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tpn := flag.Int("tpn", 1, "computational threads per node")
	cpus := flag.Int("cpus", 2, "CPUs per node")
	mode := flag.String("mode", "parade", "runtime mode: parade or kdsm")
	class := flag.String("class", "T", "problem class for cg/ep (T,S,W,A)")
	fabric := flag.String("fabric", "via", "interconnect: via or tcp")
	pages := flag.Int("pages", 0, "print the N hottest shared pages after the run")
	traceOut := flag.String("trace", "", "write a protocol trace to this file ('-' for stdout)")
	traceFormat := flag.String("trace-format", "text", "trace format: text, jsonl, or chrome")
	traceMsgs := flag.Bool("trace-msgs", false, "include per-message send events in the trace (verbose)")
	metricsOut := flag.String("metrics", "", "write observability metrics JSON to this file ('-' for stdout)")
	lanes := flag.String("lanes", "auto", "event-lane workers: a positive count, 'auto' (min(nodes, GOMAXPROCS)), or 'off' (legacy single-loop kernel)")
	faults := flag.String("faults", "", "inject faults: profile name (drop, dup, reorder, straggler, chaos)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-plane seed (with -faults)")
	crash := flag.String("crash", "", "crash-and-restart events: node@barrier[,node@barrier...], e.g. 1@2")
	policy := flag.String("policy", "", "hlrc protocol policy: invalidate, update, or adaptive (empty = legacy)")
	hetero := flag.String("hetero", "", "heterogeneous machine profile: uniform, fasthalf, or slow1 (empty = uniform)")
	timeout := flag.Duration("timeout", 0, "wall-clock guard: cancel the run after this host time and dump partial stats (0 disables)")
	flag.Parse()

	cfg := core.Config{Nodes: *nodes, ThreadsPerNode: *tpn, CPUsPerNode: *cpus,
		Mode: core.Hybrid, HomeMigration: true, Policy: *policy,
		Deadline: *timeout}
	if *fabric == "tcp" {
		cfg.Fabric = netsim.TCP()
	}
	cfg = cfg.WithDefaults()
	if *mode == "kdsm" {
		cfg = kdsm.FromParade(cfg)
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "parade-run: %v\n", err)
		os.Exit(1)
	}

	// failRun handles an application error. A -timeout abort is the typed
	// core.ErrCanceled chain; instead of vanishing with a bare error, the
	// partial report (counters and virtual time reached before the abort)
	// is dumped so a hung configuration is still diagnosable.
	failRun := func(err error, rep core.Report) {
		if errors.Is(err, core.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "parade-run: %v\n", err)
			fmt.Fprintf(os.Stderr, "parade-run: partial stats at abort (virtual time %v, host budget %v):\n%s\n",
				rep.Time, *timeout, rep.Counters.String())
			os.Exit(1)
		}
		fail(err)
	}

	if *faults != "" {
		prof, err := netsim.ProfileByName(*faults, *faultSeed)
		if err != nil {
			fail(err)
		}
		cfg.Faults = &prof
	}

	if *hetero != "" {
		h, err := netsim.HeteroByName(*hetero, cfg.Nodes)
		if err != nil {
			fail(err)
		}
		cfg.Hetero = h
	}

	if *crash != "" {
		plan, err := parseCrashPlan(*crash)
		if err != nil {
			fail(err)
		}
		cfg.Crash = plan
	}

	var rec *obs.Recorder
	var traceFinish func() error
	if *traceOut != "" || *metricsOut != "" {
		rec = obs.New(cfg.Nodes)
		rec.TraceMessages(*traceMsgs)
		if *traceOut != "" {
			w, finish, err := openOut(*traceOut)
			if err != nil {
				fail(err)
			}
			sink, err := newSink(*traceFormat, w)
			if err != nil {
				fail(err)
			}
			rec.AddSink(sink)
			traceFinish = finish
		}
		cfg.Obs = rec
	}

	// Resolve -lanes. Trace sinks need the sequential recorder, so 'auto'
	// falls back to the legacy kernel when tracing; an explicit count
	// combined with -trace is a configuration error.
	tracing := *traceOut != ""
	switch *lanes {
	case "off", "0":
		cfg.Lanes = 0
	case "auto":
		if !tracing {
			cfg.Lanes = cfg.Nodes
			if g := runtime.GOMAXPROCS(0); g < cfg.Lanes {
				cfg.Lanes = g
			}
		}
	default:
		n, err := strconv.Atoi(*lanes)
		if err != nil || n < 1 {
			fail(&core.LaneConfigError{Reason: fmt.Sprintf(
				"bad -lanes %q (want a positive count, 'auto', or 'off')", *lanes)})
		}
		if tracing {
			fail(&core.LaneConfigError{Lanes: n, Reason: "-trace needs the sequential recorder; use -lanes off (or auto) with tracing"})
		}
		cfg.Lanes = n
	}

	switch *app {
	case "cg":
		cl, err := apps.CGClassByName(*class)
		if err != nil {
			fail(err)
		}
		r, err := apps.RunCG(cfg, cl)
		if err != nil {
			failRun(err, r.Report)
		}
		fmt.Printf("CG class %s: zeta=%.12f rnorm=%.3e nz=%d kernel=%v util=%.2f\n",
			cl.Name, r.Zeta, r.RNorm, r.NZ, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "ep":
		cl, err := apps.EPClassByName(*class)
		if err != nil {
			fail(err)
		}
		r, err := apps.RunEP(cfg, cl)
		if err != nil {
			failRun(err, r.Report)
		}
		fmt.Printf("EP class %s: sx=%.6f sy=%.6f accepted=%.0f kernel=%v util=%.2f\n",
			cl.Name, r.Sx, r.Sy, r.Accepted, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "helmholtz":
		r, err := apps.RunHelmholtz(cfg, apps.HelmholtzDefault())
		if err != nil {
			failRun(err, r.Report)
		}
		fmt.Printf("Helmholtz: err=%.3e iters=%d kernel=%v util=%.2f\n",
			r.Error, r.Iterations, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "md":
		r, err := apps.RunMD(cfg, apps.MDDefault())
		if err != nil {
			failRun(err, r.Report)
		}
		fmt.Printf("MD: e0=%.6f efinal=%.6f drift=%.3e kernel=%v util=%.2f\n",
			r.E0, r.EFinal, r.MaxDrift, r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "lockmix":
		r, err := apps.RunLockmix(cfg, apps.LockmixDefault())
		if err != nil {
			failRun(err, r.Report)
		}
		fmt.Printf("Lockmix: sum=%.0f expected=%.0f time=%v util=%.2f\n",
			r.Sum, r.Expected, r.Report.Time, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "quad":
		r, err := apps.RunQuad(cfg, apps.QuadDefault())
		if err != nil {
			failRun(err, r.Report)
		}
		fmt.Printf("Quad: integral=%x tablesum=%x kernel=%v util=%.2f\n",
			math.Float64bits(r.Integral), math.Float64bits(r.TableSum),
			r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	case "taskdep":
		// Result bits and the DSM fingerprint print as raw hex so a lane
		// or steal-schedule divergence is a one-line diff, not a rounding
		// question — the CI deps smoke compares -lanes 1 against -lanes 4
		// on exactly this output.
		r, err := apps.RunTaskdep(cfg, apps.TaskdepDefault())
		if err != nil {
			failRun(err, r.Report)
		}
		fmt.Printf("Taskdep: pipe=%x offload=%x check=%x memhash=%016x kernel=%v util=%.2f\n",
			math.Float64bits(r.PipeSum), math.Float64bits(r.OffloadSum),
			math.Float64bits(r.CheckSum), r.Report.MemHash,
			r.KernelTime, r.Report.Utilization())
		fmt.Println(r.Report.Counters.String())
		printPages(r.Report, *pages)
	default:
		fail(fmt.Errorf("unknown app %q", *app))
	}

	if rec != nil {
		// Close flushes sink trailers (the Chrome format is not valid
		// JSON until then), after which the files themselves can close.
		if err := rec.Close(); err != nil {
			fail(err)
		}
		if traceFinish != nil {
			if err := traceFinish(); err != nil {
				fail(err)
			}
		}
		if *metricsOut != "" {
			w, finish, err := openOut(*metricsOut)
			if err != nil {
				fail(err)
			}
			if err := rec.Metrics().WriteJSON(w); err != nil {
				fail(err)
			}
			if err := finish(); err != nil {
				fail(err)
			}
		}
	}
}
