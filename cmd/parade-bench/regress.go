package main

// Benchmark-regression harness (-regress): runs the substrate and
// directive benchmark suites under -benchmem, parses the standard
// `go test -bench` output, and writes a JSON report. With -baseline
// (a prior report, or raw `go test -bench` output) each result carries
// the old numbers and a speedup factor, and -max-regress can turn a
// slowdown into a non-zero exit for CI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchSuites is what -regress measures: the event-kernel and diff-engine
// benchmarks (the hot paths every figure rides on), the directive replay
// benchmarks, and the Fig 6/7 microbenchmark sweeps.
var benchSuites = []struct {
	Pkg     string
	Pattern string
}{
	{"./internal/sim", "."},
	{"./internal/dsm", "."},
	{"./internal/microbench", "."},
	{".", "^(BenchmarkFig6Critical|BenchmarkFig7Single)$"},
}

type benchResult struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`

	// Status is "new" when a baseline was given but carries no entry for
	// this benchmark (it anchors the next baseline rather than being
	// gated), empty otherwise.
	Status string `json:"status,omitempty"`

	// Filled in when a baseline is given and has a matching benchmark.
	BaselineNsPerOp     *float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  *int64   `json:"baseline_b_per_op,omitempty"`
	BaselineAllocsPerOp *int64   `json:"baseline_allocs_per_op,omitempty"`
	Speedup             *float64 `json:"speedup,omitempty"`
}

type benchReport struct {
	Schema string `json:"schema"`
	// Host provenance: baseline JSONs are compared across machines and
	// toolchains, so the report records the Go version and the
	// parallelism the numbers were measured under.
	GoVersion  string        `json:"go_version,omitempty"`
	Gomaxprocs int           `json:"gomaxprocs,omitempty"`
	NumCPU     int           `json:"num_cpu,omitempty"`
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchtime  string        `json:"benchtime"`
	Baseline   string        `json:"baseline,omitempty"`
	Results    []benchResult `json:"results"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts benchmark lines from `go test -bench` output.
// The report's goos/goarch/cpu header fields are filled from the first
// occurrence of the corresponding metadata lines.
func parseBenchOutput(out []byte, rep *benchReport) []benchResult {
	var results []benchResult
	pkg := ""
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:") && rep.Goos == "":
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:") && rep.Goarch == "":
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:") && rep.CPU == "":
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		r := benchResult{
			Pkg:  pkg,
			Name: cpuSuffix.ReplaceAllString(strings.TrimPrefix(f[0], "Benchmark"), ""),
		}
		// f[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerS = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		results = append(results, r)
	}
	return results
}

// loadBaseline reads a prior -regress JSON report or raw `go test -bench`
// output and indexes it by benchmark name.
func loadBaseline(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []benchResult
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		var rep benchReport
		if err := json.Unmarshal(trimmed, &rep); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		results = rep.Results
	} else {
		var rep benchReport
		results = parseBenchOutput(data, &rep)
	}
	base := make(map[string]benchResult, len(results))
	for _, r := range results {
		base[r.Name] = r
	}
	return base, nil
}

// runRegress executes the benchmark suites and writes the JSON report to
// outPath ("-" for stdout). Returns the number of benchmarks that got
// slower than maxRegress times their baseline (0 when no baseline or
// maxRegress <= 0).
func runRegress(outPath, baselinePath, benchtime string, maxRegress float64) (int, error) {
	rep := benchReport{
		Schema:     "parade-bench-regress/v1",
		GoVersion:  runtime.Version(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Benchtime:  benchtime,
	}
	// A gate without a baseline would pass vacuously; refuse instead of
	// letting CI silently stop checking for slowdowns.
	if maxRegress > 0 && baselinePath == "" {
		return 0, fmt.Errorf("-max-regress %g requires -baseline; refusing to run an unanchored gate", maxRegress)
	}
	// Load the baseline up front so a bad path fails before, not after,
	// minutes of benchmarking.
	var base map[string]benchResult
	if baselinePath != "" {
		var err error
		if base, err = loadBaseline(baselinePath); err != nil {
			return 0, err
		}
		rep.Baseline = baselinePath
	}
	for _, s := range benchSuites {
		args := []string{"test", "-run", "^$", "-bench", s.Pattern, "-benchmem", "-benchtime", benchtime, s.Pkg}
		fmt.Fprintf(os.Stderr, "regress: go %s\n", strings.Join(args, " "))
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			return 0, fmt.Errorf("go test %s: %v\n%s", s.Pkg, err, out)
		}
		rep.Results = append(rep.Results, parseBenchOutput(out, &rep)...)
	}

	regressions := 0
	matched := 0
	if base != nil {
		var fresh []string
		for i := range rep.Results {
			b, ok := base[rep.Results[i].Name]
			if !ok || b.NsPerOp <= 0 {
				// A benchmark the baseline has never seen is expected when a
				// PR adds suites: mark it "new" so the report (and the next
				// baseline regeneration) anchors it, rather than silently
				// skipping it or failing the gate.
				rep.Results[i].Status = "new"
				fresh = append(fresh, rep.Results[i].Name)
				continue
			}
			matched++
			r := &rep.Results[i]
			ns, by, al := b.NsPerOp, b.BytesPerOp, b.AllocsPerOp
			r.BaselineNsPerOp, r.BaselineBytesPerOp, r.BaselineAllocsPerOp = &ns, &by, &al
			sp := ns / r.NsPerOp
			r.Speedup = &sp
			if maxRegress > 0 && r.NsPerOp > ns*maxRegress {
				regressions++
				fmt.Fprintf(os.Stderr, "regress: %s slowed %.2fx (%.1f -> %.1f ns/op)\n",
					r.Name, r.NsPerOp/ns, ns, r.NsPerOp)
			}
		}
		if len(fresh) > 0 {
			fmt.Fprintf(os.Stderr, "regress: %d benchmark(s) new (no baseline entry): %s\n",
				len(fresh), strings.Join(fresh, ", "))
		}
		// A baseline whose names match nothing (renamed benchmarks, wrong
		// file) would also make the gate vacuous.
		if maxRegress > 0 && matched == 0 {
			return 0, fmt.Errorf("baseline %s matched none of the %d benchmarks; the -max-regress gate checked nothing",
				baselinePath, len(rep.Results))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return regressions, err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return 0, err
	}
	fmt.Fprintf(os.Stderr, "regress: wrote %d results to %s\n", len(rep.Results), outPath)
	return regressions, nil
}
