package main

// Weak-scaling sweep (-scale weak): fixed work per simulated node,
// growing node counts, the same program run twice per point — once with
// a single lane worker (lanes=1, the serialized windowed schedule) and
// once with the requested worker count (default GOMAXPROCS). Both runs
// execute the identical event schedule, so the sweep asserts
// bit-identity and reports wall-clock speedup plus the kernel's
// per-lane utilization and sync-latency numbers; see BENCH_PR6.json
// and EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"parade/internal/core"
	"parade/internal/obs"
	"parade/internal/sim"
)

type scalePoint struct {
	Nodes     int     `json:"nodes"`
	SimTimeMs float64 `json:"sim_time_ms"`
	Windows   uint64  `json:"windows"`
	Events    uint64  `json:"events"`
	// Wall-clock for the two series and their ratio.
	WallLanes1Ms float64 `json:"wall_lanes1_ms"`
	WallLanesNMs float64 `json:"wall_lanesN_ms"`
	Speedup      float64 `json:"speedup"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Per-lane utilization (BusyNs/(BusyNs+StallNs)) of the parallel
	// series, and the mean lane_sync_latency.
	UtilMedian float64 `json:"util_median"`
	UtilMin    float64 `json:"util_min"`
	UtilMax    float64 `json:"util_max"`
	SyncMeanNs float64 `json:"lane_sync_mean_ns"`
	// Identical is the bit-identity check between the two series (virtual
	// time, state fingerprint, full counter set).
	Identical bool `json:"identical"`
}

type scaleReport struct {
	Schema     string       `json:"schema"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Lanes      int          `json:"lanes"`
	Rounds     int          `json:"rounds"`
	Points     []scalePoint `json:"points"`
}

// parseNodes parses a comma-separated list of positive node counts.
func parseNodes(s string) ([]int, error) {
	var nodes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// scaleProgram is the weak-scaling workload: every node's thread does a
// fixed number of compute+barrier rounds, so total work grows linearly
// with the cluster while per-lane work stays constant. Compute keeps the
// lanes busy inside windows; the barrier forces cross-lane merge traffic
// every round.
func scaleProgram(rounds int) func(*core.Thread) {
	return func(m *core.Thread) {
		m.Parallel(func(tc *core.Thread) {
			for r := 0; r < rounds; r++ {
				tc.Compute(150 * sim.Microsecond)
				tc.Barrier()
			}
		})
	}
}

// runScalePoint runs one series and returns the report plus wall-clock.
func runScalePoint(nodes, lanes, rounds int) (core.Report, time.Duration, error) {
	cfg := core.Config{
		Nodes: nodes, ThreadsPerNode: 1, CPUsPerNode: 2,
		HomeMigration: true, Lanes: lanes, Seed: 11,
		Obs: obs.New(nodes),
	}.WithDefaults()
	start := time.Now()
	rep, err := core.Run(cfg, scaleProgram(rounds))
	return rep, time.Since(start), err
}

// runScaleSweep executes the weak-scaling sweep and writes the JSON
// report to outPath ("-" for stdout). Returns an error on any run
// failure or bit-identity violation.
func runScaleSweep(nodesList []int, lanes, rounds int, outPath string) error {
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
	}
	rep := scaleReport{
		Schema: "parade-bench-scale/v1", NumCPU: runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0), Lanes: lanes, Rounds: rounds,
	}
	for _, n := range nodesList {
		fmt.Fprintf(os.Stderr, "scale: %d nodes, lanes=1 vs lanes=%d\n", n, lanes)
		r1, w1, err := runScalePoint(n, 1, rounds)
		if err != nil {
			return fmt.Errorf("%d nodes, lanes=1: %v", n, err)
		}
		rN, wN, err := runScalePoint(n, lanes, rounds)
		if err != nil {
			return fmt.Errorf("%d nodes, lanes=%d: %v", n, lanes, err)
		}
		identical := r1.Time == rN.Time && r1.MemHash == rN.MemHash && r1.Counters == rN.Counters
		if !identical {
			return fmt.Errorf("%d nodes: lanes=1 and lanes=%d reports differ (time %v vs %v, fingerprint %#x vs %#x)",
				n, lanes, r1.Time, rN.Time, r1.MemHash, rN.MemHash)
		}

		stats, windows, sync := rN.Obs.LaneReport()
		var events uint64
		utils := make([]float64, 0, len(stats))
		for _, ls := range stats {
			events += ls.Events
			if total := ls.BusyNs + ls.StallNs; total > 0 {
				utils = append(utils, float64(ls.BusyNs)/float64(total))
			}
		}
		sort.Float64s(utils)
		pt := scalePoint{
			Nodes: n, SimTimeMs: float64(r1.Time) / 1e6,
			Windows: windows, Events: events,
			WallLanes1Ms: float64(w1.Nanoseconds()) / 1e6,
			WallLanesNMs: float64(wN.Nanoseconds()) / 1e6,
			Identical:    identical,
		}
		if wN > 0 {
			pt.Speedup = float64(w1) / float64(wN)
			pt.EventsPerSec = float64(events) / wN.Seconds()
		}
		if len(utils) > 0 {
			pt.UtilMedian = utils[len(utils)/2]
			pt.UtilMin = utils[0]
			pt.UtilMax = utils[len(utils)-1]
		}
		if sync.Count > 0 {
			pt.SyncMeanNs = float64(sync.Sum) / float64(sync.Count)
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(os.Stderr, "scale: %4d nodes  %8.1f ms serial  %8.1f ms parallel  %.2fx  util med %.2f\n",
			n, pt.WallLanes1Ms, pt.WallLanesNMs, pt.Speedup, pt.UtilMedian)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scale: wrote %d points to %s\n", len(rep.Points), outPath)
	return nil
}
