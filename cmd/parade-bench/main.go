// Command parade-bench regenerates the paper's evaluation figures
// (Figs. 6-11) as text tables. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// With -regress it instead runs the substrate benchmark suites (event
// kernel, diff engine, directive microbenchmarks, Fig 6/7 sweeps) and
// writes a JSON report; see scripts/bench.sh.
//
// With -chaos it runs the fault-injection matrix: the app kernels in
// both directive modes under every built-in netsim fault profile,
// asserting bit-identical results against the fault-free baselines.
//
// With -crash it runs the crash-stop acceptance matrix instead:
// deterministic node crash/restart schedules at barrier points, with
// every recovered run checked bit-identical to its fault-free baseline.
//
// With -policy it runs the fixed-vs-adaptive protocol policy sweep: the
// app kernels across directive modes, fabrics, and hlrc policies, with
// per-cell result-bit identity asserted and the cells where the adaptive
// policy beats every fixed policy reported (optionally as JSONL via
// -policy-out).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parade/internal/harness"
	"parade/internal/obs"
)

// metricsPoint is one cluster run's observability summary in the
// -metrics report: which figure, series, and node count produced it.
type metricsPoint struct {
	Figure  string          `json:"figure"`
	Series  string          `json:"series"`
	Nodes   int             `json:"nodes"`
	Metrics json.RawMessage `json:"metrics"`
}

// writeMetrics dumps the collected per-run metrics as one JSON document.
func writeMetrics(path string, points []metricsPoint) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Schema string         `json:"schema"`
		Points []metricsPoint `json:"points"`
	}{Schema: "parade-bench-metrics/v1", Points: points})
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6..11 or 'all'")
	nodesFlag := flag.String("nodes", "1,2,4,8", "comma-separated node counts")
	scale := flag.String("scale", "bench", "workload scale for figures: bench or paper; 'weak' runs the weak-scaling lane sweep instead")
	scaleLanes := flag.Int("scale-lanes", 0, "weak-scaling: lane worker count for the parallel series (0 = GOMAXPROCS)")
	scaleRounds := flag.Int("scale-rounds", 40, "weak-scaling: compute+barrier rounds per node")
	regress := flag.Bool("regress", false, "run benchmark suites and emit a JSON report instead of figures")
	out := flag.String("out", "-", "regress: report output path ('-' for stdout)")
	baseline := flag.String("baseline", "", "regress: prior report (JSON) or raw 'go test -bench' output to compare against")
	benchtime := flag.String("benchtime", "1s", "regress: -benchtime passed to go test")
	maxRegress := flag.Float64("max-regress", 0, "regress: exit non-zero if any benchmark slows more than this factor vs baseline (0 disables)")
	metricsOut := flag.String("metrics", "", "write per-figure observability metrics JSON to this file ('-' for stdout)")
	chaos := flag.Bool("chaos", false, "run the fault-injection matrix (app kernels under every fault profile) instead of figures")
	chaosNodes := flag.Int("chaos-nodes", 4, "chaos: cluster size")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault-plane seed")
	chaosLanes := flag.Int("chaos-lanes", 0, "chaos: event-lane workers (0 = legacy kernel)")
	chaosApps := flag.String("chaos-apps", "", "chaos: comma-separated subset of helmholtz,ep,cg,md,quad,taskdep,lockmix (empty = all)")
	chaosProfiles := flag.String("chaos-profiles", "", "chaos: comma-separated subset of drop,dup,reorder,straggler,chaos (empty = all)")
	crash := flag.Bool("crash", false, "run the crash-stop acceptance matrix (checkpoint/restart recovery) instead of figures")
	crashNodes := flag.Int("crash-nodes", 4, "crash: cluster size")
	crashLanes := flag.Int("crash-lanes", 0, "crash: event-lane workers (0 = legacy kernel)")
	crashApps := flag.String("crash-apps", "", "crash: comma-separated subset of helmholtz,ep,cg,md,quad,taskdep,lockmix (empty = all)")
	chaosPolicy := flag.String("chaos-policy", "", "chaos: hlrc protocol policy for every run (empty = legacy)")
	crashPolicy := flag.String("crash-policy", "", "crash: hlrc protocol policy for every run (empty = legacy)")
	policy := flag.Bool("policy", false, "run the fixed-vs-adaptive protocol policy sweep instead of figures")
	policyNodes := flag.Int("policy-nodes", 4, "policy: cluster size")
	policyLanes := flag.Int("policy-lanes", 0, "policy: event-lane workers for the comparison runs (0 = legacy kernel)")
	policyApps := flag.String("policy-apps", "", "policy: comma-separated subset of helmholtz,ep,cg,md,quad,taskdep,lockmix (empty = all)")
	policyModes := flag.String("policy-modes", "", "policy: comma-separated subset of hybrid,sdsm (empty = both)")
	policyFabrics := flag.String("policy-fabrics", "", "policy: comma-separated subset of via,tcp (empty = both)")
	policyOut := flag.String("policy-out", "", "policy: write the sweep as JSONL to this file ('-' for stdout)")
	flag.Parse()

	if *policy {
		opt := harness.PolicyOptions{Nodes: *policyNodes, Lanes: *policyLanes}
		if *policyApps != "" {
			opt.Apps = splitList(*policyApps)
		}
		if *policyModes != "" {
			opt.Modes = splitList(*policyModes)
		}
		if *policyFabrics != "" {
			opt.Fabrics = splitList(*policyFabrics)
		}
		rep, err := harness.RunPolicySweep(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *policyOut != "" {
			w := os.Stdout
			if *policyOut != "-" {
				f, err := os.Create(*policyOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				w = f
			}
			if err := rep.WriteJSONL(w); err != nil {
				fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	if *crash {
		opt := harness.CrashOptions{Nodes: *crashNodes, Lanes: *crashLanes, Policy: *crashPolicy}
		if *crashApps != "" {
			opt.Apps = splitList(*crashApps)
		}
		rep, err := harness.RunCrash(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	if *chaos {
		opt := harness.ChaosOptions{Nodes: *chaosNodes, Seed: *chaosSeed, Lanes: *chaosLanes, Policy: *chaosPolicy}
		if *chaosApps != "" {
			opt.Apps = splitList(*chaosApps)
		}
		if *chaosProfiles != "" {
			opt.Profiles = splitList(*chaosProfiles)
		}
		rep, err := harness.RunChaos(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	if *regress {
		n, err := runRegress(*out, *baseline, *benchtime, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "parade-bench: %d benchmark(s) regressed\n", n)
			os.Exit(1)
		}
		return
	}

	if *scale == "weak" {
		// The sweep's default node list is the 8->1024 weak-scaling ladder;
		// an explicit -nodes overrides it (the figure default would not
		// exercise lane parallelism).
		list := "8,16,32,64,128,256,512,1024"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "nodes" {
				list = *nodesFlag
			}
		})
		nodes, err := parseNodes(list)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(2)
		}
		if err := runScaleSweep(nodes, *scaleLanes, *scaleRounds, *out); err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var nodes []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "parade-bench: bad node count %q\n", s)
			os.Exit(2)
		}
		nodes = append(nodes, n)
	}

	ids := []int{6, 7, 8, 9, 10, 11}
	if *fig != "all" {
		id, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: bad figure %q\n", *fig)
			os.Exit(2)
		}
		ids = []int{id}
	}
	var points []metricsPoint
	for _, id := range ids {
		var obsFn harness.ObsFunc
		if *metricsOut != "" {
			figID := fmt.Sprintf("Fig%d", id)
			obsFn = func(series string, n int, m *obs.Metrics) {
				var buf bytes.Buffer
				if err := m.WriteJSON(&buf); err != nil {
					fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
					os.Exit(1)
				}
				points = append(points, metricsPoint{
					Figure: figID, Series: series, Nodes: n,
					Metrics: json.RawMessage(buf.Bytes()),
				})
			}
		}
		f, err := harness.ByIDObserved(id, nodes, harness.Scale(*scale), obsFn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(f.Render())
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, points); err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
