// Command parade-bench regenerates the paper's evaluation figures
// (Figs. 6-11) as text tables. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parade/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6..11 or 'all'")
	nodesFlag := flag.String("nodes", "1,2,4,8", "comma-separated node counts")
	scale := flag.String("scale", "bench", "workload scale: bench or paper")
	flag.Parse()

	var nodes []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "parade-bench: bad node count %q\n", s)
			os.Exit(2)
		}
		nodes = append(nodes, n)
	}

	ids := []int{6, 7, 8, 9, 10, 11}
	if *fig != "all" {
		id, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: bad figure %q\n", *fig)
			os.Exit(2)
		}
		ids = []int{id}
	}
	for _, id := range ids {
		f, err := harness.ByID(id, nodes, harness.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "parade-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(f.Render())
	}
}
