// Command parade-translate is the ParADE OpenMP translator CLI: it
// compiles an OpenMP C source file into a Go program against the public
// parade runtime API (paper §4).
//
//	parade-translate -o out.go input.c
package main

import (
	"flag"
	"fmt"
	"os"

	"parade/internal/translator"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	threshold := flag.Int("threshold", 256, "hybridization threshold in bytes (paper §5.2.1)")
	pkg := flag.String("pkg", "main", "emitted package name")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: parade-translate [-o out.go] [-threshold N] input.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "parade-translate: %v\n", err)
		os.Exit(1)
	}
	code, err := translator.Translate(string(src), translator.Options{
		SmallThreshold: *threshold,
		Package:        *pkg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "parade-translate: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "parade-translate: %v\n", err)
		os.Exit(1)
	}
}
