// Hybrid-vs-SDSM: the paper's central comparison as a library client.
// The same program — threads contending on a critical section around a
// small shared counter, a single-initialized parameter, and a reduction
// — runs once under the ParADE hybrid runtime and once under the
// conventional lock-based SDSM lowering (KDSM). The printed counters
// show exactly what the hybrid model eliminates: lock round-trips, page
// fetches, twins and diffs on the synchronization path.
//
// Run with: go run ./examples/hybrid-vs-sdsm
package main

import (
	"fmt"
	"log"

	"parade"
)

func main() {
	const (
		nodes = 4
		reps  = 50
	)
	for _, mode := range []parade.Mode{parade.Hybrid, parade.SDSM} {
		cfg := parade.Config{
			Nodes:          nodes,
			ThreadsPerNode: 2,
			Mode:           mode,
			HomeMigration:  mode == parade.Hybrid,
		}
		var final, reduced float64
		report, err := parade.Run(cfg, func(m *parade.Thread) {
			counter := m.Cluster().ScalarVar("counter")
			scale := m.Cluster().ScalarVar("scale")
			m.Parallel(func(tc *parade.Thread) {
				// A single initializes the run parameter once; in hybrid
				// mode the value travels by broadcast, not by barrier.
				tc.Single("init-scale", scale, func() { scale.Set(tc, 2.0) })
				tc.Barrier()

				// The statically analyzable critical block of Fig. 2.
				for i := 0; i < reps; i++ {
					tc.Critical("bump", []*parade.Scalar{counter}, func() {
						counter.Add(tc, scale.Get(tc))
					})
				}

				// And a reduction clause.
				r := tc.Reduce("check", parade.OpSum, 1.0)
				tc.Master(func() { reduced = r })
			})
			m.Parallel(func(tc *parade.Thread) {}) // settle SDSM diffs
			final = counter.Get(m)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s counter=%6.0f threads=%2.0f time=%-12v\n",
			mode.String()+":", final, reduced, report.Time)
		fmt.Printf("               %s\n\n", report.Counters.String())
	}
	fmt.Println("Note how the hybrid run performs zero lock_requests and zero")
	fmt.Println("page_fetches on the synchronization path, while the SDSM run")
	fmt.Println("pays a lock round-trip plus invalidation and page fetch per")
	fmt.Println("critical execution — the effect behind the paper's Figs. 6-7.")
}
