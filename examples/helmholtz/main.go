// Helmholtz: the paper's §6.2 equation-solver workload as a library
// client — a Jacobi iteration with over-relaxation whose convergence
// test is a reduction. Runs the same problem under all three of the
// paper's thread/CPU configurations and prints the Fig. 10-style series.
//
// Run with: go run ./examples/helmholtz
package main

import (
	"fmt"
	"log"
	"math"

	"parade"
)

func main() {
	const (
		grid    = 128
		maxIter = 60
		alpha   = 0.05
	)

	configs := []struct {
		label string
		make  func(nodes int) parade.Config
	}{
		{"1Thread-1CPU", parade.Config1T1C},
		{"1Thread-2CPU", parade.Config1T2C},
		{"2Thread-2CPU", parade.Config2T2C},
	}

	fmt.Printf("Helmholtz %dx%d, %d iterations (cLAN VIA)\n", grid, grid, maxIter)
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "config", "1 node", "2 nodes", "4 nodes", "8 nodes")
	for _, c := range configs {
		fmt.Printf("%-14s", c.label)
		for _, nodes := range []int{1, 2, 4, 8} {
			elapsed, residual := solve(c.make(nodes), grid, maxIter, alpha)
			_ = residual
			fmt.Printf(" %9.4fs", elapsed.Seconds())
		}
		fmt.Println()
	}
}

// solve runs the Jacobi solver on one cluster configuration and returns
// the kernel time and final residual.
func solve(cfg parade.Config, n, maxIter int, alpha float64) (parade.Duration, float64) {
	dx := 2.0 / float64(n-1)
	ax := 1.0 / (dx * dx)
	b := -4.0/(dx*dx) - alpha

	var kernel parade.Duration
	var residual float64
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		c := m.Cluster()
		u := c.AllocF64(n * n)
		uold := c.AllocF64(n * n)
		f := c.AllocF64(n * n)

		var t0 int64
		m.Parallel(func(tc *parade.Thread) {
			tc.For(0, n, func(i int) {
				x := -1.0 + dx*float64(i)
				for j := 0; j < n; j++ {
					y := -1.0 + dx*float64(j)
					f.Set(tc, i*n+j, -alpha*(1-x*x)*(1-y*y)-2*(1-x*x)-2*(1-y*y))
				}
			})
			tc.Master(func() { t0 = int64(tc.Now()) })

			errv := 1.0
			for k := 0; k < maxIter && errv > 1e-12; k++ {
				tc.For(0, n, func(i int) {
					for j := 0; j < n; j++ {
						uold.Set(tc, i*n+j, u.Get(tc, i*n+j))
					}
				})
				partial := 0.0
				tc.For(1, n-1, func(i int) {
					for j := 1; j < n-1; j++ {
						r := (ax*(uold.Get(tc, (i-1)*n+j)+uold.Get(tc, (i+1)*n+j)+
							uold.Get(tc, i*n+j-1)+uold.Get(tc, i*n+j+1)) +
							b*uold.Get(tc, i*n+j) - f.Get(tc, i*n+j)) / b
						u.Set(tc, i*n+j, uold.Get(tc, i*n+j)-r)
						partial += r * r
					}
				})
				errv = math.Sqrt(tc.Reduce("err", parade.OpSum, partial)) / float64(n*n)
			}
			tc.Master(func() {
				kernel = parade.Duration(int64(tc.Now()) - t0)
				residual = errv
			})
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	return kernel, residual
}
