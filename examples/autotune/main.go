// Autotune: the paper's §8 adaptive-configuration idea in action. The
// same Helmholtz solve is measured under every thread/CPU configuration
// and node count; the tuner picks the fastest. Because communication
// costs grow with the cluster while per-node work shrinks, the best
// configuration depends on the problem size — exactly the paper's
// observation that "more processors do not always give better
// performance".
//
// Run with: go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"math"

	"parade"
)

func main() {
	for _, grid := range []int{48, 160} {
		fmt.Printf("Helmholtz %dx%d, 40 iterations:\n", grid, grid)
		best := tune(grid)
		fmt.Printf("  -> best: %s\n\n", best)
	}
}

// tune sweeps configurations and returns the fastest one's description.
func tune(grid int) string {
	type trial struct {
		label string
		time  parade.Duration
	}
	var best trial
	for _, shape := range []struct {
		label    string
		tpn, cpu int
	}{
		{"1Thread-1CPU", 1, 1},
		{"1Thread-2CPU", 1, 2},
		{"2Thread-2CPU", 2, 2},
	} {
		for _, nodes := range []int{1, 2, 4, 8} {
			cfg := parade.Config{
				Nodes: nodes, ThreadsPerNode: shape.tpn, CPUsPerNode: shape.cpu,
				HomeMigration: true,
			}
			elapsed := solve(cfg, grid)
			label := fmt.Sprintf("%s x %d nodes", shape.label, nodes)
			fmt.Printf("  %-28s %9.4fs\n", label, elapsed.Seconds())
			if best.label == "" || elapsed < best.time {
				best = trial{label, elapsed}
			}
		}
	}
	return fmt.Sprintf("%s (%.4fs)", best.label, best.time.Seconds())
}

// solve is a compact Jacobi solve measuring the iteration loop.
func solve(cfg parade.Config, n int) parade.Duration {
	var kernel parade.Duration
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		c := m.Cluster()
		u := c.AllocF64(n * n)
		uold := c.AllocF64(n * n)
		var t0 int64
		m.Parallel(func(tc *parade.Thread) {
			tc.For(0, n, func(i int) {
				for j := 0; j < n; j++ {
					u.Set(tc, i*n+j, float64((i*j)%7))
				}
			})
			tc.Master(func() { t0 = int64(tc.Now()) })
			for k := 0; k < 40; k++ {
				tc.For(0, n, func(i int) {
					for j := 0; j < n; j++ {
						uold.Set(tc, i*n+j, u.Get(tc, i*n+j))
					}
				})
				partial := 0.0
				tc.For(1, n-1, func(i int) {
					for j := 1; j < n-1; j++ {
						v := 0.25 * (uold.Get(tc, (i-1)*n+j) + uold.Get(tc, (i+1)*n+j) +
							uold.Get(tc, i*n+j-1) + uold.Get(tc, i*n+j+1))
						u.Set(tc, i*n+j, v)
						d := v - uold.Get(tc, i*n+j)
						partial += d * d
					}
				})
				_ = math.Sqrt(tc.Reduce("err", parade.OpSum, partial))
			}
			tc.Master(func() { kernel = parade.Duration(int64(tc.Now()) - t0) })
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	return kernel
}
