// Quickstart: a parallel vector sum on a simulated 4-node SMP cluster.
//
// The program demonstrates the core ParADE workflow: allocate shared
// memory, fork a parallel region, share a loop statically, and combine
// per-thread partials with a reduction — which the hybrid runtime lowers
// to a single MPI_Allreduce instead of SDSM locks and barriers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parade"
)

func main() {
	cfg := parade.Config{
		Nodes:          4,
		ThreadsPerNode: 2,
		HomeMigration:  true, // the paper's migratory-home HLRC variant
	}

	const n = 1 << 15
	var sum float64
	report, err := parade.Run(cfg, func(m *parade.Thread) {
		// Serial section: the master allocates and initializes shared
		// data. Pages live on node 0 until other nodes claim them.
		a := m.Cluster().AllocF64(n)
		for i := 0; i < n; i++ {
			a.Set(m, i, float64(i+1))
		}

		// Parallel region: every team thread (4 nodes x 2 threads) runs
		// this closure, like an "omp parallel" block.
		m.Parallel(func(tc *parade.Thread) {
			// Static work sharing with the implicit end-of-loop barrier.
			squares := m.Cluster().AllocF64(n)
			tc.For(0, n, func(i int) {
				v := a.Get(tc, i)
				squares.Set(tc, i, v*v)
			})

			// Per-thread partial over this thread's static range...
			lo, hi := tc.StaticRange(0, n)
			partial := 0.0
			for i := lo; i < hi; i++ {
				partial += a.Get(tc, i)
			}
			// ...combined with a reduction clause: ONE collective.
			total := tc.Reduce("sum", parade.OpSum, partial)
			tc.Master(func() { sum = total })
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	want := float64(n) * float64(n+1) / 2
	fmt.Printf("sum(1..%d) = %.0f (want %.0f)\n", n, sum, want)
	fmt.Printf("virtual execution time: %v\n", report.Time)
	fmt.Printf("protocol counters: %s\n", report.Counters.String())
}
