package parade_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"parade"
)

// The golden API-surface test: the exported surface of the parade
// package — package-level symbols plus the methods of every re-exported
// runtime type — is diffed against testdata/api_surface.golden. A
// deliberate API change regenerates the golden with
//
//	go test -run TestPublicAPISurface -update-api .
//
// and the diff lands in review; an accidental change fails CI.

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api_surface.golden")

const apiGolden = "testdata/api_surface.golden"

// surfaceTypes are the re-exported types whose method sets are part of
// the public contract (aliases resolve to internal types, so the AST of
// this package alone would miss their methods).
func surfaceTypes() map[string]reflect.Type {
	return map[string]reflect.Type{
		"*Thread":      reflect.TypeOf(&parade.Thread{}),
		"*Cluster":     reflect.TypeOf(&parade.Cluster{}),
		"*Scalar":      reflect.TypeOf(&parade.Scalar{}),
		"Report":       reflect.TypeOf(parade.Report{}),
		"Config":       reflect.TypeOf(parade.Config{}),
		"F64Array":     reflect.TypeOf(parade.F64Array{}),
		"I64Array":     reflect.TypeOf(parade.I64Array{}),
		"Op":           reflect.TypeOf(parade.OpSum),
		"Mode":         reflect.TypeOf(parade.Hybrid),
		"ScheduleKind": reflect.TypeOf(parade.Static),
		"DepKind":      reflect.TypeOf(parade.In),
		"MapDir":       reflect.TypeOf(parade.MapTo),
	}
}

func currentSurface(t *testing.T) string {
	t.Helper()
	var lines []string

	// Package-level exported declarations, from the source.
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() {
						lines = append(lines, "func "+d.Name.Name)
					}
				case *ast.GenDecl:
					kind := map[token.Token]string{
						token.CONST: "const", token.VAR: "var", token.TYPE: "type",
					}[d.Tok]
					if kind == "" {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								lines = append(lines, "type "+s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() {
									lines = append(lines, kind+" "+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}

	// Method sets of the re-exported types, with full signatures.
	for label, typ := range surfaceTypes() {
		for i := 0; i < typ.NumMethod(); i++ {
			m := typ.Method(i)
			sig := strings.ReplaceAll(m.Func.Type().String(), "core.", "")
			lines = append(lines, fmt.Sprintf("method %s.%s %s", label, m.Name, sig))
		}
	}

	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func TestPublicAPISurface(t *testing.T) {
	got := currentSurface(t)
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", apiGolden)
		return
	}
	want, err := os.ReadFile(apiGolden)
	if err != nil {
		t.Fatalf("missing golden (run `go test -run TestPublicAPISurface -update-api .`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed.\nIf deliberate, regenerate with `go test -run TestPublicAPISurface -update-api .` and include the golden diff in review.\n--- want\n%s\n--- got\n%s", want, got)
	}
}
