// Package parade is the public API of the ParADE reproduction: an OpenMP
// programming environment for SMP cluster systems (Kee, Kim, Ha — SC'03)
// rebuilt as a deterministic simulation library in Go.
//
// A ParADE program is a function of a master Thread. Serial sections run
// on the master; Thread.Parallel forks the team across the simulated
// cluster's nodes. Work-sharing and synchronization directives mirror
// OpenMP: For, Critical, Atomic, Single, Master, Barrier, Reduce. Large
// shared data lives in software distributed shared memory kept coherent
// by home-based lazy release consistency with migratory home; directives
// that guard small, statically analyzable data are executed with
// message-passing collectives instead of SDSM locks — the paper's hybrid
// execution model.
//
// Quick start:
//
//	cfg := parade.Config{Nodes: 4, ThreadsPerNode: 2, HomeMigration: true}
//	report, err := parade.Run(cfg, func(m *parade.Thread) {
//		a := m.Cluster().AllocF64(1 << 16)
//		m.Parallel(func(tc *parade.Thread) {
//			tc.For(0, a.Len(), func(i int) { a.Set(tc, i, float64(i)) })
//			sum := tc.Reduce("sum", parade.OpSum, partialOf(tc, a))
//			tc.Master(func() { fmt.Println("sum:", sum) })
//		})
//	})
//
// The same program runs under the conventional SDSM baseline (KDSM) by
// setting Mode: parade.SDSM and HomeMigration: false, which is how the
// paper's microbenchmark comparisons are produced.
//
// Loop schedules are functional options on Thread.For — WithSchedule
// selects static, dynamic, or guided distribution; Nowait elides the
// implicit barrier; WithIterCost attaches a per-iteration virtual
// compute cost. Irregular workloads use the tasking runtime:
// Thread.Task spawns deferred work onto the spawner's node deque,
// Thread.Taskloop turns a loop into stealable chunks, and
// Thread.Taskwait joins the team and returns the merged task results.
// Idle nodes steal queued tasks over the simulated fabric, and results
// merge in a canonical order, so the answer is bit-identical across
// steal schedules, fault profiles, and crash recoveries.
//
// Tasks compose into dependence graphs with WithDepend: in/out/inout
// clauses on shared addresses (DepAddr), abstract named objects
// (DepName), or named sibling tasks (DepTask, registered with
// WithTaskName) order tasks by the spawning context's program order, so
// the graph — and every result bit — is identical across steal
// schedules, fault profiles, crash schedules, and lane counts. Circular
// depend sets are rejected with *TaskCycleError. Thread.Target pins a
// task to a device node, with WithMap moving its pages eagerly (map to:
// one batched prefetch before the body; map from: queued for the
// spawner's next barrier refresh) instead of demand-faulting. A
// Config.Hetero profile makes per-node compute speed non-uniform, so
// device placement becomes observable in run times.
package parade

import (
	"parade/internal/core"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// Re-exported runtime types. The aliases keep one implementation while
// giving downstream users a stable import path.
type (
	// Config describes a simulated cluster (see core.Config).
	Config = core.Config
	// Thread is an OpenMP thread execution context.
	Thread = core.Thread
	// Cluster is the runtime instance behind a running program.
	Cluster = core.Cluster
	// Report carries the virtual execution time and protocol counters.
	Report = core.Report
	// Mode selects hybrid (ParADE) or conventional (SDSM) lowering.
	Mode = core.Mode
	// Op is a reduction operator.
	Op = core.Op
	// Scalar is a small shared variable managed by the update protocol.
	Scalar = core.Scalar
	// F64Array is a shared float64 array in distributed shared memory.
	F64Array = core.F64Array
	// I64Array is a shared int64 array in distributed shared memory.
	I64Array = core.I64Array
	// ScheduleKind selects a work-sharing loop's schedule clause.
	ScheduleKind = core.ScheduleKind
	// ForOption configures Thread.For and Thread.Taskloop (see
	// WithSchedule, Nowait, WithIterCost, WithName, WithGrainsize).
	ForOption = core.ForOption
	// ForTaskOption is a clause valid on both surfaces — the work-sharing
	// loops (For) and the tasking constructs (Task, Taskloop, Target).
	// Every loop-shaped option this package provides is one.
	ForTaskOption = core.ForTaskOption
	// TaskOption configures Thread.Task, Thread.Taskloop and
	// Thread.Target (see WithDepend, WithTaskName, WithPriority, WithMap;
	// every ForTaskOption is also a TaskOption).
	TaskOption = core.TaskOption
	// DepKind classifies a depend clause: how the task accesses the
	// handles it names (In, Out, InOut).
	DepKind = core.DepKind
	// DepHandle names one dependence object of a depend clause (see
	// DepAddr, DepName, DepTask).
	DepHandle = core.DepHandle
	// MapDir is the direction of a Target data-mapping clause (MapTo,
	// MapFrom, MapToFrom).
	MapDir = core.MapDir
	// MapSpec is one resolved map clause: a direction and its page set.
	MapSpec = core.MapSpec
	// Mappable is a shared-memory object accepted by WithMap; F64Array
	// and I64Array are Mappable.
	Mappable = core.Mappable
	// TaskCycleError reports a circular depend set; Run returns it
	// (errors.As-matchable) and aborts the program.
	TaskCycleError = core.TaskCycleError
	// Hetero is a per-node compute-speed profile for Config.Hetero.
	Hetero = netsim.Hetero
	// Fabric holds interconnect performance parameters.
	Fabric = netsim.Fabric
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
)

// Execution modes.
const (
	// Hybrid is the ParADE execution model (collectives for small data).
	Hybrid = core.Hybrid
	// SDSM is the conventional lock-based lowering (the KDSM baseline).
	SDSM = core.SDSM
)

// Reduction operators.
const (
	OpSum  = core.OpSum
	OpMax  = core.OpMax
	OpMin  = core.OpMin
	OpProd = core.OpProd
)

// Loop schedules (the schedule clause of Thread.For).
const (
	// Static is the paper's §4.3 schedule: contiguous per-thread blocks.
	Static = core.Static
	// Dynamic serves fixed-size chunks first-come-first-served from a
	// chunk server on the master node.
	Dynamic = core.Dynamic
	// Guided serves exponentially shrinking chunks floored at the
	// configured minimum.
	Guided = core.Guided
)

// Dependence kinds (the depend clause of WithDepend).
const (
	// In declares the task a reader: it runs after the handle's last
	// Out/InOut writer.
	In = core.In
	// Out declares the task a writer: it runs after the handle's last
	// writer and after every reader registered since.
	Out = core.Out
	// InOut declares the task both; ordering is identical to Out.
	InOut = core.InOut
)

// Map directions (the map clause of WithMap).
const (
	// MapTo pushes the mapped pages to the device before the body runs.
	MapTo = core.MapTo
	// MapFrom queues the mapped pages for the spawning node's next
	// barrier-time refresh after the task completes.
	MapFrom = core.MapFrom
	// MapToFrom combines both directions.
	MapToFrom = core.MapToFrom
)

// WithSchedule selects a loop's schedule: the fixed chunk size under
// Dynamic, the minimum chunk under Guided; ignored under Static.
func WithSchedule(kind ScheduleKind, chunk int) ForTaskOption {
	return core.WithSchedule(kind, chunk)
}

// Nowait elides a loop's implicit trailing barrier (the nowait clause).
func Nowait() ForTaskOption { return core.Nowait() }

// WithIterCost charges d of virtual processor time per loop iteration.
func WithIterCost(d Duration) ForTaskOption { return core.WithIterCost(d) }

// WithName names a loop site; dynamic and guided loops key their chunk
// server by it, and Taskloop uses it for tracing.
func WithName(name string) ForTaskOption { return core.WithName(name) }

// WithGrainsize sets Taskloop's chunk length (iterations per spawned
// task); under Dynamic/Guided schedules it is an alias for the chunk.
func WithGrainsize(g int) ForTaskOption { return core.WithGrainsize(g) }

// DepAddr names a shared-memory address as a dependence object (the
// OpenMP `depend(in: a[i])` form); see F64Array.Addr.
func DepAddr(addr int) DepHandle { return core.DepAddr(addr) }

// DepName names an abstract dependence object — a resource with no
// single address (a file, a phase, a whole array).
func DepName(name string) DepHandle { return core.DepName(name) }

// DepTask names a sibling task registered with WithTaskName: the
// depending task runs only after that task completes. References no
// sibling ever registers resolve vacuously at the context's end;
// circular reference sets are rejected with *TaskCycleError.
func DepTask(name string) DepHandle { return core.DepTask(name) }

// WithDepend declares a task's dependences of one kind on the given
// handles (the depend clause); repeat the option to mix kinds. Ordering
// between tasks follows their spawn order in the spawning context, so
// the graph is identical across steal schedules, fault profiles, crash
// schedules, and lane counts.
func WithDepend(kind DepKind, handles ...DepHandle) TaskOption {
	return core.WithDepend(kind, handles...)
}

// WithTaskName registers the task under name in its spawning context so
// later siblings can order themselves after it with DepTask(name).
func WithTaskName(name string) TaskOption { return core.WithTaskName(name) }

// WithPriority hints the scheduler to prefer this task: a node's threads
// pop higher priorities first and thieves steal the lowest. Priority
// never overrides dependence order.
func WithPriority(p int) TaskOption { return core.WithPriority(p) }

// WithMap attaches a data-mapping clause to a Target task: the pages of
// the given objects move eagerly in the clause's direction instead of
// demand-faulting through the DSM.
func WithMap(dir MapDir, objs ...Mappable) TaskOption { return core.WithMap(dir, objs...) }

// HeteroByName builds a named per-node speed profile for Config.Hetero:
// "uniform" (or "") is the uniform cluster, "fasthalf" makes the second
// half of the nodes 2x slower, "slow1" makes node 1 4x slower.
func HeteroByName(name string, nodes int) (*Hetero, error) {
	return netsim.HeteroByName(name, nodes)
}

// Run builds a simulated cluster from cfg and executes program on the
// master thread, returning the run report.
func Run(cfg Config, program func(master *Thread)) (Report, error) {
	return core.Run(cfg, program)
}

// VIA returns the Giganet cLAN Virtual Interface Architecture fabric of
// the paper's testbed.
func VIA() Fabric { return netsim.VIA() }

// TCP returns the Fast Ethernet TCP/IP fabric (MPI/Pro-style).
func TCP() Fabric { return netsim.TCP() }

// Config1T1C, Config1T2C and Config2T2C are the paper's three
// thread/CPU configurations (§6.2).
var (
	Config1T1C = core.Config1T1C
	Config1T2C = core.Config1T2C
	Config2T2C = core.Config2T2C
)
