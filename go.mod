module parade

go 1.22
