package parade_test

import (
	"fmt"

	"parade"
)

// A complete ParADE program: allocate shared memory, fork the team,
// share a loop, and reduce. The output is deterministic because the
// whole cluster is simulated.
func ExampleRun() {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 2, HomeMigration: true}
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		a := m.Cluster().AllocF64(100)
		for i := 0; i < 100; i++ {
			a.Set(m, i, float64(i+1))
		}
		m.Parallel(func(tc *parade.Thread) {
			lo, hi := tc.StaticRange(0, 100)
			partial := 0.0
			for i := lo; i < hi; i++ {
				partial += a.Get(tc, i)
			}
			sum := tc.Reduce("sum", parade.OpSum, partial)
			tc.Master(func() { fmt.Printf("sum = %.0f\n", sum) })
		})
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: sum = 5050
}

// The hybrid critical directive: a statically analyzable accumulation
// into a small shared scalar becomes one collective per team round — no
// SDSM lock, no page traffic.
func ExampleThread_Critical() {
	cfg := parade.Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		counter := m.Cluster().ScalarVar("counter")
		m.Parallel(func(tc *parade.Thread) {
			for i := 0; i < 10; i++ {
				tc.Critical("bump", []*parade.Scalar{counter}, func() {
					counter.Add(tc, 1)
				})
			}
		})
		fmt.Printf("counter = %.0f\n", counter.Get(m))
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: counter = 40
}

// The single directive: one thread initializes a run parameter, and the
// hybrid runtime broadcasts it to every node's replica instead of
// running a lock-plus-barrier sequence.
func ExampleThread_Single() {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 2}
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		scale := m.Cluster().ScalarVar("scale")
		seen := make([]float64, 4)
		m.Parallel(func(tc *parade.Thread) {
			tc.Single("init", scale, func() { scale.Set(tc, 2.5) })
			tc.Barrier()
			seen[tc.GID()] = scale.Get(tc)
		})
		fmt.Println(seen)
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: [2.5 2.5 2.5 2.5]
}

// Loop schedules are functional options on For: here the dynamic
// schedule (the paper's future-work extension) spreads an imbalanced
// loop across the team chunk by chunk.
func ExampleThread_For() {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 1}
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		shares := make([]int, 2)
		m.Parallel(func(tc *parade.Thread) {
			// Each iteration carries compute cost, so chunks interleave
			// between the nodes instead of one racing through them all.
			tc.For(0, 100, func(i int) {
				shares[tc.GID()]++
			}, parade.WithName("work"), parade.WithSchedule(parade.Dynamic, 8),
				parade.WithIterCost(50*1000))
		})
		fmt.Printf("both threads got work: %v (total %d)\n",
			shares[0] > 0 && shares[1] > 0, shares[0]+shares[1])
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: both threads got work: true (total 100)
}

// Explicit tasks: spawned work lands on the spawner's node deque, idle
// nodes steal it over the fabric, and Taskwait returns the merged sum
// of every task's result — identical on all threads, bit-for-bit, no
// matter which node executed what.
func ExampleThread_Task() {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 1}
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		m.Parallel(func(tc *parade.Thread) {
			if tc.GID() == 0 {
				for k := 1; k <= 10; k++ {
					v := float64(k)
					tc.Task(func(ex *parade.Thread) float64 { return v })
				}
			}
			total := tc.Taskwait()
			tc.Master(func() { fmt.Printf("total = %.0f\n", total) })
		})
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: total = 55
}

// Task dependence graphs: depend clauses on a named handle order a
// producer -> transformer -> consumer pipeline without intermediate
// taskwaits. The edges follow spawn order in the spawning context, so
// the graph — and the joined result — is bit-identical across steal
// schedules, fault profiles, and lane counts.
func ExampleWithDepend() {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 1}
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		a := m.Cluster().AllocF64(8)
		m.Parallel(func(tc *parade.Thread) {
			if tc.GID() == 0 {
				tc.Task(func(ex *parade.Thread) float64 {
					for i := 0; i < 8; i++ {
						a.Set(ex, i, float64(i))
					}
					return 0
				}, parade.WithDepend(parade.Out, parade.DepName("a")),
					parade.WithTaskName("fill"))
				tc.Task(func(ex *parade.Thread) float64 {
					for i := 0; i < 8; i++ {
						a.Set(ex, i, a.Get(ex, i)*10)
					}
					return 0
				}, parade.WithDepend(parade.InOut, parade.DepName("a")))
				tc.Task(func(ex *parade.Thread) float64 {
					s := 0.0
					for i := 0; i < 8; i++ {
						s += a.Get(ex, i)
					}
					return s
				}, parade.WithDepend(parade.In, parade.DepName("a")))
			}
			total := tc.Taskwait()
			tc.Master(func() { fmt.Printf("total = %.0f\n", total) })
		})
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: total = 280
}

// Target offload: the task body is pinned to device node 1 instead of
// being stealable, and the map clause pushes the input pages ahead of
// the body in one batched transfer instead of demand-faulting them.
func ExampleThread_Target() {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 1}
	hetero, err := parade.HeteroByName("fasthalf", 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg.Hetero = hetero
	_, err = parade.Run(cfg, func(m *parade.Thread) {
		a := m.Cluster().AllocF64(64)
		for i := 0; i < 64; i++ {
			a.Set(m, i, 1.0)
		}
		m.Parallel(func(tc *parade.Thread) {
			if tc.GID() == 0 {
				tc.Target(1, func(dev *parade.Thread) float64 {
					s := 0.0
					for i := 0; i < 64; i++ {
						s += a.Get(dev, i)
					}
					return s
				}, parade.WithMap(parade.MapTo, a))
			}
			sum := tc.Taskwait()
			tc.Master(func() { fmt.Printf("device sum = %.0f\n", sum) })
		})
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: device sum = 64
}

// Taskloop chunks an iteration space into stealable tasks and joins
// them, returning the summed body results.
func ExampleThread_Taskloop() {
	cfg := parade.Config{Nodes: 2, ThreadsPerNode: 2}
	_, err := parade.Run(cfg, func(m *parade.Thread) {
		m.Parallel(func(tc *parade.Thread) {
			sum := tc.Taskloop(1, 101, func(ex *parade.Thread, i int) float64 {
				return float64(i)
			}, parade.WithGrainsize(10))
			tc.Master(func() { fmt.Printf("sum = %.0f\n", sum) })
		})
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: sum = 5050
}
