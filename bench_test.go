package parade_test

// One benchmark per figure of the paper's evaluation (Figs. 6-11), plus
// ablation benchmarks for the design decisions DESIGN.md calls out. The
// interesting output is the reported custom metrics: virtual seconds (or
// microseconds per directive) on the simulated Pentium-III/cLAN cluster,
// which are what EXPERIMENTS.md compares against the paper. Go's ns/op
// for these benchmarks measures simulator throughput, not the paper's
// quantities.
//
// The full paper-scale sweeps are produced by cmd/parade-bench; the
// benchmarks here run the same code on bench-scale workloads so the
// whole suite completes in minutes.

import (
	"fmt"
	"testing"

	"parade/internal/apps"
	"parade/internal/core"
	"parade/internal/dsm"
	"parade/internal/kdsm"
	"parade/internal/microbench"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// paradeCfg is the ParADE runtime at n nodes, one thread per node.
func paradeCfg(n int) core.Config {
	return core.Config{Nodes: n, ThreadsPerNode: 1, Mode: core.Hybrid, HomeMigration: true}.WithDefaults()
}

// benchMicro runs one directive microbenchmark under both systems for
// the node sweep, reporting virtual us/op.
func benchMicro(b *testing.B, run func(core.Config, int) (microbench.Result, error)) {
	for _, nodes := range []int{1, 2, 4, 8} {
		for _, sys := range []struct {
			label string
			cfg   core.Config
		}{
			{"ParADE", paradeCfg(nodes)},
			{"KDSM", kdsm.Config(nodes, 1, 2)},
		} {
			b.Run(fmt.Sprintf("%s/nodes=%d", sys.label, nodes), func(b *testing.B) {
				b.ReportAllocs()
				var perOp sim.Duration
				for i := 0; i < b.N; i++ {
					r, err := run(sys.cfg, 100)
					if err != nil {
						b.Fatal(err)
					}
					perOp = r.PerOp
				}
				b.ReportMetric(perOp.Micros(), "virtual-us/op")
			})
		}
	}
}

func BenchmarkFig6Critical(b *testing.B) { benchMicro(b, microbench.Critical) }

func BenchmarkFig7Single(b *testing.B) { benchMicro(b, microbench.Single) }

// benchApp sweeps the paper's three configurations at 4 nodes (one
// representative point per configuration), reporting virtual seconds.
func benchApp(b *testing.B, run func(cfg core.Config) (sim.Duration, error)) {
	for _, c := range []struct {
		label string
		cfg   core.Config
	}{
		{"1T1C", core.Config1T1C(4)},
		{"1T2C", core.Config1T2C(4)},
		{"2T2C", core.Config2T2C(4)},
	} {
		b.Run(c.label, func(b *testing.B) {
			b.ReportAllocs()
			var kernel sim.Duration
			for i := 0; i < b.N; i++ {
				d, err := run(c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				kernel = d
			}
			b.ReportMetric(kernel.Seconds(), "virtual-s")
		})
	}
}

func BenchmarkFig8CG(b *testing.B) {
	class := apps.CGClassS
	if testing.Short() {
		class = apps.CGClassT
	}
	benchApp(b, func(cfg core.Config) (sim.Duration, error) {
		r, err := apps.RunCG(cfg, class)
		return r.KernelTime, err
	})
}

func BenchmarkFig9EP(b *testing.B) {
	class := apps.EPClass{Name: "bench", M: 18, PerPair: apps.EPClassA.PerPair}
	benchApp(b, func(cfg core.Config) (sim.Duration, error) {
		r, err := apps.RunEP(cfg, class)
		return r.KernelTime, err
	})
}

func BenchmarkFig10Helmholtz(b *testing.B) {
	prm := apps.HelmholtzDefault()
	prm.N, prm.M, prm.MaxIter = 96, 96, 40
	benchApp(b, func(cfg core.Config) (sim.Duration, error) {
		r, err := apps.RunHelmholtz(cfg, prm)
		return r.KernelTime, err
	})
}

func BenchmarkFig11MD(b *testing.B) {
	prm := apps.MDDefault()
	prm.NP, prm.Steps = 128, 10
	benchApp(b, func(cfg core.Config) (sim.Duration, error) {
		r, err := apps.RunMD(cfg, prm)
		return r.KernelTime, err
	})
}

// BenchmarkAblationHomeMigration isolates the migratory-home extension:
// CG with the home fixed at the master versus homes following the sole
// modifier. The virtual-s and page-fetch metrics show the locality win.
func BenchmarkAblationHomeMigration(b *testing.B) {
	// Class W is the smallest class whose vectors span enough pages for
	// per-node block ownership to exist (at class S and below a node's
	// vector block is under one page, so every page is multi-writer and
	// no home can migrate).
	for _, mig := range []bool{false, true} {
		b.Run(fmt.Sprintf("migration=%v", mig), func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: mig}.WithDefaults()
			var kernel sim.Duration
			var fetches, diffs int64
			for i := 0; i < b.N; i++ {
				r, err := apps.RunCG(cfg, apps.CGClassW)
				if err != nil {
					b.Fatal(err)
				}
				kernel = r.KernelTime
				fetches = r.Report.Counters.PageFetches
				diffs = r.Report.Counters.DiffsCreated
			}
			b.ReportMetric(kernel.Seconds(), "virtual-s")
			b.ReportMetric(float64(fetches), "page-fetches")
			b.ReportMetric(float64(diffs), "diffs")
		})
	}
}

// BenchmarkAblationHybridThreshold sweeps the small-structure threshold:
// below the guarded data's size the critical falls back to SDSM locks.
func BenchmarkAblationHybridThreshold(b *testing.B) {
	const scalarsInBlock = 8 // 64 bytes of guarded data
	for _, threshold := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			b.ReportAllocs()
			cfg := paradeCfg(4)
			cfg.SmallThreshold = threshold
			var elapsed sim.Duration
			for i := 0; i < b.N; i++ {
				var start, end sim.Time
				_, err := core.Run(cfg, func(m *core.Thread) {
					scalars := make([]*core.Scalar, scalarsInBlock)
					for k := range scalars {
						scalars[k] = m.Cluster().ScalarVar(fmt.Sprintf("s%d", k))
					}
					m.Parallel(func(tc *core.Thread) {}) // warm
					m.Parallel(func(tc *core.Thread) {
						tc.Master(func() { start = tc.Now() })
						for r := 0; r < 50; r++ {
							tc.Critical("abl", scalars, func() {
								for _, s := range scalars {
									s.Add(tc, 1)
								}
							})
						}
						tc.Barrier()
						tc.Master(func() { end = tc.Now() })
					})
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = sim.Duration(end - start)
			}
			b.ReportMetric(elapsed.Micros()/50, "virtual-us/critical")
		})
	}
}

// BenchmarkAblationCommThread isolates the dedicated communication
// thread: the same communication-heavy loop with and without a spare
// processor for it.
func BenchmarkAblationCommThread(b *testing.B) {
	for _, c := range []struct {
		label string
		cfg   core.Config
	}{
		{"shared-cpu-1T1C", core.Config1T1C(4)},
		{"dedicated-cpu-1T2C", core.Config1T2C(4)},
	} {
		b.Run(c.label, func(b *testing.B) {
			b.ReportAllocs()
			var kernel sim.Duration
			for i := 0; i < b.N; i++ {
				r, err := apps.RunHelmholtz(c.cfg, apps.HelmholtzTest())
				if err != nil {
					b.Fatal(err)
				}
				kernel = r.KernelTime
			}
			b.ReportMetric(kernel.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkAblationUpdateStrategy compares the four atomic-page-update
// methods of §5.1 (the paper found them comparable on Linux).
func BenchmarkAblationUpdateStrategy(b *testing.B) {
	for _, s := range []dsm.UpdateStrategy{dsm.FileMapping, dsm.SysVShm, dsm.Mdup, dsm.ChildProcess} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfg := paradeCfg(4)
			cfg.Strategy = s
			var kernel sim.Duration
			for i := 0; i < b.N; i++ {
				r, err := apps.RunCG(cfg, apps.CGClassT)
				if err != nil {
					b.Fatal(err)
				}
				kernel = r.KernelTime
			}
			b.ReportMetric(kernel.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkAblationFabric compares the cLAN VIA fabric against TCP/IP
// over Fast Ethernet for a communication-sensitive workload.
func BenchmarkAblationFabric(b *testing.B) {
	for _, f := range []netsim.Fabric{netsim.VIA(), netsim.TCP()} {
		b.Run(f.Name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := paradeCfg(4)
			cfg.Fabric = f
			var kernel sim.Duration
			for i := 0; i < b.N; i++ {
				r, err := apps.RunHelmholtz(cfg, apps.HelmholtzTest())
				if err != nil {
					b.Fatal(err)
				}
				kernel = r.KernelTime
			}
			b.ReportMetric(kernel.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkAblationLockProtocol compares three synchronization designs
// on the contended-critical microbenchmark: ParADE's collectives, KDSM's
// cached (lazy-release) lock tokens, and the plain centralized lock.
func BenchmarkAblationLockProtocol(b *testing.B) {
	for _, sys := range []struct {
		label string
		cfg   core.Config
	}{
		{"parade-collective", paradeCfg(4)},
		{"kdsm-cached-token", kdsm.ConfigCached(4, 1, 2)},
		{"kdsm-centralized", kdsm.Config(4, 1, 2)},
	} {
		b.Run(sys.label, func(b *testing.B) {
			b.ReportAllocs()
			var perOp sim.Duration
			for i := 0; i < b.N; i++ {
				r, err := microbench.Critical(sys.cfg, 100)
				if err != nil {
					b.Fatal(err)
				}
				perOp = r.PerOp
			}
			b.ReportMetric(perOp.Micros(), "virtual-us/op")
		})
	}
}

// BenchmarkAblationDynamicSchedule runs a triangular (imbalanced) loop
// under the static schedule and the dynamic extension.
func BenchmarkAblationDynamicSchedule(b *testing.B) {
	const n = 512
	for _, dyn := range []bool{false, true} {
		label := "static"
		if dyn {
			label = "dynamic"
		}
		b.Run(label, func(b *testing.B) {
			b.ReportAllocs()
			var start, end sim.Time
			for i := 0; i < b.N; i++ {
				_, err := core.Run(paradeCfg(4), func(m *core.Thread) {
					m.Parallel(func(tc *core.Thread) {}) // warm
					m.Parallel(func(tc *core.Thread) {
						tc.Master(func() { start = tc.Now() })
						body := func(it int) {
							tc.Compute(sim.Duration(it) * sim.Microsecond)
						}
						if dyn {
							tc.ForDynamic("tri", 0, n, 8, 0, body)
						} else {
							tc.For(0, n, body)
						}
						tc.Master(func() { end = tc.Now() })
					})
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric((sim.Duration(end-start)).Seconds()*1e3, "virtual-ms")
		})
	}
}
