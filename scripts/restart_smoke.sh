#!/usr/bin/env bash
# Restart-recovery smoke for the WAL-backed fleet service: SIGKILL a
# parade-serve mid-batch, restart it over the same WAL, and require
# every durably completed cell to come back from cache (bit-for-bit the
# stored result) with zero re-executions — the crash-safety contract,
# exercised on a real process with a real SIGKILL rather than the
# in-process harness.
#
# Usage: scripts/restart_smoke.sh [addr]   (default 127.0.0.1:18081)
set -euo pipefail

ADDR=${1:-127.0.0.1:18081}
CELLS=16
DIR=$(mktemp -d)
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$DIR"' EXIT
WAL="$DIR/results.wal"

go build -o "$DIR/parade-serve" ./cmd/parade-serve

batch() {
  # Distinct cells (seed is config identity), slow enough that a kill
  # lands mid-batch.
  for seed in $(seq 1 "$CELLS"); do
    printf '{"id":"smoke-%d","app":"cg","mode":"hybrid","nodes":4,"seed":%d}\n' "$seed" "$seed"
  done
}

start_server() {
  "$DIR/parade-serve" -addr "$ADDR" -workers 2 -wal "$WAL" 2>"$DIR/serve.log" &
  SERVE_PID=$!
  for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return; fi
    sleep 0.2
  done
  echo "restart_smoke: server did not come up" >&2
  cat "$DIR/serve.log" >&2
  exit 1
}

scrape() {
  curl -fsS "http://$ADDR/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

echo "restart_smoke: starting server, submitting $CELLS cells, SIGKILL mid-batch"
start_server
batch | curl -s --max-time 120 -X POST --data-binary @- "http://$ADDR/v1/jobs" >"$DIR/first.jsonl" &
CURL_PID=$!
# Kill the instant results start landing in the WAL.
for _ in $(seq 1 200); do
  [ -s "$WAL" ] && break
  sleep 0.05
done
[ -s "$WAL" ] || { echo "restart_smoke: no WAL append before timeout" >&2; exit 1; }
kill -9 "$SERVE_PID"
wait "$CURL_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "restart_smoke: restarting over the WAL"
start_server
REPLAYED=$(scrape parade_fleet_wal_replayed_records_total)
EXECS=$(scrape parade_fleet_executions_total)
echo "restart_smoke: replayed=$REPLAYED executions=$EXECS"
[ "$REPLAYED" -ge 1 ] || { echo "restart_smoke: nothing replayed after restart" >&2; exit 1; }
[ "$EXECS" -eq 0 ] || { echo "restart_smoke: restart executed $EXECS jobs before any request" >&2; exit 1; }

batch | curl -fsS --max-time 300 -X POST --data-binary @- "http://$ADDR/v1/jobs" >"$DIR/second.jsonl"
CACHED=$(grep -c '"cached":true' "$DIR/second.jsonl" || true)
EXECS_AFTER=$(scrape parade_fleet_executions_total)
echo "restart_smoke: cached=$CACHED executions_after=$EXECS_AFTER"
# Every recovered cell is a cache hit; only the never-completed remainder
# executes. A torn final record is allowed to have been truncated (that
# cell simply re-executes).
[ "$CACHED" -eq "$REPLAYED" ] || { echo "restart_smoke: $CACHED cache hits, want $REPLAYED (one per recovered cell)" >&2; exit 1; }
[ "$EXECS_AFTER" -eq $((CELLS - REPLAYED)) ] || { echo "restart_smoke: $EXECS_AFTER executions, want $((CELLS - REPLAYED))" >&2; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "restart_smoke OK: $REPLAYED cells survived SIGKILL and were served from the recovered WAL with zero re-executions"
