#!/bin/sh
# Benchmark-regression harness: runs the substrate benchmark suites
# (event kernel, lane kernel, diff engine, directive microbenchmarks,
# Fig 6/7) with -benchmem, comparing against the numbers recorded in
# bench/baseline_pr6.json (regenerated after the lane-kernel PR so the
# lane benchmarks are anchored; the pre-overhaul numbers remain in
# bench/baseline_pr0.txt). Benchmarks absent from the baseline are
# reported as "new". Writes BENCH_PR1.json unless the caller picks
# another -out; `-out -` streams the report to stdout and creates no
# file at all.
#
# Usage: scripts/bench.sh [extra parade-bench -regress flags]
# e.g.   scripts/bench.sh -benchtime 0.1s -max-regress 1.5 -out -
set -eu
cd "$(dirname "$0")/.."

baseline=bench/baseline_pr6.json
if [ ! -f "$baseline" ]; then
    echo "bench.sh: baseline $baseline is missing; the regression gate would check nothing." >&2
    echo "bench.sh: restore it (git checkout -- $baseline) or record a new one with:" >&2
    echo "bench.sh:   go run ./cmd/parade-bench -regress -out $baseline" >&2
    exit 1
fi

# Apply the default report path only when the caller did not pick one,
# instead of relying on flag-override order -- that way `-out -` can
# never leave a stray BENCH_PR1.json behind.
out_set=0
for arg in "$@"; do
    case "$arg" in
    -out | -out=* | --out | --out=*) out_set=1 ;;
    esac
done
set -- -baseline "$baseline" "$@"
if [ "$out_set" -eq 0 ]; then
    set -- -out BENCH_PR1.json "$@"
fi

# Report header: make the measurement environment visible in the log
# (the JSON report records the same via go_version/gomaxprocs/num_cpu).
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)
echo "bench.sh: $(go version)" >&2
echo "bench.sh: GOMAXPROCS=${GOMAXPROCS:-unset} nproc=$ncpu" >&2

exec go run ./cmd/parade-bench -regress "$@"
