#!/bin/sh
# Benchmark-regression harness: runs the substrate benchmark suites
# (event kernel, diff engine, directive microbenchmarks, Fig 6/7) with
# -benchmem and writes BENCH_PR1.json, comparing against the pre-overhaul
# numbers recorded in bench/baseline_pr0.txt.
#
# Usage: scripts/bench.sh [extra parade-bench -regress flags]
# e.g.   scripts/bench.sh -benchtime 100x -out -
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/parade-bench -regress \
    -baseline bench/baseline_pr0.txt \
    -out BENCH_PR1.json \
    "$@"
