package apps

import (
	"fmt"
	"math"

	"parade/internal/core"
	"parade/internal/sim"
)

// The NAS EP kernel (§6.2): generate pairs of uniform deviates with the
// NPB LCG, accept those inside the unit circle, convert them to Gaussian
// deviates with the polar method, and tally sums and annulus counts.
// "Embarrassingly parallel": there is essentially no shared memory, and
// the only communication is the terminal reduction — which ParADE's
// translator lowers to a single collective over the merged accumulator
// struct (sx, sy, q[0..9]), per §4.2's merged-reduction rule.

// EPClass parameterizes the kernel: 2^M pairs.
type EPClass struct {
	Name    string
	M       int
	PerPair sim.Duration // virtual cost per generated pair
}

// EP problem classes. T is test-sized; S/W/A follow NPB 2.3 (A = 2^28).
var (
	EPClassT = EPClass{Name: "T", M: 16, PerPair: 200 * sim.Nanosecond}
	EPClassS = EPClass{Name: "S", M: 24, PerPair: 200 * sim.Nanosecond}
	EPClassW = EPClass{Name: "W", M: 25, PerPair: 200 * sim.Nanosecond}
	EPClassA = EPClass{Name: "A", M: 28, PerPair: 200 * sim.Nanosecond}
)

// EPClassByName resolves a class letter.
func EPClassByName(name string) (EPClass, error) {
	switch name {
	case "T":
		return EPClassT, nil
	case "S":
		return EPClassS, nil
	case "W":
		return EPClassW, nil
	case "A":
		return EPClassA, nil
	}
	return EPClass{}, fmt.Errorf("apps: unknown EP class %q", name)
}

// epBlockBits is the log2 of pairs per work block (NPB's MK).
const epBlockBits = 12

// EPResult is the outcome of one EP run.
type EPResult struct {
	Sx, Sy     float64
	Counts     [10]float64 // Gaussian deviates per annulus
	Accepted   float64
	KernelTime sim.Duration
	Report     core.Report
}

// RunEP executes the EP kernel under cfg.
func RunEP(cfg core.Config, class EPClass) (EPResult, error) {
	cfg = cfg.WithDefaults()
	var res EPResult
	rep, err := core.Run(cfg, func(m *core.Thread) {
		blocks := 1 << (class.M - epBlockBits)
		pairsPerBlock := int64(1) << epBlockBits
		var t0 sim.Time

		m.Parallel(func(tc *core.Thread) {
			tc.Master(func() { t0 = tc.Now() })
			var sx, sy float64
			var q [10]float64
			tc.ForCostNowait(0, blocks, class.PerPair*sim.Duration(pairsPerBlock), func(b int) {
				// Jump the LCG to this block's stream.
				seed := PowLC(DefaultSeed, LCGA, 2*pairsPerBlock*int64(b))
				for k := int64(0); k < pairsPerBlock; k++ {
					x1 := 2*Randlc(&seed, LCGA) - 1
					x2 := 2*Randlc(&seed, LCGA) - 1
					t := x1*x1 + x2*x2
					if t > 1 {
						continue
					}
					tt := math.Sqrt(-2 * math.Log(t) / t)
					gx := x1 * tt
					gy := x2 * tt
					l := int(math.Max(math.Abs(gx), math.Abs(gy)))
					if l > 9 {
						l = 9
					}
					q[l]++
					sx += gx
					sy += gy
				}
			})
			// Merged-structure reduction: sx, sy, and the ten annulus
			// counters combine in ONE collective per §4.2 (or one
			// slot-array exchange in the SDSM baseline).
			contrib := make([]float64, 12)
			contrib[0], contrib[1] = sx, sy
			copy(contrib[2:], q[:])
			total := tc.ReduceVec("ep-acc", core.OpSum, contrib)
			tc.Master(func() {
				res.Sx, res.Sy = total[0], total[1]
				copy(res.Counts[:], total[2:])
			})
		})
		for _, v := range res.Counts {
			res.Accepted += v
		}
		res.KernelTime = sim.Duration(m.Now() - t0)
	})
	if err != nil {
		// A canceled run's partial report (counters, timing to the abort
		// point) rides along with the error for the -timeout stats dump.
		return EPResult{Report: rep}, err
	}
	res.Report = rep
	return res, nil
}
