package apps

import (
	"fmt"

	"parade/internal/core"
	"parade/internal/dsm"
	"parade/internal/sim"
)

// Lockmix is a synthetic lock-heavy kernel built to stress the SDSM
// lock protocols (the centralized manager of lock.go and the cached
// lazy-release tokens of lockcache.go) rather than the barrier path the
// numeric apps lean on. Every thread hammers a small set of named
// critical sections, each guarding a shared counter, while also
// streaming writes into a private page-sized slot — so lock traffic,
// token revocations, write-notice piggybacking, and diff flushes all
// interleave. Counters accumulate integer-valued floats, keeping the
// result exact and order-independent: every schedule (any fault
// profile, any crash placement) must converge to the same sum.
//
// Critical is called with nil scalars, which routes through the SDSM
// lock path in BOTH execution modes — hybrid's collective shortcut only
// fires for analyzable scalar updates, and the point here is the lock
// protocol itself.

// LockmixParams sizes the kernel.
type LockmixParams struct {
	Locks   int // distinct named critical sections
	Iters   int // per-thread passes over the lock set, per phase
	PerIter sim.Duration
}

// LockmixDefault is the standard shape.
func LockmixDefault() LockmixParams {
	return LockmixParams{Locks: 3, Iters: 8, PerIter: 2 * sim.Microsecond}
}

// LockmixTest is a small configuration for unit tests.
func LockmixTest() LockmixParams {
	return LockmixParams{Locks: 2, Iters: 4, PerIter: 2 * sim.Microsecond}
}

// LockmixResult is the outcome of one run.
type LockmixResult struct {
	Sum      float64 // final sum over the counters
	Expected float64 // what the sum must be
	Report   core.Report
}

// RunLockmix executes the kernel under cfg.
func RunLockmix(cfg core.Config, prm LockmixParams) (LockmixResult, error) {
	cfg = cfg.WithDefaults()
	var res LockmixResult
	rep, err := core.Run(cfg, func(m *core.Thread) {
		c := m.Cluster()
		nt := c.TotalThreads()
		stride := dsm.PageSize / 8 // floats per page
		// One page per counter: pages are the coherence unit, and the
		// SDSM's lock discipline requires that a page be written under
		// only one lock at a time (a dirty page named by an incoming
		// grant's notice keeps its local modifications — see
		// applyGrantInvalidations). Packing the counters onto one page
		// would be exactly that forbidden false sharing.
		counters := c.AllocF64(prm.Locks * stride)
		slots := c.AllocF64(nt * stride)
		for l := 0; l < prm.Locks; l++ {
			counters.Set(m, l*stride, 0)
		}

		names := make([]string, prm.Locks)
		for l := range names {
			names[l] = fmt.Sprintf("mix%d", l)
		}

		m.Parallel(func(tc *core.Thread) {
			gid := tc.GID()
			// Phase 1: every thread walks the lock set starting at a
			// different offset, so requests collide in shifting patterns
			// (queues form, tokens bounce).
			for it := 0; it < prm.Iters; it++ {
				for k := 0; k < prm.Locks; k++ {
					l := (gid + it + k) % prm.Locks
					tc.Critical(names[l], nil, func() {
						tc.Compute(prm.PerIter)
						counters.Set(tc, l*stride, counters.Get(tc, l*stride)+1)
						slots.Set(tc, gid*stride+it%stride,
							float64(gid+1))
					})
				}
			}
			tc.Barrier()

			// Phase 2: reverse walk, so the token migration pattern of
			// phase 1 runs against the grain.
			for it := 0; it < prm.Iters; it++ {
				for k := prm.Locks - 1; k >= 0; k-- {
					l := (gid + k) % prm.Locks
					tc.Critical(names[l], nil, func() {
						tc.Compute(prm.PerIter)
						counters.Set(tc, l*stride, counters.Get(tc, l*stride)+1)
					})
				}
			}
			tc.Barrier()

			// Each thread folds its own slot back in — a reduction over
			// data every thread wrote under locks.
			mine := slots.Get(tc, gid*stride)
			total := tc.Reduce("mix-slots", core.OpSum, mine)
			_ = total

			// Determinize: the master takes every lock once more, so
			// cached tokens end resident on node 0 no matter which node
			// happened to hold them last — final protocol state (and with
			// it the state fingerprint) is schedule-independent.
			tc.Master(func() {
				for l := 0; l < prm.Locks; l++ {
					tc.Critical(names[l], nil, func() {
						counters.Set(tc, l*stride, counters.Get(tc, l*stride)+1)
					})
				}
			})
			tc.Barrier()
		})

		var sum float64
		for l := 0; l < prm.Locks; l++ {
			sum += counters.Get(m, l*stride)
		}
		res.Sum = sum
		res.Expected = float64(2*nt*prm.Iters*prm.Locks + prm.Locks)
	})
	if err != nil {
		// A canceled run's partial report (counters, timing to the abort
		// point) rides along with the error for the -timeout stats dump.
		return LockmixResult{Report: rep}, err
	}
	res.Report = rep
	return res, nil
}
