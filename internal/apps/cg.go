package apps

import (
	"fmt"
	"math"
	"sort"

	"parade/internal/core"
	"parade/internal/sim"
)

// The NAS CG kernel (NPB 2.3, §6.2): estimate the smallest eigenvalue of
// a sparse symmetric positive-definite matrix with inverse power
// iteration, solving A z = x by 25 conjugate-gradient steps per outer
// iteration. The matrix is built, as in NPB's makea, as a weighted sum of
// outer products of random sparse vectors plus a unit diagonal (SPD by
// construction); the random stream is the NPB LCG. The generator here is
// a simplified makea (no banded reordering), so verification values are
// self-recorded goldens rather than the NPB reference zetas — the
// sharing pattern (read-only matrix, block-owned vectors, cluster-wide
// reads of p) is the same.

// CGClass parameterizes the kernel. PerNZ/PerVec are the virtual compute
// costs per matrix nonzero and per vector element, calibrated to the
// paper's Pentium-III nodes.
type CGClass struct {
	Name   string
	N      int     // matrix order
	NonZer int     // nonzeros per generated sparse vector
	NIter  int     // outer (power method) iterations
	Shift  float64 // eigenvalue shift
	CGIter int     // CG steps per outer iteration
	PerNZ  sim.Duration
	PerVec sim.Duration
}

// CG problem classes. T is a test-sized class; S/W/A follow NPB 2.3
// parameters (A's nonzer is 11; execution at class A is supported but
// slow in the simulator, so benches default to S).
var (
	CGClassT = CGClass{Name: "T", N: 240, NonZer: 5, NIter: 4, Shift: 6, CGIter: 25, PerNZ: 40 * sim.Nanosecond, PerVec: 20 * sim.Nanosecond}
	CGClassS = CGClass{Name: "S", N: 1400, NonZer: 7, NIter: 15, Shift: 10, CGIter: 25, PerNZ: 40 * sim.Nanosecond, PerVec: 20 * sim.Nanosecond}
	CGClassW = CGClass{Name: "W", N: 7000, NonZer: 8, NIter: 15, Shift: 12, CGIter: 25, PerNZ: 40 * sim.Nanosecond, PerVec: 20 * sim.Nanosecond}
	CGClassA = CGClass{Name: "A", N: 14000, NonZer: 11, NIter: 15, Shift: 20, CGIter: 25, PerNZ: 40 * sim.Nanosecond, PerVec: 20 * sim.Nanosecond}
)

// CGClassByName resolves a class letter.
func CGClassByName(name string) (CGClass, error) {
	switch name {
	case "T":
		return CGClassT, nil
	case "S":
		return CGClassS, nil
	case "W":
		return CGClassW, nil
	case "A":
		return CGClassA, nil
	}
	return CGClass{}, fmt.Errorf("apps: unknown CG class %q", name)
}

// CGResult is the outcome of one CG run.
type CGResult struct {
	Zeta       float64
	RNorm      float64 // final residual norm of the last CG solve
	NZ         int     // nonzeros in the generated matrix
	KernelTime sim.Duration
	Report     core.Report
}

// RunCG executes the CG kernel under cfg.
func RunCG(cfg core.Config, class CGClass) (CGResult, error) {
	cfg = cfg.WithDefaults()
	// Size the pool like the paper's CG (64 MB at class A): matrix CSR +
	// five vectors + slack.
	nzCap := class.N*(class.NonZer+1)*(class.NonZer+1) + class.N
	need := nzCap*16 + (class.N+1)*8 + 6*class.N*8 + (1 << 20)
	if cfg.ShmBytes < need {
		cfg.ShmBytes = need
	}

	var res CGResult
	rep, err := core.Run(cfg, func(m *core.Thread) {
		c := m.Cluster()

		// Generate the sparse matrix serially on the master (setup, not
		// timed), then copy into shared CSR arrays.
		rows, nz := cgMakeMatrix(class)
		res.NZ = nz
		a := c.AllocF64(nz)
		colidx := c.AllocI64(nz)
		rowstr := c.AllocI64(class.N + 1)
		k := 0
		for i, row := range rows {
			rowstr.Set(m, i, int64(k))
			for _, e := range row {
				a.Set(m, k, e.v)
				colidx.Set(m, k, int64(e.col))
				k++
			}
		}
		rowstr.Set(m, class.N, int64(k))

		x := c.AllocF64(class.N)
		z := c.AllocF64(class.N)
		p := c.AllocF64(class.N)
		q := c.AllocF64(class.N)
		r := c.AllocF64(class.N)

		n := class.N
		avgRow := class.PerNZ * sim.Duration(nz/n+1)
		var t0 sim.Time

		m.Parallel(func(tc *core.Thread) {
			tc.ForCost(0, n, class.PerVec, func(i int) { x.Set(tc, i, 1.0) })
			tc.Master(func() { t0 = tc.Now() })

			for it := 1; it <= class.NIter; it++ {
				// conj_grad: solve A z = x.
				tc.ForCost(0, n, class.PerVec, func(i int) {
					xi := x.Get(tc, i)
					q.Set(tc, i, 0)
					z.Set(tc, i, 0)
					r.Set(tc, i, xi)
					p.Set(tc, i, xi)
				})
				lo, hi := tc.StaticRange(0, n)
				partial := 0.0
				for i := lo; i < hi; i++ {
					ri := r.Get(tc, i)
					partial += ri * ri
				}
				tc.Compute(class.PerVec * sim.Duration(hi-lo))
				rho := tc.Reduce("cg-rho", core.OpSum, partial)

				for cgit := 0; cgit < class.CGIter; cgit++ {
					// q = A p
					tc.ForCostNowait(0, n, avgRow, func(i int) {
						s, e := int(rowstr.Get(tc, i)), int(rowstr.Get(tc, i+1))
						sum := 0.0
						for kk := s; kk < e; kk++ {
							sum += a.Get(tc, kk) * p.Get(tc, int(colidx.Get(tc, kk)))
						}
						q.Set(tc, i, sum)
					})
					// d = p . q (the For's barrier is folded into the
					// reduction's own synchronization).
					partial = 0.0
					for i := lo; i < hi; i++ {
						partial += p.Get(tc, i) * q.Get(tc, i)
					}
					tc.Compute(class.PerVec * sim.Duration(hi-lo))
					d := tc.Reduce("cg-d", core.OpSum, partial)
					alpha := rho / d
					// z += alpha p ; r -= alpha q
					partial = 0.0
					tc.ForCostNowait(0, n, 2*class.PerVec, func(i int) {
						z.Set(tc, i, z.Get(tc, i)+alpha*p.Get(tc, i))
						ri := r.Get(tc, i) - alpha*q.Get(tc, i)
						r.Set(tc, i, ri)
						partial += ri * ri
					})
					rho0 := rho
					rho = tc.Reduce("cg-rho", core.OpSum, partial)
					beta := rho / rho0
					// p = r + beta p
					tc.ForCost(0, n, class.PerVec, func(i int) {
						p.Set(tc, i, r.Get(tc, i)+beta*p.Get(tc, i))
					})
				}

				// Residual norm ||x - A z|| and zeta.
				partial = 0.0
				tc.ForCostNowait(0, n, avgRow, func(i int) {
					s, e := int(rowstr.Get(tc, i)), int(rowstr.Get(tc, i+1))
					sum := 0.0
					for kk := s; kk < e; kk++ {
						sum += a.Get(tc, kk) * z.Get(tc, int(colidx.Get(tc, kk)))
					}
					di := x.Get(tc, i) - sum
					partial += di * di
				})
				rnorm := math.Sqrt(tc.Reduce("cg-rnorm", core.OpSum, partial))

				partialXZ := 0.0
				partialZZ := 0.0
				for i := lo; i < hi; i++ {
					zi := z.Get(tc, i)
					partialXZ += x.Get(tc, i) * zi
					partialZZ += zi * zi
				}
				tc.Compute(2 * class.PerVec * sim.Duration(hi-lo))
				xz := tc.Reduce("cg-xz", core.OpSum, partialXZ)
				zz := tc.Reduce("cg-zz", core.OpSum, partialZZ)
				zeta := class.Shift + 1.0/xz
				znorm := 1.0 / math.Sqrt(zz)
				// x = z / ||z||
				tc.ForCost(0, n, class.PerVec, func(i int) {
					x.Set(tc, i, z.Get(tc, i)*znorm)
				})

				tc.Master(func() {
					res.Zeta = zeta
					res.RNorm = rnorm
				})
			}
		})
		res.KernelTime = sim.Duration(m.Now() - t0)
	})
	if err != nil {
		// A canceled run's partial report (counters, timing to the abort
		// point) rides along with the error for the -timeout stats dump.
		return CGResult{Report: rep}, err
	}
	res.Report = rep
	return res, nil
}

type cgEntry struct {
	col int
	v   float64
}

// cgMakeMatrix builds the CSR rows of the test matrix: a weighted sum of
// outer products of sparse random vectors plus a 0.1 diagonal (the shape
// of NPB's makea).
func cgMakeMatrix(class CGClass) ([][]cgEntry, int) {
	n := class.N
	seed := DefaultSeed
	rowMaps := make([]map[int]float64, n)
	for i := range rowMaps {
		rowMaps[i] = make(map[int]float64, class.NonZer*class.NonZer/2)
	}
	cols := make([]int, class.NonZer)
	vals := make([]float64, class.NonZer)
	ratio := math.Pow(0.1, 1.0/float64(n))
	weight := 1.0
	for i := 0; i < n; i++ {
		// One sparse vector with NonZer distinct random entries; row i is
		// always represented (NPB's vecset).
		used := map[int]bool{}
		for k := 0; k < class.NonZer; k++ {
			col := int(Randlc(&seed, LCGA) * float64(n))
			for used[col] || col >= n {
				col = int(Randlc(&seed, LCGA) * float64(n))
			}
			used[col] = true
			cols[k] = col
			vals[k] = Randlc(&seed, LCGA)
		}
		if !used[i] {
			cols[class.NonZer-1] = i
			vals[class.NonZer-1] = 0.5
		}
		for ka := 0; ka < class.NonZer; ka++ {
			for kb := 0; kb < class.NonZer; kb++ {
				rowMaps[cols[ka]][cols[kb]] += weight * vals[ka] * vals[kb]
			}
		}
		weight *= ratio
	}
	for i := 0; i < n; i++ {
		rowMaps[i][i] += 1.0
	}
	rows := make([][]cgEntry, n)
	nz := 0
	for i := 0; i < n; i++ {
		row := make([]cgEntry, 0, len(rowMaps[i]))
		for col, v := range rowMaps[i] {
			row = append(row, cgEntry{col: col, v: v})
		}
		sort.Slice(row, func(a, b int) bool { return row[a].col < row[b].col })
		rows[i] = row
		nz += len(row)
	}
	return rows, nz
}
