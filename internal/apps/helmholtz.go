package apps

import (
	"math"

	"parade/internal/core"
	"parade/internal/sim"
)

// The Helmholtz solver (§6.2, the jacobi.f OpenMP sample): solve
// (d²/dx² + d²/dy² - alpha) u = f on the unit square with a Jacobi
// iteration and over-relaxation. Each sweep copies u into uold, updates
// interior points from the uold stencil, and reduces the residual to
// test convergence — the "shared variable updated competitively" that
// ParADE's translator turns into a single reduction collective, which is
// why the paper sees near-linear scaling. Rows are block-partitioned, so
// nodes exchange only boundary-row pages with their neighbours.

// HelmholtzParams sizes the problem.
type HelmholtzParams struct {
	N, M     int     // grid points in x and y
	Alpha    float64 // Helmholtz constant
	Relax    float64 // over-relaxation factor
	Tol      float64 // convergence threshold
	MaxIter  int
	PerPoint sim.Duration // virtual cost per stencil point
}

// HelmholtzDefault mirrors the sample program's parameters at a
// simulator-friendly grid.
func HelmholtzDefault() HelmholtzParams {
	return HelmholtzParams{
		N: 192, M: 192, Alpha: 0.05, Relax: 1.0, Tol: 1e-10, MaxIter: 100,
		PerPoint: 100 * sim.Nanosecond,
	}
}

// HelmholtzTest is a small configuration for unit tests.
func HelmholtzTest() HelmholtzParams {
	return HelmholtzParams{
		N: 48, M: 48, Alpha: 0.05, Relax: 1.0, Tol: 1e-10, MaxIter: 20,
		PerPoint: 100 * sim.Nanosecond,
	}
}

// HelmholtzResult is the outcome of one run.
type HelmholtzResult struct {
	Error      float64 // final residual norm
	Iterations int
	KernelTime sim.Duration
	Report     core.Report
}

// RunHelmholtz executes the solver under cfg.
func RunHelmholtz(cfg core.Config, prm HelmholtzParams) (HelmholtzResult, error) {
	cfg = cfg.WithDefaults()
	need := 3*prm.N*prm.M*8 + (1 << 20)
	if cfg.ShmBytes < need {
		cfg.ShmBytes = need
	}
	var res HelmholtzResult
	rep, err := core.Run(cfg, func(m *core.Thread) {
		c := m.Cluster()
		n, mm := prm.N, prm.M
		u := c.AllocF64(n * mm)
		uold := c.AllocF64(n * mm)
		f := c.AllocF64(n * mm)

		dx := 2.0 / float64(n-1)
		dy := 2.0 / float64(mm-1)
		ax := 1.0 / (dx * dx)
		ay := 1.0 / (dy * dy)
		b := -2.0/(dx*dx) - 2.0/(dy*dy) - prm.Alpha

		var t0 sim.Time
		var iters int
		var finalErr float64

		m.Parallel(func(tc *core.Thread) {
			// Initialize RHS and the initial guess in parallel.
			tc.ForCost(0, n, prm.PerPoint*sim.Duration(mm), func(i int) {
				x := -1.0 + dx*float64(i)
				for j := 0; j < mm; j++ {
					y := -1.0 + dy*float64(j)
					u.Set(tc, i*mm+j, 0)
					f.Set(tc, i*mm+j, -prm.Alpha*(1-x*x)*(1-y*y)-2*(1-x*x)-2*(1-y*y))
				}
			})
			tc.Master(func() { t0 = tc.Now() })

			errv := prm.Tol * 10
			k := 0
			for k < prm.MaxIter && errv > prm.Tol {
				// uold = u
				tc.ForCost(0, n, prm.PerPoint*sim.Duration(mm)/4, func(i int) {
					for j := 0; j < mm; j++ {
						uold.Set(tc, i*mm+j, u.Get(tc, i*mm+j))
					}
				})
				// Stencil sweep with partial residual. The for keeps its
				// implicit barrier (u's pages must flush before the next
				// copy phase); only the residual combination itself is
				// lowered to the collective below.
				partial := 0.0
				tc.ForCost(1, n-1, prm.PerPoint*sim.Duration(mm), func(i int) {
					for j := 1; j < mm-1; j++ {
						resid := (ax*(uold.Get(tc, (i-1)*mm+j)+uold.Get(tc, (i+1)*mm+j)) +
							ay*(uold.Get(tc, i*mm+j-1)+uold.Get(tc, i*mm+j+1)) +
							b*uold.Get(tc, i*mm+j) - f.Get(tc, i*mm+j)) / b
						u.Set(tc, i*mm+j, uold.Get(tc, i*mm+j)-prm.Relax*resid)
						partial += resid * resid
					}
				})
				// The convergence test: one reduction collective (the
				// translator's lowering of the reduction clause).
				errv = math.Sqrt(tc.Reduce("helm-err", core.OpSum, partial)) / float64(n*mm)
				k++
			}
			tc.Master(func() {
				iters = k
				finalErr = errv
			})
		})
		res.Iterations = iters
		res.Error = finalErr
		res.KernelTime = sim.Duration(m.Now() - t0)
	})
	if err != nil {
		// A canceled run's partial report (counters, timing to the abort
		// point) rides along with the error for the -timeout stats dump.
		return HelmholtzResult{Report: rep}, err
	}
	res.Report = rep
	return res, nil
}
