package apps

import (
	"math"
	"testing"

	"parade/internal/core"
	"parade/internal/kdsm"
)

func TestRandlcMatchesLCG(t *testing.T) {
	// Cross-check the split-precision randlc against exact 64-bit
	// modular arithmetic: x' = a*x mod 2^46.
	x := DefaultSeed
	xi := int64(DefaultSeed)
	const a = int64(LCGA)
	const mod = int64(1) << 46
	for i := 0; i < 1000; i++ {
		Randlc(&x, LCGA)
		// 46-bit modular multiply via 128-bit-free decomposition.
		xi = mulMod46(xi, a)
		if int64(x) != xi {
			t.Fatalf("step %d: randlc state %v, exact %d", i, int64(x), xi)
		}
		_ = mod
	}
}

// mulMod46 computes (a*b) mod 2^46 without overflow.
func mulMod46(a, b int64) int64 {
	const mask = (int64(1) << 46) - 1
	lo := a & ((1 << 23) - 1)
	hi := a >> 23
	r := (lo * b) & mask
	r = (r + ((hi*b)&(mask>>23))<<23) & mask
	return r
}

func TestRandlcRange(t *testing.T) {
	x := DefaultSeed
	for i := 0; i < 10000; i++ {
		v := Randlc(&x, LCGA)
		if v <= 0 || v >= 1 {
			t.Fatalf("randlc out of (0,1): %v", v)
		}
	}
}

func TestPowLCJumpAhead(t *testing.T) {
	// Jumping k steps must equal stepping k times.
	x := DefaultSeed
	for i := 0; i < 137; i++ {
		Randlc(&x, LCGA)
	}
	if got := PowLC(DefaultSeed, LCGA, 137); got != x {
		t.Fatalf("PowLC 137 = %v, want %v", got, x)
	}
	if got := PowLC(DefaultSeed, LCGA, 0); got != DefaultSeed {
		t.Fatalf("PowLC 0 changed the seed: %v", got)
	}
}

func TestVranlc(t *testing.T) {
	out := make([]float64, 16)
	x := DefaultSeed
	Vranlc(16, &x, LCGA, out)
	y := DefaultSeed
	for i, v := range out {
		if w := Randlc(&y, LCGA); v != w {
			t.Fatalf("vranlc[%d] = %v, want %v", i, v, w)
		}
	}
}

func TestCGConvergesAndIsDeterministic(t *testing.T) {
	cfg := core.Config{Nodes: 2, ThreadsPerNode: 2}
	r1, err := RunCG(cfg, CGClassT)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RNorm > 1e-8 {
		t.Fatalf("CG residual %v did not converge", r1.RNorm)
	}
	if math.IsNaN(r1.Zeta) || r1.Zeta <= CGClassT.Shift {
		t.Fatalf("zeta = %v (shift %v)", r1.Zeta, CGClassT.Shift)
	}
	r2, err := RunCG(cfg, CGClassT)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Zeta != r2.Zeta || r1.KernelTime != r2.KernelTime {
		t.Fatalf("CG not deterministic: %v/%v vs %v/%v", r1.Zeta, r1.KernelTime, r2.Zeta, r2.KernelTime)
	}
}

func TestCGSameAnswerAcrossClusterShapes(t *testing.T) {
	ref, err := RunCG(core.Config{Nodes: 1, ThreadsPerNode: 1}, CGClassT)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{
		{Nodes: 1, ThreadsPerNode: 2},
		{Nodes: 2, ThreadsPerNode: 1},
		{Nodes: 4, ThreadsPerNode: 2},
	} {
		r, err := RunCG(cfg, CGClassT)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Zeta-ref.Zeta) > 1e-9 {
			t.Fatalf("cfg %dx%d zeta %v, reference %v", cfg.Nodes, cfg.ThreadsPerNode, r.Zeta, ref.Zeta)
		}
	}
}

func TestCGSameAnswerUnderSDSMMode(t *testing.T) {
	h, err := RunCG(core.Config{Nodes: 2, ThreadsPerNode: 1, Mode: core.Hybrid, HomeMigration: true}, CGClassT)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunCG(kdsm.Config(2, 1, 2), CGClassT)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Zeta-s.Zeta) > 1e-9 {
		t.Fatalf("hybrid zeta %v != SDSM zeta %v", h.Zeta, s.Zeta)
	}
}

func TestCGPageTrafficScalesWithNodes(t *testing.T) {
	r1, err := RunCG(core.Config{Nodes: 1, ThreadsPerNode: 1, HomeMigration: true}, CGClassT)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunCG(core.Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}, CGClassT)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Report.Counters.PageFetches <= r1.Report.Counters.PageFetches {
		t.Fatalf("page fetches: 4 nodes %d <= 1 node %d",
			r4.Report.Counters.PageFetches, r1.Report.Counters.PageFetches)
	}
}

func TestEPStatisticsAndDeterminism(t *testing.T) {
	cfg := core.Config{Nodes: 2, ThreadsPerNode: 2}
	r, err := RunEP(cfg, EPClassT)
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(int64(1) << EPClassT.M)
	// Acceptance rate of the polar method is pi/4.
	rate := r.Accepted / pairs
	if math.Abs(rate-math.Pi/4) > 0.01 {
		t.Fatalf("acceptance rate %v, want ~pi/4", rate)
	}
	// Gaussian sums stay near zero relative to the sample count.
	if math.Abs(r.Sx)/pairs > 0.01 || math.Abs(r.Sy)/pairs > 0.01 {
		t.Fatalf("sx=%v sy=%v too large for %v pairs", r.Sx, r.Sy, pairs)
	}
	// Counts decay by annulus.
	if !(r.Counts[0] > r.Counts[2] && r.Counts[2] > r.Counts[4]) {
		t.Fatalf("annulus counts not decaying: %v", r.Counts)
	}
	r2, err := RunEP(cfg, EPClassT)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sx != r2.Sx || r.Sy != r2.Sy {
		t.Fatal("EP not deterministic")
	}
}

func TestEPIndependentOfClusterShape(t *testing.T) {
	ref, err := RunEP(core.Config{Nodes: 1, ThreadsPerNode: 1}, EPClassT)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{
		{Nodes: 4, ThreadsPerNode: 1},
		{Nodes: 2, ThreadsPerNode: 2},
	} {
		r, err := RunEP(cfg, EPClassT)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Sx-ref.Sx) > 1e-6 || math.Abs(r.Sy-ref.Sy) > 1e-6 {
			t.Fatalf("cfg %+v: sx/sy %v/%v vs ref %v/%v", cfg, r.Sx, r.Sy, ref.Sx, ref.Sy)
		}
	}
}

func TestEPScalesNearLinearly(t *testing.T) {
	r1, err := RunEP(core.Config1T2C(1), EPClassT)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunEP(core.Config1T2C(4), EPClassT)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.KernelTime) / float64(r4.KernelTime)
	if speedup < 3.2 {
		t.Fatalf("EP speedup on 4 nodes = %.2f, want near-linear (>3.2)", speedup)
	}
}

func TestHelmholtzConvergesMonotonically(t *testing.T) {
	cfg := core.Config{Nodes: 2, ThreadsPerNode: 2}
	r, err := RunHelmholtz(cfg, HelmholtzTest())
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations != 20 {
		t.Fatalf("ran %d iterations, want full 20", r.Iterations)
	}
	if math.IsNaN(r.Error) || r.Error <= 0 {
		t.Fatalf("final error %v", r.Error)
	}
	// A longer run must reduce the residual further.
	longer := HelmholtzTest()
	longer.MaxIter = 60
	r2, err := RunHelmholtz(cfg, longer)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Error >= r.Error {
		t.Fatalf("error did not decrease: %v after 20, %v after 60", r.Error, r2.Error)
	}
}

func TestHelmholtzSameAnswerAcrossShapesAndModes(t *testing.T) {
	ref, err := RunHelmholtz(core.Config{Nodes: 1, ThreadsPerNode: 1}, HelmholtzTest())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{
		{Nodes: 4, ThreadsPerNode: 2, Mode: core.Hybrid, HomeMigration: true},
		kdsm.Config(2, 2, 2),
	} {
		r, err := RunHelmholtz(cfg, HelmholtzTest())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Error-ref.Error)/ref.Error > 1e-9 {
			t.Fatalf("cfg %+v error %v, ref %v", cfg, r.Error, ref.Error)
		}
	}
}

func TestHelmholtzUsesReductionCollective(t *testing.T) {
	r, err := RunHelmholtz(core.Config{Nodes: 4, ThreadsPerNode: 1}, HelmholtzTest())
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.Counters.HybridReductions < int64(r.Iterations) {
		t.Fatalf("only %d hybrid reductions for %d iterations",
			r.Report.Counters.HybridReductions, r.Iterations)
	}
	if r.Report.Counters.LockRequests != 0 {
		t.Fatalf("hybrid Helmholtz took %d SDSM locks", r.Report.Counters.LockRequests)
	}
}

func TestMDEnergyConservation(t *testing.T) {
	cfg := core.Config{Nodes: 2, ThreadsPerNode: 2}
	r, err := RunMD(cfg, MDTest())
	if err != nil {
		t.Fatal(err)
	}
	if r.E0 <= 0 {
		t.Fatalf("initial energy %v", r.E0)
	}
	if r.MaxDrift > 1e-4 {
		t.Fatalf("energy drift %v too large for velocity Verlet", r.MaxDrift)
	}
}

func TestMDSameAnswerAcrossShapes(t *testing.T) {
	ref, err := RunMD(core.Config{Nodes: 1, ThreadsPerNode: 1}, MDTest())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunMD(core.Config{Nodes: 4, ThreadsPerNode: 2}, MDTest())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.EFinal-ref.EFinal)/ref.E0 > 1e-9 {
		t.Fatalf("final energy %v vs reference %v", r.EFinal, ref.EFinal)
	}
}

func TestMDLessTrafficThanHelmholtz(t *testing.T) {
	// §6.2: "the amount of shared memory and inter-node communication of
	// MD is less than that of Helmholtz".
	cfg := core.Config{Nodes: 4, ThreadsPerNode: 1}
	h, err := RunHelmholtz(cfg, HelmholtzDefault())
	if err != nil {
		t.Fatal(err)
	}
	md, err := RunMD(cfg, MDDefault())
	if err != nil {
		t.Fatal(err)
	}
	if md.Report.Counters.Bytes >= h.Report.Counters.Bytes {
		t.Fatalf("MD moved %d bytes, Helmholtz %d — expected less",
			md.Report.Counters.Bytes, h.Report.Counters.Bytes)
	}
}

func TestClassResolvers(t *testing.T) {
	if c, err := CGClassByName("S"); err != nil || c.N != 1400 {
		t.Fatalf("CG class S: %+v %v", c, err)
	}
	if _, err := CGClassByName("Z"); err == nil {
		t.Fatal("bogus CG class accepted")
	}
	if c, err := EPClassByName("A"); err != nil || c.M != 28 {
		t.Fatalf("EP class A: %+v %v", c, err)
	}
	if _, err := EPClassByName("Z"); err == nil {
		t.Fatal("bogus EP class accepted")
	}
}

func TestLockmixSumMatchesExpectedAcrossShapes(t *testing.T) {
	for _, cfg := range []core.Config{
		{Nodes: 1, ThreadsPerNode: 2},
		{Nodes: 2, ThreadsPerNode: 1},
		{Nodes: 2, ThreadsPerNode: 2},
		{Nodes: 4, ThreadsPerNode: 1},
	} {
		for _, caching := range []bool{false, true} {
			c := cfg
			c.LockCaching = caching
			r, err := RunLockmix(c, LockmixTest())
			if err != nil {
				t.Fatal(err)
			}
			if r.Sum != r.Expected {
				t.Fatalf("cfg %dx%d caching=%v: sum %v, expected %v (lost a critical-section update)",
					cfg.Nodes, cfg.ThreadsPerNode, caching, r.Sum, r.Expected)
			}
		}
	}
}

func TestLockmixDeterministic(t *testing.T) {
	cfg := core.Config{Nodes: 2, ThreadsPerNode: 2, LockCaching: true}
	r1, err := RunLockmix(cfg, LockmixTest())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunLockmix(cfg, LockmixTest())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sum != r2.Sum || r1.Report.MemHash != r2.Report.MemHash || r1.Report.Time != r2.Report.Time {
		t.Fatalf("lockmix not deterministic: %v/%x/%v vs %v/%x/%v",
			r1.Sum, r1.Report.MemHash, r1.Report.Time, r2.Sum, r2.Report.MemHash, r2.Report.Time)
	}
}

func TestLockmixSameAnswerUnderSDSMMode(t *testing.T) {
	h, err := RunLockmix(core.Config{Nodes: 2, ThreadsPerNode: 1, Mode: core.Hybrid, HomeMigration: true}, LockmixTest())
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunLockmix(kdsm.Config(2, 1, 2), LockmixTest())
	if err != nil {
		t.Fatal(err)
	}
	if h.Sum != s.Sum || h.Sum != h.Expected {
		t.Fatalf("hybrid sum %v (want %v), SDSM sum %v", h.Sum, h.Expected, s.Sum)
	}
}
