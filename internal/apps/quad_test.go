package apps

import (
	"math"
	"testing"

	"parade/internal/core"
	"parade/internal/kdsm"
)

func TestQuadConvergesToReference(t *testing.T) {
	prm := QuadTest()
	r, err := RunQuad(core.Config{Nodes: 2, ThreadsPerNode: 2}, prm)
	if err != nil {
		t.Fatal(err)
	}
	ref := QuadReference(prm)
	if got := math.Abs(r.Integral - ref); got > 100*prm.Tol {
		t.Fatalf("adaptive integral %v, reference %v (|err| %v > %v)", r.Integral, ref, got, 100*prm.Tol)
	}
	if r.Report.Counters.TasksSpawned == 0 || r.Report.Counters.TasksExecuted != r.Report.Counters.TasksSpawned {
		t.Fatalf("tasks spawned %d executed %d", r.Report.Counters.TasksSpawned, r.Report.Counters.TasksExecuted)
	}
}

func TestQuadSameAnswerAcrossClusterShapes(t *testing.T) {
	// Task ids derive from the spawning thread, and Taskloop's default
	// grain scales with the team, so the float reduction GROUPING differs
	// across shapes (like every other kernel's) — the answers agree to
	// rounding. Bit-identity is asserted where the runtime promises it:
	// at fixed shape across steal orders, fault profiles, and crashes.
	prm := QuadTest()
	ref, err := RunQuad(core.Config{Nodes: 1, ThreadsPerNode: 1}, prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{
		{Nodes: 1, ThreadsPerNode: 4},
		{Nodes: 4, ThreadsPerNode: 1},
		{Nodes: 2, ThreadsPerNode: 2},
	} {
		r, err := RunQuad(cfg, prm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Integral-ref.Integral) > 1e-9 || math.Abs(r.TableSum-ref.TableSum) > 1e-9 {
			t.Fatalf("cfg %dx%d: integral %v / tablesum %v, reference %v / %v",
				cfg.Nodes, cfg.ThreadsPerNode, r.Integral, r.TableSum, ref.Integral, ref.TableSum)
		}
	}
}

func TestQuadStealsUnderImbalance(t *testing.T) {
	r, err := RunQuad(core.Config{Nodes: 4, ThreadsPerNode: 1}, QuadTest())
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.Counters.TasksStolen == 0 {
		t.Fatalf("chirp workload produced no steals: %s", r.Report.Counters.String())
	}
}

func TestQuadSameAnswerUnderSDSMMode(t *testing.T) {
	prm := QuadTest()
	h, err := RunQuad(core.Config{Nodes: 2, ThreadsPerNode: 1, Mode: core.Hybrid, HomeMigration: true}, prm)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunQuad(kdsm.Config(2, 1, 2), prm)
	if err != nil {
		t.Fatal(err)
	}
	if h.Integral != s.Integral || h.TableSum != s.TableSum {
		t.Fatalf("hybrid %v/%v != sdsm %v/%v", h.Integral, h.TableSum, s.Integral, s.TableSum)
	}
}

func TestQuadDeterministicAcrossSeeds(t *testing.T) {
	// Steal-order perturbation: the seed rotates victim selection, so
	// different seeds move different subtrees between nodes; results and
	// final memory must not notice.
	prm := QuadTest()
	ref, err := RunQuad(core.Config{Nodes: 4, ThreadsPerNode: 1, Seed: 1}, prm)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed <= 4; seed++ {
		r, err := RunQuad(core.Config{Nodes: 4, ThreadsPerNode: 1, Seed: seed}, prm)
		if err != nil {
			t.Fatal(err)
		}
		if r.Integral != ref.Integral || r.TableSum != ref.TableSum {
			t.Fatalf("seed %d: result bits diverged", seed)
		}
		if r.Report.MemHash != ref.Report.MemHash {
			t.Fatalf("seed %d: MemHash %x != %x", seed, r.Report.MemHash, ref.Report.MemHash)
		}
	}
}
