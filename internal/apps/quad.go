package apps

import (
	"math"

	"parade/internal/core"
	"parade/internal/sim"
)

// Quad is the irregular kernel of the tasking runtime: adaptive Simpson
// quadrature of an increasingly oscillatory integrand. Refinement depth
// varies wildly across the interval, so a static partition is badly
// imbalanced by construction — exactly the workload class the paper's
// §8 names as the open problem, and the one task spawning plus
// cross-node stealing is built for.
//
// The kernel has two task phases. Phase A is the adaptive recursion:
// every interval that fails its error test spawns its two halves as
// child tasks, and converged leaves return their Richardson-extrapolated
// estimate — the integral is exactly the Taskwait sum, returned through
// the update-protocol collective (no shared-memory writes at all).
// Phase B tabulates the integrand into shared memory with a Taskloop,
// exercising task-made DSM writes: element values depend only on the
// index, so any steal schedule produces the same table. A final static
// rewrite pass (the lockmix determinization precedent) makes each
// page's last writer schedule-independent, so the run's MemHash is
// bit-identical across fault profiles, crash plans, and steal orders.

// QuadParams sizes the kernel.
type QuadParams struct {
	A, B     float64      // integration interval
	Tol      float64      // absolute error target for phase A
	MaxDepth int          // refinement depth cap
	Segments int          // initial root tasks the interval splits into
	Samples  int          // phase B table size
	PerEval  sim.Duration // virtual cost per integrand evaluation
}

// QuadDefault is the standard shape.
func QuadDefault() QuadParams {
	return QuadParams{A: 0, B: 2, Tol: 1e-8, MaxDepth: 14, Segments: 16,
		Samples: 1024, PerEval: 2 * sim.Microsecond}
}

// QuadTest is a small configuration for unit tests and the acceptance
// matrices.
func QuadTest() QuadParams {
	return QuadParams{A: 0, B: 2, Tol: 1e-6, MaxDepth: 10, Segments: 8,
		Samples: 256, PerEval: 2 * sim.Microsecond}
}

// quadF is the integrand: a chirp — oscillation frequency grows with x,
// so the adaptive recursion goes a few levels deep near A and many near
// B. Pure float math: the value is identical no matter which node
// evaluates it.
func quadF(x float64) float64 {
	return math.Sin(30*x*x) + 0.5*math.Cos(7*x)
}

// quadSimpson is the three-point Simpson estimate on [a, b].
func quadSimpson(a, b float64) float64 {
	m := 0.5 * (a + b)
	return (b - a) / 6 * (quadF(a) + 4*quadF(m) + quadF(b))
}

// QuadReference computes a dense composite-Simpson reference value for
// prm's interval (plain Go, no simulation), for validating the adaptive
// result in tests.
func QuadReference(prm QuadParams) float64 {
	const n = 1 << 16
	h := (prm.B - prm.A) / n
	var sum float64
	for i := 0; i < n; i++ {
		a := prm.A + float64(i)*h
		sum += quadSimpson(a, a+h)
	}
	return sum
}

// QuadResult is the outcome of one run.
type QuadResult struct {
	Integral   float64 // phase A adaptive estimate
	TableSum   float64 // phase B Taskloop sum over the tabulated values
	KernelTime sim.Duration
	Report     core.Report
}

// RunQuad executes the kernel under cfg.
func RunQuad(cfg core.Config, prm QuadParams) (QuadResult, error) {
	cfg = cfg.WithDefaults()
	var res QuadResult
	rep, err := core.Run(cfg, func(m *core.Thread) {
		c := m.Cluster()
		table := c.AllocF64(prm.Samples)
		evalCost := 5 * prm.PerEval // one Simpson split = five fresh evaluations
		var t0 sim.Time

		// segment builds the task body for one interval carrying its
		// parent's whole-interval estimate. A converged (or depth-capped)
		// interval returns its extrapolated value; a diverged one spawns
		// its halves and contributes nothing itself, so the Taskwait sum
		// is exactly the sum over the adaptive leaves.
		var segment func(a, b, whole, tol float64, depth int) func(*core.Thread) float64
		segment = func(a, b, whole, tol float64, depth int) func(*core.Thread) float64 {
			return func(ex *core.Thread) float64 {
				ex.Compute(evalCost)
				mid := 0.5 * (a + b)
				left := quadSimpson(a, mid)
				right := quadSimpson(mid, b)
				diff := left + right - whole
				if depth >= prm.MaxDepth || math.Abs(diff) <= 15*tol {
					return left + right + diff/15
				}
				ex.Task(segment(a, mid, left, 0.5*tol, depth+1))
				ex.Task(segment(mid, b, right, 0.5*tol, depth+1))
				return 0
			}
		}

		m.Parallel(func(tc *core.Thread) {
			tc.Master(func() { t0 = tc.Now() })

			// Phase A: each thread seeds its static share of the root
			// segments (locality-aligned, like Taskloop), then the team
			// drains the adaptive recursion — deep subtrees migrate to idle
			// nodes through steals.
			h := (prm.B - prm.A) / float64(prm.Segments)
			segTol := prm.Tol / float64(prm.Segments)
			sLo, sHi := tc.StaticRange(0, prm.Segments)
			for s := sLo; s < sHi; s++ {
				a := prm.A + float64(s)*h
				tc.Task(segment(a, a+h, quadSimpson(a, a+h), segTol, 0))
			}
			integral := tc.Taskwait()
			tc.Master(func() { res.Integral = integral })

			// Phase B: tabulate the integrand into shared memory. The
			// written value depends only on the index, so stolen chunks
			// write the same bits a local execution would.
			step := (prm.B - prm.A) / float64(prm.Samples)
			sum := tc.Taskloop(0, prm.Samples, func(ex *core.Thread, i int) float64 {
				v := quadF(prm.A + float64(i)*step)
				table.Set(ex, i, v)
				return v
			}, core.WithGrainsize(prm.Samples/(4*tc.NumThreads())), core.WithIterCost(prm.PerEval))
			tc.Master(func() { res.TableSum = sum })

			// Determinize: a static rewrite of the same values makes each
			// page's final-epoch writer (and with it home election and
			// validity) independent of who executed which stolen chunk.
			tc.For(0, prm.Samples, func(i int) {
				table.Set(tc, i, quadF(prm.A+float64(i)*step))
			})

			tc.Master(func() { res.KernelTime = sim.Duration(tc.Now() - t0) })
		})
	})
	if err != nil {
		// A canceled run's partial report (counters, timing to the abort
		// point) rides along with the error for the -timeout stats dump.
		return QuadResult{Report: rep}, err
	}
	res.Report = rep
	return res, nil
}
