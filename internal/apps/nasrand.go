// Package apps contains the paper's evaluation workloads implemented
// against the ParADE runtime: the NAS CG and EP kernels (§6.2, NPB 2.3)
// and the two OpenMP sample applications, Helmholtz (jacobi.f) and MD
// (md.f). Each app executes its real numerics through the simulated
// shared memory and charges calibrated virtual compute time, so both the
// answers and the communication behaviour are meaningful.
package apps

// The NPB pseudo-random number generator: the linear congruential
// x_{k+1} = a * x_k (mod 2^46) with a = 5^13, as specified in the NAS
// Parallel Benchmarks report and used by both CG (matrix generation)
// and EP (Gaussian deviates).

const (
	// r23..t46 are the NPB split-precision constants; using exact powers
	// of two keeps the arithmetic identical to the reference code.
	r23 = 1.0 / (1 << 23)
	r46 = r23 * r23
	t23 = 1 << 23
	t46 = float64(t23) * float64(t23)
)

// Randlc advances *x one LCG step with multiplier a and returns the
// result scaled into (0,1), exactly as NPB's randlc.
func Randlc(x *float64, a float64) float64 {
	// Break a and x into two 23-bit halves and multiply exactly.
	t1 := r23 * a
	a1 := float64(int64(t1))
	a2 := a - t23*a1

	t1 = r23 * *x
	x1 := float64(int64(t1))
	x2 := *x - t23*x1

	t1 = a1*x2 + a2*x1
	t2 := float64(int64(r23 * t1))
	z := t1 - t23*t2
	t3 := t23*z + a2*x2
	t4 := float64(int64(r46 * t3))
	*x = t3 - t46*t4
	return r46 * *x
}

// Vranlc fills out with n successive LCG values (NPB's vranlc).
func Vranlc(n int, x *float64, a float64, out []float64) {
	for i := 0; i < n; i++ {
		out[i] = Randlc(x, a)
	}
}

// PowLC computes the seed a^exp (mod 2^46) * seed-style jump-ahead: it
// returns the LCG state after advancing `steps` steps from state x0 with
// multiplier a, in O(log steps) work (NPB EP's seed jumping).
func PowLC(x0, a float64, steps int64) float64 {
	x := x0
	am := a
	for steps > 0 {
		if steps&1 == 1 {
			mulLC(&x, am)
		}
		t := am
		mulLC(&am, t)
		steps >>= 1
	}
	return x
}

// mulLC sets *x = (*x * a) mod 2^46 using the exact split arithmetic.
func mulLC(x *float64, a float64) { Randlc(x, a) }

// DefaultSeed is NPB's canonical 271828183.
const DefaultSeed = 271828183.0

// LCGA is the NPB multiplier 5^13.
const LCGA = 1220703125.0
