package apps

import (
	"fmt"
	"math"

	"parade/internal/core"
	"parade/internal/sim"
)

// Taskdep is the dependence-graph and offload kernel: a segmented
// producer/transform/consume pipeline expressed entirely through depend
// clauses, plus a per-round Target offload stage with explicit map
// clauses. It is the acceptance kernel for the task-graph scheduler —
// every ordering below comes from the resolver (no barriers inside a
// phase), so a scheduling bug shows up as a changed result bit — and
// for the offload path: Target pins work to a device node, MapTo
// batches the input pages there, MapFrom returns the output eagerly.
//
// Each round, per segment of a shared array: a named producer task
// (Out on the segment handle) writes it; a transformer (InOut, plus a
// DepTask reference back to the producer, at raised priority) rewrites
// it; a checker task forward-references the finisher by name — spawned
// before the finisher exists, exercising pending registration — and a
// named finisher (In on the segment) sums it. After the join, every
// thread offloads its segments' reduction to the device with Target
// (MapTo the data, MapFrom the per-segment output), and a verifier task
// orders itself after the offload with a DepTask reference, reading the
// returned pages. A Taskloop sweep and a static rewrite pass close the
// run; the rewrite makes every page's final writer schedule-independent
// (the quad/lockmix determinization precedent), so MemHash is
// bit-identical across steal orders, fault profiles, crash schedules,
// and lane counts.

// TaskdepParams sizes the kernel.
type TaskdepParams struct {
	Segments int          // pipeline width (segments per round)
	SegLen   int          // elements per segment
	Rounds   int          // pipeline rounds, each with two task-graph joins
	Device   int          // offload target node (taken modulo the cluster size)
	PerElem  sim.Duration // virtual cost per element visit in costed phases
}

// TaskdepDefault is the standard shape.
func TaskdepDefault() TaskdepParams {
	return TaskdepParams{Segments: 16, SegLen: 512, Rounds: 2, Device: 0,
		PerElem: sim.Microsecond}
}

// TaskdepTest is a small configuration for unit tests and the
// acceptance matrices.
func TaskdepTest() TaskdepParams {
	return TaskdepParams{Segments: 8, SegLen: 256, Rounds: 2, Device: 0,
		PerElem: sim.Microsecond}
}

// taskdepBase is the producer's value for element idx in round r: pure
// float math of the index, identical on any node.
func taskdepBase(r, idx int) float64 {
	return 0.5*math.Sin(float64(idx)*0.01+float64(r)) + 0.25*float64(r)
}

// taskdepXform is the transformer's rewrite.
func taskdepXform(v float64) float64 { return v*1.0009765625 + 0.125 }

// taskdepFinal is element idx's value after the last round — the
// rewrite pass's target, computable without running the pipeline.
func taskdepFinal(rounds, idx int) float64 {
	return taskdepXform(taskdepBase(rounds-1, idx))
}

// TaskdepResult is the outcome of one run.
type TaskdepResult struct {
	PipeSum    float64 // finisher + checker contributions across rounds
	OffloadSum float64 // Target + verifier contributions across rounds
	CheckSum   float64 // closing Taskloop sweep
	KernelTime sim.Duration
	Report     core.Report
}

// RunTaskdep executes the kernel under cfg.
func RunTaskdep(cfg core.Config, prm TaskdepParams) (TaskdepResult, error) {
	cfg = cfg.WithDefaults()
	var res TaskdepResult
	rep, err := core.Run(cfg, func(m *core.Thread) {
		c := m.Cluster()
		L := prm.SegLen
		data := c.AllocF64(prm.Segments * L)
		out := c.AllocF64(prm.Segments)
		dev := prm.Device % cfg.Nodes
		var t0 sim.Time

		m.Parallel(func(tc *core.Thread) {
			tc.Master(func() { t0 = tc.Now() })
			sLo, sHi := tc.StaticRange(0, prm.Segments)

			for r := 0; r < prm.Rounds; r++ {
				r := r
				// Phase 1: the dependence pipeline. All intra-segment
				// ordering comes from the resolver.
				for s := sLo; s < sHi; s++ {
					s := s
					seg := core.DepName(fmt.Sprintf("seg%d", s))
					prodName := fmt.Sprintf("prod%d", s)
					finName := fmt.Sprintf("fin%d", s)
					tc.Task(func(ex *core.Thread) float64 {
						ex.Compute(prm.PerElem * sim.Duration(L))
						for i := 0; i < L; i++ {
							data.Set(ex, s*L+i, taskdepBase(r, s*L+i))
						}
						return 0
					}, core.WithDepend(core.Out, seg), core.WithTaskName(prodName))
					tc.Task(func(ex *core.Thread) float64 {
						ex.Compute(prm.PerElem * sim.Duration(L))
						for i := 0; i < L; i++ {
							data.Set(ex, s*L+i, taskdepXform(data.Get(ex, s*L+i)))
						}
						return 0
					}, core.WithDepend(core.InOut, seg),
						core.WithDepend(core.In, core.DepTask(prodName)), // redundant with the data edge: exercises backward task refs
						core.WithPriority(1))
					// Forward reference: the checker waits on a name no
					// sibling has registered yet.
					tc.Task(func(ex *core.Thread) float64 {
						var sum float64
						for i := 0; i < L; i++ {
							sum += data.Get(ex, s*L+i)
						}
						return 0.5 * sum
					}, core.WithDepend(core.In, core.DepTask(finName)))
					tc.Task(func(ex *core.Thread) float64 {
						var sum float64
						for i := 0; i < L; i++ {
							sum += data.Get(ex, s*L+i)
						}
						return sum
					}, core.WithDepend(core.In, seg), core.WithTaskName(finName))
				}
				pipe := tc.Taskwait()
				tc.Master(func() { res.PipeSum += pipe })

				// Phase 2: offload. Each thread pins its segments' reduction
				// to the device node, with the data pushed ahead of the body
				// and the output pages queued back to this node's next
				// barrier refresh; the verifier orders itself after the
				// offload by task name and reads the returned pages.
				offName := fmt.Sprintf("off%d", tc.GID())
				tc.Target(dev, func(ex *core.Thread) float64 {
					var total float64
					for s := sLo; s < sHi; s++ {
						var sum float64
						for i := 0; i < L; i++ {
							sum += data.Get(ex, s*L+i)
						}
						out.Set(ex, s, sum)
						total += sum
					}
					return total
				}, core.WithMap(core.MapTo, data), core.WithMap(core.MapFrom, out),
					core.WithTaskName(offName))
				tc.Task(func(ex *core.Thread) float64 {
					var sum float64
					for s := sLo; s < sHi; s++ {
						sum += out.Get(ex, s)
					}
					return sum
				}, core.WithDepend(core.In, core.DepTask(offName)))
				off := tc.Taskwait()
				tc.Master(func() { res.OffloadSum += off })
			}

			// Closing Taskloop sweep over the final table, at raised
			// priority with a per-element cost.
			check := tc.Taskloop(0, prm.Segments*L, func(ex *core.Thread, i int) float64 {
				return data.Get(ex, i)
			}, core.WithGrainsize(prm.Segments*L/(4*tc.NumThreads())),
				core.WithIterCost(prm.PerElem), core.WithPriority(1))
			tc.Master(func() { res.CheckSum = check })

			// Determinize: static rewrites of the same final values make
			// each page's last writer (and with it home election and
			// validity) independent of who executed what.
			tc.For(0, prm.Segments*L, func(i int) {
				data.Set(tc, i, taskdepFinal(prm.Rounds, i))
			})
			tc.For(0, prm.Segments, func(s int) {
				var sum float64
				for i := 0; i < L; i++ {
					sum += taskdepFinal(prm.Rounds, s*L+i)
				}
				out.Set(tc, s, sum)
			})

			tc.Master(func() { res.KernelTime = sim.Duration(tc.Now() - t0) })
		})
	})
	if err != nil {
		return TaskdepResult{Report: rep}, err
	}
	res.Report = rep
	return res, nil
}
