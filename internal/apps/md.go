package apps

import (
	"math"

	"parade/internal/core"
	"parade/internal/sim"
)

// The MD application (§6.2, the md.f OpenMP sample): a simple molecular
// dynamics simulation in continuous real space. All-pairs forces with the
// sample's sin²-clamped potential, velocity-Verlet integration, and per-
// step potential/kinetic energy reductions (two scalars, merged into one
// collective by the translator's merged-reduction rule). Positions are
// read cluster-wide each step but updated block-wise, so MD moves less
// shared data than Helmholtz — the reason the paper sees it scale well
// in every configuration.

// MDParams sizes the simulation.
type MDParams struct {
	NP      int // particles
	ND      int // spatial dimensions
	Steps   int
	Dt      float64
	Mass    float64
	BoxSize float64
	PerPair sim.Duration // virtual cost per pair interaction
}

// MDDefault mirrors md.f's shape at a simulator-friendly size.
func MDDefault() MDParams {
	return MDParams{NP: 256, ND: 3, Steps: 20, Dt: 1e-4, Mass: 1, BoxSize: 10,
		PerPair: 80 * sim.Nanosecond}
}

// MDTest is a small configuration for unit tests.
func MDTest() MDParams {
	return MDParams{NP: 48, ND: 3, Steps: 8, Dt: 1e-4, Mass: 1, BoxSize: 10,
		PerPair: 80 * sim.Nanosecond}
}

// MDResult is the outcome of one run.
type MDResult struct {
	E0         float64 // initial total energy
	EFinal     float64 // final total energy
	MaxDrift   float64 // max |E - E0| / E0 over all steps
	KernelTime sim.Duration
	Report     core.Report
}

// mdV is the md.f potential: v(x) = sin²(min(x, π/2)); dv its derivative.
func mdV(x float64) float64 {
	if x > math.Pi/2 {
		x = math.Pi / 2
	}
	s := math.Sin(x)
	return s * s
}

func mdDV(x float64) float64 {
	if x > math.Pi/2 {
		return 0
	}
	return 2 * math.Sin(x) * math.Cos(x)
}

// RunMD executes the MD simulation under cfg.
func RunMD(cfg core.Config, prm MDParams) (MDResult, error) {
	cfg = cfg.WithDefaults()
	need := 4*prm.NP*prm.ND*8 + (1 << 20)
	if cfg.ShmBytes < need {
		cfg.ShmBytes = need
	}
	var res MDResult
	rep, err := core.Run(cfg, func(m *core.Thread) {
		c := m.Cluster()
		np, nd := prm.NP, prm.ND
		pos := c.AllocF64(np * nd)
		vel := c.AllocF64(np * nd)
		acc := c.AllocF64(np * nd)
		force := c.AllocF64(np * nd)

		// Deterministic initial positions (md.f seeds an LCG likewise).
		seed := DefaultSeed
		for i := 0; i < np*nd; i++ {
			pos.Set(m, i, prm.BoxSize*Randlc(&seed, LCGA))
			vel.Set(m, i, 0)
			acc.Set(m, i, 0)
		}

		var t0 sim.Time
		var e0, eFinal, maxDrift float64
		dt := prm.Dt

		m.Parallel(func(tc *core.Thread) {
			tc.Master(func() { t0 = tc.Now() })
			for step := 0; step < prm.Steps; step++ {
				// compute(): all-pairs forces plus energy partials.
				var potL, kinL float64
				tc.ForCostNowait(0, np, prm.PerPair*sim.Duration(np), func(i int) {
					var fi [3]float64
					var pi [3]float64
					for d := 0; d < nd; d++ {
						pi[d] = pos.Get(tc, i*nd+d)
					}
					for j := 0; j < np; j++ {
						if j == i {
							continue
						}
						var rij [3]float64
						d2 := 0.0
						for d := 0; d < nd; d++ {
							rij[d] = pi[d] - pos.Get(tc, j*nd+d)
							d2 += rij[d] * rij[d]
						}
						dist := math.Sqrt(d2)
						potL += 0.5 * mdV(dist)
						dv := mdDV(dist)
						for d := 0; d < nd; d++ {
							fi[d] -= rij[d] * dv / dist
						}
					}
					for d := 0; d < nd; d++ {
						force.Set(tc, i*nd+d, fi[d])
					}
					for d := 0; d < nd; d++ {
						v := vel.Get(tc, i*nd+d)
						kinL += 0.5 * prm.Mass * v * v
					}
				})
				// Merged energy reduction: one collective for (pot, kin),
				// per §4.2's merged-structure rule.
				e2 := tc.ReduceVec("md-energy", core.OpSum, []float64{potL, kinL})
				tc.Master(func() {
					e := e2[0] + e2[1]
					if step == 0 {
						e0 = e
					}
					drift := math.Abs(e-e0) / math.Max(math.Abs(e0), 1e-30)
					if drift > maxDrift {
						maxDrift = drift
					}
					eFinal = e
				})

				// update(): velocity Verlet over the thread's block.
				tc.ForCost(0, np, prm.PerPair*sim.Duration(nd), func(i int) {
					for d := 0; d < nd; d++ {
						idx := i*nd + d
						f := force.Get(tc, idx) / prm.Mass
						a := acc.Get(tc, idx)
						p := pos.Get(tc, idx)
						v := vel.Get(tc, idx)
						pos.Set(tc, idx, p+v*dt+0.5*a*dt*dt)
						vel.Set(tc, idx, v+0.5*dt*(f+a))
						acc.Set(tc, idx, f)
					}
				})
			}
		})
		res.E0 = e0
		res.EFinal = eFinal
		res.MaxDrift = maxDrift
		res.KernelTime = sim.Duration(m.Now() - t0)
	})
	if err != nil {
		// A canceled run's partial report (counters, timing to the abort
		// point) rides along with the error for the -timeout stats dump.
		return MDResult{Report: rep}, err
	}
	res.Report = rep
	return res, nil
}
