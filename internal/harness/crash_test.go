package harness

import (
	"strings"
	"testing"
)

// TestCrashMatrix is the acceptance gate for crash-stop recovery: every
// app, both modes, every applicable crash schedule — recovered runs
// bit-identical to their fault-free baselines, recovery machinery
// demonstrably exercised, and the empty crash plan provably inert.
func TestCrashMatrix(t *testing.T) {
	rep, err := RunCrash(CrashOptions{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("crash matrix failed:\n%s", rep.Render())
	}
	crashed := 0
	for _, run := range rep.Runs {
		if run.Schedule != "" && run.Crashes > 0 {
			crashed++
		}
	}
	if crashed < 10 {
		t.Fatalf("only %d crash cells ran:\n%s", crashed, rep.Render())
	}
}

// TestCrashMatrixReproducible: the deterministic substrate makes the
// whole sweep — crashes, recoveries, checkpoint counts, virtual times —
// replay identically.
func TestCrashMatrixReproducible(t *testing.T) {
	opt := CrashOptions{Nodes: 4, Apps: []string{"md"}}
	a, err := RunCrash(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrash(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("crash sweep not reproducible:\n--- first\n%s--- second\n%s", a.Render(), b.Render())
	}
}

// TestCrashLockmixExercisesLockCaching: the lockmix rows must run the
// cached lock protocol (the matrix's reason for carrying the kernel).
func TestCrashLockmixExercisesLockCaching(t *testing.T) {
	rep, err := RunCrash(CrashOptions{Nodes: 4, Apps: []string{"lockmix"}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("lockmix crash cells failed:\n%s", rep.Render())
	}
	for _, run := range rep.Runs {
		if run.Schedule != "" && run.CkptMsgs == 0 {
			t.Fatalf("lockmix %s/%s shipped no checkpoints (token replication dead?)", run.Mode, run.Schedule)
		}
	}
}

// TestCrashUnknownAppRejected: a typo in the app filter is an error
// listing the valid set, not a silently smaller matrix.
func TestCrashUnknownAppRejected(t *testing.T) {
	_, err := RunCrash(CrashOptions{Apps: []string{"md", "nosuch"}})
	if err == nil || !strings.Contains(err.Error(), `unknown app "nosuch"`) ||
		!strings.Contains(err.Error(), "lockmix") {
		t.Fatalf("err = %v, want unknown-app error listing the valid set", err)
	}
}

// TestCrashNeedsTwoNodes: a single node has no buddy to checkpoint to.
func TestCrashNeedsTwoNodes(t *testing.T) {
	if _, err := RunCrash(CrashOptions{Nodes: 1}); err == nil {
		t.Fatal("1-node crash matrix accepted")
	}
}
