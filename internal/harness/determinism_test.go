package harness

import "testing"

// The simulation substrate must be deterministic: the same configuration
// must replay the same event order and produce byte-identical figures.
// This is what lets the benchmark-regression harness compare virtual-time
// results across PRs, and what the event kernel's (time, seq) total order
// guarantees. The test renders each figure twice in the same process; a
// stray map-iteration dependency, pooled-buffer aliasing bug, or
// tie-break regression in the event heap shows up as a diff here.

func renderTwice(t *testing.T, name string, run func() (Figure, error)) {
	t.Helper()
	first, err := run()
	if err != nil {
		t.Fatalf("%s first run: %v", name, err)
	}
	second, err := run()
	if err != nil {
		t.Fatalf("%s second run: %v", name, err)
	}
	a, b := first.Render(), second.Render()
	if a != b {
		t.Errorf("%s is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", name, a, b)
	}
}

func TestFig6Deterministic(t *testing.T) {
	nodes := []int{1, 2, 4}
	renderTwice(t, "Fig6Critical", func() (Figure, error) { return Fig6Critical(nodes) })
}

func TestAppFigureDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("app figure replay is slow")
	}
	nodes := []int{1, 4}
	renderTwice(t, "Fig10Helmholtz", func() (Figure, error) { return Fig10Helmholtz(nodes, ScaleBench) })
}
