package harness

import (
	"fmt"
	"strings"

	"parade/internal/core"
	"parade/internal/sim"
)

// Adaptive configuration (paper §8): "more processors do not always give
// better performance ... we want to find the best configuration". The
// auto-tuner sweeps the three thread/CPU configurations over the node
// counts, measures each on the simulated cluster, and reports the
// fastest — the search the paper proposes automating.

// Trial is one measured configuration.
type Trial struct {
	Label  string
	Config core.Config
	Time   sim.Duration
}

// TuneResult is the auto-tuner's outcome.
type TuneResult struct {
	Best   Trial
	Trials []Trial
}

// AutoTune measures run under every configuration in the sweep and
// returns the fastest. run must be deterministic in cfg (every app in
// parade/internal/apps is).
func AutoTune(run func(cfg core.Config) (sim.Duration, error), nodes []int) (TuneResult, error) {
	var res TuneResult
	for _, ac := range appConfigs {
		for _, n := range nodes {
			cfg := ac.make(n)
			d, err := run(cfg)
			if err != nil {
				return TuneResult{}, fmt.Errorf("autotune %s/%d nodes: %w", ac.label, n, err)
			}
			tr := Trial{Label: fmt.Sprintf("%s x %d nodes", ac.label, n), Config: cfg, Time: d}
			res.Trials = append(res.Trials, tr)
			if res.Best.Label == "" || tr.Time < res.Best.Time {
				res.Best = tr
			}
		}
	}
	return res, nil
}

// Render formats the tuning table with the winner marked.
func (r TuneResult) Render() string {
	var b strings.Builder
	b.WriteString("configuration                 time\n")
	for _, tr := range r.Trials {
		mark := " "
		if tr.Label == r.Best.Label {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s %-26s %10.4fs\n", mark, tr.Label, tr.Time.Seconds())
	}
	return b.String()
}
