package harness

import (
	"fmt"
	"strings"

	"parade/internal/core"
	"parade/internal/hlrc"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// The chaos harness runs the paper's four application kernels under the
// built-in netsim fault profiles and checks graceful degradation: every
// faulted run must produce results bit-identical to the fault-free run
// of the same configuration (only the virtual execution time may
// change), must converge to the same final DSM state, and each profile
// must actually exercise the recovery path (at least one retransmit
// across the matrix).
//
// The kernel table itself is MatrixApps (apptable.go), shared with the
// crash matrix and the fleet service's replay path.

// chaosMode is one directive-execution mode of the matrix.
type chaosMode struct {
	name string
	cfg  func(nodes int) core.Config
}

// chaosModes wraps MatrixModeConfig for the matrix drivers.
var chaosModes = func() []chaosMode {
	var ms []chaosMode
	for _, name := range MatrixModes() {
		name := name
		ms = append(ms, chaosMode{name, func(n int) core.Config {
			cfg, err := MatrixModeConfig(name, n, 1)
			if err != nil {
				panic(err) // unreachable: names come from MatrixModes
			}
			return cfg
		}})
	}
	return ms
}()

// ChaosRun is the record of one cell of the chaos matrix.
type ChaosRun struct {
	App, Mode, Profile string // Profile "" is the fault-free baseline
	Result             string // result-bits fingerprint
	MemHash            uint64 // final DSM state fingerprint
	Kernel             sim.Duration
	Slowdown           float64 // kernel time / baseline kernel time
	Retransmits        int64
	Timeouts           int64
	DupsSuppressed     int64
	InjectedDrops      int64
	InjectedDups       int64
	InjectedDelays     int64
	Err                string // run error, if any
}

// ChaosReport is the outcome of a chaos sweep.
type ChaosReport struct {
	Nodes    int
	Seed     int64
	Lanes    int
	Policy   string
	Runs     []ChaosRun
	Failures []string
}

// OK reports whether every invariant held.
func (r ChaosReport) OK() bool { return len(r.Failures) == 0 }

// ChaosOptions selects the sweep.
type ChaosOptions struct {
	Nodes    int      // cluster size (default 4)
	Seed     int64    // fault-plane seed (default 1)
	Lanes    int      // event-lane workers (0 = legacy kernel)
	Apps     []string // subset of the matrix kernels, see MatrixAppNames (nil = all)
	Profiles []string // subset of the built-in profiles (nil = all)
	Policy   string   // hlrc protocol policy for every run ("" = legacy)
}

func contains(set []string, s string) bool {
	for _, have := range set {
		if have == s {
			return true
		}
	}
	return false
}

// RunChaos executes the chaos matrix: for each selected app and both
// directive modes, one fault-free baseline plus one run per selected
// fault profile, asserting bit-identical results and final DSM state
// and at least one retransmit per profile across the matrix.
func RunChaos(opt ChaosOptions) (ChaosReport, error) {
	if opt.Nodes == 0 {
		opt.Nodes = 4
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	profiles := netsim.Profiles(opt.Seed)
	if opt.Profiles != nil {
		valid := make([]string, 0, len(profiles))
		for _, p := range profiles {
			valid = append(valid, p.Name)
		}
		for _, want := range opt.Profiles {
			if !contains(valid, want) {
				return ChaosReport{}, fmt.Errorf("harness: unknown fault profile %q (valid: %s)",
					want, strings.Join(valid, ", "))
			}
		}
		kept := profiles[:0]
		for _, p := range profiles {
			if contains(opt.Profiles, p.Name) {
				kept = append(kept, p)
			}
		}
		profiles = kept
	}
	if opt.Apps != nil {
		for _, want := range opt.Apps {
			if !contains(MatrixAppNames(), want) {
				return ChaosReport{}, fmt.Errorf("harness: unknown app %q (valid: %s)",
					want, strings.Join(MatrixAppNames(), ", "))
			}
		}
	}
	if !hlrc.ValidPolicy(opt.Policy) {
		return ChaosReport{}, fmt.Errorf("harness: unknown policy %q (valid: %s, or empty for legacy)",
			opt.Policy, strings.Join(hlrc.PolicyNames()[1:], ", "))
	}
	rep := ChaosReport{Nodes: opt.Nodes, Seed: opt.Seed, Lanes: opt.Lanes, Policy: opt.Policy}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	retransmitsByProfile := map[string]int64{}
	for _, app := range matrixApps {
		if opt.Apps != nil && !contains(opt.Apps, app.Name) {
			continue
		}
		for _, mode := range chaosModes {
			base, err := runChaosCell(app, mode, opt.Nodes, opt.Lanes, opt.Policy, nil)
			if err != nil {
				return rep, fmt.Errorf("harness: %s/%s baseline: %w", app.Name, mode.name, err)
			}
			base.Slowdown = 1
			rep.Runs = append(rep.Runs, base)
			if base.Retransmits != 0 || base.InjectedDrops != 0 {
				fail("%s/%s baseline: %d retransmits, %d drops on the ideal fabric",
					app.Name, mode.name, base.Retransmits, base.InjectedDrops)
			}
			for i := range profiles {
				prof := profiles[i]
				run, err := runChaosCell(app, mode, opt.Nodes, opt.Lanes, opt.Policy, &prof)
				if err != nil {
					run = ChaosRun{App: app.Name, Mode: mode.name, Profile: prof.Name, Err: err.Error()}
					rep.Runs = append(rep.Runs, run)
					fail("%s/%s under %q: %v", app.Name, mode.name, prof.Name, err)
					continue
				}
				if base.Kernel > 0 {
					run.Slowdown = float64(run.Kernel) / float64(base.Kernel)
				}
				rep.Runs = append(rep.Runs, run)
				retransmitsByProfile[prof.Name] += run.Retransmits
				if run.Result != base.Result {
					fail("%s/%s under %q: result bits diverged from the fault-free run",
						app.Name, mode.name, prof.Name)
				}
				if run.MemHash != base.MemHash {
					fail("%s/%s under %q: final DSM state diverged from the fault-free run",
						app.Name, mode.name, prof.Name)
				}
			}
		}
	}
	for _, p := range profiles {
		if retransmitsByProfile[p.Name] == 0 {
			fail("profile %q: no retransmit observed anywhere in the matrix (injection not exercised)", p.Name)
		}
	}
	return rep, nil
}

func runChaosCell(app MatrixApp, mode chaosMode, nodes, lanes int, policy string, prof *netsim.Profile) (ChaosRun, error) {
	cfg := mode.cfg(nodes)
	cfg.Lanes = lanes
	cfg.Policy = policy
	if app.LockCaching {
		cfg.LockCaching = true
	}
	run := ChaosRun{App: app.Name, Mode: mode.name}
	if prof != nil {
		p := *prof
		cfg.Faults = &p
		run.Profile = prof.Name
	}
	result, kernel, report, err := app.Run(cfg)
	if err != nil {
		return run, err
	}
	run.Result = result
	run.Kernel = kernel
	run.MemHash = report.MemHash
	c := report.Counters
	run.Retransmits = c.Retransmits
	run.Timeouts = c.Timeouts
	run.DupsSuppressed = c.DupsSuppressed
	run.InjectedDrops = c.InjectedDrops
	run.InjectedDups = c.InjectedDups
	run.InjectedDelays = c.InjectedDelays
	return run, nil
}

// Render formats the sweep as an aligned text table plus the verdict.
func (r ChaosReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos matrix: %d nodes, fault seed %d", r.Nodes, r.Seed)
	if r.Lanes > 0 {
		fmt.Fprintf(&b, ", %d event lanes", r.Lanes)
	}
	if r.Policy != "" {
		fmt.Fprintf(&b, ", policy %s", r.Policy)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "%-10s %-7s %-10s %12s %9s %8s %8s %8s %8s %8s\n",
		"app", "mode", "profile", "kernel", "slowdown", "retrans", "dupsupp", "drops", "dups", "delays")
	for _, run := range r.Runs {
		prof := run.Profile
		if prof == "" {
			prof = "(none)"
		}
		if run.Err != "" {
			fmt.Fprintf(&b, "%-10s %-7s %-10s ERROR: %s\n", run.App, run.Mode, prof, run.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %-7s %-10s %12s %8.2fx %8d %8d %8d %8d %8d\n",
			run.App, run.Mode, prof, run.Kernel, run.Slowdown,
			run.Retransmits, run.DupsSuppressed,
			run.InjectedDrops, run.InjectedDups, run.InjectedDelays)
	}
	if r.OK() {
		fmt.Fprintf(&b, "OK: all runs bit-identical to their fault-free baselines\n")
	} else {
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "FAIL: %s\n", f)
		}
	}
	return b.String()
}
