package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"parade/internal/hlrc"
)

// TestPolicySweepInvariants runs one full cell known to be an adaptive
// win and checks everything the sweep promises: all four policies run,
// the internal identity checks pass, the classifier actually
// reclassified pages, and the cell is reported as a win.
func TestPolicySweepInvariants(t *testing.T) {
	rep, err := RunPolicySweep(PolicyOptions{
		Apps:    []string{"helmholtz"},
		Modes:   []string{"sdsm"},
		Fabrics: []string{"via"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("sweep failed:\n%s", rep.Render())
	}
	if len(rep.Runs) != len(hlrc.PolicyNames()) {
		t.Fatalf("sweep ran %d cells, want %d", len(rep.Runs), len(hlrc.PolicyNames()))
	}
	var adp *PolicyRun
	for i := range rep.Runs {
		if rep.Runs[i].Policy == hlrc.PolicyAdaptive {
			adp = &rep.Runs[i]
		}
	}
	if adp == nil {
		t.Fatal("no adaptive run in the sweep")
	}
	if adp.Reclass == 0 {
		t.Fatal("adaptive run never reclassified a page")
	}
	if adp.Threshold == 256 {
		t.Fatal("adaptive run kept the paper's fixed threshold; AutoThreshold never fired")
	}
	if len(rep.Wins) == 0 {
		t.Fatalf("helmholtz/sdsm/via should be an adaptive win cell:\n%s", rep.Render())
	}
}

// TestFixedInvalidateMatchesLegacy pins the refactor's ground rule: the
// strategy-based "invalidate" engine is the legacy protocol spelled
// out, byte- and time-identical, not merely result-identical. (The
// sweep asserts this internally too; this test keeps the property
// named and debuggable on its own.)
func TestFixedInvalidateMatchesLegacy(t *testing.T) {
	rep, err := RunPolicySweep(PolicyOptions{
		Apps:     []string{"md"},
		Policies: []string{hlrc.PolicyLegacy, hlrc.PolicyInvalidate},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("sweep failed:\n%s", rep.Render())
	}
	byPolicy := map[string][]PolicyRun{}
	for _, run := range rep.Runs {
		byPolicy[run.Policy] = append(byPolicy[run.Policy], run)
	}
	leg, inv := byPolicy[hlrc.PolicyLegacy], byPolicy[hlrc.PolicyInvalidate]
	if len(leg) == 0 || len(leg) != len(inv) {
		t.Fatalf("got %d legacy and %d invalidate runs", len(leg), len(inv))
	}
	for i := range leg {
		if leg[i].Time != inv[i].Time || leg[i].MemHash != inv[i].MemHash || leg[i].Bytes != inv[i].Bytes {
			t.Fatalf("cell %s/%s/%s: invalidate diverged from legacy",
				leg[i].App, leg[i].Mode, leg[i].Fabric)
		}
	}
}

// TestPolicySweepRejectsBadInput: every selector is validated before
// any cell runs.
func TestPolicySweepRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		opt  PolicyOptions
		frag string
	}{
		{"unknown app", PolicyOptions{Apps: []string{"nope"}}, "unknown app"},
		{"unknown mode", PolicyOptions{Modes: []string{"nope"}}, "unknown mode"},
		{"unknown policy", PolicyOptions{Policies: []string{"nope"}}, "unknown policy"},
		{"unknown fabric", PolicyOptions{Fabrics: []string{"nope"}}, "fabric"},
		{"non-positive verify lanes", PolicyOptions{VerifyLanes: []int{0}}, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunPolicySweep(tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want mention of %q", err, tc.frag)
			}
		})
	}
}

// TestPolicyReportJSONL: the stream is one header, one line per run,
// and a summary, each valid JSON with the documented schema tag.
func TestPolicyReportJSONL(t *testing.T) {
	rep, err := RunPolicySweep(PolicyOptions{
		Apps:     []string{"md"},
		Modes:    []string{"hybrid"},
		Fabrics:  []string{"via"},
		Policies: []string{hlrc.PolicyLegacy, hlrc.PolicyAdaptive},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, obj)
	}
	if want := 1 + len(rep.Runs) + 1; len(lines) != want {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), want)
	}
	if got := lines[0]["schema"]; got != "parade-policy/v1" {
		t.Fatalf("header schema = %v", got)
	}
	if ok, is := lines[len(lines)-1]["ok"].(bool); !is || ok != rep.OK() {
		t.Fatalf("summary ok = %v, want %v", lines[len(lines)-1]["ok"], rep.OK())
	}
}

// adaptiveApps is the matrix subset the adaptive-policy invariants hold
// for: every kernel whose shared-memory access pattern is a pure
// function of program order. The dependence-scheduled kernel (taskdep)
// is excluded by construction, not as a gap: a task's faults and read
// observations are attributed to whichever node executed it, which
// depends on the steal schedule, so the classifier's inputs — and with
// them the elected protocol per page — legitimately differ between a
// faulted and a fault-free run. Its results stay bit-identical (the
// plain chaos and crash matrices assert that with taskdep included);
// only the adaptive engine's page-state choices may differ.
func adaptiveApps() []string {
	names := MatrixAppNames()
	out := names[:0]
	for _, n := range names {
		if n != "taskdep" {
			out = append(out, n)
		}
	}
	return out
}

// TestAdaptivePolicyChaosMatrix: the fault-injection matrix holds with
// the adaptive engine active — protocol elections are a pure function
// of program order, so faulted runs stay bit-identical to their
// fault-free baselines.
func TestAdaptivePolicyChaosMatrix(t *testing.T) {
	rep, err := RunChaos(ChaosOptions{Nodes: 4, Seed: 1, Policy: hlrc.PolicyAdaptive, Apps: adaptiveApps()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("adaptive chaos matrix failed:\n%s", rep.Render())
	}
}

// TestAdaptivePolicyCrashMatrix: crash/restart recovery under the
// adaptive engine — the classifier folds into the checkpointed
// fingerprint, so recovered runs must still match their baselines.
func TestAdaptivePolicyCrashMatrix(t *testing.T) {
	rep, err := RunCrash(CrashOptions{Nodes: 4, Policy: hlrc.PolicyAdaptive, Apps: adaptiveApps()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("adaptive crash matrix failed:\n%s", rep.Render())
	}
}

// TestChaosCrashRejectUnknownPolicy: both matrices validate the policy
// name up front.
func TestChaosCrashRejectUnknownPolicy(t *testing.T) {
	if _, err := RunChaos(ChaosOptions{Nodes: 4, Policy: "nope"}); err == nil {
		t.Fatal("RunChaos accepted an unknown policy")
	}
	if _, err := RunCrash(CrashOptions{Nodes: 4, Policy: "nope"}); err == nil {
		t.Fatal("RunCrash accepted an unknown policy")
	}
}
