package harness

import (
	"errors"
	"strings"
	"testing"

	"parade/internal/core"
	"parade/internal/sim"
)

func TestFig6ShapeMatchesPaper(t *testing.T) {
	fig, err := Fig6Critical([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || fig.Series[0].Label != "ParADE" || fig.Series[1].Label != "KDSM" {
		t.Fatalf("series %+v", fig.Series)
	}
	p, k := fig.Series[0].Y, fig.Series[1].Y
	for i := range p {
		if p[i] >= k[i] {
			t.Fatalf("at %d nodes ParADE (%.1fus) not faster than KDSM (%.1fus)",
				fig.Series[0].X[i], p[i], k[i])
		}
	}
	// The gap widens with nodes (§6.1).
	if k[2]-p[2] <= k[1]-p[1] {
		t.Fatalf("gap not widening: %v vs %v", k, p)
	}
}

func TestFig7ShapeMatchesPaper(t *testing.T) {
	fig, err := Fig7Single([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	p, k := fig.Series[0].Y, fig.Series[1].Y
	for i := range p {
		if p[i] >= k[i] {
			t.Fatalf("single: ParADE %v not faster than KDSM %v", p, k)
		}
	}
}

func TestFig9EPShape(t *testing.T) {
	fig, err := Fig9EP([]int{1, 2, 4}, ScaleBench)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		// EP scales near-linearly for every configuration (§6.2).
		if s.Y[2] >= s.Y[0]/3 {
			t.Fatalf("series %s not near-linear: %v", s.Label, s.Y)
		}
	}
	// 2T2C halves the time of 1T2C (twice the compute threads).
	t1, t2 := fig.Series[1].Y[0], fig.Series[2].Y[0]
	if t2 >= t1*0.75 {
		t.Fatalf("2T2C (%v) should be about half of 1T2C (%v)", t2, t1)
	}
}

func TestFig10HelmholtzShape(t *testing.T) {
	fig, err := Fig10Helmholtz([]int{1, 2, 4}, ScaleBench)
	if err != nil {
		t.Fatal(err)
	}
	oneT1C, oneT2C := fig.Series[0], fig.Series[1]
	// Times decrease with nodes for the overlapped configurations.
	if oneT2C.Y[2] >= oneT2C.Y[0] {
		t.Fatalf("1T2C not scaling: %v", oneT2C.Y)
	}
	// 1T1C is the slowest configuration on multiple nodes (§6.2).
	for i := 1; i < 3; i++ {
		if oneT1C.Y[i] < oneT2C.Y[i] {
			t.Fatalf("at %d nodes 1T1C (%v) beat 1T2C (%v)", fig.Series[0].X[i], oneT1C.Y[i], oneT2C.Y[i])
		}
	}
}

func TestByIDValidation(t *testing.T) {
	if _, err := ByID(5, DefaultNodes, ScaleBench); err == nil {
		t.Fatal("figure 5 has no data series; ByID should reject it")
	}
	if _, err := ByID(12, DefaultNodes, ScaleBench); err == nil {
		t.Fatal("figure 12 does not exist")
	}
}

func TestRenderFormat(t *testing.T) {
	fig := Figure{
		ID: "FigX", Title: "test", XLabel: "nodes", YLabel: "s",
		Series: []Series{{Label: "A", X: []int{1, 2}, Y: []float64{1.5, 0.75}}},
		Notes:  "note",
	}
	out := fig.Render()
	for _, want := range []string{"FigX: test", "(note)", "A", "1.5000", "0.7500"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAutoTuneFindsFastest(t *testing.T) {
	calls := 0
	res, err := AutoTune(func(cfg core.Config) (sim.Duration, error) {
		calls++
		// Synthetic model: work/nodes + per-node overhead; 2T2C halves work.
		work := 80.0
		if cfg.ThreadsPerNode == 2 {
			work /= 2
		}
		if cfg.CPUsPerNode == 1 {
			work *= 1.3
		}
		return sim.Duration((work/float64(cfg.Nodes) + 3*float64(cfg.Nodes)) * float64(sim.Millisecond)), nil
	}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 9 {
		t.Fatalf("measured %d trials, want 9", calls)
	}
	for _, tr := range res.Trials {
		if tr.Time < res.Best.Time {
			t.Fatalf("best %v is not minimal (%v is faster)", res.Best, tr)
		}
	}
	// The synthetic model's optimum: 2T2C at 4 nodes (10+12=22ms).
	if res.Best.Config.ThreadsPerNode != 2 || res.Best.Config.Nodes != 4 {
		t.Fatalf("best = %+v", res.Best)
	}
	out := res.Render()
	if !strings.Contains(out, "*") {
		t.Fatal("render does not mark the winner")
	}
}

func TestAutoTunePropagatesErrors(t *testing.T) {
	wantErr := false
	_, err := AutoTune(func(cfg core.Config) (sim.Duration, error) {
		wantErr = true
		return 0, errTest
	}, []int{1})
	if err == nil || !wantErr {
		t.Fatal("error not propagated")
	}
}

var errTest = errors.New("boom")
