package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"parade/internal/hlrc"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// The policy sweep compares the fixed hlrc protocol policies against the
// adaptive per-page engine across the acceptance-matrix kernels, both
// directive modes, and both fabric presets. Every cell must preserve
// result bits across policies (the protocol may move data differently,
// never compute differently), the explicit "invalidate" policy must stay
// byte-identical to the legacy empty policy, and the adaptive runs must
// be bit-identical across event-lane counts. The sweep also reports the
// cells where adaptive strictly beats every fixed policy on delivered
// bytes or virtual time — the evidence the adaptive engine pays its way.

// PolicyRun is the record of one cell of the policy sweep.
type PolicyRun struct {
	App       string       `json:"app"`
	Mode      string       `json:"mode"`
	Fabric    string       `json:"fabric"`
	Policy    string       `json:"policy"` // "" is the legacy baseline
	Result    string       `json:"result"` // result-bits fingerprint
	MemHash   uint64       `json:"mem_hash"`
	Kernel    sim.Duration `json:"kernel_ns"`
	Time      sim.Duration `json:"time_ns"` // full-run virtual time
	Bytes     int64        `json:"bytes"`   // modeled wire bytes incl. headers
	Threshold int          `json:"threshold"`
	Pushes    int64        `json:"policy_pushes"`
	Refreshes int64        `json:"policy_refreshes"`
	Reclass   int64        `json:"policy_reclass"`
	Overrides int64        `json:"policy_overrides"`
	Err       string       `json:"err,omitempty"`
}

// PolicyReport is the outcome of a policy sweep.
type PolicyReport struct {
	Nodes int         `json:"nodes"`
	Lanes int         `json:"lanes"`
	Runs  []PolicyRun `json:"runs"`
	// Wins lists the app/mode/fabric cells where the adaptive policy
	// strictly beat every fixed policy on wire bytes or virtual time.
	Wins     []string `json:"wins"`
	Failures []string `json:"failures"`
}

// OK reports whether every invariant held.
func (r PolicyReport) OK() bool { return len(r.Failures) == 0 }

// PolicyOptions selects the sweep.
type PolicyOptions struct {
	Nodes    int      // cluster size (default 4)
	Lanes    int      // event-lane workers for the comparison runs (0 = legacy kernel)
	Apps     []string // subset of the matrix kernels (nil = all)
	Modes    []string // subset of hybrid, sdsm (nil = all)
	Fabrics  []string // subset of via, tcp (nil = both)
	Policies []string // policies to compare (nil = legacy, invalidate, update, adaptive)
	// VerifyLanes re-runs every adaptive cell at these event-lane counts
	// and requires bit-identical virtual time and memory fingerprint
	// across them (nil = {1, 4}). Lane counts must be positive: the
	// legacy lanes=0 kernel has its own historical timing.
	VerifyLanes []int
}

// policyCell identifies one app/mode/fabric cell of the sweep.
type policyCell struct{ app, mode, fabric string }

func (c policyCell) String() string { return c.app + "/" + c.mode + "/" + c.fabric }

// RunPolicySweep executes the fixed-vs-adaptive comparison matrix.
func RunPolicySweep(opt PolicyOptions) (PolicyReport, error) {
	if opt.Nodes == 0 {
		opt.Nodes = 4
	}
	if opt.Modes == nil {
		opt.Modes = MatrixModes()
	}
	if opt.Fabrics == nil {
		opt.Fabrics = []string{"via", "tcp"}
	}
	if opt.Policies == nil {
		opt.Policies = hlrc.PolicyNames()
	}
	if opt.VerifyLanes == nil {
		opt.VerifyLanes = []int{1, 4}
	}
	if opt.Apps != nil {
		for _, want := range opt.Apps {
			if !contains(MatrixAppNames(), want) {
				return PolicyReport{}, fmt.Errorf("harness: unknown app %q (valid: %s)",
					want, strings.Join(MatrixAppNames(), ", "))
			}
		}
	}
	for _, mode := range opt.Modes {
		if !contains(MatrixModes(), mode) {
			return PolicyReport{}, fmt.Errorf("harness: unknown mode %q (valid: %s)",
				mode, strings.Join(MatrixModes(), ", "))
		}
	}
	for _, pol := range opt.Policies {
		if !hlrc.ValidPolicy(pol) {
			return PolicyReport{}, fmt.Errorf("harness: unknown policy %q (valid: %s, or empty for legacy)",
				pol, strings.Join(hlrc.PolicyNames()[1:], ", "))
		}
	}
	fabrics := make([]netsim.Fabric, 0, len(opt.Fabrics))
	for _, name := range opt.Fabrics {
		f, err := netsim.FabricByName(name)
		if err != nil {
			return PolicyReport{}, fmt.Errorf("harness: %w", err)
		}
		fabrics = append(fabrics, f)
	}
	for _, lanes := range opt.VerifyLanes {
		if lanes <= 0 {
			return PolicyReport{}, fmt.Errorf("harness: VerifyLanes entry %d; lane counts must be positive", lanes)
		}
	}

	rep := PolicyReport{Nodes: opt.Nodes, Lanes: opt.Lanes}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	for _, app := range matrixApps {
		if opt.Apps != nil && !contains(opt.Apps, app.Name) {
			continue
		}
		for _, mode := range opt.Modes {
			for fi, fabric := range fabrics {
				cell := policyCell{app.Name, mode, opt.Fabrics[fi]}
				runs := make(map[string]PolicyRun, len(opt.Policies))
				for _, pol := range opt.Policies {
					run, err := runPolicyCell(app, mode, fabric, pol, opt.Nodes, opt.Lanes)
					if err != nil {
						run.Err = err.Error()
						rep.Runs = append(rep.Runs, run)
						fail("%s policy %q: %v", cell, polLabel(pol), err)
						continue
					}
					rep.Runs = append(rep.Runs, run)
					runs[pol] = run
				}
				checkPolicyCell(cell, runs, opt, fail, func(lanes int) (PolicyRun, error) {
					return runPolicyCell(app, mode, fabric, hlrc.PolicyAdaptive, opt.Nodes, lanes)
				})
				if win, ok := adaptiveWin(runs); ok {
					rep.Wins = append(rep.Wins, fmt.Sprintf("%s: adaptive beats every fixed policy on %s", cell, win))
				}
			}
		}
	}
	return rep, nil
}

// checkPolicyCell asserts one cell's cross-policy invariants.
func checkPolicyCell(cell policyCell, runs map[string]PolicyRun, opt PolicyOptions,
	fail func(string, ...any), rerun func(lanes int) (PolicyRun, error)) {
	base, haveBase := runs[hlrc.PolicyLegacy]
	if !haveBase {
		for _, pol := range opt.Policies {
			if r, ok := runs[pol]; ok {
				base, haveBase = r, true
				break
			}
		}
	}
	if !haveBase {
		return
	}
	// The protocol may move pages differently but must never compute
	// differently: result bits are policy-invariant.
	for _, pol := range opt.Policies {
		run, ok := runs[pol]
		if !ok {
			continue
		}
		if run.Result != base.Result {
			fail("%s: policy %q result bits diverged from %q", cell, polLabel(pol), polLabel(base.Policy))
		}
	}
	// The explicit invalidate policy is the legacy protocol spelled out:
	// byte- and time-identical, not merely result-identical.
	if inv, ok := runs[hlrc.PolicyInvalidate]; ok {
		if leg, ok := runs[hlrc.PolicyLegacy]; ok {
			if inv.Time != leg.Time || inv.MemHash != leg.MemHash || inv.Bytes != leg.Bytes {
				fail("%s: explicit invalidate diverged from the legacy protocol (time %d vs %d, bytes %d vs %d)",
					cell, inv.Time, leg.Time, inv.Bytes, leg.Bytes)
			}
		}
	}
	// The adaptive engine must be deterministic across event-lane
	// counts: the classifier folds into the state fingerprint, so any
	// schedule-dependence would show up here. Result bits must match the
	// comparison run unconditionally; full bit-identity (virtual time and
	// fingerprint) is required among the positive-lane runs, and against
	// the comparison run only when it used positive lanes itself — the
	// legacy lanes=0 kernel is its own timing regime, and lock-heavy
	// kernels legitimately resolve contention in a different order there.
	if adp, ok := runs[hlrc.PolicyAdaptive]; ok {
		var prev *PolicyRun
		var prevLanes int
		for _, lanes := range opt.VerifyLanes {
			run, err := rerun(lanes)
			if err != nil {
				fail("%s: adaptive verify at %d lanes: %v", cell, lanes, err)
				continue
			}
			if run.Result != adp.Result {
				fail("%s: adaptive at %d lanes changed result bits vs the comparison run", cell, lanes)
			}
			if opt.Lanes > 0 && (run.MemHash != adp.MemHash || run.Time != adp.Time) {
				fail("%s: adaptive at %d lanes diverged from the %d-lane comparison run", cell, lanes, opt.Lanes)
			}
			if prev != nil && (run.Time != prev.Time || run.MemHash != prev.MemHash) {
				fail("%s: adaptive not bit-identical across lane counts %d and %d (time %d vs %d)",
					cell, prevLanes, lanes, prev.Time, run.Time)
			}
			r := run
			prev, prevLanes = &r, lanes
		}
	}
}

// adaptiveWin reports whether the adaptive run strictly beat every fixed
// policy in the cell, and on which metric.
func adaptiveWin(runs map[string]PolicyRun) (string, bool) {
	adp, ok := runs[hlrc.PolicyAdaptive]
	if !ok {
		return "", false
	}
	fixed := make([]PolicyRun, 0, 2)
	for _, pol := range []string{hlrc.PolicyInvalidate, hlrc.PolicyUpdate, hlrc.PolicyLegacy} {
		if r, ok := runs[pol]; ok {
			fixed = append(fixed, r)
		}
	}
	if len(fixed) == 0 {
		return "", false
	}
	timeWin, bytesWin := true, true
	for _, f := range fixed {
		if adp.Time >= f.Time {
			timeWin = false
		}
		if adp.Bytes >= f.Bytes {
			bytesWin = false
		}
	}
	switch {
	case timeWin && bytesWin:
		return "virtual time and wire bytes", true
	case timeWin:
		return "virtual time", true
	case bytesWin:
		return "wire bytes", true
	}
	return "", false
}

func runPolicyCell(app MatrixApp, mode string, fabric netsim.Fabric, policy string, nodes, lanes int) (PolicyRun, error) {
	cfg, err := MatrixModeConfig(mode, nodes, 1)
	if err != nil {
		return PolicyRun{App: app.Name, Mode: mode, Fabric: fabric.Name, Policy: policy}, err
	}
	cfg.Fabric = fabric
	cfg.Lanes = lanes
	cfg.Policy = policy
	// MatrixModeConfig already applied defaults, which froze the
	// directive threshold at the paper's constant; clear it so the
	// adaptive policy re-derives it from this cell's fabric and costs.
	cfg.SmallThreshold = 0
	cfg = cfg.WithDefaults()
	if app.LockCaching {
		cfg.LockCaching = true
	}
	run := PolicyRun{App: app.Name, Mode: mode, Fabric: fabric.Name, Policy: policy, Threshold: cfg.SmallThreshold}
	result, kernel, report, err := app.Run(cfg)
	if err != nil {
		return run, err
	}
	run.Result = result
	run.Kernel = kernel
	run.Time = report.Time
	run.MemHash = report.MemHash
	c := report.Counters
	run.Bytes = c.Bytes
	run.Pushes = c.PolicyPushes
	run.Refreshes = c.PolicyRefreshes
	run.Reclass = c.PolicyReclass
	run.Overrides = c.PolicyHomeOverrides
	return run, nil
}

// polLabel names a policy for messages; the legacy empty string gets a
// readable name.
func polLabel(pol string) string {
	if pol == hlrc.PolicyLegacy {
		return "legacy"
	}
	return pol
}

// WriteJSONL streams the sweep as JSON lines: a header object, one
// object per run, then a summary with the wins and failures.
func (r PolicyReport) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	header := struct {
		Schema string `json:"schema"`
		Nodes  int    `json:"nodes"`
		Lanes  int    `json:"lanes"`
	}{Schema: "parade-policy/v1", Nodes: r.Nodes, Lanes: r.Lanes}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if err := enc.Encode(run); err != nil {
			return err
		}
	}
	summary := struct {
		Wins     []string `json:"wins"`
		Failures []string `json:"failures"`
		OK       bool     `json:"ok"`
	}{Wins: r.Wins, Failures: r.Failures, OK: r.OK()}
	return enc.Encode(summary)
}

// Render formats the sweep as an aligned text table plus the verdict.
func (r PolicyReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy sweep: %d nodes", r.Nodes)
	if r.Lanes > 0 {
		fmt.Fprintf(&b, ", %d event lanes", r.Lanes)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "%-10s %-7s %-17s %-11s %12s %10s %6s %7s %7s %6s\n",
		"app", "mode", "fabric", "policy", "time", "bytes", "thresh", "pushes", "refresh", "recl")
	for _, run := range r.Runs {
		if run.Err != "" {
			fmt.Fprintf(&b, "%-10s %-7s %-17s %-11s ERROR: %s\n",
				run.App, run.Mode, run.Fabric, polLabel(run.Policy), run.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %-7s %-17s %-11s %12d %10d %6d %7d %7d %6d\n",
			run.App, run.Mode, run.Fabric, polLabel(run.Policy),
			run.Time, run.Bytes, run.Threshold, run.Pushes, run.Refreshes, run.Reclass)
	}
	for _, w := range r.Wins {
		fmt.Fprintf(&b, "WIN: %s\n", w)
	}
	if r.OK() {
		fmt.Fprintf(&b, "OK: result bits policy-invariant, invalidate byte-identical to legacy, adaptive lane-deterministic\n")
	} else {
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "FAIL: %s\n", f)
		}
	}
	return b.String()
}
