package harness

import (
	"fmt"
	"strings"

	"parade/internal/hlrc"
	"parade/internal/sim"
)

// The crash harness is the acceptance matrix for crash-stop node
// failures: every application kernel, in both directive modes, is run
// fault-free and then re-run with deterministic crash/restart schedules
// injected at barrier points. A recovered run must produce results and
// a final DSM state bit-identical to the fault-free run — the
// checkpoint/restore protocol's whole contract — and must actually
// exercise the recovery machinery (crashes injected, recoveries
// completed, checkpoints shipped). It also proves the zero-crash plane
// inert: a run with an empty crash plan must be indistinguishable from
// one with no plan at all, down to the virtual clock.

// The crash matrix runs the shared MatrixApps kernel table (apptable.go);
// the lockmix entry's LockCaching flag routes it through the lazy-release
// token path so token replication and reclaim get coverage.

// crashSchedule is one deterministic failure plan of the matrix. Every
// event restarts (the full runtime cannot shrink — see core.Validate);
// shrink recovery is covered by the engine-level tests.
type crashSchedule struct {
	name       string
	events     []hlrc.CrashEvent
	maxBarrier int
}

func candidateSchedules(nodes int) []crashSchedule {
	mk := func(name string, evs ...hlrc.CrashEvent) crashSchedule {
		max := 0
		for _, ev := range evs {
			if ev.Barrier > max {
				max = ev.Barrier
			}
		}
		return crashSchedule{name: name, events: evs, maxBarrier: max}
	}
	last := nodes - 1
	return []crashSchedule{
		mk("n1@b1", hlrc.CrashEvent{Node: 1, Barrier: 1, Restart: true}),
		mk(fmt.Sprintf("n%d@b2", last), hlrc.CrashEvent{Node: last, Barrier: 2, Restart: true}),
		mk("n1@b1+b3",
			hlrc.CrashEvent{Node: 1, Barrier: 1, Restart: true},
			hlrc.CrashEvent{Node: 1, Barrier: 3, Restart: true}),
	}
}

// CrashRun is the record of one cell of the crash matrix.
type CrashRun struct {
	App, Mode, Schedule string // Schedule "" is the fault-free baseline
	Result              string // result-bits fingerprint
	MemHash             uint64 // final DSM state fingerprint
	Time                sim.Duration
	Crashes             int64
	Restarts            int64
	Recoveries          int64
	CkptMsgs            int64
	ResentBundles       int64
	Refetches           int64
	ReclaimedLocks      int64
	PagesRestored       int64
	Err                 string
}

// CrashReport is the outcome of a crash sweep.
type CrashReport struct {
	Nodes    int
	Lanes    int
	Policy   string
	Runs     []CrashRun
	Skipped  []string // schedules dropped because the app has too few barriers
	Failures []string
}

// OK reports whether every invariant held.
func (r CrashReport) OK() bool { return len(r.Failures) == 0 }

// CrashOptions selects the sweep.
type CrashOptions struct {
	Nodes  int      // cluster size (default 4)
	Lanes  int      // event-lane workers (0 = legacy kernel)
	Apps   []string // subset of the crash apps (nil = all)
	Policy string   // hlrc protocol policy for every run ("" = legacy)
}

// RunCrash executes the crash acceptance matrix.
func RunCrash(opt CrashOptions) (CrashReport, error) {
	if opt.Nodes == 0 {
		opt.Nodes = 4
	}
	if opt.Nodes < 2 {
		return CrashReport{}, fmt.Errorf("harness: crash matrix needs at least 2 nodes, got %d", opt.Nodes)
	}
	if opt.Apps != nil {
		for _, want := range opt.Apps {
			if !contains(MatrixAppNames(), want) {
				return CrashReport{}, fmt.Errorf("harness: unknown app %q (valid: %s)",
					want, strings.Join(MatrixAppNames(), ", "))
			}
		}
	}
	if !hlrc.ValidPolicy(opt.Policy) {
		return CrashReport{}, fmt.Errorf("harness: unknown policy %q (valid: %s, or empty for legacy)",
			opt.Policy, strings.Join(hlrc.PolicyNames()[1:], ", "))
	}
	rep := CrashReport{Nodes: opt.Nodes, Lanes: opt.Lanes, Policy: opt.Policy}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	schedules := candidateSchedules(opt.Nodes)
	for _, app := range matrixApps {
		if opt.Apps != nil && !contains(opt.Apps, app.Name) {
			continue
		}
		for _, mode := range chaosModes {
			base, barriers, err := runCrashCell(app, mode, opt.Nodes, opt.Lanes, opt.Policy, nil)
			if err != nil {
				return rep, fmt.Errorf("harness: %s/%s baseline: %w", app.Name, mode.name, err)
			}
			rep.Runs = append(rep.Runs, base)

			// In lane mode an armed crash plan switches the kernel to the
			// serialized relaxed regime, which is its own deterministic
			// schedule — different from the strict parallel one. The
			// recovery contract is "bit-identical to the crash-free run of
			// the same schedule", so crash runs compare against a baseline
			// armed with a never-firing plan (same regime, zero crashes).
			// In legacy mode the kernels coincide and base is used as-is.
			crashBase := base
			if opt.Lanes > 0 {
				armed := crashSchedule{name: "(armed)", events: []hlrc.CrashEvent{
					{Node: 1, Barrier: 1 << 30, Restart: true},
				}}
				crashBase, _, err = runCrashCell(app, mode, opt.Nodes, opt.Lanes, opt.Policy, &armed)
				if err != nil {
					return rep, fmt.Errorf("harness: %s/%s armed baseline: %w", app.Name, mode.name, err)
				}
				if crashBase.Crashes != 0 {
					return rep, fmt.Errorf("harness: %s/%s armed baseline crashed", app.Name, mode.name)
				}
			}

			// Inertness: an empty crash plan must not change the run at
			// all — same bits, same final state, same virtual clock.
			inert, _, err := runCrashCell(app, mode, opt.Nodes, opt.Lanes, opt.Policy, &crashSchedule{name: "(empty)"})
			if err != nil {
				return rep, fmt.Errorf("harness: %s/%s empty-plan run: %w", app.Name, mode.name, err)
			}
			if inert.Result != base.Result || inert.MemHash != base.MemHash || inert.Time != base.Time {
				fail("%s/%s: empty crash plan perturbed the run (time %v vs %v)",
					app.Name, mode.name, inert.Time, base.Time)
			}

			for i := range schedules {
				sched := schedules[i]
				if int64(sched.maxBarrier) > barriers {
					rep.Skipped = append(rep.Skipped, fmt.Sprintf(
						"%s/%s %s: needs barrier %d, app runs only %d",
						app.Name, mode.name, sched.name, sched.maxBarrier, barriers))
					continue
				}
				run, _, err := runCrashCell(app, mode, opt.Nodes, opt.Lanes, opt.Policy, &sched)
				if err != nil {
					run = CrashRun{App: app.Name, Mode: mode.name, Schedule: sched.name, Err: err.Error()}
					rep.Runs = append(rep.Runs, run)
					fail("%s/%s under %s: %v", app.Name, mode.name, sched.name, err)
					continue
				}
				rep.Runs = append(rep.Runs, run)
				if run.Result != crashBase.Result {
					fail("%s/%s under %s: result bits diverged from the fault-free run",
						app.Name, mode.name, sched.name)
				}
				if run.MemHash != crashBase.MemHash {
					fail("%s/%s under %s: final DSM state diverged from the fault-free run",
						app.Name, mode.name, sched.name)
				}
				if want := int64(len(sched.events)); run.Crashes != want || run.Restarts != want {
					fail("%s/%s under %s: %d crashes, %d restarts injected, want %d each",
						app.Name, mode.name, sched.name, run.Crashes, run.Restarts, want)
				}
				if run.Recoveries < int64(len(sched.events)) {
					fail("%s/%s under %s: %d recoveries for %d crash events",
						app.Name, mode.name, sched.name, run.Recoveries, len(sched.events))
				}
				if run.CkptMsgs == 0 {
					fail("%s/%s under %s: no checkpoint traffic", app.Name, mode.name, sched.name)
				}
			}
		}
	}
	return rep, nil
}

// runCrashCell executes one cell and returns the run record plus the
// engine barrier count (used to filter schedules against the baseline).
func runCrashCell(app MatrixApp, mode chaosMode, nodes, lanes int, policy string, sched *crashSchedule) (CrashRun, int64, error) {
	cfg := mode.cfg(nodes)
	cfg.Lanes = lanes
	cfg.Policy = policy
	if app.LockCaching {
		cfg.LockCaching = true
	}
	run := CrashRun{App: app.Name, Mode: mode.name}
	if sched != nil {
		cfg.Crash = &hlrc.CrashPlan{Events: sched.events}
		run.Schedule = sched.name
	}
	result, _, report, err := app.Run(cfg)
	if err != nil {
		return run, 0, err
	}
	run.Result = result
	run.MemHash = report.MemHash
	run.Time = report.Time
	c := report.Counters
	run.Crashes = c.Crashes
	run.Restarts = c.NodeRestarts
	run.Recoveries = c.Recoveries
	run.CkptMsgs = c.CkptMsgs
	run.ResentBundles = c.ResentBundles
	run.Refetches = c.Refetches
	run.ReclaimedLocks = c.ReclaimedLocks
	run.PagesRestored = c.PagesRestored
	return run, c.Barriers, nil
}

// Render formats the sweep as an aligned text table plus the verdict.
func (r CrashReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash matrix: %d nodes", r.Nodes)
	if r.Lanes > 0 {
		fmt.Fprintf(&b, ", %d event lanes", r.Lanes)
	}
	if r.Policy != "" {
		fmt.Fprintf(&b, ", policy %s", r.Policy)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "%-10s %-7s %-10s %12s %7s %7s %6s %8s %7s %7s %7s\n",
		"app", "mode", "schedule", "time", "crashes", "recov", "ckpt", "resent", "refetch", "locks", "pages")
	for _, run := range r.Runs {
		sched := run.Schedule
		if sched == "" {
			sched = "(none)"
		}
		if run.Err != "" {
			fmt.Fprintf(&b, "%-10s %-7s %-10s ERROR: %s\n", run.App, run.Mode, sched, run.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %-7s %-10s %12s %7d %7d %6d %8d %7d %7d %7d\n",
			run.App, run.Mode, sched, run.Time, run.Crashes, run.Recoveries,
			run.CkptMsgs, run.ResentBundles, run.Refetches, run.ReclaimedLocks, run.PagesRestored)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "skip: %s\n", s)
	}
	if r.OK() {
		fmt.Fprintf(&b, "OK: every recovered run bit-identical to its fault-free baseline\n")
	} else {
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "FAIL: %s\n", f)
		}
	}
	return b.String()
}
