package harness

import (
	"fmt"
	"math"
	"strings"

	"parade/internal/apps"
	"parade/internal/core"
	"parade/internal/kdsm"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// MatrixApp is one application kernel of the acceptance matrices (chaos,
// crash, and the fleet service's replay). Run executes the kernel at its
// matrix workload size and returns the result-bits fingerprint (hex of
// the exact float64 bits of every result field — any single-bit
// difference changes the string), the kernel time, and the run report.
// LockCaching marks the lock-protocol stress kernel, which runs with
// lazy-release tokens so the cached lock path gets coverage.
type MatrixApp struct {
	Name        string
	LockCaching bool
	Run         func(cfg core.Config) (string, sim.Duration, core.Report, error)
}

// matrixApps is the shared kernel table behind MatrixApps. The chaos and
// crash matrices and internal/fleet all draw from it, so a service-path
// replay runs byte-for-byte the same cells as the in-process harness.
var matrixApps = []MatrixApp{
	{"helmholtz", false, func(cfg core.Config) (string, sim.Duration, core.Report, error) {
		r, err := apps.RunHelmholtz(cfg, apps.HelmholtzTest())
		return fpBits(r.Error, float64(r.Iterations)), r.KernelTime, r.Report, err
	}},
	{"ep", false, func(cfg core.Config) (string, sim.Duration, core.Report, error) {
		r, err := apps.RunEP(cfg, apps.EPClassT)
		vs := []float64{r.Sx, r.Sy, r.Accepted}
		vs = append(vs, r.Counts[:]...)
		return fpBits(vs...), r.KernelTime, r.Report, err
	}},
	{"cg", false, func(cfg core.Config) (string, sim.Duration, core.Report, error) {
		r, err := apps.RunCG(cfg, apps.CGClassT)
		return fpBits(r.Zeta, r.RNorm, float64(r.NZ)), r.KernelTime, r.Report, err
	}},
	{"md", false, func(cfg core.Config) (string, sim.Duration, core.Report, error) {
		r, err := apps.RunMD(cfg, apps.MDTest())
		return fpBits(r.E0, r.EFinal, r.MaxDrift), r.KernelTime, r.Report, err
	}},
	{"quad", false, func(cfg core.Config) (string, sim.Duration, core.Report, error) {
		// The irregular tasking kernel: adaptive-quadrature tasks with
		// cross-node stealing, so steal traffic degrades gracefully under
		// injected faults like every other protocol.
		r, err := apps.RunQuad(cfg, apps.QuadTest())
		return fpBits(r.Integral, r.TableSum), r.KernelTime, r.Report, err
	}},
	{"taskdep", false, func(cfg core.Config) (string, sim.Duration, core.Report, error) {
		// The dependence-graph and offload kernel always runs on the
		// "fasthalf" heterogeneous machine so device placement is
		// observable in its matrices. Applied here — constant across
		// every cell — so the bit-identity invariants still compare
		// like with like.
		h, err := netsim.HeteroByName("fasthalf", cfg.Nodes)
		if err != nil {
			return "", 0, core.Report{}, err
		}
		cfg.Hetero = h
		r, err := apps.RunTaskdep(cfg, apps.TaskdepTest())
		return fpBits(r.PipeSum, r.OffloadSum, r.CheckSum), r.KernelTime, r.Report, err
	}},
	{"lockmix", true, func(cfg core.Config) (string, sim.Duration, core.Report, error) {
		// The lock-protocol stress kernel runs with lazy-release tokens
		// (LockCaching, applied by the matrix drivers) so the cached lock
		// path (lockcache.go) degrades gracefully too, not just the
		// centralized one.
		r, err := apps.RunLockmix(cfg, apps.LockmixTest())
		return fpBits(r.Sum, r.Expected), r.Report.Time, r.Report, err
	}},
}

// MatrixApps returns the application kernels of the acceptance matrices
// in canonical order. The returned slice is a copy; the Run functions
// are shared.
func MatrixApps() []MatrixApp {
	out := make([]MatrixApp, len(matrixApps))
	copy(out, matrixApps)
	return out
}

// MatrixAppByName resolves one kernel of the matrix table.
func MatrixAppByName(name string) (MatrixApp, error) {
	for _, a := range matrixApps {
		if a.Name == name {
			return a, nil
		}
	}
	return MatrixApp{}, fmt.Errorf("harness: unknown app %q (valid: %s)",
		name, strings.Join(MatrixAppNames(), ", "))
}

// MatrixAppNames returns the kernel names in canonical order.
func MatrixAppNames() []string {
	names := make([]string, len(matrixApps))
	for i, a := range matrixApps {
		names[i] = a.Name
	}
	return names
}

// MatrixModes are the directive-execution modes of the matrices.
func MatrixModes() []string { return []string{"hybrid", "sdsm"} }

// MatrixModeConfig builds the cluster configuration one matrix mode uses:
// "hybrid" is the full ParADE runtime (message-passing collectives for
// small data, migratory home), "sdsm" is the conventional KDSM baseline.
// threadsPerNode <= 0 selects the matrices' one thread per node.
func MatrixModeConfig(mode string, nodes, threadsPerNode int) (core.Config, error) {
	if threadsPerNode <= 0 {
		threadsPerNode = 1
	}
	switch mode {
	case "hybrid":
		return core.Config{Nodes: nodes, ThreadsPerNode: threadsPerNode,
			Mode: core.Hybrid, HomeMigration: true}.WithDefaults(), nil
	case "sdsm":
		return kdsm.Config(nodes, threadsPerNode, 2), nil
	}
	return core.Config{}, fmt.Errorf("harness: unknown mode %q (valid: hybrid, sdsm)", mode)
}

// fpBits fingerprints float64 results exactly: any single-bit
// difference in any field changes the string.
func fpBits(vs ...float64) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%016x", math.Float64bits(v))
	}
	return b.String()
}
