package harness

import (
	"strings"
	"testing"

	"parade/internal/netsim"
)

// TestChaosMatrix is the acceptance sweep: all four app kernels in both
// directive modes under every built-in fault profile must produce
// results bit-identical to the fault-free baselines, converge to the
// same final DSM state, and exercise at least one retransmit per
// profile. (~0.7s on a laptop; CI runs the same sweep via
// `go test -run Chaos ./...` and `parade-bench -chaos`.)
func TestChaosMatrix(t *testing.T) {
	rep, err := RunChaos(ChaosOptions{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("chaos matrix failed:\n%s", rep.Render())
	}
	wantRuns := len(matrixApps) * len(chaosModes) * (1 + len(netsim.Profiles(1)))
	if len(rep.Runs) != wantRuns {
		t.Fatalf("matrix ran %d cells, want %d", len(rep.Runs), wantRuns)
	}
}

// TestChaosMatrixReproducible: the same seeds replay the identical
// sweep, cell for cell (virtual times, counters, fingerprints).
func TestChaosMatrixReproducible(t *testing.T) {
	opt := ChaosOptions{Nodes: 2, Seed: 9, Apps: []string{"helmholtz"}}
	a, err := RunChaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("chaos sweep not reproducible:\n--- first\n%s--- second\n%s", a.Render(), b.Render())
	}
}

// TestChaosUnknownProfileRejected: any unknown profile name in the
// filter is an error naming the valid set — even alongside valid names,
// so a typo can never silently shrink the sweep.
func TestChaosUnknownProfileRejected(t *testing.T) {
	for _, sel := range [][]string{{"nope"}, {"drop", "nope"}} {
		_, err := RunChaos(ChaosOptions{Profiles: sel})
		if err == nil || !strings.Contains(err.Error(), `unknown fault profile "nope"`) ||
			!strings.Contains(err.Error(), "drop") {
			t.Fatalf("Profiles=%v: err = %v, want unknown-profile error listing the valid set", sel, err)
		}
	}
}

// TestChaosUnknownAppRejected: same strictness for the app filter.
func TestChaosUnknownAppRejected(t *testing.T) {
	_, err := RunChaos(ChaosOptions{Apps: []string{"helmholtz", "nosuch"}})
	if err == nil || !strings.Contains(err.Error(), `unknown app "nosuch"`) ||
		!strings.Contains(err.Error(), "lockmix") {
		t.Fatalf("err = %v, want unknown-app error listing the valid set", err)
	}
}

// TestChaosFilters: app and profile subsets select the right cells.
func TestChaosFilters(t *testing.T) {
	rep, err := RunChaos(ChaosOptions{Nodes: 2, Apps: []string{"ep"}, Profiles: []string{"chaos"}})
	if err != nil {
		t.Fatal(err)
	}
	// One app, two modes, baseline + one profile each.
	if len(rep.Runs) != 4 {
		t.Fatalf("got %d runs, want 4:\n%s", len(rep.Runs), rep.Render())
	}
	for _, run := range rep.Runs {
		if run.App != "ep" {
			t.Fatalf("unexpected app %q in filtered sweep", run.App)
		}
	}
}
