package harness

import (
	"fmt"
	"math"
	"testing"
	"time"

	"parade/internal/apps"
	"parade/internal/core"
	"parade/internal/netsim"
)

// TestTaskdepJoinRace is the regression test for the collective-join
// termination race: on the legacy kernel the cluster-wide live-task
// count is transiently zero while some team threads are still on their
// way to Taskwait, so a fast thread could leave the join, enter the
// result collective, and never execute the Target tasks later pushed to
// its node — tasks pinned there that no other node may run (the
// remaining threads then spin on guaranteed-miss steals forever). The
// TCP fabric's timing with the small test workload reproduces exactly
// that interleaving; the join's team-arrival target makes it terminate.
// Every kernel must also agree bit-for-bit on the results and the DSM
// fingerprint.
func TestTaskdepJoinRace(t *testing.T) {
	hetero, err := netsim.HeteroByName("fasthalf", 4)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, lanes := range []int{0, 1, 4} {
		cfg := core.Config{
			Nodes: 4, ThreadsPerNode: 1, CPUsPerNode: 2,
			Mode: core.Hybrid, HomeMigration: true,
			// A generous wall-clock bound: the run takes milliseconds, so
			// hitting the deadline means the join livelocked again.
			Deadline: 60 * time.Second,
		}.WithDefaults()
		cfg.Fabric = netsim.TCP()
		cfg.Hetero = hetero
		cfg.Lanes = lanes
		r, err := apps.RunTaskdep(cfg, apps.TaskdepTest())
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		got := fmt.Sprintf("pipe=%x offload=%x check=%x mem=%016x",
			math.Float64bits(r.PipeSum), math.Float64bits(r.OffloadSum),
			math.Float64bits(r.CheckSum), r.Report.MemHash)
		if lanes == 0 {
			want = got
		} else if got != want {
			t.Errorf("lanes=%d diverged:\n got %s\nwant %s", lanes, got, want)
		}
	}
}
