// Package harness regenerates every figure of the paper's evaluation
// (§6): the directive microbenchmarks of Figs. 6–7 and the application
// execution times of Figs. 8–11, plus the ablation experiments listed in
// DESIGN.md. Each figure is produced as labelled series over the node
// counts, formatted as the text tables EXPERIMENTS.md records.
package harness

import (
	"fmt"
	"strings"

	"parade/internal/apps"
	"parade/internal/core"
	"parade/internal/kdsm"
	"parade/internal/microbench"
	"parade/internal/obs"
	"parade/internal/sim"
)

// ObsFunc receives the observability metrics of one cluster run while a
// figure is regenerated: the series label ("ParADE", "1Thread-2CPU", ...),
// the node count, and the run's metrics. A nil ObsFunc disables
// observability entirely (every run keeps the zero-overhead path).
type ObsFunc func(series string, nodes int, m *obs.Metrics)

// Series is one line of a figure: Y values (seconds or microseconds)
// over the X axis (node counts).
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// Figure is one reproduced evaluation artifact.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// DefaultNodes is the paper's cluster sweep (up to its 8 SMP nodes).
var DefaultNodes = []int{1, 2, 4, 8}

// Scale tunes workload sizes: "bench" keeps runs simulator-friendly,
// "paper" uses the paper's full problem sizes (slow).
type Scale string

// Workload scales.
const (
	ScaleBench Scale = "bench"
	ScalePaper Scale = "paper"
)

// MicroReps is the directive repetition count (the paper ran "over 100").
const MicroReps = 100

// Fig6Critical reproduces Fig. 6: critical directive overhead, ParADE vs
// KDSM, in microseconds per execution.
func Fig6Critical(nodes []int) (Figure, error) {
	return microFigure("Fig6", "critical", nodes,
		"Performance comparison of the critical directive between ParADE and KDSM", nil)
}

// Fig7Single reproduces Fig. 7: single directive overhead.
func Fig7Single(nodes []int) (Figure, error) {
	return microFigure("Fig7", "single", nodes,
		"Performance comparison of the single directive between ParADE and KDSM", nil)
}

func microFigure(id, directive string, nodes []int, title string, obsFn ObsFunc) (Figure, error) {
	bench, err := microbench.ByName(directive)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID: id, Title: title,
		XLabel: "nodes", YLabel: "time per directive (us)",
		Notes: fmt.Sprintf("%d repetitions per point; 1 thread per node, cLAN VIA fabric", MicroReps),
	}
	parade := Series{Label: "ParADE"}
	baseline := Series{Label: "KDSM"}
	for _, n := range nodes {
		pCfg := core.Config{Nodes: n, ThreadsPerNode: 1, Mode: core.Hybrid, HomeMigration: true}.WithDefaults()
		kCfg := kdsm.Config(n, 1, 2)
		var pRec, kRec *obs.Recorder
		if obsFn != nil {
			pRec, kRec = obs.New(n), obs.New(n)
			pCfg.Obs, kCfg.Obs = pRec, kRec
		}
		pr, err := bench(pCfg, MicroReps)
		if err != nil {
			return Figure{}, err
		}
		kr, err := bench(kCfg, MicroReps)
		if err != nil {
			return Figure{}, err
		}
		if obsFn != nil {
			obsFn(parade.Label, n, pRec.Metrics())
			obsFn(baseline.Label, n, kRec.Metrics())
		}
		parade.X = append(parade.X, n)
		parade.Y = append(parade.Y, pr.PerOp.Micros())
		baseline.X = append(baseline.X, n)
		baseline.Y = append(baseline.Y, kr.PerOp.Micros())
	}
	fig.Series = []Series{parade, baseline}
	return fig, nil
}

// appConfig names the paper's three thread/CPU configurations.
type appConfig struct {
	label string
	make  func(nodes int) core.Config
}

var appConfigs = []appConfig{
	{"1Thread-1CPU", core.Config1T1C},
	{"1Thread-2CPU", core.Config1T2C},
	{"2Thread-2CPU", core.Config2T2C},
}

// appFigure sweeps the three configurations over the node counts.
func appFigure(id, title string, nodes []int, obsFn ObsFunc, run func(cfg core.Config) (sim.Duration, error)) (Figure, error) {
	fig := Figure{
		ID: id, Title: title,
		XLabel: "nodes", YLabel: "execution time (s)",
		Notes: "cLAN VIA fabric; kernel (timed-region) execution time",
	}
	for _, ac := range appConfigs {
		s := Series{Label: ac.label}
		for _, n := range nodes {
			cfg := ac.make(n)
			var rec *obs.Recorder
			if obsFn != nil {
				rec = obs.New(cfg.Nodes)
				cfg.Obs = rec
			}
			d, err := run(cfg)
			if err != nil {
				return Figure{}, err
			}
			if obsFn != nil {
				obsFn(ac.label, n, rec.Metrics())
			}
			s.X = append(s.X, n)
			s.Y = append(s.Y, d.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8CG reproduces Fig. 8: NAS CG execution time (class A in the paper;
// ScaleBench uses class W — class S's vectors span so few pages that
// eight nodes degenerate into pure false sharing, which class A's 64 MB
// problem does not suffer).
func Fig8CG(nodes []int, scale Scale) (Figure, error) {
	return fig8CG(nodes, scale, nil)
}

func fig8CG(nodes []int, scale Scale, obsFn ObsFunc) (Figure, error) {
	class := apps.CGClassW
	if scale == ScalePaper {
		class = apps.CGClassA
	}
	return appFigure("Fig8",
		fmt.Sprintf("Execution time of the CG kernel on cLAN (class %s)", class.Name),
		nodes, obsFn, func(cfg core.Config) (sim.Duration, error) {
			r, err := apps.RunCG(cfg, class)
			return r.KernelTime, err
		})
}

// Fig9EP reproduces Fig. 9: NAS EP execution time (class A in the paper;
// ScaleBench uses 2^20 pairs).
func Fig9EP(nodes []int, scale Scale) (Figure, error) {
	return fig9EP(nodes, scale, nil)
}

func fig9EP(nodes []int, scale Scale, obsFn ObsFunc) (Figure, error) {
	class := apps.EPClass{Name: "bench", M: 20, PerPair: apps.EPClassA.PerPair}
	if scale == ScalePaper {
		class = apps.EPClassA
	}
	return appFigure("Fig9",
		fmt.Sprintf("Execution time of the EP kernel on cLAN (class %s)", class.Name),
		nodes, obsFn, func(cfg core.Config) (sim.Duration, error) {
			r, err := apps.RunEP(cfg, class)
			return r.KernelTime, err
		})
}

// Fig10Helmholtz reproduces Fig. 10.
func Fig10Helmholtz(nodes []int, scale Scale) (Figure, error) {
	return fig10Helmholtz(nodes, scale, nil)
}

func fig10Helmholtz(nodes []int, scale Scale, obsFn ObsFunc) (Figure, error) {
	prm := apps.HelmholtzDefault()
	if scale == ScalePaper {
		prm.N, prm.M, prm.MaxIter = 512, 512, 1000
	}
	return appFigure("Fig10",
		fmt.Sprintf("Execution time of the Helmholtz program on cLAN (%dx%d, %d iters)", prm.N, prm.M, prm.MaxIter),
		nodes, obsFn, func(cfg core.Config) (sim.Duration, error) {
			r, err := apps.RunHelmholtz(cfg, prm)
			return r.KernelTime, err
		})
}

// Fig11MD reproduces Fig. 11.
func Fig11MD(nodes []int, scale Scale) (Figure, error) {
	return fig11MD(nodes, scale, nil)
}

func fig11MD(nodes []int, scale Scale, obsFn ObsFunc) (Figure, error) {
	prm := apps.MDDefault()
	if scale == ScalePaper {
		prm.NP, prm.Steps = 512, 1000
	}
	return appFigure("Fig11",
		fmt.Sprintf("Execution time of the MD program on cLAN (%d particles, %d steps)", prm.NP, prm.Steps),
		nodes, obsFn, func(cfg core.Config) (sim.Duration, error) {
			r, err := apps.RunMD(cfg, prm)
			return r.KernelTime, err
		})
}

// ByID regenerates a figure by its number (6..11).
func ByID(id int, nodes []int, scale Scale) (Figure, error) {
	return ByIDObserved(id, nodes, scale, nil)
}

// ByIDObserved regenerates a figure with observability attached to every
// run: obsFn receives each run's metrics as the sweep progresses. A nil
// obsFn is ByID.
func ByIDObserved(id int, nodes []int, scale Scale, obsFn ObsFunc) (Figure, error) {
	switch id {
	case 6:
		return microFigure("Fig6", "critical", nodes,
			"Performance comparison of the critical directive between ParADE and KDSM", obsFn)
	case 7:
		return microFigure("Fig7", "single", nodes,
			"Performance comparison of the single directive between ParADE and KDSM", obsFn)
	case 8:
		return fig8CG(nodes, scale, obsFn)
	case 9:
		return fig9EP(nodes, scale, obsFn)
	case 10:
		return fig10Helmholtz(nodes, scale, obsFn)
	case 11:
		return fig11MD(nodes, scale, obsFn)
	}
	return Figure{}, fmt.Errorf("harness: no figure %d (data figures are 6..11)", id)
}

// Render formats the figure as an aligned text table.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "  (%s)\n", f.Notes)
	}
	fmt.Fprintf(&b, "%-16s", f.XLabel+" \\ "+f.YLabel)
	if len(f.Series) > 0 {
		for _, x := range f.Series[0].X {
			fmt.Fprintf(&b, "%12d", x)
		}
	}
	b.WriteString("\n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-16s", s.Label)
		for _, y := range s.Y {
			fmt.Fprintf(&b, "%12.4f", y)
		}
		b.WriteString("\n")
	}
	return b.String()
}
