package hlrc

import (
	"sort"

	"parade/internal/dsm"
	"parade/internal/sim"
)

// Barrier executes the SDSM global barrier for one node. Exactly one
// representative process per node calls it (the runtime funnels all local
// threads through a node-local barrier first). The sequence implements
// §5.2.2: flush diffs to homes, await acknowledgements, send the barrier
// arrival to the master with write notices piggybacked, and wait for the
// departure that carries invalidations and home migrations.
func (e *Engine) Barrier(p *sim.Proc, node int) {
	var t0 sim.Time
	if e.rec != nil {
		t0 = p.Now()
	}
	if e.recov != nil {
		e.recov.barrierSeq[node]++
	}
	e.flush(p, node)
	// The arrival must carry the whole interval's write set, not just the
	// final flush's: pages already flushed mid-interval (lock releases,
	// task dependence intervals) are invisible to nodes that never
	// synchronized with the flusher, and the barrier is where their stale
	// copies must die. relNotices has accumulated exactly that set.
	notices := e.releaseNotices(node)
	// The interval ends here: departure will carry its notices to every
	// node, so releases after the barrier start accumulating afresh.
	for pg := range e.nodes[node].relNotices {
		delete(e.nodes[node].relNotices, pg)
	}
	reads := e.drainReads(node)
	if e.recov != nil {
		e.logBarrier(p, node, notices, reads)
		if ev := e.crashEventDue(node); ev >= 0 {
			// Crash here, at the quiescent point: the flush is acked,
			// the checkpoint log is durable at the buddy, and the
			// arrival below is never sent. The representative parks on
			// the crash gate until recovery releases it — via the normal
			// barrier departure, which may queue eager refreshes exactly
			// as on a fault-free node, so they drain here too.
			e.crashNow(p, node, ev)
			e.refreshPages(p, node)
			if e.rec != nil {
				e.rec.BarrierWait(t0, p.Now(), node)
			}
			return
		}
	}
	ns := e.nodes[node]
	ns.barrierGate = sim.NewGate(e.sim)
	e.send(p, node, 0, msgBarrierArrive, 16+8*len(notices)+8*len(reads),
		barrierArrive{Epoch: e.epoch, Notices: notices, Reads: reads})
	ns.barrierGate.Wait(p)
	e.refreshPages(p, node)
	if e.rec != nil {
		e.rec.BarrierWait(t0, p.Now(), node)
	}
}

// drainReads snapshots and clears node's interval read set for the
// barrier arrival, sorted for deterministic wire contents. Nil unless
// the policy observes reads, so legacy and fixed-policy arrivals carry
// no extra bytes.
func (e *Engine) drainReads(node int) []int {
	if !e.policy.observesReads() {
		return nil
	}
	ns := e.nodes[node]
	if len(ns.readObs) == 0 {
		return nil
	}
	reads := make([]int, 0, len(ns.readObs))
	for pg := range ns.readObs {
		reads = append(reads, pg)
		delete(ns.readObs, pg)
	}
	sort.Ints(reads)
	return reads
}

// refreshPages drains the update-propagation queue: every page the
// just-handled departure invalidated with Push set is re-fetched NOW,
// all fetches in flight at once, instead of serially on demand faults.
// This is where the update protocol wins: one barrier-time round-trip
// batch (no SIGSEGV cost, latencies overlapped) replaces per-access
// fault handling. The queue arrives page-sorted from the departure
// handler, so send order is deterministic.
func (e *Engine) refreshPages(p *sim.Proc, node int) {
	ns := e.nodes[node]
	if len(ns.refreshPending) == 0 {
		return
	}
	pages := ns.refreshPending
	ns.refreshPending = nil
	gates := make([]*sim.Gate, 0, len(pages))
	for _, pg := range pages {
		pi := &ns.table.Pages[pg]
		if pi.State != dsm.Invalid || pi.Home == node {
			continue // raced with a migration back to us; nothing to refresh
		}
		if e.policy.observesReads() {
			// A refresh is a read observation: the classifier must keep
			// seeing this node as a consumer even though the push just
			// eliminated its demand faults (otherwise producer-consumer
			// pages would decay to migratory and oscillate).
			ns.readObs[pg] = struct{}{}
		}
		ns.table.Set(pg, dsm.Transient)
		gate := sim.NewGate(e.sim)
		ns.fetch[pg] = gate
		e.send(p, node, pi.Home, msgPageReq, 16, pageReq{Page: pg})
		gates = append(gates, gate)
		e.cnt(node).PolicyRefreshes++
		e.rec.PolicyRefresh(node)
	}
	for _, g := range gates {
		g.Wait(p)
	}
}

// FlushForFork propagates the calling node's pending modifications to
// their homes and returns the write notices, without a global barrier.
// The runtime calls it on the master before forking a parallel region so
// serial-section writes are visible cluster-wide; the notices travel
// piggybacked on the region-start control messages and are applied with
// ApplyNotices on the receiving nodes.
func (e *Engine) FlushForFork(p *sim.Proc, node int) []dsm.WriteNotice {
	notices := e.flush(p, node)
	e.shipMiniLog(p, node)
	return notices
}

// ApplyNotices invalidates node's stale copies of the noticed pages (no
// home election: fork-time notices describe a single modifier's interval).
func (e *Engine) ApplyNotices(node int, notices []dsm.WriteNotice) {
	ns := e.nodes[node]
	for _, wn := range notices {
		if wn.Modifier == node {
			continue
		}
		pi := &ns.table.Pages[wn.Page]
		if pi.Home == node {
			continue // the home merged the modifier's diffs already
		}
		if pi.State == dsm.ReadOnly {
			ns.table.Set(wn.Page, dsm.Invalid)
			ns.mem.SetAppPerm(wn.Page, dsm.PermNone)
			e.cnt(node).Invalidations++
			e.bumpInval(node, wn.Page)
			e.rec.Invalidated(node, wn.Page)
		}
	}
}

// flush pushes every dirty page's modifications to its home and returns
// the write notices describing them. Pages whose home is this node were
// modified in place (the master copy is already current); the others are
// diffed against their twins. The caller blocks until every home has
// acknowledged its diff bundle, which guarantees remote fetches ordered
// after the barrier see the new contents.
func (e *Engine) flush(p *sim.Proc, node int) []dsm.WriteNotice {
	ns := e.nodes[node]
	// Serialize flushes per node: the scratch buffers and twin frames
	// admit one flush at a time, and a release that waited here still
	// sees its own pages home (the active flush's bundle carried them,
	// and it only returns after the acks).
	for ns.flushing {
		if ns.flushIdle == nil {
			ns.flushIdle = sim.NewGate(e.sim)
		}
		ns.flushIdle.Wait(p)
	}
	if len(ns.dirty) == 0 {
		return nil
	}
	ns.flushing = true
	defer func() {
		ns.flushing = false
		if g := ns.flushIdle; g != nil {
			ns.flushIdle = nil
			g.Open()
		}
	}()
	var t0 sim.Time
	if e.rec != nil {
		t0 = p.Now()
	}
	pages := ns.flushPages[:0]
	for pg := range ns.dirty {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	ns.flushPages = pages
	// Clear exactly the snapshot, and before the first yield: another
	// thread may dirty new pages (or re-dirty flushed ones) while the
	// diff scans and sends below run, and those entries must survive
	// for the flush that owns them.
	for _, pg := range pages {
		delete(ns.dirty, pg)
		ns.relNotices[pg] = struct{}{}
	}

	// bundles and homes are per-node scratch: bundle slices keep empty
	// entries for homes seen in earlier flushes, so homes (the list of
	// destinations with a non-empty bundle this flush) drives the sends.
	bundles := ns.flushBundle
	homes := ns.flushHomes[:0]
	notices := make([]dsm.WriteNotice, 0, len(pages))
	for _, pg := range pages {
		pi := &ns.table.Pages[pg]
		notices = append(notices, dsm.WriteNotice{Page: pg, Modifier: node})
		if pi.Home == node {
			// Home modifications are already merged in place; just end
			// the interval so the next write re-arms dirty tracking.
			ns.table.Set(pg, dsm.ReadOnly)
			ns.mem.SetAppPerm(pg, dsm.PermRead)
			if e.recov != nil && node != 0 {
				ns.flushSelf = append(ns.flushSelf, pg)
			}
			continue
		}
		e.cpus[node].Compute(p, e.cfg.Cost.DiffScan)
		d := e.diffs[node].Get()
		dsm.DiffInto(d, pg, pi.Twin, ns.mem.Frame(pg))
		c := e.cnt(node)
		c.DiffsCreated++
		c.DiffBytes += int64(d.WireBytes())
		if e.rec != nil {
			e.rec.DiffCreated(node, d.WireBytes())
		}
		if !d.Empty() {
			if len(bundles[pi.Home]) == 0 {
				homes = append(homes, pi.Home)
			}
			bundles[pi.Home] = append(bundles[pi.Home], d)
		} else {
			e.diffs[node].Put(d)
		}
		e.frames[node].Put(pi.Twin)
		pi.Twin = nil
		ns.table.Set(pg, dsm.ReadOnly)
		ns.mem.SetAppPerm(pg, dsm.PermRead)
	}

	if e.rec != nil {
		e.rec.FlushStart(p.Now(), node, len(pages), len(homes))
	}
	if len(homes) > 0 {
		sort.Ints(homes)
		ns.flushHomes = homes
		// The gate must exist before the first send: an ack can arrive on
		// the communication thread while we are still sending.
		ns.flushGate = sim.NewGate(e.sim)
		ns.flushPending = len(homes)
		if e.recov != nil && ns.flushAwait == nil {
			ns.flushAwait = map[int]bool{}
		}
		for _, h := range homes {
			diffs := bundles[h]
			bytes := 0
			for _, d := range diffs {
				bytes += d.WireBytes()
			}
			if e.recov != nil {
				ns.flushAwait[h] = true
			}
			e.send(p, node, h, msgDiff, bytes, diffMsg{Diffs: diffs})
		}
		ns.flushGate.Wait(p)
		// Every home has applied its diffs; the bundle slices are dead
		// and can back the next flush. Without a crash plan the homes
		// pooled the diffs on application; with one, a bundle may be
		// resent after a crash, so pooling moves here to the creator.
		for _, h := range homes {
			if e.recov != nil {
				for _, d := range bundles[h] {
					e.diffs[node].Put(d)
				}
			}
			bundles[h] = bundles[h][:0]
		}
	}
	if e.rec != nil {
		e.rec.FlushDone(t0, p.Now(), node, len(pages), len(homes))
	}
	return notices
}
