package hlrc

import (
	"testing"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
	"parade/internal/stats"
)

func newCachedCluster(nodes int) *testCluster {
	s := sim.New(1)
	cpus := make([]*sim.CPU, nodes)
	for i := range cpus {
		cpus[i] = sim.NewCPU(s, 2, 0)
	}
	c := &stats.Counters{}
	net := netsim.New(s, nodes, netsim.VIA(), cpus, c)
	e := New(s, net, cpus, Config{
		Nodes: nodes, ShmBytes: 1 << 20,
		HomeMigration: false, LockCaching: true, Strategy: dsm.FileMapping,
	}, c)
	for n := 0; n < nodes; n++ {
		n := n
		s.SpawnDaemon("comm", func(p *sim.Proc) {
			for {
				m := net.Inbox(n).Pop(p)
				net.RecvCost(p, n)
				e.Handle(p, n, m)
			}
		})
	}
	return &testCluster{s: s, e: e, c: c, cpus: cpus}
}

func TestCachedLockMutualExclusion(t *testing.T) {
	tc := newCachedCluster(4)
	inside, peak := 0, 0
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for i := 0; i < 3; i++ {
			tc.e.AcquireLock(p, node, 1)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(50 * sim.Microsecond)
			inside--
			tc.e.ReleaseLock(p, node, 1)
		}
	})
	if peak != 1 {
		t.Fatalf("peak holders %d", peak)
	}
}

func TestCachedReacquireCostsNoMessages(t *testing.T) {
	tc := newCachedCluster(2)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node != 1 {
			return
		}
		// First acquire pays the manager round trip...
		tc.e.AcquireLock(p, node, 0)
		tc.e.ReleaseLock(p, node, 0)
		before := tc.c.Messages
		// ...every further uncontended acquire is message-free.
		for i := 0; i < 5; i++ {
			tc.e.AcquireLock(p, node, 0)
			tc.e.ReleaseLock(p, node, 0)
		}
		if tc.c.Messages != before {
			t.Errorf("cached re-acquire sent %d messages", tc.c.Messages-before)
		}
	})
}

func TestCachedLockDataCoherence(t *testing.T) {
	// The token must carry the write notices: each acquirer sees the
	// previous holder's update to the lock-protected counter.
	tc := newCachedCluster(3)
	const addr = 512
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for i := 0; i < 4; i++ {
			tc.e.AcquireLock(p, node, 2)
			v := tc.read(p, node, addr)
			tc.write(p, node, addr, v+1)
			tc.e.ReleaseLock(p, node, 2)
		}
		tc.e.Barrier(p, node)
	})
	if got := tc.e.Mem(0).ReadF64(addr); got != 12 {
		t.Fatalf("counter = %v, want 12", got)
	}
}

func TestCachedCheaperThanCentralizedWhenUncontended(t *testing.T) {
	run := func(caching bool) (sim.Time, int64) {
		var tc *testCluster
		if caching {
			tc = newCachedCluster(4)
		} else {
			tc = newTestCluster(4, false)
		}
		tc.spawnNodes(t, func(p *sim.Proc, node int) {
			if node != 2 {
				return
			}
			// One node repeatedly takes "its" lock — the uncontended
			// pattern lock caching exists for.
			for i := 0; i < 20; i++ {
				tc.e.AcquireLock(p, node, 5)
				tc.e.ReleaseLock(p, node, 5)
			}
		})
		return tc.s.Now(), tc.c.Messages
	}
	cachedTime, cachedMsgs := run(true)
	centralTime, centralMsgs := run(false)
	if cachedMsgs >= centralMsgs {
		t.Fatalf("caching used %d messages vs centralized %d", cachedMsgs, centralMsgs)
	}
	if cachedTime >= centralTime {
		t.Fatalf("caching time %v not better than centralized %v", cachedTime, centralTime)
	}
}

func TestCachedContendedStillCorrectCounters(t *testing.T) {
	tc := newCachedCluster(4)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for i := 0; i < 5; i++ {
			tc.e.AcquireLock(p, node, 0)
			tc.e.ReleaseLock(p, node, 0)
		}
	})
	if tc.c.LockRequests != 20 {
		t.Fatalf("LockRequests = %d, want 20", tc.c.LockRequests)
	}
}
