package hlrc

import (
	"fmt"
	"testing"

	"parade/internal/sim"
)

// Regression tests for two concurrency bugs found during bring-up. Both
// are instances of protocol state being observed while a handler or
// fault service was blocked on a virtual-time charge — exactly the class
// of bug the paper's atomic-page-update discussion (§5.1) is about.

// Bug 1: two threads of one node write-faulting the same READ_ONLY page
// could both enter the twinning path; the second thread's twin snapshot
// (taken after its TwinCreate charge) already contained the first
// thread's store, which silently dropped that store from the interval's
// diff. The fix re-checks the page state after the charge.
func TestTwinRaceBothWritesSurvive(t *testing.T) {
	tc := newTestCluster(2, false)
	// Node 1 runs two "threads" (plain procs here) writing two slots of
	// the same page in the same interval; afterwards node 0 (home) must
	// see both.
	writers := sim.NewWaitGroup(tc.s)
	writers.Add(2)
	for th := 0; th < 2; th++ {
		th := th
		tc.s.Spawn(fmt.Sprintf("w%d", th), func(p *sim.Proc) {
			tc.write(p, 1, 8*th, float64(th+1))
			writers.Done()
		})
	}
	tc.s.Spawn("rep1", func(p *sim.Proc) {
		writers.Wait(p)
		tc.e.Barrier(p, 1)
	})
	tc.s.Spawn("rep0", func(p *sim.Proc) {
		tc.e.Barrier(p, 0)
	})
	if err := tc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tc.e.Mem(0).ReadF64(0); got != 1 {
		t.Fatalf("home slot 0 = %v, want 1 (first thread's write lost)", got)
	}
	if got := tc.e.Mem(0).ReadF64(8); got != 2 {
		t.Fatalf("home slot 1 = %v, want 2 (second thread's write lost)", got)
	}
	if tc.c.TwinsCreated != 1 {
		t.Fatalf("TwinsCreated = %d, want exactly 1 for the shared page", tc.c.TwinsCreated)
	}
}

// Bug 2: the master incremented the barrier epoch only after sending all
// departure messages; because each send charges CPU time (yielding the
// communication thread), a node released by an early departure could
// reach its next barrier and send an arrival stamped with the stale
// epoch. Back-to-back barriers across many nodes exercise the window.
func TestBarrierEpochRace(t *testing.T) {
	tc := newTestCluster(8, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for i := 0; i < 20; i++ {
			tc.e.Barrier(p, node)
		}
	})
	if tc.c.Barriers != 20 {
		t.Fatalf("completed %d barriers, want 20", tc.c.Barriers)
	}
}

// Back-to-back barriers with interleaved work must also stay consistent
// when nodes arrive in shifting orders.
func TestBarrierStormWithSkew(t *testing.T) {
	tc := newTestCluster(4, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for i := 0; i < 10; i++ {
			// Skew arrival order differently each round.
			p.Sleep(sim.Duration((node*7+i*13)%5) * 100 * sim.Microsecond)
			tc.write(p, node, (node*4+i)*256, float64(i))
			tc.e.Barrier(p, node)
		}
	})
	if tc.c.Barriers != 10 {
		t.Fatalf("Barriers = %d", tc.c.Barriers)
	}
}

// Lock release must panic if a non-holder releases (protocol misuse).
// Exercised synchronously against the manager-side state machine so the
// panic is recoverable in the test goroutine.
func TestLockReleaseByNonHolderPanics(t *testing.T) {
	tc := newTestCluster(2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("release by non-holder did not panic")
		}
	}()
	ls := tc.e.lockState(0)
	ls.held = true
	ls.holder = 0
	tc.e.lockRelease(nil, 1, 0, nil) // node 1 never acquired it
}

// A fetch triggered by a read on one thread and a write on another must
// produce a single PageReq and end in the DIRTY state with a twin.
func TestMixedReadWriteFaultsOnOnePage(t *testing.T) {
	tc := newTestCluster(2, false)
	tc.e.Mem(0).WriteF64(0, 5)
	var got float64
	done := sim.NewWaitGroup(tc.s)
	done.Add(2)
	tc.s.Spawn("reader", func(p *sim.Proc) {
		got = tc.read(p, 1, 0)
		done.Done()
	})
	tc.s.Spawn("writer", func(p *sim.Proc) {
		tc.write(p, 1, 8, 7)
		done.Done()
	})
	tc.s.Spawn("sync", func(p *sim.Proc) { done.Wait(p) })
	if err := tc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("reader got %v", got)
	}
	if tc.c.PageFetches != 1 {
		t.Fatalf("PageFetches = %d, want 1", tc.c.PageFetches)
	}
	if tc.e.Mem(1).ReadF64(8) != 7 {
		t.Fatal("writer's store lost")
	}
}
