package hlrc

import (
	"reflect"
	"testing"

	"parade/internal/sim"
)

// traceStep is one barrier interval of a synthetic access trace:
// which nodes wrote and which nodes read each page.
type traceStep struct {
	writes map[int][]int // page -> writing nodes
	reads  map[int][]int // page -> reading nodes
}

// runTrace feeds the steps through a classifier exactly the way
// completeBarrier does: reads arrive via noteReads during the interval,
// the modifier map closes it via observe. Epochs continue from start so
// multi-call tests keep monotonic virtual time.
func runTrace(c *classifier, steps []traceStep) []reclassEvent {
	return runTraceAt(c, 0, steps)
}

func runTraceAt(c *classifier, start int, steps []traceStep) []reclassEvent {
	var events []reclassEvent
	for i, st := range steps {
		epoch := start + i
		for pg, nodes := range st.reads {
			for _, n := range nodes {
				c.noteReads(n, []int{pg})
			}
		}
		mods := map[int]map[int]bool{}
		for pg, nodes := range st.writes {
			set := map[int]bool{}
			for _, n := range nodes {
				set[n] = true
			}
			mods[pg] = set
		}
		events = append(events, c.observe(epoch, sim.Time(1000*(epoch+1)), mods)...)
	}
	return events
}

// w and r build single-page trace steps tersely.
func w(pg int, nodes ...int) traceStep {
	return traceStep{writes: map[int][]int{pg: nodes}}
}
func r(pg int, nodes ...int) traceStep {
	return traceStep{reads: map[int][]int{pg: nodes}}
}

// TestClassifierPatterns drives each access-pattern class from the
// synthetic trace that defines it and checks the converged verdict.
func TestClassifierPatterns(t *testing.T) {
	cases := []struct {
		name  string
		steps []traceStep
		want  PageClass
	}{
		{
			name:  "read-mostly",
			steps: []traceStep{r(0, 1, 2), r(0, 3), r(0, 1)},
			want:  ClassReadMostly,
		},
		{
			name:  "migratory",
			steps: []traceStep{w(0, 1), w(0, 2), w(0, 3)},
			want:  ClassMigratory,
		},
		{
			// The canonical same-interval shape: one writer, concurrent
			// readers on other nodes.
			name: "producer-consumer same interval",
			steps: []traceStep{
				{writes: map[int][]int{0: {0}}, reads: map[int][]int{0: {1, 2}}},
				{writes: map[int][]int{0: {0}}, reads: map[int][]int{0: {1, 2}}},
			},
			want: ClassProducerConsumer,
		},
		{
			// The cross-interval shape most kernels produce: write at
			// barrier k, read during interval k+1. The read-only interval
			// banks its evidence for the next modified interval.
			name:  "producer-consumer alternating intervals",
			steps: []traceStep{w(0, 0), r(0, 1, 2), w(0, 0), r(0, 1, 2), w(0, 0)},
			want:  ClassProducerConsumer,
		},
		{
			name:  "falsely shared",
			steps: []traceStep{w(0, 0, 1), w(0, 2, 3)},
			want:  ClassFalselyShared,
		},
		{
			// The writer reading its own page is not a consumer.
			name: "self-read stays migratory",
			steps: []traceStep{
				{writes: map[int][]int{0: {2}}, reads: map[int][]int{0: {2}}},
				{writes: map[int][]int{0: {2}}, reads: map[int][]int{0: {2}}},
			},
			want: ClassMigratory,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newClassifier(4)
			runTrace(c, tc.steps)
			if got := c.classOf(0); got != tc.want {
				t.Fatalf("class = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestClassifierUntouchedPagesStayUnknown: observation is per touched
// page; everything else keeps the zero verdict.
func TestClassifierUntouchedPagesStayUnknown(t *testing.T) {
	c := newClassifier(4)
	runTrace(c, []traceStep{w(1, 0), w(1, 0)})
	for _, pg := range []int{0, 2, 3} {
		if got := c.classOf(pg); got != ClassUnknown {
			t.Fatalf("untouched page %d classified %v", pg, got)
		}
	}
}

// TestClassifierFirstClassificationImmediate: hysteresis protects an
// established protocol, but an unknown page has none, so the first
// verdict applies after a single interval.
func TestClassifierFirstClassificationImmediate(t *testing.T) {
	c := newClassifier(1)
	ev := runTrace(c, []traceStep{w(0, 2)})
	if got := c.classOf(0); got != ClassMigratory {
		t.Fatalf("class after one interval = %v, want migratory", got)
	}
	if len(ev) != 1 || !ev[0].First || ev[0].Class != ClassMigratory {
		t.Fatalf("events = %+v, want one First migratory event", ev)
	}
}

// TestClassifierHysteresis pins the two-interval rule at both
// boundaries: one anomalous interval must not flip an established
// class; the second consecutive one must.
func TestClassifierHysteresis(t *testing.T) {
	c := newClassifier(1)
	// Establish migratory.
	runTrace(c, []traceStep{w(0, 1), w(0, 2)})
	if got := c.classOf(0); got != ClassMigratory {
		t.Fatalf("setup class = %v, want migratory", got)
	}
	// One falsely-shared interval: candidate changes, verdict must not.
	runTraceAt(c, 2, []traceStep{w(0, 0, 1)})
	if got := c.classOf(0); got != ClassMigratory {
		t.Fatalf("class flipped after one anomalous interval: %v", got)
	}
	// A second consecutive one crosses the threshold.
	ev := runTraceAt(c, 3, []traceStep{w(0, 2, 3)})
	if got := c.classOf(0); got != ClassFalselyShared {
		t.Fatalf("class after two falsely-shared intervals = %v", got)
	}
	if len(ev) != 1 || ev[0].Class != ClassFalselyShared || ev[0].First {
		t.Fatalf("events = %+v, want one non-First falsely-shared event", ev)
	}
	if ev[0].SinceNs <= 0 {
		t.Fatalf("SinceNs = %d, want positive latency since previous change", ev[0].SinceNs)
	}
	// An interrupted streak starts over: migratory, then one
	// falsely-shared, then migratory again — still migratory... so a
	// later single falsely-shared interval is again not enough.
	c2 := newClassifier(1)
	runTrace(c2, []traceStep{w(0, 1), w(0, 2), w(0, 0, 1), w(0, 3), w(0, 0, 1)})
	if got := c2.classOf(0); got != ClassMigratory {
		t.Fatalf("interrupted streak flipped the class: %v", got)
	}
}

// TestClassifierBankingSurvivesMultipleReadIntervals: consumer evidence
// accumulates across consecutive read-only intervals and is consumed by
// the next write.
func TestClassifierBankingSurvivesMultipleReadIntervals(t *testing.T) {
	c := newClassifier(1)
	runTrace(c, []traceStep{w(0, 0), r(0, 1), r(0, 2), w(0, 0), r(0, 3), w(0, 0)})
	if got := c.classOf(0); got != ClassProducerConsumer {
		t.Fatalf("class = %v, want producer-consumer", got)
	}
}

// TestClassifierDeterministicAcrossInsertionOrder: the same logical
// trace delivered in different arrival orders (reads noted
// node-by-node vs. page-by-page, modifier maps built in different
// orders) must produce identical events, verdicts, and fold words —
// the property the cross-lane bit-identity guarantee rests on.
func TestClassifierDeterministicAcrossInsertionOrder(t *testing.T) {
	build := func(reverse bool) (*classifier, []reclassEvent) {
		c := newClassifier(8)
		var events []reclassEvent
		for epoch := 0; epoch < 6; epoch++ {
			nodes := []int{0, 1, 2, 3}
			if reverse {
				nodes = []int{3, 2, 1, 0}
			}
			for _, n := range nodes {
				// Every node reads pages (n, n+1) mod 8 each interval.
				c.noteReads(n, []int{n % 8, (n + 1) % 8})
			}
			mods := map[int]map[int]bool{}
			pages := []int{1, 4, 6}
			if reverse {
				pages = []int{6, 4, 1}
			}
			for _, pg := range pages {
				mods[pg] = map[int]bool{pg % 4: true, (pg + epoch) % 4: true}
			}
			events = append(events, c.observe(epoch, sim.Time(1000*(epoch+1)), mods)...)
		}
		return c, events
	}
	c1, ev1 := build(false)
	c2, ev2 := build(true)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event streams diverge:\n%+v\n%+v", ev1, ev2)
	}
	for pg := 0; pg < 8; pg++ {
		if c1.classOf(pg) != c2.classOf(pg) {
			t.Fatalf("page %d: %v vs %v", pg, c1.classOf(pg), c2.classOf(pg))
		}
	}
	if f1, f2 := collectFold(c1), collectFold(c2); !reflect.DeepEqual(f1, f2) {
		t.Fatalf("folds diverge:\n%v\n%v", f1, f2)
	}
}

// TestPushByClass pins the adaptive propagation rule, including the
// minority-writer boundary for falsely-shared pages (push at exactly
// half the cluster writing, invalidate above).
func TestPushByClass(t *testing.T) {
	s := pushByClass{}
	cases := []struct {
		name   string
		class  PageClass
		mods   []int
		nnodes int
		want   bool
	}{
		{"read-mostly pushes", ClassReadMostly, []int{0}, 4, true},
		{"producer-consumer pushes", ClassProducerConsumer, []int{2}, 4, true},
		{"migratory invalidates", ClassMigratory, []int{1}, 4, false},
		{"unknown invalidates", ClassUnknown, []int{1}, 4, false},
		{"falsely-shared minority pushes", ClassFalselyShared, []int{0, 1}, 4, true},
		{"falsely-shared exactly half pushes", ClassFalselyShared, []int{0, 1, 2, 3}, 8, true},
		{"falsely-shared majority invalidates", ClassFalselyShared, []int{0, 1, 2}, 4, false},
		{"falsely-shared all-writers invalidates", ClassFalselyShared, []int{0, 1, 2, 3}, 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.ShouldPush(0, tc.class, tc.mods, tc.nnodes); got != tc.want {
				t.Fatalf("ShouldPush(%v, %v, %d) = %v, want %v",
					tc.class, tc.mods, tc.nnodes, got, tc.want)
			}
		})
	}
}

// TestHomeStrategies pins both election rules side by side.
func TestHomeStrategies(t *testing.T) {
	cases := []struct {
		name      string
		strat     HomeStrategy
		cur       int
		mods      []int
		class     PageClass
		migration bool
		want      int
	}{
		{"legacy migrates single mod", legacyHome{}, 0, []int{2}, ClassUnknown, true, 2},
		{"legacy pinned without flag", legacyHome{}, 0, []int{2}, ClassUnknown, false, 0},
		{"legacy keeps home on multi-mod", legacyHome{}, 0, []int{1, 2}, ClassUnknown, true, 0},
		{"adaptive follows migratory writer", adaptiveHome{}, 0, []int{2}, ClassMigratory, false, 2},
		{"adaptive follows producer", adaptiveHome{}, 0, []int{3}, ClassProducerConsumer, false, 3},
		{"adaptive pins falsely-shared", adaptiveHome{}, 0, []int{2}, ClassFalselyShared, true, 0},
		{"adaptive pins read-mostly", adaptiveHome{}, 0, []int{2}, ClassReadMostly, true, 0},
		{"adaptive unknown falls back to legacy", adaptiveHome{}, 0, []int{2}, ClassUnknown, true, 2},
		{"adaptive keeps home on multi-mod", adaptiveHome{}, 1, []int{0, 2}, ClassFalselyShared, true, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.strat.ElectHome(0, tc.cur, tc.mods, tc.class, tc.migration)
			if got != tc.want {
				t.Fatalf("ElectHome = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestPolicyNames: the accepted-name list and validator stay in sync,
// and the engine factory covers every name.
func TestPolicyNames(t *testing.T) {
	want := []string{PolicyLegacy, PolicyInvalidate, PolicyUpdate, PolicyAdaptive}
	if got := PolicyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PolicyNames() = %q", got)
	}
	for _, name := range want {
		if !ValidPolicy(name) {
			t.Fatalf("ValidPolicy(%q) = false", name)
		}
		eng := newPolicyEngine(name, 4)
		if (eng == nil) != (name == PolicyLegacy) {
			t.Fatalf("newPolicyEngine(%q) nil-ness wrong", name)
		}
		if eng != nil && (eng.cls != nil) != (name == PolicyAdaptive) {
			t.Fatalf("newPolicyEngine(%q) classifier presence wrong", name)
		}
	}
	if ValidPolicy("bogus") {
		t.Fatal(`ValidPolicy("bogus") = true`)
	}
}
