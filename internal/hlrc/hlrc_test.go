package hlrc

import (
	"fmt"
	"strings"
	"testing"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/obs"
	"parade/internal/sim"
	"parade/internal/stats"
)

// testCluster wires an engine to a simulated network with one
// communication daemon per node, mirroring what the ParADE runtime does.
type testCluster struct {
	s    *sim.Simulator
	e    *Engine
	c    *stats.Counters
	cpus []*sim.CPU
}

func newTestCluster(nodes int, migration bool) *testCluster {
	s := sim.New(1)
	cpus := make([]*sim.CPU, nodes)
	for i := range cpus {
		cpus[i] = sim.NewCPU(s, 2, 0)
	}
	c := &stats.Counters{}
	net := netsim.New(s, nodes, netsim.VIA(), cpus, c)
	e := New(s, net, cpus, Config{
		Nodes: nodes, ShmBytes: 1 << 20,
		HomeMigration: migration, Strategy: dsm.FileMapping,
	}, c)
	for n := 0; n < nodes; n++ {
		n := n
		s.SpawnDaemon(fmt.Sprintf("comm%d", n), func(p *sim.Proc) {
			for {
				m := net.Inbox(n).Pop(p)
				net.RecvCost(p, n)
				e.Handle(p, n, m)
			}
		})
	}
	return &testCluster{s: s, e: e, c: c, cpus: cpus}
}

// spawnNodes runs body once per node on its own process and drives the
// simulation to completion.
func (tc *testCluster) spawnNodes(t *testing.T, body func(p *sim.Proc, node int)) {
	t.Helper()
	for n := 0; n < tc.e.cfg.Nodes; n++ {
		n := n
		tc.s.Spawn(fmt.Sprintf("app%d", n), func(p *sim.Proc) { body(p, n) })
	}
	if err := tc.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func (tc *testCluster) write(p *sim.Proc, node, addr int, v float64) {
	tc.e.EnsureWrite(p, node, addr)
	tc.e.Mem(node).WriteF64(addr, v)
}

func (tc *testCluster) read(p *sim.Proc, node, addr int) float64 {
	tc.e.EnsureRead(p, node, addr)
	return tc.e.Mem(node).ReadF64(addr)
}

func TestRemoteReadFetchesFromHome(t *testing.T) {
	tc := newTestCluster(2, true)
	got := -1.0
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 0 {
			tc.write(p, 0, 64, 42.5) // master is home, writes in place
		}
		tc.e.Barrier(p, node)
		if node == 1 {
			got = tc.read(p, 1, 64)
		}
		tc.e.Barrier(p, node)
	})
	if got != 42.5 {
		t.Fatalf("remote read = %v, want 42.5", got)
	}
	if tc.c.PageFetches != 1 {
		t.Fatalf("PageFetches = %d, want 1", tc.c.PageFetches)
	}
}

func TestSecondReadHitsLocally(t *testing.T) {
	tc := newTestCluster(2, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 0 {
			tc.write(p, 0, 0, 1)
		}
		tc.e.Barrier(p, node)
		if node == 1 {
			tc.read(p, 1, 0)
			before := tc.c.ReadFaults
			tc.read(p, 1, 8) // same page
			if tc.c.ReadFaults != before {
				t.Errorf("second read faulted")
			}
		}
		tc.e.Barrier(p, node)
	})
	if tc.c.PageFetches != 1 {
		t.Fatalf("PageFetches = %d", tc.c.PageFetches)
	}
}

func TestTwinOnlyOnNonHomeWrites(t *testing.T) {
	tc := newTestCluster(2, false)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 0 {
			tc.write(p, 0, 0, 1) // home write: no twin
		}
		tc.e.Barrier(p, node)
		if node == 1 {
			tc.write(p, 1, 0, 2) // remote write: fetch + twin
		}
		tc.e.Barrier(p, node)
	})
	if tc.c.TwinsCreated != 1 {
		t.Fatalf("TwinsCreated = %d, want 1 (only the non-home write)", tc.c.TwinsCreated)
	}
}

func TestDiffPropagatesToHomeAndThirdNode(t *testing.T) {
	tc := newTestCluster(3, false)
	var got float64
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.write(p, 1, 128, 7.25)
		}
		tc.e.Barrier(p, node)
		if node == 2 {
			got = tc.read(p, 2, 128)
		}
		tc.e.Barrier(p, node)
	})
	if got != 7.25 {
		t.Fatalf("third node read %v, want 7.25", got)
	}
	if tc.c.DiffsCreated < 1 || tc.c.DiffsApplied < 1 {
		t.Fatalf("diffs: created=%d applied=%d", tc.c.DiffsCreated, tc.c.DiffsApplied)
	}
}

func TestMultiWriterMerge(t *testing.T) {
	// Two nodes write disjoint words of the same page in one interval;
	// HLRC merges both diffs at the home.
	tc := newTestCluster(3, true)
	var a, b float64
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		switch node {
		case 1:
			tc.write(p, 1, 0, 1.5)
		case 2:
			tc.write(p, 2, 8, 2.5)
		}
		tc.e.Barrier(p, node)
		if node == 0 {
			a = tc.read(p, 0, 0)
			b = tc.read(p, 0, 8)
		}
		tc.e.Barrier(p, node)
	})
	if a != 1.5 || b != 2.5 {
		t.Fatalf("merged page reads %v,%v want 1.5,2.5", a, b)
	}
}

func TestHomeMigratesToSoleModifier(t *testing.T) {
	tc := newTestCluster(2, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.write(p, 1, 0, 3)
		}
		tc.e.Barrier(p, node)
	})
	if tc.c.HomeMigrations != 1 {
		t.Fatalf("HomeMigrations = %d, want 1", tc.c.HomeMigrations)
	}
	for n := 0; n < 2; n++ {
		if h := tc.e.Table(n).Pages[0].Home; h != 1 {
			t.Fatalf("node %d directory says home=%d, want 1", n, h)
		}
	}
}

func TestNoMigrationWhenDisabled(t *testing.T) {
	tc := newTestCluster(2, false)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.write(p, 1, 0, 3)
		}
		tc.e.Barrier(p, node)
	})
	if tc.c.HomeMigrations != 0 {
		t.Fatalf("HomeMigrations = %d, want 0", tc.c.HomeMigrations)
	}
	if h := tc.e.Table(0).Pages[0].Home; h != 0 {
		t.Fatalf("home moved to %d with migration disabled", h)
	}
}

func TestMigrationEliminatesRepeatDiffs(t *testing.T) {
	// A node repeatedly modifying the same page should stop producing
	// diffs once it becomes the home (the paper's locality argument).
	run := func(migration bool) int64 {
		tc := newTestCluster(2, migration)
		tc.spawnNodes(t, func(p *sim.Proc, node int) {
			for iter := 0; iter < 5; iter++ {
				if node == 1 {
					tc.write(p, 1, 0, float64(iter))
				}
				tc.e.Barrier(p, node)
			}
		})
		return tc.c.DiffsCreated
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("diffs with migration %d, without %d — migration should reduce them", with, without)
	}
	if with != 1 {
		t.Fatalf("with migration want exactly 1 diff (first interval), got %d", with)
	}
}

func TestMultipleModifiersKeepCurrentHome(t *testing.T) {
	tc := newTestCluster(3, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 || node == 2 {
			tc.write(p, node, int(node)*8, float64(node))
		}
		tc.e.Barrier(p, node)
	})
	if tc.c.HomeMigrations != 0 {
		t.Fatalf("HomeMigrations = %d; multi-writer page must stay at current home", tc.c.HomeMigrations)
	}
	if h := tc.e.Table(1).Pages[0].Home; h != 0 {
		t.Fatalf("home = %d, want 0", h)
	}
}

func TestSoleModifierKeepsCopyWithoutMigration(t *testing.T) {
	tc := newTestCluster(2, false)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.write(p, 1, 0, 9)
		}
		tc.e.Barrier(p, node)
		if node == 1 {
			before := tc.c.ReadFaults
			if v := tc.read(p, 1, 0); v != 9 {
				t.Errorf("sole modifier lost its value: %v", v)
			}
			if tc.c.ReadFaults != before {
				t.Errorf("sole modifier re-faulted on its own page")
			}
		}
		tc.e.Barrier(p, node)
	})
}

func TestInvalidationOnCoherenceMiss(t *testing.T) {
	tc := newTestCluster(2, false)
	var second float64
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.read(p, 1, 0) // cache the page
		}
		tc.e.Barrier(p, node)
		if node == 0 {
			tc.write(p, 0, 0, 5) // home modifies
		}
		tc.e.Barrier(p, node) // write notice must invalidate node 1's copy
		if node == 1 {
			second = tc.read(p, 1, 0)
		}
		tc.e.Barrier(p, node)
	})
	if second != 5 {
		t.Fatalf("stale read %v after invalidation, want 5", second)
	}
	if tc.c.Invalidations < 1 {
		t.Fatalf("Invalidations = %d", tc.c.Invalidations)
	}
}

func TestConcurrentFaultsOnePageOneFetch(t *testing.T) {
	// The atomic-page-update scenario: two threads of one node fault on
	// the same page; TRANSIENT/BLOCKED must funnel them into one fetch.
	tc := newTestCluster(2, true)
	vals := make([]float64, 2)
	done := 0
	for th := 0; th < 2; th++ {
		th := th
		tc.s.Spawn(fmt.Sprintf("t%d", th), func(p *sim.Proc) {
			vals[th] = tc.read(p, 1, 0)
			done++
		})
	}
	// Node 0 just parks at a barrier-free script; give node 1's threads a
	// page to fetch by pre-seeding master memory directly (home path).
	tc.e.Mem(0).WriteF64(0, 11)
	if err := tc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 || vals[0] != 11 || vals[1] != 11 {
		t.Fatalf("threads read %v", vals)
	}
	if tc.c.PageFetches != 1 {
		t.Fatalf("PageFetches = %d, want 1 (one fetch for both threads)", tc.c.PageFetches)
	}
	if tc.c.ReadFaults != 2 {
		t.Fatalf("ReadFaults = %d, want 2", tc.c.ReadFaults)
	}
}

func TestLockMutualExclusionAcrossNodes(t *testing.T) {
	const lock = 3
	tc := newTestCluster(4, false)
	inside, peak := 0, 0
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for i := 0; i < 3; i++ {
			tc.e.AcquireLock(p, node, lock)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(100 * sim.Microsecond)
			inside--
			tc.e.ReleaseLock(p, node, lock)
		}
	})
	if peak != 1 {
		t.Fatalf("peak holders = %d", peak)
	}
	if tc.c.LockRequests != 12 {
		t.Fatalf("LockRequests = %d, want 12", tc.c.LockRequests)
	}
}

func TestLockProtectedCounterIsCoherent(t *testing.T) {
	// The classic SDSM critical section: each node increments a shared
	// counter under the lock; grants carry write notices so acquirers
	// refetch the page.
	const lock = 0
	const addr = 256
	const perNode = 4
	tc := newTestCluster(4, false)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for i := 0; i < perNode; i++ {
			tc.e.AcquireLock(p, node, lock)
			v := tc.read(p, node, addr)
			tc.write(p, node, addr, v+1)
			tc.e.ReleaseLock(p, node, lock)
		}
		tc.e.Barrier(p, node)
	})
	// After the final barrier every node can read the total.
	tc2 := tc.e.Mem(0).ReadF64(addr)
	if tc2 != 16 {
		t.Fatalf("counter = %v, want 16", tc2)
	}
}

func TestLockGrantInvalidatesNoticedPages(t *testing.T) {
	const lock = 1
	tc := newTestCluster(2, false)
	var seen float64
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 0 {
			tc.e.AcquireLock(p, node, lock)
			tc.write(p, 0, 512, 99)
			tc.e.ReleaseLock(p, node, lock)
			tc.e.Barrier(p, node)
		} else {
			tc.read(p, 1, 512) // cache the page (may be pre-modification)
			tc.e.Barrier(p, node)
			tc.e.AcquireLock(p, node, lock)
			seen = tc.read(p, 1, 512)
			tc.e.ReleaseLock(p, node, lock)
		}
	})
	_ = seen
	if seen != 99 {
		t.Fatalf("acquirer read %v, want 99", seen)
	}
}

func TestBarrierCountsAndWriteNotices(t *testing.T) {
	tc := newTestCluster(4, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		tc.write(p, node, node*dsm.PageSize, 1) // each node its own page
		tc.e.Barrier(p, node)
	})
	if tc.c.Barriers != 1 {
		t.Fatalf("Barriers = %d", tc.c.Barriers)
	}
	if tc.c.WriteNotices != 4 {
		t.Fatalf("WriteNotices = %d, want 4", tc.c.WriteNotices)
	}
}

func TestBarrierLatencyGrowsWithNodes(t *testing.T) {
	run := func(nodes int) sim.Time {
		tc := newTestCluster(nodes, true)
		tc.spawnNodes(t, func(p *sim.Proc, node int) {
			tc.e.Barrier(p, node)
		})
		return tc.s.Now()
	}
	t2, t8 := run(2), run(8)
	if t8 <= t2 {
		t.Fatalf("barrier with 8 nodes (%v) not slower than 2 nodes (%v)", t8, t2)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (sim.Time, stats.Counters) {
		tc := newTestCluster(4, true)
		tc.spawnNodes(t, func(p *sim.Proc, node int) {
			for i := 0; i < 3; i++ {
				tc.write(p, node, (node*7+i)*128, float64(node+i))
				tc.e.Barrier(p, node)
				tc.read(p, node, ((node+1)%4*7+i)*128)
				tc.e.Barrier(p, node)
			}
		})
		return tc.s.Now(), tc.c.Snapshot()
	}
	time1, c1 := run()
	time2, c2 := run()
	if time1 != time2 {
		t.Fatalf("times differ: %v vs %v", time1, time2)
	}
	if c1 != c2 {
		t.Fatalf("counters differ:\n%s\n%s", c1.String(), c2.String())
	}
}

func TestSingleNodeBarrierIsCheap(t *testing.T) {
	tc := newTestCluster(1, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		tc.write(p, 0, 0, 1)
		tc.e.Barrier(p, node)
	})
	// One node: arrival + departure are loopback messages only.
	if tc.c.Messages != 0 {
		t.Fatalf("single-node barrier used %d network messages", tc.c.Messages)
	}
}

func TestPageReportTracksHotPages(t *testing.T) {
	tc := newTestCluster(3, true)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		for round := 0; round < 4; round++ {
			if node == 0 {
				tc.write(p, 0, 0, float64(round)) // page 0 ping-pongs
			}
			tc.e.Barrier(p, node)
			tc.read(p, node, 0)
			tc.e.Barrier(p, node)
		}
		if node == 1 {
			tc.write(p, 1, 5*dsm.PageSize, 1) // page 5 migrates once
		}
		tc.e.Barrier(p, node)
	})
	report := tc.e.PageReport(0)
	if len(report) == 0 {
		t.Fatal("empty page report")
	}
	if report[0].Page != 0 {
		t.Fatalf("hottest page = %d, want 0 (report %+v)", report[0].Page, report)
	}
	var pg5 *PageStat
	for i := range report {
		if report[i].Page == 5 {
			pg5 = &report[i]
		}
	}
	if pg5 == nil || pg5.Migrations != 1 || pg5.Home != 1 {
		t.Fatalf("page 5 stats %+v", pg5)
	}
	out := RenderPageReport(report)
	if !strings.Contains(out, "fetches") {
		t.Fatalf("render missing header:\n%s", out)
	}
}

func TestProtocolTrace(t *testing.T) {
	tc := newTestCluster(2, true)
	var buf strings.Builder
	tc.e.SetTrace(&buf)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.write(p, 1, 0, 1)
		}
		tc.e.Barrier(p, node)
		if node == 0 {
			tc.read(p, 0, 0)
		}
		tc.e.Barrier(p, node)
	})
	out := buf.String()
	for _, want := range []string{"write fault", "read fault", "home migrates 0 -> 1", "barrier 0: complete", "flush"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestSetTraceMatchesLegacySink pins the compatibility contract of the
// SetTrace shim: its output is byte-identical to attaching an
// obs.Recorder with the legacy text sink directly.
func TestSetTraceMatchesLegacySink(t *testing.T) {
	scenario := func(tc *testCluster) func(p *sim.Proc, node int) {
		return func(p *sim.Proc, node int) {
			if node == 1 {
				tc.write(p, 1, 0, 1)
			}
			tc.e.Barrier(p, node)
			if node == 0 {
				tc.read(p, 0, 0)
			}
			tc.e.Barrier(p, node)
		}
	}

	var shim strings.Builder
	tc1 := newTestCluster(2, true)
	tc1.e.SetTrace(&shim)
	tc1.spawnNodes(t, scenario(tc1))

	var direct strings.Builder
	tc2 := newTestCluster(2, true)
	rec := obs.New(2)
	rec.AddSink(obs.NewLegacyTextSink(&direct))
	tc2.e.SetRecorder(rec)
	tc2.spawnNodes(t, scenario(tc2))

	if shim.String() != direct.String() {
		t.Errorf("SetTrace output differs from legacy sink:\nshim:\n%s\ndirect:\n%s",
			shim.String(), direct.String())
	}
	if shim.Len() == 0 {
		t.Error("empty trace")
	}
}
