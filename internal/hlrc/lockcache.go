package hlrc

import (
	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// The cached (lazy-release) lock protocol: the KDSM paper's actual lock
// design (Yun et al., "An Efficient Lock Protocol for Home-based Lazy
// Release Consistency"). A node that releases a lock keeps the token;
// re-acquiring it costs no messages until another node asks. A remote
// request travels requester -> manager -> (revoke) holder -> (token)
// manager -> (grant) requester. The write notices of all critical
// sections ride with the token, so the acquirer invalidates exactly what
// release consistency requires.
//
// Enabled with Config.LockCaching; the default centralized protocol
// (lock.go) returns the token to the manager on every release. The
// ablation benchmark compares both against ParADE's collectives.

// nodeLock is a node's cached view of one lock.
type nodeLock struct {
	cached        bool // token is resident on this node
	inUse         bool // a local thread holds the lock
	revokePending bool // manager asked for the token back
	notices       []dsm.WriteNotice
}

func (ns *nodeState) nodeLockFor(id int) *nodeLock {
	nl := ns.lockCache[id]
	if nl == nil {
		nl = &nodeLock{}
		ns.lockCache[id] = nl
	}
	return nl
}

// acquireCached is AcquireLock's body under the cached protocol.
func (e *Engine) acquireCached(p *sim.Proc, node, id int) {
	ns := e.nodes[node]
	nl := ns.nodeLockFor(id)
	e.cnt(node).LockRequests++
	e.rec.LockRequest(node)
	if nl.cached && !nl.inUse {
		// Token resident: zero-message re-acquire. Claim it BEFORE the
		// bookkeeping charge: the charge yields the processor and a
		// concurrent revoke on the communication thread would otherwise
		// see an idle token and ship it away mid-acquire.
		nl.inUse = true
		e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
		return
	}
	gate := sim.NewGate(e.sim)
	ns.lockGate[id] = gate
	mgr := e.lockManager(id)
	if mgr == node {
		e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
		e.cachedLockReq(p, node, id)
	} else {
		e.send(p, node, mgr, msgLockReq, 16, lockMsg{Lock: id})
	}
	gate.Wait(p)
}

// releaseCached is ReleaseLock's body under the cached protocol.
func (e *Engine) releaseCached(p *sim.Proc, node, id int) {
	ns := e.nodes[node]
	nl := ns.nodeLockFor(id)
	e.flush(p, node)
	notices := e.releaseNotices(node)
	e.shipMiniLog(p, node)
	nl.notices = mergeNotices(nl.notices, notices)
	nl.inUse = false
	if !nl.revokePending {
		// Lazy release: keep the token; no message (beyond refreshing
		// the buddy's token replica with the merged notices).
		e.forwardToken(p, node, id, nl)
		return
	}
	nl.revokePending = false
	nl.cached = false
	tok := nl.notices
	nl.notices = nil
	e.forwardToken(p, node, id, nl)
	mgr := e.lockManager(id)
	if mgr == node {
		e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
		e.tokenReturned(p, id, tok)
		return
	}
	e.send(p, node, mgr, msgLockToken, 16+8*len(tok), lockMsg{Lock: id, Notices: tok})
}

// cachedLockReq runs at the manager (process p on the manager node).
func (e *Engine) cachedLockReq(p *sim.Proc, from, id int) {
	ls := e.lockState(id)
	if ls.holder == from && ls.held {
		panic("hlrc: cached lock re-requested by its owner")
	}
	if !ls.held {
		// No owner anywhere: grant directly. The token starts empty
		// unless a recovery reclaimed it from a crashed holder with its
		// notices attached.
		ls.held = true
		ls.holder = from
		tok := ls.reclaimed
		ls.reclaimed = nil
		e.grantCachedToken(p, from, id, tok)
		return
	}
	e.cnt(e.lockManager(id)).LockWaits++
	e.rec.LockWaited(from)
	ls.queue = append(ls.queue, from)
	if len(ls.queue) == 1 {
		// First waiter: recall the token from the current owner.
		e.sendRevoke(p, id, ls.holder)
	}
}

// sendRevoke asks the token's owner to hand it back when free.
func (e *Engine) sendRevoke(p *sim.Proc, id, owner int) {
	mgr := e.lockManager(id)
	if owner == mgr {
		e.revokeAt(p, mgr, id)
		return
	}
	e.send(p, mgr, owner, msgLockRevoke, 16, lockMsg{Lock: id})
}

// revokeAt processes a revoke on the owning node: if the lock is idle
// the token returns immediately, otherwise the release will send it.
func (e *Engine) revokeAt(p *sim.Proc, node, id int) {
	ns := e.nodes[node]
	nl := ns.nodeLockFor(id)
	if !nl.cached {
		panic("hlrc: revoke at a node without the token")
	}
	if nl.inUse {
		nl.revokePending = true
		return
	}
	nl.cached = false
	tok := nl.notices
	nl.notices = nil
	e.forwardToken(p, node, id, nl)
	mgr := e.lockManager(id)
	if mgr == node {
		e.tokenReturned(p, id, tok)
		return
	}
	e.send(p, node, mgr, msgLockToken, 16+8*len(tok), lockMsg{Lock: id, Notices: tok})
}

// tokenReturned runs at the manager when the token comes back: grant to
// the oldest waiter and recall it again if more are queued.
func (e *Engine) tokenReturned(p *sim.Proc, id int, tok []dsm.WriteNotice) {
	ls := e.lockState(id)
	if len(ls.queue) == 0 {
		// Spurious return (possible if the waiter vanished — not in this
		// runtime, so treat as free).
		ls.held = false
		ls.holder = -1
		return
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next
	e.grantCachedToken(p, next, id, tok)
	if len(ls.queue) > 0 {
		// More waiters: recall from the new owner right away. Manager ->
		// owner messages are FIFO, so the grant arrives first.
		e.sendRevoke(p, id, next)
	}
}

// grantCachedToken delivers the token (with its notices) to node `to`.
func (e *Engine) grantCachedToken(p *sim.Proc, to, id int, tok []dsm.WriteNotice) {
	mgr := e.lockManager(id)
	if to == mgr {
		e.applyCachedGrant(p, to, id, tok)
		return
	}
	e.send(p, mgr, to, msgLockGrant, 16+8*len(tok), lockMsg{Lock: id, Notices: tok})
}

// applyCachedGrant installs the token at the acquiring node. The token
// arrives already claimed (inUse) for the waiting acquirer, so a revoke
// processed before the acquirer resumes cannot ship it away.
func (e *Engine) applyCachedGrant(p *sim.Proc, node, id int, tok []dsm.WriteNotice) {
	ns := e.nodes[node]
	e.applyGrantInvalidations(node, tok)
	nl := ns.nodeLockFor(id)
	nl.cached = true
	nl.inUse = true
	nl.notices = tok
	e.forwardToken(p, node, id, nl)
	gate := ns.lockGate[id]
	delete(ns.lockGate, id)
	gate.Open()
}

// handleLockRevoke dispatches a revoke on the owner's comm thread.
func (e *Engine) handleLockRevoke(p *sim.Proc, node int, m *netsim.Message) {
	e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
	e.revokeAt(p, node, m.Payload.(lockMsg).Lock)
}

// handleLockToken dispatches a returned token on the manager's comm
// thread.
func (e *Engine) handleLockToken(p *sim.Proc, node int, m *netsim.Message) {
	e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
	msg := m.Payload.(lockMsg)
	e.tokenReturned(p, msg.Lock, msg.Notices)
}

// mergeNotices appends new notices, replacing stale entries for the same
// page (the latest modifier wins, matching the manager-side map of the
// centralized protocol).
func mergeNotices(old, add []dsm.WriteNotice) []dsm.WriteNotice {
	if len(add) == 0 {
		return old
	}
	idx := make(map[int]int, len(old))
	for i, wn := range old {
		idx[wn.Page] = i
	}
	for _, wn := range add {
		if i, ok := idx[wn.Page]; ok {
			old[i] = wn
			continue
		}
		idx[wn.Page] = len(old)
		old = append(old, wn)
	}
	return old
}
