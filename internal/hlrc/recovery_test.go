package hlrc

import (
	"fmt"
	"testing"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
	"parade/internal/stats"
)

// newCrashCluster is newTestCluster plus the crash-only fault plane and
// a crash plan (nil plan: armed fabric, inert engine).
func newCrashCluster(nodes int, migration, lockCaching bool, plan *CrashPlan) *testCluster {
	s := sim.New(1)
	cpus := make([]*sim.CPU, nodes)
	for i := range cpus {
		cpus[i] = sim.NewCPU(s, 2, 0)
	}
	c := &stats.Counters{}
	net := netsim.New(s, nodes, netsim.VIA(), cpus, c)
	net.EnableFaults(netsim.ProfileCrashOnly(1))
	e := New(s, net, cpus, Config{
		Nodes: nodes, ShmBytes: 1 << 20,
		HomeMigration: migration, LockCaching: lockCaching,
		Strategy: dsm.FileMapping, Crash: plan,
	}, c)
	for n := 0; n < nodes; n++ {
		n := n
		s.SpawnDaemon(fmt.Sprintf("comm%d", n), func(p *sim.Proc) {
			for {
				m := net.Inbox(n).Pop(p)
				net.RecvCost(p, n)
				e.Handle(p, n, m)
			}
		})
	}
	return &testCluster{s: s, e: e, c: c, cpus: cpus}
}

// pageAddr gives each node a private page.
func pageAddr(node int) int { return node * dsm.PageSize }

// TestCrashPlanValidate: the plan's structural invariants.
func TestCrashPlanValidate(t *testing.T) {
	ev := func(node, k int) CrashEvent { return CrashEvent{Node: node, Barrier: k, Restart: true} }
	cases := []struct {
		name  string
		plan  CrashPlan
		nodes int
		ok    bool
	}{
		{"valid", CrashPlan{Events: []CrashEvent{ev(1, 2)}}, 4, true},
		{"valid-repeat", CrashPlan{Events: []CrashEvent{ev(1, 1), ev(1, 3)}}, 4, true},
		{"master", CrashPlan{Events: []CrashEvent{ev(0, 1)}}, 4, false},
		{"out-of-range", CrashPlan{Events: []CrashEvent{ev(4, 1)}}, 4, false},
		{"barrier-zero", CrashPlan{Events: []CrashEvent{ev(1, 0)}}, 4, false},
		{"two-nodes", CrashPlan{Events: []CrashEvent{ev(1, 1), ev(2, 2)}}, 4, false},
		{"single-node-cluster", CrashPlan{Events: []CrashEvent{ev(1, 1)}}, 1, false},
	}
	for _, c := range cases {
		err := c.plan.Validate(c.nodes)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid plan accepted", c.name)
		}
	}
	var nilPlan *CrashPlan
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	if nilPlan.Active() {
		t.Error("nil plan active")
	}
}

// restartProg is a 3-node program with home migration, cross-node
// reads, and four barriers; it returns each node's final observation.
func restartProg(t *testing.T, plan *CrashPlan) ([]float64, uint64, *stats.Counters) {
	t.Helper()
	tc := newCrashCluster(3, true, false, plan)
	got := make([]float64, 3)
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		tc.write(p, node, pageAddr(node), float64(10+node))
		tc.e.Barrier(p, node) // 1: each private page migrates to its writer
		right := (node + 1) % 3
		v := tc.read(p, node, pageAddr(right))
		tc.write(p, node, pageAddr(node), v+float64(node))
		tc.e.Barrier(p, node) // 2: crash point in the restart plans
		left := (node + 2) % 3
		v = tc.read(p, node, pageAddr(left))
		tc.write(p, node, pageAddr(node), v*2)
		tc.e.Barrier(p, node) // 3
		got[node] = tc.read(p, node, pageAddr((node+1)%3))
		tc.e.Barrier(p, node) // 4
	})
	return got, tc.e.StateFingerprint(), tc.c
}

// TestRestartBitIdentical: a crash-and-restart run must observe the
// same values and converge to the same protocol state fingerprint as
// the fault-free run — the checkpoint/restore contract at engine level.
func TestRestartBitIdentical(t *testing.T) {
	baseVals, baseFP, baseC := restartProg(t, nil)
	for _, plan := range []*CrashPlan{
		{Events: []CrashEvent{{Node: 1, Barrier: 2, Restart: true}}},
		{Events: []CrashEvent{{Node: 2, Barrier: 3, Restart: true}}},
		{Events: []CrashEvent{{Node: 1, Barrier: 1, Restart: true}, {Node: 1, Barrier: 3, Restart: true}}},
	} {
		vals, fp, c := restartProg(t, plan)
		for n := range vals {
			if vals[n] != baseVals[n] {
				t.Fatalf("plan %+v: node %d observed %v, fault-free %v", plan.Events, n, vals[n], baseVals[n])
			}
		}
		if fp != baseFP {
			t.Fatalf("plan %+v: fingerprint %x, fault-free %x", plan.Events, fp, baseFP)
		}
		want := int64(len(plan.Events))
		if c.Crashes != want || c.NodeRestarts != want || c.Recoveries != want {
			t.Fatalf("plan %+v: crashes/restarts/recoveries = %d/%d/%d, want %d each",
				plan.Events, c.Crashes, c.NodeRestarts, c.Recoveries, want)
		}
		if c.CkptMsgs == 0 {
			t.Fatalf("plan %+v: no checkpoint traffic", plan.Events)
		}
	}
	if baseC.CkptMsgs != 0 || baseC.Crashes != 0 {
		t.Fatalf("fault-free run shipped checkpoints (%d) or crashed (%d)", baseC.CkptMsgs, baseC.Crashes)
	}
}

// TestRestartResendsStuckFlush: a survivor caught mid-flush into the
// crashed home blocks on its diff ack; recovery must resend the bundle
// to the restarted node and release the flusher, and the written value
// must land.
func TestRestartResendsStuckFlush(t *testing.T) {
	run := func(plan *CrashPlan) (float64, uint64, *stats.Counters) {
		tc := newCrashCluster(3, true, false, plan)
		var got float64
		tc.spawnNodes(t, func(p *sim.Proc, node int) {
			if node == 1 {
				tc.write(p, 1, pageAddr(1), 5)
			}
			tc.e.Barrier(p, node) // 1: page migrates to node 1
			if node == 2 {
				// Write node 1's page remotely, then stall so node 1 is
				// already dead when the flush's diff goes out.
				tc.write(p, 2, pageAddr(1), 7)
				tc.cpus[2].Compute(p, 500*sim.Microsecond)
			}
			tc.e.Barrier(p, node) // 2: node 1 crashes; node 2's diff is stuck
			if node == 0 {
				got = tc.read(p, 0, pageAddr(1))
			}
			tc.e.Barrier(p, node) // 3
		})
		return got, tc.e.StateFingerprint(), tc.c
	}
	baseVal, baseFP, _ := run(nil)
	val, fp, c := run(&CrashPlan{Events: []CrashEvent{{Node: 1, Barrier: 2, Restart: true}}})
	if val != 7 || baseVal != 7 {
		t.Fatalf("read %v (fault-free %v), want 7", val, baseVal)
	}
	if fp != baseFP {
		t.Fatalf("fingerprint %x, fault-free %x", fp, baseFP)
	}
	if c.ResentBundles == 0 {
		t.Fatal("stuck diff bundle was not resent")
	}
}

// TestRestartReissuesStuckFetch: a reader blocked on a page fetch into
// the crashed home must have its fetch reissued after restart.
func TestRestartReissuesStuckFetch(t *testing.T) {
	run := func(plan *CrashPlan) (float64, uint64, *stats.Counters) {
		tc := newCrashCluster(3, true, false, plan)
		var got float64
		tc.spawnNodes(t, func(p *sim.Proc, node int) {
			if node == 1 {
				tc.write(p, 1, pageAddr(1), 9)
			}
			tc.e.Barrier(p, node) // 1: page migrates to node 1
			if node == 2 {
				// Stall so node 1 is dead before the fetch goes out, then
				// read its page: the fetch has no live home to answer.
				tc.cpus[2].Compute(p, 500*sim.Microsecond)
				got = tc.read(p, 2, pageAddr(1))
			}
			tc.e.Barrier(p, node) // 2: node 1 crashes at entry
			tc.e.Barrier(p, node) // 3
		})
		return got, tc.e.StateFingerprint(), tc.c
	}
	baseVal, baseFP, _ := run(nil)
	val, fp, c := run(&CrashPlan{Events: []CrashEvent{{Node: 1, Barrier: 2, Restart: true}}})
	if val != 9 || baseVal != 9 {
		t.Fatalf("read %v (fault-free %v), want 9", val, baseVal)
	}
	if fp != baseFP {
		t.Fatalf("fingerprint %x, fault-free %x", fp, baseFP)
	}
	if c.Refetches == 0 {
		t.Fatal("stuck page fetch was not reissued")
	}
}

// TestShrinkRehomesAndSurvives: with Restart=false the dead member is
// removed; its pages re-home to the smallest survivor with their
// checkpointed contents intact, the barrier completes over the smaller
// membership, and the cluster keeps running.
func TestShrinkRehomesAndSurvives(t *testing.T) {
	plan := &CrashPlan{Events: []CrashEvent{{Node: 1, Barrier: 2}}}
	tc := newCrashCluster(3, true, false, plan)
	var got0, got2 float64
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.write(p, 1, pageAddr(1), 33)
		}
		tc.e.Barrier(p, node) // 1: page migrates to node 1
		tc.e.Barrier(p, node) // 2: node 1 crashes, membership shrinks
		if tc.e.Removed(node) {
			return
		}
		if node == 0 {
			got0 = tc.read(p, 0, pageAddr(1))
		}
		if node == 2 {
			got2 = tc.read(p, 2, pageAddr(1))
		}
		tc.e.Barrier(p, node) // 3: completes with 2 members
	})
	if got0 != 33 || got2 != 33 {
		t.Fatalf("survivors read %v/%v, want 33 (checkpointed contents lost)", got0, got2)
	}
	if !tc.e.Removed(1) || tc.e.Removed(0) || tc.e.Removed(2) {
		t.Fatal("membership bookkeeping wrong after shrink")
	}
	for _, survivor := range []int{0, 2} {
		if h := tc.e.nodes[survivor].table.Pages[pageAddr(1)/dsm.PageSize].Home; h != 0 {
			t.Fatalf("node %d sees home %d for the orphaned page, want 0", survivor, h)
		}
	}
	if tc.c.Recoveries != 1 || tc.c.NodeRestarts != 0 {
		t.Fatalf("Recoveries=%d NodeRestarts=%d, want 1/0", tc.c.Recoveries, tc.c.NodeRestarts)
	}
	if tc.c.PagesRestored == 0 {
		t.Fatal("no pages restored from the buddy mirror")
	}
}

// TestShrinkReclaimsCachedToken: a lazy-release token resident on the
// dead member is reclaimed by the manager (with its write notices) and
// granted to the next requester.
func TestShrinkReclaimsCachedToken(t *testing.T) {
	plan := &CrashPlan{Events: []CrashEvent{{Node: 1, Barrier: 2}}}
	tc := newCrashCluster(3, true, true, plan)
	const lockID = 7
	reacquired := false
	tc.spawnNodes(t, func(p *sim.Proc, node int) {
		if node == 1 {
			tc.e.AcquireLock(p, 1, lockID)
			tc.write(p, 1, pageAddr(1), 1)
			tc.e.ReleaseLock(p, 1, lockID) // token stays cached on node 1
		}
		tc.e.Barrier(p, node) // 1
		tc.e.Barrier(p, node) // 2: node 1 crashes, membership shrinks
		if tc.e.Removed(node) {
			return
		}
		if node == 2 {
			tc.e.AcquireLock(p, 2, lockID) // must be granted from the reclaimed token
			reacquired = true
			tc.e.ReleaseLock(p, 2, lockID)
		}
		tc.e.Barrier(p, node) // 3
	})
	if !reacquired {
		t.Fatal("survivor never reacquired the orphaned lock")
	}
	if tc.c.ReclaimedLocks != 1 {
		t.Fatalf("ReclaimedLocks = %d, want 1", tc.c.ReclaimedLocks)
	}
}

// TestFingerprintCoversLockState: satellite coverage for the extended
// StateFingerprint — manager lock state, cached tokens, and pending
// write-notice state must all perturb the hash, while timing-dependent
// modifier identities must not.
func TestFingerprintCoversLockState(t *testing.T) {
	tc := newTestCluster(2, false)
	sequence := []struct {
		name   string
		mutate func()
	}{
		{"lock held", func() {
			ls := tc.e.lockState(5)
			ls.held, ls.holder = true, 1
		}},
		{"queue entry", func() { tc.e.lockState(5).queue = append(tc.e.lockState(5).queue, 0) }},
		{"manager notice page", func() { tc.e.lockState(5).notices[3] = 1 }},
		{"reclaimed token", func() {
			tc.e.lockState(5).reclaimed = []dsm.WriteNotice{{Page: 9, Modifier: 1}}
		}},
		{"cached token", func() { tc.e.nodes[1].nodeLockFor(5).cached = true }},
		{"token notice page", func() {
			tc.e.nodes[1].nodeLockFor(5).notices = []dsm.WriteNotice{{Page: 7, Modifier: 0}}
		}},
		{"pending barrier modifiers", func() { tc.e.master.modifiers[2] = map[int]bool{1: true} }},
	}
	prev := tc.e.StateFingerprint()
	for _, step := range sequence {
		step.mutate()
		next := tc.e.StateFingerprint()
		if next == prev {
			t.Fatalf("%s: fingerprint blind to the change", step.name)
		}
		prev = next
	}
	// Modifier identity is timing-dependent and must be excluded.
	tc.e.lockState(5).notices[3] = 0
	tc.e.nodes[1].nodeLockFor(5).notices[0].Modifier = 1
	if got := tc.e.StateFingerprint(); got != prev {
		t.Fatal("fingerprint depends on write-notice modifier identity")
	}
}
