package hlrc

import (
	"fmt"

	"parade/internal/dsm"
	"parade/internal/sim"
)

// EnsureRead guarantees that node may read addr: the fast path is a
// permission check (free, as on real hardware); a miss simulates the
// SIGSEGV fault handler, fetching the page from its home and blocking p
// until the atomic page update completes.
func (e *Engine) EnsureRead(p *sim.Proc, node, addr int) {
	ns := e.nodes[node]
	for !ns.mem.AppReadOK(addr) {
		e.cnt(node).ReadFaults++
		e.rec.ReadFault(node)
		e.fault(p, node, dsm.PageOf(addr), false)
	}
}

// EnsureWrite guarantees that node may write addr, fetching the page if
// absent and creating a twin on the first write of the interval.
func (e *Engine) EnsureWrite(p *sim.Proc, node, addr int) {
	ns := e.nodes[node]
	for !ns.mem.AppWriteOK(addr) {
		e.cnt(node).WriteFaults++
		e.rec.WriteFault(node)
		e.fault(p, node, dsm.PageOf(addr), true)
	}
}

// fault runs one iteration of the page fault handler for page pg.
func (e *Engine) fault(p *sim.Proc, node, pg int, write bool) {
	ns := e.nodes[node]
	e.cpus[node].Compute(p, e.cfg.Cost.FaultHandler)
	switch ns.table.Pages[pg].State {
	case dsm.Invalid:
		// First faulting thread starts the fetch.
		home := ns.table.Pages[pg].Home
		if home == node {
			panic(fmt.Sprintf("hlrc: node %d is home of page %d but holds it INVALID", node, pg))
		}
		var t0 sim.Time
		if e.rec != nil {
			t0 = p.Now()
			e.rec.FetchStart(t0, node, pg, home, write)
		}
		if e.policy.observesReads() {
			// Classifier input: any demand fetch means this node consumed
			// the page this interval. Write-fault fetches are recorded too
			// — harmless, since the fetcher is then also in the modifier
			// set and the interval rules ignore the writer's own reads.
			ns.readObs[pg] = struct{}{}
		}
		ns.table.Set(pg, dsm.Transient)
		gate := sim.NewGate(e.sim)
		ns.fetch[pg] = gate
		e.send(p, node, home, msgPageReq, 16, pageReq{Page: pg})
		gate.Wait(p)
		if e.rec != nil {
			e.rec.FetchDone(t0, p.Now(), node, pg, home)
		}

	case dsm.Transient:
		// Another thread is already fetching: mark waiters present.
		ns.table.Set(pg, dsm.Blocked)
		ns.fetch[pg].Wait(p)

	case dsm.Blocked:
		ns.fetch[pg].Wait(p)

	case dsm.ReadOnly:
		if !write {
			return // raced with a completed fetch; permission is there now
		}
		e.makeDirty(p, node, pg)

	case dsm.Dirty:
		// Valid and writable; nothing to do (permission check will pass).
	}
}

// makeDirty performs the write-fault transition READ_ONLY -> DIRTY:
// non-home nodes take a twin so the interval's modifications can be
// diffed out at the next flush; the home writes its master copy in
// place (its page is the merge target, no twin needed — §5.2.2).
func (e *Engine) makeDirty(p *sim.Proc, node, pg int) {
	ns := e.nodes[node]
	if ns.table.Pages[pg].Home != node {
		e.cpus[node].Compute(p, e.cfg.Cost.TwinCreate)
		// Two local threads can write-fault on the same page and both
		// reach this handler; the Compute above yields the processor, so
		// re-check whether the other thread finished the transition. A
		// second twin taken now would snapshot the first thread's write
		// and silently drop it from the interval's diff — the
		// multi-threaded variant of the atomic-page-update problem.
		if ns.table.Pages[pg].State == dsm.Dirty {
			return
		}
		twin := e.frames[node].Get()
		copy(twin, ns.mem.Frame(pg))
		ns.table.Pages[pg].Twin = twin
		e.cnt(node).TwinsCreated++
		e.rec.TwinCreated(node)
	}
	ns.table.Set(pg, dsm.Dirty)
	ns.mem.SetAppPerm(pg, dsm.PermReadWrite)
	ns.dirty[pg] = struct{}{}
}
