package hlrc

import (
	"sort"

	"parade/internal/dsm"
	"parade/internal/sim"
)

// Explicit data movement for the runtime's target/map offload layer
// (internal/core): map(to) pages are pulled to the executing node in
// one batched prefetch before the offloaded body runs, and map(from)
// pages are queued on the spawning node for its next barrier-time
// refresh batch. Both reuse the engine's ordinary fetch machinery —
// page requests to homes, the per-page fetch gate shared with demand
// faults — so prefetched pages interoperate with concurrent faulting
// threads and with crash recovery exactly like any other fetch.

// PrefetchPages pulls every listed page that is not already valid at
// node, all fetches in flight at once — the map(to) clause: one batched
// round-trip replaces the demand faults the offloaded body would take
// one page at a time. Pages already valid (or homed here) are skipped;
// pages another thread is fetching are waited on, not re-requested.
func (e *Engine) PrefetchPages(p *sim.Proc, node int, pages []int) {
	ns := e.nodes[node]
	var gates []*sim.Gate
	for _, pg := range pages {
		switch ns.table.Pages[pg].State {
		case dsm.Invalid:
			home := ns.table.Pages[pg].Home
			if home == node {
				continue // home holds the master copy; nothing to pull
			}
			if e.policy.observesReads() {
				// A prefetch is a read observation, like a demand fetch:
				// the classifier must keep seeing this node as a consumer.
				ns.readObs[pg] = struct{}{}
			}
			var t0 sim.Time
			if e.rec != nil {
				t0 = p.Now()
				e.rec.FetchStart(t0, node, pg, home, false)
			}
			ns.table.Set(pg, dsm.Transient)
			gate := sim.NewGate(e.sim)
			ns.fetch[pg] = gate
			e.send(p, node, home, msgPageReq, 16, pageReq{Page: pg})
			gates = append(gates, gate)
		case dsm.Transient:
			// A demand fault is already fetching; join it and mark waiters
			// present so the completion path wakes us.
			ns.table.Set(pg, dsm.Blocked)
			gates = append(gates, ns.fetch[pg])
		case dsm.Blocked:
			gates = append(gates, ns.fetch[pg])
		case dsm.ReadOnly, dsm.Dirty:
			// Already valid locally.
		}
	}
	for _, g := range gates {
		g.Wait(p)
	}
}

// TaskFlush ends a task dependence interval: the executing node's
// pending modifications are flushed to their homes (acknowledged before
// return, so successors released afterwards fetch current data) and the
// resulting write notices are returned to travel the task's outgoing
// dependence edges, where ApplyNotices invalidates stale copies on the
// successors' nodes. This is the lock protocol's release/acquire pair
// with graph edges in place of lock tokens.
func (e *Engine) TaskFlush(p *sim.Proc, node int) []dsm.WriteNotice {
	notices := e.flush(p, node)
	e.shipMiniLog(p, node)
	return notices
}

// QueueRefresh adds pages to node's barrier-time refresh queue — the
// map(from) clause: the spawning node re-fetches the offloaded task's
// output pages eagerly at its next barrier instead of demand-faulting
// them afterwards. The queue is kept sorted and duplicate-free (it is
// shared with the update policy's push refreshes), and refreshPages
// skips entries that turn out to be valid at the barrier, so queueing
// is always safe — including for pages the task never ends up dirtying.
func (e *Engine) QueueRefresh(node int, pages []int) {
	if len(pages) == 0 {
		return
	}
	ns := e.nodes[node]
	merged := append(append([]int(nil), ns.refreshPending...), pages...)
	sort.Ints(merged)
	out := merged[:0]
	for i, pg := range merged {
		if i > 0 && pg == merged[i-1] {
			continue
		}
		out = append(out, pg)
	}
	ns.refreshPending = out
}
