package hlrc

import (
	"sort"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// The distributed lock manager of a conventional SDSM (§2.2): a lock's
// home (manager) is lockID % nodes; acquiring costs a round trip to the
// manager, and the grant piggybacks write notices describing the pages
// previous holders dirtied, which the acquirer must invalidate. This is
// exactly the mechanism ParADE's hybrid path eliminates; the KDSM
// baseline configuration exercises it for every critical/single.

// lockManager returns the manager node of lock id. Under a crash plan
// every lock is managed by the master: manager state (holder, queue,
// accumulated notices) is not replicated, so it must live on the one
// node the crash model treats as immortal.
func (e *Engine) lockManager(id int) int {
	if e.recov != nil {
		return 0
	}
	return id % e.cfg.Nodes
}

// lockState returns lock id's manager-side state. The state lives in
// the manager node's shard, so only the manager's lane touches it.
func (e *Engine) lockState(id int) *lockState {
	shard := e.locks[e.lockManager(id)]
	ls := shard[id]
	if ls == nil {
		ls = &lockState{notices: map[int]int{}}
		shard[id] = ls
	}
	return ls
}

// AcquireLock blocks p until node holds global lock id.
func (e *Engine) AcquireLock(p *sim.Proc, node, id int) {
	var t0 sim.Time
	if e.rec != nil {
		t0 = p.Now()
	}
	if e.cfg.LockCaching {
		e.acquireCached(p, node, id)
	} else {
		e.acquireCentral(p, node, id)
	}
	if e.rec != nil {
		e.rec.LockAcquired(t0, p.Now(), node, id)
	}
}

// acquireCentral is AcquireLock's body under the centralized protocol.
func (e *Engine) acquireCentral(p *sim.Proc, node, id int) {
	ns := e.nodes[node]
	gate := sim.NewGate(e.sim)
	ns.lockGate[id] = gate
	mgr := e.lockManager(id)
	if mgr == node {
		e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
		e.lockRequest(p, node, id)
	} else {
		e.send(p, node, mgr, msgLockReq, 16, lockMsg{Lock: id})
	}
	gate.Wait(p)
}

// lockRequest runs at the manager (process p is on the manager node) for
// a request from node `from`.
func (e *Engine) lockRequest(p *sim.Proc, from, id int) {
	ls := e.lockState(id)
	mgr := e.lockManager(id)
	e.cnt(mgr).LockRequests++
	e.rec.LockRequest(from)
	if ls.held {
		e.cnt(mgr).LockWaits++
		e.rec.LockWaited(from)
		ls.queue = append(ls.queue, from)
		return
	}
	ls.held = true
	ls.holder = from
	e.grantLock(p, from, id, ls)
}

// grantLock delivers the lock to node `to` with the accumulated write
// notices; p runs on the manager node. A self-grant short-circuits the
// network.
func (e *Engine) grantLock(p *sim.Proc, to, id int, ls *lockState) {
	notices := make([]dsm.WriteNotice, 0, len(ls.notices))
	for pg, mod := range ls.notices {
		notices = append(notices, dsm.WriteNotice{Page: pg, Modifier: mod})
	}
	mgr := e.lockManager(id)
	if mgr == to {
		e.applyGrant(to, id, notices)
		return
	}
	e.send(p, mgr, to, msgLockGrant, 16+8*len(notices), lockMsg{Lock: id, Notices: notices})
}

// handleLockReq processes a remote lock request at the manager.
func (e *Engine) handleLockReq(p *sim.Proc, node int, m *netsim.Message) {
	e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
	req := m.Payload.(lockMsg)
	if e.cfg.LockCaching {
		e.cachedLockReq(p, m.From, req.Lock)
		return
	}
	e.lockRequest(p, m.From, req.Lock)
}

// handleLockGrant installs a grant at the requester.
func (e *Engine) handleLockGrant(p *sim.Proc, node int, m *netsim.Message) {
	g := m.Payload.(lockMsg)
	if e.cfg.LockCaching {
		e.applyCachedGrant(p, node, g.Lock, g.Notices)
		return
	}
	e.applyGrant(node, g.Lock, g.Notices)
}

// applyGrant invalidates the pages named by the grant's write notices
// and releases the waiting acquirer.
func (e *Engine) applyGrant(node, id int, notices []dsm.WriteNotice) {
	ns := e.nodes[node]
	e.applyGrantInvalidations(node, notices)
	gate := ns.lockGate[id]
	delete(ns.lockGate, id)
	gate.Open()
}

// applyGrantInvalidations invalidates the pages a grant's write notices
// name (shared by the centralized and cached protocols).
func (e *Engine) applyGrantInvalidations(node int, notices []dsm.WriteNotice) {
	ns := e.nodes[node]
	for _, wn := range notices {
		if wn.Modifier == node {
			continue // our own writes do not invalidate our copy
		}
		pi := &ns.table.Pages[wn.Page]
		if pi.Home == node {
			continue // the home copy is authoritative: diffs merged here
		}
		if pi.State == dsm.ReadOnly {
			ns.table.Set(wn.Page, dsm.Invalid)
			ns.mem.SetAppPerm(wn.Page, dsm.PermNone)
			e.cnt(node).Invalidations++
			e.bumpInval(node, wn.Page)
			e.rec.Invalidated(node, wn.Page)
		}
		// Dirty pages keep local modifications (lock discipline makes a
		// dirty conflicting page an application-level race); in-flight
		// fetches (TRANSIENT/BLOCKED) complete with home data anyway.
	}
}

// ReleaseLock flushes the critical section's modifications to their
// homes (release consistency) and returns the lock to the manager with
// the write notices attached.
func (e *Engine) ReleaseLock(p *sim.Proc, node, id int) {
	if e.cfg.LockCaching {
		e.releaseCached(p, node, id)
	} else {
		e.releaseCentral(p, node, id)
	}
	if e.rec != nil {
		e.rec.LockReleased(p.Now(), node, id)
	}
}

// releaseNotices builds the write notices a release carries: every page
// the node flushed since its last barrier (relNotices), not just the
// pages of the flush the release itself triggered — a concurrent
// thread's release may already have flushed this thread's writes, and
// they must still be attributed to this lock.
func (e *Engine) releaseNotices(node int) []dsm.WriteNotice {
	ns := e.nodes[node]
	if len(ns.relNotices) == 0 {
		return nil
	}
	pages := make([]int, 0, len(ns.relNotices))
	for pg := range ns.relNotices {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	notices := make([]dsm.WriteNotice, len(pages))
	for i, pg := range pages {
		notices[i] = dsm.WriteNotice{Page: pg, Modifier: node}
	}
	return notices
}

// releaseCentral is ReleaseLock's body under the centralized protocol.
func (e *Engine) releaseCentral(p *sim.Proc, node, id int) {
	e.flush(p, node)
	notices := e.releaseNotices(node)
	e.shipMiniLog(p, node)
	mgr := e.lockManager(id)
	if mgr == node {
		e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
		e.lockRelease(p, node, id, notices)
		return
	}
	e.send(p, node, mgr, msgLockRelease, 16+8*len(notices), lockMsg{Lock: id, Notices: notices})
}

// handleLockRelease processes a release at the manager.
func (e *Engine) handleLockRelease(p *sim.Proc, node int, m *netsim.Message) {
	e.cpus[node].Compute(p, e.cfg.Cost.LockManage)
	rel := m.Payload.(lockMsg)
	e.lockRelease(p, m.From, rel.Lock, rel.Notices)
}

// lockRelease records the releaser's notices and hands the lock to the
// next queued requester, if any; p runs on the manager node.
func (e *Engine) lockRelease(p *sim.Proc, from, id int, notices []dsm.WriteNotice) {
	ls := e.lockState(id)
	if !ls.held || ls.holder != from {
		panic("hlrc: release of a lock not held by the releaser")
	}
	for _, wn := range notices {
		ls.notices[wn.Page] = wn.Modifier
	}
	if len(ls.queue) == 0 {
		ls.held = false
		return
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next
	e.grantLock(p, next, id, ls)
}
