package hlrc

import (
	"fmt"
	"strings"
)

// Protocol policy: the propagation choice (invalidate vs. update), the
// home election rule, and — under the adaptive policy — the per-page
// access-pattern classifier that drives both. The paper hardcodes one
// policy for every page; Cudennec's S-DSM design-space argument (arXiv
// 2009.01507) is that the protocol should instead follow the observed
// access pattern of each datum, which is what PolicyAdaptive does at
// every barrier.
//
// Every decision is taken at the master inside completeBarrier, from
// inputs that are a pure function of program order (the interval's
// modifier and reader sets), so adaptive runs stay bit-identical across
// lane counts, fault profiles, and crash schedules. The classifier's
// state folds into StateFingerprint (state.go) so two runs that agree
// on the fingerprint also agree on every protocol election they made.

// Policy names accepted by Config.Policy.
const (
	// PolicyLegacy is the empty string: no policy engine is built and
	// every code path is byte-identical to the pre-policy engine
	// (migratory home iff Config.HomeMigration, invalidate-only
	// propagation).
	PolicyLegacy = ""
	// PolicyInvalidate is the legacy behavior expressed as a fixed
	// strategy: invalidate propagation, single-modifier home migration
	// gated on Config.HomeMigration. It is provably bit-identical to
	// PolicyLegacy (TestFixedInvalidateMatchesLegacy).
	PolicyInvalidate = "invalidate"
	// PolicyUpdate is the fixed update protocol: every page invalidated
	// at a barrier is eagerly refreshed (re-fetched in parallel) by the
	// nodes that held a copy, before the application faults on it.
	PolicyUpdate = "update"
	// PolicyAdaptive classifies every page online (read-mostly /
	// migratory / producer-consumer / falsely-shared) and re-elects its
	// propagation and home per class at each barrier.
	PolicyAdaptive = "adaptive"
)

// PolicyNames returns the accepted policy names in canonical order. The
// empty string (legacy) is listed first.
func PolicyNames() []string {
	return []string{PolicyLegacy, PolicyInvalidate, PolicyUpdate, PolicyAdaptive}
}

// ValidPolicy reports whether name is an accepted Config.Policy value.
func ValidPolicy(name string) bool {
	for _, n := range PolicyNames() {
		if n == name {
			return true
		}
	}
	return false
}

// policyNamesForErr renders the non-empty policy names for error text.
func policyNamesForErr() string {
	names := PolicyNames()[1:]
	return strings.Join(names, ", ")
}

// PageClass is the classifier's verdict on one page's access pattern
// over recent barrier intervals.
type PageClass uint8

// Access-pattern classes (Cudennec's taxonomy, §3 of arXiv 2009.01507).
const (
	// ClassUnknown: not enough observations yet; decisions fall back to
	// the legacy rules.
	ClassUnknown PageClass = iota
	// ClassReadMostly: intervals with readers and no writers dominate.
	ClassReadMostly
	// ClassMigratory: one writer per interval and no concurrent readers;
	// ownership moves (or stays) with the single writer.
	ClassMigratory
	// ClassProducerConsumer: one writer per interval with other nodes
	// reading the page in the same or following intervals.
	ClassProducerConsumer
	// ClassFalselyShared: several writers in one interval — independent
	// data sharing a page; invalidation churn is inherent, updates would
	// only add traffic.
	ClassFalselyShared
)

func (c PageClass) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ClassReadMostly:
		return "read-mostly"
	case ClassMigratory:
		return "migratory"
	case ClassProducerConsumer:
		return "producer-consumer"
	case ClassFalselyShared:
		return "falsely-shared"
	}
	return fmt.Sprintf("PageClass(%d)", uint8(c))
}

// HomeStrategy elects a page's home at barrier time. mods is the sorted
// modifier set of the ending interval (never empty), cur the current
// home. migration mirrors Config.HomeMigration. The returned node may
// still be overridden by the caller when it is out of the membership.
type HomeStrategy interface {
	ElectHome(pg, cur int, mods []int, class PageClass, migration bool) int
}

// PropagateStrategy decides, per modified page, between invalidate
// propagation (stale copies drop their mapping and re-fault on demand)
// and update propagation (stale copies eagerly refresh in parallel right
// after barrier departure). mods is the ending interval's sorted
// modifier set for the page (never empty) and nnodes the cluster size;
// together they let a strategy distinguish partial from full
// write-sharing.
type PropagateStrategy interface {
	ShouldPush(pg int, class PageClass, mods []int, nnodes int) bool
}

// legacyHome is the paper's §5.2.2 rule: a single modifier becomes the
// new home when migration is on; multiple modifiers keep the current
// home.
type legacyHome struct{}

func (legacyHome) ElectHome(_ int, cur int, mods []int, _ PageClass, migration bool) int {
	if migration && len(mods) == 1 && mods[0] != cur {
		return mods[0]
	}
	return cur
}

// adaptiveHome follows the single writer for migratory and
// producer-consumer pages regardless of the migration flag (ownership
// provably moves with the writer, so diffs become in-place home writes),
// keeps falsely-shared and read-mostly homes pinned (moving them buys
// nothing and churns the directory), and falls back to the legacy rule
// while a page is still unclassified.
type adaptiveHome struct{}

func (adaptiveHome) ElectHome(pg, cur int, mods []int, class PageClass, migration bool) int {
	if len(mods) != 1 {
		return cur
	}
	switch class {
	case ClassMigratory, ClassProducerConsumer:
		return mods[0]
	case ClassFalselyShared, ClassReadMostly:
		return cur
	default:
		return legacyHome{}.ElectHome(pg, cur, mods, class, migration)
	}
}

// pushNever is invalidate-only propagation (the legacy protocol).
type pushNever struct{}

func (pushNever) ShouldPush(int, PageClass, []int, int) bool { return false }

// pushAlways is the fixed update protocol.
type pushAlways struct{}

func (pushAlways) ShouldPush(int, PageClass, []int, int) bool { return true }

// pushByClass is the adaptive propagation rule:
//
//   - migratory pages invalidate — the single mover has no concurrent
//     readers, so an update would ship data nobody looks at;
//   - producer-consumer and read-mostly pages push — their consumers
//     provably re-read after each write, so every push converts a
//     demand-miss stall into an overlapped refresh;
//   - falsely-shared pages push only while the writer set is at most
//     half the cluster. That is Munin's write-shared case: a few nodes
//     touching disjoint parts of a page that all sharers re-access, so
//     update propagation replaces their invalidate-then-refetch
//     ping-pong. Once every node writes the page each interval, update
//     traffic is at its n×(n−1) maximum and each pushed copy is
//     immediately re-dirtied by its receiver — the textbook regime
//     where update protocols degrade — so the rule falls back to
//     invalidate;
//   - unclassified pages invalidate, the conservative default.
type pushByClass struct{ cls *classifier }

func (s pushByClass) ShouldPush(pg int, class PageClass, mods []int, nnodes int) bool {
	switch class {
	case ClassReadMostly, ClassProducerConsumer:
		return true
	case ClassFalselyShared:
		return 2*len(mods) <= nnodes
	}
	return false
}

// policyEngine bundles one policy's strategies. A nil *policyEngine is
// the legacy path: every call site checks for nil first, exactly like
// the recov and rec fields, so an unset policy leaves the engine
// byte-identical to a build without this file.
type policyEngine struct {
	name string
	home HomeStrategy
	prop PropagateStrategy
	// cls is the per-page classifier; nil for the fixed policies. Its
	// presence also gates read-set observation (fault.go, barrier.go):
	// fixed policies need no reader information, so they add no bytes to
	// any protocol message.
	cls *classifier
}

// newPolicyEngine builds the policy engine for name, or nil for the
// legacy empty name. Unknown names panic: core.Config.Validate rejects
// them before an engine is ever constructed.
func newPolicyEngine(name string, npages int) *policyEngine {
	switch name {
	case PolicyLegacy:
		return nil
	case PolicyInvalidate:
		return &policyEngine{name: name, home: legacyHome{}, prop: pushNever{}}
	case PolicyUpdate:
		return &policyEngine{name: name, home: legacyHome{}, prop: pushAlways{}}
	case PolicyAdaptive:
		cls := newClassifier(npages)
		return &policyEngine{name: name, home: adaptiveHome{}, prop: pushByClass{cls}, cls: cls}
	}
	panic(fmt.Sprintf("hlrc: unknown protocol policy %q (valid: %s)", name, policyNamesForErr()))
}

// observesReads reports whether the policy needs per-interval read
// sets piggybacked on barrier arrivals (classifier input).
func (pe *policyEngine) observesReads() bool { return pe != nil && pe.cls != nil }

// classOf returns the page's current class (ClassUnknown for fixed
// policies, which carry no classifier).
func (pe *policyEngine) classOf(pg int) PageClass {
	if pe.cls == nil {
		return ClassUnknown
	}
	return pe.cls.classOf(pg)
}
