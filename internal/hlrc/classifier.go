package hlrc

import (
	"sort"

	"parade/internal/sim"
)

// classifier is the adaptive policy's per-page online access-pattern
// observer. It lives entirely at the master node and consumes exactly
// the information completeBarrier already has — the interval's modifier
// sets — plus the interval read sets that arrivals piggyback when the
// adaptive policy is active. All inputs are pure functions of program
// order (sets, folded commutatively, of which nodes touched which pages
// between two barriers), so the classifier's evolution — and therefore
// every election it drives — is bit-identical across lane counts, fault
// profiles, and crash schedules. The only timing-dependent field,
// lastChangeTime, feeds the reclass_latency histogram and is excluded
// from the fingerprint fold.
type classifier struct {
	pages []pageObs
	// readers accumulates the current interval's read sets as arrivals
	// come in (page -> set of reading nodes). Folding is commutative, so
	// arrival order — which differs across lane counts — cannot matter.
	readers map[int]map[int]bool
	// pending carries reader evidence across read-only intervals to the
	// next modified interval. Producer-consumer sharing is inherently
	// cross-interval — write at barrier k, read during interval k+1 — and
	// many kernels ping-pong arrays, so a page alternates between "write
	// interval" and "read interval". Classifying each interval alone
	// would alternate the candidate (migratory, read-mostly, migratory,
	// ...) and hysteresis would never settle; instead, reads of a
	// previously-modified page bank here and the page's NEXT modified
	// interval classifies against the union.
	pending map[int]map[int]bool
}

// pageObs is the classifier's state for one page. class is the acting
// verdict; cand/streak implement two-interval hysteresis: a class change
// is applied only after the same candidate has been observed in two
// consecutive intervals that touched the page, so a single anomalous
// interval (a one-off scatter read of a migratory page, say) cannot flip
// the protocol back and forth.
type pageObs struct {
	class  PageClass
	cand   PageClass
	streak uint8
	// everMod records that some interval modified the page: from then on
	// read-only intervals bank evidence (classifier.pending) instead of
	// producing a read-mostly candidate, so write/read alternation
	// converges instead of oscillating.
	everMod bool
	// lastChangeEpoch is the barrier epoch of the last applied class
	// change (fingerprinted; epochs are program-order, times are not).
	lastChangeEpoch int
	// lastChangeTime is the virtual time of the last applied change,
	// kept only to feed the reclass_latency histogram. Never
	// fingerprinted: virtual time legitimately differs under faults.
	lastChangeTime sim.Time
	changed        bool // lastChange* fields are valid
}

// reclassEvent reports one applied class change to the caller, which
// owns counter bumps and histogram observation.
type reclassEvent struct {
	Page    int
	Class   PageClass
	SinceNs int64 // virtual ns since the page's previous change
	First   bool  // first-ever change: SinceNs is not meaningful
}

func newClassifier(npages int) *classifier {
	return &classifier{
		pages:   make([]pageObs, npages),
		readers: map[int]map[int]bool{},
		pending: map[int]map[int]bool{},
	}
}

// noteReads folds one node's interval read set into the current
// interval's observations. pages is sorted, but folding into sets makes
// order irrelevant anyway.
func (c *classifier) noteReads(node int, pages []int) {
	for _, pg := range pages {
		set := c.readers[pg]
		if set == nil {
			set = map[int]bool{}
			c.readers[pg] = set
		}
		set[node] = true
	}
}

// classOf returns the page's acting class.
func (c *classifier) classOf(pg int) PageClass { return c.pages[pg].class }

// observe closes one barrier interval: every page touched in the
// interval (modified, read, or both) gets one observation, hysteresis
// advances, and the applied class changes are returned in ascending
// page order. mods is the master barrier's modifier map for the
// interval; the read sets are the ones noteReads accumulated since the
// previous observe. Iteration is over the sorted union of both maps, so
// the sequence of hash-map insertions (which differs run to run) never
// shows through.
func (c *classifier) observe(epoch int, now sim.Time, mods map[int]map[int]bool) []reclassEvent {
	touched := make([]int, 0, len(mods)+len(c.readers))
	for pg := range mods {
		touched = append(touched, pg)
	}
	for pg := range c.readers {
		if _, dup := mods[pg]; !dup {
			touched = append(touched, pg)
		}
	}
	sort.Ints(touched)

	var events []reclassEvent
	for _, pg := range touched {
		modset := mods[pg]
		po := &c.pages[pg]
		if len(modset) == 0 && po.everMod {
			// A read-only interval of a previously-modified page: bank the
			// evidence for the page's next modified interval instead of
			// emitting a candidate that would fight the write intervals'.
			bank := c.pending[pg]
			if bank == nil {
				bank = map[int]bool{}
				c.pending[pg] = bank
			}
			for n := range c.readers[pg] {
				bank[n] = true
			}
			continue
		}
		var cand PageClass
		if len(modset) == 0 {
			cand = ClassReadMostly // never modified: a genuinely read-only page
		} else {
			po.everMod = true
			readers := c.readers[pg]
			if bank := c.pending[pg]; bank != nil {
				for n := range readers {
					bank[n] = true
				}
				readers = bank
				delete(c.pending, pg)
			}
			cand = intervalClass(modset, readers)
		}
		if cand == po.cand {
			if po.streak < 255 {
				po.streak++
			}
		} else {
			po.cand = cand
			po.streak = 1
		}
		// Two-interval hysteresis; the very first classification of an
		// unknown page applies immediately (there is no established
		// protocol worth protecting yet).
		apply := po.streak >= 2 || po.class == ClassUnknown
		if apply && cand != po.class {
			po.class = cand
			ev := reclassEvent{Page: pg, Class: cand, First: !po.changed}
			if po.changed {
				ev.SinceNs = int64(now - po.lastChangeTime)
			}
			po.lastChangeEpoch = epoch
			po.lastChangeTime = now
			po.changed = true
			events = append(events, ev)
		}
	}
	// The interval is closed: the next one starts with empty read sets.
	c.readers = map[int]map[int]bool{}
	return events
}

// intervalClass applies the classification rules for one modified
// interval of a page (Cudennec's taxonomy). readers is the union of the
// interval's own read set and the evidence banked over the read-only
// intervals since the page's previous modified interval:
//
//	>= 2 modifiers                      -> falsely shared
//	1 modifier, other nodes reading     -> producer-consumer
//	1 modifier, no other readers        -> migratory
//	0 modifiers (never-modified page)   -> read-mostly
//
// An eager refresh counts as a read (refreshPages records it), so a
// page being push-updated keeps its consumer evidence even though the
// pushes eliminate its demand faults — without that, a producer-consumer
// page would decay to migratory, stop being pushed, fault again, and
// oscillate forever.
func intervalClass(mods map[int]bool, readers map[int]bool) PageClass {
	switch {
	case len(mods) >= 2:
		return ClassFalselyShared
	case len(mods) == 1:
		var w int
		for n := range mods {
			w = n
		}
		for r := range readers {
			if r != w {
				return ClassProducerConsumer
			}
		}
		return ClassMigratory
	default:
		return ClassReadMostly
	}
}

// fold mixes the classifier's program-order state into the engine
// fingerprint: per-page class, hysteresis candidate and streak, and the
// epoch of the last applied change. lastChangeTime is deliberately
// excluded (virtual time differs between a faulted run and its
// fault-free baseline; the classes and the epochs they changed at must
// not). Pages still in their zero state are skipped, preceded by an
// index, so the fold is sparse but unambiguous.
func (c *classifier) fold(writeInt func(int)) {
	for pg := range c.pages {
		po := &c.pages[pg]
		if po.class == ClassUnknown && po.cand == ClassUnknown &&
			po.streak == 0 && po.lastChangeEpoch == 0 && !po.everMod {
			continue
		}
		flags := 0
		if po.everMod {
			flags = 1
		}
		writeInt(pg)
		writeInt(int(po.class)<<24 | int(po.cand)<<16 | int(po.streak)<<8 | flags)
		writeInt(po.lastChangeEpoch)
	}
	writeInt(-1)
	// The un-consumed reader evidence: the current interval's read sets
	// (empty at quiescence) and the banked cross-interval evidence (often
	// non-empty at run end — pages read after their last write). Both are
	// program-order inputs, so both fold.
	foldReaderMap(writeInt, c.readers)
	foldReaderMap(writeInt, c.pending)
}

func foldReaderMap(writeInt func(int), m map[int]map[int]bool) {
	pages := make([]int, 0, len(m))
	for pg := range m {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	writeInt(len(pages))
	for _, pg := range pages {
		set := m[pg]
		nodes := make([]int, 0, len(set))
		for n := range set {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		writeInt(pg)
		writeInt(len(nodes))
		for _, n := range nodes {
			writeInt(n)
		}
	}
}
