// Crash-stop node failures and the recovery protocol above the reliable
// fabric. Three mechanisms cooperate:
//
//  1. Barrier-aligned checkpointing. Every node (except the master,
//     which this model treats as immortal — it is the barrier
//     coordinator and lock manager) replicates its recovery state to a
//     deterministic buddy, node (id+1) mod N: incremental copies of its
//     home pages as they change (piggybacked on diff application and
//     home migration), its lock-token state as it changes, and at every
//     flush a checkpoint log. The barrier-time log is a full snapshot —
//     page-table states and homes, the interval's write notices, and
//     copies of the home pages the node itself dirtied — and is
//     acknowledged by the buddy before the node sends its barrier
//     arrival, so a node that crashed AT barrier k provably has a
//     durable, bit-exact image of its barrier-k state.
//
//  2. Detection. A crash plan arms the reliability sublayer with a
//     tight retry budget; peers whose frames to a dead node exhaust
//     that budget surface a peer-down signal. For barriers with no
//     traffic toward the dead node, the master arms a probe timer when
//     a barrier stalls and pings the missing members; the ping itself
//     then exhausts its retries against a crashed peer. Both paths feed
//     the same recovery daemon.
//
//  3. Recovery. For a restart event the daemon waits out the outage,
//     restores the node from its buddy's snapshot (page table, home
//     frames, replica contents, lock tokens), synthesizes the barrier
//     arrival the crash suppressed, and re-drives every stuck
//     conversation (unacked diff bundles, stalled fetches, pending
//     revokes, the protected peer's own checkpoint log). Because the
//     crash point is the quiescent instant after the flush and before
//     the arrival, the recovered execution is bit-identical to a
//     fault-free one: same memory image, same protocol decisions, only
//     the virtual clock differs. For a shrink event (no restart) the
//     membership contracts instead: orphaned pages are re-homed
//     (current-home-first, then the smallest alive id), the dead
//     member's logged write notices are merged into the barrier, its
//     lock tokens are reclaimed, and the barrier completes over the
//     surviving members.
package hlrc

import (
	"fmt"
	"sort"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// CrashEvent schedules one crash-stop failure on the virtual clock: the
// node's Barrier-th call to Engine.Barrier (1-based) crashes it after
// its flush and checkpoint log are durable but before its barrier
// arrival is sent.
type CrashEvent struct {
	Node    int  // node to crash; never the master (node 0)
	Barrier int  // 1-based count of the node's own Engine.Barrier calls
	Restart bool // bring the node back after RestartDelay (else shrink)
}

// CrashPlan is the deterministic crash schedule of one run. A nil or
// empty plan arms nothing: the engine byte-for-byte matches a build
// without the recovery plane.
type CrashPlan struct {
	Events        []CrashEvent
	DetectTimeout sim.Duration // master's stalled-barrier probe period
	RestartDelay  sim.Duration // outage length before a restart
}

// Active reports whether the plan schedules any crash.
func (cp *CrashPlan) Active() bool { return cp != nil && len(cp.Events) > 0 }

func (cp CrashPlan) withDefaults() CrashPlan {
	if cp.DetectTimeout == 0 {
		cp.DetectTimeout = 500 * sim.Microsecond
	}
	if cp.RestartDelay == 0 {
		cp.RestartDelay = sim.Millisecond
	}
	return cp
}

// Validate checks the plan against the protocol's restrictions: the
// master cannot crash (it is the barrier coordinator and, under a crash
// plan, the pinned lock manager), and at most one distinct node may
// crash per run — a down node takes its protected peer's replicas with
// it, so two distinct failures could lose checkpoint state.
func (cp *CrashPlan) Validate(nodes int) error {
	if !cp.Active() {
		return nil
	}
	if nodes < 2 {
		return fmt.Errorf("crash plan needs at least 2 nodes, have %d", nodes)
	}
	crashed := -1
	for i, ev := range cp.Events {
		if ev.Node <= 0 || ev.Node >= nodes {
			return fmt.Errorf("crash event %d: node %d out of range (1..%d; the master cannot crash)", i, ev.Node, nodes-1)
		}
		if ev.Barrier < 1 {
			return fmt.Errorf("crash event %d: barrier %d (must be >= 1)", i, ev.Barrier)
		}
		if crashed >= 0 && ev.Node != crashed {
			return fmt.Errorf("crash event %d: only one distinct node may crash per run (already have node %d)", i, crashed)
		}
		crashed = ev.Node
	}
	return nil
}

// Recovery job kinds for the daemon queue.
const (
	jobPing = iota
	jobRecover
)

type recoveryJob struct {
	kind  int
	node  int      // jobRecover: the node reported down
	epoch int      // jobPing: the epoch the probe was armed for
	at    sim.Time // jobRecover: detection instant, for the latency histogram
}

// ckptTableEnt is one page's directory entry in a barrier snapshot.
// Table permissions are static after NewTable (runtime permissions live
// in the memory image), so state and home fully describe the entry.
type ckptTableEnt struct {
	State dsm.State
	Home  int
}

// ckptPageCopy carries one page's full contents.
type ckptPageCopy struct {
	Page int
	Data []byte
}

// ckptFlush is a flush-time checkpoint log, node -> its buddy. Barrier
// logs carry the full snapshot and are acknowledged; the lighter logs of
// lock-release and fork flushes carry only the dirty home-page copies.
type ckptFlush struct {
	Epoch   int
	Barrier bool
	Notices []dsm.WriteNotice
	Reads   []int          // interval read set (adaptive policy; barrier logs only)
	Table   []ckptTableEnt // barrier logs only
	Pages   []ckptPageCopy // copies of home pages this flush dirtied
}

// ckptPage is an incremental home-page mirror update, home -> buddy.
type ckptPage struct {
	Page int
	Data []byte
}

// ckptTok replicates one lock token's state, node -> its buddy.
type ckptTok struct {
	Lock    int
	Cached  bool
	Notices []dsm.WriteNotice
}

// recoverState restores a restarted node from its buddy's replicas.
type recoverState struct {
	Epoch   int
	Notices []dsm.WriteNotice
	Reads   []int // interval read set for the synthesized arrival
	Table   []ckptTableEnt
	Pages   []ckptPageCopy // the node's home pages, from the mirror
	Tokens  []ckptTok
}

// recoverInstall hands a dead member's orphaned home pages to their new
// home during a shrink.
type recoverInstall struct{ Pages []ckptPageCopy }

// ckptLog is the buddy-held barrier log of one protected node.
type ckptLog struct {
	valid   bool
	epoch   int
	notices []dsm.WriteNotice
	reads   []int
	table   []ckptTableEnt
}

// tokenReplica is the buddy-held copy of one lock token's state.
type tokenReplica struct {
	cached  bool
	notices []dsm.WriteNotice
}

// recovery is the engine's crash/recovery plane, allocated only when
// the configuration carries an active crash plan.
type recovery struct {
	plan       CrashPlan
	barrierSeq []int  // per node: Engine.Barrier calls so far
	fired      []bool // per plan event: already injected
	firedEvent []int  // per node: plan event index of its crash, -1 none
	dead       []bool
	wasDead    []bool // recovered at least once (stale-signal filter)
	removed    []bool // shrunk out of the membership, permanently
	alive      int

	// Master-side stalled-barrier detection.
	arrivedFrom []bool
	detectArmed bool
	detectGen   int

	jobs        *sim.Queue[recoveryJob]
	restoreGate *sim.Gate // recovery daemon waits for the restore/install

	// State replicated for node W, notionally held at buddy(W) and
	// wiped when buddy(W) crashes.
	mirrors []map[int][]byte // W -> page -> latest home-frame copy
	logs    []ckptLog        // W -> last barrier checkpoint log
	tokens  []map[int]tokenReplica
}

// buddy returns node's checkpoint peer, skipping members a shrink
// removed.
func (e *Engine) buddy(node int) int {
	b := (node + 1) % e.cfg.Nodes
	if e.recov != nil {
		for e.recov.removed[b] {
			b = (b + 1) % e.cfg.Nodes
		}
	}
	return b
}

// gone reports whether node is currently out of the membership.
func (e *Engine) gone(node int) bool {
	return e.recov != nil && (e.recov.dead[node] || e.recov.removed[node])
}

// Removed reports whether a shrink permanently removed node. Programs
// driving the engine directly must check it after every Barrier: a
// removed node's representative is released with its state wiped and
// must stop touching shared memory.
func (e *Engine) Removed(node int) bool {
	return e.recov != nil && e.recov.removed[node]
}

// aliveThreshold is the number of arrivals that completes a barrier.
func (e *Engine) aliveThreshold() int {
	if e.recov != nil {
		return e.recov.alive
	}
	return e.cfg.Nodes
}

// armRecovery validates the plan and brings up the recovery plane.
// Called from New when the configuration carries an active plan.
func (e *Engine) armRecovery(s *sim.Simulator, net *netsim.Network) {
	plan := e.cfg.Crash.withDefaults()
	if err := plan.Validate(e.cfg.Nodes); err != nil {
		panic("hlrc: " + err.Error())
	}
	if net.FaultPlane() == nil {
		panic("hlrc: a crash plan needs a fault plane (the reliability sublayer is the crash detector); enable ProfileCrashOnly or another profile first")
	}
	r := &recovery{
		plan:        plan,
		barrierSeq:  make([]int, e.cfg.Nodes),
		fired:       make([]bool, len(plan.Events)),
		firedEvent:  make([]int, e.cfg.Nodes),
		dead:        make([]bool, e.cfg.Nodes),
		wasDead:     make([]bool, e.cfg.Nodes),
		removed:     make([]bool, e.cfg.Nodes),
		arrivedFrom: make([]bool, e.cfg.Nodes),
		alive:       e.cfg.Nodes,
		jobs:        sim.NewQueue[recoveryJob](s),
		mirrors:     make([]map[int][]byte, e.cfg.Nodes),
		logs:        make([]ckptLog, e.cfg.Nodes),
		tokens:      make([]map[int]tokenReplica, e.cfg.Nodes),
	}
	for i := range r.mirrors {
		r.mirrors[i] = map[int][]byte{}
		r.tokens[i] = map[int]tokenReplica{}
		r.firedEvent[i] = -1
	}
	e.recov = r
	net.SetPeerDownHandler(func(observer, dead int) {
		r.jobs.Push(recoveryJob{kind: jobRecover, node: dead, at: s.Now()})
	})
	s.SpawnDaemon("hlrc-recovery", e.recoveryLoop)
}

// ---------------------------------------------------------------------
// Checkpointing (the steady-state cost of an armed plan).

// shipCkpt sends one checkpoint message to node's buddy and tallies it.
func (e *Engine) shipCkpt(p *sim.Proc, node, typ, bytes int, payload any) {
	e.cnt(0).CkptMsgs++
	e.cnt(0).CkptBytes += int64(bytes)
	e.rec.CkptShipped(node, bytes)
	e.send(p, node, e.buddy(node), typ, bytes, payload)
}

// collectSelfCopies drains the flush's dirty-home-page scratch into full
// page copies for a checkpoint log.
func (e *Engine) collectSelfCopies(ns *nodeState) []ckptPageCopy {
	if len(ns.flushSelf) == 0 {
		return nil
	}
	out := make([]ckptPageCopy, 0, len(ns.flushSelf))
	for _, pg := range ns.flushSelf {
		buf := make([]byte, dsm.PageSize)
		if f := ns.mem.FrameIfPresent(pg); f != nil {
			copy(buf, f)
		}
		out = append(out, ckptPageCopy{Page: pg, Data: buf})
	}
	ns.flushSelf = ns.flushSelf[:0]
	return out
}

func ckptFlushBytes(ck *ckptFlush) int {
	return 24 + 8*len(ck.Notices) + 8*len(ck.Reads) + 8*len(ck.Table) + (dsm.PageSize+16)*len(ck.Pages)
}

// shipMiniLog forwards the home pages a non-barrier flush (lock release,
// fork) dirtied. Unacknowledged: the buddy link is FIFO, so the next
// acknowledged barrier log also fences these.
func (e *Engine) shipMiniLog(p *sim.Proc, node int) {
	if e.recov == nil || node == 0 {
		return
	}
	ns := e.nodes[node]
	if len(ns.flushSelf) == 0 {
		return
	}
	ck := ckptFlush{Epoch: e.epoch, Pages: e.collectSelfCopies(ns)}
	e.shipCkpt(p, node, msgCkptFlush, ckptFlushBytes(&ck), ck)
}

// logBarrier ships the barrier-time checkpoint log and blocks until the
// buddy acknowledges it, so the subsequent barrier arrival is only ever
// sent with a durable snapshot behind it.
func (e *Engine) logBarrier(p *sim.Proc, node int, notices []dsm.WriteNotice, reads []int) {
	if e.recov == nil || node == 0 {
		return
	}
	ns := e.nodes[node]
	snap := make([]ckptTableEnt, len(ns.table.Pages))
	for pg := range ns.table.Pages {
		pi := &ns.table.Pages[pg]
		snap[pg] = ckptTableEnt{State: pi.State, Home: pi.Home}
	}
	ck := &ckptFlush{
		Epoch: e.epoch, Barrier: true,
		Notices: notices, Reads: reads, Table: snap,
		Pages: e.collectSelfCopies(ns),
	}
	ns.ckptPending = ck
	gate := sim.NewGate(e.sim)
	ns.ckptGate = gate
	e.shipCkpt(p, node, msgCkptFlush, ckptFlushBytes(ck), *ck)
	gate.Wait(p)
}

// forwardHomePage mirrors one home page's current contents to the buddy
// after it changed under protocol control (diff application, migration).
func (e *Engine) forwardHomePage(p *sim.Proc, node, pg int) {
	if e.recov == nil || node == 0 {
		return
	}
	buf := make([]byte, dsm.PageSize)
	if f := e.nodes[node].mem.FrameIfPresent(pg); f != nil {
		copy(buf, f)
	}
	e.shipCkpt(p, node, msgCkptPage, dsm.PageSize+16, ckptPage{Page: pg, Data: buf})
}

// forwardToken replicates one lock token's current state to the buddy.
func (e *Engine) forwardToken(p *sim.Proc, node, id int, nl *nodeLock) {
	if e.recov == nil || node == 0 {
		return
	}
	e.shipCkpt(p, node, msgCkptTok, 16+8*len(nl.notices),
		ckptTok{Lock: id, Cached: nl.cached, Notices: nl.notices})
}

func (e *Engine) handleCkptFlush(p *sim.Proc, node int, m *netsim.Message) {
	ck := m.Payload.(ckptFlush)
	r := e.recov
	w := m.From
	for _, pc := range ck.Pages {
		r.mirrors[w][pc.Page] = pc.Data
	}
	if ck.Barrier {
		r.logs[w] = ckptLog{valid: true, epoch: ck.Epoch, notices: ck.Notices, reads: ck.Reads, table: ck.Table}
		e.send(p, node, w, msgCkptAck, 8, nil)
	}
}

func (e *Engine) handleCkptAck(_ *sim.Proc, node int, _ *netsim.Message) {
	ns := e.nodes[node]
	if ns.ckptGate == nil {
		panic("hlrc: checkpoint ack without a pending barrier log")
	}
	gate := ns.ckptGate
	ns.ckptGate = nil
	ns.ckptPending = nil
	gate.Open()
}

func (e *Engine) handleCkptPage(m *netsim.Message) {
	pc := m.Payload.(ckptPage)
	e.recov.mirrors[m.From][pc.Page] = pc.Data
}

func (e *Engine) handleCkptTok(m *netsim.Message) {
	tk := m.Payload.(ckptTok)
	// Deep-copy the notices: the sender's slice is merged in place on
	// later releases (mergeNotices), while the replica must freeze the
	// state at replication time.
	e.recov.tokens[m.From][tk.Lock] = tokenReplica{
		cached:  tk.Cached,
		notices: append([]dsm.WriteNotice(nil), tk.Notices...),
	}
}

// ---------------------------------------------------------------------
// Crash injection.

// crashEventDue returns the index of the plan event that fires at this
// Barrier call, or -1.
func (e *Engine) crashEventDue(node int) int {
	r := e.recov
	for i := range r.plan.Events {
		ev := &r.plan.Events[i]
		if !r.fired[i] && ev.Node == node && ev.Barrier == r.barrierSeq[node] {
			return i
		}
	}
	return -1
}

// crashNow kills node at its quiescent barrier point: the flush is
// done, the checkpoint log is durable, and the barrier arrival has NOT
// been sent. The fabric drops the node's in-flight traffic, its
// volatile protocol state is wiped, and the representative parks on a
// gate that recovery opens — after a restart via the normal barrier
// departure, after a shrink explicitly (with the node removed).
func (e *Engine) crashNow(p *sim.Proc, node, evIdx int) {
	r := e.recov
	r.fired[evIdx] = true
	r.firedEvent[node] = evIdx
	r.dead[node] = true

	drained := e.net.CrashNode(node)
	for _, m := range drained {
		// Every message class that can be in a crashing node's inbox is
		// either recovered by a resend (diffs, fetches, revokes, the
		// peer's checkpoint log) or harmless (probes, mirror updates).
		switch m.Type {
		case msgDiff, msgPageReq, msgLockRevoke, msgPing,
			msgCkptFlush, msgCkptPage, msgCkptTok:
		default:
			panic(fmt.Sprintf("hlrc: crash drained unrecoverable message type %d", m.Type))
		}
	}

	// The crashing node was the buddy of w: its replicas die with it.
	if w := (node - 1 + e.cfg.Nodes) % e.cfg.Nodes; w != 0 {
		r.mirrors[w] = map[int][]byte{}
		r.logs[w] = ckptLog{}
		r.tokens[w] = map[int]tokenReplica{}
	}

	// Wipe the volatile per-node state, exactly as a reboot would.
	npages := len(e.nodes[node].table.Pages)
	gate := sim.NewGate(e.sim)
	fresh := &nodeState{
		table:       dsm.NewTable(node, npages),
		mem:         dsm.NewMemory(npages, e.cfg.Strategy),
		dirty:       map[int]struct{}{},
		fetch:       map[int]*sim.Gate{},
		lockGate:    map[int]*sim.Gate{},
		lockCache:   map[int]*nodeLock{},
		flushBundle: map[int][]*dsm.Diff{},
		relNotices:  map[int]struct{}{},
		readObs:     map[int]struct{}{},
		barrierGate: gate,
	}
	e.nodes[node] = fresh
	gate.Wait(p)
}

// ---------------------------------------------------------------------
// Detection.

// noteArrival tracks per-node barrier arrivals and arms the master's
// stalled-barrier probe while the barrier is incomplete.
func (e *Engine) noteArrival(from int) {
	r := e.recov
	r.arrivedFrom[from] = true
	if r.detectArmed {
		return
	}
	r.detectArmed = true
	r.detectGen++
	gen, epoch := r.detectGen, e.epoch
	e.sim.At(r.plan.DetectTimeout, func() { e.detectTick(gen, epoch) })
}

// detectTick fires on the virtual clock while a barrier is stalled; it
// queues a probe round and re-arms itself. The chain dies when the
// barrier completes (detectArmed cleared / generation bumped) or the
// epoch moves on.
func (e *Engine) detectTick(gen, epoch int) {
	r := e.recov
	if !r.detectArmed || gen != r.detectGen || epoch != e.epoch {
		return
	}
	r.jobs.Push(recoveryJob{kind: jobPing, epoch: epoch})
	e.sim.At(r.plan.DetectTimeout, func() { e.detectTick(gen, epoch) })
}

// pingMissing probes every member that has not arrived at the stalled
// barrier. A probe to a crashed node exhausts its retry budget and
// surfaces the peer-down signal that starts recovery; probes to live
// stragglers are no-ops.
func (e *Engine) pingMissing(p *sim.Proc, epoch int) {
	if epoch != e.epoch {
		return
	}
	r := e.recov
	for n := 1; n < e.cfg.Nodes; n++ {
		if !r.arrivedFrom[n] && !r.removed[n] {
			e.send(p, 0, n, msgPing, 8, nil)
		}
	}
}

// ---------------------------------------------------------------------
// The recovery daemon.

func (e *Engine) recoveryLoop(p *sim.Proc) {
	for {
		j := e.recov.jobs.Pop(p)
		switch j.kind {
		case jobPing:
			e.pingMissing(p, j.epoch)
		case jobRecover:
			e.recoverNode(p, j.node, j.at)
		}
	}
}

// sleepFor blocks p for a virtual duration.
func (e *Engine) sleepFor(p *sim.Proc, d sim.Duration) {
	g := sim.NewGate(e.sim)
	e.sim.At(d, g.Open)
	g.Wait(p)
}

// recoverNode runs one recovery, serialized on the daemon.
func (e *Engine) recoverNode(p *sim.Proc, node int, t0 sim.Time) {
	r := e.recov
	if r.removed[node] || (!r.dead[node] && r.wasDead[node]) {
		return // late duplicate of an already-handled signal
	}
	if !r.dead[node] {
		panic("hlrc: peer-down signal for a live node")
	}
	ev := r.plan.Events[r.firedEvent[node]]
	if ev.Restart {
		e.recoverRestart(p, node)
	} else {
		e.recoverShrink(p, node)
	}
	r.wasDead[node] = true
	e.cnt(0).Recoveries++
	e.rec.RecoveryDone(t0, e.sim.Now(), 0)
}

// recoverRestart brings node back after the outage and replays the
// buddy snapshot into it, then re-drives every conversation the crash
// left stuck.
func (e *Engine) recoverRestart(p *sim.Proc, node int) {
	r := e.recov
	e.sleepFor(p, r.plan.RestartDelay)
	e.net.RestartNode(node)
	r.dead[node] = false

	log := &r.logs[node]
	if !log.valid || log.epoch != e.epoch {
		panic("hlrc: restart without a matching barrier checkpoint log")
	}
	// The node's home frames, from the buddy mirror. Every home page of
	// a non-master node arrived by migration and was mirrored then, so
	// the mirror must cover the snapshot's home set.
	var pages []ckptPageCopy
	for pg := range log.table {
		if log.table[pg].Home != node {
			continue
		}
		data := r.mirrors[node][pg]
		if data == nil {
			panic(fmt.Sprintf("hlrc: no mirror for page %d homed at crashed node %d", pg, node))
		}
		pages = append(pages, ckptPageCopy{Page: pg, Data: data})
	}
	toks := make([]ckptTok, 0, len(r.tokens[node]))
	ids := make([]int, 0, len(r.tokens[node]))
	for id := range r.tokens[node] {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := r.tokens[node][id]
		toks = append(toks, ckptTok{Lock: id, Cached: t.cached, Notices: t.notices})
	}
	rs := recoverState{Epoch: log.epoch, Notices: log.notices, Reads: log.reads, Table: log.table, Pages: pages, Tokens: toks}
	bytes := 24 + 8*len(rs.Notices) + 8*len(rs.Reads) + 8*len(rs.Table) + (dsm.PageSize+16)*len(rs.Pages) + 16*len(rs.Tokens)
	gate := sim.NewGate(e.sim)
	r.restoreGate = gate
	e.send(p, e.buddy(node), node, msgRecoverState, bytes, rs)
	gate.Wait(p)
	r.restoreGate = nil

	e.resendStuck(p, node)
}

// resendStuck re-drives the conversations that were in flight toward
// the crashed node: the fabric dropped them, so the recovery daemon
// reissues each through the normal protocol path (idempotent at a node
// restored to its pre-interval snapshot).
func (e *Engine) resendStuck(p *sim.Proc, node int) {
	r := e.recov
	// Diff bundles whose ack never came: the flusher still holds them.
	for y := 0; y < e.cfg.Nodes; y++ {
		if y == node || r.dead[y] || r.removed[y] {
			continue
		}
		ns := e.nodes[y]
		if !ns.flushAwait[node] {
			continue
		}
		diffs := ns.flushBundle[node]
		bytes := 0
		for _, d := range diffs {
			bytes += d.WireBytes()
		}
		e.send(p, y, node, msgDiff, bytes, diffMsg{Diffs: diffs})
		e.cnt(0).ResentBundles++
	}
	// Page fetches stalled against the restarted home.
	for y := 0; y < e.cfg.Nodes; y++ {
		if y == node || r.dead[y] || r.removed[y] {
			continue
		}
		ns := e.nodes[y]
		pgs := make([]int, 0, len(ns.fetch))
		for pg := range ns.fetch {
			if ns.table.Pages[pg].Home == node {
				pgs = append(pgs, pg)
			}
		}
		sort.Ints(pgs)
		for _, pg := range pgs {
			e.send(p, y, node, msgPageReq, 16, pageReq{Page: pg})
			e.cnt(0).Refetches++
		}
	}
	// The protected peer's own barrier log, if its ack is outstanding
	// (the crashed node is that peer's buddy).
	if w := (node - 1 + e.cfg.Nodes) % e.cfg.Nodes; w != 0 && !r.dead[w] && !r.removed[w] {
		if ck := e.nodes[w].ckptPending; ck != nil {
			e.shipCkpt(p, w, msgCkptFlush, ckptFlushBytes(ck), *ck)
		}
	}
	// Token revokes the crash swallowed: queued requesters mean a
	// recall was (or should be) outstanding against the holder.
	if e.cfg.LockCaching {
		ids := make([]int, 0, len(e.locks[0]))
		for id := range e.locks[0] {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			ls := e.locks[0][id]
			if ls.held && ls.holder == node && len(ls.queue) > 0 {
				e.sendRevoke(p, id, node)
				e.cnt(0).ReclaimedLocks++
			}
		}
	}
}

// handleRecoverState rebuilds the restarted node from the buddy
// snapshot, on the node's own communication thread.
func (e *Engine) handleRecoverState(p *sim.Proc, node int, m *netsim.Message) {
	rs := m.Payload.(recoverState)
	if rs.Epoch != e.epoch {
		panic("hlrc: restore snapshot from a different epoch")
	}
	ns := e.nodes[node]
	e.cpus[node].Compute(p, e.cfg.Cost.PageCopy*sim.Duration(len(rs.Pages)+1))
	// Directory first. Assignment (not Table.Set) because a snapshot
	// state is not a legal runtime transition from the reboot state;
	// table permissions are static and need no restore.
	for pg := range rs.Table {
		ent := rs.Table[pg]
		if ent.State != dsm.ReadOnly && ent.State != dsm.Invalid {
			panic(fmt.Sprintf("hlrc: snapshot page %d in non-quiescent state %v", pg, ent.State))
		}
		pi := &ns.table.Pages[pg]
		pi.State = ent.State
		pi.Home = ent.Home
	}
	// Home frames from the mirror.
	for _, pc := range rs.Pages {
		ns.mem.CopyIn(pc.Page, pc.Data)
	}
	// Replica contents and application permissions. A ReadOnly replica's
	// bytes are re-read from the page's current home frame: pages nobody
	// modified in the interval are unchanged there, and pages another
	// node modified would have been invalidated by the imminent barrier
	// departure anyway, so the copy is observationally identical to the
	// fault-free replica.
	for pg := range rs.Table {
		ent := rs.Table[pg]
		switch {
		case ent.Home == node:
			ns.mem.SetAppPerm(pg, dsm.PermRead)
		case ent.State == dsm.ReadOnly:
			ns.mem.CopyIn(pg, e.nodes[ent.Home].mem.FrameIfPresent(pg))
			ns.mem.SetAppPerm(pg, dsm.PermRead)
		default:
			ns.mem.SetAppPerm(pg, dsm.PermNone)
		}
	}
	// Lock tokens. Every token replica is installed (cached or not) so
	// the lock-cache key set matches a fault-free node's.
	for _, tk := range rs.Tokens {
		nl := ns.nodeLockFor(tk.Lock)
		nl.cached = tk.Cached
		nl.inUse = false
		nl.revokePending = false
		nl.notices = append([]dsm.WriteNotice(nil), tk.Notices...)
	}
	e.cnt(0).PagesRestored += int64(len(rs.Pages))
	// Synthesize the barrier arrival the crash suppressed: the logged
	// notices (and, under the adaptive policy, the logged interval read
	// set) are exactly what the node would have sent.
	e.send(p, node, 0, msgBarrierArrive, 16+8*len(rs.Notices)+8*len(rs.Reads),
		barrierArrive{Epoch: rs.Epoch, Notices: rs.Notices, Reads: rs.Reads})
	// Only now may the daemon re-drive stuck traffic at this node: a
	// resent diff arriving before the directory restore would find a
	// reboot-state table.
	e.recov.restoreGate.Open()
}

// ---------------------------------------------------------------------
// Shrink (crash without restart): the membership contracts.

// recoverShrink removes node permanently: orphaned pages are re-homed
// to the smallest alive id (the dead home loses the current-home-first
// tie-break by dying), its logged write notices join the stalled
// barrier, stuck peers are released, and its lock tokens are reclaimed.
// The directory surgery on the survivors runs host-side: every survivor
// is parked (at the barrier or on a stuck flush), so there is no
// concurrent protocol activity to race with; only the bulk page
// contents travel as a message. Core-level runs reject shrink plans —
// a removed node's communication and application threads would idle
// forever — so this path is exercised by engine-level drivers that
// check Removed() after each barrier.
func (e *Engine) recoverShrink(p *sim.Proc, node int) {
	r := e.recov
	e.net.ResetPeerLinks(node)
	r.removed[node] = true
	r.alive--

	log := &r.logs[node]
	if !log.valid || log.epoch != e.epoch {
		panic("hlrc: shrink without a matching barrier checkpoint log")
	}
	// The dead member's interval notices must join the barrier before
	// anything can complete it: they invalidate the survivors' stale
	// replicas of pages it modified.
	mb := &e.master
	for _, wn := range log.notices {
		set := mb.modifiers[wn.Page]
		if set == nil {
			set = map[int]bool{}
			mb.modifiers[wn.Page] = set
		}
		set[wn.Modifier] = true
		e.cnt(0).WriteNotices++
	}
	if e.policy.observesReads() && len(log.reads) > 0 {
		// The dead member's interval reads join the classifier the same
		// way its notices join the barrier.
		e.policy.cls.noteReads(node, log.reads)
	}

	// Merge the stuck flushers' bundles for the dead home into the
	// mirror, so the new home receives post-interval contents.
	for y := 0; y < e.cfg.Nodes; y++ {
		if y == node || r.removed[y] {
			continue
		}
		ns := e.nodes[y]
		if !ns.flushAwait[node] {
			continue
		}
		for _, d := range ns.flushBundle[node] {
			buf := r.mirrors[node][d.Page]
			if buf == nil {
				panic(fmt.Sprintf("hlrc: no mirror for page %d during shrink merge", d.Page))
			}
			d.ApplyInto(buf)
		}
	}

	// Re-home the orphans. The master's directory is authoritative for
	// the pre-crash homes.
	newHome := 0
	for n := 0; n < e.cfg.Nodes; n++ {
		if !r.removed[n] && !r.dead[n] {
			newHome = n
			break
		}
	}
	homes := e.nodes[0].table
	var orphans []int
	for pg := range homes.Pages {
		if homes.Pages[pg].Home == node {
			orphans = append(orphans, pg)
		}
	}
	if len(orphans) > 0 {
		install := recoverInstall{Pages: make([]ckptPageCopy, 0, len(orphans))}
		for _, pg := range orphans {
			data := r.mirrors[node][pg]
			if data == nil {
				panic(fmt.Sprintf("hlrc: no mirror for orphaned page %d", pg))
			}
			install.Pages = append(install.Pages, ckptPageCopy{Page: pg, Data: data})
		}
		// Directory surgery host-side on every survivor, then the bulk
		// contents to the new home, gated so nothing runs ahead of the
		// install.
		for y := 0; y < e.cfg.Nodes; y++ {
			if y == node || r.removed[y] {
				continue
			}
			for _, pg := range orphans {
				e.nodes[y].table.Pages[pg].Home = newHome
			}
		}
		gate := sim.NewGate(e.sim)
		r.restoreGate = gate
		e.send(p, e.buddy(node), newHome, msgRecoverInstall,
			16+(dsm.PageSize+16)*len(install.Pages), install)
		gate.Wait(p)
		r.restoreGate = nil
	}

	// The dead node was w's buddy: its unacked barrier log, if any,
	// re-routes to w's next buddy in the shrunken ring.
	if w := (node - 1 + e.cfg.Nodes) % e.cfg.Nodes; w != 0 && !r.removed[w] {
		if ck := e.nodes[w].ckptPending; ck != nil {
			e.shipCkpt(p, w, msgCkptFlush, ckptFlushBytes(ck), *ck)
		}
	}

	// Release the stuck flushers: their bundles are merged above, and a
	// synthetic ack cannot be sent from a node the fabric knows is down.
	for y := 0; y < e.cfg.Nodes; y++ {
		if y == node || r.removed[y] {
			continue
		}
		ns := e.nodes[y]
		if !ns.flushAwait[node] {
			continue
		}
		delete(ns.flushAwait, node)
		ns.flushPending--
		if ns.flushPending < 0 {
			panic("hlrc: shrink ack underflow")
		}
		if ns.flushPending == 0 && ns.flushGate != nil {
			ns.flushGate.Open()
			ns.flushGate = nil
		}
	}

	// Reissue fetches that were stalled against the dead home, now
	// served by the new one (every survivor's directory is updated).
	orphanSet := make(map[int]bool, len(orphans))
	for _, pg := range orphans {
		orphanSet[pg] = true
	}
	for y := 0; y < e.cfg.Nodes; y++ {
		if y == node || r.removed[y] {
			continue
		}
		ns := e.nodes[y]
		pgs := make([]int, 0, len(ns.fetch))
		for pg := range ns.fetch {
			if orphanSet[pg] {
				pgs = append(pgs, pg)
			}
		}
		sort.Ints(pgs)
		for _, pg := range pgs {
			e.send(p, y, newHome, msgPageReq, 16, pageReq{Page: pg})
			e.cnt(0).Refetches++
		}
	}

	// Reclaim the dead holder's lock tokens from the buddy replica.
	if e.cfg.LockCaching {
		ids := make([]int, 0, len(e.locks[0]))
		for id := range e.locks[0] {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			ls := e.locks[0][id]
			if !ls.held || ls.holder != node {
				continue
			}
			tok := r.tokens[node][id]
			notices := append([]dsm.WriteNotice(nil), tok.notices...)
			e.cnt(0).ReclaimedLocks++
			if len(ls.queue) > 0 {
				e.tokenReturned(p, id, notices)
			} else {
				ls.held = false
				ls.holder = -1
				ls.reclaimed = notices
			}
		}
	}

	// The barrier may now be completable over the survivors.
	if mb.arrived >= r.alive {
		e.completeBarrier(p, e.epoch)
	}

	// Release the removed node's parked representative; Removed() tells
	// it to stop.
	ns := e.nodes[node]
	gate := ns.barrierGate
	ns.barrierGate = nil
	gate.Open()
}

// handleRecoverInstall installs orphaned page contents at their new
// home during a shrink.
func (e *Engine) handleRecoverInstall(p *sim.Proc, node int, m *netsim.Message) {
	inst := m.Payload.(recoverInstall)
	ns := e.nodes[node]
	e.cpus[node].Compute(p, e.cfg.Cost.PageCopy*sim.Duration(len(inst.Pages)))
	for _, pc := range inst.Pages {
		pi := &ns.table.Pages[pc.Page]
		pi.State = dsm.ReadOnly
		pi.Home = node
		if pi.Twin != nil {
			e.frames[node].Put(pi.Twin)
			pi.Twin = nil
		}
		ns.mem.CopyIn(pc.Page, pc.Data)
		ns.mem.SetAppPerm(pc.Page, dsm.PermRead)
		e.cnt(0).PagesRestored++
	}
	e.recov.restoreGate.Open()
}
