package hlrc

import (
	"fmt"
	"sort"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// handlePageReq serves a page fetch at the home node: snapshot the master
// copy and send it back.
func (e *Engine) handlePageReq(p *sim.Proc, node int, m *netsim.Message) {
	req := m.Payload.(pageReq)
	ns := e.nodes[node]
	if ns.table.Pages[req.Page].Home != node {
		panic(fmt.Sprintf("hlrc: node %d got page request for %d but home is %d",
			node, req.Page, ns.table.Pages[req.Page].Home))
	}
	e.cpus[node].Compute(p, e.cfg.Cost.PageCopy)
	var data []byte
	if f := ns.mem.FrameIfPresent(req.Page); f != nil {
		data = e.frames[node].Get() // released by handlePageReply after CopyIn
		copy(data, f)
	}
	e.cnt(node).PageFetches++
	e.pgFetches[req.Page]++
	e.rec.FetchServed(node, req.Page)
	e.send(p, node, m.From, msgPageReply, dsm.PageSize, pageReply{Page: req.Page, Data: data})
}

// handlePageReply installs a fetched page through the system access path
// and releases the threads blocked on the fetch.
func (e *Engine) handlePageReply(p *sim.Proc, node int, m *netsim.Message) {
	rep := m.Payload.(pageReply)
	ns := e.nodes[node]
	pg := rep.Page
	e.cpus[node].Compute(p, e.cfg.Cost.PageCopy+ns.mem.Strategy().UpdateCost())
	frame := ns.mem.BeginSystemUpdate(pg)
	_ = frame
	ns.mem.CopyIn(pg, rep.Data)
	if rep.Data != nil {
		e.frames[node].Put(rep.Data)
	}
	ns.table.Set(pg, dsm.ReadOnly)
	ns.mem.EndSystemUpdate(pg, dsm.PermRead)
	gate := ns.fetch[pg]
	if gate == nil {
		if e.recov != nil {
			// A fetch reissued during recovery can race the original
			// reply (served before the crash, delivered after); the
			// second install is idempotent and wakes nobody.
			return
		}
		panic("hlrc: page reply without a pending fetch")
	}
	delete(ns.fetch, pg)
	gate.Open()
}

// handleDiff applies a flushed diff bundle at the home and acknowledges.
func (e *Engine) handleDiff(p *sim.Proc, node int, m *netsim.Message) {
	bundle := m.Payload.(diffMsg)
	ns := e.nodes[node]
	for _, d := range bundle.Diffs {
		if ns.table.Pages[d.Page].Home != node {
			panic(fmt.Sprintf("hlrc: node %d got diff for page %d but home is %d",
				node, d.Page, ns.table.Pages[d.Page].Home))
		}
		e.cpus[node].Compute(p, e.cfg.Cost.DiffApply)
		d.ApplyInto(ns.mem.Frame(d.Page))
		e.cnt(node).DiffsApplied++
		e.rec.DiffApplied(node)
		if e.recov == nil {
			// Under a crash plan the flusher keeps (and pools) its
			// bundle: an unacked bundle may need a resend.
			e.diffs[node].Put(d)
		}
		e.forwardHomePage(p, node, d.Page)
	}
	e.send(p, node, m.From, msgDiffAck, 8, nil)
}

// handleDiffAck counts down the flusher's outstanding acknowledgements.
func (e *Engine) handleDiffAck(_ *sim.Proc, node int, m *netsim.Message) {
	ns := e.nodes[node]
	if e.recov != nil {
		delete(ns.flushAwait, m.From)
	}
	ns.flushPending--
	if ns.flushPending < 0 {
		panic("hlrc: diff ack underflow")
	}
	if ns.flushPending == 0 && ns.flushGate != nil {
		ns.flushGate.Open()
		ns.flushGate = nil
	}
}

// handleBarrierArrive runs at the master: gather write notices, and when
// the last node arrives, elect new homes and broadcast the departure.
func (e *Engine) handleBarrierArrive(p *sim.Proc, node int, m *netsim.Message) {
	if node != 0 {
		panic("hlrc: barrier arrival at non-master node")
	}
	arr := m.Payload.(barrierArrive)
	if arr.Epoch != e.epoch {
		panic(fmt.Sprintf("hlrc: arrival for epoch %d during epoch %d", arr.Epoch, e.epoch))
	}
	mb := &e.master
	for _, wn := range arr.Notices {
		set := mb.modifiers[wn.Page]
		if set == nil {
			set = map[int]bool{}
			mb.modifiers[wn.Page] = set
		}
		set[wn.Modifier] = true
		e.cnt(0).WriteNotices++
	}
	if e.policy.observesReads() && len(arr.Reads) > 0 {
		e.policy.cls.noteReads(m.From, arr.Reads)
	}
	mb.arrived++
	if e.recov != nil {
		e.noteArrival(m.From)
	}
	if mb.arrived < e.aliveThreshold() {
		return
	}
	e.completeBarrier(p, arr.Epoch)
}

// completeBarrier runs the last-arrival work at the master: elect homes
// and release everyone. Split out of handleBarrierArrive because a
// shrink recovery also completes a barrier (on the dead member's
// behalf) once the survivors are all in.
func (e *Engine) completeBarrier(p *sim.Proc, epoch int) {
	mb := &e.master
	// Close the classifier's interval BEFORE electing: this barrier's
	// decisions should see the classes the interval's evidence produced.
	// observe iterates a sorted page union, so the hash-map order of
	// mb.modifiers never shows through.
	if e.policy.observesReads() {
		for _, ev := range e.policy.cls.observe(epoch, p.Now(), mb.modifiers) {
			e.cnt(0).PolicyReclass++
			since := ev.SinceNs
			if ev.First {
				since = -1
			}
			e.rec.PolicyReclass(0, since)
		}
	}
	entries := make([]departEntry, 0, len(mb.modifiers))
	homes := e.nodes[0].table // any table works for reading current homes
	for pg, set := range mb.modifiers {
		mods := make([]int, 0, len(set))
		for n := range set {
			mods = append(mods, n)
		}
		if len(mods) > 1 {
			sort.Ints(mods)
		}
		cur := homes.Pages[pg].Home
		// Single modifier becomes the new home (§5.2.2). With multiple
		// modifiers the current home keeps the highest priority, so it
		// stays. A dead single modifier cannot take the page (its notices
		// may reach a shrink barrier).
		legacy := cur
		if e.cfg.HomeMigration && len(mods) == 1 && mods[0] != cur && !e.gone(mods[0]) {
			legacy = mods[0]
		}
		newHome := legacy
		push := false
		if e.policy != nil {
			class := e.policy.classOf(pg)
			if cand := e.policy.home.ElectHome(pg, cur, mods, class, e.cfg.HomeMigration); cand == cur || !e.gone(cand) {
				newHome = cand
			}
			if newHome != legacy {
				e.cnt(0).PolicyHomeOverrides++
			}
			if e.policy.prop.ShouldPush(pg, class, mods, len(e.nodes)) {
				push = true
				e.cnt(0).PolicyPushes++
			}
		}
		entries = append(entries, departEntry{Page: pg, NewHome: newHome, Modifiers: mods, Push: push})
	}
	// Sort the entries BEFORE counting and tracing the migrations: the
	// map iteration above has no stable order, and trace output must be
	// identical across same-seed runs. The home tables are untouched
	// until the departures are handled, so the old home is still
	// readable here.
	sortEntries(entries)
	for i := range entries {
		ent := &entries[i]
		if cur := homes.Pages[ent.Page].Home; ent.NewHome != cur {
			e.cnt(0).HomeMigrations++
			e.pgMigrations[ent.Page]++
			if e.rec != nil {
				e.rec.HomeMigrate(p.Now(), epoch, ent.Page, cur, ent.NewHome)
			}
		}
	}
	mb.modifiers = map[int]map[int]bool{}
	mb.arrived = 0
	if e.recov != nil {
		for i := range e.recov.arrivedFrom {
			e.recov.arrivedFrom[i] = false
		}
		e.recov.detectArmed = false
	}
	e.cnt(0).Barriers++
	if e.rec != nil {
		e.rec.BarrierComplete(p.Now(), epoch, len(entries))
	}

	// Advance the epoch BEFORE sending departures: each send charges CPU
	// time (the communication thread yields), and a node released by an
	// early departure can reach its next barrier while the remaining
	// departures are still being sent — it must observe the new epoch.
	e.epoch++

	bytes := 16 + 12*len(entries)
	dep := barrierDepart{Epoch: epoch, Entries: entries}
	for n := 0; n < e.cfg.Nodes; n++ {
		if e.gone(n) {
			continue
		}
		e.send(p, 0, n, msgBarrierDepart, bytes, dep)
	}
}

func sortEntries(entries []departEntry) {
	// Insertion sort: entry counts are small (pages modified per interval).
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].Page < entries[j-1].Page; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

// handleBarrierDepart applies invalidations and home updates at one node
// and releases its representative from the barrier.
func (e *Engine) handleBarrierDepart(p *sim.Proc, node int, m *netsim.Message) {
	dep := m.Payload.(barrierDepart)
	ns := e.nodes[node]
	for _, ent := range dep.Entries {
		pi := &ns.table.Pages[ent.Page]
		oldHome := pi.Home
		pi.Home = ent.NewHome
		soleLocal := len(ent.Modifiers) == 1 && ent.Modifiers[0] == node
		if ent.NewHome == node || soleLocal {
			// Our copy is current: we are the home that merged every
			// diff, or the only writer of the interval (a node never
			// invalidates on its own write notices). Clean for the next
			// interval.
			if pi.State == dsm.Dirty {
				ns.table.Set(ent.Page, dsm.ReadOnly)
			}
			if pi.Twin != nil {
				e.frames[node].Put(pi.Twin)
				pi.Twin = nil
			}
			ns.mem.SetAppPerm(ent.Page, dsm.PermRead)
			if ent.NewHome == node && oldHome != node {
				// The page migrated INTO this node: its frame just
				// became the authoritative copy, so the buddy mirror
				// must cover it from here on.
				e.forwardHomePage(p, node, ent.Page)
			}
			continue
		}
		// Someone else's modification invalidates our copy (coherence
		// miss, §5.2.3).
		switch pi.State {
		case dsm.ReadOnly, dsm.Dirty:
			ns.table.Set(ent.Page, dsm.Invalid)
			ns.mem.SetAppPerm(ent.Page, dsm.PermNone)
			if pi.Twin != nil {
				e.frames[node].Put(pi.Twin)
				pi.Twin = nil
			}
			e.cnt(node).Invalidations++
			e.bumpInval(node, ent.Page)
			e.rec.Invalidated(node, ent.Page)
			if ent.Push {
				// Update propagation: this node held a copy, so it
				// re-fetches eagerly once the barrier gate opens
				// (refreshPages). Entries arrive page-sorted, so the
				// queue is too.
				ns.refreshPending = append(ns.refreshPending, ent.Page)
			}
		case dsm.Invalid:
			// Nothing cached; only the directory update matters.
		default:
			panic(fmt.Sprintf("hlrc: page %d in %v during barrier", ent.Page, pi.State))
		}
	}
	// The interval ended: every local modification was flushed before the
	// arrival, so dirty bookkeeping must already be clean.
	if len(ns.dirty) != 0 {
		panic("hlrc: dirty pages survived the barrier flush")
	}
	gate := ns.barrierGate
	ns.barrierGate = nil
	gate.Open()
}
