package hlrc

import (
	"fmt"
	"sort"
	"strings"
)

// Per-page activity accounting: the diagnostic view behind the paper's
// §7 programming guidelines (find the pages that migrate or ping-pong,
// then restructure the data to stop them).

// PageStat summarizes one page's protocol activity over a run.
type PageStat struct {
	Page          int
	Fetches       int // full-page transfers served by this page's homes
	Invalidations int // coherence misses inflicted on cached copies
	Migrations    int // home changes
	Home          int // final home node
}

// PageReport returns the top pages by fetch count (all pages with any
// activity if top <= 0), most active first.
func (e *Engine) PageReport(top int) []PageStat {
	var out []PageStat
	for pg := range e.pgFetches {
		if e.pgFetches[pg] == 0 && e.pgInval[pg] == 0 && e.pgMigrations[pg] == 0 {
			continue
		}
		out = append(out, PageStat{
			Page:          pg,
			Fetches:       e.pgFetches[pg],
			Invalidations: e.pgInval[pg],
			Migrations:    e.pgMigrations[pg],
			Home:          e.nodes[0].table.Pages[pg].Home,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fetches != out[j].Fetches {
			return out[i].Fetches > out[j].Fetches
		}
		return out[i].Page < out[j].Page
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// RenderPageReport formats the report as an aligned table.
func RenderPageReport(stats []PageStat) string {
	var b strings.Builder
	b.WriteString("page      fetches  invalidations  migrations  home\n")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-8d %8d %14d %11d %5d\n",
			s.Page, s.Fetches, s.Invalidations, s.Migrations, s.Home)
	}
	return b.String()
}
