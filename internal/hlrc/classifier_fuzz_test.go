package hlrc

import (
	"testing"

	"parade/internal/sim"
)

// FuzzClassifier drives the adaptive policy's per-page classifier with
// an arbitrary interval stream decoded from the fuzz input and checks
// the properties every protocol election relies on:
//
//   - determinism: two classifiers fed the same stream agree on every
//     reclassification event, every acting class, and the fingerprint
//     fold (the guarantee behind cross-lane / cross-fault
//     bit-identity);
//   - validity: no verdict outside the PageClass enum, no event for an
//     out-of-range page;
//   - ordering: observe returns events in ascending page order (they
//     feed deterministic counters and the trace recorder).
func FuzzClassifier(f *testing.F) {
	// One producer-consumer alternation, a falsely-shared burst, and a
	// read-only page — the shapes the unit tests pin down.
	f.Add([]byte{2, 0, 1, 1, 0, 2, 0, 1, 0, 0, 1, 1, 3, 1, 0, 1, 1, 1, 1, 1, 2, 1, 0})
	f.Add([]byte{1, 5, 3, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const npages, nnodes = 8, 4
		a := newClassifier(npages)
		b := newClassifier(npages)

		// Decode: repeating [nops, (page, node, kind)...] records. kind's
		// low bit picks read vs. write. Interval boundaries fall after
		// each record group.
		pos, epoch := 0, 0
		for pos < len(data) && epoch < 64 {
			nops := int(data[pos] % 8)
			pos++
			mods := map[int]map[int]bool{}
			type op struct{ pg, node, kind int }
			var ops []op
			for i := 0; i < nops && pos+2 < len(data); i++ {
				ops = append(ops, op{
					pg:   int(data[pos] % npages),
					node: int(data[pos+1] % nnodes),
					kind: int(data[pos+2] % 2),
				})
				pos += 3
			}
			for _, o := range ops {
				if o.kind == 0 {
					set := mods[o.pg]
					if set == nil {
						set = map[int]bool{}
						mods[o.pg] = set
					}
					set[o.node] = true
				} else {
					a.noteReads(o.node, []int{o.pg})
					b.noteReads(o.node, []int{o.pg})
				}
			}
			now := sim.Time(1000 * (epoch + 1))
			// observe mutates its mods argument's page sets never, but
			// hand each classifier its own map to rule out aliasing.
			evA := a.observe(epoch, now, cloneMods(mods))
			evB := b.observe(epoch, now, cloneMods(mods))
			if len(evA) != len(evB) {
				t.Fatalf("epoch %d: %d events vs %d", epoch, len(evA), len(evB))
			}
			for i := range evA {
				if evA[i] != evB[i] {
					t.Fatalf("epoch %d event %d: %+v vs %+v", epoch, i, evA[i], evB[i])
				}
				if evA[i].Page < 0 || evA[i].Page >= npages {
					t.Fatalf("epoch %d: event for out-of-range page %d", epoch, evA[i].Page)
				}
				if evA[i].Class > ClassFalselyShared {
					t.Fatalf("epoch %d: invalid class %d", epoch, evA[i].Class)
				}
				if i > 0 && evA[i].Page <= evA[i-1].Page {
					t.Fatalf("epoch %d: events out of page order: %d then %d",
						epoch, evA[i-1].Page, evA[i].Page)
				}
			}
			for pg := 0; pg < npages; pg++ {
				if a.classOf(pg) != b.classOf(pg) {
					t.Fatalf("epoch %d page %d: class %v vs %v",
						epoch, pg, a.classOf(pg), b.classOf(pg))
				}
			}
			epoch++
		}

		foldA := collectFold(a)
		foldB := collectFold(b)
		if len(foldA) != len(foldB) {
			t.Fatalf("fold lengths differ: %d vs %d", len(foldA), len(foldB))
		}
		for i := range foldA {
			if foldA[i] != foldB[i] {
				t.Fatalf("fold word %d differs: %d vs %d", i, foldA[i], foldB[i])
			}
		}
	})
}

func cloneMods(mods map[int]map[int]bool) map[int]map[int]bool {
	out := make(map[int]map[int]bool, len(mods))
	for pg, set := range mods {
		cp := make(map[int]bool, len(set))
		for n := range set {
			cp[n] = true
		}
		out[pg] = cp
	}
	return out
}

func collectFold(c *classifier) []int {
	var words []int
	c.fold(func(v int) { words = append(words, v) })
	return words
}
