package hlrc

import (
	"math/rand"
	"testing"

	"parade/internal/sim"
)

// Model-checking test: a randomized workload against a sequential
// oracle. Each interval every node writes a random set of addresses it
// owns for that round (ownership rotates, so pages see single-writer,
// multi-writer, and migration patterns); after the barrier, every node
// reads a random sample of all addresses and must observe exactly the
// oracle's values. This exercises fetches, twins, diffs, multi-writer
// merging, invalidation, and home migration together.
func TestDSMMatchesSequentialOracle(t *testing.T) {
	for _, cfg := range []struct {
		nodes     int
		migration bool
		seed      int64
	}{
		{2, true, 11}, {2, false, 12}, {4, true, 13}, {4, false, 14}, {8, true, 15},
	} {
		tc := newTestCluster(cfg.nodes, cfg.migration)
		const (
			addrSpace = 6 * 4096 // six pages
			rounds    = 12
			writesPer = 20
			readsPer  = 30
		)
		rng := rand.New(rand.NewSource(cfg.seed))

		// Pre-generate the schedule so every node proc and the oracle
		// agree without sharing the RNG during the simulation.
		type round struct {
			writes []map[int]float64 // per node: addr -> value
			reads  [][]int           // per node: addresses to check
		}
		script := make([]round, rounds)
		for r := range script {
			script[r].writes = make([]map[int]float64, cfg.nodes)
			script[r].reads = make([][]int, cfg.nodes)
			for n := 0; n < cfg.nodes; n++ {
				script[r].writes[n] = map[int]float64{}
			}
			for w := 0; w < writesPer*cfg.nodes; w++ {
				addr := rng.Intn(addrSpace/8) * 8
				// The address's owner this round: rotates with the round
				// so homes migrate and multi-writer pages occur (several
				// owners share a page).
				owner := (addr/8 + r) % cfg.nodes
				val := float64(rng.Intn(1 << 20))
				script[r].writes[owner][addr] = val
			}
			for n := 0; n < cfg.nodes; n++ {
				for k := 0; k < readsPer; k++ {
					script[r].reads[n] = append(script[r].reads[n], rng.Intn(addrSpace/8)*8)
				}
			}
		}

		// Precompute the oracle state after each round (a pure function
		// of the script, so simulation-time ordering cannot skew it).
		oracleAt := make([]map[int]float64, rounds)
		acc := map[int]float64{}
		for r := 0; r < rounds; r++ {
			for n := 0; n < cfg.nodes; n++ {
				for addr, val := range script[r].writes[n] {
					acc[addr] = val
				}
			}
			snap := make(map[int]float64, len(acc))
			for k, v := range acc {
				snap[k] = v
			}
			oracleAt[r] = snap
		}

		type mismatch struct {
			round, node, addr int
			got, want         float64
		}
		var bad []mismatch
		tc.spawnNodes(t, func(p *sim.Proc, node int) {
			for r := 0; r < rounds; r++ {
				for addr, val := range script[r].writes[node] {
					tc.write(p, node, addr, val)
				}
				tc.e.Barrier(p, node)
				for _, addr := range script[r].reads[node] {
					got := tc.read(p, node, addr)
					if got != oracleAt[r][addr] {
						bad = append(bad, mismatch{r, node, addr, got, oracleAt[r][addr]})
					}
				}
				tc.e.Barrier(p, node)
			}
		})
		if len(bad) != 0 {
			m := bad[0]
			t.Fatalf("cfg %+v: %d mismatches; first: round %d node %d addr %d got %v want %v",
				cfg, len(bad), m.round, m.node, m.addr, m.got, m.want)
		}
	}
}
