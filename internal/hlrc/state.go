package hlrc

import (
	"encoding/binary"
	"hash/fnv"
)

// StateFingerprint hashes the cluster's final DSM state: every node's
// page states, permissions, and home directory, plus the contents of
// each page's authoritative copy (the frame held at its home node).
// Replica frames are deliberately excluded — under lazy release
// consistency a replica fetched while the home was concurrently writing
// (legal for a nowait loop's non-conflicting accesses) snapshots
// timing-dependent bytes, while the home copy and every directory entry
// are fixed by program order alone. Two runs that agree on the
// fingerprint converged to the same protocol state and shared memory —
// the chaos harness compares it between fault-free and fault-injected
// runs of the same program, which must agree because the reliability
// sublayer hides every injected fault from the protocol.
func (e *Engine) StateFingerprint() uint64 {
	h := fnv.New64a()
	var word [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(word[:], uint64(int64(v)))
		h.Write(word[:])
	}
	for node, ns := range e.nodes {
		writeInt(node)
		for pg := range ns.table.Pages {
			pi := &ns.table.Pages[pg]
			writeInt(int(pi.State)<<16 | int(pi.Perm)<<8 | pi.Home)
			if pi.Home != node {
				continue
			}
			frame := ns.mem.FrameIfPresent(pg)
			if frame == nil {
				// A never-materialized home frame reads as zeroes but is
				// distinguished from an explicit zero frame: materialization
				// at the home is deterministic, so the distinction is stable.
				writeInt(0)
				continue
			}
			writeInt(1 + len(frame))
			h.Write(frame)
		}
	}
	return h.Sum64()
}
