package hlrc

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"parade/internal/dsm"
)

// StateFingerprint hashes the cluster's final DSM state: every node's
// page states, permissions, and home directory, plus the contents of
// each page's authoritative copy (the frame held at its home node),
// plus the lock-subsystem state (manager tables, cached tokens) and
// the pending write-notice state (token notices, the master barrier's
// in-flight modifier sets — empty at quiescence).
// Replica frames are deliberately excluded — under lazy release
// consistency a replica fetched while the home was concurrently writing
// (legal for a nowait loop's non-conflicting accesses) snapshots
// timing-dependent bytes, while the home copy and every directory entry
// are fixed by program order alone. For the same reason the lock
// sections hash page SETS, never the last-modifier ids: which of two
// racing critical sections ran last is a timing artifact, but the union
// of pages ever dirtied under a lock is fixed by the program. Two runs
// that agree on the fingerprint converged to the same protocol state
// and shared memory — the chaos harness compares it between fault-free
// and fault-injected runs of the same program, and the crash harness
// between fault-free and crash-recovered runs.
func (e *Engine) StateFingerprint() uint64 {
	h := fnv.New64a()
	var word [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(word[:], uint64(int64(v)))
		h.Write(word[:])
	}
	writeNoticePages := func(notices []dsm.WriteNotice) {
		pages := make([]int, 0, len(notices))
		for _, wn := range notices {
			pages = append(pages, wn.Page)
		}
		sort.Ints(pages)
		writeInt(len(pages))
		for _, pg := range pages {
			writeInt(pg)
		}
	}
	for node, ns := range e.nodes {
		writeInt(node)
		for pg := range ns.table.Pages {
			pi := &ns.table.Pages[pg]
			writeInt(int(pi.State)<<16 | int(pi.Perm)<<8 | pi.Home)
			if pi.Home != node {
				continue
			}
			frame := ns.mem.FrameIfPresent(pg)
			if frame == nil {
				// A never-materialized home frame reads as zeroes but is
				// distinguished from an explicit zero frame: materialization
				// at the home is deterministic, so the distinction is stable.
				writeInt(0)
				continue
			}
			writeInt(1 + len(frame))
			h.Write(frame)
		}
		// Cached lock tokens resident on this node.
		ids := make([]int, 0, len(ns.lockCache))
		for id := range ns.lockCache {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		writeInt(len(ids))
		for _, id := range ids {
			nl := ns.lockCache[id]
			flags := 0
			if nl.cached {
				flags |= 1
			}
			if nl.inUse {
				flags |= 2
			}
			if nl.revokePending {
				flags |= 4
			}
			writeInt(id<<8 | flags)
			writeNoticePages(nl.notices)
		}
	}
	// Manager-side lock state.
	lockIDs := make([]int, 0)
	for _, shard := range e.locks {
		for id := range shard {
			lockIDs = append(lockIDs, id)
		}
	}
	sort.Ints(lockIDs)
	writeInt(len(lockIDs))
	for _, id := range lockIDs {
		ls := e.locks[e.lockManager(id)][id]
		holder := -1
		if ls.held {
			holder = ls.holder
		}
		writeInt(id)
		writeInt(holder)
		writeInt(len(ls.queue))
		for _, q := range ls.queue {
			writeInt(q)
		}
		pages := make([]int, 0, len(ls.notices))
		for pg := range ls.notices {
			pages = append(pages, pg)
		}
		sort.Ints(pages)
		writeInt(len(pages))
		for _, pg := range pages {
			writeInt(pg)
		}
		writeNoticePages(ls.reclaimed)
	}
	// The master barrier's pending write notices (empty at quiescence).
	mbPages := make([]int, 0, len(e.master.modifiers))
	for pg := range e.master.modifiers {
		mbPages = append(mbPages, pg)
	}
	sort.Ints(mbPages)
	writeInt(len(mbPages))
	for _, pg := range mbPages {
		set := e.master.modifiers[pg]
		mods := make([]int, 0, len(set))
		for n := range set {
			mods = append(mods, n)
		}
		sort.Ints(mods)
		writeInt(pg)
		writeInt(len(mods))
		for _, n := range mods {
			writeInt(n)
		}
	}
	// The adaptive classifier's program-order state (classes, hysteresis,
	// change epochs — never virtual times): two adaptive runs that agree
	// here made identical protocol elections. Absent (zero-cost) for
	// legacy and fixed policies, whose fingerprints must stay comparable
	// with pre-policy baselines.
	if e.policy.observesReads() {
		e.policy.cls.fold(writeInt)
	}
	return h.Sum64()
}
