package hlrc

import (
	"fmt"
	"io"
)

// Protocol tracing: an optional event log of faults, fetches, flushes,
// barriers, and migrations, timestamped in virtual time. Used when
// debugging protocol behaviour or explaining a page report.

// SetTrace directs a line-per-event protocol trace to w (nil disables).
func (e *Engine) SetTrace(w io.Writer) { e.trace = w }

func (e *Engine) tracef(format string, args ...any) {
	if e.trace == nil {
		return
	}
	fmt.Fprintf(e.trace, "[%12s] ", e.sim.Now())
	fmt.Fprintf(e.trace, format, args...)
	fmt.Fprintln(e.trace)
}
