package hlrc

import (
	"io"

	"parade/internal/obs"
)

// Protocol tracing and metrics flow through an optional internal/obs
// recorder: faults, fetches, flushes, barriers, migrations, and locks
// become structured events (with virtual-time latency spans) plus
// per-node counters and histograms. With no recorder attached the
// engine records nothing and pays only nil checks.

// SetRecorder attaches (or, with nil, detaches) a structured
// observability recorder. A legacy text sink previously installed with
// SetTrace follows the engine to the new recorder.
func (e *Engine) SetRecorder(r *obs.Recorder) {
	if e.traceSink != nil {
		e.rec.RemoveSink(e.traceSink)
		if r != nil {
			r.AddSink(e.traceSink)
		} else {
			e.traceSink = nil
		}
	}
	e.rec = r
}

// SetTrace directs a line-per-event protocol trace to w (nil disables).
// This is a compatibility shim over the structured tracer: it installs
// an obs.NewLegacyTextSink, whose output is byte-identical to the
// historical fmt.Fprintf trace format.
func (e *Engine) SetTrace(w io.Writer) {
	if e.traceSink != nil {
		e.rec.RemoveSink(e.traceSink)
		e.traceSink = nil
	}
	if w == nil {
		return
	}
	if e.rec == nil {
		e.rec = obs.New(e.cfg.Nodes)
	}
	e.traceSink = obs.NewLegacyTextSink(w)
	e.rec.AddSink(e.traceSink)
}
