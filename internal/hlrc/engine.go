// Package hlrc implements the ParADE memory consistency protocol
// (paper §5.2): home-based lazy release consistency with migratory home.
// Pages are fetched from their home on access faults, local writes are
// captured with twins and propagated as diffs, write notices travel
// piggybacked on barrier messages, and the home of a page migrates at
// barrier time to its single modifier. A centralized lock manager
// provides the conventional SDSM synchronization path that the baseline
// (KDSM-style) configuration uses for critical/single directives.
//
// The engine's methods run in two kinds of simulated-process context:
// application threads call EnsureRead/EnsureWrite/Barrier/AcquireLock/
// ReleaseLock, and each node's communication thread calls Handle for
// every incoming protocol message. The simulation kernel runs one
// process at a time, so the engine needs no host-level locking — the
// same invariant lets the optional internal/obs recorder (SetRecorder/
// SetTrace) log events and histograms with plain, unsynchronized field
// writes.
package hlrc

import (
	"fmt"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/obs"
	"parade/internal/sim"
	"parade/internal/stats"
)

// CostModel holds the CPU costs of protocol operations, calibrated to a
// Pentium-III/Linux-2.4 node like the paper's testbed.
type CostModel struct {
	FaultHandler   sim.Duration // SIGSEGV delivery + handler entry
	PageCopy       sim.Duration // copy one 4 KiB page
	TwinCreate     sim.Duration // allocate + copy a twin
	DiffScan       sim.Duration // compare page against twin
	DiffApply      sim.Duration // apply one diff at the home
	ProtocolHandle sim.Duration // per-message protocol bookkeeping
	LockManage     sim.Duration // lock manager queue operation
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		FaultHandler:   10 * sim.Microsecond,
		PageCopy:       6 * sim.Microsecond,
		TwinCreate:     6 * sim.Microsecond,
		DiffScan:       15 * sim.Microsecond,
		DiffApply:      3 * sim.Microsecond,
		ProtocolHandle: 2 * sim.Microsecond,
		LockManage:     1 * sim.Microsecond,
	}
}

// Config selects the protocol variant.
type Config struct {
	Nodes         int
	ShmBytes      int
	HomeMigration bool               // paper's migratory-home extension
	LockCaching   bool               // lazy-release lock tokens (Yun et al.)
	Strategy      dsm.UpdateStrategy // atomic page update method
	Cost          CostModel
	Crash         *CrashPlan // crash-stop fault plan (nil/empty: inert)
	// Policy selects the protocol policy (policy.go): "" (legacy),
	// "invalidate", "update", or "adaptive".
	Policy string
}

// Protocol message subtypes carried in netsim.Message.Type.
const (
	msgPageReq = iota + 1
	msgPageReply
	msgDiff
	msgDiffAck
	msgBarrierArrive
	msgBarrierDepart
	msgLockReq
	msgLockGrant
	msgLockRelease
	msgLockRevoke
	msgLockToken
	// Crash recovery plane (recovery.go). Active only with a crash plan.
	msgPing           // master liveness probe during a stalled barrier
	msgCkptFlush      // flush-time checkpoint log to the buddy
	msgCkptAck        // buddy durability ack for a barrier log
	msgCkptPage       // incremental home-page mirror update to the buddy
	msgCkptTok        // lock-token replica delta to the buddy
	msgRecoverState   // buddy -> restarted node: full state restore
	msgRecoverInstall // buddy -> new home: orphaned page contents (shrink)
)

// pageReq asks the home for the current contents of a page.
type pageReq struct{ Page int }

// pageReply carries a snapshot of the page from its home.
type pageReply struct {
	Page int
	Data []byte // nil when the home never materialized the frame (zeroes)
}

// diffMsg bundles the diffs one node flushes to one home. The diffs are
// pooled: the home returns each to the engine's DiffPool after applying
// it, and the flusher recycles the bundle slice once all acks are in.
type diffMsg struct{ Diffs []*dsm.Diff }

// barrierArrive is a node's arrival at the global barrier, carrying its
// write notices (paper §5.2.2: combined into a single message and
// piggybacked on the barrier arrival).
type barrierArrive struct {
	Epoch   int
	Notices []dsm.WriteNotice
	// Reads is the sorted set of pages this node read-faulted or eagerly
	// refreshed during the interval — classifier input, piggybacked only
	// when the policy observes reads (nil otherwise, adding no bytes).
	Reads []int
}

// departEntry summarizes one modified page for the barrier departure:
// who modified it and where its home now lives.
type departEntry struct {
	Page      int
	NewHome   int
	Modifiers []int
	// Push selects update propagation for this page: nodes whose copy
	// the departure invalidates re-fetch it eagerly (refreshPages)
	// instead of waiting for the next access fault.
	Push bool
}

// barrierDepart releases a node from the barrier and delivers the global
// write-notice summary.
type barrierDepart struct {
	Epoch   int
	Entries []departEntry
}

// lockMsg is used by requests, grants, and releases. Notices carry the
// consistency information piggybacked on grants (pages to invalidate)
// and releases (pages dirtied in the critical section).
type lockMsg struct {
	Lock    int
	Notices []dsm.WriteNotice
}

// nodeState is the per-node protocol state.
type nodeState struct {
	table *dsm.Table
	mem   *dsm.Memory
	dirty map[int]struct{} // pages written since the last flush

	fetch map[int]*sim.Gate // in-flight page fetches

	flushGate    *sim.Gate // waiting for diff acks
	flushPending int

	// Lock releases can flush from any team thread, so two threads of
	// one node can reach flush concurrently (the diff-scan cost yields
	// the CPU). Flushes serialize on flushing/flushIdle: the waiter
	// re-flushes whatever stayed dirty once the active flush's acks are
	// in, which preserves release semantics (its writes are home either
	// way before its release proceeds).
	flushing  bool
	flushIdle *sim.Gate

	// relNotices accumulates every page this node flushed since its
	// last barrier. A release's write notices are drawn from here, not
	// from the flush it triggered: with several team threads, a
	// concurrent release's flush can sweep up this thread's writes, and
	// attributing them only to that other lock would let a later
	// acquirer of THIS lock miss the invalidation. Re-notifying is
	// conservative (the manager's per-lock notice map is cumulative
	// anyway); the barrier clears it because barrier departure
	// propagates the interval's notices cluster-wide itself.
	relNotices map[int]struct{}

	// Flush scratch, reused across flushes so the steady-state flush
	// path allocates only its notice slice (which escapes into protocol
	// messages). flushBundle's slices are recycled after the acks.
	flushPages  []int
	flushHomes  []int
	flushBundle map[int][]*dsm.Diff

	lockCache map[int]*nodeLock // cached-protocol token state

	// readObs is the set of pages this node read-faulted or eagerly
	// refreshed since its last barrier — the classifier's reader-set
	// input, collected only when the policy observes reads and drained
	// (sorted) onto the next barrier arrival.
	readObs map[int]struct{}
	// refreshPending queues pages a barrier departure invalidated with
	// Push set; refreshPages re-fetches them all in parallel right after
	// the barrier gate opens.
	refreshPending []int

	barrierGate *sim.Gate // waiting for barrier departure

	lockGate map[int]*sim.Gate // waiting for a lock grant

	// Crash-recovery bookkeeping, maintained only with an active plan.
	flushAwait  map[int]bool // homes with an outstanding diff ack
	flushSelf   []int        // dirty home pages of the current flush
	ckptGate    *sim.Gate    // waiting for the buddy's barrier-log ack
	ckptPending *ckptFlush   // unacked barrier log, kept for resend
}

// lockState is the manager-side state of one global lock.
type lockState struct {
	held    bool
	holder  int
	queue   []int
	notices map[int]int // page -> last modifier, sent with grants
	// reclaimed holds the token notices salvaged from a crashed holder
	// when no requester was queued; the next grant carries them.
	reclaimed []dsm.WriteNotice
}

// masterBarrier is the master node's view of the in-progress barrier.
type masterBarrier struct {
	epoch     int
	arrived   int
	modifiers map[int]map[int]bool // page -> set of modifier nodes
}

// Engine drives the protocol for all nodes of one simulated cluster.
type Engine struct {
	sim      *sim.Simulator
	net      *netsim.Network
	cpus     []*sim.CPU
	cfg      Config
	counters *stats.Sharded

	Alloc *dsm.Allocator

	// frames recycles twins and fetch-reply page snapshots; diffs
	// recycles flush diffs. One free list per node: each list is touched
	// only from its own node's (lane's) context, and pooled objects
	// migrate between nodes strictly inside protocol messages, which
	// carry the happens-before edge under event lanes. In legacy mode
	// the split is behavior-neutral (a free list is a free list).
	frames []dsm.FramePool
	diffs  []dsm.DiffPool

	nodes []*nodeState
	// locks holds the manager-side lock state, sharded by manager node
	// (lockManager(id)) so each shard map is confined to one lane.
	locks  []map[int]*lockState
	master masterBarrier
	epoch  int

	// Per-page activity for PageReport.
	pgFetches    []int
	pgInval      []int
	pgMigrations []int
	// pgInvalSh shards pgInval per node under event lanes: several nodes
	// can invalidate the same page inside one time window. Inner slices
	// allocate lazily on a node's first invalidation (lane-confined).
	pgInvalSh [][]int

	// rec is the optional observability recorder (nil = disabled, the
	// zero-overhead path). traceSink is the legacy-format text sink a
	// SetTrace call installed, tracked so it can be detached again.
	rec       *obs.Recorder
	traceSink *obs.TextSink

	// recov is the crash/recovery plane (nil without an active crash
	// plan — the nil check keeps every hot path identical to a build
	// without it).
	recov *recovery

	// policy is the protocol policy engine (nil for the legacy empty
	// policy — the nil check keeps every hot path identical).
	policy *policyEngine
}

// New creates a protocol engine for the given cluster.
func New(s *sim.Simulator, net *netsim.Network, cpus []*sim.CPU, cfg Config, c *stats.Counters) *Engine {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCosts()
	}
	npages := (cfg.ShmBytes + dsm.PageSize - 1) / dsm.PageSize
	e := &Engine{
		sim: s, net: net, cpus: cpus, cfg: cfg, counters: stats.NewSharded(c),
		Alloc:        dsm.NewAllocator(npages * dsm.PageSize),
		frames:       make([]dsm.FramePool, cfg.Nodes),
		diffs:        make([]dsm.DiffPool, cfg.Nodes),
		locks:        make([]map[int]*lockState, cfg.Nodes),
		pgFetches:    make([]int, npages),
		pgInval:      make([]int, npages),
		pgMigrations: make([]int, npages),
		policy:       newPolicyEngine(cfg.Policy, npages),
	}
	for i := range e.locks {
		e.locks[i] = map[int]*lockState{}
	}
	if s.Lanes() > 0 && !s.Relaxed() {
		e.counters.EnableShards(cfg.Nodes)
		e.pgInvalSh = make([][]int, cfg.Nodes)
	}
	e.nodes = make([]*nodeState, cfg.Nodes)
	for i := range e.nodes {
		e.nodes[i] = &nodeState{
			table:       dsm.NewTable(i, npages),
			mem:         dsm.NewMemory(npages, cfg.Strategy),
			dirty:       map[int]struct{}{},
			fetch:       map[int]*sim.Gate{},
			lockGate:    map[int]*sim.Gate{},
			lockCache:   map[int]*nodeLock{},
			flushBundle: map[int][]*dsm.Diff{},
			relNotices:  map[int]struct{}{},
			readObs:     map[int]struct{}{},
		}
		// Master starts with every page readable (paper §5.2.3).
		if i == 0 {
			for pg := 0; pg < npages; pg++ {
				e.nodes[i].mem.SetAppPerm(pg, dsm.PermRead)
			}
		}
	}
	e.master.modifiers = map[int]map[int]bool{}
	if cfg.Crash.Active() {
		e.armRecovery(s, net)
	}
	return e
}

// cnt returns the counter set increments from node's context must
// target (the shared base in legacy and relaxed modes).
func (e *Engine) cnt(node int) *stats.Counters { return e.counters.At(node) }

// bumpInval counts one invalidation of pg applied on node.
func (e *Engine) bumpInval(node, pg int) {
	if e.pgInvalSh != nil {
		sh := e.pgInvalSh[node]
		if sh == nil {
			sh = make([]int, len(e.pgInval))
			e.pgInvalSh[node] = sh
		}
		sh[pg]++
		return
	}
	e.pgInval[pg]++
}

// FoldCounters merges the per-node counter and per-page shards into the
// aggregate views. The runtime calls it once after a lane-mode run.
func (e *Engine) FoldCounters() {
	e.counters.Fold()
	for _, sh := range e.pgInvalSh {
		for pg, n := range sh {
			e.pgInval[pg] += n
		}
	}
}

// Mem returns node's memory image (for typed accessors after EnsureRead/
// EnsureWrite have granted access).
func (e *Engine) Mem(node int) *dsm.Memory { return e.nodes[node].mem }

// Table exposes node's page table (used by tests and the stats report).
func (e *Engine) Table(node int) *dsm.Table { return e.nodes[node].table }

// send injects a protocol control message from p's context.
func (e *Engine) send(p *sim.Proc, from, to, typ int, bytes int, payload any) {
	e.net.Send(p, &netsim.Message{
		From: from, To: to, Kind: netsim.KindDSM, Type: typ,
		Bytes: bytes, Payload: payload,
	})
}

// Handle dispatches one incoming protocol message on node's
// communication thread (process p).
func (e *Engine) Handle(p *sim.Proc, node int, m *netsim.Message) {
	e.cpus[node].Compute(p, e.cfg.Cost.ProtocolHandle)
	switch m.Type {
	case msgPageReq:
		e.handlePageReq(p, node, m)
	case msgPageReply:
		e.handlePageReply(p, node, m)
	case msgDiff:
		e.handleDiff(p, node, m)
	case msgDiffAck:
		e.handleDiffAck(p, node, m)
	case msgBarrierArrive:
		e.handleBarrierArrive(p, node, m)
	case msgBarrierDepart:
		e.handleBarrierDepart(p, node, m)
	case msgLockReq:
		e.handleLockReq(p, node, m)
	case msgLockGrant:
		e.handleLockGrant(p, node, m)
	case msgLockRelease:
		e.handleLockRelease(p, node, m)
	case msgLockRevoke:
		e.handleLockRevoke(p, node, m)
	case msgLockToken:
		e.handleLockToken(p, node, m)
	case msgPing:
		// Liveness probe: reaching the inbox is the whole answer.
	case msgCkptFlush:
		e.handleCkptFlush(p, node, m)
	case msgCkptAck:
		e.handleCkptAck(p, node, m)
	case msgCkptPage:
		e.handleCkptPage(m)
	case msgCkptTok:
		e.handleCkptTok(m)
	case msgRecoverState:
		e.handleRecoverState(p, node, m)
	case msgRecoverInstall:
		e.handleRecoverInstall(p, node, m)
	default:
		panic(fmt.Sprintf("hlrc: unknown message type %d", m.Type))
	}
}
