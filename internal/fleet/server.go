package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ServerOptions sizes a Service.
type ServerOptions struct {
	Workers  int // worker pool size (default 2)
	Queue    int // admission bound across all batches (default 64)
	Cache    int // LRU result-cache capacity (default 1024)
	MaxBatch int // maximum job lines per request (default 4096)
	MaxLine  int // maximum bytes per JSONL line (default 1 MiB)

	// WALPath, when non-empty, enables the durable result store: every
	// StatusOK result is appended (checksummed, fsynced) to this JSONL
	// log, and NewService replays it into the cache so a restarted
	// server never re-executes a completed cell.
	WALPath string
	// JobDeadline, when positive, is the server-side watchdog: the
	// wall-clock budget applied to every job (a runaway simulation is
	// cooperatively canceled and answered with a typed canceled result).
	// A job's own deadline_ms can only tighten it.
	JobDeadline time.Duration
	// MaxAttempts bounds panic retries per job (default 3; the executor
	// quarantines the config after the last attempt panics).
	MaxAttempts int
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Queue == 0 {
		o.Queue = 64
	}
	if o.Cache == 0 {
		o.Cache = 1024
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 4096
	}
	if o.MaxLine == 0 {
		o.MaxLine = 1 << 20
	}
	return o
}

// Service is the sweep service: executor + dedupe cache + worker pool +
// metrics (+ optional durable WAL) behind an http.Handler. Create with
// NewService, expose with Handler, stop with Drain (graceful) or Kill
// (hard stop).
type Service struct {
	exec    *Executor
	cache   *Cache
	pool    *Pool
	metrics *Metrics
	wal     *WAL // nil when WALPath is empty
	opt     ServerOptions

	// flight coalesces concurrent identical jobs: the first runs, the
	// rest wait for its result and report cached=true.
	flightMu sync.Mutex
	flight   map[uint64]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  JobResult
}

// NewService builds a running service (workers started). When
// opt.WALPath is set, the WAL is opened and replayed into the cache
// before the first request can land: a restarted server serves every
// previously completed cell from cache, bit-identical, with zero
// re-executions.
func NewService(opt ServerOptions) (*Service, error) {
	opt = opt.withDefaults()
	s := &Service{
		exec:    NewExecutor(ExecOptions{MaxJobTime: opt.JobDeadline, MaxAttempts: opt.MaxAttempts}),
		cache:   NewCache(opt.Cache),
		metrics: NewMetrics(),
		opt:     opt,
		flight:  map[uint64]*flightCall{},
	}
	s.exec.Obs = s.metrics.FoldRun
	if opt.WALPath != "" {
		wal, records, rep, err := OpenWAL(opt.WALPath)
		if err != nil {
			return nil, err
		}
		s.wal = wal
		for _, rec := range records {
			s.cache.Put(rec.FP, rec.Canonical, rec.Result)
		}
		s.metrics.WALReplayDone(rep)
	}
	// Workers start only after the cache is warm, so no job can race the
	// replay.
	s.pool = NewPool(opt.Workers, opt.Queue)
	s.pool.SetObserver(s.metrics.SetQueue)
	return s, nil
}

// Executor returns the service's executor (the run-count probe).
func (s *Service) Executor() *Executor { return s.exec }

// Cache returns the service's result cache.
func (s *Service) Cache() *Cache { return s.cache }

// Metrics returns the service's metrics registry.
func (s *Service) Metrics() *Metrics { return s.metrics }

// WAL returns the service's durable result store (nil when disabled).
func (s *Service) WAL() *WAL { return s.wal }

// Drain stops admission (new batches get 503, /healthz flips to 503),
// waits for every admitted job to finish, then stops the workers and
// closes the WAL.
func (s *Service) Drain() {
	s.pool.Drain()
	if s.wal != nil {
		s.wal.Close()
	}
}

// Kill is the hard stop (the in-process analogue of SIGKILL for chaos
// testing): admission halts, queued jobs are discarded — their response
// lines report a canceled status so in-progress batch streams still
// complete — only already-executing jobs finish, and the WAL is closed.
// Results that reached the WAL before Kill returned are durable; a
// NewService over the same WALPath recovers them.
func (s *Service) Kill() {
	s.pool.Kill()
	if s.wal != nil {
		s.wal.Close()
	}
}

// Handler returns the HTTP serving surface:
//
//	POST /v1/jobs  — JSONL batch in, JSONL results out (stream)
//	GET  /metrics  — Prometheus text exposition
//	GET  /healthz  — 200 ok, 503 once draining
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.pool.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var ws WALStats
	if s.wal != nil {
		ws = s.wal.Stats()
	}
	s.metrics.WritePrometheus(w, s.cache, s.exec.Stats(), ws)
}

// batchLine is one parsed input line: a spec or its parse error.
type batchLine struct {
	spec    JobSpec
	specErr *JobSpecError
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JSONL batch of job specs", http.StatusMethodNotAllowed)
		return
	}

	// Parse the whole batch before writing any response byte: admission
	// is atomic, so backpressure can be a clean 429.
	lines, err := s.readBatch(r)
	if err != nil {
		he := err.(*httpError)
		http.Error(w, he.msg, he.code)
		return
	}

	var jobs []int // indexes of lines that passed validation
	for i := range lines {
		if lines[i].specErr == nil {
			jobs = append(jobs, i)
		}
	}

	results := make(chan JobResult, len(jobs))
	submit := make([]Job, 0, len(jobs))
	for _, idx := range jobs {
		idx := idx
		spec := lines[idx].spec
		submit = append(submit, Job{
			Run: func() {
				res := s.runJob(spec)
				res.Index = idx
				results <- res
			},
			// Kill discards queued jobs; the drop hook completes the
			// response stream with a typed canceled line instead of
			// leaving the client hanging.
			Drop: func() {
				results <- JobResult{
					ID: spec.ID, Index: idx, Status: StatusCanceled,
					App: spec.App, Mode: spec.Mode,
					Error: "dropped: server killed before execution",
				}
			},
		})
	}
	if err := s.pool.SubmitBatch(submit); err != nil {
		s.metrics.BatchDone(true)
		switch err {
		case ErrQueueFull:
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
			http.Error(w, fmt.Sprintf("queue full (%d jobs submitted, %d slots)",
				len(submit), s.pool.Capacity()), http.StatusTooManyRequests)
		case ErrDraining:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.metrics.BatchDone(false)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(res JobResult) {
		s.metrics.JobDone(res.Status, res.Cached, res.HostNs)
		enc.Encode(res)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Invalid lines are answered immediately, then executed results
	// stream in completion order (each line carries its batch index).
	for i := range lines {
		if se := lines[i].specErr; se != nil {
			spec := lines[i].spec
			emit(JobResult{
				ID: spec.ID, Index: i, Status: StatusInvalid,
				App: spec.App, Mode: spec.Mode,
				InvalidFields: se.Fields,
			})
		}
	}
	for range jobs {
		emit(<-results)
	}
}

// httpError carries a status code out of readBatch.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// readBatch parses the request body as JSONL job specs. Parse and
// validation failures are recorded per line (typed *JobSpecError), not
// fatal; only an oversized batch/line or unreadable body aborts.
func (s *Service) readBatch(r *http.Request) ([]batchLine, error) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), s.opt.MaxLine)
	var lines []batchLine
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		if len(lines) >= s.opt.MaxBatch {
			return nil, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds %d jobs", s.opt.MaxBatch)}
		}
		var spec JobSpec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			lines = append(lines, batchLine{specErr: &JobSpecError{
				Index:  len(lines),
				Fields: []FieldError{{Field: "(line)", Reason: fmt.Sprintf("not a JSON job spec: %v", err)}},
			}})
			continue
		}
		spec = spec.Normalize()
		line := batchLine{spec: spec}
		if err := spec.Validate(); err != nil {
			se := err.(*JobSpecError)
			se.Index = len(lines)
			line.specErr = se
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("reading batch: %v", err)}
	}
	if len(lines) == 0 {
		return nil, &httpError{http.StatusBadRequest, "empty batch (POST one JSON job spec per line)"}
	}
	return lines, nil
}

// retryAfterSeconds estimates how long a client should back off when the
// queue is full: the queue's worth of work at the mean observed job
// latency spread over the workers, floored at one second.
func (s *Service) retryAfterSeconds() int {
	queued, inFlight := s.pool.Depth()
	mean := s.meanJobSeconds()
	est := float64(queued+inFlight) * mean / float64(s.opt.Workers)
	if est < 1 {
		return 1
	}
	return int(est + 0.5)
}

func (s *Service) meanJobSeconds() float64 {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	if s.metrics.jobLatency.Count == 0 {
		return 0.1 // matrix cells run in the low hundreds of milliseconds
	}
	return s.metrics.jobLatency.Mean() * 1e-9
}

// runJob serves one validated spec: dedupe cache first, then in-flight
// coalescing, then a real execution whose StatusOK result is cached.
func (s *Service) runJob(spec JobSpec) JobResult {
	fp := spec.Fingerprint()
	canon := spec.Canonical()
	if res, ok := s.cache.Get(fp, canon); ok {
		// A hit is provably the stored job's exact result: the canonical
		// strings matched, and a run is a pure function of its canonical
		// config. Never re-run.
		res.ID = spec.ID
		res.Cached = true
		return res
	}

	s.flightMu.Lock()
	if call, ok := s.flight[fp]; ok {
		s.flightMu.Unlock()
		<-call.done
		res := call.res
		res.ID = spec.ID
		res.Cached = true
		return res
	}
	call := &flightCall{done: make(chan struct{})}
	s.flight[fp] = call
	s.flightMu.Unlock()

	res, err := s.exec.Run(spec)
	if err != nil {
		res.Status = StatusError
		res.Error = err.Error()
	}
	if res.Status == StatusOK {
		s.cache.Put(fp, canon, res)
		if s.wal != nil {
			// Durability before visibility is not required here — the
			// cache is authoritative for this process — but the append is
			// fsynced before the result line reaches the client, so any
			// result a client observed survives a crash.
			s.wal.Append(fp, canon, res)
		}
	}
	call.res = res
	close(call.done)
	s.flightMu.Lock()
	delete(s.flight, fp)
	s.flightMu.Unlock()
	return res
}
