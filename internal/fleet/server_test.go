package fleet

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postBatch posts raw JSONL to a test service and decodes the response.
func postBatch(t *testing.T, ts *httptest.Server, body string) (int, http.Header, []JobResult) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, []JobResult{{Error: strings.TrimSpace(string(msg))}}
	}
	var results []JobResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var res JobResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading results: %v", err)
	}
	return resp.StatusCode, resp.Header, results
}

// mustService builds a running test service or fails the test.
func mustService(t *testing.T, opt ServerOptions) *Service {
	t.Helper()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return svc
}

func specLine(t *testing.T, spec JobSpec) string {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func TestServiceDedupeSkipsExecution(t *testing.T) {
	svc := mustService(t, ServerOptions{Workers: 2, Queue: 8})
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := validSpec()
	// Two identical jobs in one batch: one execution, the coalesced twin
	// reports cached.
	batch := specLine(t, spec) + specLine(t, spec)
	code, _, results := postBatch(t, ts, batch)
	if code != http.StatusOK || len(results) != 2 {
		t.Fatalf("code=%d results=%d, want 200 with 2 lines", code, len(results))
	}
	if n := svc.Executor().Executions(); n != 1 {
		t.Fatalf("identical batch ran %d executions, want 1", n)
	}
	cached := 0
	for _, r := range results {
		if r.Status != StatusOK {
			t.Fatalf("result %+v not ok", r)
		}
		if r.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("%d of 2 coalesced results cached, want exactly 1", cached)
	}

	// A repeat batch is a pure cache hit: zero new executions, identical
	// bits.
	_, _, repeat := postBatch(t, ts, specLine(t, spec))
	if n := svc.Executor().Executions(); n != 1 {
		t.Fatalf("cache hit re-executed (%d executions)", n)
	}
	if !repeat[0].Cached {
		t.Fatalf("repeat not served from cache: %+v", repeat[0])
	}
	fresh, err := (&Executor{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(fresh, repeat[0]); d != "" {
		t.Fatalf("cached result differs from a fresh run: %s", d)
	}

	// A genuinely different config does not hit the cache.
	other := validSpec()
	other.Seed = 2
	_, _, _ = postBatch(t, ts, specLine(t, other))
	if n := svc.Executor().Executions(); n != 2 {
		t.Fatalf("distinct config executed %d total, want 2", n)
	}
}

func TestServiceBackpressure429(t *testing.T) {
	// Queue bound 1: a 2-job batch cannot be admitted atomically.
	svc := mustService(t, ServerOptions{Workers: 1, Queue: 1})
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	a, b := validSpec(), validSpec()
	b.Seed = 2
	code, hdr, _ := postBatch(t, ts, specLine(t, a)+specLine(t, b))
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversized batch got %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("429 missing Retry-After header")
	}
	// Nothing was admitted: the pool never ran either job.
	if n := svc.Executor().Executions(); n != 0 {
		t.Fatalf("rejected batch still executed %d jobs", n)
	}
	// A batch that fits still succeeds afterwards.
	code, _, results := postBatch(t, ts, specLine(t, a))
	if code != http.StatusOK || results[0].Status != StatusOK {
		t.Fatalf("post-rejection batch failed: code=%d %+v", code, results)
	}
}

func TestServiceBatchTooLarge(t *testing.T) {
	svc := mustService(t, ServerOptions{Workers: 1, Queue: 8, MaxBatch: 2})
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	batch := strings.Repeat(specLine(t, validSpec()), 3)
	code, _, _ := postBatch(t, ts, batch)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("3-line batch with MaxBatch=2 got %d, want 413", code)
	}
}

func TestServiceMalformedLines(t *testing.T) {
	svc := mustService(t, ServerOptions{Workers: 1, Queue: 8})
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	batch := "this is not json\n" +
		`{"app":"nope","mode":"hybrid","id":"bad-app"}` + "\n" +
		specLine(t, validSpec())
	code, _, results := postBatch(t, ts, batch)
	if code != http.StatusOK {
		t.Fatalf("mixed batch got %d, want 200 (invalid lines are per-line results)", code)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	byIndex := map[int]JobResult{}
	for _, r := range results {
		byIndex[r.Index] = r
	}
	if r := byIndex[0]; r.Status != StatusInvalid || len(r.InvalidFields) == 0 {
		t.Errorf("line 0 (garbage): %+v, want invalid with detail", r)
	}
	if r := byIndex[1]; r.Status != StatusInvalid || r.ID != "bad-app" {
		t.Errorf("line 1 (bad app): %+v, want invalid echoing id", r)
	} else if r.InvalidFields[0].Field != "app" {
		t.Errorf("line 1 field = %q, want app", r.InvalidFields[0].Field)
	}
	if r := byIndex[2]; r.Status != StatusOK {
		t.Errorf("line 2 (valid): %+v, want ok", r)
	}
	// Only the valid line executed.
	if n := svc.Executor().Executions(); n != 1 {
		t.Errorf("mixed batch executed %d jobs, want 1", n)
	}

	// An all-garbage body is still a valid batch of invalid jobs; an empty
	// body is a client error.
	code, _, _ = postBatch(t, ts, "\n\n")
	if code != http.StatusBadRequest {
		t.Errorf("empty batch got %d, want 400", code)
	}
}

func TestServiceDrainSemantics(t *testing.T) {
	svc := mustService(t, ServerOptions{Workers: 1, Queue: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	svc.Drain() // blocks until idle; service refuses work afterwards

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	code, _, _ := postBatch(t, ts, specLine(t, validSpec()))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("batch after drain got %d, want 503", code)
	}
}

func TestServiceMetricsEndpoint(t *testing.T) {
	svc := mustService(t, ServerOptions{Workers: 1, Queue: 8})
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	postBatch(t, ts, specLine(t, validSpec()))
	postBatch(t, ts, specLine(t, validSpec())) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"parade_fleet_jobs_total{status=\"ok\"} 2",
		"parade_fleet_executions_total 1",
		"parade_fleet_jobs_cached_total 1",
		"parade_fleet_cache_hits_total 1",
		"parade_fleet_queue_depth 0",
		"parade_fleet_job_latency_seconds_count 1",
		"parade_sim_msgs_sent_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestReplayAgainstTestServer(t *testing.T) {
	if testing.Short() {
		t.Skip("replay matrix in -short mode")
	}
	svc := mustService(t, ServerOptions{Workers: 2, Queue: 64})
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sum, err := Replay(ts.URL, ReplayOptions{
		Apps:     []string{"ep", "lockmix"},
		Profiles: []string{"drop"},
		Crashes:  []string{"1@1"},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// 2 apps × 2 modes × (baseline + drop + 1@1) = 12 cells.
	if sum.Cells != 12 || sum.Mismatches != 0 {
		t.Fatalf("summary %+v, want 12 cells and 0 mismatches", sum)
	}
	if sum.ExecDelta != 0 || sum.CacheHits != sum.Cells {
		t.Fatalf("repeat batch not fully cached: %+v", sum)
	}
}
