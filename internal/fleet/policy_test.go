package fleet

import (
	"errors"
	"testing"

	"parade/internal/hlrc"
)

// TestJobSpecPolicyField covers the protocol-policy knob end to end:
// validation, job identity, config construction (including the derived
// directive threshold), and matrix expansion.
func TestJobSpecPolicyField(t *testing.T) {
	// Every accepted policy name validates; an unknown one is a typed
	// field error.
	for _, pol := range hlrc.PolicyNames() {
		s := validSpec()
		s.Policy = pol
		if err := s.Validate(); err != nil {
			t.Fatalf("policy %q: Validate() = %v", pol, err)
		}
	}
	bad := validSpec()
	bad.Policy = "eager"
	var se *JobSpecError
	if err := bad.Validate(); !errors.As(err, &se) || len(se.Fields) != 1 || se.Fields[0].Field != "policy" {
		t.Fatalf("unknown policy: Validate() = %v, want one policy field error", bad.Validate())
	}

	// The policy is part of job identity; the legacy empty string
	// fingerprints like the pre-policy schema so old job caches stay
	// valid.
	base, adp := validSpec(), validSpec()
	adp.Policy = hlrc.PolicyAdaptive
	if base.Fingerprint() == adp.Fingerprint() {
		t.Fatal("adaptive policy did not change the job fingerprint")
	}

	// BuildConfig wires the policy through and re-derives the directive
	// threshold for policied jobs (AutoThreshold), leaving legacy jobs'
	// configs untouched.
	cfgBase, err := base.Normalize().BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfgAdp, err := adp.Normalize().BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfgAdp.Policy != hlrc.PolicyAdaptive {
		t.Fatalf("BuildConfig policy = %q", cfgAdp.Policy)
	}
	if cfgBase.Policy != "" {
		t.Fatalf("legacy BuildConfig policy = %q, want empty", cfgBase.Policy)
	}
	if cfgAdp.SmallThreshold == cfgBase.SmallThreshold {
		t.Fatalf("adaptive job kept the fixed threshold %d; AutoThreshold never fired", cfgAdp.SmallThreshold)
	}

	// Matrix expansion: Policies multiplies the grid; omitting it keeps
	// the legacy single-policy expansion.
	m := SpecMatrix{
		Apps: []string{"ep"}, Modes: []string{"hybrid"},
		Policies: []string{"", hlrc.PolicyAdaptive},
	}
	specs := m.Expand()
	if len(specs) != 2 {
		t.Fatalf("Expand() produced %d specs, want 2", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		seen[s.Policy] = true
	}
	if !seen[""] || !seen[hlrc.PolicyAdaptive] {
		t.Fatalf("expanded policies = %v", seen)
	}
}
