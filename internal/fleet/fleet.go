// Package fleet is the long-running sweep service behind parade-serve:
// batches of simulation jobs (a scenario matrix of app × mode × fabric ×
// fault profile × crash schedule × node count × lanes) arrive over
// HTTP/JSONL, are validated into typed JobSpecs, deduplicated by a
// canonical config fingerprint against an LRU result cache, and executed
// on a bounded worker pool with work-stealing admission. Results stream
// back as JSONL; service health and throughput are exported on a
// Prometheus-style /metrics endpoint wired to internal/obs.
//
// The dedupe cache leans on the determinism the rest of the repo
// enforces: a run is a pure function of its configuration (bit-identical
// at any lane count, GOMAXPROCS, fault interleaving, or host schedule —
// DESIGN.md §6h), so two jobs whose canonical configurations are equal
// provably have equal results, and a cache hit can return the stored
// report without re-execution. See SERVING.md for the serving surface.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"parade/internal/core"
	"parade/internal/harness"
	"parade/internal/hlrc"
	"parade/internal/netsim"
)

// JobSpec is one simulation job as submitted by a client: a cell of the
// scenario matrix. The zero values of the optional fields select the
// acceptance matrices' defaults (4 nodes, 1 thread per node, the VIA
// fabric, seed 1, no faults, no crashes, legacy kernel).
type JobSpec struct {
	// ID is an optional client handle echoed verbatim on the result line.
	// It does not participate in the config fingerprint.
	ID string `json:"id,omitempty"`
	// App names the kernel: helmholtz, ep, cg, md, quad, or lockmix.
	App string `json:"app"`
	// Mode is the directive-execution mode: "hybrid" (the ParADE model)
	// or "sdsm" (the conventional KDSM baseline).
	Mode string `json:"mode"`
	// Fabric is the interconnect preset: "via" (default) or "tcp".
	Fabric string `json:"fabric,omitempty"`
	// Nodes is the cluster size (default 4).
	Nodes int `json:"nodes,omitempty"`
	// ThreadsPerNode is the computational thread count per node
	// (default 1, the matrices' configuration).
	ThreadsPerNode int `json:"threads_per_node,omitempty"`
	// Lanes selects the parallel simulation kernel: 0 (default) is the
	// legacy single-loop kernel, N > 0 runs per-node event lanes with at
	// most N lane workers. Any N > 0 produces bit-identical results, so
	// the config fingerprint collapses all positive values.
	Lanes int `json:"lanes,omitempty"`
	// Seed drives the fault plane (default 1). It mirrors the chaos
	// matrix's seed knob: the simulation's own seed stays at the
	// configuration default so fault-free runs are comparable across
	// seeds.
	Seed int64 `json:"seed,omitempty"`
	// FaultProfile names a built-in netsim profile (drop, dup, reorder,
	// straggler, chaos); empty runs the ideal fabric.
	FaultProfile string `json:"fault_profile,omitempty"`
	// Crash is a deterministic crash schedule in parade-run syntax:
	// comma-separated node@barrier events, e.g. "1@1" or "1@1,1@3".
	// Every event restarts (the full runtime cannot shrink).
	Crash string `json:"crash,omitempty"`
	// LockCaching enables lazy-release lock tokens. The lockmix kernel
	// always runs with them (the matrices' configuration) regardless of
	// this field.
	LockCaching bool `json:"lock_caching,omitempty"`
	// Policy selects the hlrc protocol policy: "" (legacy, the default),
	// "invalidate", "update", or "adaptive" (per-page online
	// classification; also derives the directive threshold from the
	// fabric). The policy sweep submits one job per policy per cell.
	Policy string `json:"policy,omitempty"`
	// Hetero names a heterogeneous cluster profile (netsim.HeteroByName):
	// "uniform" (or empty, the default), "fasthalf", or "slow1". The
	// profile is part of the machine description and participates in the
	// config fingerprint.
	Hetero string `json:"hetero,omitempty"`
	// DeadlineMS, when positive, bounds the job's host wall-clock
	// execution time in milliseconds: a run over budget is cooperatively
	// canceled by the simulation kernel and returns a typed canceled
	// result (StatusCanceled) instead of hanging a worker. The server's
	// own -job-deadline watchdog, when set, caps this further. Execution
	// control, not simulation identity: it does not participate in
	// Canonical() or the config fingerprint — a cell that completed
	// under any deadline is the same cell.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// FieldError locates one invalid field of a JobSpec.
type FieldError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

// JobSpecError is the typed validation error for a malformed JobSpec,
// with field-level detail (errors.As-matchable, mirroring
// core.LaneConfigError).
type JobSpecError struct {
	// Index is the zero-based line number of the spec within its batch
	// (-1 outside a batch context).
	Index  int
	Fields []FieldError
}

func (e *JobSpecError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: invalid job spec")
	if e.Index >= 0 {
		fmt.Fprintf(&b, " (line %d)", e.Index)
	}
	for i, f := range e.Fields {
		if i == 0 {
			b.WriteString(": ")
		} else {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %s", f.Field, f.Reason)
	}
	return b.String()
}

// Normalize returns the spec with defaulted fields filled in: the
// canonical form that validation, fingerprinting, and execution all see.
func (s JobSpec) Normalize() JobSpec {
	if s.Fabric == "" {
		s.Fabric = "via"
	}
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.ThreadsPerNode == 0 {
		s.ThreadsPerNode = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if app, err := harness.MatrixAppByName(s.App); err == nil && app.LockCaching {
		s.LockCaching = true
	}
	if s.Hetero == "uniform" {
		s.Hetero = "" // the explicit name for the default machine
	}
	s.Crash = canonicalCrash(s.Crash)
	return s
}

// canonicalCrash rewrites a crash spec into canonical text: events
// trimmed and joined with single commas. Unparseable specs are returned
// verbatim (validation reports them; canonicalization must not mask the
// error).
func canonicalCrash(spec string) string {
	events, err := parseCrash(spec)
	if err != nil || len(events) == 0 {
		return strings.TrimSpace(spec)
	}
	parts := make([]string, len(events))
	for i, ev := range events {
		parts[i] = fmt.Sprintf("%d@%d", ev.Node, ev.Barrier)
	}
	return strings.Join(parts, ",")
}

// parseCrash parses parade-run's node@barrier[,node@barrier...] syntax.
// An empty spec yields no events.
func parseCrash(spec string) ([]hlrc.CrashEvent, error) {
	var events []hlrc.CrashEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nodeStr, barStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad crash event %q (want node@barrier, e.g. 1@2)", part)
		}
		node, err1 := strconv.Atoi(nodeStr)
		barrier, err2 := strconv.Atoi(barStr)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad crash event %q (want node@barrier, e.g. 1@2)", part)
		}
		events = append(events, hlrc.CrashEvent{Node: node, Barrier: barrier, Restart: true})
	}
	return events, nil
}

// Validate checks the normalized spec and returns nil or a
// *JobSpecError with one entry per invalid field.
func (s JobSpec) Validate() error {
	s = s.Normalize()
	var fields []FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	if s.App == "" {
		add("app", "required (valid: %s)", strings.Join(harness.MatrixAppNames(), ", "))
	} else if _, err := harness.MatrixAppByName(s.App); err != nil {
		add("app", "unknown app %q (valid: %s)", s.App, strings.Join(harness.MatrixAppNames(), ", "))
	}
	switch s.Mode {
	case "":
		add("mode", "required (valid: %s)", strings.Join(harness.MatrixModes(), ", "))
	case "hybrid", "sdsm":
	default:
		add("mode", "unknown mode %q (valid: %s)", s.Mode, strings.Join(harness.MatrixModes(), ", "))
	}
	if _, err := netsim.FabricByName(s.Fabric); err != nil {
		add("fabric", "unknown fabric %q (valid: via, tcp)", s.Fabric)
	}
	if s.Nodes < 1 {
		add("nodes", "must be >= 1, got %d", s.Nodes)
	}
	if s.ThreadsPerNode < 1 {
		add("threads_per_node", "must be >= 1, got %d", s.ThreadsPerNode)
	}
	if s.Lanes < 0 {
		add("lanes", "must be >= 0 (0 disables event lanes), got %d", s.Lanes)
	}
	if s.Seed < 0 {
		add("seed", "must be positive, got %d", s.Seed)
	}
	if s.FaultProfile != "" {
		if _, err := netsim.ProfileByName(s.FaultProfile, s.Seed); err != nil {
			add("fault_profile", "unknown fault profile %q (valid: %s)",
				s.FaultProfile, strings.Join(profileNames(), ", "))
		}
	}
	if !hlrc.ValidPolicy(s.Policy) {
		add("policy", "unknown policy %q (valid: %s, or empty for legacy)",
			s.Policy, strings.Join(hlrc.PolicyNames()[1:], ", "))
	}
	if s.DeadlineMS < 0 {
		add("deadline_ms", "must be >= 0 (0 disables the job deadline), got %d", s.DeadlineMS)
	}
	if s.Nodes >= 1 {
		if _, err := netsim.HeteroByName(s.Hetero, s.Nodes); err != nil {
			add("hetero", "unknown hetero profile %q (valid: uniform, fasthalf, slow1, or empty)", s.Hetero)
		}
	}
	if events, err := parseCrash(s.Crash); err != nil {
		add("crash", "%v", err)
	} else if len(events) > 0 {
		if s.Nodes >= 1 {
			plan := &hlrc.CrashPlan{Events: events}
			if err := plan.Validate(s.Nodes); err != nil {
				add("crash", "%v", err)
			}
		}
	}
	if fields == nil {
		return nil
	}
	return &JobSpecError{Index: -1, Fields: fields}
}

// profileNames lists the built-in fault profiles in canonical order.
func profileNames() []string {
	profs := netsim.Profiles(1)
	names := make([]string, len(profs))
	for i, p := range profs {
		names[i] = p.Name
	}
	return names
}

// Canonical returns the canonical identity string of the spec: the
// normalized fields in fixed order, with the lane count collapsed to its
// regime (legacy vs event lanes — every positive lane count executes the
// identical event schedule, DESIGN.md §6h, so jobs differing only in
// worker count are the same simulation). Two specs are the same job if
// and only if their canonical strings are equal; the FNV fingerprint
// below indexes this string, and the cache compares the full string on
// every hit so a 64-bit hash collision can never alias two jobs.
func (s JobSpec) Canonical() string {
	s = s.Normalize()
	laneRegime := 0
	if s.Lanes > 0 {
		laneRegime = 1
	}
	c := fmt.Sprintf(
		"parade-fleet/v1 app=%s mode=%s fabric=%s nodes=%d threads=%d lanes=%d seed=%d lockcache=%t faults=%s crash=%s policy=%s",
		s.App, s.Mode, s.Fabric, s.Nodes, s.ThreadsPerNode, laneRegime,
		s.Seed, s.LockCaching, s.FaultProfile, s.Crash, s.Policy)
	if s.Hetero != "" {
		// Appended only when set, so pre-hetero fingerprints (and cached
		// results keyed by them) stay valid for the uniform cluster.
		c += " hetero=" + s.Hetero
	}
	return c
}

// Fingerprint returns the canonical FNV-1a config fingerprint: the
// 64-bit hash of Canonical(). It is the dedupe key of the result cache.
func (s JobSpec) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.Canonical()))
	return h.Sum64()
}

// FingerprintHex is Fingerprint formatted as fixed-width hex (the form
// results and logs carry).
func (s JobSpec) FingerprintHex() string {
	return fmt.Sprintf("%016x", s.Fingerprint())
}

// BuildConfig lowers the validated spec into the cluster configuration
// its run executes. It assumes Validate passed.
func (s JobSpec) BuildConfig() (core.Config, error) {
	s = s.Normalize()
	cfg, err := harness.MatrixModeConfig(s.Mode, s.Nodes, s.ThreadsPerNode)
	if err != nil {
		return core.Config{}, err
	}
	fabric, err := netsim.FabricByName(s.Fabric)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Fabric = fabric
	cfg.Lanes = s.Lanes
	if s.Policy != "" {
		// Re-derive the directive threshold under the requested policy:
		// MatrixModeConfig froze it at the legacy default, and the
		// adaptive policy computes its own from the fabric and cost model.
		cfg.Policy = s.Policy
		cfg.SmallThreshold = 0
		cfg = cfg.WithDefaults()
	}
	if s.LockCaching {
		cfg.LockCaching = true
	}
	if s.FaultProfile != "" {
		prof, err := netsim.ProfileByName(s.FaultProfile, s.Seed)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Faults = &prof
	}
	events, err := parseCrash(s.Crash)
	if err != nil {
		return core.Config{}, err
	}
	if len(events) > 0 {
		cfg.Crash = &hlrc.CrashPlan{Events: events}
	}
	hetero, err := netsim.HeteroByName(s.Hetero, s.Nodes)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Hetero = hetero
	return cfg, nil
}

// SpecMatrix expands a scenario matrix into the cross product of its
// dimensions, in canonical order. Empty dimensions select the defaults
// noted on each field.
type SpecMatrix struct {
	Apps     []string // default: all matrix apps
	Modes    []string // default: hybrid, sdsm
	Fabrics  []string // default: via
	Profiles []string // default: "" (ideal fabric) only
	Crashes  []string // default: "" (no crashes) only
	Nodes    []int    // default: 4
	Lanes    []int    // default: 0
	Policies []string // default: "" (legacy) only
	Seed     int64    // default: 1
}

// Expand returns the job specs of the matrix's cross product.
func (m SpecMatrix) Expand() []JobSpec {
	apps := m.Apps
	if len(apps) == 0 {
		apps = harness.MatrixAppNames()
	}
	modes := m.Modes
	if len(modes) == 0 {
		modes = harness.MatrixModes()
	}
	orDefault := func(vals []string) []string {
		if len(vals) == 0 {
			return []string{""}
		}
		return vals
	}
	fabrics := m.Fabrics
	if len(fabrics) == 0 {
		fabrics = []string{"via"}
	}
	profiles := orDefault(m.Profiles)
	crashes := orDefault(m.Crashes)
	nodes := m.Nodes
	if len(nodes) == 0 {
		nodes = []int{4}
	}
	lanes := m.Lanes
	if len(lanes) == 0 {
		lanes = []int{0}
	}
	policies := orDefault(m.Policies)
	var specs []JobSpec
	for _, app := range apps {
		for _, mode := range modes {
			for _, fabric := range fabrics {
				for _, prof := range profiles {
					for _, crash := range crashes {
						if prof != "" && crash != "" {
							// The acceptance matrices exercise link faults and
							// crash-stop failures separately; mirror that.
							continue
						}
						for _, n := range nodes {
							for _, l := range lanes {
								for _, pol := range policies {
									specs = append(specs, JobSpec{
										App: app, Mode: mode, Fabric: fabric,
										FaultProfile: prof, Crash: crash,
										Nodes: n, Lanes: l, Seed: m.Seed,
										Policy: pol,
									}.Normalize())
								}
							}
						}
					}
				}
			}
		}
	}
	sort.SliceStable(specs, func(i, j int) bool {
		return specs[i].Canonical() < specs[j].Canonical()
	})
	return specs
}
