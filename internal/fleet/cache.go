package fleet

import (
	"container/list"
	"sync"
)

// Cache is the LRU result cache keyed by the canonical config
// fingerprint. A hit is provably the same result a fresh run would
// produce: runs are pure functions of their canonical configuration, and
// the cache stores the full canonical string alongside each entry and
// compares it on every lookup, so even a 64-bit fingerprint collision
// cannot alias two distinct jobs (a collision counts as a miss and is
// tallied).
//
// Cache is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[uint64]*list.Element

	hits       int64
	misses     int64
	evictions  int64
	collisions int64
}

type cacheEntry struct {
	key       uint64
	canonical string
	result    JobResult
}

// NewCache creates a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[uint64]*list.Element),
	}
}

// Get looks up the result for a spec with the given fingerprint and
// canonical string. On a hit the entry is promoted to most recently
// used and a copy of the stored result is returned.
func (c *Cache) Get(fp uint64, canonical string) (JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		c.misses++
		return JobResult{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.canonical != canonical {
		// Fingerprint collision between distinct canonical configs: the
		// exactness guard. Treated as a miss; the colliding newcomer will
		// overwrite on Put.
		c.collisions++
		c.misses++
		return JobResult{}, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return ent.result, true
}

// Put stores a result under its spec's fingerprint, evicting the least
// recently used entry when full. Only StatusOK results are worth
// storing; callers enforce that.
func (c *Cache) Put(fp uint64, canonical string, res JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		ent := el.Value.(*cacheEntry)
		ent.canonical = canonical
		ent.result = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[fp] = c.order.PushFront(&cacheEntry{key: fp, canonical: canonical, result: res})
}

// Entries snapshots the live cache contents in LRU order (least
// recently used first), the order a WAL compaction should persist them
// in so a future replay re-creates the same recency ordering.
func (c *Cache) Entries() []WALRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := make([]WALRecord, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*cacheEntry)
		recs = append(recs, WALRecord{FP: ent.key, Canonical: ent.canonical, Result: ent.result})
	}
	return recs
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Collisions int64
	Len        int
	Capacity   int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Collisions: c.collisions,
		Len: c.order.Len(), Capacity: c.capacity,
	}
}
