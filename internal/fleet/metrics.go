package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"parade/internal/obs"
)

// Metrics is the service-side registry behind /metrics: job and batch
// counters, queue gauges, cache statistics, a per-job host-latency
// histogram, and the cumulative simulation activity of every executed
// job — the per-run internal/obs metrics folded into service totals.
// obs.Histogram is the histogram implementation here too, so the
// Prometheus rendering shares the simulator's log2 bucket scheme.
//
// Metrics is safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	jobs       map[string]int64 // by status: ok, invalid, error
	cachedJobs int64
	batches    int64
	rejected   int64 // batches refused with 429

	queued   int
	inFlight int

	jobLatency obs.Histogram // host ns per executed job

	// WAL replay accounting, set once per process start by WALReplayDone.
	walReplayRecords   int64
	walReplayTruncated int64
	walReplayHist      obs.Histogram // host ns per replay

	// Cumulative simulation activity across all executed jobs, folded
	// from each run's obs registry.
	simCounters map[string]int64
	simHists    map[string]*obs.Histogram
	simHistUnit map[string]string
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobs:        map[string]int64{},
		simCounters: map[string]int64{},
		simHists:    map[string]*obs.Histogram{},
		simHistUnit: map[string]string{},
	}
}

// JobDone tallies one finished job.
func (m *Metrics) JobDone(status string, cached bool, hostNs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[status]++
	if cached {
		m.cachedJobs++
		return
	}
	if status == StatusOK || status == StatusError {
		m.jobLatency.Observe(hostNs)
	}
}

// BatchDone tallies one batch admission outcome.
func (m *Metrics) BatchDone(rejected bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	if rejected {
		m.rejected++
	}
}

// SetQueue records the pool gauges.
func (m *Metrics) SetQueue(queued, inFlight int) {
	m.mu.Lock()
	m.queued, m.inFlight = queued, inFlight
	m.mu.Unlock()
}

// WALReplayDone records one startup replay of the durable result store.
func (m *Metrics) WALReplayDone(rep WALReplay) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.walReplayRecords += int64(rep.Records)
	m.walReplayTruncated += rep.TruncatedBytes
	m.walReplayHist.Observe(rep.Elapsed.Nanoseconds())
}

// FoldRun folds one executed run's observability metrics into the
// service totals: every per-node counter summed into a
// parade_sim_<name>_total series and every non-empty latency/size
// histogram merged into a parade_sim_<name> histogram.
func (m *Metrics) FoldRun(run *obs.Metrics) {
	if run == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for n := 0; n < run.Nodes(); n++ {
		c := run.Node(n)
		m.simCounters["read_faults"] += c.ReadFaults
		m.simCounters["write_faults"] += c.WriteFaults
		m.simCounters["page_fetches"] += c.FetchesIssued
		m.simCounters["diffs_created"] += c.DiffsCreated
		m.simCounters["diff_bytes"] += c.DiffBytes
		m.simCounters["sdsm_barriers"] += c.Barriers
		m.simCounters["lock_requests"] += c.LockRequests
		m.simCounters["msgs_sent"] += c.MsgsSent
		m.simCounters["bytes_sent"] += c.BytesSent
		m.simCounters["collectives"] += c.Collectives
		m.simCounters["directives"] += c.Directives
		m.simCounters["rel_retransmits"] += c.Retransmits
		m.simCounters["rel_timeouts"] += c.Timeouts
		m.simCounters["task_spawned"] += c.TasksSpawned
		m.simCounters["task_stolen"] += c.TasksStolen
		m.simCounters["crash_injected"] += c.Crashes
		m.simCounters["ckpt_msgs"] += c.CkptMsgs
		m.simCounters["recovery_runs"] += c.Recovered
	}
	for id := 0; id < obs.NumHists; id++ {
		h := run.Hist(id)
		if h.Count == 0 {
			continue
		}
		name := obs.HistName(id)
		agg, ok := m.simHists[name]
		if !ok {
			agg = &obs.Histogram{}
			m.simHists[name] = agg
			unit := "ns"
			if name == "diff_size" {
				unit = "bytes"
			}
			m.simHistUnit[name] = unit
		}
		agg.Merge(&h)
	}
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). cache may be nil when the service runs
// without a cache; exec is the Executor's counter snapshot (executions
// is the cache-skip probe); wal is the zero value when the service runs
// without a durable result store.
func (m *Metrics) WritePrometheus(w io.Writer, cache *Cache, exec ExecStats, wal WALStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("parade_fleet_queue_depth", "Jobs admitted and waiting for a worker.", float64(m.queued))
	gauge("parade_fleet_in_flight", "Jobs currently executing.", float64(m.inFlight))

	fmt.Fprintf(w, "# HELP parade_fleet_jobs_total Finished jobs by status.\n# TYPE parade_fleet_jobs_total counter\n")
	for _, status := range Statuses() {
		fmt.Fprintf(w, "parade_fleet_jobs_total{status=%q} %d\n", status, m.jobs[status])
	}
	counter("parade_fleet_jobs_cached_total", "Jobs served from the dedupe cache without execution.", m.cachedJobs)
	counter("parade_fleet_batches_total", "Batches received.", m.batches)
	counter("parade_fleet_batches_rejected_total", "Batches refused with 429 (queue full).", m.rejected)
	counter("parade_fleet_executions_total", "Simulations actually executed (the cache-skip probe).",
		exec.Executions)
	counter("parade_fleet_jobs_retried_total", "Job attempts repeated after a recovered panic.", exec.Retries)
	counter("parade_fleet_jobs_panicked_total", "Jobs whose attempts exhausted on panics.", exec.Panics)
	counter("parade_fleet_jobs_canceled_total", "Jobs canceled by deadline or cancellation hook.", exec.Cancels)
	counter("parade_fleet_jobs_quarantined_total", "Jobs refused because their config is quarantined.", exec.Quarantined)

	counter("parade_fleet_wal_appends_total", "Results durably appended to the WAL.", wal.Appends)
	counter("parade_fleet_wal_append_errors_total", "WAL append failures (result served but not durable).", wal.AppendErrors)
	counter("parade_fleet_wal_compactions_total", "WAL rewrites to one record per fingerprint.", wal.Compactions)
	counter("parade_fleet_wal_replayed_records_total", "Valid WAL records replayed into the cache at startup.", m.walReplayRecords)
	counter("parade_fleet_wal_replay_truncated_bytes_total", "Corrupt WAL tail bytes truncated at startup.", m.walReplayTruncated)
	if m.walReplayHist.Count > 0 {
		writeHist(w, "parade_fleet_wal_replay_latency_seconds", "Host time to replay the WAL at startup.",
			&m.walReplayHist, 1e-9)
	}

	if cache != nil {
		cs := cache.Stats()
		counter("parade_fleet_cache_hits_total", "Dedupe cache hits.", cs.Hits)
		counter("parade_fleet_cache_misses_total", "Dedupe cache misses.", cs.Misses)
		counter("parade_fleet_cache_evictions_total", "LRU evictions.", cs.Evictions)
		counter("parade_fleet_cache_collisions_total", "Fingerprint collisions caught by the canonical-string guard.", cs.Collisions)
		gauge("parade_fleet_cache_entries", "Resident cache entries.", float64(cs.Len))
		ratio := 0.0
		if cs.Hits+cs.Misses > 0 {
			ratio = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		}
		gauge("parade_fleet_cache_hit_ratio", "Hits over lookups since start.", ratio)
	}

	writeHist(w, "parade_fleet_job_latency_seconds", "Host execution time per job (cache hits excluded).",
		&m.jobLatency, 1e-9)

	counters := make([]string, 0, len(m.simCounters))
	for name := range m.simCounters {
		counters = append(counters, name)
	}
	sort.Strings(counters)
	for _, name := range counters {
		counter("parade_sim_"+name+"_total",
			"Cumulative simulated-cluster activity across executed jobs (internal/obs).",
			m.simCounters[name])
	}

	hists := make([]string, 0, len(m.simHists))
	for name := range m.simHists {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		scale := 1e-9
		promName := "parade_sim_" + name + "_seconds"
		if m.simHistUnit[name] == "bytes" {
			scale = 1
			promName = "parade_sim_" + name + "_bytes"
		}
		writeHist(w, promName,
			"Merged per-run internal/obs histogram (virtual time for latencies).",
			m.simHists[name], scale)
	}
}

// writeHist renders one obs.Histogram as a Prometheus histogram: the
// log2 bucket uppers become cumulative le bounds scaled by scale.
func writeHist(w io.Writer, name, help string, h *obs.Histogram, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLe(float64(obs.BucketUpper(i))*scale), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.Sum)*scale)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

func formatLe(v float64) string { return fmt.Sprintf("%g", v) }
