package fleet

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"parade/internal/harness"
	"parade/internal/obs"
)

// Job result statuses.
const (
	// StatusOK marks a job that executed (or was served from cache).
	StatusOK = "ok"
	// StatusInvalid marks a job whose spec failed validation; the result
	// line carries the field-level detail.
	StatusInvalid = "invalid"
	// StatusError marks a job whose simulation returned an error.
	StatusError = "error"
)

// JobResult is one JSONL result line: the echo of the job's identity,
// its status, and the run's fingerprints. MemHash is Report.MemHash —
// the engine's StateFingerprint over the final DSM state — and
// StateFingerprint folds the result bits, MemHash, and the virtual
// clock into one run-identity hash: two runs agree there if and only if
// they are bit-identical in every observable the acceptance matrices
// compare.
type JobResult struct {
	ID     string `json:"id,omitempty"`
	Index  int    `json:"index"`
	Status string `json:"status"`
	// Spec echo (normalized form).
	App    string `json:"app,omitempty"`
	Mode   string `json:"mode,omitempty"`
	Config string `json:"config,omitempty"` // full canonical config string
	// Fingerprint is the canonical FNV config fingerprint (the dedupe
	// key), as fixed-width hex.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Cached reports that the result was served from the dedupe cache
	// (or coalesced onto an identical in-flight job) without re-running.
	Cached bool `json:"cached"`
	// ResultBits is the exact-bits fingerprint of the application's
	// result fields (hex of each float64's bits).
	ResultBits string `json:"result_bits,omitempty"`
	// MemHash is Report.MemHash, the engine StateFingerprint of the
	// final DSM state, as fixed-width hex.
	MemHash string `json:"mem_hash,omitempty"`
	// StateFingerprint is the FNV-1a fold of ResultBits, MemHash, and
	// TimeNs: the single value identity assertions compare.
	StateFingerprint string `json:"state_fingerprint,omitempty"`
	// TimeNs is the virtual time at which the program finished.
	TimeNs int64 `json:"time_ns,omitempty"`
	// KernelNs is the virtual time of the timed kernel region.
	KernelNs int64 `json:"kernel_ns,omitempty"`
	// HostNs is the wall-clock execution time of the run that produced
	// this result (the original run's, when served from cache).
	HostNs int64 `json:"host_ns,omitempty"`
	// Error carries the run error for StatusError.
	Error string `json:"error,omitempty"`
	// InvalidFields carries the field-level detail for StatusInvalid.
	InvalidFields []FieldError `json:"invalid_fields,omitempty"`
}

// foldState computes StateFingerprint from the run observables.
func foldState(resultBits, memHash string, timeNs int64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", resultBits, memHash, timeNs)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Executor runs job specs in process. It always executes — deduplication
// lives in Service — and counts executions, so tests and the replay
// harness can prove that cache hits skip it.
type Executor struct {
	executions atomic.Int64

	// Obs, when non-nil, is called with each run's observability metrics
	// after the run completes (the Service folds them into /metrics).
	Obs func(m *obs.Metrics)
}

// Executions returns the number of simulations actually run — the
// run-count probe behind the "cache hits never re-execute" tests.
func (e *Executor) Executions() int64 { return e.executions.Load() }

// Run executes the spec's simulation and returns its result. Invalid
// specs are reported as StatusInvalid results (never executed); run
// errors as StatusError. The returned error is non-nil only for
// programming errors (a spec that validated but cannot be lowered).
func (e *Executor) Run(spec JobSpec) (JobResult, error) {
	spec = spec.Normalize()
	res := JobResult{
		ID:          spec.ID,
		App:         spec.App,
		Mode:        spec.Mode,
		Config:      spec.Canonical(),
		Fingerprint: spec.FingerprintHex(),
	}
	if err := spec.Validate(); err != nil {
		se := err.(*JobSpecError)
		res.Status = StatusInvalid
		res.InvalidFields = se.Fields
		return res, nil
	}
	cfg, err := spec.BuildConfig()
	if err != nil {
		return res, fmt.Errorf("fleet: lowering validated spec: %w", err)
	}
	app, err := harness.MatrixAppByName(spec.App)
	if err != nil {
		return res, fmt.Errorf("fleet: lowering validated spec: %w", err)
	}
	var rec *obs.Recorder
	if e.Obs != nil {
		rec = obs.New(cfg.Nodes)
		cfg.Obs = rec
	}
	e.executions.Add(1)
	start := time.Now()
	bits, kernel, report, err := app.Run(cfg)
	res.HostNs = time.Since(start).Nanoseconds()
	if err != nil {
		res.Status = StatusError
		res.Error = err.Error()
		return res, nil
	}
	res.Status = StatusOK
	res.ResultBits = bits
	res.MemHash = fmt.Sprintf("%016x", report.MemHash)
	res.TimeNs = int64(report.Time)
	res.KernelNs = int64(kernel)
	res.StateFingerprint = foldState(res.ResultBits, res.MemHash, res.TimeNs)
	if e.Obs != nil {
		e.Obs(rec.Metrics())
	}
	return res, nil
}
