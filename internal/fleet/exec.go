package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"parade/internal/core"
	"parade/internal/harness"
	"parade/internal/obs"
	"parade/internal/sim"
)

// Job result statuses.
const (
	// StatusOK marks a job that executed (or was served from cache).
	StatusOK = "ok"
	// StatusInvalid marks a job whose spec failed validation; the result
	// line carries the field-level detail.
	StatusInvalid = "invalid"
	// StatusError marks a job whose simulation returned an error.
	StatusError = "error"
	// StatusCanceled marks a job aborted by its deadline (the spec's
	// deadline_ms or the server's job watchdog) or dropped by a killed
	// server before it ran.
	StatusCanceled = "canceled"
	// StatusPanic marks a job whose worker panicked on every attempt; the
	// result carries the recovered value and stack. The panic never
	// escapes the worker — the batch and the process keep serving.
	StatusPanic = "panic"
	// StatusQuarantined marks a job refused without execution because its
	// fingerprint previously exhausted its panic-retry budget.
	StatusQuarantined = "quarantined"
)

// Statuses lists every job status in canonical order (the /metrics
// rendering order).
func Statuses() []string {
	return []string{StatusOK, StatusInvalid, StatusError, StatusCanceled, StatusPanic, StatusQuarantined}
}

// JobResult is one JSONL result line: the echo of the job's identity,
// its status, and the run's fingerprints. MemHash is Report.MemHash —
// the engine's StateFingerprint over the final DSM state — and
// StateFingerprint folds the result bits, MemHash, and the virtual
// clock into one run-identity hash: two runs agree there if and only if
// they are bit-identical in every observable the acceptance matrices
// compare.
type JobResult struct {
	ID     string `json:"id,omitempty"`
	Index  int    `json:"index"`
	Status string `json:"status"`
	// Spec echo (normalized form).
	App    string `json:"app,omitempty"`
	Mode   string `json:"mode,omitempty"`
	Config string `json:"config,omitempty"` // full canonical config string
	// Fingerprint is the canonical FNV config fingerprint (the dedupe
	// key), as fixed-width hex.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Cached reports that the result was served from the dedupe cache
	// (or coalesced onto an identical in-flight job) without re-running.
	Cached bool `json:"cached"`
	// ResultBits is the exact-bits fingerprint of the application's
	// result fields (hex of each float64's bits).
	ResultBits string `json:"result_bits,omitempty"`
	// MemHash is Report.MemHash, the engine StateFingerprint of the
	// final DSM state, as fixed-width hex.
	MemHash string `json:"mem_hash,omitempty"`
	// StateFingerprint is the FNV-1a fold of ResultBits, MemHash, and
	// TimeNs: the single value identity assertions compare.
	StateFingerprint string `json:"state_fingerprint,omitempty"`
	// TimeNs is the virtual time at which the program finished (for
	// StatusCanceled, the virtual time reached before the abort).
	TimeNs int64 `json:"time_ns,omitempty"`
	// KernelNs is the virtual time of the timed kernel region.
	KernelNs int64 `json:"kernel_ns,omitempty"`
	// HostNs is the wall-clock execution time of the run that produced
	// this result (the original run's, when served from cache),
	// including retried attempts.
	HostNs int64 `json:"host_ns,omitempty"`
	// Attempts is the number of execution attempts the result took
	// (> 1 after panic retries; omitted for cached and invalid results).
	Attempts int `json:"attempts,omitempty"`
	// Error carries the failure detail for StatusError, StatusCanceled,
	// StatusPanic, and StatusQuarantined.
	Error string `json:"error,omitempty"`
	// InvalidFields carries the field-level detail for StatusInvalid.
	InvalidFields []FieldError `json:"invalid_fields,omitempty"`
}

// foldState computes StateFingerprint from the run observables.
func foldState(resultBits, memHash string, timeNs int64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", resultBits, memHash, timeNs)
	return fmt.Sprintf("%016x", h.Sum64())
}

// PanicError is the typed per-job error a recovered worker panic becomes:
// the recovered value and the goroutine stack at the panic site. One
// poisoned cell surfaces as a StatusPanic result; it cannot kill the
// batch or the process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at the panic.
	Stack string
	// Attempts is how many executions were tried before giving up.
	Attempts int
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fleet: job panicked on all %d attempt(s): %v", e.Attempts, e.Value)
}

// QuarantineError is the typed error for a job refused because its
// fingerprint already exhausted the panic-retry budget.
type QuarantineError struct {
	Fingerprint string
	Reason      string
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("fleet: config %s quarantined: %s", e.Fingerprint, e.Reason)
}

// ExecOptions tunes the executor's robustness envelope. The zero value
// selects the defaults noted on each field.
type ExecOptions struct {
	// MaxJobTime, when positive, is the server-side watchdog applied to
	// every job: the effective deadline is min(MaxJobTime, the spec's
	// deadline_ms). It bounds a runaway simulation's hold on a worker.
	MaxJobTime time.Duration
	// MaxAttempts is the execution-attempt budget per job before its
	// fingerprint is quarantined (default 3). Panics are the transient
	// class retried here; simulation errors are deterministic and are
	// never retried.
	MaxAttempts int
	// RetryBase is the first retry's backoff (default 10ms); successive
	// retries double it, capped at RetryCap (default 250ms). Each wait is
	// jittered uniformly in [0.5, 1.5)x so synchronized workers spread.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Sleep replaces time.Sleep between attempts (test hook).
	Sleep func(time.Duration)
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 250 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// ExecStats is a point-in-time snapshot of the executor's robustness
// counters.
type ExecStats struct {
	// Executions counts simulations actually started (every attempt,
	// including ones that panicked) — the run-count probe.
	Executions int64
	// Retries counts re-attempts after a recovered panic.
	Retries int64
	// Panics counts recovered worker panics (every attempt's).
	Panics int64
	// Cancels counts jobs aborted by a deadline.
	Cancels int64
	// Quarantined counts jobs refused because their fingerprint
	// exhausted the retry budget.
	Quarantined int64
}

// Executor runs job specs in process. It always executes — deduplication
// lives in Service — and counts executions, so tests and the replay
// harness can prove that cache hits skip it. The zero value is a valid
// executor with default ExecOptions; use NewExecutor to tune them.
type Executor struct {
	executions  atomic.Int64
	retries     atomic.Int64
	panics      atomic.Int64
	cancels     atomic.Int64
	quarantined atomic.Int64

	opt    ExecOptions
	optSet bool

	quarMu     sync.Mutex
	quarantine map[uint64]string // fingerprint -> reason

	jitterMu sync.Mutex
	jitter   *rand.Rand

	// Obs, when non-nil, is called with each run's observability metrics
	// after the run completes (the Service folds them into /metrics).
	Obs func(m *obs.Metrics)
	// BeforeRun, when non-nil, runs at the start of every execution
	// attempt — the chaos harness's injection point for panics and slow
	// cells. It executes inside the panic-isolation envelope.
	BeforeRun func(spec JobSpec, attempt int)
}

// NewExecutor builds an executor with the given options.
func NewExecutor(opt ExecOptions) *Executor {
	return &Executor{opt: opt.withDefaults(), optSet: true}
}

func (e *Executor) options() ExecOptions {
	if e.optSet {
		return e.opt
	}
	return ExecOptions{}.withDefaults()
}

// Executions returns the number of simulations actually run — the
// run-count probe behind the "cache hits never re-execute" tests.
func (e *Executor) Executions() int64 { return e.executions.Load() }

// Stats returns a snapshot of the robustness counters.
func (e *Executor) Stats() ExecStats {
	return ExecStats{
		Executions:  e.executions.Load(),
		Retries:     e.retries.Load(),
		Panics:      e.panics.Load(),
		Cancels:     e.cancels.Load(),
		Quarantined: e.quarantined.Load(),
	}
}

// Quarantined returns the quarantined fingerprints (hex) and their
// reasons.
func (e *Executor) Quarantined() map[string]string {
	e.quarMu.Lock()
	defer e.quarMu.Unlock()
	out := make(map[string]string, len(e.quarantine))
	for fp, reason := range e.quarantine {
		out[fmt.Sprintf("%016x", fp)] = reason
	}
	return out
}

// backoff computes the jittered wait before retry attempt (1-based
// count of completed attempts): base·2^(attempt-1) capped at RetryCap,
// scaled by a uniform factor in [0.5, 1.5).
func (e *Executor) backoff(opt ExecOptions, attempt int) time.Duration {
	d := opt.RetryBase << (attempt - 1)
	if d > opt.RetryCap || d <= 0 {
		d = opt.RetryCap
	}
	e.jitterMu.Lock()
	if e.jitter == nil {
		e.jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + e.jitter.Float64()
	e.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// attemptOutcome is one execution attempt's result.
type attemptOutcome struct {
	bits    string
	kernel  sim.Duration
	report  core.Report
	runErr  error
	metrics *obs.Metrics
	pan     *PanicError
}

// attempt executes one try of the spec inside the panic-isolation
// envelope. A panic anywhere under app.Run (or the BeforeRun hook) is
// recovered into out.pan with the stack captured at the panic site.
func (e *Executor) attempt(spec JobSpec, cfg core.Config, app harness.MatrixApp, attempt int) (out attemptOutcome) {
	defer func() {
		if v := recover(); v != nil {
			out.pan = &PanicError{Value: v, Stack: string(debug.Stack()), Attempts: attempt}
		}
	}()
	if e.BeforeRun != nil {
		e.BeforeRun(spec, attempt)
	}
	var rec *obs.Recorder
	if e.Obs != nil {
		rec = obs.New(cfg.Nodes)
		cfg.Obs = rec
	}
	e.executions.Add(1)
	out.bits, out.kernel, out.report, out.runErr = app.Run(cfg)
	if rec != nil {
		out.metrics = rec.Metrics()
	}
	return out
}

// Run executes the spec's simulation and returns its result. Invalid
// specs are reported as StatusInvalid results (never executed); run
// errors as StatusError; deadline aborts as StatusCanceled; exhausted
// panic retries as StatusPanic (and the fingerprint is quarantined —
// later identical jobs get StatusQuarantined without executing). The
// returned error is non-nil only for programming errors (a spec that
// validated but cannot be lowered).
func (e *Executor) Run(spec JobSpec) (JobResult, error) {
	spec = spec.Normalize()
	res := JobResult{
		ID:          spec.ID,
		App:         spec.App,
		Mode:        spec.Mode,
		Config:      spec.Canonical(),
		Fingerprint: spec.FingerprintHex(),
	}
	if err := spec.Validate(); err != nil {
		se := err.(*JobSpecError)
		res.Status = StatusInvalid
		res.InvalidFields = se.Fields
		return res, nil
	}
	fp := spec.Fingerprint()
	if reason, ok := e.quarantineReason(fp); ok {
		e.quarantined.Add(1)
		res.Status = StatusQuarantined
		res.Error = (&QuarantineError{Fingerprint: res.Fingerprint, Reason: reason}).Error()
		return res, nil
	}
	cfg, err := spec.BuildConfig()
	if err != nil {
		return res, fmt.Errorf("fleet: lowering validated spec: %w", err)
	}
	app, err := harness.MatrixAppByName(spec.App)
	if err != nil {
		return res, fmt.Errorf("fleet: lowering validated spec: %w", err)
	}
	opt := e.options()
	cfg.Deadline = effectiveDeadline(opt.MaxJobTime, spec.DeadlineMS)

	start := time.Now()
	for attempt := 1; ; attempt++ {
		out := e.attempt(spec, cfg, app, attempt)
		res.HostNs = time.Since(start).Nanoseconds()
		res.Attempts = attempt
		if out.pan != nil {
			e.panics.Add(1)
			if attempt < opt.MaxAttempts {
				e.retries.Add(1)
				opt.Sleep(e.backoff(opt, attempt))
				continue
			}
			e.setQuarantine(fp, out.pan)
			res.Status = StatusPanic
			res.Error = out.pan.Error()
			return res, nil
		}
		if out.runErr != nil {
			if errors.Is(out.runErr, core.ErrCanceled) {
				e.cancels.Add(1)
				res.Status = StatusCanceled
				res.Error = out.runErr.Error()
				res.TimeNs = int64(out.report.Time) // partial: virtual time reached
				return res, nil
			}
			res.Status = StatusError
			res.Error = out.runErr.Error()
			return res, nil
		}
		res.Status = StatusOK
		res.ResultBits = out.bits
		res.MemHash = fmt.Sprintf("%016x", out.report.MemHash)
		res.TimeNs = int64(out.report.Time)
		res.KernelNs = int64(out.kernel)
		res.StateFingerprint = foldState(res.ResultBits, res.MemHash, res.TimeNs)
		if e.Obs != nil && out.metrics != nil {
			e.Obs(out.metrics)
		}
		return res, nil
	}
}

// effectiveDeadline combines the server watchdog and the spec's own
// deadline_ms: the tighter of the two, 0 when neither is set.
func effectiveDeadline(maxJobTime time.Duration, deadlineMS int64) time.Duration {
	d := maxJobTime
	if deadlineMS > 0 {
		sd := time.Duration(deadlineMS) * time.Millisecond
		if d == 0 || sd < d {
			d = sd
		}
	}
	return d
}

func (e *Executor) quarantineReason(fp uint64) (string, bool) {
	e.quarMu.Lock()
	defer e.quarMu.Unlock()
	reason, ok := e.quarantine[fp]
	return reason, ok
}

func (e *Executor) setQuarantine(fp uint64, pe *PanicError) {
	e.quarMu.Lock()
	if e.quarantine == nil {
		e.quarantine = map[uint64]string{}
	}
	e.quarantine[fp] = fmt.Sprintf("panicked on %d attempt(s), last: %v", pe.Attempts, pe.Value)
	e.quarMu.Unlock()
}
