package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ReplayOptions selects the scenario subset a replay drives through the
// service. Zero values take the SpecMatrix defaults; the default
// profile/crash sets exercise both the chaos and crash acceptance
// matrices so the replay proves the HTTP path serves the exact cells the
// in-process matrices assert on.
type ReplayOptions struct {
	Apps     []string
	Modes    []string
	Profiles []string // default: "", drop, dup, reorder, straggler, chaos
	Crashes  []string // default: "", 1@1, 1@1,1@3
	Nodes    []int
	Lanes    []int
	Seed     int64
	Log      io.Writer // progress lines; nil discards
}

// ReplaySummary reports what a replay covered and found.
type ReplaySummary struct {
	Cells      int // scenario cells replayed
	Mismatches int // cells whose HTTP result differed from in-process
	CacheHits  int // cells served Cached=true on the repeat batch
	// ExecDelta is the change in parade_fleet_executions_total across the
	// repeat batch, scraped from /metrics: 0 proves every repeat was a
	// cache hit that skipped execution.
	ExecDelta int64
}

// Replay drives the scenario matrix through a running service and
// asserts three things:
//
//  1. Identity: every cell's HTTP result (ResultBits, MemHash,
//     StateFingerprint, TimeNs, KernelNs) is byte-for-byte equal to an
//     in-process run of the same spec — the service path adds nothing
//     and loses nothing.
//  2. Dedupe: re-posting the identical batch returns every cell with
//     cached=true and the identical result.
//  3. Cache-skip: /metrics' parade_fleet_executions_total does not move
//     across the repeat batch — hits provably never re-run.
//
// baseURL is the service root (e.g. http://127.0.0.1:8080). A non-nil
// error reports the first hard failure; mismatch counts are in the
// summary either way.
func Replay(baseURL string, opt ReplayOptions) (ReplaySummary, error) {
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}
	profiles := opt.Profiles
	if len(profiles) == 0 {
		profiles = []string{"drop", "dup", "reorder", "straggler", "chaos"}
	}
	crashes := opt.Crashes
	if len(crashes) == 0 {
		crashes = []string{"1@1", "1@1,1@3"}
	}
	// The matrices pair link faults with crash-free runs and crashes with
	// the ideal fabric; the fault-free baseline cell anchors both, so both
	// dimensions always include the empty value.
	profiles = withEmpty(profiles)
	crashes = withEmpty(crashes)
	specs := SpecMatrix{
		Apps: opt.Apps, Modes: opt.Modes,
		Profiles: profiles, Crashes: crashes,
		Nodes: opt.Nodes, Lanes: opt.Lanes, Seed: opt.Seed,
	}.Expand()
	sum := ReplaySummary{Cells: len(specs)}
	logf("replay: %d scenario cells against %s", len(specs), baseURL)

	// In-process reference: a fresh executor, no cache anywhere near it.
	ref := make(map[string]JobResult, len(specs))
	exec := &Executor{}
	for _, spec := range specs {
		res, err := exec.Run(spec)
		if err != nil {
			return sum, fmt.Errorf("replay: in-process run %s: %w", spec.Canonical(), err)
		}
		if res.Status != StatusOK {
			return sum, fmt.Errorf("replay: in-process run %s: status %s: %s",
				spec.Canonical(), res.Status, res.Error)
		}
		ref[spec.Canonical()] = res
	}
	logf("replay: in-process reference complete (%d executions)", exec.Executions())

	// Jitter is deterministic per replay seed so two replays of the same
	// matrix back off identically.
	rng := rand.New(rand.NewSource(opt.Seed + 0x9e3779b9))
	post := func() (map[string]JobResult, error) {
		var body bytes.Buffer
		enc := json.NewEncoder(&body)
		for i, spec := range specs {
			spec.ID = fmt.Sprintf("replay-%d", i)
			if err := enc.Encode(spec); err != nil {
				return nil, err
			}
		}
		resp, err := postWithBackoff(baseURL+"/v1/jobs", body.Bytes(), rng, logf)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return nil, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		results := make(map[string]JobResult, len(specs))
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			var res JobResult
			if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
				return nil, fmt.Errorf("parsing result line: %w", err)
			}
			if res.Index < 0 || res.Index >= len(specs) {
				return nil, fmt.Errorf("result index %d out of range", res.Index)
			}
			results[specs[res.Index].Canonical()] = res
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("reading results: %w", err)
		}
		if len(results) != len(specs) {
			return nil, fmt.Errorf("got %d result lines, want %d", len(results), len(specs))
		}
		return results, nil
	}

	// Pass 1: service results must be identical to the in-process runs.
	got, err := post()
	if err != nil {
		return sum, fmt.Errorf("replay pass 1: %w", err)
	}
	for _, spec := range specs {
		canon := spec.Canonical()
		if diff := diffResults(ref[canon], got[canon]); diff != "" {
			sum.Mismatches++
			logf("replay: MISMATCH %s: %s", canon, diff)
		}
	}
	if sum.Mismatches > 0 {
		return sum, fmt.Errorf("replay: %d/%d cells differ between service and in-process paths",
			sum.Mismatches, sum.Cells)
	}
	logf("replay: pass 1 identical to in-process on all %d cells", sum.Cells)

	// Pass 2: the repeat batch must be all cache hits with identical
	// results, and must not move the execution counter.
	before, err := scrapeExecutions(baseURL)
	if err != nil {
		return sum, fmt.Errorf("replay: scraping /metrics before repeat: %w", err)
	}
	repeat, err := post()
	if err != nil {
		return sum, fmt.Errorf("replay pass 2: %w", err)
	}
	after, err := scrapeExecutions(baseURL)
	if err != nil {
		return sum, fmt.Errorf("replay: scraping /metrics after repeat: %w", err)
	}
	sum.ExecDelta = after - before
	for _, spec := range specs {
		canon := spec.Canonical()
		res := repeat[canon]
		if res.Cached {
			sum.CacheHits++
		} else {
			sum.Mismatches++
			logf("replay: repeat of %s not served from cache", canon)
		}
		if diff := diffResults(ref[canon], res); diff != "" {
			sum.Mismatches++
			logf("replay: MISMATCH on cached %s: %s", canon, diff)
		}
	}
	if sum.Mismatches > 0 {
		return sum, fmt.Errorf("replay: repeat batch had %d failures", sum.Mismatches)
	}
	if sum.ExecDelta != 0 {
		return sum, fmt.Errorf("replay: repeat batch executed %d simulations; cache hits must never re-run",
			sum.ExecDelta)
	}
	logf("replay: pass 2 all %d cells cached, executions_total unchanged", sum.CacheHits)
	return sum, nil
}

// postAttempts bounds the overload/restart retry loop: a 429 (queue
// full) is retried after the server's Retry-After hint, a 503 (draining
// server, or a rolling restart's brief gap) with exponential backoff.
// Both sleeps are jittered so a fleet of clients that were rejected
// together does not reconverge on the same instant.
const postAttempts = 5

func postWithBackoff(url string, body []byte, rng *rand.Rand, logf func(string, ...any)) (*http.Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			lastErr = fmt.Errorf("POST /v1/jobs: %w", err)
		} else {
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				hint := time.Second
				if s, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && s > 0 {
					hint = time.Duration(s) * time.Second
				}
				resp.Body.Close()
				lastErr = fmt.Errorf("POST /v1/jobs: 429 queue full")
				if attempt < postAttempts {
					d := jitter(hint, rng)
					logf("replay: 429, honoring Retry-After %v (jittered %v), attempt %d/%d", hint, d, attempt, postAttempts)
					time.Sleep(d)
					continue
				}
			case http.StatusServiceUnavailable:
				resp.Body.Close()
				lastErr = fmt.Errorf("POST /v1/jobs: 503 draining")
				if attempt < postAttempts {
					d := jitter(100*time.Millisecond<<(attempt-1), rng)
					logf("replay: 503, backing off %v, attempt %d/%d", d, attempt, postAttempts)
					time.Sleep(d)
					continue
				}
			default:
				return resp, nil
			}
		}
		if attempt >= postAttempts {
			return nil, fmt.Errorf("%w (after %d attempts)", lastErr, attempt)
		}
		d := jitter(100*time.Millisecond<<(attempt-1), rng)
		time.Sleep(d)
	}
}

// jitter scales d by a uniform factor in [0.5, 1.5).
func jitter(d time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// withEmpty prepends the empty value to a dimension unless present.
func withEmpty(vals []string) []string {
	for _, v := range vals {
		if v == "" {
			return vals
		}
	}
	return append([]string{""}, vals...)
}

// diffResults compares the identity observables of two results and
// describes the first difference ("" when identical).
func diffResults(want, got JobResult) string {
	switch {
	case got.Status != StatusOK:
		return fmt.Sprintf("status %q (%s)", got.Status, got.Error)
	case got.ResultBits != want.ResultBits:
		return fmt.Sprintf("result_bits %s != %s", got.ResultBits, want.ResultBits)
	case got.MemHash != want.MemHash:
		return fmt.Sprintf("mem_hash %s != %s", got.MemHash, want.MemHash)
	case got.StateFingerprint != want.StateFingerprint:
		return fmt.Sprintf("state_fingerprint %s != %s", got.StateFingerprint, want.StateFingerprint)
	case got.TimeNs != want.TimeNs:
		return fmt.Sprintf("time_ns %d != %d", got.TimeNs, want.TimeNs)
	case got.KernelNs != want.KernelNs:
		return fmt.Sprintf("kernel_ns %d != %d", got.KernelNs, want.KernelNs)
	}
	return ""
}

// scrapeExecutions reads parade_fleet_executions_total off /metrics.
func scrapeExecutions(baseURL string) (int64, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "parade_fleet_executions_total ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "parade_fleet_executions_total ")), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parsing executions_total: %w", err)
		}
		return v, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("parade_fleet_executions_total not found in /metrics")
}
