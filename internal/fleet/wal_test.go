package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func walResult(i int) JobResult {
	return JobResult{
		Status:           StatusOK,
		App:              "ep",
		Mode:             "hybrid",
		ResultBits:       fmt.Sprintf("bits-%d", i),
		MemHash:          fmt.Sprintf("%016x", i),
		StateFingerprint: fmt.Sprintf("%016x", i*7),
		TimeNs:           int64(1000 + i),
		KernelNs:         int64(900 + i),
		Attempts:         1,
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.wal")
	w, records, rep, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL (fresh): %v", err)
	}
	if len(records) != 0 || rep.Records != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(records))
	}
	const n = 10
	for i := 0; i < n; i++ {
		res := walResult(i)
		res.ID = "req-scoped" // must be stripped on disk
		res.Cached = true
		if err := w.Append(uint64(i), fmt.Sprintf("canon-%d", i), res); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, records, rep, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL (replay): %v", err)
	}
	defer w2.Close()
	if rep.Records != n || rep.Unique != n || rep.TruncatedBytes != 0 || rep.Compacted {
		t.Fatalf("replay = %+v, want %d clean records", rep, n)
	}
	for i, rec := range records {
		if rec.FP != uint64(i) || rec.Canonical != fmt.Sprintf("canon-%d", i) {
			t.Fatalf("record %d = {fp %d, canon %q}", i, rec.FP, rec.Canonical)
		}
		want := walResult(i)
		if !reflect.DeepEqual(rec.Result, want) {
			t.Fatalf("record %d result = %+v, want %+v (request-scoped fields stripped)", i, rec.Result, want)
		}
	}
}

// TestWALCorruptTail: a torn or corrupt tail is truncated, the valid
// prefix survives, and the log accepts appends again.
func TestWALCorruptTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail string
	}{
		{"partial line", `{"fp":"0000`},
		{"bad json", "not json at all\n"},
		{"bad checksum", `{"fp":"00000000000000ff","canon":"x","res":{"index":0,"status":"ok","cached":false},"sum":"0000000000000000"}` + "\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "results.wal")
			w, _, _, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := w.Append(uint64(i), fmt.Sprintf("canon-%d", i), walResult(i)); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(tc.tail)
			f.Close()

			w2, records, rep, err := OpenWAL(path)
			if err != nil {
				t.Fatalf("OpenWAL over corrupt tail: %v", err)
			}
			if len(records) != 3 {
				t.Fatalf("replayed %d records, want the 3 valid ones", len(records))
			}
			if rep.TruncatedBytes != int64(len(tc.tail)) {
				t.Fatalf("TruncatedBytes = %d, want %d", rep.TruncatedBytes, len(tc.tail))
			}
			if err := w2.Append(99, "canon-99", walResult(99)); err != nil {
				t.Fatalf("Append after truncation: %v", err)
			}
			w2.Close()

			_, records, rep, err = OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != 4 || rep.TruncatedBytes != 0 {
				t.Fatalf("after truncate+append: %d records, %d truncated; want 4 clean", len(records), rep.TruncatedBytes)
			}
		})
	}
}

// TestWALAutoCompaction: a log dominated by re-appends of the same
// fingerprints is rewritten on open to one (latest) record each.
func TestWALAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.wal")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	// 8 fingerprints x 16 generations >> compactThreshold with 2x dupes.
	for gen := 0; gen < 16; gen++ {
		for fp := 0; fp < 8; fp++ {
			if err := w.Append(uint64(fp), fmt.Sprintf("canon-%d", fp), walResult(gen)); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.Close()
	before, _ := os.Stat(path)

	w2, records, rep, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if !rep.Compacted {
		t.Fatalf("replay = %+v, want Compacted", rep)
	}
	if rep.Records != 128 || rep.Unique != 8 {
		t.Fatalf("replay = %+v, want 128 records over 8 fingerprints", rep)
	}
	// Replay order must still give last-wins per fingerprint.
	last := map[uint64]JobResult{}
	for _, rec := range records {
		last[rec.FP] = rec.Result
	}
	for fp := 0; fp < 8; fp++ {
		if !reflect.DeepEqual(last[uint64(fp)], walResult(15)) {
			t.Fatalf("fp %d latest record = %+v, want generation 15", fp, last[uint64(fp)])
		}
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}

	_, records, rep, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compacted || rep.Records != 8 {
		t.Fatalf("post-compaction replay = %+v, want 8 records, no recompaction", rep)
	}
	for fp, rec := range records {
		if rec.FP != uint64(fp) || !reflect.DeepEqual(rec.Result, walResult(15)) {
			t.Fatalf("compacted record %d = %+v", fp, rec)
		}
	}
}

// TestWALAppendAfterCloseFails: the closed log refuses writes with a
// clear error.
func TestWALAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.wal")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Append(1, "canon", walResult(1)); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Append after Close = %v, want closed error", err)
	}
}
