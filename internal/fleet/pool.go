package fleet

import (
	"errors"
	"sync"
)

// Pool errors.
var (
	// ErrQueueFull rejects an admission that would exceed the queue
	// bound; the server maps it to 429 with a Retry-After hint.
	ErrQueueFull = errors.New("fleet: job queue full")
	// ErrDraining rejects admissions after a drain began; the server
	// maps it to 503.
	ErrDraining = errors.New("fleet: pool draining")
)

// Job is one unit of pool work. Run executes it; Drop, when non-nil, is
// invoked instead of Run if the job is discarded from the queue by Kill
// — the hook lets a submitter observe the discard (e.g. the server emits
// a canceled result so a response stream still completes).
type Job struct {
	Run  func()
	Drop func()
}

// Pool is the bounded worker pool jobs execute on. Admission is
// work-stealing-friendly: an admitted batch is spread over the workers'
// local FIFO queues (each job lands on the least-loaded queue), a worker
// prefers its own queue, and an idle worker steals the oldest job from
// the most-loaded peer — the same LIFO-local/FIFO-steal discipline the
// distributed tasking runtime uses, minus the network. The total queued
// count is bounded; SubmitBatch admits a batch atomically (all slots or
// none), which is what lets the server answer a clean 429 before any
// byte of a response stream is written.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	locals   [][]Job // per-worker FIFO queues
	queued   int
	cap      int
	inFlight int
	draining bool
	stopped  bool
	wg       sync.WaitGroup

	// onChange, when non-nil, observes (queued, inFlight) after every
	// transition (metrics gauges).
	onChange func(queued, inFlight int)
}

// NewPool starts workers goroutines serving a queue bounded to capacity
// jobs (minima of 1 each).
func NewPool(workers, capacity int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool{
		locals: make([][]Job, workers),
		cap:    capacity,
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// SetObserver registers the gauge callback (call before serving).
func (p *Pool) SetObserver(fn func(queued, inFlight int)) {
	p.mu.Lock()
	p.onChange = fn
	p.mu.Unlock()
}

func (p *Pool) notifyLocked() {
	if p.onChange != nil {
		p.onChange(p.queued, p.inFlight)
	}
}

// Depth returns (queued, inFlight).
func (p *Pool) Depth() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.inFlight
}

// Capacity returns the queue bound.
func (p *Pool) Capacity() int { return p.cap }

// SubmitBatch atomically admits all jobs or none: ErrQueueFull when the
// batch does not fit in the remaining queue space, ErrDraining after
// Drain. Each job is placed on the currently least-loaded worker queue.
func (p *Pool) SubmitBatch(jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining || p.stopped {
		return ErrDraining
	}
	if p.queued+len(jobs) > p.cap {
		return ErrQueueFull
	}
	for _, job := range jobs {
		least := 0
		for w := 1; w < len(p.locals); w++ {
			if len(p.locals[w]) < len(p.locals[least]) {
				least = w
			}
		}
		p.locals[least] = append(p.locals[least], job)
		p.queued++
	}
	p.notifyLocked()
	p.cond.Broadcast()
	return nil
}

// next pops work for worker w: its own queue first (FIFO), then a steal
// of the oldest job from the most-loaded peer. Returns nil with ok=false
// when the pool is stopped.
func (p *Pool) next(w int) (Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if len(p.locals[w]) > 0 {
			job := p.locals[w][0]
			p.locals[w] = p.locals[w][1:]
			p.queued--
			p.inFlight++
			p.notifyLocked()
			return job, true
		}
		victim, most := -1, 0
		for v := range p.locals {
			if len(p.locals[v]) > most {
				victim, most = v, len(p.locals[v])
			}
		}
		if victim >= 0 {
			job := p.locals[victim][0]
			p.locals[victim] = p.locals[victim][1:]
			p.queued--
			p.inFlight++
			p.notifyLocked()
			return job, true
		}
		if p.stopped || (p.draining && p.queued == 0) {
			return Job{}, false
		}
		p.cond.Wait()
	}
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	for {
		job, ok := p.next(w)
		if !ok {
			return
		}
		job.Run()
		p.mu.Lock()
		p.inFlight--
		p.notifyLocked()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// Drain stops admission and blocks until every queued and in-flight job
// has completed, then stops the workers. Safe to call once.
func (p *Pool) Drain() {
	p.mu.Lock()
	p.draining = true
	p.cond.Broadcast()
	for p.queued > 0 || p.inFlight > 0 {
		p.cond.Wait()
	}
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Kill is the hard-stop counterpart of Drain: it halts admission,
// discards every queued job (invoking each job's Drop hook so its
// submitter can account for it), waits only for the jobs already
// executing to finish, then stops the workers. It is the in-process
// analogue of a SIGKILL'd server: whatever had started completes (and
// may have reached the WAL); whatever was merely queued never runs.
// Safe to call once; do not mix with Drain.
func (p *Pool) Kill() {
	p.mu.Lock()
	p.draining = true
	var dropped []Job
	for w := range p.locals {
		dropped = append(dropped, p.locals[w]...)
		p.locals[w] = nil
	}
	p.queued = 0
	p.notifyLocked()
	p.cond.Broadcast()
	for p.inFlight > 0 {
		p.cond.Wait()
	}
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	for _, job := range dropped {
		if job.Drop != nil {
			job.Drop()
		}
	}
}

// Draining reports whether a drain has begun.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}
