package fleet

import (
	"path/filepath"
	"testing"
)

// TestRunServeChaos drives the full service-chaos harness on a small
// matrix: kill mid-batch, WAL recovery with zero re-executions and
// bit-identical results, panic isolation with quarantine, and a
// deadline cancellation — the acceptance criteria end to end.
func TestRunServeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness runs full simulations")
	}
	sum, err := RunServeChaos(ChaosOptions{
		WALPath: filepath.Join(t.TempDir(), "results.wal"),
		Cells:   12,
		Workers: 2,
		Log:     testWriter{t},
	})
	if err != nil {
		t.Fatalf("RunServeChaos: %v (summary %+v)", err, sum)
	}
	if sum.Durable == 0 || sum.Recovered != sum.Durable {
		t.Fatalf("summary %+v: recovery incomplete", sum)
	}
	if sum.ReExecutions != 0 {
		t.Fatalf("summary %+v: recovered cells re-executed", sum)
	}
	if sum.Panics != 1 || sum.Quarantined != 1 || sum.Canceled != 1 {
		t.Fatalf("summary %+v: injection phases incomplete", sum)
	}
}

// testWriter adapts t.Logf to the harness's progress log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
