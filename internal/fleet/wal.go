package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// WAL is the durable result store: an append-only JSONL write-ahead log
// of completed (StatusOK) job results, keyed by the canonical FNV config
// fingerprint. Every record carries a checksum over its own payload;
// OpenWAL replays the valid prefix (rewarming the dedupe cache) and
// truncates the file at the first corrupt record — the crash-consistency
// rule for a log whose tail may hold a half-written line after SIGKILL.
// Appends are fsynced, so a record that was ever observable to a client
// survives a crash.
//
// Determinism makes replayed results exact, not approximate: a run is a
// pure function of its canonical config (DESIGN.md §6h), so the stored
// result of a fingerprint is bit-identical to what a re-execution would
// produce, and a restarted server can serve it from cache without ever
// re-running the cell.
//
// WAL is safe for concurrent use.
type WAL struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	closed bool

	appends      int64
	appendErrors int64
	compactions  int64
}

// WALRecord is one durable result: the dedupe-cache triple.
type WALRecord struct {
	FP        uint64
	Canonical string
	Result    JobResult
}

// WALReplay summarizes what OpenWAL recovered.
type WALReplay struct {
	// Records is the number of valid records replayed.
	Records int
	// Unique is the number of distinct fingerprints among them.
	Unique int
	// TruncatedBytes is the corrupt-tail length cut from the file
	// (0 for a clean log).
	TruncatedBytes int64
	// Compacted reports that the log was rewritten to one record per
	// fingerprint during open.
	Compacted bool
	// Elapsed is the host time the replay took.
	Elapsed time.Duration
}

// walEntry is the on-disk line format. Sum is the FNV-1a hash (hex) of
// "fp|canon|" + the result's JSON encoding; the result JSON round-trips
// bit-exactly (strings, ints, and bools only), so verification
// re-marshals the decoded result.
type walEntry struct {
	FP    string    `json:"fp"`
	Canon string    `json:"canon"`
	Res   JobResult `json:"res"`
	Sum   string    `json:"sum"`
}

func walSum(fp, canon string, resJSON []byte) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|", fp, canon)
	h.Write(resJSON)
	return fmt.Sprintf("%016x", h.Sum64())
}

// decodeWALLine parses and verifies one log line. ok=false marks a
// corrupt record (bad JSON, bad checksum, bad fingerprint).
func decodeWALLine(line []byte) (WALRecord, bool) {
	var ent walEntry
	if err := json.Unmarshal(line, &ent); err != nil {
		return WALRecord{}, false
	}
	fp, err := strconv.ParseUint(ent.FP, 16, 64)
	if err != nil {
		return WALRecord{}, false
	}
	resJSON, err := json.Marshal(ent.Res)
	if err != nil || walSum(ent.FP, ent.Canon, resJSON) != ent.Sum {
		return WALRecord{}, false
	}
	return WALRecord{FP: fp, Canonical: ent.Canon, Result: ent.Res}, true
}

// compactThreshold: a log at least this long with >= 2x duplication per
// fingerprint is rewritten on open.
const compactThreshold = 64

// OpenWAL opens (creating if absent) the log at path, replays its valid
// prefix in append order, truncates any corrupt tail, and compacts the
// log to one record per fingerprint when duplication warrants it. The
// returned records are in original append order (later records for the
// same fingerprint appear later — replay them in order and last wins,
// matching cache semantics).
func OpenWAL(path string) (*WAL, []WALRecord, WALReplay, error) {
	start := time.Now()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, WALReplay{}, fmt.Errorf("fleet: opening WAL %s: %w", path, err)
	}
	var (
		records []WALRecord
		unique  = map[uint64]int{}
		valid   int64 // byte offset past the last valid record
		corrupt bool
	)
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A partial final line (no terminator) is a torn append.
			corrupt = len(line) > 0
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, WALReplay{}, fmt.Errorf("fleet: reading WAL %s: %w", path, err)
		}
		rec, ok := decodeWALLine(line[:len(line)-1])
		if !ok {
			corrupt = true
			break
		}
		records = append(records, rec)
		unique[rec.FP] = len(records) - 1
		valid += int64(len(line))
	}
	rep := WALReplay{Records: len(records), Unique: len(unique)}
	if corrupt {
		end, err := f.Seek(0, io.SeekEnd)
		if err == nil {
			rep.TruncatedBytes = end - valid
		}
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, rep, fmt.Errorf("fleet: truncating corrupt WAL tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, rep, fmt.Errorf("fleet: seeking WAL %s: %w", path, err)
	}
	w := &WAL{path: path, f: f, w: bufio.NewWriter(f)}
	if len(records) >= compactThreshold && len(records) >= 2*len(unique) {
		// Rewrite to the latest record per fingerprint, preserving append
		// order of the survivors.
		live := make([]WALRecord, 0, len(unique))
		for i, rec := range records {
			if unique[rec.FP] == i {
				live = append(live, rec)
			}
		}
		if err := w.rewrite(live); err != nil {
			f.Close()
			return nil, nil, rep, err
		}
		rep.Compacted = true
	}
	rep.Elapsed = time.Since(start)
	return w, records, rep, nil
}

// Append durably logs one completed result: marshal, checksum, write,
// flush, fsync. Call only for StatusOK results (the only ones the cache
// stores).
func (w *WAL) Append(fp uint64, canonical string, res JobResult) error {
	line, err := encodeWALLine(fp, canonical, res)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("fleet: WAL %s closed", w.path)
	}
	if _, err := w.w.Write(line); err != nil {
		w.appendErrors++
		return fmt.Errorf("fleet: appending to WAL %s: %w", w.path, err)
	}
	if err := w.w.Flush(); err != nil {
		w.appendErrors++
		return fmt.Errorf("fleet: flushing WAL %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		w.appendErrors++
		return fmt.Errorf("fleet: syncing WAL %s: %w", w.path, err)
	}
	w.appends++
	return nil
}

func encodeWALLine(fp uint64, canonical string, res JobResult) ([]byte, error) {
	// Strip per-request fields so a record is the pure (config -> result)
	// mapping: ID and Index belong to the batch that ran it, and a
	// replayed result is served as a cache hit.
	res.ID = ""
	res.Index = 0
	res.Cached = false
	fpHex := fmt.Sprintf("%016x", fp)
	resJSON, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding WAL record: %w", err)
	}
	ent := walEntry{FP: fpHex, Canon: canonical, Res: res, Sum: walSum(fpHex, canonical, resJSON)}
	line, err := json.Marshal(ent)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding WAL record: %w", err)
	}
	return append(line, '\n'), nil
}

// rewrite atomically replaces the log's contents with the given records
// (write temp file, fsync, rename) and switches appends to the new file.
// Caller holds no lock (open path) or the WAL lock (Compact).
func (w *WAL) rewrite(records []WALRecord) error {
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(w.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("fleet: compacting WAL %s: %w", w.path, err)
	}
	tmpPath := tmp.Name()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	for _, rec := range records {
		line, err := encodeWALLine(rec.FP, rec.Canonical, rec.Result)
		if err == nil {
			_, err = bw.Write(line)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("fleet: compacting WAL %s: %w", w.path, err)
		}
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Sync()
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fleet: compacting WAL %s: %w", w.path, err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fleet: compacting WAL %s: %w", w.path, err)
	}
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: reopening compacted WAL %s: %w", w.path, err)
	}
	w.f.Close()
	w.f = f
	w.w = bufio.NewWriter(f)
	w.compactions++
	return nil
}

// Compact rewrites the log to exactly the given records (typically the
// live cache contents), atomically.
func (w *WAL) Compact(records []WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("fleet: WAL %s closed", w.path)
	}
	return w.rewrite(records)
}

// WALStats is a point-in-time snapshot of the WAL counters.
type WALStats struct {
	Appends      int64
	AppendErrors int64
	Compactions  int64
}

// Stats returns a snapshot of the WAL counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{Appends: w.appends, AppendErrors: w.appendErrors, Compactions: w.compactions}
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close flushes and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("fleet: closing WAL %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("fleet: closing WAL %s: %w", w.path, err)
	}
	return w.f.Close()
}
