package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// drainSpecs builds a batch body of distinct fast cells (one seed lane
// per client so concurrent batches never coalesce).
func drainSpecs(t *testing.T, client, n int) (string, int) {
	t.Helper()
	var body strings.Builder
	for i := 0; i < n; i++ {
		spec := validSpec()
		spec.Seed = int64(1 + client*100 + i)
		spec.ID = fmt.Sprintf("drain-%d-%d", client, i)
		body.WriteString(specLine(t, spec))
	}
	return body.String(), n
}

// TestDrainWithInFlightBatches is the graceful-shutdown contract under
// concurrency (run with -race): batches in flight when the drain begins
// all complete and reach the WAL, batches after it get clean 503s, and
// no goroutine outlives the service.
func TestDrainWithInFlightBatches(t *testing.T) {
	base := runtime.NumGoroutine()
	walPath := filepath.Join(t.TempDir(), "results.wal")
	svc := mustService(t, ServerOptions{Workers: 2, Queue: 64, WALPath: walPath})
	ts := httptest.NewServer(svc.Handler())

	const clients, perClient = 4, 3
	var wg sync.WaitGroup
	type outcome struct {
		status  int
		results []JobResult
	}
	outcomes := make([]outcome, clients)
	for c := 0; c < clients; c++ {
		c := c
		body, _ := drainSpecs(t, c, perClient)
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, results := postBatch(t, ts, body)
			outcomes[c] = outcome{status, results}
		}()
	}

	// Begin the drain only once every batch is admitted and work is
	// genuinely in flight, the SIGTERM mid-batch shape.
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.metrics.mu.Lock()
		admitted := svc.metrics.batches
		svc.metrics.mu.Unlock()
		if admitted >= clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batches admitted %d/%d: never mid-batch", admitted, clients)
		}
		time.Sleep(time.Millisecond)
	}
	svc.Drain()

	// Admission is closed: a new batch gets a clean 503.
	lateBody, _ := drainSpecs(t, 99, 1)
	status, _, _ := postBatch(t, ts, lateBody)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain batch got %d, want 503", status)
	}

	// Every in-flight batch completed normally, all results ok.
	wg.Wait()
	for c, out := range outcomes {
		if out.status != http.StatusOK {
			t.Fatalf("client %d: status %d, want 200 (admitted before drain)", c, out.status)
		}
		if len(out.results) != perClient {
			t.Fatalf("client %d: %d results, want %d", c, len(out.results), perClient)
		}
		for _, res := range out.results {
			if res.Status != StatusOK {
				t.Fatalf("client %d: result %s status %q (%s)", c, res.ID, res.Status, res.Error)
			}
		}
	}

	// Everything that completed is durable.
	w, records, _, err := OpenWAL(walPath)
	if err != nil {
		t.Fatalf("reading WAL after drain: %v", err)
	}
	w.Close()
	if len(records) != clients*perClient {
		t.Fatalf("WAL holds %d records, want %d (every completed job persisted)", len(records), clients*perClient)
	}

	// No goroutine outlives the drained service.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKillDropsQueuedWithTypedResults: Kill (the in-process SIGKILL
// analogue) finishes in-flight jobs, discards queued ones as typed
// canceled lines, and the response stream still completes.
func TestKillDropsQueuedWithTypedResults(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "results.wal")
	svc := mustService(t, ServerOptions{Workers: 1, Queue: 16, WALPath: walPath})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, n := drainSpecs(t, 0, 6)
	type reply struct {
		status  int
		results []JobResult
	}
	done := make(chan reply, 1)
	go func() {
		status, _, results := postBatch(t, ts, body)
		done <- reply{status, results}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, inFlight := svc.pool.Depth(); inFlight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job went in flight")
		}
		time.Sleep(time.Millisecond)
	}
	svc.Kill()

	out := <-done
	if out.status != http.StatusOK || len(out.results) != n {
		t.Fatalf("killed-server stream: status %d, %d results, want 200 with %d lines", out.status, len(out.results), n)
	}
	completed, dropped := 0, 0
	for _, res := range out.results {
		switch res.Status {
		case StatusOK:
			completed++
		case StatusCanceled:
			dropped++
			if !strings.Contains(res.Error, "dropped") {
				t.Fatalf("dropped result error = %q, want a dropped marker", res.Error)
			}
		default:
			t.Fatalf("unexpected status %q (%s)", res.Status, res.Error)
		}
	}
	if completed == 0 || dropped == 0 {
		t.Fatalf("completed=%d dropped=%d: a kill mid-batch should leave both", completed, dropped)
	}

	// Exactly the completed jobs are durable.
	w, records, _, err := OpenWAL(walPath)
	if err != nil {
		t.Fatalf("reading WAL after kill: %v", err)
	}
	w.Close()
	if len(records) != completed {
		t.Fatalf("WAL holds %d records, want %d (the completed jobs)", len(records), completed)
	}
}
