package fleet

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

// validSpec is the cheapest valid job: one cell of the matrix.
func validSpec() JobSpec {
	return JobSpec{App: "ep", Mode: "hybrid"}
}

func TestJobSpecValidationTable(t *testing.T) {
	cases := []struct {
		name   string
		spec   JobSpec
		fields []string // invalid field names, nil for a valid spec
		reason string   // substring expected in the first field's reason
	}{
		{name: "valid defaults", spec: JobSpec{App: "ep", Mode: "hybrid"}},
		{name: "valid sdsm with everything", spec: JobSpec{
			App: "lockmix", Mode: "sdsm", Fabric: "tcp", Nodes: 8,
			ThreadsPerNode: 2, Lanes: 4, Seed: 7, FaultProfile: "chaos",
		}},
		{name: "valid crash schedule", spec: JobSpec{App: "cg", Mode: "hybrid", Crash: "1@1,1@3"}},
		{name: "two distinct crash nodes", spec: JobSpec{App: "cg", Mode: "hybrid", Crash: "1@1,2@3"},
			fields: []string{"crash"}, reason: "one distinct node"},
		{name: "missing app", spec: JobSpec{Mode: "hybrid"},
			fields: []string{"app"}, reason: "required"},
		{name: "unknown app", spec: JobSpec{App: "linpack", Mode: "hybrid"},
			fields: []string{"app"}, reason: `unknown app "linpack"`},
		{name: "missing mode", spec: JobSpec{App: "ep"},
			fields: []string{"mode"}, reason: "required"},
		{name: "unknown mode", spec: JobSpec{App: "ep", Mode: "mpi"},
			fields: []string{"mode"}, reason: `unknown mode "mpi"`},
		{name: "unknown fabric", spec: JobSpec{App: "ep", Mode: "hybrid", Fabric: "infiniband"},
			fields: []string{"fabric"}, reason: "unknown fabric"},
		{name: "negative nodes", spec: JobSpec{App: "ep", Mode: "hybrid", Nodes: -2},
			fields: []string{"nodes"}, reason: ">= 1"},
		{name: "negative threads", spec: JobSpec{App: "ep", Mode: "hybrid", ThreadsPerNode: -1},
			fields: []string{"threads_per_node"}, reason: ">= 1"},
		{name: "negative lanes", spec: JobSpec{App: "ep", Mode: "hybrid", Lanes: -3},
			fields: []string{"lanes"}, reason: ">= 0"},
		{name: "negative seed", spec: JobSpec{App: "ep", Mode: "hybrid", Seed: -1},
			fields: []string{"seed"}, reason: "positive"},
		{name: "unknown profile", spec: JobSpec{App: "ep", Mode: "hybrid", FaultProfile: "meteor"},
			fields: []string{"fault_profile"}, reason: `unknown fault profile "meteor"`},
		{name: "valid hetero profile", spec: JobSpec{App: "ep", Mode: "hybrid", Hetero: "fasthalf"}},
		{name: "unknown hetero profile", spec: JobSpec{App: "ep", Mode: "hybrid", Hetero: "gpufarm"},
			fields: []string{"hetero"}, reason: `unknown hetero profile "gpufarm"`},
		{name: "crash syntax", spec: JobSpec{App: "ep", Mode: "hybrid", Crash: "1-at-2"},
			fields: []string{"crash"}, reason: "want node@barrier"},
		{name: "crash node out of range", spec: JobSpec{App: "ep", Mode: "hybrid", Crash: "9@1"},
			fields: []string{"crash"}},
		{name: "crash node zero", spec: JobSpec{App: "ep", Mode: "hybrid", Crash: "0@1"},
			fields: []string{"crash"}},
		{name: "several fields at once",
			spec:   JobSpec{App: "nope", Mode: "nope", Fabric: "nope", Nodes: -1, FaultProfile: "nope"},
			fields: []string{"app", "fabric", "fault_profile", "mode", "nodes"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.fields == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var se *JobSpecError
			if !errors.As(err, &se) {
				t.Fatalf("Validate() = %v (%T), want *JobSpecError", err, err)
			}
			var got []string
			for _, f := range se.Fields {
				got = append(got, f.Field)
			}
			sort.Strings(got)
			want := append([]string(nil), tc.fields...)
			sort.Strings(want)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("invalid fields = %v, want %v (err: %v)", got, want, se)
			}
			if tc.reason != "" && !strings.Contains(se.Error(), tc.reason) {
				t.Fatalf("error %q does not mention %q", se.Error(), tc.reason)
			}
		})
	}
}

func TestJobSpecCanonicalization(t *testing.T) {
	base := validSpec()

	// The client handle never participates in job identity.
	withID := base
	withID.ID = "my-job"
	if withID.Fingerprint() != base.Fingerprint() {
		t.Errorf("ID changed the fingerprint")
	}

	// Explicit defaults fingerprint like omitted ones.
	explicit := JobSpec{App: "ep", Mode: "hybrid", Fabric: "via", Nodes: 4, ThreadsPerNode: 1, Seed: 1}
	if explicit.Fingerprint() != base.Fingerprint() {
		t.Errorf("explicit defaults fingerprint differently:\n%s\n%s", explicit.Canonical(), base.Canonical())
	}

	// All positive lane counts are the same simulation (bit-identical
	// event schedule); the legacy kernel is its own regime.
	l1, l8, l0 := base, base, base
	l1.Lanes, l8.Lanes, l0.Lanes = 1, 8, 0
	if l1.Fingerprint() != l8.Fingerprint() {
		t.Errorf("lanes=1 and lanes=8 should share a fingerprint")
	}
	if l1.Fingerprint() == l0.Fingerprint() {
		t.Errorf("lanes=0 and lanes=1 are distinct regimes, got equal fingerprints")
	}

	// lockmix always runs with lock caching, however the spec spells it.
	lm := JobSpec{App: "lockmix", Mode: "hybrid"}
	if !lm.Normalize().LockCaching {
		t.Errorf("lockmix must normalize to LockCaching=true")
	}
	lmExplicit := lm
	lmExplicit.LockCaching = true
	if lm.Fingerprint() != lmExplicit.Fingerprint() {
		t.Errorf("lockmix fingerprint depends on redundant lock_caching field")
	}

	// "uniform" is the explicit spelling of the default machine.
	hu := base
	hu.Hetero = "uniform"
	if hu.Fingerprint() != base.Fingerprint() {
		t.Errorf(`hetero "uniform" fingerprints differently from the default`)
	}

	// Crash schedules canonicalize whitespace.
	c1, c2 := base, base
	c1.Crash, c2.Crash = "1@1, 2@3", "1@1,2@3"
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Errorf("crash schedule whitespace changed the fingerprint")
	}

	// Distinct configurations must canonicalize distinctly.
	distinct := []JobSpec{
		base,
		{App: "cg", Mode: "hybrid"},
		{App: "ep", Mode: "sdsm"},
		{App: "ep", Mode: "hybrid", Fabric: "tcp"},
		{App: "ep", Mode: "hybrid", Nodes: 8},
		{App: "ep", Mode: "hybrid", ThreadsPerNode: 2},
		{App: "ep", Mode: "hybrid", Lanes: 2},
		{App: "ep", Mode: "hybrid", Seed: 2},
		{App: "ep", Mode: "hybrid", FaultProfile: "drop"},
		{App: "ep", Mode: "hybrid", Crash: "1@1"},
		{App: "ep", Mode: "hybrid", Hetero: "fasthalf"},
		{App: "ep", Mode: "hybrid", Hetero: "slow1"},
	}
	seen := map[string]int{}
	for i, s := range distinct {
		canon := s.Canonical()
		if j, dup := seen[canon]; dup {
			t.Errorf("specs %d and %d share canonical %q", i, j, canon)
		}
		seen[canon] = i
	}
}

func TestSpecMatrixExpand(t *testing.T) {
	specs := SpecMatrix{
		Apps: []string{"ep", "cg"}, Modes: []string{"hybrid"},
		Profiles: []string{"", "drop"}, Crashes: []string{"", "1@1"},
	}.Expand()
	// Per app: (profile "", crash ""), ("", "1@1"), ("drop", "") — the
	// drop+crash combination is skipped.
	if len(specs) != 6 {
		t.Fatalf("Expand() = %d specs, want 6", len(specs))
	}
	for _, s := range specs {
		if s.FaultProfile != "" && s.Crash != "" {
			t.Errorf("Expand() emitted a fault+crash cell: %s", s.Canonical())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Expand() emitted invalid spec %s: %v", s.Canonical(), err)
		}
	}
	if !sort.SliceIsSorted(specs, func(i, j int) bool {
		return specs[i].Canonical() < specs[j].Canonical()
	}) {
		t.Errorf("Expand() output not in canonical order")
	}
}

func TestCacheCollisionGuard(t *testing.T) {
	c := NewCache(4)
	res := JobResult{Status: StatusOK, ResultBits: "aa"}
	c.Put(42, "canonical-A", res)

	// Same fingerprint, different canonical config: must be a miss, never
	// the stored result.
	if _, ok := c.Get(42, "canonical-B"); ok {
		t.Fatalf("collision returned a foreign result")
	}
	st := c.Stats()
	if st.Collisions != 1 {
		t.Errorf("collisions = %d, want 1", st.Collisions)
	}
	if got, ok := c.Get(42, "canonical-A"); !ok || got.ResultBits != "aa" {
		t.Errorf("true key lookup failed after collision: %+v ok=%v", got, ok)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	c.Put(1, "one", JobResult{ResultBits: "1"})
	c.Put(2, "two", JobResult{ResultBits: "2"})
	if _, ok := c.Get(1, "one"); !ok { // promote 1 to MRU
		t.Fatalf("entry 1 missing before eviction")
	}
	c.Put(3, "three", JobResult{ResultBits: "3"}) // evicts 2 (LRU)
	if _, ok := c.Get(2, "two"); ok {
		t.Errorf("LRU entry 2 survived eviction")
	}
	if _, ok := c.Get(1, "one"); !ok {
		t.Errorf("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(3, "three"); !ok {
		t.Errorf("newest entry 3 missing")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 {
		t.Errorf("stats = %+v, want 1 eviction and len 2", st)
	}

	// Re-putting an existing key updates in place, no eviction.
	c.Put(3, "three", JobResult{ResultBits: "3b"})
	if got, _ := c.Get(3, "three"); got.ResultBits != "3b" {
		t.Errorf("in-place update lost: %+v", got)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("in-place update evicted: %+v", st)
	}
}

func TestExecutorInvalidSpecNeverExecutes(t *testing.T) {
	exec := &Executor{}
	res, err := exec.Run(JobSpec{App: "nope", Mode: "hybrid"})
	if err != nil {
		t.Fatalf("Run() error = %v", err)
	}
	if res.Status != StatusInvalid || len(res.InvalidFields) == 0 {
		t.Fatalf("Run() = %+v, want StatusInvalid with field detail", res)
	}
	if exec.Executions() != 0 {
		t.Fatalf("invalid spec executed (%d executions)", exec.Executions())
	}
}

func TestExecutorDeterminism(t *testing.T) {
	// Two independent executors must agree bit-for-bit on the same spec —
	// the property the dedupe cache's exactness argument rests on.
	spec := JobSpec{App: "ep", Mode: "hybrid", FaultProfile: "drop"}
	a, err := (&Executor{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Executor{}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != StatusOK || b.Status != StatusOK {
		t.Fatalf("statuses %s/%s, want ok/ok (%s %s)", a.Status, b.Status, a.Error, b.Error)
	}
	if d := diffResults(a, b); d != "" {
		t.Fatalf("independent runs differ: %s", d)
	}
	if a.StateFingerprint == "" || a.MemHash == "" || a.ResultBits == "" {
		t.Fatalf("missing fingerprints: %+v", a)
	}
}
