package fleet

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecPanicRetryThenRecover: a transient panic (first attempt only)
// is retried with backoff and the job still succeeds; the counters and
// Attempts reflect the retry.
func TestExecPanicRetryThenRecover(t *testing.T) {
	var slept atomic.Int64
	exec := NewExecutor(ExecOptions{Sleep: func(d time.Duration) {
		if d <= 0 {
			t.Errorf("backoff slept %v, want > 0", d)
		}
		slept.Add(1)
	}})
	exec.BeforeRun = func(spec JobSpec, attempt int) {
		if attempt == 1 {
			panic("transient fault")
		}
	}
	res, err := exec.Run(validSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status != StatusOK {
		t.Fatalf("status = %q (%s), want ok after retry", res.Status, res.Error)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
	st := exec.Stats()
	if st.Panics != 1 || st.Retries != 1 || slept.Load() != 1 {
		t.Fatalf("stats = %+v (slept %d), want 1 panic, 1 retry, 1 backoff", st, slept.Load())
	}
	if len(exec.Quarantined()) != 0 {
		t.Fatalf("recovered job quarantined: %v", exec.Quarantined())
	}
}

// TestExecPanicExhaustsIntoQuarantine: a cell that panics on every
// attempt becomes a typed StatusPanic result carrying the stack, and its
// fingerprint is quarantined — the identical spec is refused without
// executing again.
func TestExecPanicExhaustsIntoQuarantine(t *testing.T) {
	exec := NewExecutor(ExecOptions{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	exec.BeforeRun = func(JobSpec, int) { panic("poisoned cell") }
	res, err := exec.Run(validSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status != StatusPanic || res.Attempts != 2 {
		t.Fatalf("result = {%s, attempts %d}, want panic after 2 attempts", res.Status, res.Attempts)
	}
	if !strings.Contains(res.Error, "poisoned cell") {
		t.Fatalf("panic result error %q does not carry the panic value", res.Error)
	}
	if len(exec.Quarantined()) != 1 {
		t.Fatalf("quarantine = %v, want the poisoned fingerprint", exec.Quarantined())
	}

	exec.BeforeRun = nil // even a now-healthy config stays quarantined
	execsBefore := exec.Executions()
	res, err = exec.Run(validSpec())
	if err != nil {
		t.Fatalf("Run (quarantined): %v", err)
	}
	if res.Status != StatusQuarantined {
		t.Fatalf("quarantined resubmit status = %q, want %q", res.Status, StatusQuarantined)
	}
	if exec.Executions() != execsBefore {
		t.Fatal("quarantined job executed")
	}
	if exec.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined counter = %d, want 1", exec.Stats().Quarantined)
	}
}

// TestExecDeadlineCancels: both the spec's deadline_ms and the server
// watchdog abort a large cell into a typed canceled result with partial
// virtual time, instead of hanging.
func TestExecDeadlineCancels(t *testing.T) {
	slow := JobSpec{App: "cg", Mode: "sdsm", Nodes: 8}
	t.Run("spec deadline_ms", func(t *testing.T) {
		exec := &Executor{}
		spec := slow
		spec.DeadlineMS = 1
		res, err := exec.Run(spec)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Status != StatusCanceled {
			t.Fatalf("status = %q (%s), want canceled", res.Status, res.Error)
		}
		if res.TimeNs <= 0 {
			t.Fatalf("canceled result TimeNs = %d, want partial virtual time > 0", res.TimeNs)
		}
		if !strings.Contains(res.Error, "deadline") {
			t.Fatalf("canceled error %q does not name the deadline", res.Error)
		}
		if exec.Stats().Cancels != 1 {
			t.Fatalf("Cancels = %d, want 1", exec.Stats().Cancels)
		}
	})
	t.Run("server watchdog", func(t *testing.T) {
		exec := NewExecutor(ExecOptions{MaxJobTime: time.Millisecond})
		res, err := exec.Run(slow)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Status != StatusCanceled {
			t.Fatalf("status = %q (%s), want canceled", res.Status, res.Error)
		}
	})
}

// TestDeadlineMSNotIdentity: deadline_ms is execution control, not
// config identity — it must not perturb the canonical string or the
// fingerprint, so a deadline-guarded job still dedupes against its
// unguarded twin.
func TestDeadlineMSNotIdentity(t *testing.T) {
	a := validSpec()
	b := validSpec()
	b.DeadlineMS = 30_000
	if a.Canonical() != b.Canonical() || a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("deadline_ms changed identity: %q vs %q", a.Canonical(), b.Canonical())
	}
}

// TestNegativeDeadlineMSInvalid: validation rejects a negative deadline.
func TestNegativeDeadlineMSInvalid(t *testing.T) {
	spec := validSpec()
	spec.DeadlineMS = -1
	exec := &Executor{}
	res, err := exec.Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Status != StatusInvalid {
		t.Fatalf("status = %q, want invalid", res.Status)
	}
}
