package dsm

import "testing"

// Diff-engine benchmarks. The twin/cur pairs model the common flush
// shapes: a page with a few dirty words (scalar updates), a page with a
// dense dirty block (a node's vector slice), and a fully clean page (the
// diff scan's fast path, which dominates when false sharing is low).

// diffPair builds a twin/cur pair with the given dirty byte ranges.
func diffPair(dirty ...[2]int) (twin, cur []byte) {
	twin = make([]byte, PageSize)
	cur = make([]byte, PageSize)
	for i := range twin {
		twin[i] = byte(i * 7)
		cur[i] = twin[i]
	}
	for _, r := range dirty {
		for i := r[0]; i < r[1]; i++ {
			cur[i] ^= 0xff
		}
	}
	return twin, cur
}

func benchMakeDiff(b *testing.B, dirty ...[2]int) {
	twin, cur := diffPair(dirty...)
	var d Diff
	DiffInto(&d, 3, twin, cur) // warm the run slice and arena
	b.SetBytes(PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffInto(&d, 3, twin, cur)
		if len(dirty) > 0 && d.Empty() {
			b.Fatal("empty diff for dirty page")
		}
	}
}

// BenchmarkMakeDiff is the headline diff-scan benchmark: the
// steady-state flush path (DiffInto with a reused Diff, as the protocol
// engine runs it) over a page with one dense dirty block, the shape a
// blocked numeric kernel produces.
func BenchmarkMakeDiff(b *testing.B) { benchMakeDiff(b, [2]int{512, 1536}) }

// BenchmarkMakeDiffClean scans a page with no modifications (pure
// comparison throughput, no run assembly).
func BenchmarkMakeDiffClean(b *testing.B) { benchMakeDiff(b) }

// BenchmarkMakeDiffSparse scans a page with eight scattered dirty words.
func BenchmarkMakeDiffSparse(b *testing.B) {
	benchMakeDiff(b,
		[2]int{0, 4}, [2]int{512, 516}, [2]int{1024, 1028}, [2]int{1536, 1540},
		[2]int{2048, 2052}, [2]int{2560, 2564}, [2]int{3072, 3076}, [2]int{4092, 4096})
}

// BenchmarkMakeDiffAlloc measures the allocating convenience API (a
// fresh Diff per scan), the cost DiffInto's arena reuse removes.
func BenchmarkMakeDiffAlloc(b *testing.B) {
	twin, cur := diffPair([2]int{512, 1536})
	b.SetBytes(PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := MakeDiff(3, twin, cur)
		if d.Empty() {
			b.Fatal("empty diff for dirty page")
		}
	}
}

func BenchmarkDiffApply(b *testing.B) {
	twin, cur := diffPair([2]int{512, 1536}, [2]int{2048, 2052})
	d := MakeDiff(3, twin, cur)
	dst := make([]byte, PageSize)
	copy(dst, twin)
	b.SetBytes(PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply(dst)
	}
}
