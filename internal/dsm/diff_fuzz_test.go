package dsm

import (
	"bytes"
	"testing"
)

// FuzzDiffRoundtrip guards the word-wise scanner's boundary handling:
// for any twin/cur pair (including lengths that are not a multiple of
// the uint64 stride or of the word size), applying MakeDiff's output
// onto a copy of the twin must reproduce cur exactly, and the modeled
// wire size must cover at least the run payloads. DiffInto into a dirty
// reused Diff must produce the same runs as a fresh scan.
func FuzzDiffRoundtrip(f *testing.F) {
	f.Add([]byte{}, []byte{}, 0)
	f.Add([]byte{1, 2, 3, 4}, []byte{1, 9, 3, 4}, 0)
	// Tail shorter than a word, run ending at the buffer end.
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, []byte{1, 2, 3, 4, 5, 6, 8}, 1)
	// Stride boundary: change exactly at byte 8.
	f.Add(bytes.Repeat([]byte{7}, 24), append(bytes.Repeat([]byte{7}, 8), bytes.Repeat([]byte{9}, 16)...), 2)
	seedTwin := make([]byte, PageSize)
	seedCur := make([]byte, PageSize)
	for i := range seedCur {
		seedTwin[i] = byte(i)
		seedCur[i] = byte(i)
	}
	seedCur[0] ^= 1
	seedCur[PageSize-1] ^= 1
	f.Add(seedTwin, seedCur, 3)

	reused := &Diff{}
	f.Fuzz(func(t *testing.T, twin, cur []byte, page int) {
		// The scanner requires equal lengths; trim to the shorter input.
		n := len(twin)
		if len(cur) < n {
			n = len(cur)
		}
		twin, cur = twin[:n], cur[:n]

		d := MakeDiff(page, twin, cur)

		got := make([]byte, n)
		copy(got, twin)
		d.Apply(got)
		if !bytes.Equal(got, cur) {
			t.Fatalf("roundtrip mismatch (n=%d): diff %+v", n, d.Runs)
		}

		payload := 0
		for i, r := range d.Runs {
			payload += len(r.Data)
			if len(r.Data) == 0 {
				t.Fatalf("run %d is empty", i)
			}
			if r.Off%diffWord != 0 {
				t.Fatalf("run %d offset %d not word-aligned", i, r.Off)
			}
			if r.Off+len(r.Data) > n {
				t.Fatalf("run %d overruns the page: off=%d len=%d n=%d", i, r.Off, len(r.Data), n)
			}
			if i > 0 && r.Off < d.Runs[i-1].Off+len(d.Runs[i-1].Data)+diffWord {
				t.Fatalf("runs %d,%d not separated by a clean word", i-1, i)
			}
		}
		if d.WireBytes() < payload {
			t.Fatalf("WireBytes %d < payload %d", d.WireBytes(), payload)
		}
		if d.Empty() != bytes.Equal(twin, cur) {
			t.Fatalf("Empty()=%v but twin==cur is %v", d.Empty(), bytes.Equal(twin, cur))
		}

		// A reused Diff (pooled path) must produce identical runs.
		DiffInto(reused, page, twin, cur)
		if len(reused.Runs) != len(d.Runs) {
			t.Fatalf("reused scan: %d runs vs %d", len(reused.Runs), len(d.Runs))
		}
		for i := range d.Runs {
			if reused.Runs[i].Off != d.Runs[i].Off || !bytes.Equal(reused.Runs[i].Data, d.Runs[i].Data) {
				t.Fatalf("reused scan diverges at run %d", i)
			}
		}
	})
}
