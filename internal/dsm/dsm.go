// Package dsm holds the data structures of the ParADE software
// distributed shared memory: the five-state page table of paper Fig. 5,
// the simulated MMU with dual address spaces that realizes the four
// atomic-page-update methods of §5.1, twin/diff machinery, and the
// write-notice records exchanged at barriers.
//
// The protocol logic that drives these structures lives in
// parade/internal/hlrc; this package is deliberately passive so the state
// machine can be tested in isolation.
package dsm

import "fmt"

// PageSize is the coherence unit, matching the i386 virtual memory page.
const PageSize = 4096

// State is a page's protocol state (paper Fig. 5).
type State uint8

const (
	// Invalid: the page is not present in local memory; any access faults.
	Invalid State = iota
	// Transient: a thread is fetching the page; the update is incomplete.
	Transient
	// Blocked: additional threads are waiting for the in-flight update.
	Blocked
	// ReadOnly: the page is valid and clean.
	ReadOnly
	// Dirty: the page is valid and has local modifications (a twin exists
	// unless this node is the page's home).
	Dirty
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "INVALID"
	case Transient:
		return "TRANSIENT"
	case Blocked:
		return "BLOCKED"
	case ReadOnly:
		return "READ_ONLY"
	case Dirty:
		return "DIRTY"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ValidTransition reports whether from -> to is an edge of the Fig. 5
// state diagram (with self-loops allowed for idempotent operations).
func ValidTransition(from, to State) bool {
	switch from {
	case Invalid:
		// Access fault starts a fetch.
		return to == Transient || to == Invalid
	case Transient:
		// Another thread faults (-> Blocked), or the update completes.
		return to == Blocked || to == ReadOnly || to == Dirty || to == Transient
	case Blocked:
		// The update completes and waiters are released.
		return to == ReadOnly || to == Dirty || to == Blocked
	case ReadOnly:
		// Write fault dirties; a write notice invalidates.
		return to == Dirty || to == Invalid || to == ReadOnly
	case Dirty:
		// Barrier flush cleans; a write notice invalidates.
		return to == ReadOnly || to == Invalid || to == Dirty
	default:
		return false
	}
}

// Perm is the access permission of a page in the *application* address
// space. The system address space (used by the protocol to install
// fetched pages and apply diffs) is always writable — that separation is
// exactly the paper's fix for the atomic-page-update problem.
type Perm uint8

const (
	PermNone Perm = iota
	PermRead
	PermReadWrite
)

func (p Perm) String() string {
	switch p {
	case PermNone:
		return "---"
	case PermRead:
		return "r--"
	case PermReadWrite:
		return "rw-"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// PageInfo is one node's bookkeeping for one shared page.
type PageInfo struct {
	State State
	Perm  Perm
	Home  int    // current home node in this node's directory
	Twin  []byte // pristine copy taken at the first write of an interval
}

// Table is one node's page table over the shared memory pool.
type Table struct {
	Node  int
	Pages []PageInfo
}

// NewTable creates a page table for npages pages. On the master node
// (node 0) every page starts READ_ONLY with itself as home; elsewhere
// pages start INVALID with the master as home (paper §5.2.3).
func NewTable(node, npages int) *Table {
	t := &Table{Node: node, Pages: make([]PageInfo, npages)}
	for i := range t.Pages {
		if node == 0 {
			t.Pages[i] = PageInfo{State: ReadOnly, Perm: PermRead, Home: 0}
		} else {
			t.Pages[i] = PageInfo{State: Invalid, Perm: PermNone, Home: 0}
		}
	}
	return t
}

// Set transitions page pg to state to, panicking on an edge that the
// Fig. 5 diagram does not allow. Callers set Perm separately because the
// permission change is the *mechanism* (MMU) while the state is protocol
// bookkeeping — keeping them distinct is what exposes the atomic-page-
// update problem in the first place.
func (t *Table) Set(pg int, to State) {
	from := t.Pages[pg].State
	if !ValidTransition(from, to) {
		panic(fmt.Sprintf("dsm: node %d page %d: illegal transition %v -> %v", t.Node, pg, from, to))
	}
	t.Pages[pg].State = to
}

// PageOf returns the page index containing byte address addr.
func PageOf(addr int) int { return addr / PageSize }
