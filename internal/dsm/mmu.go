package dsm

// The simulated MMU. A real page-based SDSM manipulates page protections
// with mprotect and catches SIGSEGV; under the Go runtime that mechanism
// is unavailable (the runtime owns signal handling), so the MMU is
// modeled explicitly: frames hold page contents, appPerm holds the
// *application* address space permissions, and the protocol writes
// through a separate *system* path.
//
// §5.1 of the paper describes the atomic-page-update problem: in a
// single-mapping system the fault handler must make the application page
// writable before copying in the fetched contents, which lets a second
// application thread read a half-updated page without faulting. The four
// remedies (file mapping, System V shared memory, the mdup() syscall,
// child process creation) all create a second, always-writable mapping of
// the same physical frame. UpdateStrategy selects between the buggy
// single-mapping behaviour (for demonstrating the race) and the dual
// mappings (used by the runtime).

import (
	"encoding/binary"
	"math"

	"parade/internal/sim"
)

// UpdateStrategy selects how the system path gains write access to a
// page frame while the application path stays protected.
type UpdateStrategy int

const (
	// SingleMapping reproduces the unprotected update of a conventional
	// single-threaded SDSM: the application mapping is made writable for
	// the duration of the update. Racy in a multi-threaded node.
	SingleMapping UpdateStrategy = iota
	// FileMapping maps a file twice (mmap), the conventional remedy.
	FileMapping
	// SysVShm attaches a System V shared memory segment twice (shmat).
	SysVShm
	// Mdup uses the paper's custom mdup() syscall to duplicate page
	// table entries for an anonymous region.
	Mdup
	// ChildProcess forks a child whose page table shares the frames.
	ChildProcess
)

func (u UpdateStrategy) String() string {
	switch u {
	case SingleMapping:
		return "single-mapping"
	case FileMapping:
		return "file-mapping"
	case SysVShm:
		return "sysv-shm"
	case Mdup:
		return "mdup"
	case ChildProcess:
		return "child-process"
	default:
		return "unknown"
	}
}

// Dual reports whether the strategy provides a second access path, i.e.
// whether the application mapping can stay protected during updates.
func (u UpdateStrategy) Dual() bool { return u != SingleMapping }

// SetupCost is the one-time cost of establishing the mapping for the
// whole pool; UpdateCost is the per-page-update overhead of the access
// path. The paper's companion study found the dual methods comparable on
// Linux; the numbers preserve that ordering without pretending precision.
func (u UpdateStrategy) SetupCost() sim.Duration {
	switch u {
	case FileMapping:
		return 120 * sim.Microsecond
	case SysVShm:
		return 80 * sim.Microsecond
	case Mdup:
		return 40 * sim.Microsecond
	case ChildProcess:
		return 300 * sim.Microsecond
	default:
		return 0
	}
}

// UpdateCost is the extra per-update CPU cost of the strategy's access
// path relative to a plain store.
func (u UpdateStrategy) UpdateCost() sim.Duration {
	switch u {
	case SingleMapping:
		return 2 * sim.Microsecond // two mprotect calls
	case FileMapping:
		return 1 * sim.Microsecond
	case SysVShm:
		return 1 * sim.Microsecond
	case Mdup:
		return 800 * sim.Nanosecond
	case ChildProcess:
		return 1200 * sim.Nanosecond
	default:
		return 0
	}
}

// Memory is one node's view of the shared pool: lazily-allocated frames
// plus the application address space permissions. Frames double as the
// "physical memory"; the system path writes them directly.
type Memory struct {
	strategy UpdateStrategy
	npages   int
	frames   [][]byte
	appPerm  []Perm
}

// NewMemory creates a node memory image of npages pages, all protected.
func NewMemory(npages int, strategy UpdateStrategy) *Memory {
	return &Memory{
		strategy: strategy,
		npages:   npages,
		frames:   make([][]byte, npages),
		appPerm:  make([]Perm, npages),
	}
}

// Strategy returns the atomic-page-update strategy in use.
func (m *Memory) Strategy() UpdateStrategy { return m.strategy }

// NPages returns the number of pages in the pool.
func (m *Memory) NPages() int { return m.npages }

// Frame returns page pg's frame, allocating a zero frame on first touch.
// This is the system access path: no permission check.
func (m *Memory) Frame(pg int) []byte {
	if m.frames[pg] == nil {
		m.frames[pg] = make([]byte, PageSize)
	}
	return m.frames[pg]
}

// FrameIfPresent returns the frame or nil if the page was never touched.
func (m *Memory) FrameIfPresent(pg int) []byte { return m.frames[pg] }

// AppPerm returns the application address space permission of page pg.
func (m *Memory) AppPerm(pg int) Perm { return m.appPerm[pg] }

// SetAppPerm changes the application mapping's permission (mprotect).
func (m *Memory) SetAppPerm(pg int, p Perm) { m.appPerm[pg] = p }

// AppReadOK reports whether an application-path read of addr would
// succeed, i.e. whether the access faults. The DSM fast path.
func (m *Memory) AppReadOK(addr int) bool { return m.appPerm[PageOf(addr)] >= PermRead }

// AppWriteOK reports whether an application-path write of addr would
// succeed.
func (m *Memory) AppWriteOK(addr int) bool { return m.appPerm[PageOf(addr)] == PermReadWrite }

// BeginSystemUpdate prepares page pg for a protocol update (installing a
// fetched page or applying a diff). With a dual-mapping strategy the
// application permission is untouched; with SingleMapping the
// application mapping itself must be opened for writing — the root of
// the atomic-page-update problem. It returns the writable frame.
func (m *Memory) BeginSystemUpdate(pg int) []byte {
	if !m.strategy.Dual() {
		m.appPerm[pg] = PermReadWrite
	}
	return m.Frame(pg)
}

// EndSystemUpdate completes a protocol update, installing the final
// application permission.
func (m *Memory) EndSystemUpdate(pg int, finalPerm Perm) {
	m.appPerm[pg] = finalPerm
}

// Typed accessors over the pool. Addresses are byte offsets into the
// shared address space; 8-byte values must be 8-byte aligned so they
// never straddle a page boundary. These perform NO permission check —
// the protocol layer's EnsureRead/EnsureWrite runs first.

// ReadF64 loads the float64 at addr.
func (m *Memory) ReadF64(addr int) float64 {
	f := m.frames[PageOf(addr)]
	if f == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(f[addr%PageSize:]))
}

// WriteF64 stores v at addr.
func (m *Memory) WriteF64(addr int, v float64) {
	f := m.Frame(PageOf(addr))
	binary.LittleEndian.PutUint64(f[addr%PageSize:], math.Float64bits(v))
}

// ReadI64 loads the int64 at addr.
func (m *Memory) ReadI64(addr int) int64 {
	f := m.frames[PageOf(addr)]
	if f == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(f[addr%PageSize:]))
}

// WriteI64 stores v at addr.
func (m *Memory) WriteI64(addr int, v int64) {
	f := m.Frame(PageOf(addr))
	binary.LittleEndian.PutUint64(f[addr%PageSize:], uint64(v))
}

// CopyIn installs src as the new contents of page pg via the system
// path. A nil src means the home never touched the page (all zeroes).
func (m *Memory) CopyIn(pg int, src []byte) {
	dst := m.Frame(pg)
	if src == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst, src)
}

// Allocator is a bump allocator over the shared address space.
type Allocator struct {
	next int
	size int
}

// NewAllocator creates an allocator over a pool of size bytes.
func NewAllocator(size int) *Allocator { return &Allocator{size: size} }

// Alloc reserves n bytes with the given alignment and returns the base
// address. It panics when the pool is exhausted — shared memory in the
// paper's runtime is likewise a fixed-size pool.
func (a *Allocator) Alloc(n, align int) int {
	if align <= 0 {
		align = 8
	}
	base := (a.next + align - 1) / align * align
	if base+n > a.size {
		panic("dsm: shared memory pool exhausted")
	}
	a.next = base + n
	return base
}

// AllocPage reserves n bytes starting on a fresh page, so that unrelated
// allocations never share a page (the paper's §7 guideline for reducing
// false sharing).
func (a *Allocator) AllocPage(n int) int { return a.Alloc(n, PageSize) }

// Used returns the number of bytes allocated so far.
func (a *Allocator) Used() int { return a.next }

// AdvanceTo moves the bump pointer forward to off if it is behind it.
// Replicated allocators (one per event lane) use this to stay in
// lockstep after an allocation performed against one replica only.
func (a *Allocator) AdvanceTo(off int) {
	if off > a.size {
		panic("dsm: shared memory pool exhausted")
	}
	if off > a.next {
		a.next = off
	}
}
