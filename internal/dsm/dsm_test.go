package dsm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Invalid: "INVALID", Transient: "TRANSIENT", Blocked: "BLOCKED",
		ReadOnly: "READ_ONLY", Dirty: "DIRTY",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestFig5Transitions(t *testing.T) {
	allowed := []struct{ from, to State }{
		{Invalid, Transient},  // access fault starts fetch
		{Transient, Blocked},  // second thread faults during fetch
		{Transient, ReadOnly}, // fetch completes (read fault)
		{Transient, Dirty},    // fetch completes (write fault)
		{Blocked, ReadOnly},   // fetch completes, waiters released
		{Blocked, Dirty},      //
		{ReadOnly, Dirty},     // write fault: twin + dirty
		{ReadOnly, Invalid},   // write notice invalidates
		{Dirty, ReadOnly},     // barrier flush cleans
		{Dirty, Invalid},      // write notice invalidates
	}
	for _, e := range allowed {
		if !ValidTransition(e.from, e.to) {
			t.Errorf("edge %v -> %v should be allowed", e.from, e.to)
		}
	}
	forbidden := []struct{ from, to State }{
		{Invalid, ReadOnly}, // must pass through TRANSIENT (the fetch)
		{Invalid, Dirty},
		{Invalid, Blocked},
		{ReadOnly, Transient},
		{ReadOnly, Blocked},
		{Dirty, Transient},
		{Dirty, Blocked},
		{Blocked, Invalid},
		{Blocked, Transient},
		{Transient, Invalid},
	}
	for _, e := range forbidden {
		if ValidTransition(e.from, e.to) {
			t.Errorf("edge %v -> %v should be forbidden", e.from, e.to)
		}
	}
}

func TestTableInitialState(t *testing.T) {
	master := NewTable(0, 4)
	for pg, pi := range master.Pages {
		if pi.State != ReadOnly || pi.Home != 0 || pi.Perm != PermRead {
			t.Errorf("master page %d = %+v", pg, pi)
		}
	}
	slave := NewTable(2, 4)
	for pg, pi := range slave.Pages {
		if pi.State != Invalid || pi.Home != 0 || pi.Perm != PermNone {
			t.Errorf("slave page %d = %+v", pg, pi)
		}
	}
}

func TestTableSetPanicsOnIllegalEdge(t *testing.T) {
	tab := NewTable(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("illegal INVALID -> READ_ONLY did not panic")
		}
	}()
	tab.Set(0, ReadOnly)
}

func TestMakeDiffAndApply(t *testing.T) {
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	for i := range twin {
		twin[i] = byte(i)
		cur[i] = byte(i)
	}
	// Two separated modifications.
	cur[100] = 0xFF
	cur[101] = 0xFE
	cur[2000] = 0xAA
	d := MakeDiff(3, twin, cur)
	if d.Page != 3 {
		t.Fatalf("page = %d", d.Page)
	}
	if len(d.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (%+v)", len(d.Runs), d.Runs)
	}
	dst := make([]byte, PageSize)
	copy(dst, twin)
	d.Apply(dst)
	if !bytes.Equal(dst, cur) {
		t.Fatal("apply did not reconstruct the modified page")
	}
}

func TestDiffEmptyWhenUnchanged(t *testing.T) {
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	d := MakeDiff(0, twin, cur)
	if !d.Empty() {
		t.Fatalf("diff of identical pages has %d runs", len(d.Runs))
	}
	if d.WireBytes() != 8 {
		t.Fatalf("empty diff wire bytes = %d", d.WireBytes())
	}
}

func TestDiffCoalescesAdjacentWords(t *testing.T) {
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	for i := 64; i < 128; i++ {
		cur[i] = 1
	}
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 {
		t.Fatalf("adjacent modified words produced %d runs", len(d.Runs))
	}
	if d.Runs[0].Off != 64 || len(d.Runs[0].Data) != 64 {
		t.Fatalf("run = off %d len %d", d.Runs[0].Off, len(d.Runs[0].Data))
	}
}

func TestDiffWireBytesSmallerThanPageForSparseWrites(t *testing.T) {
	twin := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	cur[8] = 1
	d := MakeDiff(0, twin, cur)
	if d.WireBytes() >= PageSize/4 {
		t.Fatalf("sparse diff costs %d wire bytes", d.WireBytes())
	}
}

// Property: Apply(MakeDiff(twin, cur)) onto a copy of twin always
// reconstructs cur exactly, for arbitrary modifications.
func TestDiffRoundTripProperty(t *testing.T) {
	prop := func(edits []struct {
		Off uint16
		Val byte
	}) bool {
		twin := make([]byte, PageSize)
		for i := range twin {
			twin[i] = byte(i * 7)
		}
		cur := make([]byte, PageSize)
		copy(cur, twin)
		for _, e := range edits {
			cur[int(e.Off)%PageSize] = e.Val
		}
		d := MakeDiff(0, twin, cur)
		dst := make([]byte, PageSize)
		copy(dst, twin)
		d.Apply(dst)
		return bytes.Equal(dst, cur)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryTypedAccessors(t *testing.T) {
	m := NewMemory(4, FileMapping)
	m.WriteF64(16, 3.25)
	if got := m.ReadF64(16); got != 3.25 {
		t.Fatalf("ReadF64 = %v", got)
	}
	m.WriteI64(PageSize+8, -77)
	if got := m.ReadI64(PageSize + 8); got != -77 {
		t.Fatalf("ReadI64 = %v", got)
	}
	// Untouched pages read as zero without allocating a frame.
	if got := m.ReadF64(3 * PageSize); got != 0 {
		t.Fatalf("untouched read = %v", got)
	}
	if m.FrameIfPresent(3) != nil {
		t.Fatal("read allocated a frame")
	}
}

func TestMemoryLazyFrames(t *testing.T) {
	m := NewMemory(8, FileMapping)
	if m.FrameIfPresent(5) != nil {
		t.Fatal("frame allocated before touch")
	}
	f := m.Frame(5)
	if len(f) != PageSize {
		t.Fatalf("frame len %d", len(f))
	}
	if m.FrameIfPresent(5) == nil {
		t.Fatal("frame not retained")
	}
}

func TestCopyInNilZeroes(t *testing.T) {
	m := NewMemory(1, FileMapping)
	f := m.Frame(0)
	f[10] = 9
	m.CopyIn(0, nil)
	if f[10] != 0 {
		t.Fatal("CopyIn(nil) did not zero the frame")
	}
	src := make([]byte, PageSize)
	src[10] = 42
	m.CopyIn(0, src)
	if f[10] != 42 {
		t.Fatal("CopyIn did not install contents")
	}
}

func TestDualMappingKeepsAppProtectedDuringUpdate(t *testing.T) {
	for _, strat := range []UpdateStrategy{FileMapping, SysVShm, Mdup, ChildProcess} {
		m := NewMemory(1, strat)
		m.SetAppPerm(0, PermNone)
		frame := m.BeginSystemUpdate(0)
		if m.AppReadOK(0) {
			t.Errorf("%v: application could read mid-update", strat)
		}
		frame[0] = 1
		m.EndSystemUpdate(0, PermRead)
		if !m.AppReadOK(0) || m.AppWriteOK(0) {
			t.Errorf("%v: final perm wrong", strat)
		}
	}
}

func TestSingleMappingExposesMidUpdateRead(t *testing.T) {
	// The atomic-page-update problem (paper Fig. 4): with one mapping the
	// update must open the application permission, so a concurrent
	// application read succeeds while the page is half-written.
	m := NewMemory(1, SingleMapping)
	m.SetAppPerm(0, PermNone)
	_ = m.BeginSystemUpdate(0)
	if !m.AppReadOK(0) {
		t.Fatal("single mapping should have opened the app mapping")
	}
	m.EndSystemUpdate(0, PermRead)
}

func TestStrategyProperties(t *testing.T) {
	if SingleMapping.Dual() {
		t.Fatal("single mapping is not dual")
	}
	for _, s := range []UpdateStrategy{FileMapping, SysVShm, Mdup, ChildProcess} {
		if !s.Dual() {
			t.Errorf("%v should be dual", s)
		}
		if s.UpdateCost() <= 0 || s.SetupCost() <= 0 {
			t.Errorf("%v costs not positive", s)
		}
	}
	// The paper found the dual methods comparable: within a small factor.
	min, max := FileMapping.UpdateCost(), FileMapping.UpdateCost()
	for _, s := range []UpdateStrategy{SysVShm, Mdup, ChildProcess} {
		c := s.UpdateCost()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > 3*min {
		t.Fatalf("dual strategies not comparable: min %v max %v", min, max)
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(10 * PageSize)
	x := a.Alloc(10, 8)
	if x%8 != 0 {
		t.Fatalf("alloc not aligned: %d", x)
	}
	y := a.Alloc(4, 8)
	if y <= x {
		t.Fatalf("allocations overlap: %d then %d", x, y)
	}
	z := a.AllocPage(100)
	if z%PageSize != 0 {
		t.Fatalf("AllocPage not page aligned: %d", z)
	}
	if a.Used() != z+100 {
		t.Fatalf("Used = %d", a.Used())
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	a := NewAllocator(PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	a.Alloc(PageSize+1, 8)
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Fatal("PageOf boundary arithmetic wrong")
	}
}

func TestPermStrings(t *testing.T) {
	if PermNone.String() != "---" || PermRead.String() != "r--" || PermReadWrite.String() != "rw-" {
		t.Fatal("perm strings wrong")
	}
}
