package dsm

// Free lists for the protocol's page-sized buffers and diffs. The
// simulation kernel runs exactly one goroutine at a time, so plain
// slices need no locking (and no sync.Pool indirection). Ownership is
// strict hand-off: after Put, the caller must not retain the buffer or
// any sub-slice of it — the next Get may hand it to someone else.

// FramePool recycles PageSize buffers: twins taken at write faults and
// page snapshots sent in fetch replies. A frame returned by Get has
// undefined contents; the taker must overwrite all PageSize bytes.
type FramePool struct {
	free [][]byte

	// Gets and Hits count total and recycled Get calls, for tests and
	// the stats report.
	Gets, Hits int64
}

// Get returns a PageSize buffer, recycling a released one when possible.
func (p *FramePool) Get() []byte {
	p.Gets++
	if k := len(p.free) - 1; k >= 0 {
		b := p.free[k]
		p.free[k] = nil
		p.free = p.free[:k]
		p.Hits++
		return b
	}
	return make([]byte, PageSize)
}

// Put releases b back to the pool. Buffers of the wrong size (e.g. a
// frame that came from outside the pool) are dropped.
func (p *FramePool) Put(b []byte) {
	if len(b) != PageSize {
		return
	}
	p.free = append(p.free, b)
}

// DiffPool recycles Diff objects together with their run slices and
// payload arenas, so the flush path's steady state allocates nothing.
// A diff obtained from Get must be filled with DiffInto; Put invalidates
// every Run the diff carried.
type DiffPool struct {
	free []*Diff
}

// Get returns an empty Diff ready for DiffInto.
func (p *DiffPool) Get() *Diff {
	if k := len(p.free) - 1; k >= 0 {
		d := p.free[k]
		p.free[k] = nil
		p.free = p.free[:k]
		return d
	}
	return &Diff{}
}

// Put resets d (keeping its run and arena capacity) and releases it.
func (p *DiffPool) Put(d *Diff) {
	d.Page = 0
	for i := range d.Runs {
		d.Runs[i] = Run{} // drop payload references until the next scan
	}
	d.Runs = d.Runs[:0]
	d.arena = d.arena[:0]
	p.free = append(p.free, d)
}
