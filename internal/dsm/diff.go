package dsm

// Twin/diff machinery of the HLRC protocol (§5.2). A twin is a pristine
// copy of a page taken at the first write fault of an interval; at flush
// time the diff — the words that changed relative to the twin — is sent
// to the page's home, which applies it to its master copy.

// Run is a contiguous span of modified bytes within a page.
type Run struct {
	Off  int
	Data []byte
}

// Diff is the set of modifications one node made to one page during an
// interval, encoded as word-granularity runs.
type Diff struct {
	Page int
	Runs []Run
}

// diffWord is the comparison granularity; real HLRC implementations scan
// 32-bit words.
const diffWord = 4

// MakeDiff scans cur against twin and returns the modified runs.
// Both slices must be PageSize long.
func MakeDiff(page int, twin, cur []byte) Diff {
	d := Diff{Page: page}
	i := 0
	for i < PageSize {
		if wordEqual(twin, cur, i) {
			i += diffWord
			continue
		}
		start := i
		for i < PageSize && !wordEqual(twin, cur, i) {
			i += diffWord
		}
		data := make([]byte, i-start)
		copy(data, cur[start:i])
		d.Runs = append(d.Runs, Run{Off: start, Data: data})
	}
	return d
}

func wordEqual(a, b []byte, off int) bool {
	end := off + diffWord
	if end > PageSize {
		end = PageSize
	}
	for i := off; i < end; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply writes the diff's runs into dst (a PageSize frame).
func (d Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// Empty reports whether the diff carries no modifications.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// WireBytes is the modeled on-wire size: per-run offset/length headers
// plus the payload bytes, plus a small per-diff header.
func (d Diff) WireBytes() int {
	n := 8 // page id + run count
	for _, r := range d.Runs {
		n += 4 + len(r.Data)
	}
	return n
}

// WriteNotice records that a node modified a page during the interval
// that ended at a barrier. The master gathers these (piggybacked on
// barrier-arrival messages), derives invalidations and home migrations,
// and redistributes them with the barrier-departure message.
type WriteNotice struct {
	Page     int
	Modifier int
}
