package dsm

// Twin/diff machinery of the HLRC protocol (§5.2). A twin is a pristine
// copy of a page taken at the first write fault of an interval; at flush
// time the diff — the words that changed relative to the twin — is sent
// to the page's home, which applies it to its master copy.
//
// The scanner compares uint64 strides to skip clean regions (the common
// case: most of a page is unmodified at flush time) and falls back to
// 32-bit words at mismatches, so run boundaries are identical to a plain
// word-by-word scan. Run payloads for one diff live in a single
// page-sized arena, which DiffInto reuses across scans: the steady-state
// diff path allocates nothing.

import (
	"bytes"
	"encoding/binary"
)

// Run is a contiguous span of modified bytes within a page.
type Run struct {
	Off  int
	Data []byte
}

// Diff is the set of modifications one node made to one page during an
// interval, encoded as word-granularity runs.
type Diff struct {
	Page int
	Runs []Run
	// arena backs every run's Data. Its capacity is retained across
	// DiffInto calls so rescanning into the same Diff never allocates.
	arena []byte
}

// diffWord is the comparison granularity; real HLRC implementations scan
// 32-bit words.
const diffWord = 4

// strideBytes is the fast-path comparison stride over clean regions.
const strideBytes = 8

// cleanChunk is the memequal stride: clean regions are first skipped a
// cache-line at a time before falling back to word comparisons.
const cleanChunk = 64

// MakeDiff scans cur against twin and returns the modified runs.
// Both slices must be the same length (normally PageSize). Callers on a
// hot path should reuse a Diff via DiffInto instead.
func MakeDiff(page int, twin, cur []byte) Diff {
	var d Diff
	DiffInto(&d, page, twin, cur)
	return d
}

// DiffInto rebuilds d in place as the diff of cur against twin, reusing
// d's run slice and payload arena. Both slices must be the same length.
// The runs reference d's internal storage: they are invalidated by the
// next DiffInto on d (or DiffPool.Put), and remain valid until then.
func DiffInto(d *Diff, page int, twin, cur []byte) {
	n := len(twin)
	if len(cur) != n {
		panic("dsm: DiffInto twin/cur length mismatch")
	}
	d.Page = page
	d.Runs = d.Runs[:0]
	if cap(d.arena) < n {
		// One allocation per Diff lifetime: total run payload never
		// exceeds the page, so the arena never reallocates mid-scan
		// (reallocation would dangle earlier runs' Data).
		d.arena = make([]byte, 0, n)
	}
	d.arena = d.arena[:0]

	i := 0
	for i < n {
		// Fast-skip clean regions: a cache line at a time via memequal,
		// then a uint64 stride at a time to localize the first dirty word.
		for i+cleanChunk <= n && bytes.Equal(twin[i:i+cleanChunk], cur[i:i+cleanChunk]) {
			i += cleanChunk
		}
		for i+strideBytes <= n &&
			binary.LittleEndian.Uint64(twin[i:]) == binary.LittleEndian.Uint64(cur[i:]) {
			i += strideBytes
		}
		if i >= n {
			break
		}
		if wordEqual(twin, cur, i, n) {
			// The mismatching stride's first word is clean (the change is
			// in its second half), or we are at a clean tail word.
			i += diffWord
			continue
		}
		start := i
		i += diffWord
		// Extend the run a stride at a time while both words of the
		// stride differ; the XOR's halves show which words changed.
		for i+strideBytes <= n {
			x := binary.LittleEndian.Uint64(twin[i:]) ^ binary.LittleEndian.Uint64(cur[i:])
			if uint32(x) == 0 || x>>32 == 0 {
				break // a clean word ends the run within this stride
			}
			i += strideBytes
		}
		for i < n && !wordEqual(twin, cur, i, n) {
			i += diffWord
		}
		end := i
		if end > n {
			end = n // last word of a non-multiple-of-4 page is short
		}
		off := len(d.arena)
		d.arena = append(d.arena, cur[start:end]...)
		d.Runs = append(d.Runs, Run{Off: start, Data: d.arena[off:len(d.arena):len(d.arena)]})
	}
}

// wordEqual compares the diffWord-sized word at off, clamped to n for
// the tail of a page whose size is not a multiple of diffWord.
func wordEqual(a, b []byte, off, n int) bool {
	if off+diffWord <= n {
		return binary.LittleEndian.Uint32(a[off:]) == binary.LittleEndian.Uint32(b[off:])
	}
	for i := off; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply writes the diff's runs into dst (a PageSize frame).
func (d Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// ApplyInto writes the diff's runs into dst. It is Apply for pooled
// diffs: the *Diff receiver avoids copying the header, and the caller
// typically returns d to its DiffPool immediately afterwards.
func (d *Diff) ApplyInto(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// Empty reports whether the diff carries no modifications.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// WireBytes is the modeled on-wire size: per-run offset/length headers
// plus the payload bytes, plus a small per-diff header.
func (d Diff) WireBytes() int {
	n := 8 // page id + run count
	for _, r := range d.Runs {
		n += 4 + len(r.Data)
	}
	return n
}

// WriteNotice records that a node modified a page during the interval
// that ended at a barrier. The master gathers these (piggybacked on
// barrier-arrival messages), derives invalidations and home migrations,
// and redistributes them with the barrier-departure message.
type WriteNotice struct {
	Page     int
	Modifier int
}
