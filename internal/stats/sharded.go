package stats

import "reflect"

// Sharded wraps a Counters instance with optional per-node shards for the
// lane-parallel simulation kernel. In legacy (single-loop) mode every
// subsystem increments the shared base instance directly, which is safe
// because exactly one simulated process runs at a time. With per-node
// event lanes that invariant is per lane, not global, so each subsystem
// routes every increment through At(node): without shards At returns the
// base (byte-identical legacy behavior); with shards enabled it returns a
// lane-private Counters that the owning lane alone touches. Fold, called
// once after Run with the kernel quiesced, adds every shard into the base
// so readers (reports, tests) see the same summed view either way — sums
// commute, so the totals are independent of lane interleaving.
type Sharded struct {
	base   *Counters
	shards []Counters
}

// NewSharded wraps base. Until EnableShards is called, At returns base
// for every node.
func NewSharded(base *Counters) *Sharded { return &Sharded{base: base} }

// EnableShards switches the wrapper to per-node accumulation for a
// lane-mode run. Call before the simulation starts.
func (s *Sharded) EnableShards(nodes int) { s.shards = make([]Counters, nodes) }

// Sharded reports whether per-node shards are active.
func (s *Sharded) Sharded() bool { return s.shards != nil }

// Base returns the wrapped aggregate instance.
func (s *Sharded) Base() *Counters { return s.base }

// At returns the Counters that node's increments must target. Lane-safe
// only for the lane that owns node (or any context when shards are off
// or the kernel is serialized).
func (s *Sharded) At(node int) *Counters {
	if s.shards == nil {
		return s.base
	}
	return &s.shards[node]
}

// Fold adds every shard into the base and zeroes the shards. Call once
// after the run, with no lanes executing.
func (s *Sharded) Fold() {
	for i := range s.shards {
		s.base.Add(&s.shards[i])
		s.shards[i] = Counters{}
	}
}

// Add accumulates o into c field-wise. Every Counters field is an int64
// tally, so reflection walks them without a hand-maintained list that
// would silently go stale when a counter is added.
func (c *Counters) Add(o *Counters) {
	cv := reflect.ValueOf(c).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < cv.NumField(); i++ {
		cv.Field(i).SetInt(cv.Field(i).Int() + ov.Field(i).Int())
	}
}
