// Package stats collects the cluster-wide protocol and traffic counters
// for a simulated run. The simulation kernel is single-threaded (exactly
// one simulated process runs at a time), so plain integer fields are safe
// without atomics — the same invariant internal/obs relies on for its
// richer recording.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters aggregates everything the experiment harness reports alongside
// execution time. One Counters instance is shared by all subsystems of a
// cluster and is always on; per-node breakdowns, latency histograms, and
// per-region phase attribution live in internal/obs and are recorded only
// when a run attaches an obs.Recorder.
type Counters struct {
	// Network traffic.
	Messages     int64 // messages injected into the fabric
	Bytes        int64 // modeled bytes on the wire (incl. headers)
	LocalDeliver int64 // same-node deliveries (no NIC)

	// MPI-level operations.
	Sends      int64
	Bcasts     int64
	Allreduces int64
	MPIBarrier int64

	// DSM protocol activity.
	ReadFaults     int64
	WriteFaults    int64
	PageFetches    int64 // full-page transfers home -> faulter
	TwinsCreated   int64
	DiffsCreated   int64
	DiffsApplied   int64
	DiffBytes      int64 // payload bytes of diffs on the wire
	Invalidations  int64 // pages invalidated by write notices
	WriteNotices   int64
	HomeMigrations int64
	Barriers       int64 // SDSM global barriers

	// Protocol policy engine (nonzero only with a non-legacy policy).
	PolicyReclass       int64 // classifier class changes applied at barriers
	PolicyPushes        int64 // depart entries sent with update propagation
	PolicyRefreshes     int64 // pages eagerly re-fetched after a barrier
	PolicyHomeOverrides int64 // home elections that differ from the legacy rule

	// Lock manager (conventional SDSM path).
	LockRequests int64
	LockWaits    int64 // requests that found the lock held

	// Hybrid (message-passing) path.
	HybridCriticals  int64 // critical rounds served by collectives
	HybridSingles    int64 // singles served by a broadcast
	HybridReductions int64 // reduction clauses served by allreduce
	HybridAtomics    int64

	// Tasking runtime and its work-stealing scheduler.
	TasksSpawned     int64 // tasks pushed onto a node deque
	TasksExecuted    int64 // tasks run to completion
	TasksStolen      int64 // tasks that moved nodes through a steal
	StealRequests    int64 // steal round trips initiated
	StealHits        int64 // steal requests that returned a task
	StealMisses      int64 // steal requests that found the victim empty
	TaskDepsResolved int64 // predecessor edges retired by the dependence resolver
	TasksReleased    int64 // dependence-held tasks released into a deque

	// Reliability sublayer (nonzero only with a fault plane attached).
	AcksSent       int64 // cumulative acks put on the control channel
	Timeouts       int64 // retransmit timers that fired on unacked frames
	Retransmits    int64 // data frames re-injected after a timeout
	DupsSuppressed int64 // arrivals discarded by the receiver as duplicates

	// Fault plane injection tallies (what the chaos profile actually did).
	InjectedDrops  int64 // data or ack frames lost on the wire
	InjectedDups   int64 // data frames delivered twice
	InjectedDelays int64 // data frames held back for reordering

	// Crash-stop faults and the recovery protocol above them.
	Crashes        int64 // node crash events injected
	NodeRestarts   int64 // crashed nodes brought back
	PeerDowns      int64 // links that exhausted their retry budget
	CkptMsgs       int64 // checkpoint messages shipped to buddy nodes
	CkptBytes      int64 // payload bytes of checkpoint traffic
	Recoveries     int64 // recovery protocol executions
	ResentBundles  int64 // diff bundles resent to a restarted node
	Refetches      int64 // stuck page fetches reissued during recovery
	ReclaimedLocks int64 // orphaned lock tokens reclaimed
	PagesRestored  int64 // pages reinstalled from a buddy mirror
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// Snapshot returns a copy of the current counters.
func (c *Counters) Snapshot() Counters { return *c }

// Map returns the non-zero counters keyed by field name, for reports.
func (c *Counters) Map() map[string]int64 {
	m := map[string]int64{
		"messages":           c.Messages,
		"bytes":              c.Bytes,
		"local_deliveries":   c.LocalDeliver,
		"mpi_sends":          c.Sends,
		"mpi_bcasts":         c.Bcasts,
		"mpi_allreduces":     c.Allreduces,
		"mpi_barriers":       c.MPIBarrier,
		"read_faults":        c.ReadFaults,
		"write_faults":       c.WriteFaults,
		"page_fetches":       c.PageFetches,
		"twins":              c.TwinsCreated,
		"diffs_created":      c.DiffsCreated,
		"diffs_applied":      c.DiffsApplied,
		"diff_bytes":         c.DiffBytes,
		"invalidations":      c.Invalidations,
		"write_notices":      c.WriteNotices,
		"home_migrations":    c.HomeMigrations,
		"sdsm_barriers":      c.Barriers,
		"policy_reclass":     c.PolicyReclass,
		"policy_pushes":      c.PolicyPushes,
		"policy_refreshes":   c.PolicyRefreshes,
		"policy_overrides":   c.PolicyHomeOverrides,
		"lock_requests":      c.LockRequests,
		"lock_waits":         c.LockWaits,
		"hybrid_criticals":   c.HybridCriticals,
		"hybrid_singles":     c.HybridSingles,
		"hybrid_reductions":  c.HybridReductions,
		"hybrid_atomics":     c.HybridAtomics,
		"task_spawned":       c.TasksSpawned,
		"task_executed":      c.TasksExecuted,
		"task_stolen":        c.TasksStolen,
		"steal_requests":     c.StealRequests,
		"steal_hits":         c.StealHits,
		"steal_misses":       c.StealMisses,
		"task_deps_resolved": c.TaskDepsResolved,
		"task_released":      c.TasksReleased,
		"rel_acks":           c.AcksSent,
		"rel_timeouts":       c.Timeouts,
		"rel_retransmits":    c.Retransmits,
		"rel_dups_dropped":   c.DupsSuppressed,
		"faults_dropped":     c.InjectedDrops,
		"faults_duplicated":  c.InjectedDups,
		"faults_delayed":     c.InjectedDelays,

		"crash_injected":           c.Crashes,
		"crash_restarts":           c.NodeRestarts,
		"rel_peer_downs":           c.PeerDowns,
		"ckpt_messages":            c.CkptMsgs,
		"ckpt_bytes":               c.CkptBytes,
		"recovery_runs":            c.Recoveries,
		"recovery_resent_bundles":  c.ResentBundles,
		"recovery_refetches":       c.Refetches,
		"recovery_reclaimed_locks": c.ReclaimedLocks,
		"recovery_pages_restored":  c.PagesRestored,
	}
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
	return m
}

// String renders the non-zero counters in a stable order.
func (c *Counters) String() string {
	m := c.Map()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
