package stats

import (
	"strings"
	"testing"
)

func TestMapOmitsZeroCounters(t *testing.T) {
	c := &Counters{Messages: 3, PageFetches: 1}
	m := c.Map()
	if len(m) != 2 || m["messages"] != 3 || m["page_fetches"] != 1 {
		t.Fatalf("map = %v", m)
	}
}

func TestStringIsStableAndSorted(t *testing.T) {
	c := &Counters{Messages: 2, Bytes: 100, LockRequests: 7}
	s := c.String()
	if s != c.String() {
		t.Fatal("String not stable")
	}
	// Alphabetical field order.
	if !(strings.Index(s, "bytes=") < strings.Index(s, "lock_requests=") &&
		strings.Index(s, "lock_requests=") < strings.Index(s, "messages=")) {
		t.Fatalf("not sorted: %s", s)
	}
}

func TestResetAndSnapshot(t *testing.T) {
	c := &Counters{Barriers: 5}
	snap := c.Snapshot()
	c.Reset()
	if c.Barriers != 0 {
		t.Fatal("reset failed")
	}
	if snap.Barriers != 5 {
		t.Fatal("snapshot mutated by reset")
	}
}

func TestEmptyCountersRenderEmpty(t *testing.T) {
	c := &Counters{}
	if c.String() != "" {
		t.Fatalf("empty counters rendered %q", c.String())
	}
}
