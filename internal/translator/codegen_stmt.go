package translator

import (
	"fmt"
	"strings"
)

// Statement and expression generation. g.ctx is the thread-context
// variable name: "m" in serial sections, "tc" inside parallel regions,
// and "" inside pure helper functions (where no shared access exists).

func (g *generator) genBlockInner(b *Block) error {
	for _, d := range b.Decls {
		if len(d.Dims) > 0 {
			return fmt.Errorf("translator: arrays must be declared at file scope or in main (found %s)", d.Name)
		}
		g.types[d.Name] = d.Elem
		g.genScalarDecl(d)
	}
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		g.p("{")
		g.depth++
		if err := g.genBlockInner(st); err != nil {
			return err
		}
		g.depth--
		g.p("}")
		return nil
	case *ExprStmt:
		if call, ok := st.X.(*Call); ok {
			return g.genCallStmt(call)
		}
		g.p("_ = %s", g.expr(st.X, g.exprType(st.X)))
		return nil
	case *Assign:
		return g.genAssign(st)
	case *IncDec:
		return g.genIncDec(st)
	case *ForStmt:
		return g.genSerialFor(st)
	case *WhileStmt:
		g.p("for %s {", g.cond(st.Cond))
		g.depth++
		if err := g.genBlockInner(st.Body); err != nil {
			return err
		}
		g.depth--
		g.p("}")
		return nil
	case *IfStmt:
		g.p("if %s {", g.cond(st.Cond))
		g.depth++
		if err := g.genBlockInner(st.Then); err != nil {
			return err
		}
		g.depth--
		if st.Else != nil {
			g.p("} else {")
			g.depth++
			if err := g.genBlockInner(st.Else); err != nil {
				return err
			}
			g.depth--
		}
		g.p("}")
		return nil
	case *ReturnStmt:
		if st.X != nil && !g.inMain {
			g.p("return %s", g.expr(st.X, g.exprType(st.X)))
		} else {
			// C main's exit status has no Go equivalent inside Run.
			g.p("return")
		}
		return nil
	case *BreakStmt:
		g.p("break")
		return nil
	case *ContinueStmt:
		g.p("continue")
		return nil
	case *OmpStmt:
		return g.genOmp(st)
	default:
		return fmt.Errorf("translator: unhandled statement %T", s)
	}
}

// genCallStmt lowers a call used as a statement (printf and friends).
func (g *generator) genCallStmt(call *Call) error {
	if call.Name == "printf" {
		g.usesFmt = true
		args := make([]string, len(call.Args))
		for i, a := range call.Args {
			if i == 0 {
				if lit, ok := a.(*StringLit); ok {
					args[i] = fixFormat(lit.Text)
					continue
				}
			}
			args[i] = g.expr(a, g.exprType(a))
		}
		g.p("fmt.Printf(%s)", strings.Join(args, ", "))
		return nil
	}
	g.p("%s", g.expr(call, g.exprType(call)))
	return nil
}

// fixFormat converts C printf conversions that Go's fmt spells
// differently.
func fixFormat(s string) string {
	s = strings.ReplaceAll(s, "%lf", "%f")
	s = strings.ReplaceAll(s, "%le", "%e")
	s = strings.ReplaceAll(s, "%lg", "%g")
	s = strings.ReplaceAll(s, "%ld", "%d")
	s = strings.ReplaceAll(s, "%i", "%d")
	s = strings.ReplaceAll(s, "%u", "%d")
	return s
}

// genAssign lowers assignments to locals, hybrid scalars, and shared
// array elements.
func (g *generator) genAssign(st *Assign) error {
	switch lhs := st.LHS.(type) {
	case *Ident:
		if g.scalars[lhs.Name] && g.renames[lhs.Name] == "" {
			sv := scalarVar(lhs.Name)
			switch st.Op {
			case "=":
				if g.region {
					g.p("%s.Set(%s, %s)", sv, g.ctx, g.expr(st.RHS, TypeDouble))
				} else {
					g.p("%s.Init(%s, %s)", sv, g.ctx, g.expr(st.RHS, TypeDouble))
				}
			case "+=":
				g.p("%s.Add(%s, %s)", sv, g.ctx, g.expr(st.RHS, TypeDouble))
			case "-=":
				g.p("%s.Add(%s, -(%s))", sv, g.ctx, g.expr(st.RHS, TypeDouble))
			default:
				g.p("%s.Set(%s, %s.Get(%s) %s %s)", sv, g.ctx, sv, g.ctx,
					strings.TrimSuffix(st.Op, "="), g.expr(st.RHS, TypeDouble))
			}
			return nil
		}
		name := lhs.Name
		if r := g.renames[name]; r != "" {
			name = r
		}
		g.p("%s %s %s", name, st.Op, g.expr(st.RHS, g.identType(lhs.Name)))
		return nil
	case *Index:
		arr := g.arrays[lhs.Base]
		if arr == nil {
			return fmt.Errorf("translator: assignment to undeclared array %s", lhs.Base)
		}
		idx := g.flatIndex(arr, lhs.Subs)
		val := g.expr(st.RHS, arr.Elem)
		if st.Op == "=" {
			g.p("%s.Set(%s, %s, %s)", lhs.Base, g.ctx, idx, val)
			return nil
		}
		g.p("%s.Set(%s, %s, %s.Get(%s, %s) %s %s)",
			lhs.Base, g.ctx, idx, lhs.Base, g.ctx, idx, strings.TrimSuffix(st.Op, "="), val)
		return nil
	default:
		return fmt.Errorf("translator: unsupported assignment target %T", st.LHS)
	}
}

func (g *generator) genIncDec(st *IncDec) error {
	op := "+"
	if st.Op == "--" {
		op = "-"
	}
	switch lhs := st.LHS.(type) {
	case *Ident:
		if g.scalars[lhs.Name] && g.renames[lhs.Name] == "" {
			g.p("%s.Add(%s, %s1)", scalarVar(lhs.Name), g.ctx, op)
			return nil
		}
		name := lhs.Name
		if r := g.renames[name]; r != "" {
			name = r
		}
		g.p("%s%s", name, st.Op)
		return nil
	case *Index:
		arr := g.arrays[lhs.Base]
		idx := g.flatIndex(arr, lhs.Subs)
		g.p("%s.Set(%s, %s, %s.Get(%s, %s) %s 1)", lhs.Base, g.ctx, idx, lhs.Base, g.ctx, idx, op)
		return nil
	default:
		return fmt.Errorf("translator: unsupported %s target %T", st.Op, st.LHS)
	}
}

// genSerialFor lowers a non-worksharing counted loop.
func (g *generator) genSerialFor(st *ForStmt) error {
	hi := g.expr(st.Hi, TypeInt)
	cmp := "<"
	if st.LessEq {
		cmp = "<="
	}
	g.p("for %s = %s; %s %s %s; %s++ {", st.Var, g.expr(st.Lo, TypeInt), st.Var, cmp, hi, st.Var)
	g.depth++
	if err := g.genBlockInner(st.Body); err != nil {
		return err
	}
	g.depth--
	g.p("}")
	return nil
}

// genOmp lowers one directive (§4's translation rules).
func (g *generator) genOmp(st *OmpStmt) error {
	if g.ctx == "tt" && st.Dir.Kind != DirTask {
		// A task body runs on whichever thread pops it, outside team
		// lockstep, so team collectives would deadlock there. Nested
		// task spawns are the one directive that composes.
		return fmt.Errorf("line %d: %v directive inside a task body is not supported", st.Line, st.Dir.Kind)
	}
	switch st.Dir.Kind {
	case DirParallel:
		return g.genParallel(st.Dir, st.Body.(*Block), nil)
	case DirParallelFor:
		f := st.Body.(*ForStmt)
		return g.genParallel(st.Dir, &Block{Stmts: []Stmt{}}, f)
	case DirFor:
		if g.ctx != "tc" {
			return fmt.Errorf("line %d: omp for outside a parallel region", st.Line)
		}
		return g.genOmpFor(st.Dir, st.Body.(*ForStmt))
	case DirCritical:
		return g.genCritical(st)
	case DirAtomic:
		return g.genAtomic(st)
	case DirSingle:
		return g.genSingle(st)
	case DirMaster:
		g.p("%s.Master(func() {", g.ctx)
		g.depth++
		err := g.genBlockInner(st.Body.(*Block))
		g.depth--
		g.p("})")
		return err
	case DirBarrier:
		g.p("%s.Barrier()", g.ctx)
		return nil
	case DirTask:
		return g.genTask(st)
	case DirTarget:
		if g.ctx != "tc" {
			return fmt.Errorf("line %d: omp target outside a parallel region", st.Line)
		}
		return g.genTask(st)
	case DirTaskwait:
		if g.ctx != "tc" {
			return fmt.Errorf("line %d: omp taskwait outside a parallel region", st.Line)
		}
		g.p("tc.Taskwait()")
		return nil
	default:
		return fmt.Errorf("line %d: unsupported directive %v", st.Line, st.Dir.Kind)
	}
}

// genParallel emits a fork-join region; loop non-nil means the combined
// `parallel for` form.
func (g *generator) genParallel(dir Directive, body *Block, loop *ForStmt) error {
	if g.ctx != "m" {
		return fmt.Errorf("translator: nested parallel regions are not supported (paper §4.3)")
	}
	g.p("m.Parallel(func(tc *parade.Thread) {")
	g.depth++
	prevCtx, prevRegion := g.ctx, g.region
	g.ctx, g.region = "tc", true

	// Replicated-local semantics: every outer scalar the region reads is
	// shadowed (firstprivate); reduction variables are captured so their
	// combined value escapes the region; private() gets fresh locals.
	reds := map[string]string{}
	for _, r := range dir.Reductions {
		for _, v := range r.Vars {
			reds[v] = r.Op
		}
	}
	// Reduction variables of nested work-sharing directives also escape
	// the region (their combined value is identical on every thread), so
	// they must not be shadowed either.
	collectNestedReductions(body, reds)
	// Declarations anywhere inside the region (including nested task and
	// target bodies) are genuinely region-local: they need no firstprivate
	// shadow, and the outer scope may not even have such a variable.
	declared := map[string]bool{}
	collectDeclared(body, declared)
	if loop != nil {
		collectDeclared(loop.Body, declared)
	}
	var refs []string
	for name := range g.collectScalarRefs(body, loop) {
		refs = append(refs, name)
	}
	sortStrings(refs)
	for _, name := range refs {
		if reds[name] != "" || g.scalars[name] || contains(dir.Private, name) || declared[name] {
			continue
		}
		g.p("%s := %s // firstprivate copy (replicated-local semantics)", name, name)
		g.p("_ = %s", name)
	}
	for _, name := range dir.Private {
		t := g.identType(name)
		g.p("var %s %s // private", name, t.GoType())
		g.p("_ = %s", name)
	}

	// Region-level reduction clauses (reduction on `parallel` itself,
	// when the loop form is not combined): private accumulators combine
	// once at region end.
	var regionReds []string
	regionOps := map[string]string{}
	if loop == nil {
		for _, r := range dir.Reductions {
			for _, v := range r.Vars {
				regionReds = append(regionReds, v)
				regionOps[v] = r.Op
			}
		}
	}
	g.siteSeq++
	rseq := g.siteSeq
	for _, v := range regionReds {
		acc := fmt.Sprintf("__red%d_%s", rseq, v)
		g.p("%s := %s // region reduction accumulator (%s)", acc, identityFor(regionOps[v], g), regionOps[v])
		g.p("__orig%d_%s := %s", rseq, v, v)
		g.renames[v] = acc
	}

	var err error
	if loop != nil {
		err = g.genOmpFor(dir, loop)
	} else {
		err = g.genBlockInner(body)
	}

	for _, v := range regionReds {
		acc := fmt.Sprintf("__red%d_%s", rseq, v)
		orig := fmt.Sprintf("__orig%d_%s", rseq, v)
		delete(g.renames, v)
		switch regionOps[v] {
		case "+":
			g.p("%s = %s + tc.Reduce(%q, parade.OpSum, %s)", v, orig, v, acc)
		case "*":
			g.p("%s = %s * tc.Reduce(%q, parade.OpProd, %s)", v, orig, v, acc)
		case "max":
			g.usesMath = true
			g.p("%s = math.Max(%s, tc.Reduce(%q, parade.OpMax, %s))", v, orig, v, acc)
		case "min":
			g.usesMath = true
			g.p("%s = math.Min(%s, tc.Reduce(%q, parade.OpMin, %s))", v, orig, v, acc)
		default:
			err = fmt.Errorf("translator: unsupported reduction operator %q", regionOps[v])
		}
	}
	g.ctx, g.region = prevCtx, prevRegion
	g.depth--
	g.p("})")
	return err
}

// genOmpFor emits a statically scheduled work-sharing loop with its
// reduction clauses. When the loop's only shared writes are reduction
// variables, the implicit barrier is elided: the reduction collective
// synchronizes the team (the paper's barrier-saving rule). Otherwise
// the for keeps its barrier so page flushes happen.
func (g *generator) genOmpFor(dir Directive, loop *ForStmt) error {
	var redVars []string
	redOps := map[string]string{}
	for _, r := range dir.Reductions {
		for _, v := range r.Vars {
			redVars = append(redVars, v)
			redOps[v] = r.Op
		}
	}
	g.siteSeq++
	seq := g.siteSeq
	acc := func(v string) string { return fmt.Sprintf("__red%d_%s", seq, v) }
	orig := func(v string) string { return fmt.Sprintf("__orig%d_%s", seq, v) }
	for _, v := range redVars {
		g.p("%s := %s // reduction accumulator (%s)", acc(v), identityFor(redOps[v], g), redOps[v])
		// Capture the pre-construct value once: the post-combine below is
		// executed by every thread against the same captured variable, so
		// it must be a pure overwrite with an identical value.
		g.p("%s := %s", orig(v), v)
		g.renames[v] = acc(v)
	}

	hi := g.expr(loop.Hi, TypeInt)
	if loop.LessEq {
		hi = "(" + hi + ")+1"
	}
	// Clauses become functional options on the one For entry point.
	var opts []string
	if dir.Dynamic {
		kind := "Dynamic"
		if dir.Guided {
			kind = "Guided"
		}
		chunk := dir.ChunkSize
		if chunk == 0 {
			chunk = 1
		}
		// Chunk-server instances are keyed by site name; number the site
		// so distinct loops never share a server.
		opts = append(opts,
			fmt.Sprintf("parade.WithName(%q)", fmt.Sprintf("dyn_%d", seq)),
			fmt.Sprintf("parade.WithSchedule(parade.%s, %d)", kind, chunk))
		if dir.NoWait {
			opts = append(opts, "parade.Nowait()")
		}
	} else if dir.NoWait || (len(redVars) > 0 && !g.writesSharedArray(loop.Body)) {
		// nowait, explicit or from the barrier-saving rule: a loop whose
		// only shared writes are reduction variables needs no flush — the
		// reduction collective below synchronizes the team.
		opts = append(opts, "parade.Nowait()")
	}
	g.p("tc.For(%s, %s, func(%s int) {", g.expr(loop.Lo, TypeInt), hi, loop.Var)
	g.depth++
	savedType, had := g.types[loop.Var]
	g.types[loop.Var] = TypeInt
	err := g.genBlockInner(loop.Body)
	if had {
		g.types[loop.Var] = savedType
	} else {
		delete(g.types, loop.Var)
	}
	g.depth--
	if len(opts) > 0 {
		g.p("}, %s)", strings.Join(opts, ", "))
	} else {
		g.p("})")
	}
	if err != nil {
		return err
	}

	for _, v := range redVars {
		delete(g.renames, v)
		op := redOps[v]
		switch op {
		case "+":
			g.p("%s = %s + tc.Reduce(%q, parade.OpSum, %s)", v, orig(v), v, acc(v))
		case "*":
			g.p("%s = %s * tc.Reduce(%q, parade.OpProd, %s)", v, orig(v), v, acc(v))
		case "max":
			g.usesMath = true
			g.p("%s = math.Max(%s, tc.Reduce(%q, parade.OpMax, %s))", v, orig(v), v, acc(v))
		case "min":
			g.usesMath = true
			g.p("%s = math.Min(%s, tc.Reduce(%q, parade.OpMin, %s))", v, orig(v), v, acc(v))
		default:
			return fmt.Errorf("translator: unsupported reduction operator %q", op)
		}
	}
	return nil
}

// genTask lowers `#pragma omp task` and `#pragma omp target` onto the
// deferred-task runtime: the body becomes a closure pushed on the
// spawning node's deque (or delivered to the device node's deque, for
// target), executed later by whichever thread pops it, and joined by the
// next taskwait or barrier. C task semantics capture firstprivate
// variables by value at the spawn point; Go closures capture by
// reference, so each firstprivate gets an explicit site-numbered copy
// that the closure body is renamed to use. Depend/map/name/priority
// clauses become functional options on the spawn call; subscripts in
// depend items are rendered in the spawning scope, so the firstprivate
// renames apply to them too (capture-at-spawn semantics).
func (g *generator) genTask(st *OmpStmt) error {
	if g.ctx != "tc" && g.ctx != "tt" {
		return fmt.Errorf("line %d: omp %v outside a parallel region", st.Line, st.Dir.Kind)
	}
	body := st.Body.(*Block)
	g.siteSeq++
	seq := g.siteSeq
	saved := map[string]string{}
	for _, name := range st.Dir.FirstPrivate {
		if g.scalars[name] {
			return fmt.Errorf("line %d: firstprivate on hybrid scalar %s is not supported", st.Line, name)
		}
		src := name
		if r := g.renames[name]; r != "" {
			src = r
		}
		cp := fmt.Sprintf("__task%d_%s", seq, name)
		g.p("%s := %s // firstprivate capture at spawn", cp, src)
		saved[name] = g.renames[name]
		g.renames[name] = cp
		g.types[cp] = g.identType(name)
	}
	opts, err := g.taskOpts(st.Dir, st.Line)
	if err != nil {
		return err
	}
	head := fmt.Sprintf("%s.Task(", g.ctx)
	if st.Dir.Kind == DirTarget {
		head = fmt.Sprintf("%s.Target(%d, ", g.ctx, st.Dir.Device)
	}
	g.p("%sfunc(tt *parade.Thread) float64 {", head)
	g.depth++
	prevCtx := g.ctx
	g.ctx = "tt"
	for _, name := range st.Dir.Private {
		g.p("var %s %s // private", name, g.identType(name).GoType())
		g.p("_ = %s", name)
	}
	err = g.genBlockInner(body)
	g.ctx = prevCtx
	g.p("return 0")
	g.depth--
	if len(opts) > 0 {
		g.p("}, %s)", strings.Join(opts, ", "))
	} else {
		g.p("})")
	}
	for name, prev := range saved {
		delete(g.types, fmt.Sprintf("__task%d_%s", seq, name))
		if prev == "" {
			delete(g.renames, name)
		} else {
			g.renames[name] = prev
		}
	}
	return err
}

// taskOpts renders a task/target directive's graph and offload clauses
// as parade option arguments.
func (g *generator) taskOpts(dir Directive, line int) ([]string, error) {
	var opts []string
	for _, dep := range dir.Depends {
		if dep.Kind == "task" {
			hs := make([]string, len(dep.Tasks))
			for i, n := range dep.Tasks {
				hs[i] = fmt.Sprintf("parade.DepTask(%q)", n)
			}
			// Completion edges ignore the access kind; In is canonical.
			opts = append(opts, fmt.Sprintf("parade.WithDepend(parade.In, %s)", strings.Join(hs, ", ")))
			continue
		}
		kind := map[string]string{"in": "In", "out": "Out", "inout": "InOut"}[dep.Kind]
		hs := make([]string, len(dep.Items))
		for i, it := range dep.Items {
			h, err := g.depHandle(it, line)
			if err != nil {
				return nil, err
			}
			hs[i] = h
		}
		opts = append(opts, fmt.Sprintf("parade.WithDepend(parade.%s, %s)", kind, strings.Join(hs, ", ")))
	}
	for _, mc := range dir.Maps {
		md := map[string]string{"to": "MapTo", "from": "MapFrom", "tofrom": "MapToFrom"}[mc.Dir]
		for _, v := range mc.Vars {
			if g.arrays[v] == nil {
				return nil, fmt.Errorf("line %d: map(%s: %s): only shared arrays are mappable", line, mc.Dir, v)
			}
		}
		opts = append(opts, fmt.Sprintf("parade.WithMap(parade.%s, %s)", md, strings.Join(mc.Vars, ", ")))
	}
	if dir.TaskName != "" {
		opts = append(opts, fmt.Sprintf("parade.WithTaskName(%q)", dir.TaskName))
	}
	if dir.Priority != 0 {
		opts = append(opts, fmt.Sprintf("parade.WithPriority(%d)", dir.Priority))
	}
	return opts, nil
}

// depHandle renders one depend list item as a parade.DepHandle
// expression: a whole variable becomes a named abstract object, an array
// element becomes its shared-memory address.
func (g *generator) depHandle(e Expr, line int) (string, error) {
	switch x := e.(type) {
	case *Ident:
		return fmt.Sprintf("parade.DepName(%q)", x.Name), nil
	case *Index:
		arr := g.arrays[x.Base]
		if arr == nil {
			return "", fmt.Errorf("line %d: depend item %s is not a shared array", line, x.Base)
		}
		return fmt.Sprintf("parade.DepAddr(%s.Addr(%s))", x.Base, g.flatIndex(arr, x.Subs)), nil
	default:
		return "", fmt.Errorf("line %d: unsupported depend item %T", line, e)
	}
}

func identityFor(op string, g *generator) string {
	switch op {
	case "+":
		return "0.0"
	case "*":
		return "1.0"
	case "max":
		g.usesMath = true
		return "math.Inf(-1)"
	case "min":
		g.usesMath = true
		return "math.Inf(1)"
	default:
		return "0.0"
	}
}

// genCritical lowers a critical directive: the hybrid collective path
// when the block is lexically analyzable (Fig. 2 right), the SDSM lock
// path otherwise (Fig. 2 left).
func (g *generator) genCritical(st *OmpStmt) error {
	name := st.Dir.Name
	if name == "" {
		g.siteSeq++
		name = fmt.Sprintf("crit_%d", g.siteSeq)
	}
	body := st.Body.(*Block)
	if vars, ok := g.analyzableCritical(body); ok {
		svars := make([]string, len(vars))
		for i, v := range vars {
			svars[i] = scalarVar(v)
		}
		g.p("tc.Critical(%q, []*parade.Scalar{%s}, func() {", name, strings.Join(svars, ", "))
	} else {
		g.p("tc.Critical(%q, nil, func() {", name)
	}
	g.depth++
	err := g.genBlockInner(body)
	g.depth--
	g.p("})")
	return err
}

// genAtomic lowers the atomic directive onto one collective (§4.2).
func (g *generator) genAtomic(st *OmpStmt) error {
	body := st.Body.(*Block)
	name, delta, negate, ok := g.atomicUpdate(body)
	if !ok {
		return fmt.Errorf("line %d: atomic body must be `x += expr`, `x -= expr`, `x++` or `x--`", st.Line)
	}
	if !g.scalars[name] {
		return fmt.Errorf("line %d: atomic target %s must be a scalar variable", st.Line, name)
	}
	d := g.expr(delta, TypeDouble)
	if negate {
		d = "-(" + d + ")"
	}
	g.p("tc.Atomic(%s, %s)", scalarVar(name), d)
	return nil
}

// genSingle lowers the single directive: broadcast form for a small
// analyzable initialization (Fig. 3 right), flag+lock+barrier otherwise.
func (g *generator) genSingle(st *OmpStmt) error {
	g.siteSeq++
	name := fmt.Sprintf("single_%d", g.siteSeq)
	body := st.Body.(*Block)
	if target, ok := g.analyzableSingle(body); ok {
		g.p("tc.Single(%q, %s, func() {", name, scalarVar(target))
	} else {
		g.p("tc.SingleBarrier(%q, func() {", name)
	}
	g.depth++
	err := g.genBlockInner(body)
	g.depth--
	g.p("})")
	return err
}

// collectScalarRefs gathers the names of non-hybrid scalar variables
// referenced inside a region body (for firstprivate shadowing).
func (g *generator) collectScalarRefs(b *Block, loop *ForStmt) map[string]bool {
	refs := map[string]bool{}
	var we func(Expr)
	var ws func(Stmt)
	we = func(e Expr) {
		switch x := e.(type) {
		case *Ident:
			if _, known := g.types[x.Name]; known {
				refs[x.Name] = true
			}
		case *Index:
			for _, s := range x.Subs {
				we(s)
			}
		case *Unary:
			we(x.X)
		case *Binary:
			we(x.X)
			we(x.Y)
		case *Cond:
			we(x.X)
			we(x.A)
			we(x.B)
		case *Call:
			for _, a := range x.Args {
				we(a)
			}
		}
	}
	var wb func(*Block)
	ws = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			wb(st)
		case *ExprStmt:
			we(st.X)
		case *Assign:
			we(st.LHS)
			we(st.RHS)
		case *IncDec:
			we(st.LHS)
		case *ForStmt:
			we(st.Lo)
			we(st.Hi)
			refs[st.Var] = true
			wb(st.Body)
		case *WhileStmt:
			we(st.Cond)
			wb(st.Body)
		case *IfStmt:
			we(st.Cond)
			wb(st.Then)
			if st.Else != nil {
				wb(st.Else)
			}
		case *ReturnStmt:
			if st.X != nil {
				we(st.X)
			}
		case *OmpStmt:
			switch b := st.Body.(type) {
			case *Block:
				wb(b)
			case *ForStmt:
				ws(b)
			}
		}
	}
	wb = func(b *Block) {
		if b == nil {
			return
		}
		// Block-local declarations are genuinely local; still record the
		// name so shadowing logic sees them as declared (harmless).
		for _, s := range b.Stmts {
			ws(s)
		}
	}
	if b != nil {
		wb(b)
	}
	if loop != nil {
		ws(loop)
	}
	return refs
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// collectDeclared records every variable declared in b or any block
// nested inside it (loop bodies, branches, task and target bodies).
func collectDeclared(b *Block, declared map[string]bool) {
	if b == nil {
		return
	}
	for _, d := range b.Decls {
		declared[d.Name] = true
	}
	var ws func(Stmt)
	ws = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			collectDeclared(st, declared)
		case *ForStmt:
			collectDeclared(st.Body, declared)
		case *WhileStmt:
			collectDeclared(st.Body, declared)
		case *IfStmt:
			collectDeclared(st.Then, declared)
			if st.Else != nil {
				collectDeclared(st.Else, declared)
			}
		case *OmpStmt:
			switch b := st.Body.(type) {
			case *Block:
				collectDeclared(b, declared)
			case *ForStmt:
				ws(b)
			}
		}
	}
	for _, s := range b.Stmts {
		ws(s)
	}
}

// collectNestedReductions records the reduction variables of directives
// nested inside a region body.
func collectNestedReductions(b *Block, reds map[string]string) {
	if b == nil {
		return
	}
	var ws func(Stmt)
	ws = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, x := range st.Stmts {
				ws(x)
			}
		case *ForStmt:
			ws(st.Body)
		case *WhileStmt:
			ws(st.Body)
		case *IfStmt:
			ws(st.Then)
			if st.Else != nil {
				ws(st.Else)
			}
		case *OmpStmt:
			for _, r := range st.Dir.Reductions {
				for _, v := range r.Vars {
					reds[v] = r.Op
				}
			}
			if st.Body != nil {
				ws(st.Body)
			}
		}
	}
	for _, s := range b.Stmts {
		ws(s)
	}
}
