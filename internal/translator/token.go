// Package translator implements the ParADE OpenMP translator (paper §4):
// a source-to-source compiler from OpenMP C to a program against the
// ParADE runtime API. It follows the paper's three-phase pipeline — a
// preprocessor pass (includes stripped, object-like macros expanded), a
// parse-tree build over a C subset with `#pragma omp` directives, and a
// regeneration pass that replaces each directive with runtime calls.
// Where the paper emits C + POSIX threads + MPI, this translator emits
// Go against the public `parade` package; the translation *rules* are
// the paper's: hierarchical critical, collective-mapped atomic and
// reduction (merged when multiple variables reduce together), broadcast
// singles for small analyzable blocks, static for scheduling.
//
// The accepted language is the subset the paper's evaluation programs
// need: int/long/double scalars and (multi-dimensional, constant-bound)
// arrays at file scope or function scope, functions, for/while/if/return,
// the usual expression operators, printf, and the OpenMP 1.0 directives
// parallel, for, parallel for, critical, atomic, single, master, barrier
// with private/firstprivate/shared/reduction/nowait clauses.
package translator

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a lexical token.
type Kind int

// Token kinds.
const (
	TokEOF Kind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct // operators and punctuation
	TokPragma
	TokKeyword
)

// Token is one lexical unit with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
}

func (t Token) String() string {
	return fmt.Sprintf("%d:%q", t.Line, t.Text)
}

// keywords of the accepted C subset.
var keywords = map[string]bool{
	"int": true, "long": true, "double": true, "float": true, "void": true,
	"char": true, "unsigned": true, "const": true, "static": true,
	"for": true, "while": true, "do": true, "if": true, "else": true,
	"return": true, "break": true, "continue": true, "struct": true,
	"sizeof": true,
}

// multi-character operators, longest first.
var punct3 = []string{"<<=", ">>=", "..."}
var punct2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
}

// Lexer state over preprocessed source.
type Lexer struct {
	src    string
	pos    int
	line   int
	macros map[string]string
}

// NewLexer creates a lexer over src with an empty macro table.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, macros: map[string]string{}}
}

// Lex tokenizes the whole input, applying the preprocessor behaviour:
// #include lines are dropped, object-like #define macros are recorded
// and substituted, and #pragma lines become TokPragma tokens carrying
// the pragma text.
func (lx *Lexer) Lex() ([]Token, error) {
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == TokEOF {
			out = append(out, tok)
			return out, nil
		}
		// Macro substitution (object-like, non-recursive one level deep
		// is enough for benchmark sources; nested macros re-resolve).
		if tok.Kind == TokIdent {
			for i := 0; i < 8; i++ {
				rep, ok := lx.macros[tok.Text]
				if !ok {
					break
				}
				tok.Text = rep
				if !isIdent(rep) {
					tok.Kind = classify(rep)
					break
				}
			}
		}
		out = append(out, tok)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if !(r == '_' || unicode.IsLetter(r) || (i > 0 && unicode.IsDigit(r))) {
			return false
		}
	}
	return true
}

func classify(s string) Kind {
	if s == "" {
		return TokEOF
	}
	r := rune(s[0])
	if unicode.IsDigit(r) || (r == '.' && len(s) > 1 && unicode.IsDigit(rune(s[1]))) {
		return TokNumber
	}
	if isIdent(s) {
		if keywords[s] {
			return TokKeyword
		}
		return TokIdent
	}
	return TokPunct
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) at(s string) bool {
	return strings.HasPrefix(lx.src[lx.pos:], s)
}

// next produces the next token, handling whitespace, comments, and
// preprocessor lines.
func (lx *Lexer) next() (Token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case lx.at("//"):
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case lx.at("/*"):
			lx.pos += 2
			for lx.pos < len(lx.src) && !lx.at("*/") {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			if lx.pos >= len(lx.src) {
				return Token{}, fmt.Errorf("line %d: unterminated comment", lx.line)
			}
			lx.pos += 2
		case c == '#':
			if tok, emitted, err := lx.preprocessorLine(); err != nil {
				return Token{}, err
			} else if emitted {
				return tok, nil
			}
		default:
			return lx.token()
		}
	}
	return Token{Kind: TokEOF, Line: lx.line}, nil
}

// preprocessorLine consumes one # line. It returns a pragma token when
// the line is `#pragma ...`; include/define lines are handled silently.
func (lx *Lexer) preprocessorLine() (Token, bool, error) {
	start := lx.pos
	line := lx.line
	end := strings.IndexByte(lx.src[start:], '\n')
	var text string
	if end < 0 {
		text = lx.src[start:]
		lx.pos = len(lx.src)
	} else {
		text = lx.src[start : start+end]
		lx.pos = start + end // newline handled by main loop
	}
	fields := strings.Fields(strings.TrimPrefix(text, "#"))
	if len(fields) == 0 {
		return Token{}, false, nil
	}
	switch fields[0] {
	case "include":
		return Token{}, false, nil
	case "define":
		if len(fields) >= 3 {
			name := fields[1]
			if strings.Contains(name, "(") {
				return Token{}, false, fmt.Errorf("line %d: function-like macros are not supported", line)
			}
			lx.macros[name] = strings.Join(fields[2:], " ")
		} else if len(fields) == 2 {
			lx.macros[fields[1]] = ""
		}
		return Token{}, false, nil
	case "ifdef", "ifndef", "endif", "else", "undef", "if", "elif":
		// Conditional compilation is not evaluated; sources for the
		// translator should be pre-flattened.
		return Token{}, false, fmt.Errorf("line %d: preprocessor conditionals are not supported", line)
	case "pragma":
		return Token{Kind: TokPragma, Text: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(text, "#")), "pragma")), Line: line}, true, nil
	default:
		return Token{}, false, fmt.Errorf("line %d: unsupported preprocessor directive %q", line, fields[0])
	}
}

// token lexes one ordinary token starting at a non-space byte.
func (lx *Lexer) token() (Token, error) {
	line := lx.line
	c := lx.src[lx.pos]
	switch {
	case c == '"':
		start := lx.pos
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			if lx.src[lx.pos] == '\\' {
				lx.pos++
			}
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return Token{}, fmt.Errorf("line %d: unterminated string", line)
		}
		lx.pos++
		return Token{Kind: TokString, Text: lx.src[start:lx.pos], Line: line}, nil
	case c == '\'':
		start := lx.pos
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '\'' {
			if lx.src[lx.pos] == '\\' {
				lx.pos++
			}
			lx.pos++
		}
		lx.pos++
		return Token{Kind: TokChar, Text: lx.src[start:lx.pos], Line: line}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1]))):
		start := lx.pos
		for lx.pos < len(lx.src) && (isNumByte(lx.src[lx.pos]) ||
			((lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') && lx.pos > start &&
				(lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E'))) {
			lx.pos++
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Line: line}, nil
	case c == '_' || unicode.IsLetter(rune(c)):
		start := lx.pos
		for lx.pos < len(lx.src) {
			r := rune(lx.src[lx.pos])
			if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line}, nil
	default:
		for _, p := range punct3 {
			if lx.at(p) {
				lx.pos += 3
				return Token{Kind: TokPunct, Text: p, Line: line}, nil
			}
		}
		for _, p := range punct2 {
			if lx.at(p) {
				lx.pos += 2
				return Token{Kind: TokPunct, Text: p, Line: line}, nil
			}
		}
		lx.pos++
		return Token{Kind: TokPunct, Text: string(c), Line: line}, nil
	}
}

func isNumByte(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'x' || c == 'X' ||
		c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == 'e' || c == 'E' || c == 'l' || c == 'L' || c == 'u' || c == 'U'
}
