package translator

import (
	"strings"
	"testing"
)

// A kitchen-sink program exercising the breadth of the accepted subset:
// helpers, casts, ternaries, comparisons as values, while/if/else,
// break/continue, inc/dec on scalars and array elements, compound
// assignment, multi-declarator lists, and printf format fixing.
func TestTranslateKitchenSink(t *testing.T) {
	out := translate(t, `
#include <stdio.h>
#include <math.h>
#define N 32

double grid[N][N];
double total;

double weight(double x, int k) {
	double w;
	w = x;
	while (k > 0) {
		w = w * 0.5;
		k--;
		if (w < 0.001) {
			break;
		}
	}
	return w;
}

int clampi(int v, int hi) {
	return v > hi ? hi : v;
}

int main() {
	int i, j, flips;
	double scale, best;

	scale = 1.5;
	flips = 0;
	best = -1.0;

	for (i = 0; i < N; i++) {
		for (j = 0; j < N; j++) {
			grid[i][j] = weight(scale, clampi(i + j, 8)) * (i % 2 == 0 ? 1.0 : -1.0);
		}
	}

#pragma omp parallel private(j) reduction(max:best)
	{
#pragma omp for
		for (i = 1; i < N - 1; i++) {
			for (j = 1; j < N - 1; j++) {
				double v;
				v = fabs(grid[i][j]);
				if (v > best) {
					best = v;
				} else {
					continue;
				}
				grid[i][j] /= 2.0;
				grid[i][j]++;
			}
		}
#pragma omp critical (tally)
		{
			total += best;
		}
	}

	flips += (int) best;
	flips += (flips == 0);
	flips--;
	printf("best=%lf flips=%ld total=%le\n", best, flips, total);
	return 0;
}`)
	for _, want := range []string{
		"func weight(x float64, k int) float64",
		"func clampi(v int, hi int) int",
		"ternary(",
		"b2i(",
		"math.Abs(",
		`tc.Critical("tally", []*parade.Scalar{s_total}`,
		"math.Max(", // max reduction combine
		`fmt.Printf("best=%f flips=%d total=%e\n"`,
		"int(", // the cast
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// Every rejection path reports a useful error.
func TestTranslateErrorTable(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no main", `int helper() { return 1; }`, "no main"},
		{"function-like macro", "#define SQ(x) ((x)*(x))\nint main() {}", "function-like"},
		{"preprocessor conditional", "#ifdef X\n#endif\nint main() {}", "conditionals"},
		{"file-scope pragma", "#pragma omp parallel\nint main() {}", "file scope"},
		{"non-canonical omp for init", `int main() { int i;
#pragma omp for
for (i = 10; i > 0; i++) { } }`, "for-condition"},
		{"decrement omp for", `int main() { int i;
#pragma omp for
for (i = 0; i < 9; i--) { } }`, "for-increment"},
		{"omp for outside region", `int main() { int i;
#pragma omp for
for (i = 0; i < 9; i++) { } }`, "outside a parallel region"},
		{"atomic on array", `double a[4];
int main() {
#pragma omp parallel
	{
#pragma omp atomic
		a[0] += 1.0;
	}
}`, "atomic"},
		{"bad clause", `int main() {
#pragma omp parallel copyin(x)
	{ }
}`, "unsupported clause"},
		{"unterminated block", `int main() { {`, "end of file"},
		{"arrays in helper scope", `double f() { double local[4]; return local[0]; }
int main() {}`, "file scope or in main"},
	}
	for _, c := range cases {
		_, err := Translate(c.src, Options{})
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// Comments, string escapes, and char literals survive lexing.
func TestLexerLiterals(t *testing.T) {
	toks, err := NewLexer(`int main() { printf("a \"quoted\" %d\n", 'x'); }`).Lex()
	if err != nil {
		t.Fatal(err)
	}
	var haveStr, haveChar bool
	for _, tok := range toks {
		if tok.Kind == TokString && strings.Contains(tok.Text, `\"quoted\"`) {
			haveStr = true
		}
		if tok.Kind == TokChar {
			haveChar = true
		}
	}
	if !haveStr || !haveChar {
		t.Fatalf("literals lost: str=%v char=%v", haveStr, haveChar)
	}
}

// Multi-declarator lists and initializers at file scope.
func TestTranslateMultiDeclarators(t *testing.T) {
	out := translate(t, `
int main() {
	double x = 0.5, y, z = 2.0;
	y = x + z;
	printf("%f\n", y);
}`)
	for _, want := range []string{"var x float64 = 0.5", "var y float64", "var z float64 = 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// The master directive and explicit barrier lower directly.
func TestTranslateMasterAndBarrier(t *testing.T) {
	out := translate(t, `
int main() {
#pragma omp parallel
	{
#pragma omp master
		{ printf("hi\n"); }
#pragma omp barrier
	}
}`)
	if !strings.Contains(out, "tc.Master(func() {") || !strings.Contains(out, "tc.Barrier()") {
		t.Fatalf("master/barrier not lowered:\n%s", out)
	}
}

// Atomic increments and decrements.
func TestTranslateAtomicIncDec(t *testing.T) {
	out := translate(t, `
double n;
int main() {
#pragma omp parallel
	{
#pragma omp atomic
		n++;
#pragma omp atomic
		n -= 2.0;
	}
}`)
	if !strings.Contains(out, "tc.Atomic(s_n, 1)") || !strings.Contains(out, "tc.Atomic(s_n, -(2.0))") {
		t.Fatalf("atomic inc/dec not lowered:\n%s", out)
	}
}

// firstprivate shadows are emitted for referenced outer scalars.
func TestTranslateFirstprivateShadowing(t *testing.T) {
	out := translate(t, `
int main() {
	double alpha;
	alpha = 2.0;
#pragma omp parallel
	{
		double y;
		y = alpha * 2.0;
	}
}`)
	if !strings.Contains(out, "alpha := alpha // firstprivate copy") {
		t.Fatalf("no shadow for alpha:\n%s", out)
	}
}

// nowait on an omp for elides the barrier.
func TestTranslateNowait(t *testing.T) {
	out := translate(t, `
double a[64];
int main() {
	int i;
#pragma omp parallel
	{
#pragma omp for nowait
		for (i = 0; i < 64; i++) {
			a[i] = i;
		}
	}
}`)
	if !strings.Contains(out, "parade.Nowait()") {
		t.Fatalf("nowait ignored:\n%s", out)
	}
}
