package translator

import (
	"errors"
	"os"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestLexerBasics(t *testing.T) {
	toks, err := NewLexer("int x = 42; // comment\ndouble y; /* multi\nline */ y = 1.5e-3;").Lex()
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"int", "x", "=", "42", ";", "double", "y", ";", "y", "=", "1.5e-3", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens %v", texts)
	}
}

func TestLexerDefineSubstitution(t *testing.T) {
	toks, err := NewLexer("#define N 100\nint a[N];").Lex()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.Text == "100" && tok.Kind == TokNumber {
			found = true
		}
		if tok.Text == "N" {
			t.Fatal("macro N not substituted")
		}
	}
	if !found {
		t.Fatal("substituted value missing")
	}
}

func TestLexerPragmaToken(t *testing.T) {
	toks, err := NewLexer("#pragma omp parallel for private(j)\nint x;").Lex()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPragma || !strings.Contains(toks[0].Text, "omp parallel for") {
		t.Fatalf("pragma token = %+v", toks[0])
	}
}

func TestLexerIncludeSkipped(t *testing.T) {
	toks, err := NewLexer("#include <stdio.h>\nint x;").Lex()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "int" {
		t.Fatalf("first token %q", toks[0].Text)
	}
}

func TestLexerRejectsConditionals(t *testing.T) {
	if _, err := NewLexer("#ifdef FOO\nint x;\n#endif").Lex(); err == nil {
		t.Fatal("preprocessor conditionals should be rejected")
	}
}

func TestLexerMultiCharOperators(t *testing.T) {
	toks, err := NewLexer("a += b; c <= d; e && f; g++;").Lex()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tok := range toks {
		got[tok.Text] = true
	}
	for _, op := range []string{"+=", "<=", "&&", "++"} {
		if !got[op] {
			t.Errorf("operator %q not lexed as one token", op)
		}
	}
}

func TestParseGlobalsAndFunctions(t *testing.T) {
	prog := mustParse(t, `
double a[10][20];
int n = 5;
double helper(double x, int k) { return x * k; }
int main() { return 0; }
`)
	if len(prog.Decls) != 2 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	if prog.Decls[0].Name != "a" || len(prog.Decls[0].Dims) != 2 {
		t.Fatalf("array decl %+v", prog.Decls[0])
	}
	if prog.Decls[1].Init == nil {
		t.Fatal("scalar initializer lost")
	}
	if len(prog.Funcs) != 2 || prog.Funcs[0].Name != "helper" || len(prog.Funcs[0].Params) != 2 {
		t.Fatalf("functions parsed wrong: %+v", prog.Funcs)
	}
}

func TestParseCanonicalFor(t *testing.T) {
	prog := mustParse(t, `int main() { int i; for (i = 0; i < 10; i++) { i = i; } }`)
	f := prog.Funcs[0].Body.Stmts[0].(*ForStmt)
	if f.Var != "i" || f.LessEq {
		t.Fatalf("for = %+v", f)
	}
}

func TestParseRejectsNonCanonicalOmpFor(t *testing.T) {
	_, err := Parse(`int main() { int i;
#pragma omp for
while (i < 10) { i++; }
}`)
	if err == nil {
		t.Fatal("omp for over a while loop should be rejected")
	}
}

func TestParseDirectives(t *testing.T) {
	cases := []struct {
		text string
		kind DirKind
	}{
		{"omp parallel", DirParallel},
		{"omp parallel for", DirParallelFor},
		{"omp for", DirFor},
		{"omp critical", DirCritical},
		{"omp atomic", DirAtomic},
		{"omp single", DirSingle},
		{"omp master", DirMaster},
		{"omp barrier", DirBarrier},
		{"omp task", DirTask},
		{"omp taskwait", DirTaskwait},
	}
	for _, c := range cases {
		d, err := parseDirective(c.text, 1)
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		if d.Kind != c.kind {
			t.Errorf("%q parsed as %v", c.text, d.Kind)
		}
	}
}

func TestParseDirectiveClauses(t *testing.T) {
	d, err := parseDirective("omp parallel for private(i, j) firstprivate(x) reduction(+:sum, err) nowait schedule(static)", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Private) != 2 || d.Private[0] != "i" || d.Private[1] != "j" {
		t.Fatalf("private = %v", d.Private)
	}
	if len(d.FirstPrivate) != 1 || d.FirstPrivate[0] != "x" {
		t.Fatalf("firstprivate = %v", d.FirstPrivate)
	}
	if len(d.Reductions) != 1 || d.Reductions[0].Op != "+" || len(d.Reductions[0].Vars) != 2 {
		t.Fatalf("reductions = %+v", d.Reductions)
	}
	if !d.NoWait {
		t.Fatal("nowait lost")
	}
}

func TestParseCriticalName(t *testing.T) {
	d, err := parseDirective("omp critical (update)", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "update" {
		t.Fatalf("name = %q", d.Name)
	}
}

func TestParseDynamicSchedule(t *testing.T) {
	d, err := parseDirective("omp for schedule(dynamic, 4)", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Dynamic || d.ChunkSize != 4 {
		t.Fatalf("dynamic schedule parsed as %+v", d)
	}
}

func TestScalarTargets(t *testing.T) {
	prog := mustParse(t, `
double total;
double other;
int main() {
#pragma omp parallel
	{
#pragma omp critical
		{ total += 1.0; }
		other = 2.0;
	}
}`)
	targets := scalarTargets(prog)
	if !targets["total"] {
		t.Fatal("critical target not detected")
	}
	if targets["other"] {
		t.Fatal("plain assignment wrongly classified as hybrid scalar")
	}
}

func translate(t *testing.T, src string) string {
	t.Helper()
	out, err := Translate(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTranslateAnalyzableCriticalUsesHybridPath(t *testing.T) {
	out := translate(t, `
double sum;
int main() {
#pragma omp parallel
	{
#pragma omp critical
		{ sum += 1.0; }
	}
}`)
	if !strings.Contains(out, "tc.Critical(\"crit_2\", []*parade.Scalar{s_sum}") {
		t.Fatalf("analyzable critical not hybridized:\n%s", out)
	}
}

func TestTranslateNonAnalyzableCriticalFallsBack(t *testing.T) {
	out := translate(t, `
double a[100];
double sum;
int main() {
#pragma omp parallel
	{
#pragma omp critical
		{ a[0] += 1.0; }
	}
}`)
	if !strings.Contains(out, "tc.Critical(\"crit_2\", nil, func()") {
		t.Fatalf("array-writing critical should use the lock path:\n%s", out)
	}
}

func TestTranslateThresholdForcesLockPath(t *testing.T) {
	src := `
double s1; double s2; double s3;
int main() {
#pragma omp parallel
	{
#pragma omp critical
		{ s1 += 1.0; s2 += 1.0; s3 += 1.0; }
	}
}`
	out, err := Translate(src, Options{SmallThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nil, func()") {
		t.Fatalf("oversized critical (24 bytes > 16) should use the lock path:\n%s", out)
	}
}

func TestTranslateAtomic(t *testing.T) {
	out := translate(t, `
double x;
int main() {
#pragma omp parallel
	{
#pragma omp atomic
		x += 2.5;
	}
}`)
	if !strings.Contains(out, "tc.Atomic(s_x, 2.5)") {
		t.Fatalf("atomic not lowered to collective:\n%s", out)
	}
}

func TestTranslateSingleBroadcastVsBarrier(t *testing.T) {
	out := translate(t, `
double w;
double big[1000];
int main() {
#pragma omp parallel
	{
#pragma omp single
		{ w = 0.5; }
#pragma omp single
		{ big[0] = 1.0; }
	}
}`)
	if !strings.Contains(out, "tc.Single(\"single_2\", s_w") {
		t.Fatalf("small single should broadcast:\n%s", out)
	}
	if !strings.Contains(out, "tc.SingleBarrier(\"single_3\"") {
		t.Fatalf("array single should use the barrier path:\n%s", out)
	}
}

func TestTranslateReductionElidesBarrierWhenPure(t *testing.T) {
	out := translate(t, `
double a[100];
int main() {
	double sum;
	int i;
#pragma omp parallel for reduction(+:sum)
	for (i = 0; i < 100; i++) {
		sum += a[i];
	}
}`)
	if !strings.Contains(out, "parade.Nowait()") {
		t.Fatalf("pure reduction loop should elide the barrier:\n%s", out)
	}
	if !strings.Contains(out, "parade.OpSum") {
		t.Fatalf("reduction collective missing:\n%s", out)
	}
}

func TestTranslateReductionKeepsBarrierWhenWritingArrays(t *testing.T) {
	out := translate(t, `
double a[100];
int main() {
	double sum;
	int i;
#pragma omp parallel for reduction(+:sum)
	for (i = 0; i < 100; i++) {
		a[i] = 1.0;
		sum += a[i];
	}
}`)
	if !strings.Contains(out, "tc.For(") || strings.Contains(out, "parade.Nowait()") {
		t.Fatalf("array-writing reduction loop must keep its barrier:\n%s", out)
	}
}

func TestTranslateMultiDimIndexing(t *testing.T) {
	out := translate(t, `
double a[8][16];
int main() {
	int i, j;
#pragma omp parallel for private(j)
	for (i = 0; i < 8; i++) {
		for (j = 0; j < 16; j++) {
			a[i][j] = i + j;
		}
	}
}`)
	if !strings.Contains(out, "a.Set(tc, (i)*(16)+(j)") {
		t.Fatalf("row-major flattening wrong:\n%s", out)
	}
}

func TestTranslateOmpRuntimeCalls(t *testing.T) {
	out := translate(t, `
int main() {
#pragma omp parallel
	{
		int tid;
		tid = omp_get_thread_num();
		tid = omp_get_num_threads();
	}
}`)
	if !strings.Contains(out, "tc.GID()") || !strings.Contains(out, "tc.NumThreads()") {
		t.Fatalf("omp runtime calls not mapped:\n%s", out)
	}
}

func TestTranslateHelperPurityEnforced(t *testing.T) {
	_, err := Translate(`
double shared_arr[10];
double bad() { return shared_arr[0]; }
int main() { }
`, Options{})
	if err == nil || !strings.Contains(err.Error(), "shared array") {
		t.Fatalf("helper touching shared data should be rejected, got %v", err)
	}
}

func TestTranslateRejectsNestedParallel(t *testing.T) {
	_, err := Translate(`
int main() {
#pragma omp parallel
	{
#pragma omp parallel
		{ }
	}
}`, Options{})
	if err == nil {
		t.Fatal("nested parallel should be rejected")
	}
}

func TestTranslateGoldenJacobi(t *testing.T) {
	src, err := os.ReadFile("testdata/jacobi.c")
	if err != nil {
		t.Fatal(err)
	}
	out := translate(t, string(src))
	golden, err := os.ReadFile("../../examples/translated-jacobi/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatal("examples/translated-jacobi/main.go is stale: regenerate with " +
			"`go run ./cmd/parade-translate -o examples/translated-jacobi/main.go internal/translator/testdata/jacobi.c`")
	}
}

func TestTranslateGoldenDirectives(t *testing.T) {
	src, err := os.ReadFile("testdata/directives.c")
	if err != nil {
		t.Fatal(err)
	}
	out := translate(t, string(src))
	golden, err := os.ReadFile("../../examples/translated-pi/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatal("examples/translated-pi/main.go is stale: regenerate with " +
			"`go run ./cmd/parade-translate -o examples/translated-pi/main.go internal/translator/testdata/directives.c`")
	}
}

func TestTranslateEmitsFlagsAndRun(t *testing.T) {
	out := translate(t, `int main() { }`)
	for _, want := range []string{
		"parade.Run(cfg", "flag.Int(\"nodes\"", "parade.SDSM",
		"func main() {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTranslateDynamicSchedule(t *testing.T) {
	out := translate(t, `
double a[100];
int main() {
	int i;
#pragma omp parallel for schedule(dynamic, 4)
	for (i = 0; i < 100; i++) {
		a[i] = i;
	}
}`)
	if !strings.Contains(out, "parade.WithSchedule(parade.Dynamic, 4)") ||
		!strings.Contains(out, `parade.WithName("dyn_`) {
		t.Fatalf("dynamic schedule not lowered:\n%s", out)
	}
}

func TestTranslateGuidedSchedule(t *testing.T) {
	out := translate(t, `
double a[100];
int main() {
	int i;
#pragma omp parallel for schedule(guided, 2)
	for (i = 0; i < 100; i++) {
		a[i] = i;
	}
}`)
	if !strings.Contains(out, "parade.WithSchedule(parade.Guided, 2)") {
		t.Fatalf("guided schedule not lowered:\n%s", out)
	}
}

func TestTranslateRejectsRuntimeSchedule(t *testing.T) {
	if _, err := parseDirective("omp for schedule(runtime)", 1); err == nil {
		t.Fatal("schedule(runtime) should be rejected")
	}
}

func TestTranslateTaskLowering(t *testing.T) {
	out := translate(t, `
double a[32];
int main() {
	int k;
#pragma omp parallel
	{
#pragma omp master
		{
			for (k = 0; k < 4; k++) {
#pragma omp task firstprivate(k)
				{
					a[k] = k * 2.0;
				}
			}
		}
#pragma omp taskwait
	}
}`)
	for _, want := range []string{
		"tc.Task(func(tt *parade.Thread) float64 {",
		":= k // firstprivate capture at spawn",
		"return 0",
		"tc.Taskwait()",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("task lowering missing %q:\n%s", want, out)
		}
	}
	// The body must address shared memory through the executing thread's
	// context, not the spawner's.
	if !strings.Contains(out, "a.Set(tt, ") {
		t.Fatalf("task body should use the task context:\n%s", out)
	}
}

func TestTranslateTaskOutsideParallelRejected(t *testing.T) {
	_, err := Translate(`
int main() {
#pragma omp task
	{ }
}`, Options{})
	if err == nil || !strings.Contains(err.Error(), "task outside a parallel region") {
		t.Fatalf("task outside parallel should be rejected, got %v", err)
	}
}

func TestTranslateCollectiveInsideTaskRejected(t *testing.T) {
	_, err := Translate(`
double sum;
int main() {
#pragma omp parallel
	{
#pragma omp task
		{
#pragma omp atomic
			sum += 1.0;
		}
	}
}`, Options{})
	if err == nil || !strings.Contains(err.Error(), "inside a task body") {
		t.Fatalf("collective inside task should be rejected, got %v", err)
	}
}

func TestParseTargetDirective(t *testing.T) {
	d, err := parseDirective("omp target device(2) map(to: a, b) map(from: out) depend(task: prep) name(off) priority(3)", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DirTarget || d.Device != 2 || d.TaskName != "off" || d.Priority != 3 {
		t.Fatalf("target parsed as %+v", d)
	}
	if len(d.Maps) != 2 || d.Maps[0].Dir != "to" || len(d.Maps[0].Vars) != 2 || d.Maps[1].Dir != "from" {
		t.Fatalf("maps = %+v", d.Maps)
	}
	if len(d.Depends) != 1 || d.Depends[0].Kind != "task" || d.Depends[0].Tasks[0] != "prep" {
		t.Fatalf("depends = %+v", d.Depends)
	}
}

func TestParseDependClause(t *testing.T) {
	d, err := parseDirective("omp task depend(in: x, a[3], b[i][j]) depend(out: a) depend(inout: y)", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Depends) != 3 {
		t.Fatalf("depends = %+v", d.Depends)
	}
	in := d.Depends[0]
	if in.Kind != "in" || len(in.Items) != 3 {
		t.Fatalf("in = %+v", in)
	}
	if id, ok := in.Items[0].(*Ident); !ok || id.Name != "x" {
		t.Fatalf("item 0 = %#v", in.Items[0])
	}
	if ix, ok := in.Items[1].(*Index); !ok || ix.Base != "a" || len(ix.Subs) != 1 {
		t.Fatalf("item 1 = %#v", in.Items[1])
	}
	if ix, ok := in.Items[2].(*Index); !ok || ix.Base != "b" || len(ix.Subs) != 2 {
		t.Fatalf("item 2 = %#v", in.Items[2])
	}
	if d.Depends[1].Kind != "out" || d.Depends[2].Kind != "inout" {
		t.Fatalf("kinds = %s %s", d.Depends[1].Kind, d.Depends[2].Kind)
	}
}

// TestClauseErrors: unknown and malformed depend/map/device/name/priority
// clauses produce the typed *ClauseError with the offending token's
// line and column.
func TestClauseErrors(t *testing.T) {
	cases := []struct {
		name   string
		text   string
		clause string
		col    int
	}{
		{"unknown depend kind", "omp task depend(inoutset: x)", "depend", 17},
		{"depend missing colon", "omp task depend(in x)", "depend", 20},
		{"depend empty list", "omp task depend(in: )", "depend", 10},
		{"depend unterminated", "omp task depend(in: x", "depend", 21},
		{"depend bad subscript", "omp task depend(in: a[+])", "depend", 23},
		{"depend on for", "omp for depend(in: x)", "depend", 9},
		{"unknown map direction", "omp target map(alloc: a)", "map", 16},
		{"map element item", "omp target map(to: a[0])", "map", 21},
		{"map on task", "omp task map(to: a)", "map", 10},
		{"device on task", "omp task device(1)", "device", 10},
		{"device not a number", "omp target device(x)", "device", 19},
		{"device negative", "omp target device(-1)", "device", 19},
		{"name not an identifier", "omp task name(123)", "name", 15},
		{"priority not a number", "omp task priority(soon)", "priority", 19},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseDirective(tc.text, 7)
			var ce *ClauseError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ClauseError", err)
			}
			if ce.Line != 7 || ce.Clause != tc.clause || ce.Col != tc.col {
				t.Fatalf("got line %d col %d clause %q (%s), want line 7 col %d clause %q",
					ce.Line, ce.Col, ce.Clause, ce.Msg, tc.col, tc.clause)
			}
		})
	}
}

func TestTranslateDependLowering(t *testing.T) {
	out := translate(t, `
double a[32];
int main() {
#pragma omp parallel
	{
#pragma omp task name(w) depend(out: a)
		{ a[0] = 1.0; }
#pragma omp task depend(in: a[4]) depend(task: w) priority(2)
		{ a[1] = a[4]; }
#pragma omp taskwait
	}
}`)
	for _, want := range []string{
		`parade.WithDepend(parade.Out, parade.DepName("a")), parade.WithTaskName("w")`,
		`parade.WithDepend(parade.In, parade.DepAddr(a.Addr((4)))), parade.WithDepend(parade.In, parade.DepTask("w")), parade.WithPriority(2)`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("depend lowering missing %q:\n%s", want, out)
		}
	}
}

func TestTranslateTargetLowering(t *testing.T) {
	out := translate(t, `
double a[32];
double r[4];
int main() {
#pragma omp parallel
	{
#pragma omp target device(1) map(to: a) map(from: r)
		{ r[0] = a[0]; }
#pragma omp taskwait
	}
}`)
	for _, want := range []string{
		"tc.Target(1, func(tt *parade.Thread) float64 {",
		"parade.WithMap(parade.MapTo, a)",
		"parade.WithMap(parade.MapFrom, r)",
		"r.Set(tt, (0), a.Get(tt, (0)))",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("target lowering missing %q:\n%s", want, out)
		}
	}
}

func TestTranslateTargetOutsideParallelRejected(t *testing.T) {
	_, err := Translate(`
double a[8];
int main() {
#pragma omp target map(to: a)
	{ a[0] = 1.0; }
}`, Options{})
	if err == nil || !strings.Contains(err.Error(), "target outside a parallel region") {
		t.Fatalf("target outside parallel should be rejected, got %v", err)
	}
}

func TestTranslateMapNonArrayRejected(t *testing.T) {
	_, err := Translate(`
int main() {
	double x;
#pragma omp parallel
	{
#pragma omp target map(to: x)
		{ x = 1.0; }
	}
}`, Options{})
	if err == nil || !strings.Contains(err.Error(), "only shared arrays are mappable") {
		t.Fatalf("mapping a scalar should be rejected, got %v", err)
	}
}

// TestTranslateTaskCycleRejected mirrors the runtime's cycle-rejection
// test: circular depend(task:) sets fail translation with the typed
// *DepCycleError.
func TestTranslateTaskCycleRejected(t *testing.T) {
	wrap := func(tasks string) string {
		return "int main() {\n#pragma omp parallel\n\t{\n" + tasks + "#pragma omp taskwait\n\t}\n}"
	}
	cases := []struct {
		name string
		src  string
	}{
		{"self cycle", wrap(
			"#pragma omp task name(a) depend(task: a)\n\t{ }\n")},
		{"two cycle", wrap(
			"#pragma omp task name(a) depend(task: b)\n\t{ }\n" +
				"#pragma omp task name(b) depend(task: a)\n\t{ }\n")},
		{"three cycle", wrap(
			"#pragma omp task name(a) depend(task: c)\n\t{ }\n" +
				"#pragma omp task name(b) depend(task: a)\n\t{ }\n" +
				"#pragma omp task name(c) depend(task: b)\n\t{ }\n")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Translate(tc.src, Options{})
			var ce *DepCycleError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *DepCycleError", err)
			}
			if ce.Name == "" || ce.Line == 0 {
				t.Fatalf("cycle error incomplete: %+v", ce)
			}
		})
	}
	// A diamond (acyclic) over the same names must pass.
	ok := wrap(
		"#pragma omp task name(a)\n\t{ }\n" +
			"#pragma omp task name(b) depend(task: a)\n\t{ }\n" +
			"#pragma omp task name(c) depend(task: a)\n\t{ }\n" +
			"#pragma omp task name(d) depend(task: b, c)\n\t{ }\n")
	if _, err := Translate(ok, Options{}); err != nil {
		t.Fatalf("diamond should translate: %v", err)
	}
}

func TestTranslateGoldenDeps(t *testing.T) {
	src, err := os.ReadFile("testdata/deps.c")
	if err != nil {
		t.Fatal(err)
	}
	out := translate(t, string(src))
	golden, err := os.ReadFile("../../examples/translated-deps/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatal("examples/translated-deps/main.go is stale: regenerate with " +
			"`go run ./cmd/parade-translate -o examples/translated-deps/main.go internal/translator/testdata/deps.c`")
	}
}

func TestTranslateGoldenTasks(t *testing.T) {
	src, err := os.ReadFile("testdata/tasks.c")
	if err != nil {
		t.Fatal(err)
	}
	out := translate(t, string(src))
	golden, err := os.ReadFile("../../examples/translated-tasks/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatal("examples/translated-tasks/main.go is stale: regenerate with " +
			"`go run ./cmd/parade-translate -o examples/translated-tasks/main.go internal/translator/testdata/tasks.c`")
	}
}
