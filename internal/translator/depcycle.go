package translator

import "fmt"

// Static rejection of circular depend(task:) sets. The runtime detects
// the same condition at spawn time (*core.TaskCycleError, aborting the
// run); the translator catches the literal-name case before any code is
// generated, per function — the static approximation of the runtime's
// spawning context.

// DepCycleError is the typed error for a statically detectable cycle in
// the named-task dependence graph: a task whose depend(task:) references
// lead, transitively, back to itself.
type DepCycleError struct {
	Name string // a task name on the cycle
	Line int    // the source line of its directive
}

func (e *DepCycleError) Error() string {
	return fmt.Sprintf("line %d: task dependence cycle through %q", e.Line, e.Name)
}

// checkTaskCycles walks every function's named task/target directives
// and rejects circular depend(task:) reference sets. References to names
// no sibling registers are ignored — the runtime resolves those
// vacuously at the context's end.
func checkTaskCycles(prog *Program) error {
	for _, fn := range prog.Funcs {
		type node struct {
			line int
			out  []string
		}
		graph := map[string]*node{}
		var walk func(Stmt)
		wb := func(b *Block) {
			if b == nil {
				return
			}
			for _, s := range b.Stmts {
				walk(s)
			}
		}
		walk = func(s Stmt) {
			switch st := s.(type) {
			case *Block:
				wb(st)
			case *ForStmt:
				wb(st.Body)
			case *WhileStmt:
				wb(st.Body)
			case *IfStmt:
				wb(st.Then)
				if st.Else != nil {
					wb(st.Else)
				}
			case *OmpStmt:
				if (st.Dir.Kind == DirTask || st.Dir.Kind == DirTarget) && st.Dir.TaskName != "" {
					var out []string
					for _, dep := range st.Dir.Depends {
						out = append(out, dep.Tasks...)
					}
					if n := graph[st.Dir.TaskName]; n != nil {
						// A reused name (e.g. a spawn in a loop): the edges
						// of every occurrence belong to one node.
						n.out = append(n.out, out...)
					} else {
						graph[st.Dir.TaskName] = &node{line: st.Line, out: out}
					}
				}
				switch b := st.Body.(type) {
				case *Block:
					wb(b)
				case *ForStmt:
					walk(b)
				}
			}
		}
		wb(fn.Body)

		// Unnamed tasks cannot be referenced, so only named nodes can sit
		// on a cycle; depth-first search with the usual three colors.
		const (
			white = iota
			grey
			black
		)
		color := map[string]int{}
		var visit func(name string) *DepCycleError
		visit = func(name string) *DepCycleError {
			n := graph[name]
			if n == nil {
				return nil // dangling reference: vacuous at runtime
			}
			switch color[name] {
			case grey:
				return &DepCycleError{Name: name, Line: n.line}
			case black:
				return nil
			}
			color[name] = grey
			for _, m := range n.out {
				if err := visit(m); err != nil {
					return err
				}
			}
			color[name] = black
			return nil
		}
		names := make([]string, 0, len(graph))
		for name := range graph {
			names = append(names, name)
		}
		sortStrings(names)
		for _, name := range names {
			if err := visit(name); err != nil {
				return err
			}
		}
	}
	return nil
}
