package translator

import (
	"fmt"
	"strings"
)

// Expression generation with C-to-Go numeric conversion: Go requires
// explicit conversions where C converts implicitly, so the generator
// tracks the element type of every subexpression and inserts float64()
// or int() as needed. Untyped literals are left bare (Go adapts them).

// identType resolves a scalar variable's element type.
func (g *generator) identType(name string) Type {
	if g.scalars[name] {
		return TypeDouble
	}
	if t, ok := g.types[name]; ok {
		return t
	}
	return TypeDouble
}

// exprType infers the C type of an expression.
func (g *generator) exprType(e Expr) Type {
	switch x := e.(type) {
	case *Number:
		if strings.ContainsAny(x.Text, ".eE") && !strings.HasPrefix(x.Text, "0x") && !strings.HasPrefix(x.Text, "0X") {
			return TypeDouble
		}
		return TypeInt
	case *Ident:
		name := x.Name
		if r := g.renames[name]; r != "" {
			// Renames cover reduction accumulators (always double) and
			// firstprivate task captures (typed like their source).
			if t, ok := g.types[r]; ok {
				return t
			}
			return TypeDouble
		}
		return g.identType(name)
	case *StringLit:
		return TypeVoid
	case *Index:
		if arr := g.arrays[x.Base]; arr != nil {
			return arr.Elem
		}
		return TypeDouble
	case *Unary:
		if x.Op == "!" {
			return TypeInt
		}
		return g.exprType(x.X)
	case *Binary:
		switch x.Op {
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			return TypeInt
		}
		if g.exprType(x.X) == TypeDouble || g.exprType(x.Y) == TypeDouble {
			return TypeDouble
		}
		return TypeInt
	case *Cond:
		return g.exprType(x.A)
	case *Call:
		switch {
		case x.Name == "__cast_int":
			return TypeInt
		case x.Name == "__cast_float64":
			return TypeDouble
		case mathFuncs[x.Name] != "":
			return TypeDouble
		case x.Name == "omp_get_thread_num" || x.Name == "omp_get_num_threads":
			return TypeInt
		case x.Name == "omp_get_wtime":
			return TypeDouble
		default:
			if fn := g.funcs[x.Name]; fn != nil {
				return fn.Ret
			}
			return TypeDouble
		}
	default:
		return TypeDouble
	}
}

// isUntypedLiteral reports whether e renders as a Go untyped constant.
func isUntypedLiteral(e Expr) bool {
	switch x := e.(type) {
	case *Number:
		return true
	case *Unary:
		return isUntypedLiteral(x.X)
	default:
		return false
	}
}

// expr renders e, converting to the wanted element type where Go needs
// an explicit conversion.
func (g *generator) expr(e Expr, want Type) string {
	s := g.exprRaw(e)
	have := g.exprType(e)
	if want == have || want == TypeVoid || isUntypedLiteral(e) {
		return s
	}
	switch want {
	case TypeDouble:
		return "float64(" + s + ")"
	case TypeInt:
		return "int(" + s + ")"
	}
	return s
}

// exprRaw renders e in its natural type.
func (g *generator) exprRaw(e Expr) string {
	switch x := e.(type) {
	case *Number:
		return strings.TrimRight(x.Text, "lLuUfF")
	case *StringLit:
		return x.Text
	case *Ident:
		name := x.Name
		if r := g.renames[name]; r != "" {
			return r
		}
		if g.scalars[name] {
			return fmt.Sprintf("%s.Get(%s)", scalarVar(name), g.ctx)
		}
		return name
	case *Index:
		arr := g.arrays[x.Base]
		if arr == nil {
			return fmt.Sprintf("/* unknown array */ %s", x.Base)
		}
		return fmt.Sprintf("%s.Get(%s, %s)", x.Base, g.ctx, g.flatIndex(arr, x.Subs))
	case *Unary:
		return x.Op + "(" + g.exprRaw(x.X) + ")"
	case *Binary:
		switch x.Op {
		case "&&", "||":
			return "(" + g.cond(x.X) + " " + x.Op + " " + g.cond(x.Y) + ")"
		case "<", "<=", ">", ">=", "==", "!=":
			// Render as a C-style 0/1 int only when used as a value;
			// cond() bypasses this for control flow.
			g.usesB2i = true
			return fmt.Sprintf("b2i(%s)", g.comparison(x))
		}
		// Arithmetic: promote to double if either side is double.
		t := TypeInt
		if g.exprType(x.X) == TypeDouble || g.exprType(x.Y) == TypeDouble {
			t = TypeDouble
		}
		return "(" + g.expr(x.X, t) + " " + x.Op + " " + g.expr(x.Y, t) + ")"
	case *Cond:
		g.usesTernary = true
		t := g.exprType(x.A)
		return fmt.Sprintf("ternary(%s, %s, %s)", g.cond(x.X), g.expr(x.A, t), g.expr(x.B, t))
	case *Call:
		return g.call(x)
	default:
		return fmt.Sprintf("/* ? %T */", e)
	}
}

// comparison renders a relational operator as a Go bool expression with
// both operands promoted to a common type.
func (g *generator) comparison(x *Binary) string {
	t := TypeInt
	if g.exprType(x.X) == TypeDouble || g.exprType(x.Y) == TypeDouble {
		t = TypeDouble
	}
	return g.expr(x.X, t) + " " + x.Op + " " + g.expr(x.Y, t)
}

// cond renders e as a Go boolean (C integers in boolean context).
func (g *generator) cond(e Expr) string {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "<", "<=", ">", ">=", "==", "!=":
			return g.comparison(x)
		case "&&", "||":
			return "(" + g.cond(x.X) + " " + x.Op + " " + g.cond(x.Y) + ")"
		}
	case *Unary:
		if x.Op == "!" {
			return "!(" + g.cond(x.X) + ")"
		}
	}
	return g.expr(e, g.exprType(e)) + " != 0"
}

// call renders a function call, mapping C library and OpenMP runtime
// functions to their Go/parade equivalents.
func (g *generator) call(x *Call) string {
	switch {
	case x.Name == "__cast_float64":
		return "float64(" + g.exprRaw(x.Args[0]) + ")"
	case x.Name == "__cast_int":
		return "int(" + g.exprRaw(x.Args[0]) + ")"
	case mathFuncs[x.Name] != "":
		g.usesMath = true
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = g.expr(a, TypeDouble)
		}
		return mathFuncs[x.Name] + "(" + strings.Join(args, ", ") + ")"
	case x.Name == "omp_get_thread_num":
		return g.ctx + ".GID()"
	case x.Name == "omp_get_num_threads":
		return g.ctx + ".NumThreads()"
	case x.Name == "omp_get_wtime":
		return "(float64(" + g.ctx + ".Now()) / 1e9)"
	default:
		fn := g.funcs[x.Name]
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			want := TypeDouble
			if fn != nil && i < len(fn.Params) {
				want = fn.Params[i].Elem
			}
			args[i] = g.expr(a, want)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	}
}

// flatIndex renders the flattened element index of a multi-dimensional
// access (row-major, matching C).
func (g *generator) flatIndex(arr *VarDecl, subs []Expr) string {
	if len(subs) != len(arr.Dims) {
		return "/* rank mismatch */ 0"
	}
	parts := make([]string, len(subs))
	for i, sub := range subs {
		term := "(" + g.expr(sub, TypeInt) + ")"
		for j := i + 1; j < len(arr.Dims); j++ {
			term += "*(" + g.expr(arr.Dims[j], TypeInt) + ")"
		}
		parts[i] = term
	}
	return strings.Join(parts, " + ")
}
