/*
 * Directive showcase: a pi integration whose accumulation runs through
 * every synchronization directive the translator lowers — an analyzable
 * critical (hybrid collective), an atomic, a broadcast single, a master
 * block, and an explicit barrier.
 */
#include <stdio.h>

#define STEPS 4096

double area;
double width;
double calls;

int main() {
    int i;
    double x, partial;

    #pragma omp parallel private(i, x, partial)
    {
        #pragma omp single
        {
            width = 1.0 / STEPS;
        }
        #pragma omp barrier

        partial = 0.0;
        #pragma omp for
        for (i = 0; i < STEPS; i++) {
            x = (i + 0.5) * width;
            partial += 4.0 / (1.0 + x * x);
        }

        #pragma omp critical
        {
            area += partial;
        }

        #pragma omp atomic
        calls += 1.0;

        #pragma omp master
        {
            printf("master thread %d of %d\n", omp_get_thread_num(), omp_get_num_threads());
        }
    }

    printf("pi = %f\n", area * width);
    printf("calls = %f\n", calls);
    return 0;
}
