/*
 * Dependence and offload showcase: named tasks form a producer ->
 * transformer pipeline over a shared array, ordered by depend clauses
 * instead of taskwaits; element-granular depend items serialize a
 * single-cell handoff; and a target region offloads a reduction pass to
 * device node 1 with explicit to/from data maps.
 */
#include <stdio.h>

double a[64];
double out[8];

int main() {
    int i;
    double sum;

    #pragma omp parallel
    {
        #pragma omp master
        {
            #pragma omp task name(init) depend(out: a)
            {
                int j;
                for (j = 0; j < 64; j++) {
                    a[j] = j * 0.5;
                }
            }
            #pragma omp task name(scale) depend(inout: a) depend(task: init) priority(1)
            {
                int j;
                for (j = 0; j < 64; j++) {
                    a[j] = a[j] * 2.0 + 1.0;
                }
            }
            #pragma omp task depend(in: a[0]) depend(task: scale)
            {
                out[1] = a[0];
            }
            #pragma omp target device(1) map(to: a) map(from: out) depend(task: scale) name(off)
            {
                int j;
                double acc;
                acc = 0.0;
                for (j = 0; j < 64; j++) {
                    acc = acc + a[j];
                }
                out[0] = acc;
            }
        }
        #pragma omp taskwait

        #pragma omp for reduction(+:sum)
        for (i = 0; i < 64; i++) {
            sum += a[i];
        }
    }

    printf("sum = %f offload = %f cell = %f\n", sum, out[0], out[1]);
    return 0;
}
