/*
 * Helmholtz / Jacobi solver with over-relaxation: the OpenMP C version
 * of the jacobi.f sample the paper evaluates (§6.2). The convergence
 * test accumulates the residual with a reduction clause, which the
 * ParADE translator lowers to one collective.
 */
#include <stdio.h>
#include <math.h>

#define N 64
#define M 64

double u[N][M];
double uold[N][M];
double f[N][M];

int main() {
    int i, j, k, maxit;
    double alpha, relax, tol, dx, dy, ax, ay, b, error, resid;

    alpha = 0.05;
    relax = 1.0;
    tol = 1.0e-10;
    maxit = 30;
    dx = 2.0 / (N - 1);
    dy = 2.0 / (M - 1);
    ax = 1.0 / (dx * dx);
    ay = 1.0 / (dy * dy);
    b = -2.0 / (dx * dx) - 2.0 / (dy * dy) - alpha;

    #pragma omp parallel for private(j)
    for (i = 0; i < N; i++) {
        for (j = 0; j < M; j++) {
            double x;
            double y;
            x = -1.0 + dx * i;
            y = -1.0 + dy * j;
            u[i][j] = 0.0;
            f[i][j] = -alpha * (1.0 - x * x) * (1.0 - y * y) - 2.0 * (1.0 - x * x) - 2.0 * (1.0 - y * y);
        }
    }

    k = 1;
    error = 10.0 * tol;
    while (k <= maxit && error > tol) {
        error = 0.0;
        #pragma omp parallel private(j, resid)
        {
            #pragma omp for
            for (i = 0; i < N; i++) {
                for (j = 0; j < M; j++) {
                    uold[i][j] = u[i][j];
                }
            }
            #pragma omp for reduction(+:error)
            for (i = 1; i < N - 1; i++) {
                for (j = 1; j < M - 1; j++) {
                    resid = (ax * (uold[i-1][j] + uold[i+1][j]) + ay * (uold[i][j-1] + uold[i][j+1]) + b * uold[i][j] - f[i][j]) / b;
                    u[i][j] = uold[i][j] - relax * resid;
                    error = error + resid * resid;
                }
            }
        }
        error = sqrt(error) / (N * M);
        k = k + 1;
    }

    printf("Iterations: %d\n", k - 1);
    printf("Residual: %e\n", error);
    return 0;
}
