/*
 * Task showcase: the master thread spawns one task per block of a
 * shared array; idle nodes steal and fill blocks over the fabric, the
 * taskwait joins them, and a dynamically scheduled reduction loop
 * checks the result.
 */
#include <stdio.h>

double a[64];

int main() {
    int i, j, k;
    double sum;

    #pragma omp parallel
    {
        #pragma omp master
        {
            for (k = 0; k < 8; k++) {
                #pragma omp task firstprivate(k) private(j)
                {
                    for (j = 0; j < 8; j++) {
                        a[k * 8 + j] = k + j * 0.5;
                    }
                }
            }
        }
        #pragma omp taskwait

        #pragma omp for reduction(+:sum) schedule(dynamic, 8)
        for (i = 0; i < 64; i++) {
            sum += a[i];
        }
    }

    printf("sum = %f\n", sum);
    return 0;
}
