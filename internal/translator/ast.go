package translator

// The parse tree. Nodes carry just enough structure for the directive
// analysis and the code generator; this is a translator, not a general
// C front end.

// Type is a scalar element type of the subset.
type Type int

// Element types.
const (
	TypeDouble Type = iota
	TypeInt
	TypeVoid
)

func (t Type) String() string {
	switch t {
	case TypeDouble:
		return "double"
	case TypeInt:
		return "int"
	default:
		return "void"
	}
}

// GoType returns the Go spelling of the type.
func (t Type) GoType() string {
	switch t {
	case TypeDouble:
		return "float64"
	case TypeInt:
		return "int"
	default:
		return ""
	}
}

// Program is a translation unit.
type Program struct {
	Decls []*VarDecl // file-scope variables (shared by default)
	Funcs []*FuncDecl
}

// VarDecl declares one variable (scalar or constant-bound array).
type VarDecl struct {
	Name string
	Elem Type
	Dims []Expr // empty for scalars; constant expressions for arrays
	Init Expr   // optional initializer (scalars only)
	Line int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []*VarDecl
	Body   *Block
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is a compound statement with its local declarations.
type Block struct {
	Decls []*VarDecl
	Stmts []Stmt
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct{ X Expr }

// Assign is lhs op rhs where op is "=", "+=", "-=", "*=", "/=".
type Assign struct {
	LHS Expr
	Op  string
	RHS Expr
}

// IncDec is lhs++ or lhs--.
type IncDec struct {
	LHS Expr
	Op  string // "++" or "--"
}

// ForStmt is the canonical counted loop: Var = Lo; Var < Hi; Var++.
// General C for loops outside this form are rejected inside omp-for
// directives and lowered as while-style loops elsewhere.
type ForStmt struct {
	Var    string
	Lo, Hi Expr
	LessEq bool // condition uses <=
	Body   *Block
	Line   int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
}

// IfStmt is an if with optional else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // nil if absent
}

// ReturnStmt returns an optional expression.
type ReturnStmt struct{ X Expr }

// BreakStmt breaks the innermost loop.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

// OmpStmt is an OpenMP directive applied to an optional body.
type OmpStmt struct {
	Dir  Directive
	Body Stmt // Block, ForStmt, or nil (barrier)
	Line int
}

func (*Block) stmt()        {}
func (*ExprStmt) stmt()     {}
func (*Assign) stmt()       {}
func (*IncDec) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*IfStmt) stmt()       {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*OmpStmt) stmt()      {}

// DirKind is the OpenMP directive kind.
type DirKind int

// Supported OpenMP 1.0 directives.
const (
	DirParallel DirKind = iota
	DirFor
	DirParallelFor
	DirCritical
	DirAtomic
	DirSingle
	DirMaster
	DirBarrier
	DirTask
	DirTaskwait
	DirTarget
)

func (d DirKind) String() string {
	switch d {
	case DirParallel:
		return "parallel"
	case DirFor:
		return "for"
	case DirParallelFor:
		return "parallel for"
	case DirCritical:
		return "critical"
	case DirAtomic:
		return "atomic"
	case DirSingle:
		return "single"
	case DirMaster:
		return "master"
	case DirBarrier:
		return "barrier"
	case DirTask:
		return "task"
	case DirTaskwait:
		return "taskwait"
	case DirTarget:
		return "target"
	default:
		return "?"
	}
}

// Reduction is one reduction(op:vars) clause entry.
type Reduction struct {
	Op   string // "+", "*", "max", "min"
	Vars []string
}

// Depend is one depend(kind: list) clause entry. The data kinds
// (in/out/inout) carry Items — Ident or Index expressions naming the
// depended-on variables or array elements; the task kind carries Tasks —
// the names of sibling tasks registered with name().
type Depend struct {
	Kind  string // "in", "out", "inout", "task"
	Items []Expr
	Tasks []string
}

// MapClause is one map(dir: vars) clause entry of a target directive.
type MapClause struct {
	Dir  string // "to", "from", "tofrom"
	Vars []string
}

// Directive is a parsed `#pragma omp` line.
type Directive struct {
	Kind         DirKind
	Name         string // critical section name, if given
	Private      []string
	FirstPrivate []string
	Shared       []string
	Reductions   []Reduction
	NoWait       bool
	Dynamic      bool // schedule(dynamic|guided) — the runtime extensions
	Guided       bool // guided variant of Dynamic
	ChunkSize    int  // dynamic chunk / guided minimum; 0 selects the default

	// Task-graph and offload clauses (task and target directives).
	Depends  []Depend    // depend(kind: list), in clause order
	Maps     []MapClause // map(dir: vars) — target only
	Device   int         // device(n) — target only; 0 when absent
	TaskName string      // name(x) — registers the task for DepTask edges
	Priority int         // priority(n); 0 when absent
}

// Expr is an expression node.
type Expr interface{ expr() }

// Ident references a variable.
type Ident struct{ Name string }

// Number is a numeric literal (original spelling preserved).
type Number struct{ Text string }

// StringLit is a string literal including quotes.
type StringLit struct{ Text string }

// Index is base[i0][i1]... .
type Index struct {
	Base string
	Subs []Expr
}

// Call is a function call.
type Call struct {
	Name string
	Args []Expr
}

// Unary is op X ( -, !, + ).
type Unary struct {
	Op string
	X  Expr
}

// Binary is X op Y.
type Binary struct {
	Op   string
	X, Y Expr
}

// Cond is C's ternary X ? A : B.
type Cond struct {
	X, A, B Expr
}

func (*Ident) expr()     {}
func (*Number) expr()    {}
func (*StringLit) expr() {}
func (*Index) expr()     {}
func (*Call) expr()      {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Cond) expr()      {}
