package translator

// Directive analysis (§4.2, §5.2.1): decide which synchronization
// directives are "statically analyzable" and therefore lowered to
// message-passing collectives, and classify every variable as a shared
// DSM array, a hybrid small scalar, or a replicated thread-local.

// mathFuncs are C library calls allowed inside analyzable blocks and
// mapped onto Go's math package.
var mathFuncs = map[string]string{
	"sqrt": "math.Sqrt", "fabs": "math.Abs", "sin": "math.Sin",
	"cos": "math.Cos", "exp": "math.Exp", "log": "math.Log",
	"pow": "math.Pow", "floor": "math.Floor", "ceil": "math.Ceil",
	"tan": "math.Tan", "atan": "math.Atan",
}

// ompFuncs are OpenMP runtime calls with direct Thread equivalents.
var ompFuncs = map[string]bool{
	"omp_get_thread_num": true, "omp_get_num_threads": true,
	"omp_get_wtime": true,
}

// scalarTargets walks the program and collects the names of scalars
// assigned inside critical or atomic bodies: those become hybrid Scalar
// variables; every other scalar is a replicated local.
func scalarTargets(prog *Program) map[string]bool {
	targets := map[string]bool{}
	var walkStmt func(s Stmt, inCritical bool)
	walkBlock := func(b *Block, inCritical bool) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			walkStmt(s, inCritical)
		}
	}
	walkStmt = func(s Stmt, inCritical bool) {
		switch st := s.(type) {
		case *Block:
			walkBlock(st, inCritical)
		case *Assign:
			if inCritical {
				if id, ok := st.LHS.(*Ident); ok {
					targets[id.Name] = true
				}
			}
		case *IncDec:
			if inCritical {
				if id, ok := st.LHS.(*Ident); ok {
					targets[id.Name] = true
				}
			}
		case *ForStmt:
			walkBlock(st.Body, inCritical)
		case *WhileStmt:
			walkBlock(st.Body, inCritical)
		case *IfStmt:
			walkBlock(st.Then, inCritical)
			walkBlock(st.Else, inCritical)
		case *OmpStmt:
			inner := inCritical || st.Dir.Kind == DirCritical || st.Dir.Kind == DirAtomic ||
				st.Dir.Kind == DirSingle
			switch b := st.Body.(type) {
			case *Block:
				walkBlock(b, inner)
			case *ForStmt:
				walkBlock(b.Body, inner)
			}
		}
	}
	for _, fn := range prog.Funcs {
		walkBlock(fn.Body, false)
	}
	return targets
}

// analyzableCritical reports whether a critical body is lexically
// analyzable per §4.2: every statement is a commutative accumulation
// into a scalar (x += e, x -= e, x++ or x = x + e / x = e + x), the
// right-hand sides call only whitelisted math functions, and no shared
// array is written. It returns the updated scalars in order.
func (g *generator) analyzableCritical(b *Block) ([]string, bool) {
	if b == nil || len(b.Decls) != 0 {
		return nil, false
	}
	var vars []string
	seen := map[string]bool{}
	for _, s := range b.Stmts {
		name, ok := g.commutativeUpdate(s)
		if !ok {
			return nil, false
		}
		if !seen[name] {
			seen[name] = true
			vars = append(vars, name)
		}
	}
	if len(vars) == 0 {
		return nil, false
	}
	// The paper's threshold check (§5.2.1): total guarded size must stay
	// under the small-structure threshold to use the update protocol.
	if 8*len(vars) > g.threshold {
		return nil, false
	}
	return vars, true
}

// commutativeUpdate matches one statement of the form the update
// protocol can merge, returning the target scalar name.
func (g *generator) commutativeUpdate(s Stmt) (string, bool) {
	switch st := s.(type) {
	case *Assign:
		id, ok := st.LHS.(*Ident)
		if !ok || g.arrays[id.Name] != nil {
			return "", false
		}
		if !g.pureExpr(st.RHS, id.Name) {
			return "", false
		}
		switch st.Op {
		case "+=", "-=":
			return id.Name, true
		case "=":
			// x = x + e or x = e + x
			if bin, ok := st.RHS.(*Binary); ok && bin.Op == "+" {
				if l, ok := bin.X.(*Ident); ok && l.Name == id.Name {
					return id.Name, true
				}
				if r, ok := bin.Y.(*Ident); ok && r.Name == id.Name {
					return id.Name, true
				}
			}
			return "", false
		default:
			return "", false
		}
	case *IncDec:
		id, ok := st.LHS.(*Ident)
		if !ok || g.arrays[id.Name] != nil {
			return "", false
		}
		return id.Name, true
	default:
		return "", false
	}
}

// pureExpr reports whether e reads no shared arrays and calls only
// whitelisted math functions. target may appear (self reference).
func (g *generator) pureExpr(e Expr, target string) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *Ident, *Number, *StringLit:
		return true
	case *Index:
		return g.arrays[x.Base] == nil
	case *Unary:
		return g.pureExpr(x.X, target)
	case *Binary:
		return g.pureExpr(x.X, target) && g.pureExpr(x.Y, target)
	case *Cond:
		return g.pureExpr(x.X, target) && g.pureExpr(x.A, target) && g.pureExpr(x.B, target)
	case *Call:
		if _, ok := mathFuncs[x.Name]; !ok && !isCast(x.Name) {
			return false
		}
		for _, a := range x.Args {
			if !g.pureExpr(a, target) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func isCast(name string) bool {
	return name == "__cast_float64" || name == "__cast_int"
}

// analyzableSingle reports whether a single body initializes exactly one
// hybrid scalar (and nothing else), the Fig. 3 broadcast case.
func (g *generator) analyzableSingle(b *Block) (string, bool) {
	if b == nil || len(b.Decls) != 0 || len(b.Stmts) != 1 {
		return "", false
	}
	asg, ok := b.Stmts[0].(*Assign)
	if !ok || asg.Op != "=" {
		return "", false
	}
	id, ok := asg.LHS.(*Ident)
	if !ok || g.arrays[id.Name] != nil || !g.scalars[id.Name] {
		return "", false
	}
	if !g.pureExpr(asg.RHS, id.Name) {
		return "", false
	}
	return id.Name, true
}

// atomicUpdate matches the atomic directive's expression-statement forms.
func (g *generator) atomicUpdate(b *Block) (name string, delta Expr, negate bool, ok bool) {
	if b == nil || len(b.Stmts) != 1 {
		return "", nil, false, false
	}
	switch st := b.Stmts[0].(type) {
	case *Assign:
		id, isID := st.LHS.(*Ident)
		if !isID || g.arrays[id.Name] != nil {
			return "", nil, false, false
		}
		switch st.Op {
		case "+=":
			return id.Name, st.RHS, false, g.pureExpr(st.RHS, id.Name)
		case "-=":
			return id.Name, st.RHS, true, g.pureExpr(st.RHS, id.Name)
		}
	case *IncDec:
		id, isID := st.LHS.(*Ident)
		if !isID {
			return "", nil, false, false
		}
		return id.Name, &Number{Text: "1"}, st.Op == "--", true
	}
	return "", nil, false, false
}

// writesSharedArray reports whether any statement in the subtree stores
// into a shared DSM array (used to decide whether a reduction for-loop
// still needs its implicit barrier).
func (g *generator) writesSharedArray(s Stmt) bool {
	switch st := s.(type) {
	case nil:
		return false
	case *Block:
		for _, x := range st.Stmts {
			if g.writesSharedArray(x) {
				return true
			}
		}
	case *Assign:
		if idx, ok := st.LHS.(*Index); ok && g.arrays[idx.Base] != nil {
			return true
		}
	case *IncDec:
		if idx, ok := st.LHS.(*Index); ok && g.arrays[idx.Base] != nil {
			return true
		}
	case *ForStmt:
		return g.writesSharedArray(st.Body)
	case *WhileStmt:
		return g.writesSharedArray(st.Body)
	case *IfStmt:
		return g.writesSharedArray(st.Then) || g.writesSharedArray(st.Else)
	case *OmpStmt:
		return g.writesSharedArray(st.Body)
	}
	return false
}
