package translator

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse builds the parse tree of one source file.
func Parse(src string) (*Program, error) {
	toks, err := NewLexer(src).Lex()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.program()
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token { // next token after cur
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(text string) bool {
	if p.cur().Text == text && p.cur().Kind != TokString {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("line %d: expected %q, found %q", p.cur().Line, text, p.cur().Text)
	}
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: "+format, append([]any{p.cur().Line}, args...)...)
}

// program parses file-scope declarations and function definitions.
func (p *Parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		if p.cur().Kind == TokPragma {
			return nil, p.errf("pragma at file scope is not supported")
		}
		typ, ok := p.typeSpec()
		if !ok {
			return nil, p.errf("expected declaration, found %q", p.cur().Text)
		}
		name := p.cur()
		if name.Kind != TokIdent {
			return nil, p.errf("expected identifier after type, found %q", name.Text)
		}
		p.advance()
		if p.cur().Text == "(" {
			fn, err := p.funcRest(typ, name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		decls, err := p.varRest(typ, name)
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, decls...)
	}
	return prog, nil
}

// typeSpec consumes a type specifier; returns ok=false if not at one.
func (p *Parser) typeSpec() (Type, bool) {
	// Ignore const/static/unsigned qualifiers.
	for p.cur().Text == "const" || p.cur().Text == "static" || p.cur().Text == "unsigned" {
		p.advance()
	}
	switch p.cur().Text {
	case "double", "float":
		p.advance()
		return TypeDouble, true
	case "int", "long", "char":
		p.advance()
		for p.cur().Text == "long" || p.cur().Text == "int" {
			p.advance()
		}
		return TypeInt, true
	case "void":
		p.advance()
		return TypeVoid, true
	}
	return TypeVoid, false
}

// varRest parses the remainder of a variable declaration whose type and
// first name were consumed: optional array bounds, initializer, and
// further comma-separated declarators.
func (p *Parser) varRest(typ Type, name Token) ([]*VarDecl, error) {
	var out []*VarDecl
	for {
		d := &VarDecl{Name: name.Text, Elem: typ, Line: name.Line}
		for p.accept("[") {
			dim, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, dim)
		}
		if p.accept("=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		out = append(out, d)
		if p.accept(",") {
			name = p.cur()
			if name.Kind != TokIdent {
				return nil, p.errf("expected identifier in declaration list")
			}
			p.advance()
			continue
		}
		break
	}
	return out, p.expect(";")
}

// funcRest parses a function definition after `type name`.
func (p *Parser) funcRest(ret Type, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.Text, Ret: ret, Line: name.Line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		for {
			if p.accept("void") {
				break
			}
			typ, ok := p.typeSpec()
			if !ok {
				return nil, p.errf("expected parameter type")
			}
			pn := p.cur()
			if pn.Kind != TokIdent {
				return nil, p.errf("expected parameter name")
			}
			p.advance()
			fn.Params = append(fn.Params, &VarDecl{Name: pn.Text, Elem: typ, Line: pn.Line})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// block parses `{ decls... stmts... }` (declarations may interleave).
func (p *Parser) block() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		if typ, ok := p.typeSpec(); ok {
			name := p.cur()
			if name.Kind != TokIdent {
				return nil, p.errf("expected identifier in declaration")
			}
			p.advance()
			decls, err := p.varRest(typ, name)
			if err != nil {
				return nil, err
			}
			b.Decls = append(b.Decls, decls...)
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// stmt parses one statement.
func (p *Parser) stmt() (Stmt, error) {
	tok := p.cur()
	switch {
	case tok.Kind == TokPragma:
		return p.ompStmt()
	case tok.Text == "{":
		return p.block()
	case tok.Text == ";":
		p.advance()
		return &Block{}, nil
	case tok.Text == "for":
		return p.forStmt()
	case tok.Text == "while":
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case tok.Text == "if":
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		ifs := &IfStmt{Cond: cond, Then: then}
		if p.accept("else") {
			els, err := p.stmtAsBlock()
			if err != nil {
				return nil, err
			}
			ifs.Else = els
		}
		return ifs, nil
	case tok.Text == "return":
		p.advance()
		if p.accept(";") {
			return &ReturnStmt{}, nil
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x}, p.expect(";")
	case tok.Text == "break":
		p.advance()
		return &BreakStmt{}, p.expect(";")
	case tok.Text == "continue":
		p.advance()
		return &ContinueStmt{}, p.expect(";")
	default:
		return p.simpleStmt(true)
	}
}

// stmtAsBlock parses a statement, wrapping single statements in a block.
func (p *Parser) stmtAsBlock() (*Block, error) {
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if b, ok := s.(*Block); ok {
		return b, nil
	}
	return &Block{Stmts: []Stmt{s}}, nil
}

// simpleStmt parses assignment / inc-dec / expression statements.
// wantSemi controls the trailing semicolon (for-headers pass false).
func (p *Parser) simpleStmt(wantSemi bool) (Stmt, error) {
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	var s Stmt
	switch op := p.cur().Text; op {
	case "=", "+=", "-=", "*=", "/=":
		p.advance()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		s = &Assign{LHS: lhs, Op: op, RHS: rhs}
	case "++", "--":
		p.advance()
		s = &IncDec{LHS: lhs, Op: op}
	default:
		s = &ExprStmt{X: lhs}
	}
	if wantSemi {
		return s, p.expect(";")
	}
	return s, nil
}

// forStmt parses a for loop, requiring the canonical counted form
// `for (i = lo; i < hi; i++)` (OpenMP 1.0's canonical loop shape).
func (p *Parser) forStmt() (Stmt, error) {
	line := p.cur().Line
	p.advance()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	// Optional `int` in the init (C99 style).
	p.accept("int")
	init, err := p.simpleStmt(false)
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	asg, ok := init.(*Assign)
	if !ok || asg.Op != "=" {
		return nil, fmt.Errorf("line %d: for-init must be `var = expr`", line)
	}
	iv, ok := asg.LHS.(*Ident)
	if !ok {
		return nil, fmt.Errorf("line %d: for-init must assign a scalar variable", line)
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	bin, ok := cond.(*Binary)
	if !ok || (bin.Op != "<" && bin.Op != "<=") {
		return nil, fmt.Errorf("line %d: for-condition must be `var < bound` or `var <= bound`", line)
	}
	if id, ok := bin.X.(*Ident); !ok || id.Name != iv.Name {
		return nil, fmt.Errorf("line %d: for-condition must test the loop variable", line)
	}
	incr, err := p.simpleStmt(false)
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if id, ok := incr.(*IncDec); !ok || id.Op != "++" {
		return nil, fmt.Errorf("line %d: for-increment must be `var++`", line)
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: iv.Name, Lo: asg.RHS, Hi: bin.Y, LessEq: bin.Op == "<=", Body: body, Line: line}, nil
}

// ompStmt parses a `#pragma omp` directive plus its body statement.
func (p *Parser) ompStmt() (Stmt, error) {
	tok := p.advance()
	dir, err := parseDirective(tok.Text, tok.Line)
	if err != nil {
		return nil, err
	}
	o := &OmpStmt{Dir: dir, Line: tok.Line}
	switch dir.Kind {
	case DirBarrier, DirTaskwait:
		return o, nil
	case DirFor, DirParallelFor:
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		f, ok := body.(*ForStmt)
		if !ok {
			return nil, fmt.Errorf("line %d: omp for must be followed by a canonical for loop", tok.Line)
		}
		o.Body = f
		return o, nil
	default:
		body, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		o.Body = body
		return o, nil
	}
}

// ClauseError is the typed error for an unknown or malformed directive
// clause. Line is the pragma's source line; Col is the 1-based column of
// the offending token within the directive text (the part after
// `#pragma `, whose own indentation the preprocessor strips).
type ClauseError struct {
	Line, Col int
	Clause    string // the clause being parsed ("depend", "map", ...)
	Msg       string
}

func (e *ClauseError) Error() string {
	return fmt.Sprintf("line %d, col %d: %s clause: %s", e.Line, e.Col, e.Clause, e.Msg)
}

// parseDirective parses the text after `#pragma`.
func parseDirective(text string, line int) (Directive, error) {
	var d Directive
	words, cols := tokenizePragma(text)
	if len(words) == 0 || words[0] != "omp" {
		return d, fmt.Errorf("line %d: only `#pragma omp` is supported (got %q)", line, text)
	}
	i := 1
	next := func() string {
		if i < len(words) {
			w := words[i]
			i++
			return w
		}
		return ""
	}
	// col reports the column of word idx (or just past the last word when
	// the directive ended early), for ClauseError positions.
	col := func(idx int) int {
		if idx < len(cols) {
			return cols[idx]
		}
		if len(cols) > 0 {
			return cols[len(cols)-1] + len(words[len(words)-1])
		}
		return 1
	}
	cerr := func(clause string, at int, format string, args ...any) error {
		return &ClauseError{Line: line, Col: col(at), Clause: clause, Msg: fmt.Sprintf(format, args...)}
	}
	switch w := next(); w {
	case "parallel":
		if i < len(words) && words[i] == "for" {
			i++
			d.Kind = DirParallelFor
		} else {
			d.Kind = DirParallel
		}
	case "for":
		d.Kind = DirFor
	case "critical":
		d.Kind = DirCritical
		if i < len(words) && words[i] == "(" {
			i++
			d.Name = next()
			if next() != ")" {
				return d, fmt.Errorf("line %d: malformed critical name", line)
			}
		}
	case "atomic":
		d.Kind = DirAtomic
		return d, nil
	case "single":
		d.Kind = DirSingle
	case "master":
		d.Kind = DirMaster
		return d, nil
	case "barrier":
		d.Kind = DirBarrier
		return d, nil
	case "task":
		d.Kind = DirTask
	case "taskwait":
		d.Kind = DirTaskwait
		return d, nil
	case "target":
		d.Kind = DirTarget
	default:
		return d, fmt.Errorf("line %d: unsupported omp directive %q", line, w)
	}

	// Clauses.
	for i < len(words) {
		switch w := next(); w {
		case "private", "firstprivate", "shared":
			vars, err := clauseVars(words, &i, line)
			if err != nil {
				return d, err
			}
			switch w {
			case "private":
				d.Private = append(d.Private, vars...)
			case "firstprivate":
				d.FirstPrivate = append(d.FirstPrivate, vars...)
			case "shared":
				d.Shared = append(d.Shared, vars...)
			}
		case "reduction":
			if next() != "(" {
				return d, fmt.Errorf("line %d: reduction needs (op:vars)", line)
			}
			op := next()
			if next() != ":" {
				return d, fmt.Errorf("line %d: reduction needs (op:vars)", line)
			}
			var vars []string
			for i < len(words) && words[i] != ")" {
				if words[i] != "," {
					vars = append(vars, words[i])
				}
				i++
			}
			if next() != ")" {
				return d, fmt.Errorf("line %d: unterminated reduction clause", line)
			}
			d.Reductions = append(d.Reductions, Reduction{Op: op, Vars: vars})
		case "nowait":
			d.NoWait = true
		case "schedule":
			// static is the paper's schedule (§4.3); dynamic is provided
			// as the runtime's future-work extension. guided/runtime are
			// rejected.
			if next() != "(" {
				return d, fmt.Errorf("line %d: malformed schedule clause", line)
			}
			switch kind := next(); kind {
			case "static":
			case "dynamic", "guided":
				d.Dynamic = true
				d.Guided = kind == "guided"
				if i < len(words) && words[i] == "," {
					i++
					n, err := strconv.Atoi(next())
					if err != nil || n < 1 {
						return d, fmt.Errorf("line %d: bad %s chunk size", line, kind)
					}
					d.ChunkSize = n
				}
			default:
				return d, fmt.Errorf("line %d: schedule(%s) is not supported (static per paper §4.3, dynamic/guided as extensions)", line, kind)
			}
			for i < len(words) && words[i] != ")" {
				i++
			}
			next()
		case "default":
			// default(shared|none): accepted and ignored (shared is the default).
			if next() != "(" {
				return d, fmt.Errorf("line %d: malformed default clause", line)
			}
			next()
			if next() != ")" {
				return d, fmt.Errorf("line %d: malformed default clause", line)
			}
		case "depend":
			kw := i - 1
			if d.Kind != DirTask && d.Kind != DirTarget {
				return d, cerr("depend", kw, "only task and target directives take depend")
			}
			if next() != "(" {
				return d, cerr("depend", i-1, "expected (kind: list)")
			}
			mod := i
			kind := next()
			switch kind {
			case "in", "out", "inout", "task":
			default:
				return d, cerr("depend", mod, "unknown dependence kind %q (want in, out, inout, or task)", kind)
			}
			if next() != ":" {
				return d, cerr("depend", i-1, "expected `:` after %q", kind)
			}
			dep := Depend{Kind: kind}
			for i < len(words) && words[i] != ")" {
				if words[i] == "," {
					i++
					continue
				}
				at := i
				name := next()
				if !isIdent(name) {
					return d, cerr("depend", at, "list item must start with an identifier (got %q)", name)
				}
				if kind == "task" {
					dep.Tasks = append(dep.Tasks, name)
					continue
				}
				var item Expr = &Ident{Name: name}
				for i < len(words) && words[i] == "[" {
					i++
					sat := i
					sub := next()
					var se Expr
					switch {
					case isIdent(sub):
						se = &Ident{Name: sub}
					case sub != "" && sub[0] >= '0' && sub[0] <= '9':
						se = &Number{Text: sub}
					default:
						return d, cerr("depend", sat, "array subscript must be an identifier or number (got %q)", sub)
					}
					if next() != "]" {
						return d, cerr("depend", i-1, "unterminated subscript on %s", name)
					}
					if ix, ok := item.(*Index); ok {
						ix.Subs = append(ix.Subs, se)
					} else {
						item = &Index{Base: name, Subs: []Expr{se}}
					}
				}
				dep.Items = append(dep.Items, item)
			}
			if next() != ")" {
				return d, cerr("depend", i-1, "unterminated depend clause")
			}
			if len(dep.Items)+len(dep.Tasks) == 0 {
				return d, cerr("depend", kw, "empty dependence list")
			}
			d.Depends = append(d.Depends, dep)
		case "map":
			kw := i - 1
			if d.Kind != DirTarget {
				return d, cerr("map", kw, "only the target directive takes map")
			}
			if next() != "(" {
				return d, cerr("map", i-1, "expected (dir: vars)")
			}
			mod := i
			dir := next()
			switch dir {
			case "to", "from", "tofrom":
			default:
				return d, cerr("map", mod, "unknown map direction %q (want to, from, or tofrom)", dir)
			}
			if next() != ":" {
				return d, cerr("map", i-1, "expected `:` after %q", dir)
			}
			mc := MapClause{Dir: dir}
			for i < len(words) && words[i] != ")" {
				if words[i] == "," {
					i++
					continue
				}
				at := i
				v := next()
				if !isIdent(v) {
					return d, cerr("map", at, "map items must be whole variables (got %q)", v)
				}
				mc.Vars = append(mc.Vars, v)
			}
			if next() != ")" {
				return d, cerr("map", i-1, "unterminated map clause")
			}
			if len(mc.Vars) == 0 {
				return d, cerr("map", kw, "empty map list")
			}
			d.Maps = append(d.Maps, mc)
		case "device":
			kw := i - 1
			if d.Kind != DirTarget {
				return d, cerr("device", kw, "only the target directive takes device")
			}
			if next() != "(" {
				return d, cerr("device", i-1, "expected (node)")
			}
			at := i
			n, err := strconv.Atoi(next())
			if err != nil || n < 0 {
				return d, cerr("device", at, "device must be a non-negative integer node id")
			}
			if next() != ")" {
				return d, cerr("device", i-1, "unterminated device clause")
			}
			d.Device = n
		case "name":
			kw := i - 1
			if d.Kind != DirTask && d.Kind != DirTarget {
				return d, cerr("name", kw, "only task and target directives take name")
			}
			if next() != "(" {
				return d, cerr("name", i-1, "expected (identifier)")
			}
			at := i
			nm := next()
			if !isIdent(nm) {
				return d, cerr("name", at, "task name must be an identifier (got %q)", nm)
			}
			if next() != ")" {
				return d, cerr("name", i-1, "unterminated name clause")
			}
			d.TaskName = nm
		case "priority":
			kw := i - 1
			if d.Kind != DirTask && d.Kind != DirTarget {
				return d, cerr("priority", kw, "only task and target directives take priority")
			}
			if next() != "(" {
				return d, cerr("priority", i-1, "expected (integer)")
			}
			at := i
			n, err := strconv.Atoi(next())
			if err != nil {
				return d, cerr("priority", at, "priority must be an integer")
			}
			if next() != ")" {
				return d, cerr("priority", i-1, "unterminated priority clause")
			}
			d.Priority = n
		default:
			return d, fmt.Errorf("line %d: unsupported clause %q", line, w)
		}
	}
	return d, nil
}

func clauseVars(words []string, i *int, line int) ([]string, error) {
	if *i >= len(words) || words[*i] != "(" {
		return nil, fmt.Errorf("line %d: clause needs a variable list", line)
	}
	*i++
	var vars []string
	for *i < len(words) && words[*i] != ")" {
		if words[*i] != "," {
			vars = append(vars, words[*i])
		}
		*i++
	}
	if *i >= len(words) {
		return nil, fmt.Errorf("line %d: unterminated clause", line)
	}
	*i++
	return vars, nil
}

// tokenizePragma splits a pragma line into words and punctuation, also
// returning each word's 1-based column within the text (for the typed
// clause errors).
func tokenizePragma(text string) ([]string, []int) {
	var out []string
	var cols []int
	cur := strings.Builder{}
	start := 0
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cols = append(cols, start+1)
			cur.Reset()
		}
	}
	for pos, r := range text {
		switch {
		case r == ' ' || r == '\t':
			flush()
		case r == '(' || r == ')' || r == ',' || r == ':' || r == '[' || r == ']':
			flush()
			out = append(out, string(r))
			cols = append(cols, pos+1)
		default:
			if cur.Len() == 0 {
				start = pos
			}
			cur.WriteRune(r)
		}
	}
	flush()
	return out, cols
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3, "^": 3, "&": 3,
	"==": 4, "!=": 4,
	"<": 5, "<=": 5, ">": 5, ">=": 5,
	"<<": 6, ">>": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
}

func (p *Parser) expr() (Expr, error) { return p.ternary() }

func (p *Parser) ternary() (Expr, error) {
	x, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.ternary()
		if err != nil {
			return nil, err
		}
		return &Cond{X: x, A: a, B: b}, nil
	}
	return x, nil
}

func (p *Parser) binary(minPrec int) (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Text
		prec, ok := binPrec[op]
		if !ok || prec < minPrec || p.cur().Kind == TokString {
			return x, nil
		}
		p.advance()
		y, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y}
	}
}

func (p *Parser) unary() (Expr, error) {
	switch p.cur().Text {
	case "-", "!", "+":
		op := p.advance().Text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			return x, nil
		}
		return &Unary{Op: op, X: x}, nil
	case "(":
		// Possible cast: (double) x — treat as conversion call.
		if p.peek().Kind == TokKeyword {
			save := p.pos
			p.advance()
			if typ, ok := p.typeSpec(); ok && p.cur().Text == ")" {
				p.advance()
				x, err := p.unary()
				if err != nil {
					return nil, err
				}
				return &Call{Name: "__cast_" + typ.GoType(), Args: []Expr{x}}, nil
			}
			p.pos = save
		}
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	}
	return p.postfix()
}

func (p *Parser) postfix() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokNumber:
		p.advance()
		return &Number{Text: tok.Text}, nil
	case TokString:
		p.advance()
		return &StringLit{Text: tok.Text}, nil
	case TokIdent:
		p.advance()
		name := tok.Text
		if p.accept("(") {
			call := &Call{Name: name}
			if !p.accept(")") {
				for {
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		if p.cur().Text == "[" {
			idx := &Index{Base: name}
			for p.accept("[") {
				sub, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				idx.Subs = append(idx.Subs, sub)
			}
			return idx, nil
		}
		return &Ident{Name: name}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", tok.Text)
	}
}
