// Package microbench implements the EPCC-style OpenMP synchronization
// microbenchmarks (Bull, EWOMP'99) the paper uses for Figs. 6 and 7:
// every team thread executes a directive in a tight loop, and the
// reported number is the elapsed time divided by the iteration count.
// Running the same measurement under the ParADE configuration and the
// KDSM baseline isolates the cost of the directive lowering itself.
package microbench

import (
	"fmt"

	"parade/internal/core"
	"parade/internal/sim"
)

// Result is one directive-overhead measurement.
type Result struct {
	Directive string
	Config    core.Config
	Reps      int
	PerOp     sim.Duration // average time per directive execution
	Report    core.Report
}

// measure runs body (one directive execution per call) reps times inside
// a parallel region and divides the region time by reps.
func measure(cfg core.Config, directive string, reps int,
	setup func(c *core.Cluster) func(tc *core.Thread)) (Result, error) {
	cfg = cfg.WithDefaults()
	var start, end sim.Time
	rep, err := core.Run(cfg, func(m *core.Thread) {
		body := setup(m.Cluster())
		// Warm the team and the directive's pages/sites once.
		m.Parallel(func(tc *core.Thread) { body(tc) })
		m.Parallel(func(tc *core.Thread) {
			tc.Master(func() { start = tc.Now() })
			for i := 0; i < reps; i++ {
				body(tc)
			}
			tc.Barrier()
			tc.Master(func() { end = tc.Now() })
		})
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Directive: directive,
		Config:    cfg,
		Reps:      reps,
		PerOp:     sim.Duration(end-start) / sim.Duration(reps),
		Report:    rep,
	}, nil
}

// Critical measures the critical directive guarding a small scalar
// accumulation (the paper's Fig. 6 workload: the statically analyzable
// critical block that ParADE lowers to a collective).
func Critical(cfg core.Config, reps int) (Result, error) {
	return measure(cfg, "critical", reps, func(c *core.Cluster) func(tc *core.Thread) {
		s := c.ScalarVar("mb-critical")
		return func(tc *core.Thread) {
			tc.Critical("mb-critical", []*core.Scalar{s}, func() { s.Add(tc, 1) })
		}
	})
}

// Single measures the single directive initializing a small scalar
// (Fig. 7's workload).
func Single(cfg core.Config, reps int) (Result, error) {
	return measure(cfg, "single", reps, func(c *core.Cluster) func(tc *core.Thread) {
		s := c.ScalarVar("mb-single")
		return func(tc *core.Thread) {
			tc.Single("mb-single", s, func() { s.Set(tc, 1) })
		}
	})
}

// Atomic measures the atomic directive.
func Atomic(cfg core.Config, reps int) (Result, error) {
	return measure(cfg, "atomic", reps, func(c *core.Cluster) func(tc *core.Thread) {
		s := c.ScalarVar("mb-atomic")
		return func(tc *core.Thread) { tc.Atomic(s, 1) }
	})
}

// Reduction measures the reduction clause.
func Reduction(cfg core.Config, reps int) (Result, error) {
	return measure(cfg, "reduction", reps, func(c *core.Cluster) func(tc *core.Thread) {
		return func(tc *core.Thread) { tc.Reduce("mb-red", core.OpSum, 1) }
	})
}

// Barrier measures the explicit barrier directive.
func Barrier(cfg core.Config, reps int) (Result, error) {
	return measure(cfg, "barrier", reps, func(c *core.Cluster) func(tc *core.Thread) {
		return func(tc *core.Thread) { tc.Barrier() }
	})
}

// ForOverhead measures an empty statically scheduled for directive
// (fork/iteration bookkeeping plus the implicit barrier).
func ForOverhead(cfg core.Config, reps int) (Result, error) {
	return measure(cfg, "for", reps, func(c *core.Cluster) func(tc *core.Thread) {
		return func(tc *core.Thread) { tc.For(0, 64, func(int) {}) }
	})
}

// Parallel measures the fork-join overhead of an empty parallel region
// (EPCC's "parallel" benchmark): region-start control messages, worker
// wake-up, and the implicit end-of-region barrier.
func Parallel(cfg core.Config, reps int) (Result, error) {
	cfg = cfg.WithDefaults()
	var start, end sim.Time
	rep, err := core.Run(cfg, func(m *core.Thread) {
		m.Parallel(func(tc *core.Thread) {}) // warm the team
		start = m.Now()
		for i := 0; i < reps; i++ {
			m.Parallel(func(tc *core.Thread) {})
		}
		end = m.Now()
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Directive: "parallel",
		Config:    cfg,
		Reps:      reps,
		PerOp:     sim.Duration(end-start) / sim.Duration(reps),
		Report:    rep,
	}, nil
}

// ByName resolves a directive measurement function.
func ByName(name string) (func(core.Config, int) (Result, error), error) {
	switch name {
	case "critical":
		return Critical, nil
	case "single":
		return Single, nil
	case "atomic":
		return Atomic, nil
	case "reduction":
		return Reduction, nil
	case "barrier":
		return Barrier, nil
	case "for":
		return ForOverhead, nil
	case "parallel":
		return Parallel, nil
	}
	return nil, fmt.Errorf("microbench: unknown directive %q", name)
}

// Directives lists the measurable directive names.
func Directives() []string {
	return []string{"critical", "single", "atomic", "reduction", "barrier", "for", "parallel"}
}
