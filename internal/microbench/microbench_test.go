package microbench

import (
	"testing"

	"parade/internal/core"
	"parade/internal/kdsm"
)

func parade(n int) core.Config {
	return core.Config{Nodes: n, ThreadsPerNode: 1, Mode: core.Hybrid, HomeMigration: true}.WithDefaults()
}

func TestAllDirectivesMeasurable(t *testing.T) {
	for _, name := range Directives() {
		bench, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := bench(parade(2), 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.PerOp <= 0 {
			t.Errorf("%s: non-positive per-op time %v", name, r.PerOp)
		}
		if r.Directive != name || r.Reps != 10 {
			t.Errorf("%s: result metadata %+v", name, r)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("flush"); err == nil {
		t.Fatal("unknown directive accepted")
	}
}

func TestCriticalParADEBeatsKDSM(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		p, err := Critical(parade(nodes), 50)
		if err != nil {
			t.Fatal(err)
		}
		k, err := Critical(kdsm.Config(nodes, 1, 2), 50)
		if err != nil {
			t.Fatal(err)
		}
		if p.PerOp >= k.PerOp {
			t.Fatalf("nodes=%d: ParADE critical %v not faster than KDSM %v", nodes, p.PerOp, k.PerOp)
		}
	}
}

func TestSingleParADEBeatsKDSM(t *testing.T) {
	p, err := Single(parade(4), 50)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Single(kdsm.Config(4, 1, 2), 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.PerOp >= k.PerOp {
		t.Fatalf("ParADE single %v not faster than KDSM %v", p.PerOp, k.PerOp)
	}
}

func TestGapWidensWithNodes(t *testing.T) {
	// The paper's headline microbenchmark observation: the ParADE/KDSM
	// gap grows as nodes are added.
	ratio := func(nodes int) float64 {
		p, err := Critical(parade(nodes), 50)
		if err != nil {
			t.Fatal(err)
		}
		k, err := Critical(kdsm.Config(nodes, 1, 2), 50)
		if err != nil {
			t.Fatal(err)
		}
		return float64(k.PerOp) / float64(p.PerOp)
	}
	if r2, r8 := ratio(2), ratio(8); r8 <= r2 {
		t.Fatalf("KDSM/ParADE ratio at 8 nodes (%.1f) not larger than at 2 (%.1f)", r8, r2)
	}
}

func TestReductionHybridCheaperThanSDSM(t *testing.T) {
	p, err := Reduction(parade(4), 50)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Reduction(kdsm.Config(4, 1, 2), 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.PerOp >= k.PerOp {
		t.Fatalf("hybrid reduction %v not cheaper than SDSM %v", p.PerOp, k.PerOp)
	}
}

func TestBarrierCostGrowsWithNodes(t *testing.T) {
	b2, err := Barrier(parade(2), 20)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := Barrier(parade(8), 20)
	if err != nil {
		t.Fatal(err)
	}
	if b8.PerOp <= b2.PerOp {
		t.Fatalf("barrier at 8 nodes (%v) not slower than at 2 (%v)", b8.PerOp, b2.PerOp)
	}
}

func TestSingleNodeDirectivesAreCheap(t *testing.T) {
	r, err := Critical(parade(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	// One node: just the pthread mutex — no collectives, no locks.
	if r.Report.Counters.Messages != 0 {
		t.Fatalf("single-node critical sent %d network messages", r.Report.Counters.Messages)
	}
}

func TestParallelForkJoinOverhead(t *testing.T) {
	r1, err := Parallel(parade(1), 20)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Parallel(parade(8), 20)
	if err != nil {
		t.Fatal(err)
	}
	if r8.PerOp <= r1.PerOp {
		t.Fatalf("fork-join at 8 nodes (%v) not costlier than 1 node (%v)", r8.PerOp, r1.PerOp)
	}
}
