package microbench

import (
	"fmt"
	"testing"
)

// Host-time benchmarks over the directive microbenchmarks: ns/op here is
// simulator throughput (how fast the substrate replays a directive
// sweep), the quantity the PR-over-PR regression harness tracks.
// Virtual-time results are covered by the figure-level benchmarks in the
// repository root.

func BenchmarkDirectiveReplay(b *testing.B) {
	for _, name := range []string{"critical", "single", "barrier"} {
		bench, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := parade(4)
			for i := 0; i < b.N; i++ {
				if _, err := bench(cfg, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDirectiveReplayNodes(b *testing.B) {
	for _, nodes := range []int{2, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			cfg := parade(nodes)
			for i := 0; i < b.N; i++ {
				if _, err := Critical(cfg, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
