package mpi

import (
	"testing"

	"parade/internal/netsim"
	"parade/internal/sim"
	"parade/internal/stats"
)

// shrinkHarness builds a world of n ranks, shrinks out the given ranks,
// and runs body once per surviving rank.
func shrinkHarness(t *testing.T, n int, gone []int, body func(p *sim.Proc, ep *Endpoint)) *World {
	t.Helper()
	s := sim.New(1)
	cpus := make([]*sim.CPU, n)
	for i := range cpus {
		cpus[i] = sim.NewCPU(s, 2, 0)
	}
	c := &stats.Counters{}
	net := netsim.New(s, n, netsim.VIA(), cpus, c)
	w := NewWorld(s, net, c)
	w.Serve()
	for _, r := range gone {
		w.Shrink(r)
	}
	for r := 0; r < n; r++ {
		if w.Removed(r) {
			continue
		}
		ep := w.Rank(r)
		s.Spawn("rank", func(p *sim.Proc) { body(p, ep) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestShrinkCollectives: after shrinking one rank out of four, every
// collective still produces correct results over the three survivors
// (a non-power-of-two membership, so Allreduce takes the fallback path
// and the logical remapping is exercised everywhere).
func TestShrinkCollectives(t *testing.T) {
	const n = 4
	sum := func(a, b any) any { return a.(int) + b.(int) }
	bcast := make([]any, n)
	allred := make([]any, n)
	var gathered []any
	allg := make([][]any, n)
	shrinkHarness(t, n, []int{2}, func(p *sim.Proc, ep *Endpoint) {
		r := ep.RankID()
		bcast[r] = ep.Bcast(p, 0, "hello", 8)
		allred[r] = ep.Allreduce(p, 1<<r, 8, sum)
		ep.Barrier(p)
		if g := ep.Gather(p, 0, r*10, 8); g != nil {
			gathered = g
		}
		allg[r] = ep.Allgather(p, r+100, 8)
	})
	want := 1 + 2 + 8 // ranks 0, 1, 3
	for _, r := range []int{0, 1, 3} {
		if bcast[r] != "hello" {
			t.Fatalf("rank %d bcast got %v", r, bcast[r])
		}
		if allred[r] != want {
			t.Fatalf("rank %d allreduce got %v, want %d", r, allred[r], want)
		}
		if allg[r][2] != nil {
			t.Fatalf("rank %d allgather has a block from the removed rank: %v", r, allg[r][2])
		}
		for _, src := range []int{0, 1, 3} {
			if allg[r][src] != src+100 {
				t.Fatalf("rank %d allgather[%d] = %v", r, src, allg[r][src])
			}
		}
	}
	if gathered[0] != 0 || gathered[1] != 10 || gathered[3] != 30 || gathered[2] != nil {
		t.Fatalf("gather got %v", gathered)
	}
}

// TestShrinkPowerOfTwoAllreduce: shrinking 4 -> 2 keeps a power-of-two
// membership, so recursive doubling runs over remapped partners.
func TestShrinkPowerOfTwoAllreduce(t *testing.T) {
	sum := func(a, b any) any { return a.(int) + b.(int) }
	got := make([]any, 4)
	shrinkHarness(t, 4, []int{1, 2}, func(p *sim.Proc, ep *Endpoint) {
		got[ep.RankID()] = ep.Allreduce(p, ep.RankID()+1, 8, sum)
	})
	for _, r := range []int{0, 3} {
		if got[r] != 5 { // 1 + 4
			t.Fatalf("rank %d allreduce got %v, want 5", r, got[r])
		}
	}
}

// TestShrinkRestoreIdentity: restoring every shrunk rank returns the
// communicator to the identity mapping (AliveSize == Size, nobody
// removed), so a restarted node resumes full-membership collectives.
func TestShrinkRestoreIdentity(t *testing.T) {
	s := sim.New(1)
	cpus := []*sim.CPU{sim.NewCPU(s, 2, 0), sim.NewCPU(s, 2, 0), sim.NewCPU(s, 2, 0)}
	c := &stats.Counters{}
	net := netsim.New(s, 3, netsim.VIA(), cpus, c)
	w := NewWorld(s, net, c)
	w.Shrink(1)
	if w.AliveSize() != 2 || !w.Removed(1) {
		t.Fatalf("AliveSize=%d Removed(1)=%v after shrink", w.AliveSize(), w.Removed(1))
	}
	if got := w.phys(1); got != 2 {
		t.Fatalf("logical 1 maps to %d, want 2", got)
	}
	w.Restore(1)
	if w.AliveSize() != 3 || w.Removed(1) {
		t.Fatalf("AliveSize=%d Removed(1)=%v after restore", w.AliveSize(), w.Removed(1))
	}
	if w.alive != nil {
		t.Fatal("identity fast path not restored after Restore")
	}
}
