package mpi

import (
	"testing"
	"testing/quick"

	"parade/internal/netsim"
	"parade/internal/sim"
	"parade/internal/stats"
)

// harness builds a world of n ranks with daemon comm pumps and runs body
// once per rank on its own proc, then drives the simulation to completion.
func harness(t *testing.T, n int, seed int64, body func(p *sim.Proc, ep *Endpoint)) (*stats.Counters, sim.Time) {
	t.Helper()
	s := sim.New(seed)
	cpus := make([]*sim.CPU, n)
	for i := range cpus {
		cpus[i] = sim.NewCPU(s, 2, 0)
	}
	c := &stats.Counters{}
	net := netsim.New(s, n, netsim.VIA(), cpus, c)
	w := NewWorld(s, net, c)
	w.Serve()
	for r := 0; r < n; r++ {
		ep := w.Rank(r)
		s.Spawn("rank", func(p *sim.Proc) { body(p, ep) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return c, s.Now()
}

func TestSendRecv(t *testing.T) {
	var got any
	harness(t, 2, 1, func(p *sim.Proc, ep *Endpoint) {
		switch ep.RankID() {
		case 0:
			ep.Send(p, 1, 7, "payload", 16)
		case 1:
			m := ep.Recv(p, 0, 7)
			got = m.Payload
		}
	})
	if got != "payload" {
		t.Fatalf("got %v", got)
	}
}

func TestRecvMatchesByTag(t *testing.T) {
	var order []int
	harness(t, 2, 1, func(p *sim.Proc, ep *Endpoint) {
		switch ep.RankID() {
		case 0:
			ep.Send(p, 1, 10, 10, 8)
			ep.Send(p, 1, 20, 20, 8)
		case 1:
			// Receive in reverse tag order: matching must be by tag,
			// not arrival order.
			m := ep.Recv(p, 0, 20)
			order = append(order, m.Payload.(int))
			m = ep.Recv(p, 0, 10)
			order = append(order, m.Payload.(int))
		}
	})
	if len(order) != 2 || order[0] != 20 || order[1] != 10 {
		t.Fatalf("order %v", order)
	}
}

func TestRecvAnySource(t *testing.T) {
	seen := map[int]bool{}
	harness(t, 4, 1, func(p *sim.Proc, ep *Endpoint) {
		if ep.RankID() == 0 {
			for i := 0; i < 3; i++ {
				m := ep.Recv(p, AnySource, 5)
				seen[m.From] = true
			}
		} else {
			ep.Send(p, 0, 5, nil, 4)
		}
	})
	if len(seen) != 3 {
		t.Fatalf("saw senders %v", seen)
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	var got []int
	harness(t, 2, 1, func(p *sim.Proc, ep *Endpoint) {
		switch ep.RankID() {
		case 0:
			for i := 1; i <= 3; i++ {
				ep.Send(p, 1, 9, i, 4)
			}
		case 1:
			p.Sleep(10 * sim.Millisecond) // let all three land unexpected
			for i := 0; i < 3; i++ {
				got = append(got, ep.Recv(p, 0, 9).Payload.(int))
			}
		}
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("unexpected queue order %v", got)
	}
}

func sumInts(a, b any) any { return a.(int) + b.(int) }

func TestAllreducePowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		results := make([]int, n)
		harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			r := ep.RankID()
			v := ep.Allreduce(p, r+1, 8, sumInts)
			results[r] = v.(int)
		})
		want := n * (n + 1) / 2
		for r, v := range results {
			if v != want {
				t.Fatalf("n=%d rank %d got %d, want %d", n, r, v, want)
			}
		}
	}
}

func TestAllreduceNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7} {
		results := make([]int, n)
		harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			r := ep.RankID()
			results[r] = ep.Allreduce(p, r+1, 8, sumInts).(int)
		})
		want := n * (n + 1) / 2
		for r, v := range results {
			if v != want {
				t.Fatalf("n=%d rank %d got %d, want %d", n, r, v, want)
			}
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for root := 0; root < n; root++ {
			results := make([]int, n)
			harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
				var val any
				if ep.RankID() == root {
					val = 42
				}
				results[ep.RankID()] = ep.Bcast(p, root, val, 8).(int)
			})
			for r, v := range results {
				if v != 42 {
					t.Fatalf("n=%d root=%d rank=%d got %d", n, root, r, v)
				}
			}
		}
	}
}

func TestBcastMessageCountIsNMinusOne(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		c, _ := harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			ep.Bcast(p, 0, 1, 8)
		})
		if c.Sends != int64(n-1) {
			t.Fatalf("n=%d: %d sends, want %d", n, c.Sends, n-1)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		var minExit, maxEnter sim.Time
		minExit = 1 << 60
		harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			// Stagger arrivals; nobody may leave before the last arrival.
			p.Sleep(sim.Duration(ep.RankID()) * sim.Millisecond)
			if p.Now() > maxEnter {
				maxEnter = p.Now()
			}
			ep.Barrier(p)
			if p.Now() < minExit {
				minExit = p.Now()
			}
		})
		if minExit < maxEnter {
			t.Fatalf("n=%d: rank left barrier at %v before last arrival %v", n, minExit, maxEnter)
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		var atRoot any
		harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			v := ep.Reduce(p, 0, 1<<ep.RankID(), 8, sumInts)
			if ep.RankID() == 0 {
				atRoot = v
			} else if v != nil {
				t.Errorf("non-root rank %d got %v", ep.RankID(), v)
			}
		})
		want := (1 << n) - 1
		if atRoot.(int) != want {
			t.Fatalf("n=%d reduce got %v, want %d", n, atRoot, want)
		}
	}
}

func TestGather(t *testing.T) {
	n := 5
	var got []any
	harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
		out := ep.Gather(p, 2, ep.RankID()*10, 8)
		if ep.RankID() == 2 {
			got = out
		}
	})
	for r, v := range got {
		if v.(int) != r*10 {
			t.Fatalf("gather[%d] = %v", r, v)
		}
	}
}

func TestBackToBackCollectivesDoNotCrossTalk(t *testing.T) {
	n := 4
	results := make([][]int, n)
	harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
		r := ep.RankID()
		for i := 0; i < 5; i++ {
			v := ep.Allreduce(p, r+i, 8, sumInts).(int)
			b := ep.Bcast(p, i%n, v, 8).(int)
			results[r] = append(results[r], v, b)
		}
	})
	for r := 1; r < n; r++ {
		if len(results[r]) != len(results[0]) {
			t.Fatalf("rank %d result length differs", r)
		}
		for i := range results[r] {
			if results[r][i] != results[0][i] {
				t.Fatalf("rank %d diverges at %d: %v vs %v", r, i, results[r], results[0])
			}
		}
	}
}

func TestAllreduceLatencyGrowsLogarithmically(t *testing.T) {
	at := map[int]sim.Time{}
	for _, n := range []int{2, 4, 8} {
		_, end := harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			ep.Allreduce(p, 1, 8, sumInts)
		})
		at[n] = end
	}
	// Recursive doubling: 8 ranks take ~3 rounds vs 1 round for 2 ranks;
	// growth should be clearly sublinear in n.
	if at[8] >= 4*at[2] {
		t.Fatalf("allreduce latency n=2:%v n=8:%v — not logarithmic", at[2], at[8])
	}
	if at[8] <= at[2] {
		t.Fatalf("allreduce latency should still grow with n: %v", at)
	}
}

// Property: allreduce of random contributions equals the serial sum on
// every rank, for every cluster size 1..8.
func TestAllreduceSumProperty(t *testing.T) {
	prop := func(vals []int16, nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		if len(vals) < n {
			return true
		}
		want := 0
		for i := 0; i < n; i++ {
			want += int(vals[i])
		}
		results := make([]int, n)
		harness(t, n, 99, func(p *sim.Proc, ep *Endpoint) {
			results[ep.RankID()] = ep.Allreduce(p, int(vals[ep.RankID()]), 8, sumInts).(int)
		})
		for _, v := range results {
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		results := make([][]any, n)
		harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			results[ep.RankID()] = ep.Allgather(p, ep.RankID()*100, 8)
		})
		for r := 0; r < n; r++ {
			for src := 0; src < n; src++ {
				if results[r][src].(int) != src*100 {
					t.Fatalf("n=%d rank %d slot %d = %v", n, r, src, results[r][src])
				}
			}
		}
	}
}

func TestScatter(t *testing.T) {
	n := 5
	got := make([]any, n)
	harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
		var vals []any
		if ep.RankID() == 2 {
			vals = []any{10, 11, 12, 13, 14}
		}
		got[ep.RankID()] = ep.Scatter(p, 2, vals, 8)
	})
	for r := 0; r < n; r++ {
		if got[r].(int) != 10+r {
			t.Fatalf("rank %d got %v", r, got[r])
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		results := make([][]any, n)
		harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
			vals := make([]any, n)
			for j := 0; j < n; j++ {
				vals[j] = ep.RankID()*1000 + j
			}
			results[ep.RankID()] = ep.Alltoall(p, vals, 8)
		})
		for r := 0; r < n; r++ {
			for src := 0; src < n; src++ {
				want := src*1000 + r
				if results[r][src].(int) != want {
					t.Fatalf("n=%d rank %d from %d = %v, want %d", n, r, src, results[r][src], want)
				}
			}
		}
	}
}

func TestAllgatherMessageCount(t *testing.T) {
	// Ring: every rank sends n-1 blocks => n*(n-1) messages total.
	n := 4
	c, _ := harness(t, n, 1, func(p *sim.Proc, ep *Endpoint) {
		ep.Allgather(p, 1, 64)
	})
	if want := int64(n * (n - 1)); c.Sends != want {
		t.Fatalf("allgather sends = %d, want %d", c.Sends, want)
	}
}
