package mpi

import (
	"testing"

	"parade/internal/netsim"
	"parade/internal/sim"
	"parade/internal/stats"
)

// chaosHarness is the test harness with a fault plane attached to the
// network: the MPI library must be oblivious to drops, duplicates, and
// reordering underneath it.
func chaosHarness(t *testing.T, n int, prof netsim.Profile, body func(p *sim.Proc, ep *Endpoint)) *stats.Counters {
	t.Helper()
	s := sim.New(1)
	cpus := make([]*sim.CPU, n)
	for i := range cpus {
		cpus[i] = sim.NewCPU(s, 2, 0)
	}
	c := &stats.Counters{}
	net := netsim.New(s, n, netsim.VIA(), cpus, c)
	net.EnableFaults(prof)
	w := NewWorld(s, net, c)
	w.Serve()
	for r := 0; r < n; r++ {
		ep := w.Rank(r)
		s.Spawn("rank", func(p *sim.Proc) { body(p, ep) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosCollectivesSurviveFaults: allreduce, bcast, and barrier
// produce correct results under every built-in fault profile, and the
// lossy profiles actually exercise the retransmit path.
func TestChaosCollectivesSurviveFaults(t *testing.T) {
	const n, rounds = 4, 30
	for _, prof := range netsim.Profiles(11) {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			sums := make([]float64, n)
			roots := make([][]int, n)
			c := chaosHarness(t, n, prof, func(p *sim.Proc, ep *Endpoint) {
				me := ep.RankID()
				for r := 0; r < rounds; r++ {
					v := ep.Allreduce(p, float64(me+1), 8, func(a, b any) any {
						return a.(float64) + b.(float64)
					})
					sums[me] += v.(float64)
					got := ep.Bcast(p, r%n, r*10, 8)
					roots[me] = append(roots[me], got.(int))
					ep.Barrier(p)
				}
			})
			wantSum := float64(rounds) * float64(n*(n+1)/2)
			for me := 0; me < n; me++ {
				if sums[me] != wantSum {
					t.Fatalf("rank %d allreduce sum %v, want %v", me, sums[me], wantSum)
				}
				for r, got := range roots[me] {
					if got != r*10 {
						t.Fatalf("rank %d round %d bcast got %d, want %d", me, r, got, r*10)
					}
				}
			}
			if c.Retransmits == 0 {
				t.Fatalf("profile %q: no retransmits over %d collective rounds", prof.Name, rounds)
			}
		})
	}
}

// TestChaosPointToPointOrdering: tag-matched point-to-point traffic
// keeps per-link FIFO semantics under the chaos profile.
func TestChaosPointToPointOrdering(t *testing.T) {
	const n, msgs = 3, 60
	got := make([][]int, n)
	chaosHarness(t, n, netsim.ProfileChaos(5), func(p *sim.Proc, ep *Endpoint) {
		me := ep.RankID()
		next := (me + 1) % n
		prev := (me + n - 1) % n
		for i := 0; i < msgs; i++ {
			ep.Send(p, next, i, me*1000+i, 64)
			m := ep.Recv(p, prev, i)
			got[me] = append(got[me], m.Payload.(int))
		}
	})
	for me := 0; me < n; me++ {
		prev := (me + n - 1) % n
		for i, v := range got[me] {
			if v != prev*1000+i {
				t.Fatalf("rank %d message %d: got %d, want %d", me, i, v, prev*1000+i)
			}
		}
	}
}
