package mpi

import "parade/internal/sim"

// Additional collectives beyond the paper's Bcast/Allreduce set. The
// harness and downstream users get the standard algorithms with their
// canonical message counts: ring allgather, linear scatter from the
// root, and pairwise-exchange alltoall.

// Allgather distributes every rank's contribution to all ranks, returned
// as a slice indexed by rank. bytes is the per-contribution wire size.
// Ring algorithm: n-1 rounds, each rank forwarding the newest block to
// its successor — bandwidth-optimal for large blocks.
func (e *Endpoint) Allgather(p *sim.Proc, val any, bytes int) []any {
	w := e.world
	n := w.AliveSize()
	out := make([]any, w.Size()) // physical indexing; removed ranks nil
	out[e.rank] = val
	if n == 1 {
		return out
	}
	tag := e.nextCollTag()
	rec, t0 := w.collStart(p)
	idx := w.logicalOf(e.rank)
	succ := w.phys((idx + 1) % n)
	predIdx := (idx - 1 + n) % n
	pred := w.phys(predIdx)
	// In round r we send the block that originated at position idx - r
	// and receive the block that originated at position predIdx - r.
	for r := 0; r < n-1; r++ {
		sendOrigin := w.phys((idx - r + n) % n)
		recvOrigin := w.phys((predIdx - r + n) % n)
		e.send(p, succ, tag+r, out[sendOrigin], bytes)
		m := e.Recv(p, pred, tag+r)
		out[recvOrigin] = m.Payload
	}
	rec.Collective(t0, p.Now(), e.rank, "allgather", bytes)
	return out
}

// Scatter distributes vals[i] from root to rank i and returns this
// rank's element. vals is only read on the root. Linear sends: the
// paper-era MPICH default for small scatters.
func (e *Endpoint) Scatter(p *sim.Proc, root int, vals []any, bytes int) any {
	w := e.world
	n := w.AliveSize()
	tag := e.nextCollTag()
	rec, t0 := w.collStart(p)
	if e.rank == root {
		for i := 0; i < n; i++ {
			r := w.phys(i)
			if r == root {
				continue
			}
			e.send(p, r, tag, vals[r], bytes)
		}
		rec.Collective(t0, p.Now(), e.rank, "scatter", bytes)
		return vals[root]
	}
	v := e.Recv(p, root, tag).Payload
	rec.Collective(t0, p.Now(), e.rank, "scatter", bytes)
	return v
}

// Alltoall performs a complete exchange: rank i sends vals[j] to rank j
// and returns the slice of blocks received (indexed by source rank).
// Pairwise exchange: n-1 rounds with partner rank^r for power-of-two
// sizes, shifted partners otherwise.
func (e *Endpoint) Alltoall(p *sim.Proc, vals []any, bytes int) []any {
	w := e.world
	n := w.AliveSize()
	out := make([]any, w.Size()) // physical indexing; removed ranks nil
	out[e.rank] = vals[e.rank]
	if n == 1 {
		return out
	}
	tag := e.nextCollTag()
	rec, t0 := w.collStart(p)
	idx := w.logicalOf(e.rank)
	pow2 := n&(n-1) == 0
	for r := 1; r < n; r++ {
		var pIdx int
		if pow2 {
			pIdx = idx ^ r
		} else {
			pIdx = (idx + r) % n
		}
		partner := w.phys(pIdx)
		e.send(p, partner, tag+r, vals[partner], bytes)
		var fIdx int
		if pow2 {
			fIdx = pIdx
		} else {
			fIdx = (idx - r + n) % n
		}
		from := w.phys(fIdx)
		m := e.Recv(p, from, tag+r)
		out[from] = m.Payload
	}
	rec.Collective(t0, p.Now(), e.rank, "alltoall", bytes)
	return out
}
