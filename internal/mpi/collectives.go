package mpi

import "parade/internal/sim"

// Additional collectives beyond the paper's Bcast/Allreduce set. The
// harness and downstream users get the standard algorithms with their
// canonical message counts: ring allgather, linear scatter from the
// root, and pairwise-exchange alltoall.

// Allgather distributes every rank's contribution to all ranks, returned
// as a slice indexed by rank. bytes is the per-contribution wire size.
// Ring algorithm: n-1 rounds, each rank forwarding the newest block to
// its successor — bandwidth-optimal for large blocks.
func (e *Endpoint) Allgather(p *sim.Proc, val any, bytes int) []any {
	n := e.world.Size()
	out := make([]any, n)
	out[e.rank] = val
	if n == 1 {
		return out
	}
	tag := e.nextCollTag()
	rec, t0 := e.world.collStart()
	succ := (e.rank + 1) % n
	pred := (e.rank - 1 + n) % n
	// In round r we send the block that originated at rank - r and
	// receive the block that originated at pred - r.
	for r := 0; r < n-1; r++ {
		sendOrigin := (e.rank - r + n) % n
		recvOrigin := (pred - r + n) % n
		e.send(p, succ, tag+r, out[sendOrigin], bytes)
		m := e.Recv(p, pred, tag+r)
		out[recvOrigin] = m.Payload
	}
	rec.Collective(t0, e.world.s.Now(), e.rank, "allgather", bytes)
	return out
}

// Scatter distributes vals[i] from root to rank i and returns this
// rank's element. vals is only read on the root. Linear sends: the
// paper-era MPICH default for small scatters.
func (e *Endpoint) Scatter(p *sim.Proc, root int, vals []any, bytes int) any {
	n := e.world.Size()
	tag := e.nextCollTag()
	rec, t0 := e.world.collStart()
	if e.rank == root {
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			e.send(p, r, tag, vals[r], bytes)
		}
		rec.Collective(t0, e.world.s.Now(), e.rank, "scatter", bytes)
		return vals[root]
	}
	v := e.Recv(p, root, tag).Payload
	rec.Collective(t0, e.world.s.Now(), e.rank, "scatter", bytes)
	return v
}

// Alltoall performs a complete exchange: rank i sends vals[j] to rank j
// and returns the slice of blocks received (indexed by source rank).
// Pairwise exchange: n-1 rounds with partner rank^r for power-of-two
// sizes, shifted partners otherwise.
func (e *Endpoint) Alltoall(p *sim.Proc, vals []any, bytes int) []any {
	n := e.world.Size()
	out := make([]any, n)
	out[e.rank] = vals[e.rank]
	if n == 1 {
		return out
	}
	tag := e.nextCollTag()
	rec, t0 := e.world.collStart()
	pow2 := n&(n-1) == 0
	for r := 1; r < n; r++ {
		var partner int
		if pow2 {
			partner = e.rank ^ r
		} else {
			partner = (e.rank + r) % n
		}
		e.send(p, partner, tag+r, vals[partner], bytes)
		var from int
		if pow2 {
			from = partner
		} else {
			from = (e.rank - r + n) % n
		}
		m := e.Recv(p, from, tag+r)
		out[from] = m.Payload
	}
	rec.Collective(t0, e.world.s.Now(), e.rank, "alltoall", bytes)
	return out
}
