// Package mpi implements the thread-safe MPI subset the ParADE runtime
// is built on (paper §5.3): matched point-to-point send/receive plus the
// collective operations MPI_Bcast and MPI_Allreduce (and the small set of
// helpers — Barrier, Reduce, Gather — the harness needs). The library is
// layered over the simulated interconnect, so every operation has the
// paper's message counts: binomial trees for broadcast/reduce, recursive
// doubling for allreduce, dissemination for barrier.
//
// "Thread-safe" here means multiple simulated threads of one node may
// have operations in flight concurrently; matching is by (source, tag)
// with unexpected-message queueing, as in a real MPI progress engine.
package mpi

import (
	"fmt"
	"math/bits"

	"parade/internal/netsim"
	"parade/internal/obs"
	"parade/internal/sim"
	"parade/internal/stats"
)

// AnySource matches a receive against messages from any rank.
const AnySource = -1

// Tag space layout: user point-to-point tags must stay below collTagBase;
// collectives use tags derived from a per-endpoint sequence number, which
// stays consistent across ranks because the runtime issues collectives in
// the same order on every node (SPMD execution).
const (
	collTagBase = 1 << 20
	maxUserTag  = collTagBase - 1
)

// World is an MPI communicator spanning one endpoint per cluster node.
type World struct {
	s        *sim.Simulator
	net      *netsim.Network
	eps      []*Endpoint
	counters *stats.Sharded
	rec      *obs.Recorder

	// Crash-stop membership: removed marks shrunk ranks, alive lists the
	// participating physical ranks ascending. alive == nil is the
	// identity mapping (nobody removed) — the fast path that keeps the
	// unshrunken communicator's behavior bit-identical.
	removed []bool
	alive   []int
}

// SetRecorder attaches an observability recorder: each rank's pass
// through a collective becomes a latency span (nil detaches).
func (w *World) SetRecorder(r *obs.Recorder) { w.rec = r }

// collStart marks the start of a collective span for one rank; it
// returns the recorder (nil when disabled) and the start time on the
// calling process's own clock (its lane's under event lanes).
func (w *World) collStart(p *sim.Proc) (*obs.Recorder, sim.Time) {
	if w.rec == nil {
		return nil, 0
	}
	return w.rec, p.Now()
}

// cnt returns the counter set rank's context must target (the shared
// base set in legacy and relaxed modes, rank's shard under lanes).
func (w *World) cnt(rank int) *stats.Counters { return w.counters.At(rank) }

// FoldCounters merges per-rank counter shards into the aggregate view.
// The runtime calls it once after a lane-mode run.
func (w *World) FoldCounters() { w.counters.Fold() }

// NewWorld creates a communicator over net with one endpoint per node.
func NewWorld(s *sim.Simulator, net *netsim.Network, c *stats.Counters) *World {
	w := &World{s: s, net: net, counters: stats.NewSharded(c)}
	if s.Lanes() > 0 && !s.Relaxed() {
		w.counters.EnableShards(net.Nodes())
	}
	w.eps = make([]*Endpoint, net.Nodes())
	for i := range w.eps {
		w.eps[i] = &Endpoint{world: w, rank: i}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.eps) }

// Rank returns the endpoint for the given rank.
func (w *World) Rank(r int) *Endpoint { return w.eps[r] }

// Shrink removes rank from the communicator after a crash-stop failure:
// subsequent collectives run over the surviving ranks only, with
// logical positions remapped so the tree, recursive-doubling, and
// dissemination algorithms stay correct over the smaller membership.
// The removed endpoint must never enter another collective (doing so
// panics), and every survivor must observe the shrink at the same
// quiescent point — the recovery protocol's job.
func (w *World) Shrink(rank int) {
	if w.removed == nil {
		w.removed = make([]bool, len(w.eps))
	}
	if w.removed[rank] {
		panic(fmt.Sprintf("mpi: rank %d shrunk twice", rank))
	}
	w.removed[rank] = true
	w.rebuildAlive()
	if len(w.alive) == 0 {
		panic("mpi: communicator shrunk to zero ranks")
	}
}

// Restore returns a previously shrunk rank to the communicator (a
// restarted node rejoining at a quiescent point). Its endpoint's
// collective sequence number is the caller's responsibility to realign
// — a restarted ParADE node resumes from a checkpoint whose sequence
// state is part of the snapshot.
func (w *World) Restore(rank int) {
	if w.removed == nil || !w.removed[rank] {
		panic(fmt.Sprintf("mpi: restore of live rank %d", rank))
	}
	w.removed[rank] = false
	w.rebuildAlive()
}

func (w *World) rebuildAlive() {
	w.alive = w.alive[:0]
	any := false
	for r := range w.eps {
		if w.removed[r] {
			any = true
			continue
		}
		w.alive = append(w.alive, r)
	}
	if !any {
		w.alive = nil // back to the identity fast path
	}
}

// Removed reports whether rank has been shrunk out of the communicator.
func (w *World) Removed(rank int) bool {
	return w.removed != nil && w.removed[rank]
}

// AliveSize returns the number of ranks currently participating in
// collectives.
func (w *World) AliveSize() int {
	if w.alive == nil {
		return len(w.eps)
	}
	return len(w.alive)
}

// phys maps a logical collective position to its physical rank.
func (w *World) phys(idx int) int {
	if w.alive == nil {
		return idx
	}
	return w.alive[idx]
}

// logicalOf maps a physical rank to its logical collective position,
// panicking for a removed rank (a dead endpoint in a collective is a
// protocol bug, not a recoverable condition).
func (w *World) logicalOf(rank int) int {
	if w.alive == nil {
		return rank
	}
	for i, r := range w.alive {
		if r == rank {
			return i
		}
	}
	panic(fmt.Sprintf("mpi: rank %d is not in the shrunken communicator", rank))
}

// Serve spawns a daemon communication pump for every rank that delivers
// MPI traffic from the network inbox. The ParADE runtime replaces this
// with its own communication thread (which also dispatches DSM protocol
// messages); Serve exists for using the MPI library stand-alone.
func (w *World) Serve() {
	for r := range w.eps {
		r := r
		w.s.SpawnDaemonOn(r, fmt.Sprintf("mpi-comm%d", r), func(p *sim.Proc) {
			for {
				m := w.net.Inbox(r).Pop(p)
				w.net.RecvCost(p, r)
				w.eps[r].Deliver(m)
			}
		})
	}
}

// recvReq is a posted receive awaiting a match.
type recvReq struct {
	from, tag int
	box       *sim.Queue[*netsim.Message]
}

// Endpoint is one rank's view of the communicator.
type Endpoint struct {
	world      *World
	rank       int
	posted     []*recvReq
	unexpected []*netsim.Message
	collSeq    int
}

// RankID returns this endpoint's rank.
func (e *Endpoint) RankID() int { return e.rank }

// Deliver hands an incoming MPI message to the matching engine. It is
// called by the node's communication thread and never blocks.
func (e *Endpoint) Deliver(m *netsim.Message) {
	if m.Kind != netsim.KindMPI {
		panic("mpi: Deliver of non-MPI message")
	}
	for i, req := range e.posted {
		if (req.from == AnySource || req.from == m.From) && req.tag == m.Tag {
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			req.box.Push(m)
			return
		}
	}
	e.unexpected = append(e.unexpected, m)
}

// Send transmits payload to rank `to` with the given tag. bytes is the
// modeled wire size of the payload. Eager protocol: Send returns as soon
// as the message is injected (after the sender-side CPU overhead).
func (e *Endpoint) Send(p *sim.Proc, to, tag int, payload any, bytes int) {
	if tag < 0 || tag > maxUserTag {
		panic(fmt.Sprintf("mpi: user tag %d out of range", tag))
	}
	e.send(p, to, tag, payload, bytes)
}

func (e *Endpoint) send(p *sim.Proc, to, tag int, payload any, bytes int) {
	e.world.cnt(e.rank).Sends++
	e.world.net.Send(p, &netsim.Message{
		From: e.rank, To: to, Kind: netsim.KindMPI,
		Tag: tag, Payload: payload, Bytes: bytes,
	})
}

// Recv blocks p until a message from `from` (or AnySource) with the given
// tag arrives, and returns it. Messages that arrived before the receive
// was posted are taken from the unexpected queue in arrival order.
func (e *Endpoint) Recv(p *sim.Proc, from, tag int) *netsim.Message {
	for i, m := range e.unexpected {
		if (from == AnySource || from == m.From) && tag == m.Tag {
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			return m
		}
	}
	req := &recvReq{from: from, tag: tag, box: sim.NewQueue[*netsim.Message](e.world.s)}
	e.posted = append(e.posted, req)
	return req.box.Pop(p)
}

// nextCollTag issues the base tag for this endpoint's next collective.
// All ranks call collectives in the same global order, so sequence
// numbers agree across endpoints. Each collective owns a stride of 64
// tags so multi-round algorithms can use one tag per round without
// colliding with the next collective.
func (e *Endpoint) nextCollTag() int {
	e.collSeq++
	return collTagBase + e.collSeq*64
}

// Bcast broadcasts payload/bytes from root along a binomial tree. On the
// root it returns payload; elsewhere it returns the received payload.
func (e *Endpoint) Bcast(p *sim.Proc, root int, payload any, bytes int) any {
	w := e.world
	n := w.AliveSize()
	tag := e.nextCollTag()
	if n == 1 {
		return payload
	}
	w.cnt(e.rank).Bcasts++
	rec, t0 := w.collStart(p)
	rel := (w.logicalOf(e.rank) - w.logicalOf(root) + n) % n
	// Walk up the tree to find our parent: the first set bit of rel
	// names the round in which we receive.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := w.phys((w.logicalOf(e.rank) - mask + n) % n)
			m := e.Recv(p, parent, tag)
			payload = m.Payload
			bytes = m.Bytes
			break
		}
		mask <<= 1
	}
	// Then fan out to our children at decreasing distances.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			child := w.phys((w.logicalOf(e.rank) + mask) % n)
			e.send(p, child, tag, payload, bytes)
		}
	}
	rec.Collective(t0, p.Now(), e.rank, "bcast", bytes)
	return payload
}

// CombineFunc merges two collective contributions. It must be
// commutative and associative so that every rank computes an identical
// result regardless of combine order.
type CombineFunc func(a, b any) any

// Allreduce combines every rank's contribution with combine and returns
// the global result on all ranks. Power-of-two rank counts use recursive
// doubling (log2 n rounds); other counts fall back to a binomial-tree
// reduce to rank 0 followed by a broadcast.
func (e *Endpoint) Allreduce(p *sim.Proc, val any, bytes int, combine CombineFunc) any {
	w := e.world
	n := w.AliveSize()
	if n == 1 {
		return val
	}
	w.cnt(e.rank).Allreduces++
	rec, t0 := w.collStart(p)
	if n&(n-1) == 0 {
		tag := e.nextCollTag()
		idx := w.logicalOf(e.rank)
		for dist := 1; dist < n; dist <<= 1 {
			partner := w.phys(idx ^ dist)
			e.send(p, partner, tag+bits.TrailingZeros(uint(dist)), val, bytes)
			m := e.Recv(p, partner, tag+bits.TrailingZeros(uint(dist)))
			val = combine(val, m.Payload)
		}
	} else {
		// A shrunken (non-power-of-two) membership falls back to
		// reduce+bcast rooted at the smallest surviving rank.
		root := w.phys(0)
		val = e.reduceToRoot(p, root, val, bytes, combine)
		val = e.Bcast(p, root, val, bytes)
	}
	rec.Collective(t0, p.Now(), e.rank, "allreduce", bytes)
	return val
}

// Reduce combines contributions onto root; non-root ranks return nil.
func (e *Endpoint) Reduce(p *sim.Proc, root int, val any, bytes int, combine CombineFunc) any {
	n := e.world.AliveSize()
	if n == 1 {
		return val
	}
	rec, t0 := e.world.collStart(p)
	v := e.reduceToRoot(p, root, val, bytes, combine)
	rec.Collective(t0, p.Now(), e.rank, "reduce", bytes)
	if e.rank == root {
		return v
	}
	return nil
}

// reduceToRoot runs a binomial-tree reduction rooted at root.
func (e *Endpoint) reduceToRoot(p *sim.Proc, root int, val any, bytes int, combine CombineFunc) any {
	w := e.world
	n := w.AliveSize()
	tag := e.nextCollTag()
	rootIdx := w.logicalOf(root)
	rel := (w.logicalOf(e.rank) - rootIdx + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := w.phys((rootIdx + rel - mask) % n)
			e.send(p, parent, tag, val, bytes)
			return val // leaf done; its value no longer matters
		}
		if rel+mask < n {
			m := e.Recv(p, w.phys((rootIdx+rel+mask)%n), tag)
			val = combine(val, m.Payload)
		}
	}
	return val
}

// Barrier blocks p until every rank has entered, using the dissemination
// algorithm: ceil(log2 n) rounds of one send and one receive per rank.
func (e *Endpoint) Barrier(p *sim.Proc) {
	w := e.world
	n := w.AliveSize()
	if n == 1 {
		return
	}
	w.cnt(e.rank).MPIBarrier++
	rec, t0 := w.collStart(p)
	tag := e.nextCollTag()
	idx := w.logicalOf(e.rank)
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist<<1 {
		to := w.phys((idx + dist) % n)
		from := w.phys((idx - dist + n) % n)
		e.send(p, to, tag+round, nil, 0)
		e.Recv(p, from, tag+round)
	}
	rec.Collective(t0, p.Now(), e.rank, "mpi_barrier", 0)
}

// Gather collects every rank's contribution at root, returned as a slice
// indexed by rank. Non-root ranks return nil.
func (e *Endpoint) Gather(p *sim.Proc, root int, val any, bytes int) []any {
	w := e.world
	n := w.AliveSize()
	tag := e.nextCollTag()
	rec, t0 := w.collStart(p)
	if e.rank != root {
		e.send(p, root, tag, val, bytes)
		rec.Collective(t0, p.Now(), e.rank, "gather", bytes)
		return nil
	}
	// Output stays indexed by physical rank; removed ranks read nil.
	out := make([]any, w.Size())
	out[root] = val
	for i := 0; i < n-1; i++ {
		m := e.Recv(p, AnySource, tag)
		out[m.From] = m.Payload
	}
	rec.Collective(t0, p.Now(), e.rank, "gather", bytes)
	return out
}
