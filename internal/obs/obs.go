// Package obs is the unified observability layer for the simulated
// cluster: structured trace events (with text, JSONL, and Chrome
// trace_event sinks) and a metrics registry with per-node counters,
// virtual-time latency histograms, and per-parallel-region phase
// attribution.
//
// # Zero overhead when disabled
//
// All recording methods are defined on *Recorder and begin with a nil
// receiver check, so the disabled path — the default — is a single
// predictable branch and zero allocations. Subsystems hold a plain
// *Recorder field (nil unless Config.Obs is set) and call methods on it
// unconditionally.
//
// # The single-threaded-kernel invariant
//
// The simulation kernel (internal/sim) runs exactly one goroutine at a
// time: the scheduler hands a baton through unbuffered channels, and a
// process only touches simulation state while it holds the baton. Every
// Recorder call is made from baton-holding context, so recording is
// plain field writes — no atomics, no locks, and one reusable scratch
// Event instead of a per-event allocation. This is the same invariant
// that lets the protocol engine share page tables across "nodes"; see
// the internal/sim package comment. Sinks are invoked synchronously in
// event order, which also makes trace output deterministic: two runs
// with the same Config.Seed produce byte-identical traces.
package obs

import "parade/internal/sim"

// Recorder is the write side of the observability layer. The zero value
// is not useful; create one with New. A nil *Recorder is valid and
// records nothing — that is the disabled path.
type Recorder struct {
	m     Metrics
	sinks []Sink

	// traceMessages enables per-message KindMsgSend events (off by
	// default: message volume dwarfs every other event class).
	traceMessages bool

	// ev is the pooled scratch record handed to sinks; legal because the
	// kernel never runs two recording contexts concurrently.
	ev Event
}

// New creates an enabled Recorder with per-node counter slots for
// `nodes` nodes (the slots grow on demand if a larger node id appears).
func New(nodes int) *Recorder {
	if nodes < 0 {
		nodes = 0
	}
	return &Recorder{m: Metrics{perNode: make([]NodeCounters, nodes)}}
}

// Enabled reports whether r records anything (i.e. is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Metrics returns the recorder's metrics registry (nil for a nil
// recorder).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return &r.m
}

// ShardForLanes switches the recorder to per-node metric shards for a
// lane-mode run (see Metrics). Trace sinks are incompatible with lanes:
// the scratch-event/synchronous-emit design leans on the global
// one-runnable-goroutine invariant, and deterministic traces are a
// legacy-mode artifact — lane runs keep the full metrics registry only.
func (r *Recorder) ShardForLanes(nodes int) {
	if r == nil {
		return
	}
	if len(r.sinks) > 0 {
		panic("obs: trace sinks are not supported with event lanes (use lanes=0 for tracing)")
	}
	r.m.shardForLanes(nodes)
}

// FoldLanes merges the per-node shards after a lane-mode run (no-op
// otherwise).
func (r *Recorder) FoldLanes() {
	if r != nil {
		r.m.FoldLanes()
	}
}

// RegionBeginOn marks node as entering parallel region seq: the node's
// subsequent activity is attributed to that region. Only meaningful in
// lane mode (legacy attribution follows the master's RegionBegin/End).
func (r *Recorder) RegionBeginOn(node, seq int) {
	if r != nil {
		r.m.regionOn(node, seq)
	}
}

// RegionEndOn reverts node to serial attribution.
func (r *Recorder) RegionEndOn(node int) {
	if r != nil {
		r.m.regionOff(node)
	}
}

// AddSink attaches a trace sink. No-op on a nil recorder.
func (r *Recorder) AddSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	if r.m.histSh != nil {
		panic("obs: trace sinks are not supported with event lanes (use lanes=0 for tracing)")
	}
	r.sinks = append(r.sinks, s)
}

// RemoveSink detaches a previously attached sink (without closing it).
func (r *Recorder) RemoveSink(s Sink) {
	if r == nil {
		return
	}
	for i, have := range r.sinks {
		if have == s {
			r.sinks = append(r.sinks[:i], r.sinks[i+1:]...)
			return
		}
	}
}

// TraceMessages toggles per-message send events.
func (r *Recorder) TraceMessages(on bool) {
	if r != nil {
		r.traceMessages = on
	}
}

// Close closes every attached sink (flushing, e.g., the Chrome JSON
// tail) and returns the first error.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	var first error
	for _, s := range r.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *Recorder) emit() {
	for _, s := range r.sinks {
		s.Emit(&r.ev)
	}
}

// --- hlrc: faults and page movement ---

// ReadFault counts a read access fault on node.
func (r *Recorder) ReadFault(node int) {
	if r == nil {
		return
	}
	r.m.node(node).ReadFaults++
}

// WriteFault counts a write access fault on node.
func (r *Recorder) WriteFault(node int) {
	if r == nil {
		return
	}
	r.m.node(node).WriteFaults++
}

// TwinCreated counts a twin creation on node.
func (r *Recorder) TwinCreated(node int) {
	if r == nil {
		return
	}
	r.m.node(node).Twins++
}

// FetchStart traces the start of a remote page fetch. write says
// whether the triggering fault was a write fault.
func (r *Recorder) FetchStart(now sim.Time, node, page, home int, write bool) {
	if r == nil || len(r.sinks) == 0 {
		return
	}
	w := 0
	if write {
		w = 1
	}
	r.ev = Event{Kind: KindFetchStart, Time: now, Node: node, Page: page, Arg: home, Arg2: w}
	r.emit()
}

// FetchDone records a completed page fetch: counter, latency histogram,
// phase attribution, and a span event.
func (r *Recorder) FetchDone(start, end sim.Time, node, page, home int) {
	if r == nil {
		return
	}
	d := int64(end - start)
	r.m.node(node).FetchesIssued++
	r.m.h(node, HistPageFetch).Observe(d)
	p := r.m.ph(node)
	p.Fetches++
	p.FetchWaitNs += d
	t := r.m.tot(node)
	t.Fetches++
	t.FetchWaitNs += d
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindFetch, Time: end, Dur: sim.Duration(d), Node: node, Page: page, Arg: home}
		r.emit()
	}
}

// FetchServed counts a page request served by its home node.
func (r *Recorder) FetchServed(home, page int) {
	if r == nil {
		return
	}
	r.m.node(home).FetchesServed++
}

// Invalidated counts one page invalidation applied on node.
func (r *Recorder) Invalidated(node, page int) {
	if r == nil {
		return
	}
	r.m.node(node).Invalidations++
	p := r.m.ph(node)
	p.Invalidations++
	r.m.tot(node).Invalidations++
}

// --- hlrc: diff flush ---

// DiffCreated records one diff made during a flush (wire bytes include
// the diff header).
func (r *Recorder) DiffCreated(node, bytes int) {
	if r == nil {
		return
	}
	nc := r.m.node(node)
	nc.DiffsCreated++
	nc.DiffBytes += int64(bytes)
	r.m.h(node, HistDiffBytes).Observe(int64(bytes))
	p := r.m.ph(node)
	p.DiffsCreated++
	p.DiffBytes += int64(bytes)
	t := r.m.tot(node)
	t.DiffsCreated++
	t.DiffBytes += int64(bytes)
}

// DiffApplied counts one diff applied at its home node.
func (r *Recorder) DiffApplied(home int) {
	if r == nil {
		return
	}
	r.m.node(home).DiffsApplied++
}

// FlushStart traces the start of a diff flush (after the scan, before
// the bundles are sent).
func (r *Recorder) FlushStart(now sim.Time, node, pages, bundles int) {
	if r == nil || len(r.sinks) == 0 {
		return
	}
	r.ev = Event{Kind: KindFlushStart, Time: now, Node: node, Page: -1, Arg: pages, Arg2: bundles}
	r.emit()
}

// FlushDone records a completed diff flush (scan through last home ack).
func (r *Recorder) FlushDone(start, end sim.Time, node, pages, bundles int) {
	if r == nil {
		return
	}
	d := int64(end - start)
	r.m.h(node, HistDiffFlush).Observe(d)
	p := r.m.ph(node)
	p.Flushes++
	p.FlushWaitNs += d
	t := r.m.tot(node)
	t.Flushes++
	t.FlushWaitNs += d
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindFlush, Time: end, Dur: sim.Duration(d), Node: node, Page: -1, Arg: pages, Arg2: bundles}
		r.emit()
	}
}

// --- hlrc: barriers, home migration ---

// HomeMigrate traces a barrier-time home migration decided by the
// master.
func (r *Recorder) HomeMigrate(now sim.Time, epoch, page, from, to int) {
	if r == nil || len(r.sinks) == 0 {
		return
	}
	r.ev = Event{Kind: KindHomeMigrate, Time: now, Node: from, Page: page, Arg: epoch, Arg2: from, Arg3: to}
	r.emit()
}

// BarrierComplete traces the master finishing barrier `epoch` with
// `modified` distinct modified pages.
func (r *Recorder) BarrierComplete(now sim.Time, epoch, modified int) {
	if r == nil || len(r.sinks) == 0 {
		return
	}
	r.ev = Event{Kind: KindBarrierDone, Time: now, Node: 0, Page: -1, Arg: epoch, Arg2: modified}
	r.emit()
}

// BarrierWait records one node's pass through the SDSM barrier (entry
// before the flush to departure).
func (r *Recorder) BarrierWait(start, end sim.Time, node int) {
	if r == nil {
		return
	}
	d := int64(end - start)
	r.m.node(node).Barriers++
	r.m.h(node, HistBarrierWait).Observe(d)
	p := r.m.ph(node)
	p.Barriers++
	p.BarrierWaitNs += d
	t := r.m.tot(node)
	t.Barriers++
	t.BarrierWaitNs += d
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindBarrier, Time: end, Dur: sim.Duration(d), Node: node, Page: -1}
		r.emit()
	}
}

// --- hlrc: locks ---

// LockRequest counts a lock request issued by a node (including cached
// re-acquires that never reach the manager).
func (r *Recorder) LockRequest(from int) {
	if r == nil {
		return
	}
	r.m.node(from).LockRequests++
}

// LockWaited counts a lock request that could not be granted
// immediately and queued at the manager.
func (r *Recorder) LockWaited(from int) {
	if r == nil {
		return
	}
	r.m.node(from).LockWaits++
}

// LockAcquired records a completed SDSM lock acquisition on node.
func (r *Recorder) LockAcquired(start, end sim.Time, node, lock int) {
	if r == nil {
		return
	}
	d := int64(end - start)
	r.m.h(node, HistLockAcquire).Observe(d)
	p := r.m.ph(node)
	p.Locks++
	p.LockWaitNs += d
	t := r.m.tot(node)
	t.Locks++
	t.LockWaitNs += d
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindLock, Time: end, Dur: sim.Duration(d), Node: node, Page: -1, Arg: lock}
		r.emit()
	}
}

// LockReleased traces an SDSM lock release (after the release-time
// flush).
func (r *Recorder) LockReleased(now sim.Time, node, lock int) {
	if r == nil || len(r.sinks) == 0 {
		return
	}
	r.ev = Event{Kind: KindLockRelease, Time: now, Node: node, Page: -1, Arg: lock}
	r.emit()
}

// --- netsim ---

// MsgSent records one message entering the fabric from node `from`.
func (r *Recorder) MsgSent(now sim.Time, from, to, bytes int, kind int) {
	if r == nil {
		return
	}
	nc := r.m.node(from)
	nc.MsgsSent++
	nc.BytesSent += int64(bytes)
	p := r.m.ph(from)
	p.Msgs++
	p.Bytes += int64(bytes)
	t := r.m.tot(from)
	t.Msgs++
	t.Bytes += int64(bytes)
	if r.traceMessages && len(r.sinks) > 0 {
		r.ev = Event{Kind: KindMsgSend, Time: now, Node: from, Page: -1, Arg: to, Arg2: bytes, Arg3: kind}
		r.emit()
	}
}

// LocalDelivered counts an intra-node delivery that bypassed the fabric.
func (r *Recorder) LocalDelivered(node int) {
	if r == nil {
		return
	}
	r.m.node(node).LocalDeliver++
}

// --- netsim: reliability sublayer (active under fault injection) ---

// Timeout counts a retransmit timer firing on node's still-unacked frame.
func (r *Recorder) Timeout(node int) {
	if r == nil {
		return
	}
	r.m.node(node).Timeouts++
}

// Retransmit counts a data frame node re-injected after a timeout.
func (r *Recorder) Retransmit(node int) {
	if r == nil {
		return
	}
	r.m.node(node).Retransmits++
}

// DupSuppressed counts an arrival node discarded as a duplicate.
func (r *Recorder) DupSuppressed(node int) {
	if r == nil {
		return
	}
	r.m.node(node).DupsSuppressed++
}

// AckSent counts a cumulative ack node put on the control channel.
func (r *Recorder) AckSent(node int) {
	if r == nil {
		return
	}
	r.m.node(node).AcksSent++
}

// RetrySettled records the first-send-to-ack latency of a frame from
// node that needed at least one retransmission.
func (r *Recorder) RetrySettled(firstSent, acked sim.Time, node int) {
	if r == nil {
		return
	}
	r.m.h(node, HistRetryLatency).Observe(int64(acked - firstSent))
}

// --- netsim + hlrc: crash faults and recovery ---

// CrashInjected counts a crash-stop event on node.
func (r *Recorder) CrashInjected(node int) {
	if r == nil {
		return
	}
	r.m.node(node).Crashes++
}

// NodeRestarted counts a crashed node coming back.
func (r *Recorder) NodeRestarted(node int) {
	if r == nil {
		return
	}
	r.m.node(node).Restarts++
}

// PeerDown counts a retry-budget exhaustion observed by node.
func (r *Recorder) PeerDown(node int) {
	if r == nil {
		return
	}
	r.m.node(node).PeerDowns++
}

// CkptShipped records one checkpoint message node sent to its buddy.
func (r *Recorder) CkptShipped(node, bytes int) {
	if r == nil {
		return
	}
	nc := r.m.node(node)
	nc.CkptMsgs++
	nc.CkptBytes += int64(bytes)
}

// RecoveryDone records one completed recovery execution: detection
// instant through the last repair action, attributed to the master.
func (r *Recorder) RecoveryDone(start, end sim.Time, node int) {
	if r == nil {
		return
	}
	r.m.node(node).Recovered++
	r.m.h(node, HistRecoveryLatency).Observe(int64(end - start))
}

// --- hlrc: protocol policy engine ---

// PolicyRefresh counts one eager page refresh (update propagation)
// issued by node after a barrier departure.
func (r *Recorder) PolicyRefresh(node int) {
	if r == nil {
		return
	}
	r.m.node(node).PolicyRefreshes++
}

// PolicyReclass records one applied classifier class change at node
// (the master). sinceNs is the virtual time since the page's previous
// change and feeds the reclass_latency histogram; pass a negative value
// for a page's first change (no previous change to measure from).
func (r *Recorder) PolicyReclass(node int, sinceNs int64) {
	if r == nil {
		return
	}
	r.m.node(node).PolicyReclass++
	if sinceNs >= 0 {
		r.m.h(node, HistReclassLatency).Observe(sinceNs)
	}
}

// --- mpi ---

// Collective records one rank's pass through an MPI collective.
func (r *Recorder) Collective(start, end sim.Time, node int, op string, bytes int) {
	if r == nil {
		return
	}
	d := int64(end - start)
	r.m.node(node).Collectives++
	r.m.h(node, HistCollective).Observe(d)
	p := r.m.ph(node)
	p.Collectives++
	p.CollectiveNs += d
	t := r.m.tot(node)
	t.Collectives++
	t.CollectiveNs += d
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindCollective, Time: end, Dur: sim.Duration(d), Node: node, Page: -1, Arg: bytes, Cat: op}
		r.emit()
	}
}

// --- core: regions and directives ---

// RegionBegin opens parallel region `seq`: subsequent activity is
// attributed to it.
func (r *Recorder) RegionBegin(now sim.Time, seq int) {
	if r == nil {
		return
	}
	r.m.beginPhase(now, seq)
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindRegionBegin, Time: now, Node: 0, Page: -1, Arg: seq}
		r.emit()
	}
}

// RegionEnd closes parallel region `seq`; activity reverts to the
// serial accumulator.
func (r *Recorder) RegionEnd(start, end sim.Time, seq int) {
	if r == nil {
		return
	}
	r.m.endPhase(end)
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindRegionEnd, Time: end, Dur: sim.Duration(end - start), Node: 0, Page: -1, Arg: seq}
		r.emit()
	}
}

// Directive records one thread's execution of a synchronization
// directive (cat is the directive kind, e.g. "critical"; site is the
// user-supplied name).
func (r *Recorder) Directive(start, end sim.Time, node int, cat, site string) {
	if r == nil {
		return
	}
	d := int64(end - start)
	r.m.node(node).Directives++
	r.m.h(node, HistDirective).Observe(d)
	p := r.m.ph(node)
	p.Directives++
	p.DirectiveNs += d
	t := r.m.tot(node)
	t.Directives++
	t.DirectiveNs += d
	if len(r.sinks) > 0 {
		r.ev = Event{Kind: KindDirective, Time: end, Dur: sim.Duration(d), Node: node, Page: -1, Cat: cat, Label: site}
		r.emit()
	}
}

// --- core: tasking runtime ---

// TaskSpawned counts a task pushed onto node's deque.
func (r *Recorder) TaskSpawned(node int) {
	if r == nil {
		return
	}
	r.m.node(node).TasksSpawned++
}

// TaskExecuted counts a task run to completion by a thread of node.
func (r *Recorder) TaskExecuted(node int) {
	if r == nil {
		return
	}
	r.m.node(node).TasksExecuted++
}

// DepResolved counts one predecessor edge retired by node's dependence
// resolver (a completed task satisfying one successor's dependence).
func (r *Recorder) DepResolved(node int) {
	if r == nil {
		return
	}
	r.m.node(node).DepsResolved++
}

// TaskReleased records a held task's release on its origin node once
// its last predecessor completed; start is the spawn instant, so the
// span is the task's dependence wait (the dep_wait_latency histogram).
func (r *Recorder) TaskReleased(start, end sim.Time, node int) {
	if r == nil {
		return
	}
	r.m.node(node).TasksReleased++
	r.m.h(node, HistDepWait).Observe(int64(end - start))
}

// StealRequest counts a steal round trip initiated by thief.
func (r *Recorder) StealRequest(thief int) {
	if r == nil {
		return
	}
	r.m.node(thief).StealRequests++
}

// StealDone records one completed steal round trip (request sent to
// reply received); hit says whether a task came back. Hits also count
// toward the thief's stolen-task tally.
func (r *Recorder) StealDone(start, end sim.Time, thief, victim int, hit bool) {
	if r == nil {
		return
	}
	d := int64(end - start)
	if hit {
		r.m.node(thief).TasksStolen++
	}
	r.m.h(thief, HistStealLatency).Observe(d)
	if len(r.sinks) > 0 {
		h := 0
		if hit {
			h = 1
		}
		r.ev = Event{Kind: KindSteal, Time: end, Dur: sim.Duration(d), Node: thief, Page: -1, Arg: victim, Arg2: h}
		r.emit()
	}
}

// --- sim ---

// CPUWait records time a runnable process spent queued for a busy CPU
// on node.
func (r *Recorder) CPUWait(node int, d sim.Duration) {
	if r == nil {
		return
	}
	r.m.node(node).CPUWaitNs += int64(d)
	r.m.h(node, HistCPUWait).Observe(int64(d))
	p := r.m.ph(node)
	p.CPUWaitNs += int64(d)
	r.m.tot(node).CPUWaitNs += int64(d)
}
