package obs

import (
	"encoding/json"
	"io"
	"reflect"

	"parade/internal/sim"
)

// Histogram identifiers. All latency histograms are in virtual
// nanoseconds; HistDiffBytes is in bytes.
const (
	HistPageFetch       = iota // fault -> page installed
	HistDiffFlush              // flush start -> last home ack
	HistLockAcquire            // AcquireLock entry -> grant
	HistBarrierWait            // SDSM barrier entry -> departure
	HistDirective              // directive entry -> completion, per thread
	HistCollective             // MPI collective entry -> completion, per rank
	HistCPUWait                // time a runnable proc queued for a busy CPU
	HistDiffBytes              // wire size of each created diff
	HistRetryLatency           // first send -> ack, frames that needed a retransmit
	HistRecoveryLatency        // crash detected -> recovery complete, per execution
	HistStealLatency           // steal request sent -> reply received (hit or miss)
	HistReclassLatency         // interval between a page's successive class changes
	HistWALReplay              // host ns to replay the fleet result WAL at startup
	HistDepWait                // task spawn -> dependence release, held tasks only
	NumHists
)

// histDefs gives each histogram its stable exported name and unit.
var histDefs = [NumHists]struct{ Name, Unit string }{
	HistPageFetch:       {"page_fetch", "ns"},
	HistDiffFlush:       {"diff_flush", "ns"},
	HistLockAcquire:     {"lock_acquire", "ns"},
	HistBarrierWait:     {"barrier_wait", "ns"},
	HistDirective:       {"directive", "ns"},
	HistCollective:      {"collective", "ns"},
	HistCPUWait:         {"cpu_wait", "ns"},
	HistDiffBytes:       {"diff_size", "bytes"},
	HistRetryLatency:    {"retry_latency", "ns"},
	HistRecoveryLatency: {"recovery_latency", "ns"},
	HistStealLatency:    {"steal_latency", "ns"},
	HistReclassLatency:  {"reclass_latency", "ns"},
	HistWALReplay:       {"wal_replay_latency", "ns"},
	HistDepWait:         {"dep_wait_latency", "ns"},
}

// HistName returns the stable name of histogram id (as used in the
// metrics JSON), or "" for an unknown id.
func HistName(id int) string {
	if id < 0 || id >= NumHists {
		return ""
	}
	return histDefs[id].Name
}

// NodeCounters is the per-node generalization of stats.Counters: the
// same protocol vocabulary, attributed to the node that performed (or
// served) each operation.
type NodeCounters struct {
	ReadFaults    int64 `json:"read_faults"`
	WriteFaults   int64 `json:"write_faults"`
	FetchesIssued int64 `json:"page_fetches_issued"`
	FetchesServed int64 `json:"page_fetches_served"`
	Twins         int64 `json:"twins"`
	DiffsCreated  int64 `json:"diffs_created"`
	DiffBytes     int64 `json:"diff_bytes"`
	DiffsApplied  int64 `json:"diffs_applied"`
	Invalidations int64 `json:"invalidations"`
	Barriers      int64 `json:"sdsm_barriers"`
	LockRequests  int64 `json:"lock_requests"`
	LockWaits     int64 `json:"lock_waits"`
	MsgsSent      int64 `json:"msgs_sent"`
	BytesSent     int64 `json:"bytes_sent"`
	LocalDeliver  int64 `json:"local_deliveries"`
	Collectives   int64 `json:"collectives"`
	Directives    int64 `json:"directives"`
	CPUWaitNs     int64 `json:"cpu_wait_ns"`

	// Reliability sublayer (nonzero only under fault injection).
	Timeouts       int64 `json:"rel_timeouts,omitempty"`
	Retransmits    int64 `json:"rel_retransmits,omitempty"`
	DupsSuppressed int64 `json:"rel_dups_suppressed,omitempty"`
	AcksSent       int64 `json:"rel_acks_sent,omitempty"`

	// Tasking runtime (nonzero only when the program spawns tasks).
	TasksSpawned  int64 `json:"task_spawned,omitempty"`
	TasksExecuted int64 `json:"task_executed,omitempty"`
	TasksStolen   int64 `json:"task_stolen,omitempty"`
	StealRequests int64 `json:"steal_requests,omitempty"`
	DepsResolved  int64 `json:"task_deps_resolved,omitempty"` // predecessor edges retired by the resolver
	TasksReleased int64 `json:"task_released,omitempty"`      // held tasks released into a deque

	// Protocol policy engine (nonzero only with a non-legacy policy).
	PolicyReclass   int64 `json:"policy_reclass,omitempty"`
	PolicyRefreshes int64 `json:"policy_refreshes,omitempty"`

	// Crash faults and recovery (nonzero only with a crash plan).
	Crashes   int64 `json:"crash_injected,omitempty"`
	Restarts  int64 `json:"crash_restarts,omitempty"`
	PeerDowns int64 `json:"rel_peer_downs,omitempty"`
	CkptMsgs  int64 `json:"ckpt_msgs,omitempty"`
	CkptBytes int64 `json:"ckpt_bytes,omitempty"`
	Recovered int64 `json:"recovery_runs,omitempty"`
}

// PhaseCounters is the activity attributed to one parallel region (or
// to the serial sections between regions). The *Ns fields are sums of
// the corresponding latency spans, so e.g. BarrierWaitNs/(region
// duration * nodes) is the fraction of node-time spent waiting at
// barriers during that region.
type PhaseCounters struct {
	Fetches       int64 `json:"fetches"`
	FetchWaitNs   int64 `json:"fetch_wait_ns"`
	Flushes       int64 `json:"flushes"`
	FlushWaitNs   int64 `json:"flush_wait_ns"`
	DiffsCreated  int64 `json:"diffs_created"`
	DiffBytes     int64 `json:"diff_bytes"`
	Invalidations int64 `json:"invalidations"`
	Barriers      int64 `json:"sdsm_barriers"`
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
	Locks         int64 `json:"lock_acquires"`
	LockWaitNs    int64 `json:"lock_wait_ns"`
	Collectives   int64 `json:"collectives"`
	CollectiveNs  int64 `json:"collective_ns"`
	Directives    int64 `json:"directives"`
	DirectiveNs   int64 `json:"directive_ns"`
	CPUWaitNs     int64 `json:"cpu_wait_ns"`
	Msgs          int64 `json:"msgs"`
	Bytes         int64 `json:"bytes"`
}

// Phase is the record of one parallel region.
type Phase struct {
	Seq     int           `json:"seq"`
	StartNs sim.Time      `json:"start_ns"`
	EndNs   sim.Time      `json:"end_ns"`
	C       PhaseCounters `json:"counters"`
}

// maxPhases bounds Metrics memory for programs with very many parallel
// regions (e.g. the EPCC-style microbenchmarks): regions past the cap
// fold into the last slot and FoldedPhases counts how many were folded.
const maxPhases = 512

// Metrics is the registry side of a Recorder: per-node counters,
// latency/size histograms, and per-parallel-region phase attribution.
// Like the Recorder it is written with plain stores — the simulation
// kernel's one-runnable-goroutine invariant is the synchronization.
//
// Under per-node event lanes (internal/sim lane mode) that invariant is
// per lane, not global, so ShardForLanes switches the registry to
// per-node shards: histograms and phase counters accumulate into the
// recording node's private shard and FoldLanes merges them after the
// run. Merging is pure summation (and min/max), so the folded registry
// is identical whatever the lane count or host interleaving — including
// lanes=1 — and matches what the single-loop kernel records.
type Metrics struct {
	perNode []NodeCounters
	hist    [NumHists]Histogram

	phases       []Phase
	cur          *Phase // non-nil while inside a parallel region
	serial       PhaseCounters
	total        PhaseCounters
	foldedPhases int

	// Lane-mode shards (nil in legacy mode).
	histSh [][NumHists]Histogram
	phSh   []phaseShard

	// Lane engine report (set post-run via SetLaneReport).
	laneStats   []LaneStat
	laneWindows uint64
	laneSync    Histogram
}

// phaseShard is one node's private phase-attribution state in lane mode.
// cur is the region sequence number the node is currently inside (0 =
// serial); slots is indexed by capped sequence number and grown lazily
// by the owning lane only.
type phaseShard struct {
	cur    int
	slots  []PhaseCounters
	serial PhaseCounters
	total  PhaseCounters
}

// node returns the counters for node n, growing the slice if a recorder
// built for fewer nodes sees a larger id. In lane mode the slice is
// preallocated for every node and never grows (a grow would reallocate
// the backing array under concurrent lanes).
func (m *Metrics) node(n int) *NodeCounters {
	if n >= len(m.perNode) {
		if m.histSh != nil {
			panic("obs: node id out of range in lane mode")
		}
		grown := make([]NodeCounters, n+1)
		copy(grown, m.perNode)
		m.perNode = grown
	}
	return &m.perNode[n]
}

// ph returns the phase-counter set node's activity should currently
// charge to: the open parallel region (node-local in lane mode), or the
// serial accumulator between regions.
func (m *Metrics) ph(node int) *PhaseCounters {
	if m.histSh != nil {
		sh := &m.phSh[node]
		if sh.cur == 0 {
			return &sh.serial
		}
		slot := sh.cur
		if slot > maxPhases {
			slot = maxPhases // mirror the legacy folding cap
		}
		if slot >= len(sh.slots) {
			grown := make([]PhaseCounters, slot+1)
			copy(grown, sh.slots)
			sh.slots = grown
		}
		return &sh.slots[slot]
	}
	if m.cur != nil {
		return &m.cur.C
	}
	return &m.serial
}

// tot returns the whole-run accumulator for node's activity (the
// node's shard in lane mode, the global total otherwise).
func (m *Metrics) tot(node int) *PhaseCounters {
	if m.histSh != nil {
		return &m.phSh[node].total
	}
	return &m.total
}

// h returns histogram id for recording from node's context.
func (m *Metrics) h(node, id int) *Histogram {
	if m.histSh != nil {
		return &m.histSh[node][id]
	}
	return &m.hist[id]
}

// Nodes returns the number of nodes with recorded counters.
func (m *Metrics) Nodes() int { return len(m.perNode) }

// Node returns a copy of node n's counters (zero value if out of range).
func (m *Metrics) Node(n int) NodeCounters {
	if n < 0 || n >= len(m.perNode) {
		return NodeCounters{}
	}
	return m.perNode[n]
}

// Hist returns a copy of histogram id (zero value if out of range).
func (m *Metrics) Hist(id int) Histogram {
	if id < 0 || id >= NumHists {
		return Histogram{}
	}
	return m.hist[id]
}

// Phases returns the recorded parallel regions. The returned slice is
// the live backing array; callers must not modify it.
func (m *Metrics) Phases() []Phase { return m.phases }

// Serial returns the activity recorded outside any parallel region.
func (m *Metrics) Serial() PhaseCounters { return m.serial }

// Total returns the whole-run phase-counter aggregate (parallel regions
// plus serial sections).
func (m *Metrics) Total() PhaseCounters { return m.total }

func (m *Metrics) beginPhase(now sim.Time, seq int) {
	if len(m.phases) == maxPhases {
		// Fold into the last slot: keep attribution bounded without
		// dropping the totals.
		m.cur = &m.phases[maxPhases-1]
		m.foldedPhases++
		return
	}
	m.phases = append(m.phases, Phase{Seq: seq, StartNs: now})
	m.cur = &m.phases[len(m.phases)-1]
}

func (m *Metrics) endPhase(now sim.Time) {
	if m.cur != nil {
		m.cur.EndNs = now
		m.cur = nil
	}
}

// shardForLanes switches the registry to per-node accumulation for a
// lane-mode run over `nodes` nodes. Call before the simulation starts.
func (m *Metrics) shardForLanes(nodes int) {
	if len(m.perNode) < nodes {
		grown := make([]NodeCounters, nodes)
		copy(grown, m.perNode)
		m.perNode = grown
	}
	m.histSh = make([][NumHists]Histogram, nodes)
	m.phSh = make([]phaseShard, nodes)
}

// regionOn marks node as inside parallel region seq; its subsequent
// activity charges to that region's shard slot. Lane-confined to node.
func (m *Metrics) regionOn(node, seq int) {
	if m.histSh != nil {
		m.phSh[node].cur = seq
	}
}

// regionOff reverts node to the serial accumulator.
func (m *Metrics) regionOff(node int) {
	if m.histSh != nil {
		m.phSh[node].cur = 0
	}
}

// FoldLanes merges every node shard into the aggregate views (global
// histograms, the phase list, serial, total). Call once after Run with
// the kernel quiesced; safe to call in legacy mode (no-op).
func (m *Metrics) FoldLanes() {
	if m.histSh == nil {
		return
	}
	for n := range m.histSh {
		for id := 0; id < NumHists; id++ {
			m.hist[id].Merge(&m.histSh[n][id])
		}
	}
	for n := range m.phSh {
		sh := &m.phSh[n]
		m.serial.Add(&sh.serial)
		m.total.Add(&sh.total)
		for seq := 1; seq < len(sh.slots); seq++ {
			// Region sequence numbers are 1-based and sequential, so the
			// phase recorded for seq sits at index seq-1 (activity past the
			// fold cap lands in the last slot, matching beginPhase).
			idx := seq - 1
			if idx >= len(m.phases) {
				idx = len(m.phases) - 1
			}
			if idx < 0 {
				m.serial.Add(&sh.slots[seq])
				continue
			}
			m.phases[idx].C.Add(&sh.slots[seq])
		}
	}
	m.histSh = nil
	m.phSh = nil
}

// Add accumulates o into p field-wise (every field is an int64 tally).
func (p *PhaseCounters) Add(o *PhaseCounters) {
	pv := reflect.ValueOf(p).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetInt(pv.Field(i).Int() + ov.Field(i).Int())
	}
}

// LaneStat mirrors sim.LaneStat for the metrics dump: host-time
// utilization of one event lane.
type LaneStat struct {
	Lane    int    `json:"lane"`
	Windows uint64 `json:"windows"`
	Events  uint64 `json:"events"`
	BusyNs  int64  `json:"busy_ns"`
	StallNs int64  `json:"stall_ns"`
}

// SetLaneReport attaches the lane engine's post-run report: per-lane
// utilization/stall counters, the total window count, and the
// lane_sync_latency histogram (host nanoseconds each lane spent waiting
// between finishing a window and being dispatched into the next).
func (m *Metrics) SetLaneReport(stats []LaneStat, windows uint64, sync Histogram) {
	m.laneStats = stats
	m.laneWindows = windows
	m.laneSync = sync
}

// LaneReport returns the attached lane report (nil stats in legacy mode).
func (m *Metrics) LaneReport() ([]LaneStat, uint64, Histogram) {
	return m.laneStats, m.laneWindows, m.laneSync
}

// JSON schema for the metrics dump.

type histJSON struct {
	Name    string       `json:"name"`
	Unit    string       `json:"unit"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Buckets []bucketJSON `json:"buckets,omitempty"`
}

type bucketJSON struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

func histToJSON(h *Histogram, name, unit string) histJSON {
	hj := histJSON{
		Name: name, Unit: unit,
		Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
		Mean: h.Mean(),
		P50:  h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	for i, n := range h.Buckets {
		if n != 0 {
			hj.Buckets = append(hj.Buckets, bucketJSON{Le: BucketUpper(i), N: n})
		}
	}
	return hj
}

type metricsJSON struct {
	Schema       string         `json:"schema"`
	Nodes        int            `json:"nodes"`
	PerNode      []NodeCounters `json:"per_node"`
	Histograms   []histJSON     `json:"histograms"`
	Phases       []Phase        `json:"phases"`
	FoldedPhases int            `json:"folded_phases,omitempty"`
	Serial       PhaseCounters  `json:"serial"`
	Total        PhaseCounters  `json:"total"`

	// Lane engine section (present only for lane-mode runs).
	Lanes       []LaneStat `json:"lanes,omitempty"`
	LaneWindows uint64     `json:"lane_windows,omitempty"`
}

// WriteJSON writes the full metrics dump (schema "parade-metrics/v1").
// Output is deterministic: every collection is a slice in recording
// order, and histogram buckets are emitted low to high.
func (m *Metrics) WriteJSON(w io.Writer) error {
	out := metricsJSON{
		Schema:       "parade-metrics/v1",
		Nodes:        len(m.perNode),
		PerNode:      m.perNode,
		Phases:       m.phases,
		FoldedPhases: m.foldedPhases,
		Serial:       m.serial,
		Total:        m.total,
		Lanes:        m.laneStats,
		LaneWindows:  m.laneWindows,
	}
	if out.PerNode == nil {
		out.PerNode = []NodeCounters{}
	}
	if out.Phases == nil {
		out.Phases = []Phase{}
	}
	for id := 0; id < NumHists; id++ {
		out.Histograms = append(out.Histograms, histToJSON(&m.hist[id], histDefs[id].Name, histDefs[id].Unit))
	}
	if m.laneStats != nil {
		// Lane sync latency is host time, not virtual time: it measures the
		// engine's own barrier cost, so it rides along only for lane runs.
		out.Histograms = append(out.Histograms, histToJSON(&m.laneSync, "lane_sync_latency", "host_ns"))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
