package obs

import "parade/internal/sim"

// Kind identifies one trace event type. The set mirrors the protocol
// vocabulary of the paper's §5–§6: page movement, diff traffic, barrier
// and lock synchronization, message-passing collectives, and the
// OpenMP-level directives and parallel regions they implement.
type Kind uint8

// Trace event kinds. *Start kinds are instants marking the beginning of
// an operation (they carry the legacy text-trace information); the
// matching non-Start kind is emitted at completion with the measured
// virtual-time duration.
const (
	// KindFetchStart: a node begins fetching a page from its home after
	// an access fault. Page, Arg=home, Arg2=1 for a write fault.
	KindFetchStart Kind = iota
	// KindFetch: the fetched page is installed. Span; Page, Arg=home.
	KindFetch
	// KindFlushStart: a node's diff scans are done and bundles are about
	// to be sent. Arg=dirty pages, Arg2=diff bundles.
	KindFlushStart
	// KindFlush: every home acknowledged the node's diffs. Span;
	// Arg=dirty pages, Arg2=diff bundles.
	KindFlush
	// KindHomeMigrate: barrier-time home election moved a page.
	// Arg=epoch, Page, Arg2=old home, Arg3=new home.
	KindHomeMigrate
	// KindBarrierDone: the master completed a global barrier.
	// Arg=epoch, Arg2=modified pages.
	KindBarrierDone
	// KindBarrier: one node's SDSM barrier, from entry (before the diff
	// flush) to departure. Span.
	KindBarrier
	// KindLock: an SDSM lock acquisition, request to grant. Span;
	// Arg=lock id.
	KindLock
	// KindLockRelease: an SDSM lock release (after the release-time
	// flush). Arg=lock id.
	KindLockRelease
	// KindCollective: one rank's participation in an MPI collective,
	// entry to completion. Span; Cat=operation, Arg=payload bytes.
	KindCollective
	// KindRegionBegin: the master forked a parallel region. Arg=region
	// sequence number.
	KindRegionBegin
	// KindRegionEnd: the region's implicit end barrier released the
	// master. Span over the whole region; Arg=region sequence number.
	KindRegionEnd
	// KindDirective: one thread's execution of a synchronization
	// directive, entry to completion. Span; Cat=directive kind,
	// Label=site name.
	KindDirective
	// KindMsgSend: a message entered the fabric (emitted only with
	// Recorder.TraceMessages). Arg=destination node, Arg2=payload bytes,
	// Arg3=netsim kind.
	KindMsgSend
	// KindSteal: one cross-node steal round trip, request sent to reply
	// received. Span; Arg=victim node, Arg2=1 for a hit (a task came
	// back), 0 for a miss.
	KindSteal

	numKinds
)

// names are the stable identifiers used by the JSONL sink and the Chrome
// sink's event names.
var kindNames = [numKinds]string{
	KindFetchStart:  "fetch_start",
	KindFetch:       "page_fetch",
	KindFlushStart:  "flush_start",
	KindFlush:       "diff_flush",
	KindHomeMigrate: "home_migrate",
	KindBarrierDone: "barrier_done",
	KindBarrier:     "barrier",
	KindLock:        "lock_acquire",
	KindLockRelease: "lock_release",
	KindCollective:  "collective",
	KindRegionBegin: "region_begin",
	KindRegionEnd:   "region",
	KindDirective:   "directive",
	KindMsgSend:     "msg_send",
	KindSteal:       "steal",
}

// String returns the event kind's stable name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured trace record. Time is the event's virtual
// timestamp; for spans (Dur > 0 is possible) it is the END of the span,
// so the start is Time - Dur. Page is -1 when the event has no page.
// The Arg fields are kind-specific (see the Kind constants); Cat and
// Label carry the directive/collective vocabulary.
//
// Events are delivered to sinks by pointer into a Recorder-owned scratch
// record: a sink must fully consume the event during Emit and must not
// retain the pointer.
type Event struct {
	Kind  Kind
	Time  sim.Time
	Dur   sim.Duration
	Node  int
	Page  int
	Arg   int
	Arg2  int
	Arg3  int
	Cat   string
	Label string
}

// Start returns the span's start time (equal to Time for instants).
func (e *Event) Start() sim.Time { return e.Time - sim.Time(e.Dur) }

// Sink consumes trace events. Sinks are invoked synchronously from
// simulation context in deterministic order, so a sink that writes
// events verbatim produces byte-identical output across same-seed runs.
// Close flushes any buffered framing (e.g. the Chrome JSON tail).
type Sink interface {
	Emit(e *Event)
	Close() error
}
