package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"parade/internal/sim"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	// Bucket i>0 holds [2^(i-1), 2^i); bucket 0 holds exactly 0.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {-5, 0}, // negatives clamp to 0
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1}
	for i, n := range h.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if h.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
	if h.Min != 0 || h.Max != 1024 {
		t.Errorf("Min/Max = %d/%d, want 0/1024", h.Min, h.Max)
	}
}

func TestBucketUpper(t *testing.T) {
	for i, want := range map[int]int64{-1: 0, 0: 0, 1: 1, 2: 3, 3: 7, 10: 1023} {
		if got := BucketUpper(i); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
	if got := BucketUpper(64); got != int64(^uint64(0)>>1) {
		t.Errorf("BucketUpper(64) = %d, want MaxInt64", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	// p50 of 1..100 lands in bucket of 50 (bits.Len64(50)=6, upper 63).
	if q := h.Quantile(0.5); q != 63 {
		t.Errorf("p50 = %d, want 63", q)
	}
	// p100 must clamp to the observed max, not the bucket upper bound 127.
	if q := h.Quantile(1); q != 100 {
		t.Errorf("p100 = %d, want 100 (clamped to Max)", q)
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("Mean = %v, want 50.5", m)
	}
}

func TestLegacyTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	r := New(2)
	r.AddSink(NewLegacyTextSink(&buf))
	t1 := sim.Time(1500)
	r.FetchStart(t1, 1, 7, 0, false)
	r.FetchStart(t1, 1, 8, 0, true)
	r.FlushStart(t1, 1, 3, 2)
	r.HomeMigrate(t1, 4, 7, 0, 1)
	r.BarrierComplete(t1, 4, 3)
	// These kinds are not part of the historical printf trace and must
	// not appear in legacy mode.
	r.BarrierWait(0, t1, 1)
	r.LockAcquired(0, t1, 1, 0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("[%12s] node 1: read fault on page 7, fetching from home 0\n", t1) +
		fmt.Sprintf("[%12s] node 1: write fault on page 8, fetching from home 0\n", t1) +
		fmt.Sprintf("[%12s] node 1: flush 3 dirty pages, 2 diff bundles\n", t1) +
		fmt.Sprintf("[%12s] barrier 4: page 7 home migrates 0 -> 1\n", t1) +
		fmt.Sprintf("[%12s] barrier 4: complete, 3 modified pages\n", t1)
	if buf.String() != want {
		t.Errorf("legacy trace mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

// emitAll drives one event of every kind through the recorder.
func emitAll(r *Recorder) {
	r.TraceMessages(true)
	r.RegionBegin(10, 1)
	r.FetchStart(20, 0, 3, 1, true)
	r.FetchDone(20, 45, 0, 3, 1)
	r.FlushStart(50, 1, 2, 1)
	r.FlushDone(50, 80, 1, 2, 1)
	r.HomeMigrate(90, 1, 3, 1, 0)
	r.BarrierComplete(95, 1, 2)
	r.BarrierWait(60, 95, 0)
	r.LockAcquired(100, 130, 1, 2)
	r.LockReleased(140, 1, 2)
	r.Collective(150, 170, 0, "allreduce", 8)
	r.Directive(150, 180, 0, "critical", "sum")
	r.MsgSent(185, 0, 1, 64, 0)
	r.RegionEnd(10, 190, 1)
}

func TestJSONLSinkValidLines(t *testing.T) {
	var buf bytes.Buffer
	r := New(2)
	r.AddSink(NewJSONLSink(&buf))
	emitAll(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 14 {
		t.Fatalf("got %d JSONL lines, want 14:\n%s", len(lines), buf.String())
	}
	kinds := map[string]bool{}
	for _, ln := range lines {
		var rec struct {
			T    int64  `json:"t"`
			Kind string `json:"kind"`
			Node int    `json:"node"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
		kinds[rec.Kind] = true
	}
	for _, k := range []string{"page_fetch", "diff_flush", "barrier", "lock_acquire", "collective", "directive", "region", "msg_send"} {
		if !kinds[k] {
			t.Errorf("kind %q missing from JSONL trace (have %v)", k, kinds)
		}
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	r := New(2)
	r.AddSink(NewChromeSink(&buf))
	emitAll(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			spans++
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("X event without dur: %v", e)
			}
		case "i":
			instants++
			if s, _ := e["s"].(string); s != "t" {
				t.Errorf("instant without thread scope: %v", e)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q in %v", ph, e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Errorf("event without pid: %v", e)
		}
	}
	// Spans: fetch, flush, barrier, lock, collective, directive, region.
	if spans != 7 {
		t.Errorf("got %d X spans, want 7", spans)
	}
	// Instants: home_migrate, barrier_done, lock_release, msg_send.
	if instants != 4 {
		t.Errorf("got %d instants, want 4", instants)
	}
	if meta == 0 {
		t.Error("no process/thread name metadata emitted")
	}
}

func TestMetricsJSONAndPhases(t *testing.T) {
	r := New(2)
	// Activity before any region lands in the serial accumulator.
	r.FetchDone(0, 10, 0, 1, 1)
	r.RegionBegin(10, 1)
	r.FetchDone(20, 45, 0, 3, 1)
	r.Collective(150, 170, 1, "allreduce", 8)
	r.RegionEnd(10, 190, 1)
	r.FetchDone(200, 210, 1, 4, 0)

	m := r.Metrics()
	if got := len(m.Phases()); got != 1 {
		t.Fatalf("got %d phases, want 1", got)
	}
	ph := m.Phases()[0]
	if ph.Seq != 1 || ph.C.Fetches != 1 || ph.C.Collectives != 1 {
		t.Errorf("phase = %+v, want seq 1 with 1 fetch and 1 collective", ph)
	}
	if m.Serial().Fetches != 2 {
		t.Errorf("serial fetches = %d, want 2", m.Serial().Fetches)
	}
	if m.Total().Fetches != 3 {
		t.Errorf("total fetches = %d, want 3", m.Total().Fetches)
	}
	if n := m.Node(0); n.FetchesIssued != 2 {
		t.Errorf("node 0 fetches = %d, want 2", n.FetchesIssued)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string            `json:"schema"`
		PerNode    []json.RawMessage `json:"per_node"`
		Histograms []struct {
			Name  string `json:"name"`
			Unit  string `json:"unit"`
			Count int64  `json:"count"`
		} `json:"histograms"`
		Phases []json.RawMessage `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.Schema != "parade-metrics/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.PerNode) != 2 || len(doc.Phases) != 1 {
		t.Errorf("per_node=%d phases=%d, want 2 and 1", len(doc.PerNode), len(doc.Phases))
	}
	found := false
	for _, h := range doc.Histograms {
		if h.Name == "page_fetch" {
			found = true
			if h.Count != 3 || h.Unit != "ns" {
				t.Errorf("page_fetch hist = %+v", h)
			}
		}
	}
	if !found {
		t.Error("page_fetch histogram missing")
	}
}

func TestNodeSlotsGrowOnDemand(t *testing.T) {
	r := New(1)
	r.ReadFault(5)
	if got := r.Metrics().Nodes(); got != 6 {
		t.Fatalf("got %d node slots, want 6", got)
	}
	if r.Metrics().Node(5).ReadFaults != 1 {
		t.Error("fault not attributed to node 5")
	}
}

// TestDisabledPathZeroAlloc pins the zero-overhead contract: every
// recording call on a nil recorder, and the counter/histogram-only calls
// on an enabled recorder without sinks, must not allocate.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		nilRec.ReadFault(0)
		nilRec.FetchStart(1, 0, 1, 1, false)
		nilRec.FetchDone(1, 2, 0, 1, 1)
		nilRec.DiffCreated(0, 64)
		nilRec.FlushDone(1, 2, 0, 1, 1)
		nilRec.BarrierWait(1, 2, 0)
		nilRec.LockAcquired(1, 2, 0, 0)
		nilRec.MsgSent(1, 0, 1, 64, 0)
		nilRec.Collective(1, 2, 0, "bcast", 8)
		nilRec.Directive(1, 2, 0, "critical", "x")
		nilRec.CPUWait(0, 5)
	}); n != 0 {
		t.Errorf("nil recorder allocates %v per run, want 0", n)
	}

	rec := New(4)
	if n := testing.AllocsPerRun(100, func() {
		rec.ReadFault(3)
		rec.FetchDone(1, 2, 3, 1, 1)
		rec.DiffCreated(3, 64)
		rec.FlushDone(1, 2, 3, 1, 1)
		rec.BarrierWait(1, 2, 3)
		rec.LockAcquired(1, 2, 3, 0)
		rec.MsgSent(1, 3, 1, 64, 0)
		rec.Collective(1, 2, 3, "bcast", 8)
		rec.Directive(1, 2, 3, "critical", "x")
		rec.CPUWait(3, 5)
	}); n != 0 {
		t.Errorf("sinkless recorder allocates %v per run, want 0", n)
	}
}
