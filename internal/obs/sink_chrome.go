package obs

import (
	"io"
	"sort"
	"strconv"
)

// Per-node tracks (Chrome "threads") that events are laid out on.
const (
	trackDSM       = iota // page fetches, diff flushes
	trackSync             // barriers, locks
	trackMPI              // collectives
	trackDirective        // OpenMP-level directives
	trackRegion           // parallel regions (on node 0)
	trackNet              // per-message sends (with TraceMessages)
)

var trackNames = [...]string{"dsm", "sync", "mpi", "directive", "region", "net"}

// ChromeSink writes the Chrome trace_event JSON object format
// ({"traceEvents":[...]}), loadable in chrome://tracing and Perfetto.
// Layout: one Chrome "process" per cluster node, with per-category
// tracks (dsm / sync / mpi / directive / net) as threads. Spans become
// "X" complete events, point events become "i" instants; virtual-time
// nanoseconds map to the format's microsecond ts/dur fields with 3
// decimal places, so nanosecond precision is preserved. Close writes
// the process/thread naming metadata and the closing bracket — a trace
// is not valid JSON until the sink is closed.
type ChromeSink struct {
	w      io.Writer
	buf    []byte
	n      int // events written so far
	pids   map[int]bool
	tracks map[[2]int]bool
}

// NewChromeSink returns a sink writing trace_event JSON to w. It writes
// the opening framing immediately.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{
		w:      w,
		buf:    make([]byte, 0, 256),
		pids:   make(map[int]bool),
		tracks: make(map[[2]int]bool),
	}
	io.WriteString(w, "{\"traceEvents\":[\n")
	return s
}

func (s *ChromeSink) sep(b []byte) []byte {
	if s.n > 0 {
		b = append(b, ',', '\n')
	}
	s.n++
	return b
}

// appendUS appends a nanosecond count as microseconds with ns precision.
func appendUS(b []byte, ns int64) []byte {
	return strconv.AppendFloat(b, float64(ns)/1e3, 'f', 3, 64)
}

func (s *ChromeSink) head(b []byte, name string, ph byte, pid, tid int, ts int64) []byte {
	s.pids[pid] = true
	s.tracks[[2]int{pid, tid}] = true
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"cat":"`...)
	b = append(b, trackNames[tid]...)
	b = append(b, `","ph":"`...)
	b = append(b, ph)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = appendUS(b, ts)
	if ph == 'i' {
		b = append(b, `,"s":"t"`...)
	}
	return b
}

func appendArg(b []byte, first bool, key string, v int) []byte {
	if !first {
		b = append(b, ',')
	}
	b = append(b, '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return strconv.AppendInt(b, int64(v), 10)
}

// Emit writes one event. FetchStart/FlushStart instants are dropped —
// the matching completion span carries the same information plus the
// duration — and RegionBegin is covered by the RegionEnd span.
func (s *ChromeSink) Emit(e *Event) {
	b := s.buf[:0]
	switch e.Kind {
	case KindFetch:
		b = s.head(s.sep(b), "page_fetch", 'X', e.Node, trackDSM, int64(e.Start()))
		b = append(b, `,"dur":`...)
		b = appendUS(b, int64(e.Dur))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "page", e.Page)
		b = appendArg(b, false, "home", e.Arg)
	case KindFlush:
		b = s.head(s.sep(b), "diff_flush", 'X', e.Node, trackDSM, int64(e.Start()))
		b = append(b, `,"dur":`...)
		b = appendUS(b, int64(e.Dur))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "pages", e.Arg)
		b = appendArg(b, false, "bundles", e.Arg2)
	case KindHomeMigrate:
		b = s.head(s.sep(b), "home_migrate", 'i', e.Node, trackDSM, int64(e.Time))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "epoch", e.Arg)
		b = appendArg(b, false, "page", e.Page)
		b = appendArg(b, false, "from", e.Arg2)
		b = appendArg(b, false, "to", e.Arg3)
	case KindBarrierDone:
		b = s.head(s.sep(b), "barrier_done", 'i', e.Node, trackSync, int64(e.Time))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "epoch", e.Arg)
		b = appendArg(b, false, "modified", e.Arg2)
	case KindBarrier:
		b = s.head(s.sep(b), "barrier", 'X', e.Node, trackSync, int64(e.Start()))
		b = append(b, `,"dur":`...)
		b = appendUS(b, int64(e.Dur))
		b = append(b, `,"args":{`...)
	case KindLock:
		b = s.head(s.sep(b), "lock_acquire", 'X', e.Node, trackSync, int64(e.Start()))
		b = append(b, `,"dur":`...)
		b = appendUS(b, int64(e.Dur))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "lock", e.Arg)
	case KindLockRelease:
		b = s.head(s.sep(b), "lock_release", 'i', e.Node, trackSync, int64(e.Time))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "lock", e.Arg)
	case KindCollective:
		b = s.head(s.sep(b), e.Cat, 'X', e.Node, trackMPI, int64(e.Start()))
		b = append(b, `,"dur":`...)
		b = appendUS(b, int64(e.Dur))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "bytes", e.Arg)
	case KindRegionEnd:
		b = s.head(s.sep(b), "parallel_region", 'X', e.Node, trackRegion, int64(e.Start()))
		b = append(b, `,"dur":`...)
		b = appendUS(b, int64(e.Dur))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "seq", e.Arg)
	case KindDirective:
		b = s.head(s.sep(b), e.Cat, 'X', e.Node, trackDirective, int64(e.Start()))
		b = append(b, `,"dur":`...)
		b = appendUS(b, int64(e.Dur))
		b = append(b, `,"args":{"site":`...)
		b = strconv.AppendQuote(b, e.Label)
		b = append(b, '}', '}')
		s.buf = b
		s.w.Write(b)
		return
	case KindMsgSend:
		b = s.head(s.sep(b), "send", 'i', e.Node, trackNet, int64(e.Time))
		b = append(b, `,"args":{`...)
		b = appendArg(b, true, "to", e.Arg)
		b = appendArg(b, false, "bytes", e.Arg2)
	default:
		return // FetchStart, FlushStart, RegionBegin: intentionally dropped
	}
	b = append(b, '}', '}')
	s.buf = b
	s.w.Write(b)
}

// Close writes the naming metadata events and the closing framing.
func (s *ChromeSink) Close() error {
	b := s.buf[:0]
	pids := make([]int, 0, len(s.pids))
	for pid := range s.pids {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		b = s.sep(b)
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"args":{"name":"node `...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `"}}`...)
	}
	tracks := make([][2]int, 0, len(s.tracks))
	for tr := range s.tracks {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i][0] != tracks[j][0] {
			return tracks[i][0] < tracks[j][0]
		}
		return tracks[i][1] < tracks[j][1]
	})
	for _, tr := range tracks {
		b = s.sep(b)
		b = append(b, `{"name":"thread_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(tr[0]), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tr[1]), 10)
		b = append(b, `,"args":{"name":`...)
		b = strconv.AppendQuote(b, trackNames[tr[1]])
		b = append(b, `}}`...)
	}
	b = append(b, "\n]}\n"...)
	_, err := s.w.Write(b)
	return err
}
