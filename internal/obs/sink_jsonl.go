package obs

import (
	"io"
	"strconv"
)

// JSONLSink writes one JSON object per line per event. Field order is
// fixed and optional fields are omitted (dur when zero, page when -1,
// cat/label when empty), so output is deterministic and greppable. The
// arg/arg2/arg3 fields are kind-specific; OBSERVABILITY.md tabulates
// their meaning per kind. The line buffer is reused across events, so
// steady-state emission allocates only when a line outgrows it.
type JSONLSink struct {
	w   io.Writer
	buf []byte
}

// NewJSONLSink returns a sink writing JSON Lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, buf: make([]byte, 0, 256)}
}

// Emit writes one event as a JSON line.
func (s *JSONLSink) Emit(e *Event) {
	b := s.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(e.Time), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	if e.Dur != 0 {
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, int64(e.Dur), 10)
	}
	if e.Page >= 0 {
		b = append(b, `,"page":`...)
		b = strconv.AppendInt(b, int64(e.Page), 10)
	}
	b = append(b, `,"arg":`...)
	b = strconv.AppendInt(b, int64(e.Arg), 10)
	b = append(b, `,"arg2":`...)
	b = strconv.AppendInt(b, int64(e.Arg2), 10)
	b = append(b, `,"arg3":`...)
	b = strconv.AppendInt(b, int64(e.Arg3), 10)
	if e.Cat != "" {
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, e.Cat)
	}
	if e.Label != "" {
		b = append(b, `,"label":`...)
		b = strconv.AppendQuote(b, e.Label)
	}
	b = append(b, '}', '\n')
	s.buf = b
	s.w.Write(b)
}

// Close is a no-op; the sink does not own the writer.
func (s *JSONLSink) Close() error { return nil }
