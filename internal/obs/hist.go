package obs

import "math/bits"

// Histogram is a fixed-size log2-bucketed histogram of non-negative
// int64 values (nanoseconds for latencies, bytes for sizes). Bucket i
// counts values v with bits.Len64(v) == i, i.e. bucket 0 holds exactly
// 0, bucket i>0 holds [2^(i-1), 2^i). The bucket array is pre-sized so
// Observe never allocates, which keeps recording legal inside the
// simulator's zero-alloc hot paths.
type Histogram struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets [65]int64
}

// Observe records one value. Negative values are clamped to zero (they
// cannot occur for virtual-time spans, which are monotone, but the clamp
// keeps the bucket index in range for arbitrary callers).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(uint64(v))]++
}

// Merge folds o into h bucket-wise. Histogram contents are sums and
// extrema, so a merge of per-lane shards equals the histogram a single
// loop would have recorded, whatever order the shards are folded in.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return int64(^uint64(0) >> 1)
	}
	return int64(uint64(1)<<uint(i)) - 1
}

// Mean returns the exact mean of the observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1): the upper
// bound of the first bucket whose cumulative count reaches q*Count,
// clamped to the exact observed Max. The log2 scheme bounds the relative
// error by 2x, which is enough to separate "sub-microsecond" from
// "hundreds of microseconds" — the distinctions the paper's figures turn
// on.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q*float64(h.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= target {
			u := BucketUpper(i)
			if u > h.Max {
				u = h.Max
			}
			return u
		}
	}
	return h.Max
}
