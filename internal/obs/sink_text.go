package obs

import (
	"fmt"
	"io"
)

// TextSink renders events as the human-readable line trace. In legacy
// mode (NewLegacyTextSink) it renders exactly the four line shapes the
// old fmt.Fprintf tracer produced, byte for byte, and drops every other
// event — existing golden trace output is unchanged. In full mode
// (NewTextSink) it additionally renders completion spans, locks,
// collectives, regions, and directives.
type TextSink struct {
	w   io.Writer
	all bool
}

// NewLegacyTextSink returns a sink producing byte-identical output to
// the pre-obs Engine.SetTrace text format.
func NewLegacyTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// NewTextSink returns a sink rendering every event kind as text.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w, all: true} }

// Emit renders one event (or drops it, in legacy mode).
func (s *TextSink) Emit(e *Event) {
	switch e.Kind {
	// The four legacy line shapes, shared by both modes. Format strings
	// must stay byte-identical to the old tracer.
	case KindFetchStart:
		kind := "read"
		if e.Arg2 != 0 {
			kind = "write"
		}
		fmt.Fprintf(s.w, "[%12s] node %d: %s fault on page %d, fetching from home %d\n",
			e.Time, e.Node, kind, e.Page, e.Arg)
	case KindFlushStart:
		fmt.Fprintf(s.w, "[%12s] node %d: flush %d dirty pages, %d diff bundles\n",
			e.Time, e.Node, e.Arg, e.Arg2)
	case KindHomeMigrate:
		fmt.Fprintf(s.w, "[%12s] barrier %d: page %d home migrates %d -> %d\n",
			e.Time, e.Arg, e.Page, e.Arg2, e.Arg3)
	case KindBarrierDone:
		fmt.Fprintf(s.w, "[%12s] barrier %d: complete, %d modified pages\n",
			e.Time, e.Arg, e.Arg2)

	// Full-mode-only kinds.
	case KindFetch:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: page %d installed from home %d (%s)\n",
				e.Time, e.Node, e.Page, e.Arg, e.Dur)
		}
	case KindFlush:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: flush complete, %d pages %d bundles (%s)\n",
				e.Time, e.Node, e.Arg, e.Arg2, e.Dur)
		}
	case KindBarrier:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: barrier passed (%s)\n", e.Time, e.Node, e.Dur)
		}
	case KindLock:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: lock %d acquired (%s)\n", e.Time, e.Node, e.Arg, e.Dur)
		}
	case KindLockRelease:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: lock %d released\n", e.Time, e.Node, e.Arg)
		}
	case KindCollective:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: %s %d B (%s)\n", e.Time, e.Node, e.Cat, e.Arg, e.Dur)
		}
	case KindRegionBegin:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] region %d: fork\n", e.Time, e.Arg)
		}
	case KindRegionEnd:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] region %d: join (%s)\n", e.Time, e.Arg, e.Dur)
		}
	case KindDirective:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: %s %q done (%s)\n", e.Time, e.Node, e.Cat, e.Label, e.Dur)
		}
	case KindMsgSend:
		if s.all {
			fmt.Fprintf(s.w, "[%12s] node %d: send %d B to node %d\n", e.Time, e.Node, e.Arg2, e.Arg)
		}
	}
}

// Close is a no-op; the sink does not own the writer.
func (s *TextSink) Close() error { return nil }
