// Package netsim models the cluster interconnect of the ParADE testbed:
// per-node NICs connected through a switch, parameterized by send/receive
// CPU overhead, wire latency, and bandwidth (a LogGP-style model). Two
// fabric presets mirror the paper's hardware: a Giganet cLAN VIA switch
// and a 3Com Fast Ethernet switch driven through TCP/IP.
package netsim

import (
	"fmt"

	"parade/internal/obs"
	"parade/internal/sim"
	"parade/internal/stats"
)

// Fabric holds the performance parameters of an interconnect.
type Fabric struct {
	Name         string
	SendOverhead sim.Duration // CPU time on the sender per message (o_s)
	RecvOverhead sim.Duration // CPU time on the receiver per message (o_r)
	Latency      sim.Duration // one-way wire latency (L)
	BandwidthBps int64        // bytes per second through one NIC (1/G)
	LocalLatency sim.Duration // same-node loopback delivery latency
	HeaderBytes  int          // per-message protocol header on the wire
	// EagerThreshold is the payload size above which the MPI library
	// switches to a rendezvous protocol, modeled as one extra round trip
	// before the payload moves. Zero disables rendezvous.
	EagerThreshold int
}

// VIA approximates the Giganet cLAN Virtual Interface Architecture switch
// used in the paper (user-level networking: low overhead, ~110 MB/s).
func VIA() Fabric {
	return Fabric{
		Name:         "cLAN-VIA",
		SendOverhead: 3 * sim.Microsecond,
		RecvOverhead: 3 * sim.Microsecond,
		Latency:      7 * sim.Microsecond,
		BandwidthBps: 110 << 20,
		LocalLatency: 500 * sim.Nanosecond,
		HeaderBytes:  32,
	}
}

// TCP approximates MPI/Pro over TCP/IP on the 3Com Fast Ethernet switch
// (kernel networking on a 2.4 kernel: high per-message overhead, ~11 MB/s).
func TCP() Fabric {
	return Fabric{
		Name:         "FastEthernet-TCP",
		SendOverhead: 30 * sim.Microsecond,
		RecvOverhead: 30 * sim.Microsecond,
		Latency:      60 * sim.Microsecond,
		BandwidthBps: 11 << 20,
		LocalLatency: 2 * sim.Microsecond,
		HeaderBytes:  64,
		// MPI/Pro-era TCP stacks switched to rendezvous around 16 KiB.
		EagerThreshold: 16 << 10,
	}
}

// FabricByName resolves a fabric preset by its short name: "via" (the
// cLAN VIA switch, the paper's primary testbed) or "tcp" (Fast Ethernet
// through TCP/IP). The full Fabric.Name strings are accepted too.
func FabricByName(name string) (Fabric, error) {
	switch name {
	case "via", VIA().Name:
		return VIA(), nil
	case "tcp", TCP().Name:
		return TCP(), nil
	}
	return Fabric{}, fmt.Errorf("netsim: unknown fabric %q (have via, tcp)", name)
}

// xferTime is the NIC serialization time for a message of size bytes.
func (f Fabric) xferTime(bytes int) sim.Duration {
	total := int64(bytes + f.HeaderBytes)
	return sim.Duration(total * int64(sim.Second) / f.BandwidthBps)
}

// Kind demultiplexes messages at the receiving communication thread.
type Kind int

const (
	// KindMPI carries application-level MPI traffic (matched by tag).
	KindMPI Kind = iota
	// KindDSM carries SDSM protocol control traffic (dispatched to the
	// protocol engine's handler).
	KindDSM
)

// Message is one unit of traffic. Payload stays in host memory (the whole
// cluster is one Go process); Bytes is the modeled on-wire payload size.
type Message struct {
	From, To int
	Kind     Kind
	Tag      int
	Type     int // protocol-specific subtype for KindDSM
	Bytes    int
	Payload  any
}

// Network connects n nodes through a full-crossbar switch with per-NIC
// serialization: concurrent sends from the same node queue behind each
// other, while different senders proceed in parallel.
type Network struct {
	sim      *sim.Simulator
	fabric   Fabric
	cpus     []*sim.CPU
	inbox    []*sim.Queue[*Message]
	nicFree  []sim.Time // next instant each node's send NIC is idle
	counters *stats.Sharded
	freeDel  [][]*delivery // pooled arrival events, one free list per node
	rec      *obs.Recorder
	fault    *FaultPlane // nil: ideal fabric, original Send path
	rel      *relState   // reliability sublayer state (set with fault)
	hetero   *Hetero     // nil: uniform cluster (hetero.go)

	// Crash-stop state (crash.go); down is allocated with the fault plane.
	down        []bool
	onPeerDown  func(observer, dead int)
	peerDownErr *PeerDownError
}

// SetRecorder attaches an observability recorder for per-node traffic
// accounting (nil detaches).
func (n *Network) SetRecorder(r *obs.Recorder) { n.rec = r }

// delivery is a pooled message-arrival event: the closure is created
// once per pooled object (bound to the delivery itself), so the
// steady-state Send path schedules arrivals without allocating. Free
// lists are per node: a delivery is acquired from the sender's list and
// recycled into the destination's, so each list is only ever touched by
// its own lane and objects migrate between lanes strictly through the
// window-barrier merge (which establishes the happens-before edge).
type delivery struct {
	net *Network
	dst *sim.Queue[*Message]
	m   *Message
	to  int // recycle target: the node (lane) the arrival fires on
	fn  func()
}

// deliverAt schedules m to be pushed onto dst after d of virtual time.
// from and to are the sending and firing nodes, routing the event
// through the lane kernel's cross-lane staging when lanes are active.
func (n *Network) deliverAt(from, to int, d sim.Duration, dst *sim.Queue[*Message], m *Message) {
	var del *delivery
	pool := n.freeDel[from]
	if k := len(pool) - 1; k >= 0 {
		del = pool[k]
		pool[k] = nil
		n.freeDel[from] = pool[:k]
	} else {
		del = &delivery{net: n}
		del.fn = del.fire
	}
	del.dst, del.m, del.to = dst, m, to
	n.sim.AtFrom(from, to, d, del.fn)
}

// fire runs as the arrival event: recycle first, then push (a Push may
// wake a consumer whose next Send wants a delivery from the pool).
func (del *delivery) fire() {
	dst, m, to := del.dst, del.m, del.to
	del.dst, del.m = nil, nil
	del.net.freeDel[to] = append(del.net.freeDel[to], del)
	dst.Push(m)
}

// New creates a network over the given per-node CPU pools. Send charges
// the fabric's send overhead to the sender's CPU pool, so cpus[i] must be
// node i's pool.
func New(s *sim.Simulator, nodes int, fabric Fabric, cpus []*sim.CPU, c *stats.Counters) *Network {
	if len(cpus) != nodes {
		panic(fmt.Sprintf("netsim: %d cpu pools for %d nodes", len(cpus), nodes))
	}
	n := &Network{
		sim:      s,
		fabric:   fabric,
		cpus:     cpus,
		inbox:    make([]*sim.Queue[*Message], nodes),
		nicFree:  make([]sim.Time, nodes),
		counters: stats.NewSharded(c),
		freeDel:  make([][]*delivery, nodes),
	}
	for i := range n.inbox {
		n.inbox[i] = sim.NewQueue[*Message](s)
	}
	if s.Lanes() > 0 && !s.Relaxed() {
		n.counters.EnableShards(nodes)
	}
	return n
}

// FoldCounters folds the per-node counter shards (if any) into the
// shared aggregate. The runtime calls it once after the simulation.
func (n *Network) FoldCounters() { n.counters.Fold() }

// Nodes returns the number of attached nodes.
func (n *Network) Nodes() int { return len(n.inbox) }

// Fabric returns the fabric parameters in use.
func (n *Network) Fabric() Fabric { return n.fabric }

// Inbox returns node i's receive mailbox. The node's communication
// thread pops messages from it and pays RecvOverhead per message.
func (n *Network) Inbox(node int) *sim.Queue[*Message] { return n.inbox[node] }

// Send transmits m from p's context: the caller burns the send overhead
// on its node's CPU, then the message serializes through the sender NIC
// and is delivered to the destination inbox after the wire latency.
// Same-node messages bypass the NIC and arrive after LocalLatency.
func (n *Network) Send(p *sim.Proc, m *Message) {
	if m.To < 0 || m.To >= len(n.inbox) {
		panic(fmt.Sprintf("netsim: send to node %d of %d", m.To, len(n.inbox)))
	}
	dst := n.inbox[m.To]
	if m.From == m.To {
		n.counters.At(m.From).LocalDeliver++
		n.rec.LocalDelivered(m.From)
		n.deliverAt(m.From, m.To, n.fabric.LocalLatency, dst, m)
		return
	}
	if n.fault != nil {
		n.sendReliable(p, m)
		return
	}
	n.cpus[m.From].Compute(p, n.fabric.SendOverhead)
	c := n.counters.At(m.From)
	c.Messages++
	c.Bytes += int64(m.Bytes + n.fabric.HeaderBytes)
	now := p.Now()
	if n.rec != nil {
		n.rec.MsgSent(now, m.From, m.To, m.Bytes+n.fabric.HeaderBytes, int(m.Kind))
	}
	start := now
	if n.nicFree[m.From] > start {
		start = n.nicFree[m.From]
	}
	xfer := n.fabric.xferTime(m.Bytes)
	n.nicFree[m.From] = start + sim.Time(xfer)
	arrive := start + sim.Time(xfer) + sim.Time(n.fabric.Latency)
	if n.fabric.EagerThreshold > 0 && m.Bytes > n.fabric.EagerThreshold {
		// Rendezvous: an RTS/CTS handshake precedes the payload.
		arrive += sim.Time(2 * n.fabric.Latency)
	}
	n.deliverAt(m.From, m.To, sim.Duration(arrive-now), dst, m)
}

// RecvCost charges the per-message receive overhead to node's CPU from
// p's context, scaled by the node's straggler and heterogeneity factors.
// Communication threads call this once per popped message.
func (n *Network) RecvCost(p *sim.Proc, node int) {
	n.cpus[node].Compute(p, n.hetero.Scale(node, n.fault.scale(node, n.fabric.RecvOverhead)))
}
