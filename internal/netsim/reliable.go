// Reliability sublayer: per-link sequencing, cumulative acks,
// timeout-driven retransmission with capped exponential backoff, and
// duplicate suppression. It sits between Send and the destination inbox,
// below the MPI library and the HLRC protocol engine — neither ever sees
// a sequence number, an ack frame, or a duplicate, so protocol semantics
// are untouched while the wire underneath drops, duplicates, and
// reorders frames.
//
// Data frames ride the modeled NIC (serialization time, per-NIC
// queueing, rendezvous) exactly like the fault-free path; ack frames ride
// a prioritized control channel modeled as latency-only. Because the
// simulator knows a frame's exact arrival instant at send time, the
// retransmit timer is armed at (modeled arrival + worst-case injected
// hold + ack return + slack): with no loss the ack always lands first,
// so a zero-fault profile provably causes zero retransmissions.
//
// The sublayer is active only while a FaultPlane is attached. Everything
// here runs on the simulation kernel's single runnable goroutine, so the
// link state needs no locking.
package netsim

import (
	"parade/internal/sim"
)

// ackWireBytes is the modeled size of an ack control frame.
const ackWireBytes = 16

// pendingFrame is one unacknowledged data frame on a sender link.
type pendingFrame struct {
	m         *Message
	seq       int64
	attempts  int // retransmissions so far
	firstSent sim.Time
	epoch     int // link epoch at first send (stale after a link reset)
}

// relLink is the reliability state of one directed link. Both endpoints'
// state lives in the same struct: the whole cluster is one process.
type relLink struct {
	// Sender side.
	nextSeq int64
	pending map[int64]*pendingFrame
	// Receiver side.
	expected int64              // next in-order sequence number
	buffer   map[int64]*Message // out-of-order arrivals awaiting the gap
	// epoch increments on every link reset (node restart/shrink); timer
	// and arrival closures carry the epoch they were armed under and
	// no-op when it no longer matches.
	epoch int
}

// relState holds the per-link reliability state, indexed from*nodes+to.
type relState struct {
	nodes int
	links []relLink
}

func newRelState(nodes int) *relState {
	return &relState{nodes: nodes, links: make([]relLink, nodes*nodes)}
}

// link initializes both sides of a directed link. Only safe where the
// kernel is serialized (setup, serial crash/restart events, tests):
// under event lanes the sender and receiver sides of one link belong to
// different lanes, so the running paths use sendSide / recvSide, each of
// which lazily initializes only the map its own lane owns.
func (r *relState) link(from, to int) *relLink {
	lk := &r.links[from*r.nodes+to]
	if lk.pending == nil {
		lk.pending = map[int64]*pendingFrame{}
	}
	if lk.buffer == nil {
		lk.buffer = map[int64]*Message{}
	}
	return lk
}

// sendSide returns the link with its sender-side state initialized.
// Call only from node from's context.
func (r *relState) sendSide(from, to int) *relLink {
	lk := &r.links[from*r.nodes+to]
	if lk.pending == nil {
		lk.pending = map[int64]*pendingFrame{}
	}
	return lk
}

// recvSide returns the link with its receiver-side state initialized.
// Call only from node to's context.
func (r *relState) recvSide(from, to int) *relLink {
	lk := &r.links[from*r.nodes+to]
	if lk.buffer == nil {
		lk.buffer = map[int64]*Message{}
	}
	return lk
}

// sendReliable is Send's body when a fault plane is attached: sequence
// the message, track it for retransmission, and put the first copy on
// the wire. The caller-visible accounting (CPU overhead, traffic
// counters, observability) matches the fault-free path.
func (n *Network) sendReliable(p *sim.Proc, m *Message) {
	n.cpus[m.From].Compute(p, n.fault.scale(m.From, n.fabric.SendOverhead))
	c := n.counters.At(m.From)
	c.Messages++
	c.Bytes += int64(m.Bytes + n.fabric.HeaderBytes)
	if n.rec != nil {
		n.rec.MsgSent(p.Now(), m.From, m.To, m.Bytes+n.fabric.HeaderBytes, int(m.Kind))
	}
	lk := n.rel.sendSide(m.From, m.To)
	pf := &pendingFrame{m: m, seq: lk.nextSeq, firstSent: p.Now(), epoch: lk.epoch}
	lk.nextSeq++
	lk.pending[pf.seq] = pf
	n.transmitFrame(pf)
}

// transmitFrame puts one attempt of a data frame on the wire: NIC
// serialization and queueing as in the reliable path, then the fault
// plane decides loss, duplication, and extra delay. It runs in process
// context for first sends and in timer (event) context for
// retransmissions — it must not block, and it charges no CPU beyond the
// overhead already paid at Send.
func (n *Network) transmitFrame(pf *pendingFrame) {
	m := pf.m
	from, to := m.From, m.To
	if n.down != nil && n.down[from] {
		return // a dead node puts nothing on the wire
	}
	fp := n.fault
	now := n.sim.NowOn(from)
	c := n.counters.At(from)
	if pf.attempts > 0 {
		// Retransmitted frames are real wire traffic.
		c.Messages++
		c.Bytes += int64(m.Bytes + n.fabric.HeaderBytes)
	}
	start := now
	if n.nicFree[from] > start {
		start = n.nicFree[from]
	}
	xfer := fp.scale(from, n.fabric.xferTime(m.Bytes))
	n.nicFree[from] = start + sim.Time(xfer)
	arrive := start + sim.Time(xfer) + sim.Time(n.fabric.Latency)
	if n.fabric.EagerThreshold > 0 && m.Bytes > n.fabric.EagerThreshold {
		arrive += sim.Time(2 * n.fabric.Latency)
	}

	lf := fp.faultsFor(from, to)
	// The reorder unit is one frame's own wire time: a held frame can be
	// overtaken by up to ReorderWindow back-to-back successors.
	frameTime := xfer + n.fabric.Latency
	maxHold := sim.Duration(lf.ReorderWindow) * frameTime
	seq, ep := pf.seq, pf.epoch
	rng := fp.rngAt(from)
	dropped := lf.DropProb > 0 && rng.Float64() < lf.DropProb
	if dropped {
		c.InjectedDrops++
	} else {
		var hold sim.Duration
		if lf.ReorderProb > 0 && maxHold > 0 && rng.Float64() < lf.ReorderProb {
			hold = sim.Duration(rng.Int63n(int64(maxHold) + 1))
			c.InjectedDelays++
		}
		n.sim.AtFrom(from, to, sim.Duration(arrive-now)+hold, func() { n.arriveData(from, to, seq, ep, m) })
		if lf.DupProb > 0 && rng.Float64() < lf.DupProb {
			c.InjectedDups++
			n.sim.AtFrom(from, to, sim.Duration(arrive-now)+hold+frameTime, func() { n.arriveData(from, to, seq, ep, m) })
		}
	}

	// Arm the loss detector. The modeled arrival is exact (the simulator
	// just computed it), so the timeout only needs to cover the
	// worst-case injected hold, the ack's return trip, and a slack that
	// doubles per attempt up to the cap.
	slack := fp.prof.RTOSlack
	if slack == 0 {
		slack = 4*n.fabric.Latency + 10*sim.Microsecond
	}
	for i := 0; i < pf.attempts && slack < fp.prof.RTOCap; i++ {
		slack *= 2
	}
	if slack > fp.prof.RTOCap {
		slack = fp.prof.RTOCap
	}
	timeout := sim.Duration(arrive-now) + maxHold + n.ackReturnTime() + slack
	n.sim.AtFrom(from, from, timeout, func() { n.frameTimeout(from, to, seq, ep) })
}

// ackReturnTime is the modeled latency of an ack control frame.
func (n *Network) ackReturnTime() sim.Duration {
	return n.fabric.Latency + n.fabric.xferTime(ackWireBytes)
}

// frameTimeout fires when a data frame's ack deadline passes. A frame
// acked in the meantime left the pending map and the timer is stale, as
// is a timer from before a link reset (epoch mismatch). A crashed
// sender's timers freeze: a dead node does not retransmit.
func (n *Network) frameTimeout(from, to int, seq int64, ep int) {
	lk := n.rel.sendSide(from, to)
	if lk.epoch != ep {
		return
	}
	if n.down != nil && n.down[from] {
		return
	}
	pf := lk.pending[seq]
	if pf == nil {
		return
	}
	pf.attempts++
	n.counters.At(from).Timeouts++
	n.rec.Timeout(from)
	if pf.attempts > n.fault.prof.MaxAttempts {
		// Retry budget exhausted: declare the peer dead instead of
		// retransmitting forever (or panicking, as before crash support).
		n.peerDown(from, to, pf.attempts)
		return
	}
	n.counters.At(from).Retransmits++
	n.rec.Retransmit(from)
	n.transmitFrame(pf)
}

// arriveData handles one data-frame arrival at the receiving NIC:
// suppress duplicates, restore per-link order, release in-order messages
// to the inbox, and acknowledge cumulatively. Frames addressed to a
// crashed node, or arriving from before a link reset, evaporate.
func (n *Network) arriveData(from, to int, seq int64, ep int, m *Message) {
	lk := n.rel.recvSide(from, to)
	if lk.epoch != ep {
		return
	}
	if n.down != nil && n.down[to] {
		return
	}
	if seq < lk.expected || lk.buffer[seq] != nil {
		// A late original after a retransmit already delivered, or an
		// injected duplicate. Re-ack so the sender stops resending.
		n.counters.At(to).DupsSuppressed++
		n.rec.DupSuppressed(to)
		n.sendAck(from, to)
		return
	}
	lk.buffer[seq] = m
	for {
		next, ok := lk.buffer[lk.expected]
		if !ok {
			break
		}
		delete(lk.buffer, lk.expected)
		lk.expected++
		n.inbox[to].Push(next)
	}
	n.sendAck(from, to)
}

// sendAck returns a cumulative ack for link from->to (all sequence
// numbers below the receiver's expected counter). Acks ride the
// prioritized control channel (latency-only, no NIC queueing) and are
// themselves subject to loss on the reverse link — a lost ack is
// recovered by the data-frame timeout and the receiver's re-ack.
func (n *Network) sendAck(from, to int) {
	lk := n.rel.recvSide(from, to)
	acked := lk.expected - 1
	n.counters.At(to).AcksSent++
	n.rec.AckSent(to)
	rev := n.fault.faultsFor(to, from)
	if rev.DropProb > 0 && n.fault.rngAt(to).Float64() < rev.DropProb {
		n.counters.At(to).InjectedDrops++
		return
	}
	ep := lk.epoch
	n.sim.AtFrom(to, from, n.ackReturnTime(), func() { n.arriveAck(from, to, acked, ep) })
}

// arriveAck clears every pending frame the cumulative ack covers and
// records the first-send-to-ack latency of frames that needed a
// retransmission. Acks from before a link reset are stale.
func (n *Network) arriveAck(from, to int, acked int64, ep int) {
	lk := n.rel.sendSide(from, to)
	if lk.epoch != ep {
		return
	}
	now := n.sim.NowOn(from)
	for seq, pf := range lk.pending {
		if seq > acked {
			continue
		}
		if pf.attempts > 0 {
			n.rec.RetrySettled(pf.firstSent, now, from)
		}
		delete(lk.pending, seq)
	}
}

// InFlight reports the number of unacknowledged data frames across every
// link (0 once all traffic settled; used by tests).
func (n *Network) InFlight() int {
	if n.rel == nil {
		return 0
	}
	total := 0
	for i := range n.rel.links {
		total += len(n.rel.links[i].pending)
	}
	return total
}
