// Fault plane: deterministic injection of message loss, duplication,
// delay jitter, and per-node straggler slowdown into the simulated
// fabric. The plane is driven by its own seeded random source and by the
// virtual clock only, so a chaos run with a fixed (Config.Seed, profile
// Seed) pair is fully reproducible — every drop happens at the same
// virtual instant on every execution.
//
// Attaching a fault plane also arms the reliability sublayer
// (reliable.go): every inter-node message is sequenced, acknowledged,
// retransmitted on timeout, and delivered to the destination inbox
// exactly once and in per-link order, so the MPI library and the HLRC
// protocol above see an interface indistinguishable from the reliable
// fabric — only the timing changes. With no plane attached (the
// default), Send takes the original path untouched: virtual times and
// traces are byte-identical to a build without the fault plane.
package netsim

import (
	"fmt"
	"math/rand"

	"parade/internal/sim"
)

// LinkFaults configures injection on one directed link (or, as
// Profile.Default, on every link).
type LinkFaults struct {
	// DropProb is the probability a data or ack frame is lost on the wire.
	DropProb float64
	// DupProb is the probability a data frame is delivered twice.
	DupProb float64
	// ReorderProb is the probability a data frame is held back by a
	// random extra delay, letting up to ReorderWindow later frames
	// overtake it.
	ReorderProb float64
	// ReorderWindow bounds the extra delay in frames-worth of wire time
	// (serialization + latency of the delayed frame itself).
	ReorderWindow int
}

// Zero reports whether the link injects nothing.
func (lf LinkFaults) Zero() bool {
	return lf.DropProb == 0 && lf.DupProb == 0 && lf.ReorderProb == 0
}

// Profile is one named chaos scenario: the default per-link faults, an
// optional straggler node, and the retransmit-timer tuning.
type Profile struct {
	Name string
	// Seed drives the plane's private random source (independent of the
	// simulator seed, so the same traffic pattern can be replayed under
	// different fault sequences and vice versa).
	Seed int64
	// Default applies to every directed link without an override.
	Default LinkFaults
	// StragglerNode, when >= 0, scales that node's send overhead, NIC
	// serialization, and receive overhead by StragglerFactor.
	StragglerNode   int
	StragglerFactor float64
	// RTOSlack is the grace period added to the modeled round-trip
	// estimate before a frame is declared lost; it doubles per attempt.
	// Zero selects a fabric-derived default.
	RTOSlack sim.Duration
	// RTOCap bounds the exponential backoff. Zero selects a default.
	RTOCap sim.Duration
	// MaxAttempts bounds retransmissions per frame before the run panics
	// (a lost-cause guard against DropProb ~ 1). Zero means 64.
	MaxAttempts int
}

// WithDefaults fills zero tuning fields.
func (p Profile) WithDefaults() Profile {
	if p.StragglerFactor == 0 {
		p.StragglerFactor = 1
	}
	if p.StragglerNode == 0 && p.StragglerFactor == 1 {
		p.StragglerNode = -1
	}
	if p.RTOCap == 0 {
		p.RTOCap = 100 * sim.Millisecond
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 64
	}
	return p
}

// Built-in fault profiles. Every profile keeps at least a small drop
// rate so each chaos run exercises the full loss-detection path
// (timeout, retransmit, duplicate suppression of the late original).

// ProfileDrop loses 5% of frames.
func ProfileDrop(seed int64) Profile {
	return Profile{Name: "drop", Seed: seed,
		Default: LinkFaults{DropProb: 0.05}}.WithDefaults()
}

// ProfileDup duplicates 2% of data frames and loses 1%.
func ProfileDup(seed int64) Profile {
	return Profile{Name: "dup", Seed: seed,
		Default: LinkFaults{DropProb: 0.01, DupProb: 0.02}}.WithDefaults()
}

// ProfileReorder delays 25% of data frames by up to 4 frames-worth of
// wire time and loses 1%.
func ProfileReorder(seed int64) Profile {
	return Profile{Name: "reorder", Seed: seed,
		Default: LinkFaults{DropProb: 0.01, ReorderProb: 0.25, ReorderWindow: 4}}.WithDefaults()
}

// ProfileStraggler slows node 1 down 4x and loses 1% of frames.
func ProfileStraggler(seed int64) Profile {
	p := Profile{Name: "straggler", Seed: seed,
		Default:       LinkFaults{DropProb: 0.01},
		StragglerNode: 1, StragglerFactor: 4}
	return p.WithDefaults()
}

// ProfileChaos combines every fault class within the built-in limits:
// 3% drop, 2% dup, 20% reorder over a 4-frame window, node 1 at 4x.
func ProfileChaos(seed int64) Profile {
	p := Profile{Name: "chaos", Seed: seed,
		Default:       LinkFaults{DropProb: 0.03, DupProb: 0.02, ReorderProb: 0.20, ReorderWindow: 4},
		StragglerNode: 1, StragglerFactor: 4}
	return p.WithDefaults()
}

// ProfileCrashOnly injects no link faults at all: it exists to arm the
// reliability sublayer (whose retry exhaustion is the crash detector)
// for runs whose only injected fault is a node crash. The tight retry
// budget keeps detection latency in the low-millisecond virtual range.
// It is deliberately NOT in Profiles(): the chaos matrix asserts every
// registered profile provokes at least one retransmission, which a
// zero-fault plane by design never does.
func ProfileCrashOnly(seed int64) Profile {
	return Profile{Name: "crash-only", Seed: seed,
		RTOCap: 200 * sim.Microsecond, MaxAttempts: 8}.WithDefaults()
}

// Profiles returns every built-in profile seeded from seed.
func Profiles(seed int64) []Profile {
	return []Profile{
		ProfileDrop(seed),
		ProfileDup(seed),
		ProfileReorder(seed),
		ProfileStraggler(seed),
		ProfileChaos(seed),
	}
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string, seed int64) (Profile, error) {
	for _, p := range Profiles(seed) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("netsim: unknown fault profile %q (have drop, dup, reorder, straggler, chaos)", name)
}

// FaultPlane is the attached injection state of one Network.
//
// Injection draws come from per-node random streams, each seeded from
// the profile seed by a splitmix64 step. A node's draws therefore depend
// only on its own deterministic event sequence — never on how lanes
// interleave on the host — so a chaos run injects the identical fault
// schedule at lanes=1 and lanes=N.
type FaultPlane struct {
	prof  Profile
	rngs  []*rand.Rand          // per-node injection streams
	links map[[2]int]LinkFaults // per-link overrides
}

// mixSeed derives node's private stream seed from the profile seed
// (one splitmix64 step over seed+node: decorrelates adjacent nodes).
func mixSeed(seed int64, node int) int64 {
	z := uint64(seed) + uint64(node+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// rngAt returns node's injection stream. Lane-confined: call only from
// node's own context.
func (fp *FaultPlane) rngAt(node int) *rand.Rand { return fp.rngs[node] }

// EnableFaults attaches a fault plane (and with it the reliability
// sublayer) to the network. It must be called before any Send.
func (n *Network) EnableFaults(prof Profile) *FaultPlane {
	prof = prof.WithDefaults()
	fp := &FaultPlane{
		prof: prof,
		rngs: make([]*rand.Rand, len(n.inbox)),
	}
	for i := range fp.rngs {
		fp.rngs[i] = rand.New(rand.NewSource(mixSeed(prof.Seed, i)))
	}
	n.fault = fp
	n.rel = newRelState(len(n.inbox))
	n.down = make([]bool, len(n.inbox))
	return fp
}

// FaultPlane returns the attached plane (nil when injection is off).
func (n *Network) FaultPlane() *FaultPlane { return n.fault }

// SetLink overrides the fault configuration of the directed link
// from -> to (Profile.Default applies to every other link).
func (fp *FaultPlane) SetLink(from, to int, lf LinkFaults) {
	if fp.links == nil {
		fp.links = map[[2]int]LinkFaults{}
	}
	fp.links[[2]int{from, to}] = lf
}

// Profile returns the plane's (defaulted) profile.
func (fp *FaultPlane) Profile() Profile { return fp.prof }

// faultsFor resolves the injection config of one directed link.
func (fp *FaultPlane) faultsFor(from, to int) LinkFaults {
	if lf, ok := fp.links[[2]int{from, to}]; ok {
		return lf
	}
	return fp.prof.Default
}

// scale applies the straggler slowdown to a duration charged to node.
func (fp *FaultPlane) scale(node int, d sim.Duration) sim.Duration {
	if fp == nil || node != fp.prof.StragglerNode || fp.prof.StragglerFactor == 1 {
		return d
	}
	return sim.Duration(float64(d) * fp.prof.StragglerFactor)
}
