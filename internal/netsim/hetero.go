package netsim

import (
	"fmt"

	"parade/internal/sim"
)

// Heterogeneous cluster profiles: a static per-node speed multiplier,
// modeling clusters whose nodes are not interchangeable (mixed
// generations, or a big host plus small accelerator nodes — the shape
// the cluster-as-device offload papers assume). Unlike the fault
// plane's straggler — a single anomalous node under a chaos profile —
// a Hetero profile is part of the machine description: deterministic,
// permanent, and identical across runs, so the sweep matrices can hold
// it fixed while varying fault and crash schedules.

// Hetero is a per-node compute-speed profile: durations charged to node
// i are multiplied by Factors[i]. A factor above 1 makes the node
// slower. A nil *Hetero (or a node beyond the slice) scales by 1, so
// the zero configuration is the uniform cluster.
type Hetero struct {
	// Factors holds one multiplier per node; entries must be positive.
	Factors []float64
}

// Scale applies node's speed factor to d. Safe on a nil receiver.
func (h *Hetero) Scale(node int, d sim.Duration) sim.Duration {
	if h == nil || node >= len(h.Factors) {
		return d
	}
	f := h.Factors[node]
	if f == 1 {
		return d
	}
	return sim.Duration(float64(d) * f)
}

// Validate checks that every factor is positive.
func (h *Hetero) Validate() error {
	if h == nil {
		return nil
	}
	for i, f := range h.Factors {
		if f <= 0 {
			return fmt.Errorf("netsim: hetero factor %g for node %d (must be > 0)", f, i)
		}
	}
	return nil
}

// HeteroByName builds one of the named heterogeneity profiles for a
// cluster of the given size — the vocabulary the fleet JobSpec and the
// harness flags share. "" and "uniform" mean no profile (nil);
// "fasthalf" makes the second half of the nodes 2x slower than the
// first; "slow1" makes node 1 4x slower than the rest. Unknown names
// are an error.
func HeteroByName(name string, nodes int) (*Hetero, error) {
	switch name {
	case "", "uniform":
		return nil, nil
	case "fasthalf":
		f := make([]float64, nodes)
		for i := range f {
			if i < nodes/2 {
				f[i] = 1
			} else {
				f[i] = 2
			}
		}
		return &Hetero{Factors: f}, nil
	case "slow1":
		f := make([]float64, nodes)
		for i := range f {
			f[i] = 1
		}
		if nodes > 1 {
			f[1] = 4
		}
		return &Hetero{Factors: f}, nil
	default:
		return nil, fmt.Errorf("netsim: unknown hetero profile %q (want uniform, fasthalf or slow1)", name)
	}
}

// EnableHetero attaches a heterogeneity profile to the network: message
// receive processing on a slow node takes proportionally longer. Call
// before the simulation starts; a nil profile is the uniform cluster.
func (n *Network) EnableHetero(h *Hetero) {
	n.hetero = h
}

// Hetero returns the attached heterogeneity profile (nil when uniform).
func (n *Network) Hetero() *Hetero { return n.hetero }
