package netsim

import (
	"reflect"
	"testing"

	"parade/internal/sim"
)

func TestHeteroScale(t *testing.T) {
	h := &Hetero{Factors: []float64{1, 2, 0.5}}
	cases := []struct {
		name string
		h    *Hetero
		node int
		d    sim.Duration
		want sim.Duration
	}{
		{"nil receiver", nil, 0, 1000, 1000},
		{"unit factor", h, 0, 1000, 1000},
		{"slow node", h, 1, 1000, 2000},
		{"fast node", h, 2, 1000, 500},
		{"node beyond slice", h, 7, 1000, 1000},
	}
	for _, c := range cases {
		if got := c.h.Scale(c.node, c.d); got != c.want {
			t.Errorf("%s: Scale(%d, %d) = %d, want %d", c.name, c.node, c.d, got, c.want)
		}
	}
}

func TestHeteroValidate(t *testing.T) {
	var nilH *Hetero
	if err := nilH.Validate(); err != nil {
		t.Errorf("nil profile: %v", err)
	}
	if err := (&Hetero{Factors: []float64{1, 2, 0.25}}).Validate(); err != nil {
		t.Errorf("positive factors: %v", err)
	}
	if err := (&Hetero{Factors: []float64{1, 0}}).Validate(); err == nil {
		t.Error("zero factor accepted")
	}
	if err := (&Hetero{Factors: []float64{-1}}).Validate(); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestHeteroByName(t *testing.T) {
	for _, name := range []string{"", "uniform"} {
		h, err := HeteroByName(name, 4)
		if err != nil || h != nil {
			t.Errorf("HeteroByName(%q) = %v, %v; want nil, nil", name, h, err)
		}
	}

	fh, err := HeteroByName("fasthalf", 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1, 1, 2, 2}; !reflect.DeepEqual(fh.Factors, want) {
		t.Errorf("fasthalf(4) = %v, want %v", fh.Factors, want)
	}
	if err := fh.Validate(); err != nil {
		t.Errorf("fasthalf invalid: %v", err)
	}

	s1, err := HeteroByName("slow1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1, 4, 1, 1}; !reflect.DeepEqual(s1.Factors, want) {
		t.Errorf("slow1(4) = %v, want %v", s1.Factors, want)
	}

	// A one-node cluster has no node 1 to slow down.
	s1, err = HeteroByName("slow1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1}; !reflect.DeepEqual(s1.Factors, want) {
		t.Errorf("slow1(1) = %v, want %v", s1.Factors, want)
	}

	if _, err := HeteroByName("bogus", 4); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestNetworkEnableHetero(t *testing.T) {
	_, n, _ := newNet(t, 2, VIA())
	if n.Hetero() != nil {
		t.Fatal("fresh network should be uniform")
	}
	h := &Hetero{Factors: []float64{1, 2}}
	n.EnableHetero(h)
	if n.Hetero() != h {
		t.Fatal("profile not attached")
	}
	n.EnableHetero(nil)
	if n.Hetero() != nil {
		t.Fatal("profile not detached")
	}
}
