package netsim

import (
	"testing"

	"parade/internal/sim"
	"parade/internal/stats"
)

func newNet(t *testing.T, nodes int, f Fabric) (*sim.Simulator, *Network, *stats.Counters) {
	t.Helper()
	s := sim.New(1)
	cpus := make([]*sim.CPU, nodes)
	for i := range cpus {
		cpus[i] = sim.NewCPU(s, 2, 0)
	}
	c := &stats.Counters{}
	return s, New(s, nodes, f, cpus, c), c
}

func TestPointToPointLatency(t *testing.T) {
	f := VIA()
	s, net, c := newNet(t, 2, f)
	var arrived sim.Time
	s.Spawn("recv", func(p *sim.Proc) {
		net.Inbox(1).Pop(p)
		arrived = p.Now()
	})
	s.Spawn("send", func(p *sim.Proc) {
		net.Send(p, &Message{From: 0, To: 1, Bytes: 0})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(f.SendOverhead + f.xferTime(0) + f.Latency)
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
	if c.Messages != 1 {
		t.Fatalf("Messages=%d", c.Messages)
	}
}

func TestBandwidthDominatesLargeMessages(t *testing.T) {
	f := TCP()
	s, net, _ := newNet(t, 2, f)
	const bytes = 1 << 20
	var arrived sim.Time
	s.Spawn("recv", func(p *sim.Proc) {
		net.Inbox(1).Pop(p)
		arrived = p.Now()
	})
	s.Spawn("send", func(p *sim.Proc) {
		net.Send(p, &Message{From: 0, To: 1, Bytes: bytes})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 MiB at 11 MiB/s is ~95 ms; latency and overhead are microseconds.
	if arrived < sim.Time(90*sim.Millisecond) || arrived > sim.Time(100*sim.Millisecond) {
		t.Fatalf("1MiB over TCP arrived at %v, want ~95ms", arrived)
	}
}

func TestNICSerializesBackToBackSends(t *testing.T) {
	f := VIA()
	s, net, _ := newNet(t, 3, f)
	const bytes = 1 << 16
	var t1, t2 sim.Time
	s.Spawn("r1", func(p *sim.Proc) { net.Inbox(1).Pop(p); t1 = p.Now() })
	s.Spawn("r2", func(p *sim.Proc) { net.Inbox(2).Pop(p); t2 = p.Now() })
	s.Spawn("send", func(p *sim.Proc) {
		net.Send(p, &Message{From: 0, To: 1, Bytes: bytes})
		net.Send(p, &Message{From: 0, To: 2, Bytes: bytes})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	gap := t2 - t1
	xfer := sim.Time(f.xferTime(bytes))
	// The second message must wait for the first transfer to finish on the
	// shared NIC (minus the second send overhead that overlaps it).
	if gap < xfer/2 {
		t.Fatalf("sends not serialized: t1=%v t2=%v xfer=%v", t1, t2, xfer)
	}
}

func TestDistinctSendersProceedInParallel(t *testing.T) {
	f := VIA()
	s, net, _ := newNet(t, 3, f)
	const bytes = 1 << 16
	var t1, t2 sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		net.Inbox(2).Pop(p)
		t1 = p.Now()
		net.Inbox(2).Pop(p)
		t2 = p.Now()
	})
	s.Spawn("s0", func(p *sim.Proc) { net.Send(p, &Message{From: 0, To: 2, Bytes: bytes}) })
	s.Spawn("s1", func(p *sim.Proc) { net.Send(p, &Message{From: 1, To: 2, Bytes: bytes}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("parallel sends arrived at %v and %v, want same instant", t1, t2)
	}
}

func TestLocalDeliveryBypassesNIC(t *testing.T) {
	f := VIA()
	s, net, c := newNet(t, 2, f)
	var arrived sim.Time
	s.Spawn("node0", func(p *sim.Proc) {
		net.Send(p, &Message{From: 0, To: 0, Bytes: 4096})
		got := net.Inbox(0).Pop(p)
		arrived = p.Now()
		if got.Bytes != 4096 {
			t.Errorf("payload bytes %d", got.Bytes)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != sim.Time(f.LocalLatency) {
		t.Fatalf("local delivery at %v, want %v", arrived, f.LocalLatency)
	}
	if c.Messages != 0 || c.LocalDeliver != 1 {
		t.Fatalf("counters: %s", c.String())
	}
}

func TestVIAFasterThanTCP(t *testing.T) {
	measure := func(f Fabric) sim.Time {
		s, net, _ := newNet(t, 2, f)
		s.Spawn("recv", func(p *sim.Proc) { net.Inbox(1).Pop(p) })
		s.Spawn("send", func(p *sim.Proc) {
			net.Send(p, &Message{From: 0, To: 1, Bytes: 4096})
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	via, tcp := measure(VIA()), measure(TCP())
	if via >= tcp {
		t.Fatalf("VIA %v not faster than TCP %v for a page transfer", via, tcp)
	}
}

func TestRecvCostChargesCPU(t *testing.T) {
	f := TCP()
	s, net, _ := newNet(t, 1, f)
	var elapsed sim.Time
	s.Spawn("comm", func(p *sim.Proc) {
		net.RecvCost(p, 0)
		elapsed = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != sim.Time(f.RecvOverhead) {
		t.Fatalf("recv cost %v, want %v", elapsed, f.RecvOverhead)
	}
}

func TestByteAccounting(t *testing.T) {
	f := VIA()
	s, net, c := newNet(t, 2, f)
	s.Spawn("recv", func(p *sim.Proc) { net.Inbox(1).Pop(p) })
	s.Spawn("send", func(p *sim.Proc) {
		net.Send(p, &Message{From: 0, To: 1, Bytes: 100})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := int64(100 + f.HeaderBytes); c.Bytes != want {
		t.Fatalf("Bytes=%d, want %d", c.Bytes, want)
	}
}

func TestRendezvousAddsRoundTrip(t *testing.T) {
	f := TCP() // EagerThreshold 16 KiB
	measure := func(bytes int) sim.Time {
		s, net, _ := newNet(t, 2, f)
		var arrived sim.Time
		s.Spawn("recv", func(p *sim.Proc) {
			net.Inbox(1).Pop(p)
			arrived = p.Now()
		})
		s.Spawn("send", func(p *sim.Proc) {
			net.Send(p, &Message{From: 0, To: 1, Bytes: bytes})
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return arrived
	}
	small := measure(16 << 10)     // at the threshold: eager
	large := measure(16<<10 + 256) // just above: rendezvous
	extra := sim.Duration(large-small) - f.xferTime(16<<10+256) + f.xferTime(16<<10)
	if extra < 2*f.Latency {
		t.Fatalf("rendezvous added only %v, want >= %v", extra, 2*f.Latency)
	}
}

func TestVIADisablesRendezvous(t *testing.T) {
	if VIA().EagerThreshold != 0 {
		t.Fatal("cLAN VIA (user-level networking) should not model rendezvous")
	}
}
