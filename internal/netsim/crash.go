// Crash-stop node failures. A crashed node keeps its memory (the whole
// cluster is one process) but stops participating: its inbox is drained,
// frames addressed to it evaporate at the receiving NIC, and it neither
// retransmits nor acknowledges. Peers that keep sending exhaust their
// retry budget and surface ErrPeerDown — the signal the recovery
// protocol above (internal/hlrc) is built on.
//
// Crash events require an attached fault plane: detection rides the
// reliability sublayer's retransmit timers. A restart resets every link
// touching the node in both directions and bumps the per-link epoch so
// stale timer and arrival closures from the previous incarnation are
// inert.
package netsim

import (
	"errors"
	"fmt"

	"parade/internal/sim"
)

// ErrPeerDown is the sentinel matched by errors.Is when a link exhausts
// its retransmission budget against a silent peer.
var ErrPeerDown = errors.New("netsim: peer down")

// PeerDownError reports one exhausted link: the observing sender, the
// unresponsive destination, and how many attempts were made.
type PeerDownError struct {
	From, To, Attempts int
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("netsim: peer %d down (observed by %d after %d attempts)",
		e.To, e.From, e.Attempts)
}

func (e *PeerDownError) Unwrap() error { return ErrPeerDown }

// requireFaults panics unless a fault plane (and with it the reliability
// sublayer) is attached — crash semantics are defined on top of it.
func (n *Network) requireFaults(op string) {
	if n.fault == nil {
		panic("netsim: " + op + " requires an attached fault plane (EnableFaults)")
	}
}

// CrashNode marks node as crash-stopped and drains its inbox, returning
// the dropped messages (callers may inspect them; the network has
// forgotten them). Frames already on the wire FROM the node still
// deliver — a crash loses receive and future send capability, not light
// already in flight. Links are deliberately not reset here: peers'
// pending frames against the dead node are exactly the retry traffic
// that detects the crash.
func (n *Network) CrashNode(node int) []*Message {
	n.requireFaults("CrashNode")
	if n.down[node] {
		panic(fmt.Sprintf("netsim: node %d crashed twice", node))
	}
	n.down[node] = true
	var dropped []*Message
	for {
		m, ok := n.inbox[node].TryPop()
		if !ok {
			break
		}
		dropped = append(dropped, m)
	}
	n.counters.At(node).Crashes++
	n.rec.CrashInjected(node)
	return dropped
}

// RestartNode brings a crashed node back with empty link state: every
// link touching it is reset in both directions (sequence numbers zeroed,
// pending and reorder buffers cleared, epoch bumped) and its send NIC is
// idle. The node's memory and parked processes are untouched — reviving
// them is the recovery protocol's job.
func (n *Network) RestartNode(node int) {
	n.requireFaults("RestartNode")
	if !n.down[node] {
		panic(fmt.Sprintf("netsim: restart of live node %d", node))
	}
	n.down[node] = false
	n.ResetPeerLinks(node)
	n.nicFree[node] = n.sim.Now()
	n.counters.At(node).NodeRestarts++
	n.rec.NodeRestarted(node)
}

// ResetPeerLinks resets the reliability state of every link touching
// node, in both directions. Used on restart, and on a shrink (the node
// stays down but survivors must stop retrying into it).
func (n *Network) ResetPeerLinks(node int) {
	n.requireFaults("ResetPeerLinks")
	for peer := 0; peer < len(n.inbox); peer++ {
		if peer == node {
			continue
		}
		n.resetLink(node, peer)
		n.resetLink(peer, node)
	}
}

// resetLink clears one directed link and bumps its epoch so closures
// armed against the previous incarnation become no-ops.
func (n *Network) resetLink(from, to int) {
	lk := n.rel.link(from, to)
	for seq := range lk.pending {
		delete(lk.pending, seq)
	}
	for seq := range lk.buffer {
		delete(lk.buffer, seq)
	}
	lk.nextSeq = 0
	lk.expected = 0
	lk.epoch++
}

// NodeDown reports whether node is currently crash-stopped.
func (n *Network) NodeDown(node int) bool {
	return n.down != nil && n.down[node]
}

// SetPeerDownHandler installs the callback invoked (in event context —
// it must not block) when a link exhausts its retry budget. observer is
// the sending node, dead the unresponsive destination. Without a
// handler the first exhaustion is recorded and retrievable through
// PeerDownErr; the sender's traffic simply stops, which under a live
// workload surfaces as a simulator deadlock.
func (n *Network) SetPeerDownHandler(fn func(observer, dead int)) {
	n.onPeerDown = fn
}

// PeerDownErr returns the first recorded retry exhaustion (nil if none,
// or if a handler consumed them). errors.Is(err, ErrPeerDown) holds.
func (n *Network) PeerDownErr() error {
	if n.peerDownErr == nil {
		return nil // typed nil must not escape into an error interface
	}
	return n.peerDownErr
}

// peerDown is frameTimeout's terminal path: the link from->to is
// declared dead. Its pending frames are dropped (the recovery layer
// resends at protocol granularity, not frame granularity).
func (n *Network) peerDown(from, to, attempts int) {
	lk := n.rel.sendSide(from, to)
	for seq := range lk.pending {
		delete(lk.pending, seq)
	}
	n.counters.At(from).PeerDowns++
	n.rec.PeerDown(from)
	if n.onPeerDown != nil {
		n.onPeerDown(from, to)
		return
	}
	if n.peerDownErr == nil {
		n.peerDownErr = &PeerDownError{From: from, To: to, Attempts: attempts}
	}
}

// ScheduleCrash arms a crash of node after d of virtual time. Drained
// in-flight messages are dropped.
func (n *Network) ScheduleCrash(d sim.Duration, node int) {
	n.requireFaults("ScheduleCrash")
	n.sim.At(d, func() { n.CrashNode(node) })
}

// ScheduleRestart arms a restart of node after d of virtual time.
func (n *Network) ScheduleRestart(d sim.Duration, node int) {
	n.requireFaults("ScheduleRestart")
	n.sim.At(d, func() { n.RestartNode(node) })
}
