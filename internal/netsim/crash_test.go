package netsim

import (
	"errors"
	"testing"

	"parade/internal/sim"
)

// TestCrashPeerDownTyped: a sender whose peer crash-stops exhausts its
// retry budget and the network records a typed PeerDownError matchable
// with errors.Is/errors.As.
func TestCrashPeerDownTyped(t *testing.T) {
	s, net, c := newNet(t, 2, VIA())
	net.EnableFaults(ProfileCrashOnly(1))
	s.Spawn("send", func(p *sim.Proc) {
		net.CrashNode(1)
		net.Send(p, &Message{From: 0, To: 1, Tag: 7, Bytes: 256})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	err := net.PeerDownErr()
	if err == nil {
		t.Fatal("no peer-down recorded after retry exhaustion")
	}
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("errors.Is(%v, ErrPeerDown) = false", err)
	}
	var pd *PeerDownError
	if !errors.As(err, &pd) {
		t.Fatalf("errors.As failed on %T", err)
	}
	if pd.From != 0 || pd.To != 1 {
		t.Fatalf("peer-down link %d->%d, want 0->1", pd.From, pd.To)
	}
	if pd.Attempts <= 1 {
		t.Fatalf("peer declared down after only %d attempts", pd.Attempts)
	}
	if c.PeerDowns != 1 || c.Crashes != 1 {
		t.Fatalf("PeerDowns=%d Crashes=%d, want 1/1", c.PeerDowns, c.Crashes)
	}
	if !net.NodeDown(1) || net.NodeDown(0) {
		t.Fatalf("NodeDown: node1=%v node0=%v", net.NodeDown(1), net.NodeDown(0))
	}
}

// TestCrashDrainsInbox: CrashNode returns the messages sitting in the
// dead node's inbox and forgets them.
func TestCrashDrainsInbox(t *testing.T) {
	s, net, _ := newNet(t, 2, VIA())
	net.EnableFaults(ProfileCrashOnly(2))
	s.Spawn("send", func(p *sim.Proc) {
		net.Send(p, &Message{From: 0, To: 1, Tag: 3, Bytes: 64})
	})
	var dropped []*Message
	s.At(sim.Millisecond, func() { dropped = net.CrashNode(1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0].Tag != 3 {
		t.Fatalf("drained %v, want the one undelivered tag-3 message", dropped)
	}
	if got, ok := net.Inbox(1).TryPop(); ok {
		t.Fatalf("inbox not drained: still holds %+v", got)
	}
}

// TestCrashRestartRevivesLinks: after a crash, retry exhaustion fires
// the peer-down handler; a restart resets the link state (fresh
// sequence numbers, bumped epoch) so post-restart traffic flows.
func TestCrashRestartRevivesLinks(t *testing.T) {
	s, net, c := newNet(t, 2, VIA())
	net.EnableFaults(ProfileCrashOnly(3))
	var obsNode, deadNode = -1, -1
	net.SetPeerDownHandler(func(observer, dead int) { obsNode, deadNode = observer, dead })
	g := sim.NewGate(s)
	s.Spawn("first", func(p *sim.Proc) {
		net.CrashNode(1)
		net.Send(p, &Message{From: 0, To: 1, Tag: 1, Bytes: 128}) // evaporates
	})
	s.At(10*sim.Millisecond, func() {
		net.RestartNode(1)
		g.Open()
	})
	s.Spawn("second", func(p *sim.Proc) {
		g.Wait(p)
		net.Send(p, &Message{From: 0, To: 1, Tag: 9, Bytes: 128})
	})
	var got *Message
	s.Spawn("recv", func(p *sim.Proc) {
		got = net.Inbox(1).Pop(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if obsNode != 0 || deadNode != 1 {
		t.Fatalf("peer-down handler saw (%d,%d), want (0,1)", obsNode, deadNode)
	}
	if net.PeerDownErr() != nil {
		t.Fatalf("handler installed but error still recorded: %v", net.PeerDownErr())
	}
	if got == nil || got.Tag != 9 {
		t.Fatalf("post-restart delivery got %+v, want tag 9", got)
	}
	if c.Crashes != 1 || c.NodeRestarts != 1 || c.PeerDowns != 1 {
		t.Fatalf("Crashes=%d NodeRestarts=%d PeerDowns=%d, want 1/1/1",
			c.Crashes, c.NodeRestarts, c.PeerDowns)
	}
	if net.InFlight() != 0 {
		t.Fatalf("%d frames unacked after the post-restart exchange", net.InFlight())
	}
}

// TestScheduleCrashRestart: the virtual-clock arming helpers fire at
// their scheduled times.
func TestScheduleCrashRestart(t *testing.T) {
	s, net, c := newNet(t, 2, VIA())
	net.EnableFaults(ProfileCrashOnly(4))
	net.ScheduleCrash(100*sim.Microsecond, 1)
	net.ScheduleRestart(5*sim.Millisecond, 1)
	var before, during, after bool
	s.At(50*sim.Microsecond, func() { before = net.NodeDown(1) })
	s.At(sim.Millisecond, func() { during = net.NodeDown(1) })
	s.At(6*sim.Millisecond, func() { after = net.NodeDown(1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if before || !during || after {
		t.Fatalf("NodeDown timeline before/during/after = %v/%v/%v, want false/true/false",
			before, during, after)
	}
	if c.Crashes != 1 || c.NodeRestarts != 1 {
		t.Fatalf("Crashes=%d NodeRestarts=%d, want 1/1", c.Crashes, c.NodeRestarts)
	}
}

// TestCrashOnlyProfileInert: the crash-only fault plane (reliability
// armed for detection, zero link faults) must not perturb a fault-free
// workload — no retransmits, no injections, and the same virtual
// finish time as the plain zero-fault profile, proving its retry
// parameters only matter when frames are actually lost.
func TestCrashOnlyProfileInert(t *testing.T) {
	run := func(prof Profile) (sim.Time, int64, int64) {
		s, net, c := newNet(t, 3, VIA())
		net.EnableFaults(prof)
		got := chaosTraffic(t, net, s, 3, 80, 512)
		checkInOrder(t, got, 3, 80)
		return s.Now(), c.Retransmits, c.AcksSent
	}
	baseT, baseR, baseA := run(Profile{Name: "none", Seed: 9})
	crashT, crashR, crashA := run(ProfileCrashOnly(9))
	if crashR != 0 || baseR != 0 {
		t.Fatalf("retransmits on zero-fault planes: none=%d crash-only=%d", baseR, crashR)
	}
	if crashA == 0 {
		t.Fatal("reliability sublayer not engaged under the crash-only plane")
	}
	if crashT != baseT || crashA != baseA {
		t.Fatalf("crash-only plane perturbed a fault-free run: time %v vs %v, acks %d vs %d",
			crashT, baseT, crashA, baseA)
	}
}

// TestCrashOnlyNotInProfiles: ProfileCrashOnly is infrastructure for
// the recovery layer, not a chaos matrix row — it must stay out of the
// named profile set and out of ProfileByName.
func TestCrashOnlyNotInProfiles(t *testing.T) {
	for _, prof := range Profiles(1) {
		if prof.Name == ProfileCrashOnly(1).Name {
			t.Fatalf("crash-only profile %q leaked into Profiles()", prof.Name)
		}
	}
	if _, err := ProfileByName(ProfileCrashOnly(1).Name, 1); err == nil {
		t.Fatal("ProfileByName resolved the crash-only profile")
	}
}
