package netsim

import (
	"testing"

	"parade/internal/obs"
	"parade/internal/sim"
)

// chaosTraffic sends msgs numbered messages on every directed link of an
// n-node network, pops them all, and returns each link's received tag
// sequence keyed by sender.
func chaosTraffic(t *testing.T, net *Network, s *sim.Simulator, n, msgs, bytes int) [][][]int {
	t.Helper()
	got := make([][][]int, n) // got[to][from] = tags in arrival order
	for to := 0; to < n; to++ {
		got[to] = make([][]int, n)
	}
	for to := 0; to < n; to++ {
		to := to
		want := (n - 1) * msgs
		s.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < want; i++ {
				m := net.Inbox(to).Pop(p)
				got[to][m.From] = append(got[to][m.From], m.Tag)
			}
		})
	}
	for from := 0; from < n; from++ {
		from := from
		s.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < msgs; i++ {
				for to := 0; to < n; to++ {
					if to == from {
						continue
					}
					net.Send(p, &Message{From: from, To: to, Tag: i, Bytes: bytes})
				}
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// checkInOrder asserts every link delivered 0..msgs-1 exactly once, in
// order.
func checkInOrder(t *testing.T, got [][][]int, n, msgs int) {
	t.Helper()
	for to := 0; to < n; to++ {
		for from := 0; from < n; from++ {
			if from == to {
				continue
			}
			tags := got[to][from]
			if len(tags) != msgs {
				t.Fatalf("link %d->%d delivered %d messages, want %d", from, to, len(tags), msgs)
			}
			for i, tag := range tags {
				if tag != i {
					t.Fatalf("link %d->%d position %d got tag %d (reordered or duplicated)", from, to, i, tag)
				}
			}
		}
	}
}

// TestChaosExactlyOnceInOrder is the core reliability property: under
// every built-in fault profile, every message is delivered to the inbox
// exactly once and in per-link order, and nothing is left in flight.
func TestChaosExactlyOnceInOrder(t *testing.T) {
	const n, msgs = 4, 150
	for _, prof := range Profiles(7) {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			s, net, c := newNet(t, n, VIA())
			net.EnableFaults(prof)
			got := chaosTraffic(t, net, s, n, msgs, 256)
			checkInOrder(t, got, n, msgs)
			if net.InFlight() != 0 {
				t.Fatalf("%d frames still unacked after the run", net.InFlight())
			}
			if c.InjectedDrops > 0 && c.Retransmits == 0 {
				t.Fatalf("%d drops injected but no retransmits", c.InjectedDrops)
			}
			if c.Retransmits != c.Timeouts {
				t.Fatalf("Retransmits=%d Timeouts=%d", c.Retransmits, c.Timeouts)
			}
		})
	}
}

// TestChaosZeroProfileNoRetransmits: attaching a plane that injects
// nothing must never cause a spurious retransmit — the retransmit
// timeout covers the exact modeled arrival plus the ack return, so with
// no loss the ack always wins. Exercises both eager and rendezvous
// paths and NIC queueing from back-to-back sends.
func TestChaosZeroProfileNoRetransmits(t *testing.T) {
	const n, msgs = 4, 100
	for _, fabric := range []Fabric{VIA(), TCP()} {
		s, net, c := newNet(t, n, fabric)
		net.EnableFaults(Profile{Name: "none", Seed: 1})
		got := chaosTraffic(t, net, s, n, msgs, 64<<10) // > both eager thresholds
		checkInOrder(t, got, n, msgs)
		if c.Retransmits != 0 || c.Timeouts != 0 || c.DupsSuppressed != 0 {
			t.Fatalf("%s: retransmits=%d timeouts=%d dups=%d on a zero-fault profile",
				fabric.Name, c.Retransmits, c.Timeouts, c.DupsSuppressed)
		}
		if c.InjectedDrops != 0 || c.InjectedDups != 0 || c.InjectedDelays != 0 {
			t.Fatalf("%s: injection counters nonzero: %d/%d/%d",
				fabric.Name, c.InjectedDrops, c.InjectedDups, c.InjectedDelays)
		}
		if c.AcksSent == 0 {
			t.Fatal("reliability sublayer not engaged (no acks)")
		}
	}
}

// TestChaosDisabledCountersZero: without a fault plane the reliability
// and injection counters stay untouched (the legacy Send path).
func TestChaosDisabledCountersZero(t *testing.T) {
	s, net, c := newNet(t, 3, VIA())
	got := chaosTraffic(t, net, s, 3, 50, 1024)
	checkInOrder(t, got, 3, 50)
	if c.AcksSent != 0 || c.Retransmits != 0 || c.Timeouts != 0 || c.DupsSuppressed != 0 ||
		c.InjectedDrops != 0 || c.InjectedDups != 0 || c.InjectedDelays != 0 {
		t.Fatalf("reliability/injection counters nonzero with no fault plane: %+v", *c)
	}
	if net.InFlight() != 0 {
		t.Fatal("rel state allocated without a fault plane")
	}
}

// TestChaosDeterminism: the same (sim seed, profile seed) pair replays
// the identical run — same final virtual time, same counters.
func TestChaosDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, int64, int64) {
		s, net, c := newNet(t, 4, VIA())
		net.EnableFaults(ProfileChaos(42))
		got := chaosTraffic(t, net, s, 4, 120, 512)
		checkInOrder(t, got, 4, 120)
		return s.Now(), c.Retransmits, c.InjectedDrops, c.InjectedDelays
	}
	t1, r1, d1, j1 := run()
	t2, r2, d2, j2 := run()
	if t1 != t2 || r1 != r2 || d1 != d2 || j1 != j2 {
		t.Fatalf("chaos run not reproducible: (%v %d %d %d) vs (%v %d %d %d)",
			t1, r1, d1, j1, t2, r2, d2, j2)
	}
	if r1 == 0 || d1 == 0 || j1 == 0 {
		t.Fatalf("chaos profile injected nothing: retrans=%d drops=%d delays=%d", r1, d1, j1)
	}
}

// TestChaosStragglerSlowsLink: a straggler node's sends serialize slower
// than a healthy node's, delaying its deliveries.
func TestChaosStragglerSlowsLink(t *testing.T) {
	arrivals := func(straggler int) (sim.Time, sim.Time) {
		s, net, _ := newNet(t, 3, VIA())
		prof := Profile{Name: "s", Seed: 1, StragglerNode: straggler, StragglerFactor: 4}
		net.EnableFaults(prof)
		var from0, from1 sim.Time
		s.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				m := net.Inbox(2).Pop(p)
				if m.From == 0 {
					from0 = p.Now()
				} else {
					from1 = p.Now()
				}
			}
		})
		s.Spawn("s0", func(p *sim.Proc) { net.Send(p, &Message{From: 0, To: 2, Bytes: 32 << 10}) })
		s.Spawn("s1", func(p *sim.Proc) { net.Send(p, &Message{From: 1, To: 2, Bytes: 32 << 10}) })
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return from0, from1
	}
	h0, h1 := arrivals(-1) // no straggler: symmetric links
	if h0 != h1 {
		t.Fatalf("symmetric sends arrived apart: %v vs %v", h0, h1)
	}
	s0, s1 := arrivals(1) // node 1 at 4x
	if s0 != h0 {
		t.Fatalf("healthy node slowed by another node's straggling: %v vs %v", s0, h0)
	}
	if s1 <= s0 {
		t.Fatalf("straggler delivery (%v) not slower than healthy (%v)", s1, s0)
	}
}

// TestChaosPerLinkOverride: SetLink confines injection to one directed
// link; the per-node obs counters show only that sender retransmitting,
// and the retry-latency histogram fills.
func TestChaosPerLinkOverride(t *testing.T) {
	const msgs = 200
	s, net, _ := newNet(t, 4, VIA())
	rec := obs.New(4)
	net.SetRecorder(rec)
	fp := net.EnableFaults(Profile{Name: "one-link", Seed: 3})
	fp.SetLink(0, 1, LinkFaults{DropProb: 0.2})
	got := chaosTraffic(t, net, s, 4, msgs, 128)
	checkInOrder(t, got, 4, msgs)
	m := rec.Metrics()
	if m.Node(0).Retransmits == 0 {
		t.Fatal("no retransmits on the faulted link's sender")
	}
	for node := 1; node < 4; node++ {
		if r := m.Node(node).Retransmits; r != 0 {
			t.Fatalf("node %d retransmitted %d frames without injected faults", node, r)
		}
	}
	if h := m.Hist(obs.HistRetryLatency); h.Count == 0 {
		t.Fatal("retry-latency histogram empty despite retransmits")
	}
}
