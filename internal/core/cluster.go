package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"parade/internal/dsm"
	"parade/internal/hlrc"
	"parade/internal/mpi"
	"parade/internal/netsim"
	"parade/internal/obs"
	"parade/internal/sim"
	"parade/internal/stats"
)

// Control message subtypes (netsim KindDSM space is owned by hlrc, so the
// runtime uses its own kind).
const (
	ctlStartRegion = iota + 1
	ctlStop
)

// KindCtl is the runtime's control traffic (region fork/join, shutdown).
const KindCtl netsim.Kind = 100

// Cluster is one simulated SMP cluster executing a ParADE program.
type Cluster struct {
	cfg      Config
	s        *sim.Simulator
	net      *netsim.Network
	world    *mpi.World
	engine   *hlrc.Engine
	counters *stats.Counters
	stats    *stats.Sharded // counter router: base set, or per-node shards under strict lanes
	lanes    bool           // cfg.Lanes > 0: per-node event-lane kernel (lanes.go)
	hetero   *netsim.Hetero // nil: uniform cluster (Config.Hetero)
	rec      *obs.Recorder  // nil when observability is disabled

	nodes   []*node
	threads []*Thread // all team threads in gid order

	region    func(*Thread) // current parallel region body
	regionSeq int
	stopping  bool

	scalars    map[string]*Scalar
	singles    map[string]int // single-site name -> SDSM flag address
	lockIDs    map[string]int // directive site -> global SDSM lock id
	slotArrays map[string]F64Array
	dynLoops   map[string]*dynLoop // chunk-server state (master node)

	// Tasking runtime (task.go): cluster-wide live-task count, the
	// condition idle drainers park on, the seeded victim-selection
	// rotation, and the cumulative count of Taskwait join arrivals
	// (monotonic — thread joinEpoch × team size gives each join's
	// arrival target, so no reset is ever needed).
	taskMu      *sim.Mutex
	taskCond    *sim.Cond
	tasksLive   int
	stealRot    uint64
	taskArrived uint64

	// abortErr is the first runtime error a thread aborted the run with
	// (depend.go); the always-installed cancellation hook polls it.
	// Atomic because lane mode polls from every lane concurrently.
	abortErr atomic.Pointer[runAbort]

	programEnd sim.Time
}

// node is the per-node runtime state: the processors, the communication
// thread's plumbing, the pthread-level synchronization objects.
type node struct {
	id  int
	s   *sim.Simulator
	cpu *sim.CPU

	mutexes map[string]*sim.Mutex // named intra-node (pthread) mutexes

	// Fork-join signalling between the comm thread and team threads.
	workMu   *sim.Mutex
	workCond *sim.Cond
	workSeq  int

	// Node-local sense barrier.
	barMu    *sim.Mutex
	barCond  *sim.Cond
	barCount int
	barGen   int

	rendezvous map[string]*rendezvous
	gates      map[string]*gateInfo

	// Dynamic-schedule chunk requests in flight from this node.
	chunkSeq   int
	chunkWaits map[int]*chunkWait

	// Tasking runtime (task.go): the node's task deque (index 0 oldest —
	// local threads pop the tail, thieves take the head), the executed-task
	// result records pending the next Taskwait merge, and the node's
	// in-flight steal requests.
	taskq       []*task
	taskResults []taskResult
	stealSeq    int
	stealWaits  map[int]*stealWait

	// Dependence-resolver graph (depend.go): tracked tasks spawned from
	// contexts living on this node, keyed by canonical task id. Entries
	// are deleted at completion; held tasks sit in their entry until
	// their predecessor count drains.
	depGraph map[uint64]*depNode

	// Event-lane mode (lanes.go): per-node replicas of the directive-site
	// registries and the shared-memory allocator (kept in lockstep by SPMD
	// first-use order), the spawn/execute tallies behind the tasking
	// quiescence vote, and the node's seeded steal rotation.
	lockIDs      map[string]int
	singles      map[string]int
	slotArrays   map[string]F64Array
	alloc        *dsm.Allocator
	taskSpawned  int64
	taskExecuted int64
	stealRot     uint64
}

// localPthreadOp approximates the cost of an uncontended pthread
// mutex/cond operation on the paper's hardware.
const localPthreadOp = 300 * sim.Nanosecond

// Report is the outcome of a cluster run.
type Report struct {
	// Time is the virtual time at which the program (master thread)
	// finished, excluding shutdown.
	Time sim.Duration
	// Counters are the protocol/traffic statistics of the whole run.
	Counters stats.Counters
	// Config echoes the configuration that produced the report.
	Config Config
	// CPUBusy is each node's accumulated processor busy time — the
	// idle-time signal the paper's §8 adaptive-configuration idea wants
	// to measure.
	CPUBusy []sim.Duration
	// PageReport lists the hottest shared pages (top 16 by fetches) —
	// the diagnostic behind the paper's §7 locality guidelines.
	PageReport []hlrc.PageStat
	// MemHash fingerprints the final DSM state (page homes, validity, and
	// contents). Two runs of the same program that agree here finished
	// with identical shared memory — the chaos harness compares it across
	// fault profiles.
	MemHash uint64
	// Obs is the run's observability metrics (per-node counters, latency
	// histograms, per-region phases); nil unless Config.Obs was set.
	Obs *obs.Metrics
}

// Utilization returns mean processor utilization across the cluster in
// [0,1]: busy time divided by (nodes x CPUs x elapsed time).
func (r Report) Utilization() float64 {
	if r.Time <= 0 || len(r.CPUBusy) == 0 {
		return 0
	}
	var busy sim.Duration
	for _, b := range r.CPUBusy {
		busy += b
	}
	capacity := float64(r.Time) * float64(len(r.CPUBusy)*r.Config.CPUsPerNode)
	u := float64(busy) / capacity
	if u > 1 {
		u = 1
	}
	return u
}

// Run builds a cluster from cfg and executes program on the master
// thread (global thread 0 on node 0). The program performs serial work
// directly and forks parallel regions with Thread.Parallel. Run drives
// the simulation to completion and returns the report.
func Run(cfg Config, program func(master *Thread)) (Report, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	c := &Cluster{
		cfg:      cfg,
		s:        sim.New(cfg.Seed),
		counters: &stats.Counters{},
		scalars:  map[string]*Scalar{},
		singles:  map[string]int{},
	}
	c.stats = stats.NewSharded(c.counters)
	if cfg.Lanes > 0 {
		// Configure lanes before any layer is built: netsim, mpi, hlrc, and
		// the observability registry all size their per-node counter shards
		// off the simulator's lane regime. A crash plan switches the kernel
		// to the relaxed single-worker regime (recovery rewrites other
		// nodes' timelines, which the strict window protocol forbids).
		c.lanes = true
		c.s.ConfigureLanes(cfg.Nodes, cfg.Lanes, laneLookahead(cfg.Fabric), cfg.Crash.Active())
		c.s.SetWindowChurn(laneWindowChurn)
		if !c.s.Relaxed() {
			c.stats.EnableShards(cfg.Nodes)
		}
	}
	cpus := make([]*sim.CPU, cfg.Nodes)
	c.nodes = make([]*node, cfg.Nodes)
	for i := range c.nodes {
		cpu := sim.NewCPU(c.s, cfg.CPUsPerNode, cfg.Quantum)
		cpus[i] = cpu
		n := &node{
			id: i, s: c.s, cpu: cpu,
			mutexes:    map[string]*sim.Mutex{},
			rendezvous: map[string]*rendezvous{},
			gates:      map[string]*gateInfo{},
			chunkWaits: map[int]*chunkWait{},
			stealWaits: map[int]*stealWait{},
		}
		n.workMu = sim.NewMutex(c.s)
		n.workCond = sim.NewCond(n.workMu)
		n.barMu = sim.NewMutex(c.s)
		n.barCond = sim.NewCond(n.barMu)
		n.stealRot = splitmix64(uint64(cfg.Seed) + uint64(i)*0x9e3779b97f4a7c15)
		if c.lanes {
			n.lockIDs = map[string]int{}
			n.singles = map[string]int{}
			n.slotArrays = map[string]F64Array{}
		}
		c.nodes[i] = n
	}
	c.taskMu = sim.NewMutex(c.s)
	c.taskCond = sim.NewCond(c.taskMu)
	c.stealRot = splitmix64(uint64(cfg.Seed))
	c.hetero = cfg.Hetero
	c.net = netsim.New(c.s, cfg.Nodes, cfg.Fabric, cpus, c.counters)
	c.net.EnableHetero(cfg.Hetero)
	if cfg.Crash.Active() && cfg.Faults == nil {
		// Crash detection rides the reliability sublayer's retransmit
		// timers, so a fault plane is mandatory; the crash-only plane
		// injects no link faults and leaves fault-free timing untouched.
		prof := netsim.ProfileCrashOnly(cfg.Seed)
		cfg.Faults = &prof
	}
	if cfg.Faults != nil {
		c.net.EnableFaults(*cfg.Faults)
	}
	c.world = mpi.NewWorld(c.s, c.net, c.counters)
	c.engine = hlrc.New(c.s, c.net, cpus, hlrc.Config{
		Nodes: cfg.Nodes, ShmBytes: cfg.ShmBytes,
		HomeMigration: cfg.HomeMigration, LockCaching: cfg.LockCaching,
		Strategy: cfg.Strategy, Cost: cfg.Cost, Crash: cfg.Crash,
		Policy: cfg.Policy,
	}, c.counters)
	if c.lanes {
		// Per-node allocator replicas (lanes.go): node 0's replica is the
		// engine's allocator itself, so node 0's lane-local lazy
		// allocations and the master's serial-context allocations both
		// advance the real pool; the other replicas track it in SPMD
		// lockstep.
		for _, n := range c.nodes {
			if n.id == 0 {
				n.alloc = c.engine.Alloc
			} else {
				n.alloc = dsm.NewAllocator(cfg.ShmBytes)
			}
		}
	}

	if cfg.Obs != nil {
		// One recorder observes every layer. The simulation kernel runs
		// exactly one goroutine at a time, so the recorder's plain field
		// writes need no synchronization (see internal/obs).
		rec := cfg.Obs
		c.rec = rec
		c.engine.SetRecorder(rec)
		c.net.SetRecorder(rec)
		c.world.SetRecorder(rec)
		if c.lanes && !c.s.Relaxed() {
			rec.ShardForLanes(cfg.Nodes)
		}
		for i, cpu := range cpus {
			i := i
			cpu.OnWait = func(d sim.Duration) { rec.CPUWait(i, d) }
		}
	}

	// Communication threads (paper §5.3): one per node, dispatching MPI
	// traffic to the matching engine, DSM traffic to the protocol
	// handler, and control traffic to the fork-join machinery.
	for i := range c.nodes {
		i := i
		c.s.SpawnOn(i, fmt.Sprintf("comm%d", i), func(p *sim.Proc) { c.commLoop(p, i) })
	}

	// Team threads: gid = node*ThreadsPerNode + lid. Thread 0 is the
	// master and runs the program; the rest wait for parallel regions.
	total := cfg.Nodes * cfg.ThreadsPerNode
	c.threads = make([]*Thread, total)
	for gid := 0; gid < total; gid++ {
		gid := gid
		t := &Thread{c: c, gid: gid, node: c.nodes[gid/cfg.ThreadsPerNode]}
		c.threads[gid] = t
		name := fmt.Sprintf("n%dt%d", t.node.id, gid%cfg.ThreadsPerNode)
		c.s.SpawnOn(t.node.id, name, func(p *sim.Proc) {
			t.p = p
			if gid == 0 {
				program(t)
				c.programEnd = p.Now()
				c.shutdown(p)
				return
			}
			t.workerLoop(p)
		})
	}

	// The cancellation hook is always installed: runtime errors the
	// threads cannot panic with (a task dependence cycle — a sim-goroutine
	// panic would kill the process, see internal/sim) surface by storing
	// abortErr and letting the kernel's poll unwind the run; the user's
	// own cancel/deadline hook, when configured, is checked second.
	userHook := cancelHook(cfg)
	c.s.SetCancel(func() error {
		if a := c.abortErr.Load(); a != nil {
			return a.err
		}
		if userHook != nil {
			return userHook()
		}
		return nil
	}, 0)
	if err := c.s.Run(); err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			// Canceled (hook or deadline): the kernel has unwound every
			// goroutine, so the layers are quiescent — fold what ran into a
			// partial report (counters, timing, utilization) alongside the
			// typed error. Identity fields (MemHash, PageReport) are left
			// zero: a mid-run fingerprint carries no bit-identity meaning.
			return c.partialReport(cfg, cpus), err
		}
		if pd := c.net.PeerDownErr(); pd != nil {
			// A stalled simulation with a recorded retry exhaustion is an
			// undetected node failure, not a runtime bug: surface the
			// typed peer-down cause (errors.Is(err, netsim.ErrPeerDown)).
			return Report{}, fmt.Errorf("core: %v: %w", err, pd)
		}
		return Report{}, err
	}
	busy := make([]sim.Duration, cfg.Nodes)
	for i, cpu := range cpus {
		busy[i] = cpu.BusyTime
	}
	// Fold every layer's per-lane counter and metric shards into the
	// shared base views before snapshotting (all no-ops in legacy mode).
	c.net.FoldCounters()
	c.world.FoldCounters()
	c.engine.FoldCounters()
	c.stats.Fold()
	if c.rec != nil {
		c.rec.FoldLanes()
		laneReport(c.s, c.rec)
	}
	rep := Report{
		Time:       sim.Duration(c.programEnd),
		Counters:   c.counters.Snapshot(),
		Config:     cfg,
		CPUBusy:    busy,
		PageReport: c.engine.PageReport(16),
		MemHash:    c.engine.StateFingerprint(),
	}
	if c.rec != nil {
		rep.Obs = c.rec.Metrics()
	}
	return rep, nil
}

// partialReport folds the counters of a canceled run into a Report that
// carries everything meaningful at the cancel point: elapsed virtual
// time, protocol/traffic counters, per-node busy time, and observability
// metrics. Called only after sim.Run returned — the kernel is torn down
// and every layer is quiescent.
func (c *Cluster) partialReport(cfg Config, cpus []*sim.CPU) Report {
	busy := make([]sim.Duration, cfg.Nodes)
	for i, cpu := range cpus {
		busy[i] = cpu.BusyTime
	}
	c.net.FoldCounters()
	c.world.FoldCounters()
	c.engine.FoldCounters()
	c.stats.Fold()
	if c.rec != nil {
		c.rec.FoldLanes()
		laneReport(c.s, c.rec)
	}
	rep := Report{
		Time:     sim.Duration(c.s.Now()),
		Counters: c.counters.Snapshot(),
		Config:   cfg,
		CPUBusy:  busy,
	}
	if c.rec != nil {
		rep.Obs = c.rec.Metrics()
	}
	return rep
}

// commLoop is one node's communication thread. It exits on the stop
// control message.
func (c *Cluster) commLoop(p *sim.Proc, nodeID int) {
	inbox := c.net.Inbox(nodeID)
	for {
		m := inbox.Pop(p)
		c.net.RecvCost(p, nodeID)
		switch m.Kind {
		case netsim.KindMPI:
			c.world.Rank(nodeID).Deliver(m)
		case netsim.KindDSM:
			c.engine.Handle(p, nodeID, m)
		case KindCtl:
			switch m.Type {
			case ctlStartRegion:
				if notices, ok := m.Payload.([]dsm.WriteNotice); ok {
					c.engine.ApplyNotices(nodeID, notices)
				}
				c.startRegionLocal(p, nodeID)
			case ctlChunkReq:
				c.handleChunkReq(p, m)
			case ctlChunkReply:
				c.handleChunkReply(nodeID, m)
			case ctlStealReq:
				c.handleStealReq(p, nodeID, m)
			case ctlStealReply:
				c.handleStealReply(nodeID, m)
			case ctlTaskDone:
				c.handleTaskDone(p, nodeID, m)
			case ctlTaskPush:
				c.handleTaskPush(p, nodeID, m)
			case ctlStop:
				c.stopLocal(p, nodeID)
				return
			default:
				panic(fmt.Sprintf("core: unknown control type %d", m.Type))
			}
		default:
			panic(fmt.Sprintf("core: unknown message kind %d", m.Kind))
		}
	}
}

// startRegionLocal wakes the node's team threads for a new region.
func (c *Cluster) startRegionLocal(p *sim.Proc, nodeID int) {
	if c.lanes {
		// Reading regionSeq from another node's lane is safe and exact:
		// the ctlStartRegion message carries the happens-before edge, and
		// the master cannot advance to the next region until this node
		// joins the current one's barrier.
		c.rec.RegionBeginOn(nodeID, c.regionSeq)
	}
	n := c.nodes[nodeID]
	n.workMu.Lock(p)
	n.workSeq++
	n.workCond.Broadcast()
	n.workMu.Unlock(p)
}

// stopLocal wakes the node's team threads for shutdown.
func (c *Cluster) stopLocal(p *sim.Proc, nodeID int) {
	n := c.nodes[nodeID]
	n.workMu.Lock(p)
	n.workSeq++
	n.workCond.Broadcast()
	n.workMu.Unlock(p)
}

// shutdown is executed by the master after the program returns: tell
// every communication thread to stop (which in turn releases the
// node's worker threads).
func (c *Cluster) shutdown(p *sim.Proc) {
	c.stopping = true
	for i := 0; i < c.cfg.Nodes; i++ {
		c.net.Send(p, &netsim.Message{From: 0, To: i, Kind: KindCtl, Type: ctlStop, Bytes: 8})
	}
}

// Sim exposes the simulator (used by apps to read the virtual clock).
func (c *Cluster) Sim() *sim.Simulator { return c.s }

// Engine exposes the protocol engine (used by tests and the harness).
func (c *Cluster) Engine() *hlrc.Engine { return c.engine }

// Counters exposes the run's statistics counters.
func (c *Cluster) Counters() *stats.Counters { return c.counters }

// Config returns the cluster's (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// TotalThreads returns the team size: Nodes * ThreadsPerNode.
func (c *Cluster) TotalThreads() int { return c.cfg.Nodes * c.cfg.ThreadsPerNode }

// mutex returns the node's named pthread mutex, creating it on first use.
func (n *node) mutex(name string) *sim.Mutex {
	m := n.mutexes[name]
	if m == nil {
		// All node state is owned by the single-threaded simulation, so
		// creating on first use is race-free.
		m = sim.NewMutex(n.s)
		n.mutexes[name] = m
	}
	return m
}
