package core

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// spinForever is a program that can never finish: an infinite
// barrier-heavy loop across the cluster, the shape of a livelocked
// configuration the deadline guard exists for.
func spinForever(m *Thread) {
	for {
		m.Parallel(func(tc *Thread) {
			tc.Barrier()
		})
	}
}

// TestDeadlineAbortsRun: a run over its wall-clock budget returns an
// error matching ErrCanceled, carrying a *DeadlineError cause, plus a
// partial report with the counters accumulated so far — and unwinds all
// simulation goroutines.
func TestDeadlineAbortsRun(t *testing.T) {
	for _, lanes := range []int{0, 2} {
		lanes := lanes
		t.Run(map[int]string{0: "legacy", 2: "lanes"}[lanes], func(t *testing.T) {
			base := runtime.NumGoroutine()
			cfg := Config{Nodes: 2, ThreadsPerNode: 1, Deadline: 50 * time.Millisecond, Lanes: lanes}
			rep, err := Run(cfg, spinForever)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled match", err)
			}
			var de *DeadlineError
			if !errors.As(err, &de) || de.Limit != 50*time.Millisecond {
				t.Fatalf("err = %v, want *DeadlineError{Limit: 50ms}", err)
			}
			if rep.Time <= 0 {
				t.Fatalf("partial report Time = %v, want > 0", rep.Time)
			}
			if rep.Counters.Barriers+rep.Counters.MPIBarrier == 0 {
				t.Fatalf("partial report has no barrier counters: %+v", rep.Counters)
			}
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > base {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d live, want <= %d", runtime.NumGoroutine(), base)
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestCancelHookAbortsRun: an external cancellation hook cancels the run
// and its cause is preserved through the error chain.
func TestCancelHookAbortsRun(t *testing.T) {
	cause := errors.New("shutdown requested")
	cfg := Config{Nodes: 2, ThreadsPerNode: 1, Cancel: func() error { return cause }}
	_, err := Run(cfg, spinForever)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want ErrCanceled and cause match", err)
	}
}

// TestDeadlineUnusedIsFree: a run that finishes within its budget is
// byte-identical to one with no deadline at all.
func TestDeadlineUnusedIsFree(t *testing.T) {
	prog := func(m *Thread) {
		for i := 0; i < 5; i++ {
			m.Parallel(func(tc *Thread) { tc.Barrier() })
		}
	}
	plain := run(t, Config{Nodes: 2, ThreadsPerNode: 1}, prog)
	guarded := run(t, Config{Nodes: 2, ThreadsPerNode: 1, Deadline: time.Minute}, prog)
	if plain.Time != guarded.Time || plain.MemHash != guarded.MemHash {
		t.Fatalf("deadline guard perturbed an in-budget run: %v/%x vs %v/%x",
			plain.Time, plain.MemHash, guarded.Time, guarded.MemHash)
	}
}

// TestNegativeDeadlineRejected: validation catches a negative budget.
func TestNegativeDeadlineRejected(t *testing.T) {
	_, err := Run(Config{Nodes: 1, Deadline: -time.Second}, func(m *Thread) {})
	if err == nil {
		t.Fatal("negative Deadline accepted")
	}
}
