package core

import (
	"fmt"
	"sort"

	"parade/internal/netsim"
	"parade/internal/sim"
)

// The distributed tasking runtime: explicit tasks (Thread.Task), the
// team-collective join (Thread.Taskwait), and the task-backed loop
// (Thread.Taskloop), scheduled over per-node deques with cross-node
// work stealing.
//
// The design follows the paper's division of labor. Scheduling state is
// locality-aware: a spawned task lands on its creator's node, local
// threads pop newest-first (LIFO keeps the working set warm), and
// thieves take the oldest task of the most-loaded remote node (FIFO
// steals move the coldest, largest-granularity work). Steal traffic is
// ordinary control-plane messaging (KindCtl over the simulated fabric),
// so it rides the netsim reliability and crash layers like every other
// protocol. Task results follow the hybrid split: the small per-task
// result records return through update-protocol collectives at
// Taskwait, while any large data a task produces stays in shared memory
// under HLRC and propagates through the ordinary barrier flush.
//
// Determinism. Steal outcomes depend on virtual-time races (who asks
// the chunk-server-like victim first), so which node executes a given
// task is timing-dependent — but every quantity that leaves the
// subsystem is not: task identity is a canonical spawn-path id
// (schedule-independent), and Taskwait merges result records across
// nodes sorted by id before reducing, so the returned value is
// bit-identical no matter who stole what. Victim selection itself is
// seeded from Config.Seed, making any single run reproducible.
//
// Two bulletin-board shortcuts lean on the simulation kernel's
// one-runnable-goroutine invariant (see internal/sim): thieves read
// remote deque lengths directly when picking a victim (modeling the
// load gossip real runtimes piggyback on their fabric), and idle
// threads park on a cluster-wide condition instead of polling. The
// task transfer itself always pays the full request/reply fabric cost.

// Control message subtypes for the steal protocol.
const (
	ctlStealReq = iota + 20
	ctlStealReply
)

// taskDescBytes models the wire size of a stolen task descriptor
// (function pointer, id, environment summary) — well under the
// SmallThreshold split, which is why steals ride the message-passing
// plane rather than HLRC.
const taskDescBytes = 64

// task is one deferred unit of work.
type task struct {
	id       uint64 // canonical spawn-path id (see taskID)
	fn       func(tc *Thread) float64
	children int // child-spawn counter, drives child id derivation
}

// taskResult is one executed task's contribution, merged at Taskwait.
type taskResult struct {
	id  uint64
	val float64
}

// stealReq asks a victim node for its oldest queued task.
type stealReq struct {
	ReqID int
	Thief int
}

// stealReply carries the stolen task, nil on a miss.
type stealReply struct {
	ReqID int
	Task  *task
}

// stealWait is a thief's parked steal request.
type stealWait struct {
	gate *sim.Gate
	task *task
}

// taskID derives a task's canonical id from its parent's id and its
// spawn ordinal under that parent (FNV-1a over both). The id depends
// only on the spawn path — which thread created the root and the chain
// of child ordinals below it — never on which node executed anything,
// so it is identical across steal schedules, fault profiles, and crash
// recoveries.
func taskID(parent uint64, seq int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(parent)
	mix(uint64(seq))
	return h
}

// splitmix64 is the seeded generator behind victim tie-breaking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Task spawns fn as a deferred task. The task is pushed onto the
// calling thread's node deque (locality: children start where their
// parent ran) and executes later on whichever thread — possibly of
// another node, via a steal — reaches a scheduling point: Taskwait,
// Taskloop's implicit join, or any team Barrier.
//
// fn receives the thread that actually executes it; all shared-memory
// access inside the body must go through that context, not the
// spawner's, or DSM accounting charges the wrong node. The returned
// float64 is the task's result record; the sum of all records since the
// last join is what Taskwait returns (return 0 for pure side-effect
// tasks).
func (t *Thread) Task(fn func(tc *Thread) float64) {
	c, n := t.c, t.node
	var id uint64
	if t.curTask != nil {
		t.curTask.children++
		id = taskID(t.curTask.id, t.curTask.children)
	} else {
		t.rootSeq++
		id = taskID(uint64(t.gid)+0x517cc1b727220a95, t.rootSeq)
	}
	t.Compute(localPthreadOp) // deque push under the node's pthread lock
	n.taskq = append(n.taskq, &task{id: id, fn: fn})
	if c.lanes {
		// Lane mode (lanes.go): no cluster-wide live count or wake — the
		// spawn tally feeds the quiescence vote instead.
		n.taskSpawned++
		c.cnt(n.id).TasksSpawned++
		c.rec.TaskSpawned(n.id)
		return
	}
	c.tasksLive++
	c.counters.TasksSpawned++
	c.rec.TaskSpawned(n.id)
	c.taskWake()
}

// Taskwait is the team-collective join: every team thread must call it
// (SPMD, like any directive). Arriving threads execute queued tasks —
// their own node's newest-first, then steals — until no task is live
// anywhere; the per-node result records are then merged across nodes
// with one collective (sorted by task id, so the reduction order is
// canonical) and the sum of every task's result since the previous join
// is returned, identical on all threads. A trailing team barrier
// flushes task-made shared-memory writes, completing the hybrid split:
// small results returned by collective, large data through HLRC.
func (t *Thread) Taskwait() float64 {
	rec, t0 := t.directiveStart()
	if t.c.lanes {
		t.drainTasksLane()
	} else {
		t.drainTasks()
	}
	out := t.mergeTaskResults()
	t.Barrier()
	rec.Directive(t0, t.p.Now(), t.node.id, "taskwait", "taskwait")
	return out
}

// Taskloop partitions [lo, hi) into chunks of WithGrainsize iterations
// (default: one thread's static share split in taskGrainDiv) and spawns
// each chunk as a task on its statically-owning thread's node, so the
// initial placement matches the static schedule's locality and stealing
// only moves work when load imbalance develops. body receives the
// executing thread's context plus the iteration index; per-iteration
// virtual cost attaches with WithIterCost. The implicit Taskwait
// returns the sum of the body's results; Nowait skips the join (and
// returns 0), leaving the chunks for a later scheduling point.
func (t *Thread) Taskloop(lo, hi int, body func(tc *Thread, i int) float64, opts ...ForOption) float64 {
	cfg := forConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	myLo, myHi := t.StaticRange(lo, hi)
	grain := cfg.chunk
	if grain < 1 {
		grain = (myHi - myLo) / taskGrainDiv
		if grain < 1 {
			grain = 1
		}
	}
	perIter := cfg.perIter
	for clo := myLo; clo < myHi; clo += grain {
		chi := clo + grain
		if chi > myHi {
			chi = myHi
		}
		clo, chi := clo, chi
		t.Task(func(tc *Thread) float64 {
			var sum float64
			for i := clo; i < chi; i++ {
				sum += body(tc, i)
			}
			if perIter > 0 {
				tc.Compute(perIter * sim.Duration(chi-clo))
			}
			return sum
		})
	}
	if cfg.nowait {
		return 0
	}
	return t.Taskwait()
}

// taskGrainDiv splits one thread's static share into this many default
// Taskloop chunks — enough slack for stealing to rebalance, few enough
// that per-task overhead stays small.
const taskGrainDiv = 4

// drainTasks executes queued tasks until none is live cluster-wide:
// local LIFO pops first, then cross-node steals, then parking on the
// cluster task condition until a push or completion changes the
// picture.
func (t *Thread) drainTasks() {
	c := t.c
	for c.tasksLive > 0 {
		if tk := t.popLocalTask(); tk != nil {
			t.runTask(tk)
			continue
		}
		if tk := t.stealTask(); tk != nil {
			t.runTask(tk)
			continue
		}
		c.taskMu.Lock(t.p)
		if c.tasksLive > 0 && !c.anyQueuedTask() {
			c.taskCond.Wait(t.p)
		}
		c.taskMu.Unlock(t.p)
	}
}

// popLocalTask takes the newest task of this thread's node (LIFO: the
// most recently spawned work has the warmest pages).
func (t *Thread) popLocalTask() *task {
	n := t.node
	if len(n.taskq) == 0 {
		return nil
	}
	t.Compute(localPthreadOp)
	// The pop cost is a preemption point; a sibling may have drained the
	// deque meanwhile.
	if len(n.taskq) == 0 {
		return nil
	}
	tk := n.taskq[len(n.taskq)-1]
	n.taskq = n.taskq[:len(n.taskq)-1]
	return tk
}

// stealTask asks the most-loaded remote node for its oldest task via a
// control-plane round trip. Returns nil when no remote node has queued
// work or when the victim's deque emptied before the request arrived (a
// miss).
func (t *Thread) stealTask() *task {
	c, n, p := t.c, t.node, t.p
	victim := c.chooseVictim(n.id)
	if victim < 0 {
		return nil
	}
	start := c.s.Now()
	c.counters.StealRequests++
	c.rec.StealRequest(n.id)
	n.stealSeq++
	reqID := n.stealSeq
	w := &stealWait{gate: sim.NewGate(c.s)}
	n.stealWaits[reqID] = w
	c.net.Send(p, &netsim.Message{
		From: n.id, To: victim, Kind: KindCtl, Type: ctlStealReq,
		Bytes: 24, Payload: stealReq{ReqID: reqID, Thief: n.id},
	})
	w.gate.Wait(p)
	hit := w.task != nil
	if hit {
		c.counters.StealHits++
		c.counters.TasksStolen++
	} else {
		c.counters.StealMisses++
	}
	c.rec.StealDone(start, c.s.Now(), n.id, victim, hit)
	return w.task
}

// chooseVictim picks the remote node with the longest deque; ties break
// by a rotation drawn from the Config.Seed-derived steal sequence, so
// victim selection is deterministic for a given seed yet unbiased
// across nodes. Returns -1 when no remote node has queued work.
func (c *Cluster) chooseVictim(thief int) int {
	nodes := len(c.nodes)
	if nodes < 2 {
		return -1
	}
	rot := int(c.stealRot % uint64(nodes))
	c.stealRot = splitmix64(c.stealRot)
	best, bestLen := -1, 0
	for k := 0; k < nodes; k++ {
		id := (rot + k) % nodes
		if id == thief {
			continue
		}
		if l := len(c.nodes[id].taskq); l > bestLen {
			best, bestLen = id, l
		}
	}
	return best
}

// anyQueuedTask reports whether any node has a queued (stealable or
// poppable) task.
func (c *Cluster) anyQueuedTask() bool {
	for _, n := range c.nodes {
		if len(n.taskq) > 0 {
			return true
		}
	}
	return false
}

// taskWake wakes every thread parked on the task condition so it can
// re-examine the deques and the live count.
func (c *Cluster) taskWake() {
	c.taskCond.Broadcast()
}

// runTask executes one task on t, records its result on t's node, and
// retires it from the live count.
func (t *Thread) runTask(tk *task) {
	c := t.c
	prev := t.curTask
	t.curTask = tk
	v := tk.fn(t)
	t.curTask = prev
	t.node.taskResults = append(t.node.taskResults, taskResult{id: tk.id, val: v})
	if c.lanes {
		t.node.taskExecuted++
		c.cnt(t.node.id).TasksExecuted++
		c.rec.TaskExecuted(t.node.id)
		return
	}
	c.counters.TasksExecuted++
	c.rec.TaskExecuted(t.node.id)
	c.tasksLive--
	c.taskWake()
}

// handleStealReq runs on the victim's communication thread: pop the
// oldest queued task (FIFO from the thief's perspective — the coldest,
// largest-granularity work) and reply, possibly with a miss.
func (c *Cluster) handleStealReq(p *sim.Proc, nodeID int, m *netsim.Message) {
	req := m.Payload.(stealReq)
	n := c.nodes[nodeID]
	n.cpu.Compute(p, serveCost)
	var tk *task
	bytes := 16
	if len(n.taskq) > 0 {
		tk = n.taskq[0]
		copy(n.taskq, n.taskq[1:])
		n.taskq[len(n.taskq)-1] = nil
		n.taskq = n.taskq[:len(n.taskq)-1]
		bytes = taskDescBytes
	}
	c.net.Send(p, &netsim.Message{
		From: nodeID, To: req.Thief, Kind: KindCtl, Type: ctlStealReply,
		Bytes: bytes, Payload: stealReply{ReqID: req.ReqID, Task: tk},
	})
}

// handleStealReply wakes the thief's parked steal request.
func (c *Cluster) handleStealReply(nodeID int, m *netsim.Message) {
	rep := m.Payload.(stealReply)
	n := c.nodes[nodeID]
	w := n.stealWaits[rep.ReqID]
	if w == nil {
		panic(fmt.Sprintf("core: steal reply for unknown request %d", rep.ReqID))
	}
	delete(n.stealWaits, rep.ReqID)
	w.task = rep.Task
	w.gate.Open()
}

// mergeTaskResults is Taskwait's combine: node-local rendezvous (the
// last arriving thread represents the node), one Allreduce whose
// combine merge-sorts the per-node record lists by task id — unique ids
// make the merge commutative and associative, as the collective
// requires — and a canonical-order sum shared back to the local
// threads. Single-node runs skip the collective.
func (t *Thread) mergeTaskResults() float64 {
	c, n, p := t.c, t.node, t.p
	rv := n.rendezvousFor("taskwait")
	rv.mu.Lock(p)
	myRound := rv.round
	rv.count++
	if rv.count < c.cfg.ThreadsPerNode {
		for rv.round == myRound {
			rv.cond.Wait(p)
		}
		res := rv.result
		rv.mu.Unlock(p)
		return res
	}
	rv.count = 0
	rv.mu.Unlock(p)

	local := append([]taskResult(nil), n.taskResults...)
	n.taskResults = n.taskResults[:0]
	sort.Slice(local, func(i, j int) bool { return local[i].id < local[j].id })
	merged := local
	if c.cfg.Nodes > 1 {
		res := c.world.Rank(n.id).Allreduce(p, local, 16*len(local)+16, mergeResultLists)
		merged = res.([]taskResult)
	}
	var sum float64
	for _, r := range merged {
		sum += r.val
	}

	rv.mu.Lock(p)
	rv.result = sum
	rv.round++
	rv.cond.Broadcast()
	rv.mu.Unlock(p)
	return sum
}

// mergeResultLists merges two id-sorted record lists, preserving order.
// Ids are unique across the team (spawn-path hashes), so the merge is
// commutative and associative — the contract Allreduce's combine
// requires.
func mergeResultLists(a, b any) any {
	as, bs := a.([]taskResult), b.([]taskResult)
	out := make([]taskResult, 0, len(as)+len(bs))
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		if as[i].id <= bs[j].id {
			out = append(out, as[i])
			i++
		} else {
			out = append(out, bs[j])
			j++
		}
	}
	out = append(out, as[i:]...)
	out = append(out, bs[j:]...)
	return out
}
