package core

import (
	"fmt"
	"sort"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// The distributed tasking runtime: explicit tasks (Thread.Task), the
// team-collective join (Thread.Taskwait), and the task-backed loop
// (Thread.Taskloop), scheduled over per-node deques with cross-node
// work stealing.
//
// The design follows the paper's division of labor. Scheduling state is
// locality-aware: a spawned task lands on its creator's node, local
// threads pop newest-first (LIFO keeps the working set warm), and
// thieves take the oldest task of the most-loaded remote node (FIFO
// steals move the coldest, largest-granularity work). Steal traffic is
// ordinary control-plane messaging (KindCtl over the simulated fabric),
// so it rides the netsim reliability and crash layers like every other
// protocol. Task results follow the hybrid split: the small per-task
// result records return through update-protocol collectives at
// Taskwait, while any large data a task produces stays in shared memory
// under HLRC and propagates through the ordinary barrier flush.
//
// Determinism. Steal outcomes depend on virtual-time races (who asks
// the chunk-server-like victim first), so which node executes a given
// task is timing-dependent — but every quantity that leaves the
// subsystem is not: task identity is a canonical spawn-path id
// (schedule-independent), and Taskwait merges result records across
// nodes sorted by id before reducing, so the returned value is
// bit-identical no matter who stole what. Victim selection itself is
// seeded from Config.Seed, making any single run reproducible.
//
// Two bulletin-board shortcuts lean on the simulation kernel's
// one-runnable-goroutine invariant (see internal/sim): thieves read
// remote deque lengths directly when picking a victim (modeling the
// load gossip real runtimes piggyback on their fabric), and idle
// threads park on a cluster-wide condition instead of polling. The
// task transfer itself always pays the full request/reply fabric cost.

// Control message subtypes for the steal and task-graph protocols.
const (
	ctlStealReq = iota + 20
	ctlStealReply
	ctlTaskDone // remote completion notification to a tracked task's origin
	ctlTaskPush // task delivery to the device node it is pinned to
)

// taskDescBytes models the wire size of a stolen task descriptor
// (function pointer, id, environment summary) — well under the
// SmallThreshold split, which is why steals ride the message-passing
// plane rather than HLRC.
const taskDescBytes = 64

// task is one deferred unit of work.
type task struct {
	id       uint64 // canonical spawn-path id (see taskID)
	fn       func(tc *Thread) float64
	children int // child-spawn counter, drives child id derivation

	// Task-graph state (zero for plain tasks).
	prio     int       // WithPriority rank, deque insertion key
	name     string    // WithTaskName registration
	origin   int       // spawning context's node, owner of the graph entry
	tracked  bool      // completion must be reported to origin
	pinned   bool      // Target task: must execute on device
	device   int       // pinned execution node
	maps     []MapSpec // Target data-mapping clauses
	depState *depState // this task's own children's dependence context

	// notices is the write-notice set inherited over incoming dependence
	// edges: applied (invalidating stale local copies) before the body
	// runs, and folded into the outgoing set at completion so release
	// consistency is transitive along graph paths.
	notices []dsm.WriteNotice
}

// taskResult is one executed task's contribution, merged at Taskwait.
type taskResult struct {
	id  uint64
	val float64
}

// stealReq asks a victim node for its oldest queued task.
type stealReq struct {
	ReqID int
	Thief int
}

// stealReply carries the stolen task, nil on a miss.
type stealReply struct {
	ReqID int
	Task  *task
}

// stealWait is a thief's parked steal request.
type stealWait struct {
	gate *sim.Gate
	task *task
}

// taskID derives a task's canonical id from its parent's id and its
// spawn ordinal under that parent (FNV-1a over both). The id depends
// only on the spawn path — which thread created the root and the chain
// of child ordinals below it — never on which node executed anything,
// so it is identical across steal schedules, fault profiles, and crash
// recoveries.
func taskID(parent uint64, seq int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(parent)
	mix(uint64(seq))
	return h
}

// splitmix64 is the seeded generator behind victim tie-breaking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Task spawns fn as a deferred task. The task is pushed onto the
// calling thread's node deque (locality: children start where their
// parent ran) and executes later on whichever thread — possibly of
// another node, via a steal — reaches a scheduling point: Taskwait,
// Taskloop's implicit join, or any team Barrier.
//
// fn receives the thread that actually executes it; all shared-memory
// access inside the body must go through that context, not the
// spawner's, or DSM accounting charges the wrong node. The returned
// float64 is the task's result record; the sum of all records since the
// last join is what Taskwait returns (return 0 for pure side-effect
// tasks).
// Task-graph clauses attach as TaskOptions: WithDepend orders the task
// after its predecessors (the task is held off the deques until they
// complete), WithTaskName registers it for DepTask references,
// WithPriority ranks it in the deques, and the loop-shaped ForTaskOption
// clauses are accepted for Taskloop symmetry.
func (t *Thread) Task(fn func(tc *Thread) float64, opts ...TaskOption) {
	cfg := taskConfig{}
	for _, o := range opts {
		o.applyTask(&cfg)
	}
	t.spawnTask(t.newTask(fn, &cfg), &cfg)
}

// newTask builds the task object for fn under cfg, deriving its
// canonical spawn-path id from the current context.
func (t *Thread) newTask(fn func(tc *Thread) float64, cfg *taskConfig) *task {
	var id uint64
	if t.curTask != nil {
		t.curTask.children++
		id = taskID(t.curTask.id, t.curTask.children)
	} else {
		t.rootSeq++
		id = taskID(uint64(t.gid)+0x517cc1b727220a95, t.rootSeq)
	}
	return &task{
		id:     id,
		fn:     fn,
		prio:   cfg.priority,
		name:   cfg.taskName,
		origin: t.node.id,
	}
}

// spawnTask is the single spawn path behind Task, Taskloop and Target.
// After the deque-push cost (the one yield), dependence resolution,
// enqueue and the liveness tallies run without yielding, so the whole
// spawn is atomic under the kernel; a push to a remote device node goes
// out last, after the task is already counted live.
func (t *Thread) spawnTask(tk *task, cfg *taskConfig) {
	c, n := t.c, t.node
	t.Compute(localPthreadOp) // deque push under the node's pthread lock
	held := false
	if len(cfg.deps) > 0 || tk.name != "" {
		tk.tracked = true
		held = t.resolveDeps(tk, cfg)
	}
	if !held && (!tk.pinned || tk.device == n.id) {
		n.enqueueTask(tk)
	}
	if c.lanes {
		// Lane mode (lanes.go): no cluster-wide live count or wake — the
		// spawn tally feeds the quiescence vote instead. Held and pinned
		// tasks tally on the spawner too: the vote sums over all nodes,
		// so a task spawned here and executed elsewhere still balances.
		n.taskSpawned++
		c.cnt(n.id).TasksSpawned++
		c.rec.TaskSpawned(n.id)
	} else {
		c.tasksLive++
		c.counters.TasksSpawned++
		c.rec.TaskSpawned(n.id)
		c.taskWake()
	}
	// MapFrom pages queue for this node's barrier-time refresh batch now,
	// at spawn, in program order — not when the remote completion lands,
	// whose timing depends on the fault schedule.
	for _, ms := range tk.maps {
		if ms.Dir != MapTo {
			c.engine.QueueRefresh(n.id, ms.Pages)
		}
	}
	if !held && tk.pinned && tk.device != n.id {
		c.net.Send(t.p, &netsim.Message{
			From: n.id, To: tk.device, Kind: KindCtl, Type: ctlTaskPush,
			Bytes: taskDescBytes, Payload: tk,
		})
	}
}

// Taskwait is the team-collective join: every team thread must call it
// (SPMD, like any directive). Arriving threads execute queued tasks —
// their own node's newest-first, then steals — until no task is live
// anywhere; the per-node result records are then merged across nodes
// with one collective (sorted by task id, so the reduction order is
// canonical) and the sum of every task's result since the previous join
// is returned, identical on all threads. A trailing team barrier
// flushes task-made shared-memory writes, completing the hybrid split:
// small results returned by collective, large data through HLRC.
func (t *Thread) Taskwait() float64 {
	rec, t0 := t.directiveStart()
	// This thread's root context is closing: no sibling can register task
	// names anymore, so dangling DepTask references resolve vacuously and
	// the tasks they held become runnable.
	t.c.resolvePending(t.p, t.node.id, t.depState)
	if t.c.lanes {
		t.drainTasksLane()
	} else {
		// Register this thread's arrival before draining: the join may
		// only terminate once every team thread has arrived (and thus
		// finished spawning for this region). The lane path needs no
		// equivalent — its quiescence vote is itself team-collective.
		t.joinEpoch++
		t.c.taskArrived++
		t.c.taskWake()
		t.drainTasks(t.joinEpoch * uint64(t.c.TotalThreads()))
	}
	out := t.mergeTaskResults()
	t.Barrier()
	t.depState = nil // next task region starts a fresh dependence context
	rec.Directive(t0, t.p.Now(), t.node.id, "taskwait", "taskwait")
	return out
}

// Taskloop partitions [lo, hi) into chunks of WithGrainsize iterations
// (default: one thread's static share split in taskGrainDiv) and spawns
// each chunk as a task on its statically-owning thread's node, so the
// initial placement matches the static schedule's locality and stealing
// only moves work when load imbalance develops. body receives the
// executing thread's context plus the iteration index; per-iteration
// virtual cost attaches with WithIterCost. The implicit Taskwait
// returns the sum of the body's results; Nowait skips the join (and
// returns 0), leaving the chunks for a later scheduling point.
//
// Task-graph clauses apply to every chunk: WithDepend makes each chunk
// declare the same dependences (an Out handle therefore serializes one
// thread's chunks; In handles keep them parallel behind the writer),
// and WithPriority ranks them all. WithTaskName is ignored — chunks are
// anonymous, a shared name would just rebind to the newest chunk.
func (t *Thread) Taskloop(lo, hi int, body func(tc *Thread, i int) float64, opts ...TaskOption) float64 {
	cfg := taskConfig{}
	for _, o := range opts {
		o.applyTask(&cfg)
	}
	cfg.taskName = ""
	myLo, myHi := t.StaticRange(lo, hi)
	grain := cfg.chunk
	if grain < 1 {
		grain = (myHi - myLo) / taskGrainDiv
		if grain < 1 {
			grain = 1
		}
	}
	perIter := cfg.perIter
	for clo := myLo; clo < myHi; clo += grain {
		chi := clo + grain
		if chi > myHi {
			chi = myHi
		}
		clo, chi := clo, chi
		fn := func(tc *Thread) float64 {
			var sum float64
			for i := clo; i < chi; i++ {
				sum += body(tc, i)
			}
			if perIter > 0 {
				tc.Compute(perIter * sim.Duration(chi-clo))
			}
			return sum
		}
		t.spawnTask(t.newTask(fn, &cfg), &cfg)
	}
	if cfg.nowait {
		return 0
	}
	return t.Taskwait()
}

// taskGrainDiv splits one thread's static share into this many default
// Taskloop chunks — enough slack for stealing to rebalance, few enough
// that per-task overhead stays small.
const taskGrainDiv = 4

// drainTasks executes queued tasks until none is live cluster-wide and,
// when arriveTarget is nonzero, every team thread has arrived at the
// join (c.taskArrived has reached the target): local LIFO pops first,
// then cross-node steals, then parking on the cluster task condition
// until a push, completion, or arrival changes the picture.
//
// The arrival requirement is what makes the collective join sound: the
// live count can be transiently zero while a sibling thread — still on
// its way to Taskwait — has tasks left to spawn, possibly pinned to
// THIS node, which no other node may execute. Barrier's scheduling-
// point drain passes target 0 (plain live-count loop), preserving its
// best-effort semantics and task-free timing.
func (t *Thread) drainTasks(arriveTarget uint64) {
	c := t.c
	for c.tasksLive > 0 || c.taskArrived < arriveTarget {
		if tk := t.popLocalTask(); tk != nil {
			t.runTask(tk)
			continue
		}
		if tk := t.stealTask(); tk != nil {
			t.runTask(tk)
			continue
		}
		c.taskMu.Lock(t.p)
		if (c.tasksLive > 0 || c.taskArrived < arriveTarget) && !c.anyQueuedTaskFor(t.node.id) {
			c.taskCond.Wait(t.p)
		}
		c.taskMu.Unlock(t.p)
	}
}

// popLocalTask takes the newest task of this thread's node (LIFO: the
// most recently spawned work has the warmest pages).
func (t *Thread) popLocalTask() *task {
	n := t.node
	if len(n.taskq) == 0 {
		return nil
	}
	t.Compute(localPthreadOp)
	// The pop cost is a preemption point; a sibling may have drained the
	// deque meanwhile.
	if len(n.taskq) == 0 {
		return nil
	}
	tk := n.taskq[len(n.taskq)-1]
	n.taskq = n.taskq[:len(n.taskq)-1]
	return tk
}

// stealTask asks the most-loaded remote node for its oldest task via a
// control-plane round trip. Returns nil when no remote node has queued
// work or when the victim's deque emptied before the request arrived (a
// miss).
func (t *Thread) stealTask() *task {
	c, n, p := t.c, t.node, t.p
	victim := c.chooseVictim(n.id)
	if victim < 0 {
		return nil
	}
	start := c.s.Now()
	c.counters.StealRequests++
	c.rec.StealRequest(n.id)
	n.stealSeq++
	reqID := n.stealSeq
	w := &stealWait{gate: sim.NewGate(c.s)}
	n.stealWaits[reqID] = w
	c.net.Send(p, &netsim.Message{
		From: n.id, To: victim, Kind: KindCtl, Type: ctlStealReq,
		Bytes: 24, Payload: stealReq{ReqID: reqID, Thief: n.id},
	})
	w.gate.Wait(p)
	hit := w.task != nil
	if hit {
		c.counters.StealHits++
		c.counters.TasksStolen++
	} else {
		c.counters.StealMisses++
	}
	c.rec.StealDone(start, c.s.Now(), n.id, victim, hit)
	return w.task
}

// chooseVictim picks the remote node with the most stealable (non-
// pinned) queued tasks; ties break by a rotation drawn from the
// Config.Seed-derived steal sequence, so victim selection is
// deterministic for a given seed yet unbiased across nodes. Pinned
// tasks never leave their device node, so counting them would send
// thieves on guaranteed-miss round trips. Returns -1 when no remote
// node has stealable work.
func (c *Cluster) chooseVictim(thief int) int {
	nodes := len(c.nodes)
	if nodes < 2 {
		return -1
	}
	rot := int(c.stealRot % uint64(nodes))
	c.stealRot = splitmix64(c.stealRot)
	best, bestLen := -1, 0
	for k := 0; k < nodes; k++ {
		id := (rot + k) % nodes
		if id == thief {
			continue
		}
		l := 0
		for _, tk := range c.nodes[id].taskq {
			if !tk.pinned {
				l++
			}
		}
		if l > bestLen {
			best, bestLen = id, l
		}
	}
	return best
}

// anyQueuedTaskFor reports whether node nodeID's threads have actionable
// queued work: any task on their own deque (poppable, pinned or not),
// or a stealable (non-pinned) task on any other node. A task pinned to
// a different node is not actionable here — parking on it would just
// spin the steal path on guaranteed misses.
func (c *Cluster) anyQueuedTaskFor(nodeID int) bool {
	for id, n := range c.nodes {
		if id == nodeID {
			if len(n.taskq) > 0 {
				return true
			}
			continue
		}
		for _, tk := range n.taskq {
			if !tk.pinned {
				return true
			}
		}
	}
	return false
}

// taskWake wakes every thread parked on the task condition so it can
// re-examine the deques and the live count.
func (c *Cluster) taskWake() {
	c.taskCond.Broadcast()
}

// runTask executes one task on t, records its result on t's node,
// retires it from the live count, and — for tracked tasks — reports the
// completion to the origin node so the dependence resolver can release
// successors.
func (t *Thread) runTask(tk *task) {
	c := t.c
	if len(tk.maps) > 0 {
		t.prefetchMaps(tk)
	}
	if len(tk.notices) > 0 {
		// Acquire: the write notices inherited over tk's incoming edges
		// invalidate this node's stale copies before the body reads them.
		c.engine.ApplyNotices(t.node.id, tk.notices)
	}
	prev := t.curTask
	t.curTask = tk
	v := tk.fn(t)
	t.curTask = prev
	// tk's own children's context closes with tk: dangling DepTask
	// references among them resolve vacuously now.
	if tk.depState != nil {
		c.resolvePending(t.p, t.node.id, tk.depState)
		tk.depState = nil
	}
	var outgoing []dsm.WriteNotice
	if tk.tracked {
		// Release: flush this node's modifications home before any
		// successor can be released, and pass the notices down the edges
		// (inherited plus this interval's own, so visibility is
		// transitive along graph paths).
		outgoing = mergeNotices(tk.notices, c.engine.TaskFlush(t.p, t.node.id))
	}
	t.node.taskResults = append(t.node.taskResults, taskResult{id: tk.id, val: v})
	if c.lanes {
		t.node.taskExecuted++
		c.cnt(t.node.id).TasksExecuted++
		c.rec.TaskExecuted(t.node.id)
	} else {
		c.counters.TasksExecuted++
		c.rec.TaskExecuted(t.node.id)
		c.tasksLive--
		c.taskWake()
	}
	if tk.tracked {
		if tk.origin == t.node.id {
			c.taskDone(t.p, tk.origin, tk.id, outgoing)
		} else {
			c.net.Send(t.p, &netsim.Message{
				From: t.node.id, To: tk.origin, Kind: KindCtl, Type: ctlTaskDone,
				Bytes: 24 + 8*len(outgoing), Payload: taskDoneMsg{ID: tk.id, Notices: outgoing},
			})
		}
	}
}

// handleStealReq runs on the victim's communication thread: pop the
// oldest stealable queued task (FIFO from the thief's perspective — the
// coldest, largest-granularity, lowest-priority work) and reply,
// possibly with a miss. Tasks pinned to this node by Target never leave.
func (c *Cluster) handleStealReq(p *sim.Proc, nodeID int, m *netsim.Message) {
	req := m.Payload.(stealReq)
	n := c.nodes[nodeID]
	n.cpu.Compute(p, serveCost)
	var tk *task
	bytes := 16
	for i, q := range n.taskq {
		if q.pinned {
			continue
		}
		tk = q
		copy(n.taskq[i:], n.taskq[i+1:])
		n.taskq[len(n.taskq)-1] = nil
		n.taskq = n.taskq[:len(n.taskq)-1]
		bytes = taskDescBytes
		break
	}
	c.net.Send(p, &netsim.Message{
		From: nodeID, To: req.Thief, Kind: KindCtl, Type: ctlStealReply,
		Bytes: bytes, Payload: stealReply{ReqID: req.ReqID, Task: tk},
	})
}

// handleStealReply wakes the thief's parked steal request.
func (c *Cluster) handleStealReply(nodeID int, m *netsim.Message) {
	rep := m.Payload.(stealReply)
	n := c.nodes[nodeID]
	w := n.stealWaits[rep.ReqID]
	if w == nil {
		panic(fmt.Sprintf("core: steal reply for unknown request %d", rep.ReqID))
	}
	delete(n.stealWaits, rep.ReqID)
	w.task = rep.Task
	w.gate.Open()
}

// mergeTaskResults is Taskwait's combine: node-local rendezvous (the
// last arriving thread represents the node), one Allreduce whose
// combine merge-sorts the per-node record lists by task id — unique ids
// make the merge commutative and associative, as the collective
// requires — and a canonical-order sum shared back to the local
// threads. Single-node runs skip the collective.
func (t *Thread) mergeTaskResults() float64 {
	c, n, p := t.c, t.node, t.p
	rv := n.rendezvousFor("taskwait")
	rv.mu.Lock(p)
	myRound := rv.round
	rv.count++
	if rv.count < c.cfg.ThreadsPerNode {
		for rv.round == myRound {
			rv.cond.Wait(p)
		}
		res := rv.result
		rv.mu.Unlock(p)
		return res
	}
	rv.count = 0
	rv.mu.Unlock(p)

	local := append([]taskResult(nil), n.taskResults...)
	n.taskResults = n.taskResults[:0]
	sort.Slice(local, func(i, j int) bool { return local[i].id < local[j].id })
	merged := local
	if c.cfg.Nodes > 1 {
		res := c.world.Rank(n.id).Allreduce(p, local, 16*len(local)+16, mergeResultLists)
		merged = res.([]taskResult)
	}
	var sum float64
	for _, r := range merged {
		sum += r.val
	}

	rv.mu.Lock(p)
	rv.result = sum
	rv.round++
	rv.cond.Broadcast()
	rv.mu.Unlock(p)
	return sum
}

// mergeResultLists merges two id-sorted record lists, preserving order.
// Ids are unique across the team (spawn-path hashes), so the merge is
// commutative and associative — the contract Allreduce's combine
// requires.
func mergeResultLists(a, b any) any {
	as, bs := a.([]taskResult), b.([]taskResult)
	out := make([]taskResult, 0, len(as)+len(bs))
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		if as[i].id <= bs[j].id {
			out = append(out, as[i])
			i++
		} else {
			out = append(out, bs[j])
			j++
		}
	}
	out = append(out, as[i:]...)
	out = append(out, bs[j:]...)
	return out
}
