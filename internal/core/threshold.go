package core

import (
	"math/bits"

	"parade/internal/hlrc"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// AutoThreshold derives the small-structure threshold of §5.2.1 from
// first principles: "The threshold is dependent on the startup cost of
// message-passing operations and the overhead of creating a twin and
// diffs for a page." It returns the largest 8-byte-aligned object size
// for which one update-protocol round (an allreduce of the object) is
// cheaper than one invalidate-protocol round (the lock round trip, page
// invalidation, page fetch on next access, twin, and diff scan that a
// lock-based critical pays).
//
// For the paper's cLAN VIA cluster this lands in the hundreds of bytes —
// the paper chose 256 — and it shrinks as nodes are added (collectives
// get deeper) or as the fabric gets slower per byte.
func AutoThreshold(fabric netsim.Fabric, cost hlrc.CostModel, nodes int) int {
	if nodes < 2 {
		// No network on one node; any size may use the local fast path.
		return 1 << 20
	}
	invalidate := invalidatePathCost(fabric, cost)
	// Find the largest size whose collective cost stays below it.
	best := 0
	for size := 8; size <= 1<<20; size *= 2 {
		if updatePathCost(fabric, nodes, size) <= invalidate {
			best = size
		} else {
			break
		}
	}
	// Refine within [best, 2*best) in 8-byte steps.
	for size := best + 8; size < best*2; size += 8 {
		if updatePathCost(fabric, nodes, size) <= invalidate {
			best = size
		} else {
			break
		}
	}
	if best < 8 {
		best = 8
	}
	return best
}

// updatePathCost models one allreduce of `size` bytes over `nodes` ranks
// (recursive doubling: log2 rounds, each sending AND receiving the
// object, so the payload is processed twice per round).
func updatePathCost(fabric netsim.Fabric, nodes, size int) sim.Duration {
	rounds := bits.Len(uint(nodes - 1))
	byteCost := sim.Duration(2 * int64(size+fabric.HeaderBytes) * int64(sim.Second) / fabric.BandwidthBps)
	perMsg := fabric.SendOverhead + fabric.RecvOverhead + fabric.Latency + byteCost
	return sim.Duration(rounds) * perMsg
}

// invalidatePathCost models the conventional critical's per-operation
// synchronization overhead: the lock request/grant round trip plus the
// twin, diff scan, and diff/release messages of the release. The page
// fetch on the next access is excluded — it amortizes over accesses —
// which keeps the derived threshold conservative, as the paper's choice
// of 256 bytes is.
func invalidatePathCost(fabric netsim.Fabric, cost hlrc.CostModel) sim.Duration {
	msg := func(bytes int) sim.Duration {
		return fabric.SendOverhead + fabric.RecvOverhead + fabric.Latency +
			sim.Duration(int64(bytes+fabric.HeaderBytes)*int64(sim.Second)/fabric.BandwidthBps)
	}
	lockRTT := 2 * msg(16)
	diffs := cost.TwinCreate + cost.DiffScan + msg(128) + cost.DiffApply
	return lockRTT + diffs + cost.FaultHandler + 2*cost.LockManage
}
