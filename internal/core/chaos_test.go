package core

import (
	"testing"

	"parade/internal/netsim"
)

// TestChaosZeroProfileIsTimingNeutral: attaching a fault plane that
// injects nothing must not change the modeled execution at all — the
// reliability sublayer's acks and timers ride outside the CPU and NIC
// models, so deliveries land at the same virtual instants and the run
// is cycle-identical to the ideal fabric, with zero recovery activity.
func TestChaosZeroProfileIsTimingNeutral(t *testing.T) {
	var arr F64Array
	program := func(m *Thread) {
		arr = m.Cluster().AllocF64(1024)
		m.Parallel(func(tt *Thread) {
			for i := 0; i < 8; i++ {
				tt.ForCost(0, 128, 2000, func(j int) {
					arr.Set(tt, j, arr.Get(tt, j)+float64(i*j))
				})
			}
		})
	}
	base, err := Run(Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}, program)
	if err != nil {
		t.Fatal(err)
	}
	prof := netsim.Profile{Name: "none", Seed: 1}
	faulted, err := Run(Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true, Faults: &prof}, program)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Time != base.Time {
		t.Fatalf("zero-fault plane changed virtual time: %v vs %v", faulted.Time, base.Time)
	}
	if faulted.MemHash != base.MemHash {
		t.Fatal("zero-fault plane changed final DSM state")
	}
	c := faulted.Counters
	if c.Retransmits != 0 || c.Timeouts != 0 || c.DupsSuppressed != 0 {
		t.Fatalf("zero-fault plane caused recovery activity: retrans=%d timeouts=%d dups=%d",
			c.Retransmits, c.Timeouts, c.DupsSuppressed)
	}
	if c.AcksSent == 0 {
		t.Fatal("reliability sublayer not engaged")
	}
	if base.Counters.AcksSent != 0 {
		t.Fatal("ideal fabric sent acks")
	}
}
