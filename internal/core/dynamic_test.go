package core

import (
	"testing"

	"parade/internal/sim"
)

func TestForDynamicCoversAllIterations(t *testing.T) {
	cfg := Config{Nodes: 3, ThreadsPerNode: 2}
	counts := make([]int, 500)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.ForDynamic("loop", 0, 500, 7, 0, func(i int) { counts[i]++ })
		})
	})
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("iteration %d executed %d times", i, n)
		}
	}
}

func TestForDynamicEmptyRange(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	ran := 0
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.ForDynamic("empty", 5, 5, 4, 0, func(i int) { ran++ })
		})
	})
	if ran != 0 {
		t.Fatalf("empty loop ran %d iterations", ran)
	}
}

func TestForDynamicRepeatedInstances(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	total := 0
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			for round := 0; round < 4; round++ {
				tc.ForDynamic("again", 0, 50, 8, 0, func(i int) {
					tc.node.barMu.Lock(tc.p)
					total++
					tc.node.barMu.Unlock(tc.p)
				})
			}
		})
	})
	if total != 200 {
		t.Fatalf("4 rounds of 50 iterations = %d, want 200", total)
	}
}

func TestForDynamicBalancesImbalancedWork(t *testing.T) {
	// A triangular workload: iteration i costs i time units. Under the
	// static schedule the last thread owns the most expensive block;
	// dynamic chunks even it out (the paper's §8 motivation).
	const n = 256
	measure := func(dynamic bool) sim.Duration {
		cfg := Config{Nodes: 4, ThreadsPerNode: 1}
		var start, end sim.Time
		run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {}) // warm the team
			m.Parallel(func(tc *Thread) {
				tc.Master(func() { start = tc.Now() })
				body := func(i int) {
					tc.Compute(sim.Duration(i) * 10 * sim.Microsecond)
				}
				if dynamic {
					tc.ForDynamic("tri", 0, n, 4, 0, body)
				} else {
					tc.For(0, n, body)
				}
				tc.Master(func() { end = tc.Now() })
			})
		})
		return sim.Duration(end - start)
	}
	static, dynamic := measure(false), measure(true)
	if dynamic >= static {
		t.Fatalf("dynamic schedule (%v) not faster than static (%v) on triangular work", dynamic, static)
	}
	// Perfect balance would be ~25% of serial; static ends around the
	// last block's share (~44%). Expect dynamic below 0.8x static.
	if float64(dynamic) > 0.8*float64(static) {
		t.Fatalf("dynamic %v gained too little over static %v", dynamic, static)
	}
}

func TestForDynamicChunkTrafficScalesInversely(t *testing.T) {
	msgs := func(chunk int) int64 {
		cfg := Config{Nodes: 4, ThreadsPerNode: 1}
		rep := run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {
				tc.ForDynamic("traffic", 0, 400, chunk, 0, func(i int) {})
			})
		})
		return rep.Counters.Messages
	}
	small, large := msgs(2), msgs(50)
	if small <= large {
		t.Fatalf("chunk=2 used %d messages, chunk=50 used %d — smaller chunks must cost more traffic", small, large)
	}
}

func TestForGuidedCoversAllIterations(t *testing.T) {
	cfg := Config{Nodes: 3, ThreadsPerNode: 2}
	counts := make([]int, 1000)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.ForGuided("g", 0, 1000, 4, 0, func(i int) { counts[i]++ })
		})
	})
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("iteration %d ran %d times", i, n)
		}
	}
}

func TestForGuidedFewerRequestsThanDynamic(t *testing.T) {
	msgs := func(guided bool) int64 {
		cfg := Config{Nodes: 4, ThreadsPerNode: 1}
		rep := run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {
				if guided {
					tc.ForGuided("s", 0, 2000, 4, 0, func(i int) {})
				} else {
					tc.ForDynamic("s", 0, 2000, 4, 0, func(i int) {})
				}
			})
		})
		return rep.Counters.Messages
	}
	g, d := msgs(true), msgs(false)
	if g >= d {
		t.Fatalf("guided used %d messages, dynamic %d — guided must use fewer", g, d)
	}
}
