package core

import (
	"math/rand"
	"testing"

	"parade/internal/sim"
)

// Executable versions of the paper's §7 programming guidelines: each
// test demonstrates, with protocol counters, why the guideline holds.

// §7: "we can annotate local variables as private, read-only shared
// variables as firstprivate" — a replicated local costs nothing, while
// reading the same value through shared memory faults a page per node.
func TestGuidelineFirstprivateBeatsSharedScalar(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}

	// Shared-memory version: every node reads the parameter's page.
	shared := run(t, cfg, func(m *Thread) {
		p := m.Cluster().AllocF64(1)
		p.Set(m, 0, 3.14)
		m.Parallel(func(tc *Thread) {
			_ = p.Get(tc, 0)
		})
	})
	// Firstprivate version: the value travels in the program image.
	private := run(t, cfg, func(m *Thread) {
		p := 3.14
		m.Parallel(func(tc *Thread) {
			_ = p
		})
	})
	if private.Counters.PageFetches >= shared.Counters.PageFetches {
		t.Fatalf("firstprivate fetched %d pages, shared %d — guideline violated",
			private.Counters.PageFetches, shared.Counters.PageFetches)
	}
}

// §7: "applications like equation solver repeating iterations until
// satisfying a certain termination condition take significant advantage
// of explicit message-passing primitives" — the reduction clause beats a
// critical-guarded shared accumulator checked after a barrier.
func TestGuidelineReductionBeatsLockedTerminationCheck(t *testing.T) {
	const iters = 20
	cfg := Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}

	measure := func(useReduction bool) sim.Duration {
		var start, end sim.Time
		mode := cfg
		if !useReduction {
			mode.Mode = SDSM // conventional lowering for every directive
		}
		_, err := Run(mode, func(m *Thread) {
			m.Parallel(func(tc *Thread) {}) // warm
			m.Parallel(func(tc *Thread) {
				tc.Master(func() { start = tc.Now() })
				for k := 0; k < iters; k++ {
					_ = tc.Reduce("err", OpSum, 1.0)
				}
				tc.Master(func() { end = tc.Now() })
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(end - start)
	}
	hybrid, conventional := measure(true), measure(false)
	if hybrid >= conventional {
		t.Fatalf("hybrid termination check %v not faster than conventional %v", hybrid, conventional)
	}
}

// §7: "we can reduce the number of shared pages by declaring the arrays
// used temporarily to store intermediate values as local variables
// within a parallel block" — a private scratch buffer causes no page
// traffic, a shared one invalidates and refetches every interval.
func TestGuidelinePrivateScratchArrays(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}
	const n = 4096

	sharedScratch := run(t, cfg, func(m *Thread) {
		in := m.Cluster().AllocF64(n)
		scratch := m.Cluster().AllocF64(n)
		m.Parallel(func(tc *Thread) {
			for iter := 0; iter < 3; iter++ {
				// Shifted ranges force cross-node scratch sharing.
				lo, hi := tc.StaticRange(0, n)
				for i := lo; i < hi; i++ {
					scratch.Set(tc, (i+n/2)%n, in.Get(tc, i)+1)
				}
				tc.Barrier()
				for i := lo; i < hi; i++ {
					in.Set(tc, i, scratch.Get(tc, i))
				}
				tc.Barrier()
			}
		})
	})
	privateScratch := run(t, cfg, func(m *Thread) {
		in := m.Cluster().AllocF64(n)
		m.Parallel(func(tc *Thread) {
			scratch := make([]float64, n) // private per thread
			for iter := 0; iter < 3; iter++ {
				lo, hi := tc.StaticRange(0, n)
				for i := lo; i < hi; i++ {
					scratch[(i+n/2)%n] = in.Get(tc, i) + 1
				}
				tc.Barrier()
				for i := lo; i < hi; i++ {
					in.Set(tc, i, scratch[i])
				}
				tc.Barrier()
			}
		})
	})
	if privateScratch.Counters.DiffBytes >= sharedScratch.Counters.DiffBytes {
		t.Fatalf("private scratch moved %d diff bytes, shared %d — guideline violated",
			privateScratch.Counters.DiffBytes, sharedScratch.Counters.DiffBytes)
	}
}

// §7: "programmers are guided to use the reduction clause or the atomic
// directive instead of the critical directive" for non-analyzable
// blocks — an analyzable accumulation via Atomic avoids every lock.
func TestGuidelineAtomicOverOpaqueCritical(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}
	atomic := run(t, cfg, func(m *Thread) {
		s := m.Cluster().ScalarVar("x")
		m.Parallel(func(tc *Thread) {
			for i := 0; i < 10; i++ {
				tc.Atomic(s, 1)
			}
		})
	})
	opaque := run(t, cfg, func(m *Thread) {
		s := m.Cluster().ScalarVar("x")
		m.Parallel(func(tc *Thread) {
			for i := 0; i < 10; i++ {
				// nil scalars: the translator could not analyze the block.
				tc.Critical("x", nil, func() { s.Set(tc, s.Get(tc)+1) })
			}
		})
	})
	if atomic.Counters.LockRequests != 0 {
		t.Fatalf("atomic path took %d locks", atomic.Counters.LockRequests)
	}
	if opaque.Counters.LockRequests == 0 {
		t.Fatal("opaque critical took no locks")
	}
	if atomic.Time >= opaque.Time {
		t.Fatalf("atomic %v not faster than opaque critical %v", atomic.Time, opaque.Time)
	}
}

// Randomized end-to-end oracle at the runtime level with multi-threaded
// nodes: threads write disjoint random slices of a shared array between
// barriers; after each barrier every thread must observe the union of
// all writes. Exercises the full stack (fork-join, node-local barriers,
// HLRC, multi-writer pages) under node-level thread concurrency.
func TestRuntimeRandomizedOracle(t *testing.T) {
	cfg := Config{Nodes: 3, ThreadsPerNode: 2, HomeMigration: true}
	const (
		n      = 2048
		rounds = 6
	)
	rng := rand.New(rand.NewSource(99))
	// writes[r][gid] = map idx -> val; idx space partitioned per round by
	// rotating ownership so pages change writers.
	writes := make([]map[int]map[int]float64, rounds)
	oracle := make([]map[int]float64, rounds)
	acc := map[int]float64{}
	for r := range writes {
		writes[r] = map[int]map[int]float64{}
		for gid := 0; gid < 6; gid++ {
			writes[r][gid] = map[int]float64{}
		}
		for k := 0; k < 300; k++ {
			idx := rng.Intn(n)
			owner := (idx + r) % 6
			val := float64(rng.Intn(1 << 16))
			writes[r][owner][idx] = val
		}
		for _, byGid := range writes[r] {
			for idx, val := range byGid {
				acc[idx] = val
			}
		}
		snap := make(map[int]float64, len(acc))
		for k, v := range acc {
			snap[k] = v
		}
		oracle[r] = snap
	}

	mismatches := 0
	run(t, cfg, func(m *Thread) {
		a := m.Cluster().AllocF64(n)
		m.Parallel(func(tc *Thread) {
			for r := 0; r < rounds; r++ {
				for idx, val := range writes[r][tc.GID()] {
					a.Set(tc, idx, val)
				}
				tc.Barrier()
				// Sample 50 random-but-deterministic indices.
				h := uint32(tc.GID()*2654435761 + r*40503)
				for k := 0; k < 50; k++ {
					h = h*1664525 + 1013904223
					idx := int(h % uint32(n))
					want := oracle[r][idx]
					if a.Get(tc, idx) != want {
						mismatches++
					}
				}
				tc.Barrier()
			}
		})
	})
	if mismatches != 0 {
		t.Fatalf("%d oracle mismatches", mismatches)
	}
}
