package core

import "fmt"

// Target: the cluster-as-device offload primitive. A Target task is an
// ordinary graph task pinned to one node — the "device" — with explicit
// data movement declared by map clauses instead of demand faults:
// map(to) pages are pushed to the device in one batched prefetch before
// the body runs, and map(from) pages are queued (at spawn, in program
// order) for the spawning node's next barrier-time refresh, so the
// results return eagerly without the spawner re-faulting page by page.
// This is the model of the cluster-device OpenMP papers: the DSM stays
// the correctness backstop — anything not mapped still faults — while
// maps turn the hot transfers into bulk, predictable traffic.

// Target spawns fn as a task pinned to the device node: it is delivered
// to that node's deque (over the fabric when remote), executes only
// there — thieves skip pinned tasks — and joins like any other task at
// Taskwait. All TaskOptions apply; dependence bookkeeping stays on the
// spawning node, which releases the task to the device once its
// predecessors complete. WithMap clauses take effect only here: MapTo
// pages are batch-prefetched on the device before fn runs, MapFrom
// pages are queued for the spawning node's next barrier refresh.
//
// device must be a valid node id; a program offloading to a nonexistent
// device panics, like any other out-of-range shared-memory access.
func (t *Thread) Target(device int, fn func(tc *Thread) float64, opts ...TaskOption) {
	if device < 0 || device >= t.c.cfg.Nodes {
		panic(fmt.Sprintf("core: Target device %d out of range [0,%d)", device, t.c.cfg.Nodes))
	}
	cfg := taskConfig{}
	for _, o := range opts {
		o.applyTask(&cfg)
	}
	tk := t.newTask(fn, &cfg)
	tk.pinned = true
	tk.device = device
	tk.maps = cfg.maps
	t.spawnTask(tk, &cfg)
}

// prefetchMaps runs in the task prologue on the executing (device)
// node: one batched pull of every MapTo/MapToFrom page that is not
// already valid locally, replacing the demand faults the body would
// otherwise take one page at a time.
func (t *Thread) prefetchMaps(tk *task) {
	var pages []int
	for _, ms := range tk.maps {
		if ms.Dir != MapFrom {
			pages = append(pages, ms.Pages...)
		}
	}
	if len(pages) == 0 {
		return
	}
	t.c.engine.PrefetchPages(t.p, t.node.id, pages)
}
