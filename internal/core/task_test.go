package core

import (
	"testing"

	"parade/internal/sim"
)

func TestTaskwaitReturnsSumOnEveryThread(t *testing.T) {
	cfg := Config{Nodes: 3, ThreadsPerNode: 2}
	const perThread = 8
	results := make([]float64, 6)
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			for k := 0; k < perThread; k++ {
				v := float64(tc.GID()*perThread + k)
				tc.Task(func(*Thread) float64 { return v })
			}
			results[tc.GID()] = tc.Taskwait()
		})
	})
	n := 6 * perThread
	want := float64(n*(n-1)) / 2
	for gid, got := range results {
		if got != want {
			t.Fatalf("thread %d: Taskwait() = %v, want %v", gid, got, want)
		}
	}
	if rep.Counters.TasksSpawned != int64(n) || rep.Counters.TasksExecuted != int64(n) {
		t.Fatalf("spawned=%d executed=%d, want %d each",
			rep.Counters.TasksSpawned, rep.Counters.TasksExecuted, n)
	}
}

func TestTaskStealingMovesImbalancedWork(t *testing.T) {
	// Only the master spawns; its node cannot drain everything before the
	// idle nodes arrive at Taskwait and steal across the fabric.
	cfg := Config{Nodes: 4, ThreadsPerNode: 1}
	const tasks = 64
	execNode := make([]int, tasks)
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				for k := 0; k < tasks; k++ {
					k := k
					tc.Task(func(ex *Thread) float64 {
						ex.Compute(50 * sim.Microsecond)
						execNode[k] = ex.NodeID()
						return 1
					})
				}
			}
			if got := tc.Taskwait(); got != tasks {
				t.Errorf("Taskwait() = %v, want %d", got, tasks)
			}
		})
	})
	if rep.Counters.TasksStolen == 0 {
		t.Fatalf("no tasks stolen under a 1-spawner/4-node imbalance: %s", rep.Counters.String())
	}
	if rep.Counters.StealHits+rep.Counters.StealMisses != rep.Counters.StealRequests {
		t.Fatalf("hits %d + misses %d != requests %d", rep.Counters.StealHits,
			rep.Counters.StealMisses, rep.Counters.StealRequests)
	}
	remote := 0
	for _, n := range execNode {
		if n != 0 {
			remote++
		}
	}
	if int64(remote) != rep.Counters.TasksStolen {
		t.Fatalf("%d tasks ran off-node but TasksStolen = %d", remote, rep.Counters.TasksStolen)
	}
}

func TestTaskNestedSpawnCompletesTransitively(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				for k := 0; k < 4; k++ {
					tc.Task(func(ex *Thread) float64 {
						// Each task fans out two children; children spawn a
						// grandchild each. 4 * (1 + 2*(1+1)) = 20 tasks.
						for c := 0; c < 2; c++ {
							ex.Task(func(ex2 *Thread) float64 {
								ex2.Task(func(*Thread) float64 { return 1 })
								return 1
							})
						}
						return 1
					})
				}
			}
			if got := tc.Taskwait(); got != 20 {
				t.Errorf("Taskwait() = %v, want 20", got)
			}
		})
	})
	if rep.Counters.TasksExecuted != 20 {
		t.Fatalf("executed %d tasks, want 20", rep.Counters.TasksExecuted)
	}
}

func TestTaskloopCoversAllIterations(t *testing.T) {
	cfg := Config{Nodes: 3, ThreadsPerNode: 2}
	counts := make([]int, 300)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			got := tc.Taskloop(0, 300, func(ex *Thread, i int) float64 {
				counts[i]++
				return float64(i)
			}, WithGrainsize(16))
			if want := float64(300*299) / 2; got != want {
				t.Errorf("Taskloop() = %v, want %v", got, want)
			}
		})
	})
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("iteration %d executed %d times", i, n)
		}
	}
}

func TestTaskSingleNode(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 4}
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.Task(func(*Thread) float64 { return float64(tc.GID() + 1) })
			if got := tc.Taskwait(); got != 10 {
				t.Errorf("Taskwait() = %v, want 10", got)
			}
		})
	})
	if rep.Counters.StealRequests != 0 {
		t.Fatalf("single-node run issued %d steal requests", rep.Counters.StealRequests)
	}
}

func TestTaskwaitWithoutTasks(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if got := tc.Taskwait(); got != 0 {
				t.Errorf("empty Taskwait() = %v, want 0", got)
			}
		})
	})
}

func TestTasksCompleteAtBarrier(t *testing.T) {
	// A plain barrier is a task scheduling point: tasks spawned before it
	// finish before any thread passes, even without an explicit Taskwait.
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	done := 0
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				for k := 0; k < 6; k++ {
					tc.Task(func(*Thread) float64 { done++; return 0 })
				}
			}
			tc.Barrier()
			if done != 6 {
				t.Errorf("thread %d passed the barrier with %d/6 tasks done", tc.GID(), done)
			}
		})
	})
}

// TestTaskwaitDeterministicAcrossSeeds is the steal-order perturbation
// test: the seed rotates victim selection, so different seeds interleave
// steals differently, yet the canonical id-ordered merge must return a
// bit-identical sum. The task values are magnitude-spread so a different
// float addition order would actually change the bits.
func TestTaskwaitDeterministicAcrossSeeds(t *testing.T) {
	sumFor := func(seed int64) float64 {
		cfg := Config{Nodes: 4, ThreadsPerNode: 1, Seed: seed}
		var out float64
		run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {
				if tc.GID() == 0 {
					for k := 0; k < 48; k++ {
						k := k
						tc.Task(func(ex *Thread) float64 {
							ex.Compute(20 * sim.Microsecond)
							return 1e-13 * float64(k+1) * float64(int64(1)<<uint(k%40))
						})
					}
				}
				v := tc.Taskwait()
				tc.Master(func() { out = v })
			})
		})
		return out
	}
	base := sumFor(1)
	for seed := int64(2); seed <= 5; seed++ {
		if got := sumFor(seed); got != base {
			t.Fatalf("seed %d: Taskwait() = %x, want %x (seed 1)", seed, got, base)
		}
	}
}
