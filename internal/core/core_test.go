package core

import (
	"testing"
	"testing/quick"

	"parade/internal/sim"
)

func run(t *testing.T, cfg Config, program func(master *Thread)) Report {
	t.Helper()
	rep, err := Run(cfg, program)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParallelRunsAllThreads(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 2}
	seen := map[int]int{}
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			seen[tc.GID()]++
		})
	})
	if len(seen) != 8 {
		t.Fatalf("saw %d threads, want 8: %v", len(seen), seen)
	}
	for gid, n := range seen {
		if n != 1 {
			t.Fatalf("thread %d ran %d times", gid, n)
		}
	}
}

func TestThreadIdentity(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	run(t, cfg, func(m *Thread) {
		if m.GID() != 0 || m.NodeID() != 0 {
			t.Errorf("master gid=%d node=%d", m.GID(), m.NodeID())
		}
		m.Parallel(func(tc *Thread) {
			if tc.NodeID() != tc.GID()/2 || tc.LID() != tc.GID()%2 {
				t.Errorf("gid %d: node %d lid %d", tc.GID(), tc.NodeID(), tc.LID())
			}
			if tc.NumThreads() != 4 {
				t.Errorf("NumThreads = %d", tc.NumThreads())
			}
		})
	})
}

func TestMultipleRegionsAndSerialSections(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	var order []string
	run(t, cfg, func(m *Thread) {
		order = append(order, "serial0")
		m.Parallel(func(tc *Thread) { tc.Master(func() { order = append(order, "region0") }) })
		order = append(order, "serial1")
		m.Parallel(func(tc *Thread) { tc.Master(func() { order = append(order, "region1") }) })
		order = append(order, "serial2")
	})
	want := []string{"serial0", "region0", "serial1", "region1", "serial2"}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSerialWritesVisibleInRegion(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 1}
	bad := 0
	run(t, cfg, func(m *Thread) {
		a := m.Cluster().AllocF64(100)
		for i := 0; i < 100; i++ {
			a.Set(m, i, float64(i)*1.5)
		}
		m.Parallel(func(tc *Thread) {
			tc.ForNowait(0, 100, func(i int) {
				if a.Get(tc, i) != float64(i)*1.5 {
					bad++
				}
			})
		})
	})
	if bad != 0 {
		t.Fatalf("%d stale reads of serial writes", bad)
	}
}

func TestSerialWritesAfterMigrationVisible(t *testing.T) {
	// Force a page's home away from the master, then have the master
	// modify it serially; the fork-time flush must make the write visible.
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	var got float64
	run(t, cfg, func(m *Thread) {
		a := m.Cluster().AllocF64(8)
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 1 {
				a.Set(tc, 0, 1) // sole modifier: home migrates to node 1
			}
		})
		a.Set(m, 0, 2) // serial write by master (no longer home)
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 1 {
				got = a.Get(tc, 0)
			}
		})
	})
	if got != 2 {
		t.Fatalf("node 1 read %v after master's serial write, want 2", got)
	}
}

func TestForPartitionCoversAllIterations(t *testing.T) {
	cfg := Config{Nodes: 3, ThreadsPerNode: 2}
	counts := make([]int, 100)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.For(0, 100, func(i int) { counts[i]++ })
		})
	})
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("iteration %d executed %d times", i, n)
		}
	}
}

func TestStaticRangeProperty(t *testing.T) {
	prop := func(loRaw, lenRaw uint16, nodesRaw, tprRaw uint8) bool {
		nodes := int(nodesRaw)%4 + 1
		tpr := int(tprRaw)%3 + 1
		lo := int(loRaw) % 1000
		hi := lo + int(lenRaw)%2000
		nt := nodes * tpr
		covered := 0
		prevHi := lo
		for gid := 0; gid < nt; gid++ {
			tt := &Thread{c: &Cluster{cfg: Config{Nodes: nodes, ThreadsPerNode: tpr}}, gid: gid}
			l, h := tt.StaticRange(lo, hi)
			if l != prevHi { // contiguous, in order, no gaps
				return false
			}
			if h < l {
				return false
			}
			covered += h - l
			prevHi = h
		}
		return prevHi == hi && covered == hi-lo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelArrayWriteReadAcrossBarrier(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 2}
	const n = 1024
	bad := 0
	run(t, cfg, func(m *Thread) {
		a := m.Cluster().AllocF64(n)
		b := m.Cluster().AllocF64(n)
		m.Parallel(func(tc *Thread) {
			tc.For(0, n, func(i int) { a.Set(tc, i, float64(i)) })
			// Shifted read: each thread reads data another thread wrote.
			tc.For(0, n, func(i int) {
				b.Set(tc, i, a.Get(tc, (i+n/2)%n)*2)
			})
		})
		for i := 0; i < n; i++ {
			want := float64((i+n/2)%n) * 2
			if b.Get(m, i) != want {
				bad++
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d wrong values after cross-thread exchange", bad)
	}
}

func TestReduceHybridAndSDSMAgree(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		cfg := Config{Nodes: 4, ThreadsPerNode: 2, Mode: mode}
		results := map[int]float64{}
		run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {
				v := tc.Reduce("sum", OpSum, float64(tc.GID()+1))
				tc.node.barMu.Lock(tc.p)
				results[tc.GID()] = v
				tc.node.barMu.Unlock(tc.p)
			})
		})
		want := 36.0 // 1+..+8
		for gid, v := range results {
			if v != want {
				t.Fatalf("mode %v: thread %d reduced to %v, want %v", mode, gid, v, want)
			}
		}
	}
}

func TestReduceOps(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	var maxV, minV, prodV float64
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			v := float64(tc.GID() + 1)
			mx := tc.Reduce("max", OpMax, v)
			mn := tc.Reduce("min", OpMin, v)
			pr := tc.Reduce("prod", OpProd, v)
			tc.Master(func() { maxV, minV, prodV = mx, mn, pr })
		})
	})
	if maxV != 4 || minV != 1 || prodV != 24 {
		t.Fatalf("max=%v min=%v prod=%v", maxV, minV, prodV)
	}
}

func TestRepeatedReductionsStayCorrect(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: mode}
		bad := 0
		run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {
				for round := 1; round <= 5; round++ {
					v := tc.Reduce("r", OpSum, float64(round*(tc.GID()+1)))
					if v != float64(round*10) { // round*(1+2+3+4)
						bad++
					}
				}
			})
		})
		if bad != 0 {
			t.Fatalf("mode %v: %d wrong repeated reductions", mode, bad)
		}
	}
}

func TestCriticalHybridAccumulates(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 2, Mode: Hybrid}
	var final float64
	rep := run(t, cfg, func(m *Thread) {
		s := m.Cluster().ScalarVar("x")
		m.Parallel(func(tc *Thread) {
			for i := 0; i < 10; i++ {
				tc.Critical("cs", []*Scalar{s}, func() { s.Add(tc, 1) })
			}
		})
		final = s.Get(m)
	})
	if final != 80 {
		t.Fatalf("critical sum = %v, want 80", final)
	}
	if rep.Counters.LockRequests != 0 {
		t.Fatalf("hybrid critical used %d SDSM locks", rep.Counters.LockRequests)
	}
	if rep.Counters.HybridCriticals == 0 {
		t.Fatal("hybrid criticals not counted")
	}
}

func TestCriticalSDSMAccumulates(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 2, Mode: SDSM}
	var final float64
	rep := run(t, cfg, func(m *Thread) {
		s := m.Cluster().ScalarVar("x")
		m.Parallel(func(tc *Thread) {
			for i := 0; i < 5; i++ {
				tc.Critical("cs", []*Scalar{s}, func() { s.Add(tc, 1) })
			}
		})
		m.Parallel(func(tc *Thread) {}) // extra barrier settles diffs
		final = s.Get(m)
	})
	if final != 40 {
		t.Fatalf("critical sum = %v, want 40", final)
	}
	if rep.Counters.LockRequests == 0 {
		t.Fatal("SDSM critical used no locks")
	}
	if rep.Counters.HybridCriticals != 0 {
		t.Fatal("SDSM mode counted hybrid criticals")
	}
}

func TestCriticalNonAnalyzableFallsBackToLock(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1, Mode: Hybrid}
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.Critical("raw", nil, func() {})
		})
	})
	if rep.Counters.LockRequests == 0 {
		t.Fatal("non-analyzable critical should use the SDSM lock even in hybrid mode")
	}
}

func TestAtomicAccumulates(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: mode}
		var final float64
		run(t, cfg, func(m *Thread) {
			s := m.Cluster().ScalarVar("a")
			m.Parallel(func(tc *Thread) {
				for i := 0; i < 4; i++ {
					tc.Atomic(s, 0.5)
				}
			})
			if mode == SDSM {
				m.Parallel(func(tc *Thread) {})
			}
			final = s.Get(m)
		})
		if final != 8 {
			t.Fatalf("mode %v: atomic sum = %v, want 8", mode, final)
		}
	}
}

func TestSingleExecutesOnce(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		cfg := Config{Nodes: 4, ThreadsPerNode: 2, Mode: mode}
		execs := 0
		vals := map[int]float64{}
		run(t, cfg, func(m *Thread) {
			s := m.Cluster().ScalarVar("init")
			m.Parallel(func(tc *Thread) {
				tc.Single("s1", s, func() {
					execs++
					s.Set(tc, 42)
				})
				tc.Barrier()
				tc.node.barMu.Lock(tc.p)
				vals[tc.GID()] = s.Get(tc)
				tc.node.barMu.Unlock(tc.p)
			})
		})
		if execs != 1 {
			t.Fatalf("mode %v: single executed %d times", mode, execs)
		}
		for gid, v := range vals {
			if v != 42 {
				t.Fatalf("mode %v: thread %d sees %v", mode, gid, v)
			}
		}
	}
}

func TestSingleRepeatedRounds(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: mode}
		execs := 0
		run(t, cfg, func(m *Thread) {
			s := m.Cluster().ScalarVar("v")
			m.Parallel(func(tc *Thread) {
				for i := 0; i < 5; i++ {
					tc.Single("loop", s, func() { execs++ })
					tc.Barrier()
				}
			})
		})
		if execs != 5 {
			t.Fatalf("mode %v: single executed %d times over 5 rounds", mode, execs)
		}
	}
}

func TestSingleBarrierGeneralBlock(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: Hybrid}
	bad := 0
	run(t, cfg, func(m *Thread) {
		a := m.Cluster().AllocF64(16)
		m.Parallel(func(tc *Thread) {
			tc.SingleBarrier("bigInit", func() {
				for i := 0; i < 16; i++ {
					a.Set(tc, i, 7)
				}
			})
			// The implicit barrier of the general single must make the
			// array visible to every thread.
			for i := 0; i < 16; i++ {
				if a.Get(tc, i) != 7 {
					bad++
				}
			}
		})
	})
	if bad != 0 {
		t.Fatalf("%d stale reads after SingleBarrier", bad)
	}
}

func TestHybridSingleAvoidsSDSMBarrier(t *testing.T) {
	count := func(mode Mode) (int64, int64) {
		cfg := Config{Nodes: 4, ThreadsPerNode: 1, Mode: mode}
		rep := run(t, cfg, func(m *Thread) {
			s := m.Cluster().ScalarVar("x")
			m.Parallel(func(tc *Thread) {
				tc.Single("s", s, func() { s.Set(tc, 1) })
			})
		})
		return rep.Counters.Barriers, rep.Counters.LockRequests
	}
	hb, hl := count(Hybrid)
	sb, sl := count(SDSM)
	if hl != 0 {
		t.Fatalf("hybrid single used %d locks", hl)
	}
	if sl == 0 {
		t.Fatal("SDSM single used no locks")
	}
	if hb >= sb {
		t.Fatalf("hybrid single ran %d SDSM barriers, SDSM %d — hybrid should need fewer", hb, sb)
	}
}

func TestHybridCriticalFasterThanSDSM(t *testing.T) {
	measure := func(mode Mode) sim.Duration {
		cfg := Config{Nodes: 4, ThreadsPerNode: 1, Mode: mode}
		var start, end sim.Time
		run(t, cfg, func(m *Thread) {
			s := m.Cluster().ScalarVar("x")
			m.Parallel(func(tc *Thread) {}) // warm the team
			start = m.Now()
			m.Parallel(func(tc *Thread) {
				for i := 0; i < 20; i++ {
					tc.Critical("cs", []*Scalar{s}, func() { s.Add(tc, 1) })
				}
			})
			end = m.Now()
		})
		return sim.Duration(end - start)
	}
	hybrid, sdsm := measure(Hybrid), measure(SDSM)
	if hybrid >= sdsm {
		t.Fatalf("hybrid critical %v not faster than SDSM %v", hybrid, sdsm)
	}
}

func TestCommOverlap1T2CFasterThan1T1C(t *testing.T) {
	// Communication-heavy loop: with a CPU dedicated to the comm thread,
	// protocol handling overlaps computation.
	measure := func(cfg Config) sim.Duration {
		rep := run(t, cfg, func(m *Thread) {
			a := m.Cluster().AllocF64(8192)
			m.Parallel(func(tc *Thread) {
				for iter := 0; iter < 3; iter++ {
					tc.ForCost(0, 8192, 200*sim.Nanosecond, func(i int) {
						a.Set(tc, i, float64(i+iter))
					})
					tc.ForCost(0, 8192, 200*sim.Nanosecond, func(i int) {
						_ = a.Get(tc, (i+4096)%8192)
					})
				}
			})
		})
		return rep.Time
	}
	t1c := measure(Config1T1C(4))
	t2c := measure(Config1T2C(4))
	if t2c >= t1c {
		t.Fatalf("1T2C (%v) not faster than 1T1C (%v)", t2c, t1c)
	}
}

func TestDeterministicReports(t *testing.T) {
	measure := func() Report {
		cfg := Config{Nodes: 4, ThreadsPerNode: 2}
		return run(t, cfg, func(m *Thread) {
			a := m.Cluster().AllocF64(2048)
			s := m.Cluster().ScalarVar("x")
			m.Parallel(func(tc *Thread) {
				tc.For(0, 2048, func(i int) { a.Set(tc, i, float64(i)) })
				tc.Critical("c", []*Scalar{s}, func() { s.Add(tc, 1) })
				tc.Reduce("r", OpSum, 1)
			})
		})
	}
	r1, r2 := measure(), measure()
	if r1.Time != r2.Time {
		t.Fatalf("times differ: %v vs %v", r1.Time, r2.Time)
	}
	if r1.Counters != r2.Counters {
		t.Fatalf("counters differ:\n%s\n%s", r1.Counters.String(), r2.Counters.String())
	}
}

func TestForCostChargesTime(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 1}
	var elapsed sim.Duration
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			start := tc.Now()
			tc.ForCostNowait(0, 1000, sim.Microsecond, func(i int) {})
			elapsed = sim.Duration(tc.Now() - start)
		})
	})
	if elapsed != 1000*sim.Microsecond {
		t.Fatalf("charged %v, want 1ms", elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Nodes: -1}, func(*Thread) {}); err == nil {
		t.Fatal("negative nodes accepted")
	}
	bad := Config{Nodes: 1}.WithDefaults()
	bad.SmallThreshold = 4
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny threshold accepted")
	}
}

func TestConfigPresets(t *testing.T) {
	c := Config1T1C(4)
	if c.ThreadsPerNode != 1 || c.CPUsPerNode != 1 || c.Nodes != 4 {
		t.Fatalf("1T1C = %+v", c)
	}
	c = Config1T2C(2)
	if c.ThreadsPerNode != 1 || c.CPUsPerNode != 2 {
		t.Fatalf("1T2C = %+v", c)
	}
	c = Config2T2C(8)
	if c.ThreadsPerNode != 2 || c.CPUsPerNode != 2 {
		t.Fatalf("2T2C = %+v", c)
	}
}

func TestScalarSharedByName(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 1}
	run(t, cfg, func(m *Thread) {
		a := m.Cluster().ScalarVar("same")
		b := m.Cluster().ScalarVar("same")
		if a != b {
			t.Error("ScalarVar did not dedupe by name")
		}
	})
}

func TestThresholdForcesLockPath(t *testing.T) {
	// With a tiny threshold, even a single scalar exceeds the limit and
	// the critical takes the SDSM lock path despite Hybrid mode.
	cfg := Config{Nodes: 2, ThreadsPerNode: 1, Mode: Hybrid, SmallThreshold: 8}
	rep := run(t, cfg, func(m *Thread) {
		s1 := m.Cluster().ScalarVar("a")
		s2 := m.Cluster().ScalarVar("b")
		m.Parallel(func(tc *Thread) {
			tc.Critical("cs", []*Scalar{s1, s2}, func() {
				s1.Add(tc, 1)
				s2.Add(tc, 1)
			})
		})
	})
	if rep.Counters.LockRequests == 0 {
		t.Fatal("oversized critical did not fall back to the lock path")
	}
}
