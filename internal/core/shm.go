package core

import "parade/internal/dsm"

// Shared memory objects. Large data (arrays) lives in the SDSM pool and
// is kept consistent by the HLRC protocol; small named scalars are the
// objects the hybrid execution model manages with an update protocol
// over message-passing collectives (entry-consistency style, §5.2.1).

// F64Array is a shared array of float64 in the SDSM pool. Every access
// goes through the page permission check; misses trigger the simulated
// page fault handler.
type F64Array struct {
	c    *Cluster
	base int
	n    int
}

// AllocF64 reserves a page-aligned shared float64 array. Page alignment
// follows the paper's §7 guideline: unrelated arrays never share a page.
func (c *Cluster) AllocF64(n int) F64Array {
	return F64Array{c: c, base: c.allocShared(8*n, 0, true), n: n}
}

// Len returns the number of elements.
func (a F64Array) Len() int { return a.n }

// Addr returns the shared address of element i.
func (a F64Array) Addr(i int) int { return a.base + 8*i }

// Pages returns the array's page span, making it Mappable in a Target
// map clause. Arrays are page-aligned, so the span is exactly theirs.
func (a F64Array) Pages() []int { return pageSpan(a.base, 8*a.n) }

// Get loads element i from t's node, faulting the page in if needed.
func (a F64Array) Get(t *Thread, i int) float64 {
	addr := a.Addr(i)
	t.c.engine.EnsureRead(t.p, t.node.id, addr)
	return t.c.engine.Mem(t.node.id).ReadF64(addr)
}

// Set stores element i on t's node, twinning the page on the first
// write of an interval.
func (a F64Array) Set(t *Thread, i int, v float64) {
	addr := a.Addr(i)
	t.c.engine.EnsureWrite(t.p, t.node.id, addr)
	t.c.engine.Mem(t.node.id).WriteF64(addr, v)
}

// I64Array is a shared array of int64 in the SDSM pool.
type I64Array struct {
	c    *Cluster
	base int
	n    int
}

// AllocI64 reserves a page-aligned shared int64 array.
func (c *Cluster) AllocI64(n int) I64Array {
	return I64Array{c: c, base: c.allocShared(8*n, 0, true), n: n}
}

// Len returns the number of elements.
func (a I64Array) Len() int { return a.n }

// Addr returns the shared address of element i.
func (a I64Array) Addr(i int) int { return a.base + 8*i }

// Pages returns the array's page span, making it Mappable in a Target
// map clause.
func (a I64Array) Pages() []int { return pageSpan(a.base, 8*a.n) }

// pageSpan lists the pages covering [base, base+bytes).
func pageSpan(base, bytes int) []int {
	if bytes <= 0 {
		return nil
	}
	first, last := dsm.PageOf(base), dsm.PageOf(base+bytes-1)
	pages := make([]int, 0, last-first+1)
	for pg := first; pg <= last; pg++ {
		pages = append(pages, pg)
	}
	return pages
}

// Get loads element i from t's node.
func (a I64Array) Get(t *Thread, i int) int64 {
	addr := a.Addr(i)
	t.c.engine.EnsureRead(t.p, t.node.id, addr)
	return t.c.engine.Mem(t.node.id).ReadI64(addr)
}

// Set stores element i on t's node.
func (a I64Array) Set(t *Thread, i int, v int64) {
	addr := a.Addr(i)
	t.c.engine.EnsureWrite(t.p, t.node.id, addr)
	t.c.engine.Mem(t.node.id).WriteI64(addr, v)
}

// Scalar is a small shared variable. It has two representations: an
// 8-byte backing word in the SDSM pool (used when directives run on the
// conventional lock path) and a per-node replica set managed by the
// update protocol (used by the hybrid path, where collectives propagate
// modifications and no twin/diff is ever created for it).
type Scalar struct {
	c    *Cluster
	name string
	addr int
	vals []float64 // per-node replica (hybrid path)
	base []float64 // per-node value agreed at the last combine round
}

// ScalarVar returns the named shared scalar, creating it on first use.
// All nodes see the same object (it models a global variable of the
// translated program).
func (c *Cluster) ScalarVar(name string) *Scalar {
	if s := c.scalars[name]; s != nil {
		return s
	}
	s := &Scalar{
		c: c, name: name,
		addr: c.allocShared(8, 8, false),
		vals: make([]float64, c.cfg.Nodes),
		base: make([]float64, c.cfg.Nodes),
	}
	c.scalars[name] = s
	return s
}

// Name returns the scalar's name.
func (s *Scalar) Name() string { return s.name }

// SizeBytes returns the scalar's footprint, compared against the
// hybridization threshold.
func (s *Scalar) SizeBytes() int { return 8 }

// hybrid reports whether this cluster manages the scalar with the
// update protocol.
func (s *Scalar) hybrid() bool { return s.c.cfg.Mode == Hybrid }

// Get reads the scalar from t's context. On the hybrid path this is the
// node replica (updates from other nodes become visible at combine
// rounds); on the SDSM path it is a coherent shared-memory load.
func (s *Scalar) Get(t *Thread) float64 {
	if s.hybrid() {
		return s.vals[t.node.id]
	}
	t.c.engine.EnsureRead(t.p, t.node.id, s.addr)
	return t.c.engine.Mem(t.node.id).ReadF64(s.addr)
}

// Set writes the scalar in t's context. Hybrid-path writes outside a
// combine round are node-local until the next collective; the intended
// call sites are critical/atomic/single bodies, as the translator emits.
func (s *Scalar) Set(t *Thread, v float64) {
	if s.hybrid() {
		s.vals[t.node.id] = v
		return
	}
	t.c.engine.EnsureWrite(t.p, t.node.id, s.addr)
	t.c.engine.Mem(t.node.id).WriteF64(s.addr, v)
}

// Add accumulates into the scalar in t's context.
func (s *Scalar) Add(t *Thread, d float64) { s.Set(t, s.Get(t)+d) }

// Init assigns the scalar from serial context (outside a combine round):
// on the hybrid path every node replica and round base is reset so the
// next collective starts from the new value (the fork-time broadcast of
// a serial write); on the SDSM path it is an ordinary coherent store.
func (s *Scalar) Init(t *Thread, v float64) {
	if s.hybrid() {
		for i := range s.vals {
			s.vals[i] = v
			s.base[i] = v
		}
		return
	}
	s.Set(t, v)
}

// ShmPages reports how many pages the cluster's allocator has handed out
// (diagnostics; compare with dsm.PageSize).
func (c *Cluster) ShmPages() int {
	return (c.engine.Alloc.Used() + dsm.PageSize - 1) / dsm.PageSize
}
