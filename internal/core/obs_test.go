package core

import (
	"bytes"
	"testing"

	"parade/internal/obs"
)

// obsProgram exercises every instrumented layer: shared-array faults and
// fetches, a critical directive, a reduction, and two parallel regions.
func obsProgram(m *Thread) {
	c := m.Cluster()
	a := c.AllocF64(1024)
	sum := c.ScalarVar("sum")
	m.Parallel(func(t *Thread) {
		lo, hi := t.StaticRange(0, 1024)
		for i := lo; i < hi; i++ {
			a.Set(t, i, float64(i))
		}
		t.Critical("acc", []*Scalar{sum}, func() { sum.Add(t, 1) })
		t.Barrier()
		t.Reduce("r", OpSum, 1)
	})
	m.Parallel(func(t *Thread) {
		lo, hi := t.StaticRange(0, 1024)
		for i := lo; i < hi; i++ {
			a.Set(t, i, a.Get(t, i)+1)
		}
	})
}

// traceRun executes obsProgram with a JSONL trace attached and returns
// the trace bytes.
func traceRun(t *testing.T, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.New(cfg.Nodes)
	rec.TraceMessages(true)
	rec.AddSink(obs.NewJSONLSink(&buf))
	cfg.Obs = rec
	run(t, cfg, obsProgram)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminism pins the acceptance criterion that two runs with
// the same seed produce byte-identical traces, in both directive modes.
func TestTraceDeterminism(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		cfg := Config{Nodes: 4, ThreadsPerNode: 2, Mode: mode,
			HomeMigration: mode == Hybrid, Seed: 7}
		a := traceRun(t, cfg)
		b := traceRun(t, cfg)
		if len(a) == 0 {
			t.Fatalf("mode %v: empty trace", mode)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("mode %v: same-seed traces differ (%d vs %d bytes)", mode, len(a), len(b))
		}
	}
}

// TestReportObsMetrics cross-checks the per-node observability counters
// against the always-on cluster-wide stats counters.
func TestReportObsMetrics(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: SDSM}
	rec := obs.New(cfg.Nodes)
	cfg.Obs = rec
	rep := run(t, cfg, obsProgram)
	if rep.Obs == nil {
		t.Fatal("Report.Obs nil despite Config.Obs being set")
	}
	m := rep.Obs
	var rf, wf, fetches, invals int64
	for i := 0; i < m.Nodes(); i++ {
		nc := m.Node(i)
		rf += nc.ReadFaults
		wf += nc.WriteFaults
		fetches += nc.FetchesIssued
		invals += nc.Invalidations
	}
	if rf != rep.Counters.ReadFaults {
		t.Errorf("per-node read faults sum to %d, stats say %d", rf, rep.Counters.ReadFaults)
	}
	if wf != rep.Counters.WriteFaults {
		t.Errorf("per-node write faults sum to %d, stats say %d", wf, rep.Counters.WriteFaults)
	}
	if fetches != rep.Counters.PageFetches {
		t.Errorf("per-node fetches sum to %d, stats say %d", fetches, rep.Counters.PageFetches)
	}
	if invals != rep.Counters.Invalidations {
		t.Errorf("per-node invalidations sum to %d, stats say %d", invals, rep.Counters.Invalidations)
	}
	if got := len(m.Phases()); got != 2 {
		t.Errorf("got %d phases, want 2 (one per Parallel)", got)
	}
	for i, ph := range m.Phases() {
		if ph.EndNs <= ph.StartNs {
			t.Errorf("phase %d: end %d <= start %d", i, ph.EndNs, ph.StartNs)
		}
	}
	if m.Hist(obs.HistDirective).Count == 0 {
		t.Error("directive histogram empty despite Critical/Reduce")
	}
	if m.Hist(obs.HistBarrierWait).Count == 0 {
		t.Error("barrier-wait histogram empty")
	}
	if m.Hist(obs.HistPageFetch).Count != fetches {
		t.Errorf("fetch histogram has %d observations, want %d", m.Hist(obs.HistPageFetch).Count, fetches)
	}
}

// TestObsDisabledByDefault pins that runs without Config.Obs stay on the
// nil-recorder path and report no metrics.
func TestObsDisabledByDefault(t *testing.T) {
	rep := run(t, Config{Nodes: 2}, func(m *Thread) {
		m.Parallel(func(*Thread) {})
	})
	if rep.Obs != nil {
		t.Error("Report.Obs should be nil when Config.Obs is unset")
	}
}
