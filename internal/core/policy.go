package core

import "fmt"

// PolicyConfigError is the typed error returned for an invalid protocol
// policy configuration (errors.As-matchable, like LaneConfigError).
type PolicyConfigError struct {
	Policy string
	Reason string
}

func (e *PolicyConfigError) Error() string {
	return fmt.Sprintf("core: invalid policy configuration (Policy = %q): %s", e.Policy, e.Reason)
}
