package core

import "parade/internal/sim"

// Functional options for the work-sharing and tasking surface. The
// historical API grew one method per clause combination (For, ForNowait,
// ForCost, ForCostNowait, ForDynamic, ForGuided); the options collapse
// that product back into the OpenMP shape — one directive, orthogonal
// clauses — while the old methods remain as deprecated shims. The task
// constructs (Task, Taskloop, Target) take the same shape: loop-flavored
// clauses are ForTaskOption values accepted by both surfaces, and the
// task-only clauses (depend, priority, task naming, target data maps)
// are TaskOption values.

// ScheduleKind selects how a work-sharing loop distributes iterations
// across the team (the schedule clause).
type ScheduleKind int

const (
	// Static is the paper's schedule (§4.3): contiguous per-thread
	// blocks in gid order, so threads of one node work on adjacent data.
	Static ScheduleKind = iota
	// Dynamic serves fixed-size chunks first-come-first-served from a
	// chunk server on the master node (§8 extension).
	Dynamic
	// Guided serves exponentially shrinking chunks, floored at the
	// configured minimum (§8 extension).
	Guided
)

func (k ScheduleKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "?"
	}
}

// forConfig is the resolved clause set of one For/Taskloop instance.
type forConfig struct {
	kind    ScheduleKind
	chunk   int // dynamic chunk / guided minimum / taskloop grainsize
	nowait  bool
	perIter sim.Duration
	name    string
}

// taskConfig is the resolved clause set of one Task/Taskloop/Target
// instance: the loop-shaped clauses plus the task-graph clauses.
type taskConfig struct {
	forConfig
	priority int
	taskName string
	deps     []depClause
	maps     []MapSpec
}

// depClause is one handle of a WithDepend clause with its kind.
type depClause struct {
	kind DepKind
	h    DepHandle
}

// ForOption configures Thread.For. Every ForOption this package provides
// is a ForTaskOption, so the same value also configures the tasking
// constructs.
type ForOption interface {
	applyFor(*forConfig)
}

// TaskOption configures Thread.Task, Thread.Taskloop and Thread.Target.
type TaskOption interface {
	applyTask(*taskConfig)
}

// ForTaskOption is a clause valid on both surfaces: the work-sharing
// loops (For) and the tasking constructs (Task, Taskloop, Target). The
// loop-shaped clauses — schedule, nowait, iteration cost, site name,
// grainsize — are ForTaskOptions.
type ForTaskOption struct {
	f func(*forConfig)
}

func (o ForTaskOption) applyFor(c *forConfig)   { o.f(c) }
func (o ForTaskOption) applyTask(c *taskConfig) { o.f(&c.forConfig) }

// taskOption is a task-only clause.
type taskOption func(*taskConfig)

func (o taskOption) applyTask(c *taskConfig) { o(c) }

// WithSchedule selects the loop schedule. chunk is the fixed chunk size
// under Dynamic, the minimum chunk under Guided, and is ignored under
// Static (the static partition is always one block per thread); chunk
// values below 1 are treated as 1.
func WithSchedule(kind ScheduleKind, chunk int) ForTaskOption {
	return ForTaskOption{func(c *forConfig) {
		c.kind = kind
		c.chunk = chunk
	}}
}

// Nowait elides the loop's implicit trailing barrier (the nowait
// clause). The caller takes responsibility for the missing flush, as in
// OpenMP.
func Nowait() ForTaskOption {
	return ForTaskOption{func(c *forConfig) { c.nowait = true }}
}

// WithIterCost charges d of virtual processor time per iteration, so the
// loop's computation contends with the communication thread for CPUs.
// Static loops batch the charge (about computeBatch per Compute call);
// dynamic and guided loops charge once per served chunk.
func WithIterCost(d sim.Duration) ForTaskOption {
	return ForTaskOption{func(c *forConfig) { c.perIter = d }}
}

// WithName names the loop site. Dynamic and guided loops key their
// chunk-server instance by site name and per-thread round, so a name is
// required when distinct loops must not share an instance across
// threads arriving in different textual order; unnamed sites are
// auto-numbered in per-thread arrival order, which is safe under the
// SPMD rule that every team thread reaches the same sites in the same
// order. Taskloop uses the name only for tracing.
func WithName(name string) ForTaskOption {
	return ForTaskOption{func(c *forConfig) { c.name = name }}
}

// WithGrainsize sets Taskloop's chunk length: the loop is split into
// tasks of up to g consecutive iterations. For ignores it under the
// static schedule and treats it as the chunk size otherwise. Values
// below 1 select the default grain.
func WithGrainsize(g int) ForTaskOption {
	return ForTaskOption{func(c *forConfig) { c.chunk = g }}
}

// DepKind classifies one depend clause: how the task accesses the
// handles it names.
type DepKind int

const (
	// In declares the task a reader of the handle: it runs after the
	// handle's last Out/InOut writer.
	In DepKind = iota
	// Out declares the task a writer: it runs after the handle's last
	// writer and after every reader registered since.
	Out
	// InOut declares the task both: ordering is identical to Out.
	InOut
)

func (k DepKind) String() string {
	switch k {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return "?"
	}
}

// depHandleKind discriminates DepHandle's three constructors.
type depHandleKind int8

const (
	depHandleAddr depHandleKind = iota
	depHandleName
	depHandleTask
)

// DepHandle names one dependence object of a depend clause. Handles are
// comparable values: two handles made by the same constructor from the
// same argument are the same object. The three constructors are DepAddr
// (a shared-memory address, the OpenMP list-item form), DepName (an
// abstract named object, for dependences not tied to one address), and
// DepTask (a sibling task registered with WithTaskName — completion
// ordering regardless of data).
type DepHandle struct {
	kind depHandleKind
	addr int
	name string
}

// DepAddr names a shared-memory address as a dependence object (the
// OpenMP `depend(in: a[i])` form). Tasks conflict when they name the
// same address; distinct addresses of the same array are independent
// objects.
func DepAddr(addr int) DepHandle { return DepHandle{kind: depHandleAddr, addr: addr} }

// DepName names an abstract dependence object. Use it to serialize tasks
// around a resource that has no single address (a file, a phase, a whole
// array).
func DepName(name string) DepHandle { return DepHandle{kind: depHandleName, name: name} }

// DepTask names a sibling task by the name it registered (or will
// register) with WithTaskName: the depending task runs only after that
// task completes, regardless of DepKind. A reference to a name no
// sibling ever registers resolves vacuously at the context's end — the
// enclosing Taskwait for root tasks, the parent task's completion for
// nested ones. A reference that makes the named set circular is
// rejected with *TaskCycleError.
func DepTask(name string) DepHandle { return DepHandle{kind: depHandleTask, name: name} }

// WithDepend declares the task's dependences of one kind on the given
// handles (the depend clause). Repeat the option to mix kinds. Duplicate
// handles within one task are deduplicated; ordering between tasks
// follows their spawn order in the spawning context (OpenMP sibling-task
// semantics), so the graph is identical across steal schedules, fault
// profiles, and lane counts.
func WithDepend(kind DepKind, handles ...DepHandle) TaskOption {
	return taskOption(func(c *taskConfig) {
		for _, h := range handles {
			c.deps = append(c.deps, depClause{kind: kind, h: h})
		}
	})
}

// WithTaskName registers the task under name in its spawning context, so
// later siblings can order themselves after it with DepTask(name). Names
// are scoped to the spawning context (one thread's root tasks between
// joins, or one parent task's children) and reset at each Taskwait.
func WithTaskName(name string) TaskOption {
	return taskOption(func(c *taskConfig) { c.taskName = name })
}

// WithPriority hints the scheduler to prefer this task: a node's threads
// pop higher-priority tasks first, and thieves steal the lowest-priority
// work. Equal priorities keep the default order (newest-first locally,
// oldest-first for thieves); the default priority is 0, and priority
// never overrides dependence order.
func WithPriority(p int) TaskOption {
	return taskOption(func(c *taskConfig) { c.priority = p })
}

// MapDir is the direction of one Target data-mapping clause.
type MapDir int

const (
	// MapTo pushes the mapped pages to the device before the task body
	// runs (the `map(to: ...)` clause): one eager batched prefetch
	// replaces the demand faults the body would otherwise take.
	MapTo MapDir = iota
	// MapFrom returns the mapped pages to the spawning node after the
	// task completes (the `map(from: ...)` clause): the pages are queued
	// for the spawner's next barrier-time refresh batch.
	MapFrom
	// MapToFrom combines both directions (the `map(tofrom: ...)` clause).
	MapToFrom
)

func (d MapDir) String() string {
	switch d {
	case MapTo:
		return "to"
	case MapFrom:
		return "from"
	case MapToFrom:
		return "tofrom"
	default:
		return "?"
	}
}

// Mappable is a shared-memory object that can appear in a map clause:
// anything that can name its page span. F64Array and I64Array are
// Mappable.
type Mappable interface {
	Pages() []int
}

// MapSpec is one resolved map clause: a direction and the page set it
// covers.
type MapSpec struct {
	Dir   MapDir
	Pages []int
}

// WithMap attaches a data-mapping clause to a Target task: the pages of
// the given objects move eagerly in the clause's direction instead of
// demand-faulting through the DSM. Only Target interprets maps; on
// plain tasks the option is accepted and ignored (a plain task has no
// device to map onto).
func WithMap(dir MapDir, objs ...Mappable) TaskOption {
	return taskOption(func(c *taskConfig) {
		var pages []int
		for _, o := range objs {
			pages = append(pages, o.Pages()...)
		}
		c.maps = append(c.maps, MapSpec{Dir: dir, Pages: pages})
	})
}
