package core

import "parade/internal/sim"

// Functional options for the work-sharing and tasking surface. The
// historical API grew one method per clause combination (For, ForNowait,
// ForCost, ForCostNowait, ForDynamic, ForGuided); the options collapse
// that product back into the OpenMP shape — one directive, orthogonal
// clauses — while the old methods remain as deprecated shims.

// ScheduleKind selects how a work-sharing loop distributes iterations
// across the team (the schedule clause).
type ScheduleKind int

const (
	// Static is the paper's schedule (§4.3): contiguous per-thread
	// blocks in gid order, so threads of one node work on adjacent data.
	Static ScheduleKind = iota
	// Dynamic serves fixed-size chunks first-come-first-served from a
	// chunk server on the master node (§8 extension).
	Dynamic
	// Guided serves exponentially shrinking chunks, floored at the
	// configured minimum (§8 extension).
	Guided
)

func (k ScheduleKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "?"
	}
}

// forConfig is the resolved clause set of one For/Taskloop instance.
type forConfig struct {
	kind    ScheduleKind
	chunk   int // dynamic chunk / guided minimum / taskloop grainsize
	nowait  bool
	perIter sim.Duration
	name    string
}

// ForOption configures Thread.For and Thread.Taskloop.
type ForOption func(*forConfig)

// WithSchedule selects the loop schedule. chunk is the fixed chunk size
// under Dynamic, the minimum chunk under Guided, and is ignored under
// Static (the static partition is always one block per thread); chunk
// values below 1 are treated as 1.
func WithSchedule(kind ScheduleKind, chunk int) ForOption {
	return func(c *forConfig) {
		c.kind = kind
		c.chunk = chunk
	}
}

// Nowait elides the loop's implicit trailing barrier (the nowait
// clause). The caller takes responsibility for the missing flush, as in
// OpenMP.
func Nowait() ForOption {
	return func(c *forConfig) { c.nowait = true }
}

// WithIterCost charges d of virtual processor time per iteration, so the
// loop's computation contends with the communication thread for CPUs.
// Static loops batch the charge (about computeBatch per Compute call);
// dynamic and guided loops charge once per served chunk.
func WithIterCost(d sim.Duration) ForOption {
	return func(c *forConfig) { c.perIter = d }
}

// WithName names the loop site. Dynamic and guided loops key their
// chunk-server instance by site name and per-thread round, so a name is
// required when distinct loops must not share an instance across
// threads arriving in different textual order; unnamed sites are
// auto-numbered in per-thread arrival order, which is safe under the
// SPMD rule that every team thread reaches the same sites in the same
// order. Taskloop uses the name only for tracing.
func WithName(name string) ForOption {
	return func(c *forConfig) { c.name = name }
}

// WithGrainsize sets Taskloop's chunk length: the loop is split into
// tasks of up to g consecutive iterations. For ignores it under the
// static schedule and treats it as the chunk size otherwise. Values
// below 1 select the default grain.
func WithGrainsize(g int) ForOption {
	return func(c *forConfig) { c.chunk = g }
}
