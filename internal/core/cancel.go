package core

import (
	"fmt"
	"time"

	"parade/internal/sim"
)

// ErrCanceled matches (via errors.Is) the error Run returns when a run
// was canceled — by the Config.Cancel hook or the Config.Deadline
// wall-clock guard. It is the kernel's sentinel re-exported so callers
// need not import internal/sim.
var ErrCanceled = sim.ErrCanceled

// DeadlineError is the cause carried by a canceled run whose
// Config.Deadline wall-clock budget expired. Unwrap the run error with
// errors.As to distinguish a deadline abort from an external
// cancellation.
type DeadlineError struct {
	// Limit is the configured wall-clock budget.
	Limit time.Duration
	// Elapsed is the host time actually spent when the guard fired.
	Elapsed time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("core: wall-clock deadline %v exceeded after %v", e.Limit, e.Elapsed.Round(time.Millisecond))
}

// cancelHook combines Config.Cancel and Config.Deadline into the single
// check the kernel polls, or returns nil when neither is set. The
// deadline clock starts when the hook is built (immediately before
// sim.Run). Both closures must be concurrency-safe: lane mode polls from
// every lane (time.Since is; the user hook is required to be by the
// Config.Cancel contract).
func cancelHook(cfg Config) func() error {
	user := cfg.Cancel
	if cfg.Deadline <= 0 {
		return user // may be nil
	}
	limit := cfg.Deadline
	start := time.Now()
	deadline := func() error {
		if elapsed := time.Since(start); elapsed > limit {
			return &DeadlineError{Limit: limit, Elapsed: elapsed}
		}
		return nil
	}
	if user == nil {
		return deadline
	}
	return func() error {
		if err := user(); err != nil {
			return err
		}
		return deadline()
	}
}
