package core

import (
	"fmt"
	"hash/fnv"

	"parade/internal/netsim"
	"parade/internal/obs"
	"parade/internal/sim"
	"parade/internal/stats"
)

// Event-lane wiring (paper-scale parallel simulation). Config.Lanes > 0
// runs the simulation kernel in lane mode: one event lane per simulated
// node, up to Lanes lanes executing concurrently on host goroutines
// under conservative lookahead (internal/sim). The runtime's job here
// is threefold:
//
//   - bind every per-node activity (communication thread, team threads)
//     to its node's lane, so all node state stays lane-confined;
//   - replicate the lazily-populated directive-site registries per node
//     (lock ids, single flags, reduction slot arrays) — SPMD execution
//     encounters sites in the same order on every node, so the replicas
//     assign identical ids and shared-memory addresses without any
//     cross-lane coordination;
//   - replace the two bulletin-board shortcuts that read remote state
//     (the tasking runtime's global live count and load gossip) with a
//     collective quiescence vote and blind seeded victim rotation.
//
// Everything else — protocol messages, collectives, steal traffic —
// already flows through the simulated fabric, which the lane kernel
// routes between lanes with the canonical window merge. Lane mode is
// therefore deterministic for any worker count: Lanes=1 and Lanes=N
// execute the identical event schedule.

// laneWindowChurn, when set before Run (tests only), makes the lane
// workers yield the host scheduler at every window boundary, stressing
// the claim that results are independent of goroutine interleaving.
var laneWindowChurn bool

// LaneConfigError is the typed error returned for an invalid lane
// configuration (errors.As-matchable).
type LaneConfigError struct {
	Lanes  int
	Reason string
}

func (e *LaneConfigError) Error() string {
	return fmt.Sprintf("core: invalid lane configuration (Lanes = %d): %s", e.Lanes, e.Reason)
}

// laneLookahead derives the conservative lookahead bound from the
// fabric: no cross-node event can take effect sooner than one wire
// latency after its cause (every inter-node delay — data frame, ack,
// fetch reply — includes at least Fabric.Latency; straggler slowdown
// only stretches delays). Windows of this width are therefore causally
// independent across lanes.
func laneLookahead(f netsim.Fabric) sim.Duration { return f.Latency }

// cnt returns the counter set increments from node's context must
// target (the shared base set in legacy and relaxed modes, the node's
// shard in the strict lane regime).
func (c *Cluster) cnt(node int) *stats.Counters { return c.stats.At(node) }

// Registry replicas. Directive sites resolve names to ids/addresses
// lazily; in lane mode each node resolves against its own replica so
// no cross-lane map or allocator access happens. For the collective
// sites (Single, reductions) every team must reach the same site
// sequence or the program would already deadlock, so first-use order
// is identical on every node and the replicas stay in lockstep. Lock
// sites carry no such guarantee and get name-derived ids instead (see
// lockID).

// lockID resolves a directive site name to its global SDSM lock id
// from t's node. Unlike the collective directives below, Critical is
// NOT collective — threads on different nodes may reach lock sites in
// any order (lockmix rotates them on purpose) — so first-use-order ids
// would let replicas disagree and nodes would lock different locks.
// Lane mode therefore derives the id from the site name itself: every
// replica computes the same id with no coordination, and a hash
// collision merely merges two critical sections (coarser exclusion,
// still correct and still deterministic).
func (t *Thread) lockID(name string) int {
	if !t.c.lanes {
		return t.c.lockID(name)
	}
	n := t.node
	if id, ok := n.lockIDs[name]; ok {
		return id
	}
	id := lockNameID(name)
	n.lockIDs[name] = id
	return id
}

// lockNameID hashes a directive-site name to a stable non-negative lock
// id (FNV-1a, sign bit cleared).
func lockNameID(name string) int {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int(h.Sum64() & (1<<63 - 1))
}

// singleFlag resolves the SDSM address of a single site's round flag
// from t's node, allocating it (in replica lockstep) on first use.
func (t *Thread) singleFlag(name string) int {
	if !t.c.lanes {
		return t.c.singleFlag(name)
	}
	n := t.node
	if addr, ok := n.singles[name]; ok {
		return addr
	}
	addr := n.alloc.Alloc(8, 8)
	n.singles[name] = addr
	return addr
}

// reduceSlotsN resolves the named shared slot array with at least
// `count` elements from t's node.
func (t *Thread) reduceSlotsN(name string, count int) F64Array {
	if !t.c.lanes {
		return t.c.reduceSlotsN(name, count)
	}
	n := t.node
	if a, ok := n.slotArrays[name]; ok {
		if a.Len() < count {
			panic("core: reduction slot array reused with a larger width")
		}
		return a
	}
	a := F64Array{c: t.c, base: n.alloc.AllocPage(8 * count), n: count}
	n.slotArrays[name] = a
	return a
}

// reduceSlots resolves the named per-team-thread slot array from t's
// node.
func (t *Thread) reduceSlots(name string) F64Array {
	return t.reduceSlotsN(name, t.c.TotalThreads())
}

// allocShared reserves shared memory from serial context (the master's
// sections between regions, or setup before the first region). In lane
// mode the replica allocators advance in lockstep so later SPMD-order
// lazy allocations keep agreeing on addresses.
func (c *Cluster) allocShared(bytes, align int, page bool) int {
	var addr int
	if page {
		addr = c.engine.Alloc.AllocPage(bytes)
	} else {
		addr = c.engine.Alloc.Alloc(bytes, align)
	}
	if c.lanes {
		for _, n := range c.nodes {
			n.alloc.AdvanceTo(c.engine.Alloc.Used())
		}
	}
	return addr
}

// Lane-mode tasking. The legacy scheduler keeps a cluster-wide live
// count, a global idle condition, and remote-deque load gossip — all
// cross-lane reads. The lane scheduler replaces them with per-node
// spawn/execute tallies and a collective quiescence vote: a task is
// live iff the cluster-wide spawn total exceeds the execute total, and
// both are sums of lane-confined counters, so one Allreduce decides
// termination identically on every node. Victim selection becomes a
// blind per-node seeded rotation (no remote reads); a steal against an
// idle victim is simply a miss, and any task nobody steals is executed
// by its spawn node's own threads on the next drain pass. Which node
// runs a task remains timing-dependent, but — exactly as in legacy
// mode — every value that leaves the subsystem is canonicalized by id,
// and in lane mode the timing itself is identical for every worker
// count.

// drainTasksLane executes tasks until the quiescence vote passes. It is
// team-collective: every team thread participates in each vote round.
func (t *Thread) drainTasksLane() {
	for {
		t.drainLocalTasks()
		if t.taskQuiesced() {
			return
		}
		if tk := t.stealTaskLane(); tk != nil {
			t.runTask(tk)
		}
	}
}

// drainLocalTasks pops and runs the node's queued tasks until the deque
// is empty.
func (t *Thread) drainLocalTasks() {
	for {
		tk := t.popLocalTask()
		if tk == nil {
			return
		}
		t.runTask(tk)
	}
}

// taskQuiesced is one round of the termination vote: the node's threads
// rendezvous, the last arrival joins an Allreduce summing every node's
// (spawned, executed) tallies, and the shared verdict — equal sums mean
// no task is queued or running anywhere — is handed back to the local
// threads. Quiescence is stable (nothing can spawn work once nothing
// runs), so a true verdict is safe even though the tallies are read at
// slightly different virtual times per node.
func (t *Thread) taskQuiesced() bool {
	c, n, p := t.c, t.node, t.p
	rv := n.rendezvousFor("taskvote")
	rv.mu.Lock(p)
	myRound := rv.round
	rv.count++
	if rv.count < c.cfg.ThreadsPerNode {
		for rv.round == myRound {
			rv.cond.Wait(p)
		}
		res := rv.result
		rv.mu.Unlock(p)
		return res != 0
	}
	rv.count = 0
	rv.mu.Unlock(p)

	spawned, executed := n.taskSpawned, n.taskExecuted
	if c.cfg.Nodes > 1 {
		res := c.world.Rank(n.id).Allreduce(p, [2]int64{spawned, executed}, 16, sumPair)
		pair := res.([2]int64)
		spawned, executed = pair[0], pair[1]
	}
	verdict := 0.0
	if spawned == executed {
		verdict = 1
	}

	rv.mu.Lock(p)
	rv.result = verdict
	rv.round++
	rv.cond.Broadcast()
	rv.mu.Unlock(p)
	return verdict != 0
}

// sumPair element-wise adds two [2]int64 tallies (commutative and
// associative, as Allreduce requires).
func sumPair(a, b any) any {
	as, bs := a.([2]int64), b.([2]int64)
	return [2]int64{as[0] + bs[0], as[1] + bs[1]}
}

// stealTaskLane asks one blindly-rotated victim for its oldest task.
// The rotation is seeded per node, so victim order is deterministic and
// lane-confined; a miss just returns nil and the caller revotes.
func (t *Thread) stealTaskLane() *task {
	c, n, p := t.c, t.node, t.p
	nodes := c.cfg.Nodes
	if nodes < 2 {
		return nil
	}
	n.stealRot = splitmix64(n.stealRot)
	victim := int(n.stealRot % uint64(nodes-1))
	if victim >= n.id {
		victim++ // skip self, keeping the distribution uniform
	}
	start := p.Now()
	c.cnt(n.id).StealRequests++
	c.rec.StealRequest(n.id)
	n.stealSeq++
	reqID := n.stealSeq
	w := &stealWait{gate: sim.NewGate(c.s)}
	n.stealWaits[reqID] = w
	c.net.Send(p, &netsim.Message{
		From: n.id, To: victim, Kind: KindCtl, Type: ctlStealReq,
		Bytes: 24, Payload: stealReq{ReqID: reqID, Thief: n.id},
	})
	w.gate.Wait(p)
	hit := w.task != nil
	cc := c.cnt(n.id)
	if hit {
		cc.StealHits++
		cc.TasksStolen++
	} else {
		cc.StealMisses++
	}
	c.rec.StealDone(start, p.Now(), n.id, victim, hit)
	return w.task
}

// laneReport converts the simulator's post-run lane report into the
// metrics registry's types and attaches it.
func laneReport(s *sim.Simulator, rec *obs.Recorder) {
	ls := s.LaneStats()
	if ls == nil || rec == nil {
		return
	}
	out := make([]obs.LaneStat, len(ls))
	for i, l := range ls {
		out[i] = obs.LaneStat{
			Lane: l.Lane, Windows: l.Windows, Events: l.Events,
			BusyNs: l.BusyNs, StallNs: l.StallNs,
		}
	}
	sh := s.LaneSyncHist()
	var h obs.Histogram
	h.Count, h.Sum, h.Min, h.Max = sh.Count, sh.Sum, sh.Min, sh.Max
	h.Buckets = sh.Buckets
	rec.Metrics().SetLaneReport(out, s.LaneWindows(), h)
}
