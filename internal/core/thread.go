package core

import (
	"fmt"

	"parade/internal/netsim"
	"parade/internal/sim"
)

// Thread is one OpenMP thread of the team: the execution context the
// translated program (or a hand-written application) runs against.
// Global thread 0 on node 0 is the master; it executes serial sections
// and forks parallel regions.
type Thread struct {
	c    *Cluster
	p    *sim.Proc
	gid  int
	node *node

	// Per-thread use counts of single/critical sites, used to agree on
	// rounds without global coordination.
	siteRound map[string]int

	// Tasking runtime (task.go): the task this thread is currently
	// executing (nil outside task bodies — spawns from here are roots) and
	// the thread's root-spawn ordinal, which together derive canonical
	// task ids.
	curTask *task
	rootSeq int

	// Dependence context of this thread's root tasks (depend.go):
	// lazily created at the first depend clause, reset at Taskwait.
	depState *depState

	// Count of Taskwait joins this thread has entered (task.go). With
	// the cluster's cumulative arrival tally it forms the join's
	// termination target: a thread may leave the drain loop only after
	// every team thread has arrived at the same join, so a transiently
	// zero live count never ends the join while a sibling still has
	// tasks to spawn.
	joinEpoch uint64
}

// GID returns the global thread id (0 .. TotalThreads-1).
func (t *Thread) GID() int { return t.gid }

// LID returns the thread id within its node.
func (t *Thread) LID() int { return t.gid % t.c.cfg.ThreadsPerNode }

// NodeID returns the node this thread runs on.
func (t *Thread) NodeID() int { return t.node.id }

// NumThreads returns the team size.
func (t *Thread) NumThreads() int { return t.c.TotalThreads() }

// Cluster returns the owning cluster.
func (t *Thread) Cluster() *Cluster { return t.c }

// Now returns the current virtual time (of this thread's lane, in lane
// mode).
func (t *Thread) Now() sim.Time { return t.p.Now() }

// Compute charges d of processor time to this thread (the mechanism by
// which real computation acquires a virtual-time cost). Under a
// heterogeneous cluster profile (Config.Hetero) the charge is scaled by
// the node's speed factor — a slow node takes proportionally longer for
// the same work, which is what makes offload placement observable.
func (t *Thread) Compute(d sim.Duration) {
	t.node.cpu.Compute(t.p, t.c.hetero.Scale(t.node.id, d))
}

// workerLoop is the body of every non-master team thread: wait for a
// region fork, execute it, join at the implicit end-of-region barrier.
func (t *Thread) workerLoop(p *sim.Proc) {
	n := t.node
	seen := 0
	for {
		n.workMu.Lock(p)
		for n.workSeq == seen {
			n.workCond.Wait(p)
		}
		seen = n.workSeq
		n.workMu.Unlock(p)
		if t.c.stopping {
			return
		}
		t.c.region(t)
		t.Barrier() // implicit barrier at the end of a parallel region
		if t.c.lanes {
			t.c.rec.RegionEndOn(n.id) // idempotent across the node's threads
		}
	}
}

// Parallel forks a parallel region: every team thread executes fn, and
// an implicit barrier joins them (the OpenMP fork-join model, §4.1).
// Remote nodes are started with a control message handled by their
// communication thread, which signals the local team threads — the
// fork cost therefore scales with the cluster size and the fabric.
func (t *Thread) Parallel(fn func(tc *Thread)) {
	if t.gid != 0 {
		panic("core: Parallel from a non-master thread (nested parallelism is not supported, per the paper)")
	}
	c := t.c
	c.region = fn
	c.regionSeq++
	seq := c.regionSeq
	var t0 sim.Time
	if c.rec != nil {
		t0 = t.p.Now()
		c.rec.RegionBegin(t0, seq)
	}
	// Make the master's serial-section writes visible before the fork:
	// flush to homes and piggyback the write notices on the region-start
	// messages (§5.2.2's piggybacking, applied to the fork).
	notices := c.engine.FlushForFork(t.p, 0)
	for i := 1; i < c.cfg.Nodes; i++ {
		c.net.Send(t.p, &netsim.Message{
			From: 0, To: i, Kind: KindCtl, Type: ctlStartRegion,
			Bytes: 16 + 8*len(notices), Payload: notices,
		})
	}
	c.startRegionLocal(t.p, 0)
	fn(t)
	t.Barrier()
	if c.lanes {
		c.rec.RegionEndOn(0)
	}
	if c.rec != nil {
		c.rec.RegionEnd(t0, t.p.Now(), seq)
	}
}

// Barrier is the team-wide barrier: threads synchronize through a
// node-local pthread barrier first, and the last arrival of each node
// represents it in the global SDSM barrier (flush, write notices, home
// migration, invalidations).
func (t *Thread) Barrier() {
	c, n, p := t.c, t.node, t.p
	if c.lanes {
		// Lane-mode barriers drain the node's own deque. Every node's
		// threads do the same before the node's last arrival enters the
		// global SDSM barrier, so all pre-barrier tasks complete
		// cluster-wide without any cross-lane queue inspection (steals
		// happen only inside Taskwait's vote loop).
		if len(n.taskq) > 0 {
			t.drainLocalTasks()
		}
	} else if c.tasksLive > 0 {
		// Barriers are task scheduling points: all outstanding tasks
		// complete before any thread passes (OpenMP §task scheduling).
		// One integer compare when no tasks exist, so task-free programs
		// keep their exact timing. Target 0: a barrier is not a task
		// join, so the drain is the plain live-count loop.
		t.drainTasks(0)
	}
	t.Compute(localPthreadOp)
	n.barMu.Lock(p)
	gen := n.barGen
	n.barCount++
	if n.barCount == c.cfg.ThreadsPerNode {
		n.barCount = 0
		n.barMu.Unlock(p)
		c.engine.Barrier(p, n.id)
		n.barMu.Lock(p)
		n.barGen++
		n.barCond.Broadcast()
		n.barMu.Unlock(p)
		return
	}
	for gen == n.barGen {
		n.barCond.Wait(p)
	}
	n.barMu.Unlock(p)
}

// StaticRange returns this thread's slice [lo, hi) of the iteration
// space under the static schedule: contiguous blocks in gid order, so
// threads of one node work on adjacent data (§4.3).
func (t *Thread) StaticRange(lo, hi int) (int, int) {
	total := hi - lo
	if total <= 0 {
		return lo, lo
	}
	nt := t.NumThreads()
	myLo := lo + total*t.gid/nt
	myHi := lo + total*(t.gid+1)/nt
	return myLo, myHi
}

// For executes a work-sharing loop (the for directive): body runs for
// every i in [lo, hi), distributed across the team per the schedule
// option, followed by the directive's implicit barrier unless Nowait is
// given. With no options it is the paper's static schedule:
//
//	tc.For(0, n, body)                                         // static
//	tc.For(0, n, body, core.WithIterCost(50*sim.Nanosecond))   // costed
//	tc.For(0, n, body, core.WithSchedule(core.Dynamic, 8))     // chunked
//	tc.For(0, n, body, core.WithSchedule(core.Guided, 4), core.Nowait())
func (t *Thread) For(lo, hi int, body func(i int), opts ...ForOption) {
	cfg := forConfig{}
	for _, o := range opts {
		o.applyFor(&cfg)
	}
	switch cfg.kind {
	case Static:
		t.forStatic(lo, hi, cfg.perIter, body)
	case Dynamic, Guided:
		t.forServed(&cfg, lo, hi, body)
	default:
		panic(fmt.Sprintf("core: unknown schedule kind %d", cfg.kind))
	}
	if !cfg.nowait {
		t.Barrier()
	}
}

// ForNowait executes a static work-sharing loop without the trailing
// barrier.
//
// Deprecated: use For with the Nowait option.
func (t *Thread) ForNowait(lo, hi int, body func(i int)) {
	t.forStatic(lo, hi, 0, body)
}

// computeBatch is the target size of one virtual-time charge inside a
// costed loop: small enough that the communication thread can preempt a
// computing thread at a realistic OS granularity.
const computeBatch = 200 * sim.Microsecond

// ForCost executes a static work-sharing loop with a per-iteration
// compute cost, followed by the implicit barrier.
//
// Deprecated: use For with the WithIterCost option.
func (t *Thread) ForCost(lo, hi int, perIter sim.Duration, body func(i int)) {
	t.forStatic(lo, hi, perIter, body)
	t.Barrier()
}

// ForCostNowait executes a costed static work-sharing loop without the
// trailing barrier.
//
// Deprecated: use For with the WithIterCost and Nowait options.
func (t *Thread) ForCostNowait(lo, hi int, perIter sim.Duration, body func(i int)) {
	t.forStatic(lo, hi, perIter, body)
}

// forStatic runs this thread's static slice of [lo, hi). A positive
// perIter charges the body's virtual compute cost in batches, so loops
// contend with the communication thread for CPU time exactly as the
// paper's three thread/CPU configurations describe.
func (t *Thread) forStatic(lo, hi int, perIter sim.Duration, body func(i int)) {
	myLo, myHi := t.StaticRange(lo, hi)
	if perIter <= 0 {
		for i := myLo; i < myHi; i++ {
			body(i)
		}
		return
	}
	batch := int(computeBatch / perIter)
	if batch < 1 {
		batch = 1
	}
	pending := 0
	for i := myLo; i < myHi; i++ {
		body(i)
		pending++
		if pending == batch {
			t.Compute(perIter * sim.Duration(pending))
			pending = 0
		}
	}
	if pending > 0 {
		t.Compute(perIter * sim.Duration(pending))
	}
}

// Master runs fn on the master thread only (no implied synchronization).
func (t *Thread) Master(fn func()) {
	if t.gid == 0 {
		fn()
	}
}

// round returns this thread's use count of site name, advancing it.
// Threads agree on rounds because every team thread reaches each site
// the same number of times (SPMD execution).
func (t *Thread) round(name string) int {
	if t.siteRound == nil {
		t.siteRound = map[string]int{}
	}
	r := t.siteRound[name]
	t.siteRound[name] = r + 1
	return r
}

func (t *Thread) String() string {
	return fmt.Sprintf("thread%d@node%d", t.gid, t.node.id)
}
