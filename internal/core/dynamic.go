package core

import (
	"fmt"

	"parade/internal/netsim"
	"parade/internal/sim"
)

// Dynamic loop scheduling — the paper's §8 future-work item, provided as
// an extension (the evaluation figures all use the paper's static
// schedule). Iterations are handed out in chunks by a chunk server on
// the master node; remote threads request chunks through the control
// plane, so the scheduling traffic rides the same fabric as everything
// else and load balance trades against message latency exactly as the
// paper anticipates.

// Control message subtypes for the chunk server.
const (
	ctlChunkReq = iota + 10
	ctlChunkReply
)

// chunkReq asks the server for the next chunk of a loop instance. Lo/Hi
// describe the iteration space so the first request materializes it.
type chunkReq struct {
	Key    string
	ReqID  int
	Node   int
	Lo, Hi int
	Chunk  int  // fixed chunk (dynamic) or minimum chunk (guided)
	Guided bool // guided: grant max(remaining/(2*team), Chunk)
}

// chunkReply carries the granted range; Lo >= Hi means the loop is done.
type chunkReply struct {
	ReqID  int
	Lo, Hi int
}

// dynLoop is the server-side state of one loop instance.
type dynLoop struct {
	next, hi int
}

// chunkWait is a requesting node's parked chunk request.
type chunkWait struct {
	gate   *sim.Gate
	lo, hi int
}

// serveCost approximates the server-side bookkeeping per chunk request.
const serveCost = 500 * sim.Nanosecond

// serveChunk advances the loop instance and returns the granted range.
// Runs on node 0 (directly for local threads, on the communication
// thread for remote requests); the simulation kernel serializes both.
func (c *Cluster) serveChunk(req chunkReq) (int, int) {
	if c.dynLoops == nil {
		c.dynLoops = map[string]*dynLoop{}
	}
	dl := c.dynLoops[req.Key]
	if dl == nil {
		dl = &dynLoop{next: req.Lo, hi: req.Hi}
		c.dynLoops[req.Key] = dl
	}
	lo := dl.next
	grant := req.Chunk
	if req.Guided {
		// Guided schedule: exponentially decreasing chunks, floored at
		// the requested minimum.
		remaining := dl.hi - lo
		g := remaining / (2 * c.TotalThreads())
		if g > grant {
			grant = g
		}
	}
	hi := lo + grant
	if hi > dl.hi {
		hi = dl.hi
	}
	dl.next = hi
	return lo, hi
}

// handleChunkReq runs on the master's communication thread.
func (c *Cluster) handleChunkReq(p *sim.Proc, m *netsim.Message) {
	req := m.Payload.(chunkReq)
	c.nodes[0].cpu.Compute(p, serveCost)
	lo, hi := c.serveChunk(req)
	c.net.Send(p, &netsim.Message{
		From: 0, To: req.Node, Kind: KindCtl, Type: ctlChunkReply,
		Bytes: 24, Payload: chunkReply{ReqID: req.ReqID, Lo: lo, Hi: hi},
	})
}

// handleChunkReply wakes the requesting thread on its node.
func (c *Cluster) handleChunkReply(nodeID int, m *netsim.Message) {
	rep := m.Payload.(chunkReply)
	n := c.nodes[nodeID]
	w := n.chunkWaits[rep.ReqID]
	if w == nil {
		panic(fmt.Sprintf("core: chunk reply for unknown request %d", rep.ReqID))
	}
	delete(n.chunkWaits, rep.ReqID)
	w.lo, w.hi = rep.Lo, rep.Hi
	w.gate.Open()
}

// grabChunkOpt obtains the next chunk for the calling thread: served
// directly on the master node, through a control round trip elsewhere.
func (t *Thread) grabChunkOpt(key string, lo, hi, chunk int, guided bool) (int, int) {
	c, n, p := t.c, t.node, t.p
	req := chunkReq{Key: key, Node: n.id, Lo: lo, Hi: hi, Chunk: chunk, Guided: guided}
	if n.id == 0 {
		t.Compute(serveCost)
		return c.serveChunk(req)
	}
	n.chunkSeq++
	req.ReqID = n.chunkSeq
	w := &chunkWait{gate: sim.NewGate(c.s)}
	n.chunkWaits[req.ReqID] = w
	c.net.Send(p, &netsim.Message{
		From: n.id, To: 0, Kind: KindCtl, Type: ctlChunkReq,
		Bytes: 48, Payload: req,
	})
	w.gate.Wait(p)
	return w.lo, w.hi
}

// forServed is the chunk-served loop body shared by the dynamic and
// guided schedules: grab chunks from the master's chunk server until
// the iteration space is exhausted. A positive perIter charges virtual
// compute once per served chunk. The caller handles the implicit
// barrier (or its nowait elision).
func (t *Thread) forServed(cfg *forConfig, lo, hi int, body func(i int)) {
	chunk := cfg.chunk
	if chunk < 1 {
		chunk = 1
	}
	guided := cfg.kind == Guided
	prefix := "dyn:"
	if guided {
		prefix = "gui:"
	}
	name := cfg.name
	if name == "" {
		// Unnamed sites number themselves in per-thread arrival order;
		// SPMD execution makes every thread agree on the numbering.
		name = fmt.Sprintf("for@%d", t.round("anon:"+prefix))
	}
	key := fmt.Sprintf("%s#%d", name, t.round(prefix+name))
	for {
		clo, chi := t.grabChunkOpt(key, lo, hi, chunk, guided)
		if clo >= chi {
			break
		}
		for i := clo; i < chi; i++ {
			body(i)
		}
		if cfg.perIter > 0 {
			t.Compute(cfg.perIter * sim.Duration(chi-clo))
		}
	}
}

// ForGuided executes a guided-schedule work-sharing loop: chunk sizes
// start at remaining/(2 x team size) and shrink exponentially toward
// minChunk, trading the dynamic schedule's request traffic against its
// load balance. Provided, like ForDynamic, as a §8 extension.
//
// Deprecated: use For with WithName and WithSchedule(Guided, minChunk).
func (t *Thread) ForGuided(name string, lo, hi, minChunk int, perIter sim.Duration, body func(i int)) {
	t.For(lo, hi, body, WithName(name), WithSchedule(Guided, minChunk), WithIterCost(perIter))
}

// ForDynamic executes a dynamically scheduled work-sharing loop: chunks
// of `chunk` iterations are served first-come-first-served, so imbalanced
// bodies spread across the team at the price of one control round trip
// per chunk. perIter charges virtual compute like ForCost. The loop ends
// with the for directive's implicit barrier.
//
// Deprecated: use For with WithName and WithSchedule(Dynamic, chunk).
func (t *Thread) ForDynamic(name string, lo, hi, chunk int, perIter sim.Duration, body func(i int)) {
	t.For(lo, hi, body, WithName(name), WithSchedule(Dynamic, chunk), WithIterCost(perIter))
}
