// Package core implements the ParADE runtime system (paper §3, §5): a
// multi-threaded SDSM cluster runtime with a hybrid execution model. The
// OpenMP-level API lives on Thread (fork-join Parallel, work-sharing For,
// Critical/Atomic/Single/Master, reductions, barriers); the consistency
// machinery underneath is the HLRC engine plus, in Hybrid mode, explicit
// message-passing collectives for directives that guard small data.
//
// The same runtime configured with Mode=SDSM and HomeMigration=false is
// the conventional lock-based SDSM baseline (KDSM) used by the paper's
// microbenchmarks; parade/internal/kdsm packages that configuration.
//
// Everything here executes under the deterministic simulation kernel
// (internal/sim), which runs exactly one simulated process at a time.
// That invariant is why runtime state is mutated with plain field writes
// and why the optional observability recorder (Config.Obs, internal/obs)
// adds no synchronization.
package core

import (
	"fmt"
	"time"

	"parade/internal/dsm"
	"parade/internal/hlrc"
	"parade/internal/netsim"
	"parade/internal/obs"
	"parade/internal/sim"
)

// Mode selects how synchronization and work-sharing directives execute.
type Mode int

const (
	// Hybrid is the ParADE execution model: directives over small,
	// analyzable data use message-passing collectives; everything else
	// uses the SDSM with migratory home.
	Hybrid Mode = iota
	// SDSM is the conventional model: every directive maps to SDSM locks
	// and barriers (the KDSM baseline).
	SDSM
)

func (m Mode) String() string {
	if m == Hybrid {
		return "parade-hybrid"
	}
	return "sdsm"
}

// Config describes one simulated cluster run.
type Config struct {
	Nodes          int
	ThreadsPerNode int // computational threads per node
	CPUsPerNode    int // processors per node
	Fabric         netsim.Fabric
	Mode           Mode
	HomeMigration  bool
	LockCaching    bool // lazy-release lock tokens for the SDSM lock path
	SmallThreshold int  // bytes; directives guarding <= this use collectives
	ShmBytes       int  // shared memory pool size
	Seed           int64
	Quantum        sim.Duration
	// Lanes, when positive, runs the simulation kernel in per-node event
	// lane mode: one lane per simulated node, up to Lanes lanes executing
	// concurrently on host goroutines under conservative lookahead
	// (internal/sim). The event schedule is identical for every positive
	// value — Lanes only caps host parallelism — so results match at any
	// GOMAXPROCS and any lane count. 0 (the default) is the legacy
	// single-loop kernel with its original byte-identical timing.
	Lanes    int
	Strategy dsm.UpdateStrategy
	Cost     hlrc.CostModel
	// Policy selects the hlrc protocol policy: "" (legacy, byte-identical
	// to previous releases), "invalidate", "update", or "adaptive"
	// (per-page online classification; see internal/hlrc/policy.go).
	// Adaptive also derives SmallThreshold from the fabric and cost model
	// (AutoThreshold) when the threshold is left zero.
	Policy string
	// Obs, when non-nil, attaches an observability recorder to the run:
	// the protocol engine, the network, the MPI library, and the runtime
	// all record into it (counters, latency histograms, trace sinks), and
	// the run's Report carries its Metrics. Nil — the default — keeps
	// every recording site on its zero-overhead disabled path.
	Obs *obs.Recorder
	// Faults, when non-nil, attaches a netsim fault plane (and with it the
	// reliability sublayer) to the interconnect: messages are dropped,
	// duplicated, reordered, and delayed per the profile, and recovered
	// underneath the protocol layers. Nil — the default — keeps the ideal
	// fabric with its original byte-identical timing.
	Faults *netsim.Profile
	// Hetero, when non-nil, makes the cluster heterogeneous: durations
	// charged to a node's processors (thread compute, message receive
	// processing) are multiplied by its speed factor, so node choice —
	// and Target offload placement in particular — becomes observable in
	// run times. Nil — the default — is the uniform cluster with its
	// original byte-identical timing. The profile is part of the machine
	// description: results stay bit-identical across fault and crash
	// schedules for a fixed profile.
	Hetero *netsim.Hetero
	// Crash, when active, schedules deterministic crash-stop node
	// failures at barrier points and arms the engine's
	// checkpoint/recovery protocol (see internal/hlrc). Requires a fault
	// plane for failure detection; when Faults is nil, Run attaches the
	// zero-link-fault crash-only plane automatically. The full runtime
	// only supports Restart events — a shrunken node would leave its
	// team threads unjoinable at shutdown.
	Crash *hlrc.CrashPlan
	// Deadline, when positive, bounds the run's host wall-clock time: the
	// event loop polls a monotonic clock and, once the budget is spent,
	// aborts the run with an error matching ErrCanceled and wrapping a
	// *DeadlineError — instead of hanging on a livelocked configuration.
	// Host time only: it never perturbs virtual time or results of runs
	// that finish within the budget.
	Deadline time.Duration
	// Cancel, when non-nil, is a cooperative cancellation hook polled
	// periodically from the event loop (sim.DefaultCancelEvery events). A
	// non-nil return cancels the run: Run returns an error matching
	// ErrCanceled that wraps the hook's cause, alongside a partial Report
	// (counters and timing up to the cancel point). Lane-mode runs poll
	// the hook concurrently from every lane, so it must be safe for
	// concurrent use.
	Cancel func() error
}

// DefaultSmallThreshold is the paper's update/invalidate switch point for
// the Linux cluster (§5.2.1).
const DefaultSmallThreshold = 256

// WithDefaults fills zero fields with the paper's defaults: VIA fabric,
// hybrid mode with home migration, 256-byte threshold, dual Pentium-III
// nodes (2 CPUs), one thread per node, 16 MiB pool.
func (c Config) WithDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.ThreadsPerNode == 0 {
		c.ThreadsPerNode = 1
	}
	if c.CPUsPerNode == 0 {
		c.CPUsPerNode = 2
	}
	if c.Fabric.Name == "" {
		c.Fabric = netsim.VIA()
	}
	if c.ShmBytes == 0 {
		c.ShmBytes = 16 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Strategy == dsm.SingleMapping {
		c.Strategy = dsm.FileMapping
	}
	if c.Cost == (hlrc.CostModel{}) {
		c.Cost = hlrc.DefaultCosts()
	}
	// The threshold fill runs after the fabric and cost fills: the
	// adaptive policy replaces the paper's lexical 256-byte constant with
	// the value derived from this run's fabric, cost model, and node
	// count (§5.2.1's own stated derivation).
	if c.SmallThreshold == 0 {
		if c.Policy == hlrc.PolicyAdaptive {
			c.SmallThreshold = AutoThreshold(c.Fabric, c.Cost, c.Nodes)
		} else {
			c.SmallThreshold = DefaultSmallThreshold
		}
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("core: Nodes = %d", c.Nodes)
	}
	if c.ThreadsPerNode < 1 {
		return fmt.Errorf("core: ThreadsPerNode = %d", c.ThreadsPerNode)
	}
	if c.CPUsPerNode < 1 {
		return fmt.Errorf("core: CPUsPerNode = %d", c.CPUsPerNode)
	}
	if !c.Strategy.Dual() {
		return fmt.Errorf("core: update strategy %v cannot support a multi-threaded SDSM (atomic page update problem)", c.Strategy)
	}
	if c.SmallThreshold < 8 {
		return fmt.Errorf("core: SmallThreshold = %d", c.SmallThreshold)
	}
	if !hlrc.ValidPolicy(c.Policy) {
		return &PolicyConfigError{Policy: c.Policy, Reason: fmt.Sprintf(
			"unknown protocol policy (valid: %q, %q, %q, or empty for legacy)",
			hlrc.PolicyInvalidate, hlrc.PolicyUpdate, hlrc.PolicyAdaptive)}
	}
	if c.Lanes < 0 {
		return &LaneConfigError{Lanes: c.Lanes, Reason: "Lanes must be >= 0 (0 disables event lanes)"}
	}
	if c.Lanes > 0 && c.Fabric.Latency <= 0 {
		return &LaneConfigError{Lanes: c.Lanes, Reason: fmt.Sprintf(
			"fabric %q has non-positive link latency; the conservative lookahead bound requires Fabric.Latency > 0", c.Fabric.Name)}
	}
	if c.Deadline < 0 {
		return fmt.Errorf("core: Deadline = %v (must be >= 0; 0 disables the wall-clock guard)", c.Deadline)
	}
	if err := c.Hetero.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Hetero != nil && len(c.Hetero.Factors) > c.Nodes {
		return fmt.Errorf("core: Hetero has %d factors for %d nodes", len(c.Hetero.Factors), c.Nodes)
	}
	if c.Crash.Active() {
		if err := c.Crash.Validate(c.Nodes); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		for _, ev := range c.Crash.Events {
			if !ev.Restart {
				return fmt.Errorf("core: crash event for node %d has Restart=false; the runtime requires restart recovery (a shrunken node's team threads never rejoin the shutdown)", ev.Node)
			}
		}
	}
	return nil
}

// Configurations used throughout the paper's evaluation (§6.2).

// Config1T1C is "1Thread-1CPU": a uniprocessor kernel, one processor
// handling both computation and communication. All three presets run the
// full ParADE runtime: hybrid directives and migratory home.
func Config1T1C(nodes int) Config {
	return Config{Nodes: nodes, ThreadsPerNode: 1, CPUsPerNode: 1, HomeMigration: true}.WithDefaults()
}

// Config1T2C is "1Thread-2CPU": the SMP kernel with one computational
// thread, leaving a processor free for the communication thread.
func Config1T2C(nodes int) Config {
	return Config{Nodes: nodes, ThreadsPerNode: 1, CPUsPerNode: 2, HomeMigration: true}.WithDefaults()
}

// Config2T2C is "2Thread-2CPU": two computational threads plus the
// communication thread sharing two processors.
func Config2T2C(nodes int) Config {
	return Config{Nodes: nodes, ThreadsPerNode: 2, CPUsPerNode: 2, HomeMigration: true}.WithDefaults()
}
